# NetAgg reproduction — build/verify entry points. Stdlib-only Go module;
# no tool downloads, so every target works offline.

GO ?= go

.PHONY: build test lint vet race verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# netagg-lint: repo-specific analyzers (determinism, lockdiscipline,
# errcheck-wire, goroutine-hygiene). Exit 1 on findings; suppress audited
# false positives with //lint:ignore <analyzer> <reason> or the
# .netagg-lint-allow file.
lint:
	$(GO) run ./cmd/netagg-lint ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The tier-1 gate: everything CI and pre-commit should run.
verify: build vet lint race
