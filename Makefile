# NetAgg reproduction — build/verify entry points. Stdlib-only Go module;
# no tool downloads, so every target works offline.

GO ?= go

.PHONY: build test lint vet race escape fuzz-smoke verify profile bench-smoke obs-smoke bufpool-debug protocol-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# netagg-lint: repo-specific analyzers (determinism, docrule,
# lockdiscipline, errcheck-wire, goroutine-hygiene, lockorder, ctxflow,
# exhaustive, bufown, protocheck). Exit 1 on findings; suppress audited
# false positives with //lint:ignore <analyzer> <reason> or the
# .netagg-lint-allow file (bufown also honours its own
# //netagg:bufown-allow <reason> markers, see DESIGN.md §13). Stale
# suppressions — directives or allowlist entries matching nothing — are
# findings too (DESIGN.md §17).
lint:
	$(GO) run ./cmd/netagg-lint ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Hot-path escape gate: every //netagg:hotpath-annotated function must be
# allocation-free per the compiler's own escape analysis
# (`go build -gcflags=-m`). See OPERATIONS.md for the annotation contract.
escape:
	$(GO) run ./cmd/netagg-lint -escape ./...

# Wire-codec fuzzers, bounded for CI: each target runs its checked-in seed
# corpus (internal/wire/testdata/fuzz) plus 10s of mutation. Local deep
# runs: `go test ./internal/wire -fuzz FuzzDecodeFrame -fuzztime=5m`.
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime=10s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzEncodeDecode$$' -fuzztime=10s

# Runtime half of the buffer-ownership contract: the netaggdebug build
# tag poisons released buffers (0xDB) and verifies the poison on reuse,
# turning use-after-release into a deterministic panic instead of silent
# corruption. The same tag arms wire.CheckReceive, the dynamic half of
# the protocol table (DESIGN.md §17), so the suite also covers the
# packages with annotated frame handlers. Run under -race so the checker
# also orders the accesses.
bufpool-debug:
	$(GO) test -tags netaggdebug -race ./internal/bufpool ./internal/transport \
		./internal/wire ./internal/core ./internal/shim ./internal/cluster

# Protocol drift gate (DESIGN.md §17): the matrix embedded in DESIGN.md
# must be exactly what internal/wire/protocol.go renders, and the lint
# framework must survive its own analyzers (self-lint).
protocol-check:
	$(GO) run ./cmd/protogen -check
	$(GO) run ./cmd/netagg-lint ./internal/lint

# The tier-1 gate: everything CI and pre-commit should run.
verify: build vet lint protocol-check escape race

# Flamegraph entry point for the next perf PR: profile the full-scale Fig 6
# regeneration (the allocator-bound path). Inspect with
# `go tool pprof -http=: cpu.prof`.
profile:
	$(GO) run ./cmd/netagg-sim -scale full -cpuprofile cpu.prof -memprofile mem.prof fig06

# Observability smoke: run one job through a small testbed with the
# /debug/netagg endpoint live, then fetch and validate metrics, traces
# and health over HTTP (exit 1 on malformed JSON or an incomplete
# trace). See OPERATIONS.md for the endpoints it exercises.
obs-smoke:
	$(GO) run ./cmd/obs-smoke

# CI bench smoke: micro-benchmarks (small, seconds) recorded as
# benchstat-compatible artifacts — each BENCH_*.json holds raw Go
# benchmark text (the input format benchstat consumes); the fixed names
# are the CI artifact convention. Compare two commits with
# `benchstat old/BENCH_simnet.json new/BENCH_simnet.json`.
#
# The bufpool and transport artifacts are alloc-guarded: the fresh run
# lands in a .new file, benchguard fails the target if any benchmark's
# B/op grew >25% over the checked-in artifact, and only a passing run
# replaces it — so alloc regressions break CI instead of silently
# re-baselining (the BenchmarkTransportEcho 1488 B/op drift, CHANGES.md).
bench-smoke:
	$(GO) test ./internal/simnet -run '^$$' -bench BenchmarkAllocate \
		-benchmem -benchtime 200x -count 5 | tee BENCH_simnet.json
	$(GO) test ./internal/bufpool -run '^$$' -bench BenchmarkBufpool \
		-benchmem -benchtime 200x -count 5 | tee BENCH_bufpool.json.new
	$(GO) run ./cmd/benchguard -baseline BENCH_bufpool.json BENCH_bufpool.json.new
	mv BENCH_bufpool.json.new BENCH_bufpool.json
	$(GO) test ./internal/transport -run '^$$' -bench BenchmarkTransport \
		-benchmem -benchtime 2000x -count 5 | tee BENCH_transport.json.new
	$(GO) run ./cmd/benchguard -baseline BENCH_transport.json BENCH_transport.json.new
	mv BENCH_transport.json.new BENCH_transport.json
	$(GO) test ./internal/treeplan -run '^$$' -bench BenchmarkPlan \
		-benchmem -benchtime 200x -count 5 | tee BENCH_treeplan.json
	$(GO) test ./internal/strategies -run '^$$' -bench BenchmarkReplan \
		-benchmem -benchtime 20x -count 5 | tee BENCH_replan.json.new
	$(GO) run ./cmd/benchguard -baseline BENCH_replan.json BENCH_replan.json.new
	mv BENCH_replan.json.new BENCH_replan.json
