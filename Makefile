# NetAgg reproduction — build/verify entry points. Stdlib-only Go module;
# no tool downloads, so every target works offline.

GO ?= go

.PHONY: build test lint vet race verify profile bench-smoke obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# netagg-lint: repo-specific analyzers (determinism, docrule,
# lockdiscipline, errcheck-wire, goroutine-hygiene). Exit 1 on findings;
# suppress audited false positives with //lint:ignore <analyzer> <reason>
# or the .netagg-lint-allow file.
lint:
	$(GO) run ./cmd/netagg-lint ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The tier-1 gate: everything CI and pre-commit should run.
verify: build vet lint race

# Flamegraph entry point for the next perf PR: profile the full-scale Fig 6
# regeneration (the allocator-bound path). Inspect with
# `go tool pprof -http=: cpu.prof`.
profile:
	$(GO) run ./cmd/netagg-sim -scale full -cpuprofile cpu.prof -memprofile mem.prof fig06

# Observability smoke: run one job through a small testbed with the
# /debug/netagg endpoint live, then fetch and validate metrics, traces
# and health over HTTP (exit 1 on malformed JSON or an incomplete
# trace). See OPERATIONS.md for the endpoints it exercises.
obs-smoke:
	$(GO) run ./cmd/obs-smoke

# CI bench smoke: the allocator micro-benchmarks (small, seconds) recorded
# as a benchstat-compatible artifact — BENCH_simnet.json holds raw Go
# benchmark text (the input format benchstat consumes); the fixed name is
# the CI artifact convention. Compare two commits with
# `benchstat old/BENCH_simnet.json new/BENCH_simnet.json`.
bench-smoke:
	$(GO) test ./internal/simnet -run '^$$' -bench BenchmarkAllocate \
		-benchmem -benchtime 200x -count 5 | tee BENCH_simnet.json
