// Command netagg-bench regenerates the paper's testbed figures (§4.2:
// Figs 15-26) on the emulated testbed — real TCP on loopback with
// token-bucket link emulation — and prints the same rows/series the paper
// plots.
//
// Usage:
//
//	netagg-bench [-window 3s] [-seed N] [-cpuprofile f] [-memprofile f] [fig ...]
//
// With no figure arguments, every testbed figure is regenerated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netagg/internal/profiling"
	"netagg/internal/tbfig"
)

var all = map[string]func(tbfig.Options) *tbfig.Report{
	"fig15":      tbfig.Fig15,
	"fig16":      tbfig.Fig16,
	"fig17":      tbfig.Fig17,
	"fig18":      tbfig.Fig18,
	"fig19":      tbfig.Fig19,
	"fig20":      tbfig.Fig20,
	"fig21":      tbfig.Fig21,
	"fig22":      tbfig.Fig22,
	"fig23":      tbfig.Fig23,
	"fig24":      tbfig.Fig24,
	"fig25":      tbfig.Fig25,
	"fig26":      tbfig.Fig26,
	"ext-fanout": tbfig.ExtFanout,
}

var order = []string{
	"fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
	"fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "ext-fanout",
}

func main() {
	window := flag.Duration("window", 3*time.Second, "measurement window per data point")
	seed := flag.Int64("seed", 1, "query/input random seed")
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [fig ...]\nfigures: %v\nflags:\n", os.Args[0], order)
		flag.PrintDefaults()
	}
	flag.Parse()

	// Ctrl-C tears down every testbed endpoint the experiments deploy.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := tbfig.Options{Window: *window, Seed: *seed, Context: ctx}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = order
	}
	for _, name := range targets {
		if _, ok := all[name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (have %v)\n", name, order)
			os.Exit(2)
		}
	}
	stop := prof.Start()
	for _, name := range targets {
		start := time.Now()
		report := all[name](opts)
		fmt.Print(report.String())
		fmt.Printf("(%s regenerated in %.1fs)\n\n", report.ID, time.Since(start).Seconds())
	}
	stop()
}
