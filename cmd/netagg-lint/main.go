// Command netagg-lint runs the repo-specific static analyzer suite over
// the netagg tree (see internal/lint). It is part of the tier-1 verify
// gate:
//
//	go run ./cmd/netagg-lint ./...
//
// exits 0 when the tree is clean, 1 when any analyzer reports a finding
// that is neither suppressed at the site (//lint:ignore <analyzer>
// <reason>) nor recorded in the allowlist, and 2 on usage or parse
// errors.
//
// Usage:
//
//	netagg-lint [-json] [-allow file] [-only a,b] [patterns...]
//	netagg-lint -escape [patterns...]
//
// Patterns are package directories relative to the module root; the
// pattern ./... (the default) walks the whole module. The allowlist
// defaults to .netagg-lint-allow next to go.mod; each line is the
// tab-separated key `path<TAB>analyzer<TAB>message` of an audited
// pre-existing finding (use -json to obtain keys).
//
// The -escape mode is the hot-path allocation gate: it collects every
// function annotated //netagg:hotpath, runs `go build -gcflags=-m` over
// the same patterns, and fails if the compiler's escape analysis
// reports a heap allocation inside any annotated function (see
// internal/lint/escape.go and DESIGN.md §12).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"netagg/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fl := flag.NewFlagSet("netagg-lint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit findings as a JSON array")
	allowPath := fl.String("allow", "", "allowlist file (default: .netagg-lint-allow next to go.mod)")
	only := fl.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fl.Bool("analyzers", false, "list analyzers and exit")
	escape := fl.Bool("escape", false, "run the //netagg:hotpath escape-analysis gate instead of the analyzer suite")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		if len(want) > 0 {
			fmt.Fprintf(stderr, "netagg-lint: unknown analyzers in -only: %v\n", keys(want))
			return 2
		}
		analyzers = sel
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "netagg-lint: %v\n", err)
		return 2
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expand(root, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "netagg-lint: %v\n", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "netagg-lint: no Go files matched %v\n", patterns)
		return 2
	}

	fset := token.NewFileSet()
	var files []*lint.File
	for _, p := range paths {
		rel, err := filepath.Rel(root, p)
		if err != nil {
			rel = p
		}
		f, err := lint.Parse(fset, p, filepath.ToSlash(rel))
		if err != nil {
			fmt.Fprintf(stderr, "netagg-lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	if *escape {
		return runEscape(root, patterns, files, stdout, stderr)
	}

	findings := lint.Run(files, analyzers)

	ap := *allowPath
	if ap == "" {
		ap = filepath.Join(root, ".netagg-lint-allow")
	}
	allow, err := lint.LoadAllowlist(ap)
	if err != nil {
		fmt.Fprintf(stderr, "netagg-lint: %v\n", err)
		return 2
	}
	findings = allow.Filter(findings)

	// A suppression that suppresses nothing is itself a finding: a stale
	// //lint:ignore or allowlist entry claims an audited violation that no
	// longer exists, so its recorded reason misdocuments the code. Both
	// scans are scoped to what this run actually checked: ignores naming
	// analyzers outside -only and allowlist entries for unparsed files are
	// left alone.
	findings = append(findings, lint.UnusedIgnores(files, analyzers)...)
	parsed := make(map[string]bool, len(files))
	for _, f := range files {
		parsed[f.Path] = true
	}
	for _, key := range allow.UnusedKeys(parsed) {
		path, rest, _ := strings.Cut(key, "\t")
		analyzer, _, _ := strings.Cut(rest, "\t")
		findings = append(findings, lint.Finding{
			Analyzer: "unusedallow",
			File:     path,
			Message:  fmt.Sprintf("allowlist entry for %s matched no finding: remove the stale line from %s", analyzer, ap),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "netagg-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "netagg-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runEscape is the -escape mode: the //netagg:hotpath allocation gate.
// The compiler replays cached diagnostics (Go 1.21+), so repeat runs
// are warm-cache cheap and need no cache busting.
func runEscape(root string, patterns []string, files []*lint.File, stdout, stderr *os.File) int {
	hot := lint.HotFuncs(files)
	if len(hot) == 0 {
		fmt.Fprintf(stderr, "netagg-lint: -escape found no //netagg:hotpath annotations in %v\n", patterns)
		return 2
	}

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, patterns...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		// -gcflags=-m output goes to stderr alongside any real build
		// error; a failed build means the diagnostics are unusable.
		fmt.Fprintf(stderr, "netagg-lint: go build -gcflags=-m failed: %v\n%s", err, out)
		return 2
	}

	findings := lint.EscapeFindings(hot, lint.ParseEscapeOutput(string(out)))
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "netagg-lint: escape gate: %d allocation(s) in hotpath functions\n", len(findings))
		return 1
	}
	fmt.Fprintf(stderr, "netagg-lint: escape gate: %d hotpath function(s) allocation-free\n", len(hot))
	return 0
}

// moduleRoot walks up from the working directory to the directory
// containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to a sorted list of Go file paths.
// Supported patterns: "./...", "dir/...", plain directories, and single
// .go files.
func expand(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkGoFiles(root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, strings.TrimSuffix(pat, "/..."))
			if err := walkGoFiles(base, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, ".go"):
			p := pat
			if !filepath.IsAbs(p) {
				p = filepath.Join(root, p)
			}
			if _, err := os.Stat(p); err != nil {
				return nil, err
			}
			add(p)
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(root, dir)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(filepath.Join(dir, e.Name()))
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkGoFiles adds every .go file below base, skipping hidden
// directories and testdata.
func walkGoFiles(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			add(path)
		}
		return nil
	})
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
