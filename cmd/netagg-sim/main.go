// Command netagg-sim regenerates the paper's simulation figures (§2.4 and
// §4.1: Figs 2, 3, 6-14) on the flow-level data centre simulator and prints
// the same rows/series the paper plots, plus the repository's own planner
// and dynamic-tree experiments (EXPERIMENTS.md "planner" and "replan").
//
// Usage:
//
//	netagg-sim [-scale small|medium|full] [-seed N] [-workers N]
//	           [-cpuprofile f] [-memprofile f] [fig ...]
//
// With no figure arguments, every simulation figure is regenerated.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netagg/internal/figures"
	"netagg/internal/profiling"
)

var all = map[string]func(figures.Options) *figures.Report{
	"fig02":   figures.Fig02,
	"fig03":   figures.Fig03,
	"fig06":   figures.Fig06,
	"fig07":   figures.Fig07,
	"fig08":   figures.Fig08,
	"fig09":   figures.Fig09,
	"fig10":   figures.Fig10,
	"fig11":   figures.Fig11,
	"fig12":   figures.Fig12,
	"fig13":   figures.Fig13,
	"fig14":   figures.Fig14,
	"planner": figures.FigPlanner,
	"replan":  figures.FigReplan,
}

var order = []string{
	"fig02", "fig03", "fig06", "fig07", "fig08",
	"fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
	"planner", "replan",
}

func main() {
	scale := flag.String("scale", "full", "cluster scale: small (64 servers), medium (256), full (1024, the paper's)")
	seed := flag.Int64("seed", 1, "workload random seed")
	workers := flag.Int("workers", 0, "scenario fan-out parallelism (0 = GOMAXPROCS); figures are byte-identical for any value")
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [fig ...]\nfigures: %v\nflags:\n", os.Args[0], order)
		flag.PrintDefaults()
	}
	flag.Parse()

	opts := figures.Options{Seed: *seed, Workers: *workers}
	switch *scale {
	case "small":
		opts.Scale = figures.ScaleSmall
	case "medium":
		opts.Scale = figures.ScaleMedium
	case "full":
		opts.Scale = figures.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = order
	}
	for _, name := range targets {
		if _, ok := all[name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (have %v)\n", name, order)
			os.Exit(2)
		}
	}
	stop := prof.Start()
	for _, name := range targets {
		start := time.Now()
		report := all[name](opts)
		fmt.Print(report.String())
		fmt.Printf("(%s regenerated in %.1fs at %s scale)\n\n", report.ID, time.Since(start).Seconds(), opts.Scale)
	}
	stop()
}
