package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFileBothMetrics(t *testing.T) {
	p := writeBench(t, "run.txt", strings.Join([]string{
		"goos: linux",
		"BenchmarkEcho-8   200   12052 ns/op   160 B/op   2 allocs/op",
		"BenchmarkEcho-8   200   12100 ns/op   164 B/op   2 allocs/op",
		"BenchmarkTimeOnly-8   100   5000 ns/op",
		"not a benchmark line",
	}, "\n"))
	got, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	echo := got["BenchmarkEcho"]
	if echo.bop.mean() != 162 {
		t.Errorf("BenchmarkEcho B/op mean = %v, want 162", echo.bop.mean())
	}
	if echo.nsop.mean() != 12076 {
		t.Errorf("BenchmarkEcho ns/op mean = %v, want 12076", echo.nsop.mean())
	}
	to := got["BenchmarkTimeOnly"]
	if to.nsop.n != 1 || to.bop.n != 0 {
		t.Errorf("BenchmarkTimeOnly samples = {bop:%d nsop:%d}, want {0, 1}", to.bop.n, to.nsop.n)
	}
}

func TestCompareGates(t *testing.T) {
	mk := func(v float64) sample { return sample{sum: v, n: 1} }
	cases := []struct {
		name            string
		got, want       sample
		maxGrowth       float64
		floor           float64
		fail, suppessed bool
	}{
		// 25% over a large baseline trips the B/op-style gate.
		{"bop regression", mk(1300), mk(1000), 0.25, 16, true, false},
		{"bop within gate", mk(1200), mk(1000), 0.25, 16, false, false},
		// The looser 50% time gate passes a 40% slowdown and fails 60%.
		{"nsop within gate", mk(14000), mk(10000), 0.5, 1000, false, false},
		{"nsop regression", mk(16000), mk(10000), 0.5, 1000, true, false},
		// Floors: a tiny baseline only fails past the absolute slack.
		{"nsop under floor", mk(900), mk(100), 0.5, 1000, false, false},
		{"nsop past floor", mk(1200), mk(100), 0.5, 1000, true, false},
		{"bop under floor", mk(17), mk(2), 0.25, 16, false, false},
		// A metric missing on either side is not comparable.
		{"no fresh readings", sample{}, mk(100), 0.5, 1000, false, true},
		{"no baseline readings", mk(100), sample{}, 0.5, 1000, false, true},
	}
	for _, c := range cases {
		line := compare("BenchmarkX", "u/op", c.got, c.want, c.maxGrowth, c.floor)
		if c.suppessed {
			if line != "" {
				t.Errorf("%s: got %q, want no output", c.name, line)
			}
			continue
		}
		if gotFail := strings.Contains(line, "FAIL"); gotFail != c.fail {
			t.Errorf("%s: fail=%v, want %v (line %q)", c.name, gotFail, c.fail, line)
		}
	}
}

func TestParseFileStripsProcSuffix(t *testing.T) {
	p := writeBench(t, "run.txt", "BenchmarkEcho-16 10 100 ns/op 8 B/op 1 allocs/op\n")
	got, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkEcho"]; !ok {
		t.Fatalf("keys = %v, want BenchmarkEcho", got)
	}
}
