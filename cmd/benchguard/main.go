// Command benchguard compares a fresh Go benchmark run against a
// checked-in baseline artifact and fails on regressions: any benchmark
// whose mean B/op grows more than -max-growth (default 25%) or whose
// mean ns/op grows more than -max-time-growth (default 50%) over the
// baseline exits non-zero. The time gate is deliberately looser than the
// allocation gate — wall time is noisy across machines and CI load,
// while B/op is deterministic — but a 1.5x slowdown is a real regression
// on any hardware. bench-smoke runs benchguard before overwriting the
// BENCH_*.json artifacts, so a regression breaks CI instead of silently
// re-baselining itself — the failure mode behind the 1488 B/op drift
// this tool was written to catch.
//
// Usage:
//
//	benchguard -baseline BENCH_transport.json fresh-run.txt
//
// Both inputs are raw `go test -bench -benchmem` text (the benchstat
// input format). Benchmarks present in only one file are ignored: new
// benchmarks are allowed, and retired ones don't block.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "", "checked-in benchmark artifact to compare against")
	maxGrowth := flag.Float64("max-growth", 0.25, "maximum allowed fractional B/op growth over the baseline")
	maxTimeGrowth := flag.Float64("max-time-growth", 0.5, "maximum allowed fractional ns/op growth over the baseline")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline <artifact> <fresh-run>")
		os.Exit(2)
	}
	base, err := parseFile(*baselinePath)
	if err != nil {
		// A missing baseline is not a regression: the first run of a new
		// artifact has nothing to compare against.
		if os.IsNotExist(err) {
			fmt.Printf("benchguard: no baseline %s; skipping\n", *baselinePath)
			return
		}
		fatal(err)
	}
	fresh, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no benchmark results in %s", flag.Arg(0)))
	}
	failed := false
	for name, got := range fresh {
		want, ok := base[name]
		if !ok {
			continue
		}
		// An absolute slack floor keeps tiny baselines from tripping on
		// measurement granularity: 16 bytes for allocations, 1000 ns for
		// timer resolution and scheduler jitter on sub-microsecond loops.
		for _, line := range []string{
			compare(name, "B/op", got.bop, want.bop, *maxGrowth, 16),
			compare(name, "ns/op", got.nsop, want.nsop, *maxTimeGrowth, 1000),
		} {
			if line == "" {
				continue
			}
			fmt.Println(line)
			if strings.Contains(line, "FAIL") {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// compare renders one metric's verdict line, or "" when either side has
// no readings for the metric (old artifacts predate the ns/op gate).
func compare(name, unit string, got, want sample, maxGrowth, floor float64) string {
	if got.n == 0 || want.n == 0 {
		return ""
	}
	limit := want.mean() * (1 + maxGrowth)
	if limit < want.mean()+floor {
		limit = want.mean() + floor
	}
	if got.mean() > limit {
		return fmt.Sprintf("benchguard: FAIL %s: %.0f %s vs baseline %.0f %s (> %+.0f%%)",
			name, got.mean(), unit, want.mean(), unit, 100*maxGrowth)
	}
	return fmt.Sprintf("benchguard: ok   %s: %.0f %s vs baseline %.0f %s",
		name, got.mean(), unit, want.mean(), unit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}

// sample accumulates one metric's readings across -count repetitions.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// bench holds one benchmark's readings for both guarded metrics.
type bench struct {
	bop  sample
	nsop sample
}

// parseFile extracts per-benchmark B/op and ns/op from raw
// `go test -bench` output. Lines look like:
//
//	BenchmarkTransportEcho-8   200   12052 ns/op   160 B/op   2 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines travel across
// machines.
func parseFile(path string) (map[string]bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]bench)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := out[name]
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.bop.sum += v
				b.bop.n++
			case "ns/op":
				b.nsop.sum += v
				b.nsop.n++
			}
		}
		out[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
