// Command benchguard compares a fresh Go benchmark run against a
// checked-in baseline artifact and fails when allocation size regresses:
// any benchmark whose mean B/op grows more than -max-growth (default
// 25%) over the baseline exits non-zero. bench-smoke runs it before
// overwriting the BENCH_*.json artifacts, so an alloc regression breaks
// CI instead of silently re-baselining itself — the failure mode behind
// the 1488 B/op drift this tool was written to catch.
//
// Usage:
//
//	benchguard -baseline BENCH_transport.json fresh-run.txt
//
// Both inputs are raw `go test -bench -benchmem` text (the benchstat
// input format). Benchmarks present in only one file are ignored: new
// benchmarks are allowed, and retired ones don't block.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "", "checked-in benchmark artifact to compare against")
	maxGrowth := flag.Float64("max-growth", 0.25, "maximum allowed fractional B/op growth over the baseline")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline <artifact> <fresh-run>")
		os.Exit(2)
	}
	base, err := parseFile(*baselinePath)
	if err != nil {
		// A missing baseline is not a regression: the first run of a new
		// artifact has nothing to compare against.
		if os.IsNotExist(err) {
			fmt.Printf("benchguard: no baseline %s; skipping\n", *baselinePath)
			return
		}
		fatal(err)
	}
	fresh, err := parseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no benchmark results in %s", flag.Arg(0)))
	}
	failed := false
	for name, got := range fresh {
		want, ok := base[name]
		if !ok {
			continue
		}
		limit := want.mean() * (1 + *maxGrowth)
		// An absolute slack floor keeps tiny baselines (a few bytes) from
		// tripping on measurement granularity.
		if limit < want.mean()+16 {
			limit = want.mean() + 16
		}
		if got.mean() > limit {
			failed = true
			fmt.Printf("benchguard: FAIL %s: %.0f B/op vs baseline %.0f B/op (> %+.0f%%)\n",
				name, got.mean(), want.mean(), 100**maxGrowth)
		} else {
			fmt.Printf("benchguard: ok   %s: %.0f B/op vs baseline %.0f B/op\n",
				name, got.mean(), want.mean())
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}

// sample accumulates the B/op readings of one benchmark across -count
// repetitions.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// parseFile extracts per-benchmark B/op from raw `go test -bench` output.
// Lines look like:
//
//	BenchmarkTransportEcho-8   200   12052 ns/op   160 B/op   2 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines travel across
// machines.
func parseFile(path string) (map[string]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "B/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			s := out[name]
			s.sum += v
			s.n++
			out[name] = s
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
