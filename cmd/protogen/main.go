// Command protogen keeps the protocol matrix in DESIGN.md §17 generated
// from the live table in internal/wire/protocol.go. The document embeds
// the matrix between marker comments:
//
//	<!-- protogen:matrix:begin -->
//	...generated table...
//	<!-- protogen:matrix:end -->
//
// Modes:
//
//	protogen -check    exit 1 if the embedded matrix is stale (CI gate)
//	protogen -write    regenerate the matrix in place
//
// The generator is the source of truth's only renderer: hand-editing
// the embedded table is always wrong, and `make protocol-check` makes
// it fail loudly instead of silently drifting from the Go table the
// protocheck analyzer and the netaggdebug runtime assertions enforce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netagg/internal/wire"
)

const (
	beginMarker = "<!-- protogen:matrix:begin -->"
	endMarker   = "<!-- protogen:matrix:end -->"
)

func main() {
	check := flag.Bool("check", false, "fail if the embedded matrix is stale")
	write := flag.Bool("write", false, "regenerate the embedded matrix in place")
	doc := flag.String("doc", "DESIGN.md", "document holding the matrix markers")
	flag.Parse()
	if *check == *write {
		fmt.Fprintln(os.Stderr, "usage: protogen -check | protogen -write [-doc DESIGN.md]")
		os.Exit(2)
	}

	data, err := os.ReadFile(*doc)
	if err != nil {
		fatal(err)
	}
	updated, err := splice(string(data), wire.ProtocolMatrix())
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *doc, err))
	}

	if *check {
		if updated != string(data) {
			fmt.Fprintf(os.Stderr, "protogen: %s protocol matrix is stale; run `go run ./cmd/protogen -write`\n", *doc)
			os.Exit(1)
		}
		fmt.Printf("protogen: %s matrix matches internal/wire/protocol.go\n", *doc)
		return
	}
	if updated == string(data) {
		fmt.Printf("protogen: %s already up to date\n", *doc)
		return
	}
	if err := os.WriteFile(*doc, []byte(updated), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("protogen: wrote %s\n", *doc)
}

// splice replaces the region between the markers with the rendered
// matrix, leaving the markers in place.
func splice(doc, matrix string) (string, error) {
	begin := strings.Index(doc, beginMarker)
	if begin < 0 {
		return "", fmt.Errorf("missing %q marker", beginMarker)
	}
	rest := doc[begin+len(beginMarker):]
	end := strings.Index(rest, endMarker)
	if end < 0 {
		return "", fmt.Errorf("missing %q marker", endMarker)
	}
	if strings.Contains(rest[end+len(endMarker):], beginMarker) {
		return "", fmt.Errorf("multiple %q markers", beginMarker)
	}
	return doc[:begin+len(beginMarker)] + "\n" + strings.TrimSuffix(matrix, "\n") + "\n" +
		doc[begin+len(beginMarker)+end:], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protogen:", err)
	os.Exit(2)
}
