package main

import (
	"strings"
	"testing"

	"netagg/internal/wire"
)

func TestSpliceReplacesBetweenMarkers(t *testing.T) {
	doc := "head\n" + beginMarker + "\nold table\n" + endMarker + "\ntail\n"
	got, err := splice(doc, "| new |\n")
	if err != nil {
		t.Fatal(err)
	}
	want := "head\n" + beginMarker + "\n| new |\n" + endMarker + "\ntail\n"
	if got != want {
		t.Fatalf("splice = %q, want %q", got, want)
	}
	// Idempotent: re-splicing the result changes nothing.
	again, err := splice(got, "| new |\n")
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("splice is not idempotent")
	}
}

func TestSpliceErrors(t *testing.T) {
	for _, doc := range []string{
		"no markers at all",
		beginMarker + "\nno end",
		beginMarker + "\n" + endMarker + "\n" + beginMarker + "\n" + endMarker,
	} {
		if _, err := splice(doc, "x"); err == nil {
			t.Errorf("splice(%q) succeeded, want error", doc)
		}
	}
}

func TestMatrixCoversEveryRule(t *testing.T) {
	m := wire.ProtocolMatrix()
	for _, r := range wire.Protocol() {
		if !strings.Contains(m, r.Name) {
			t.Errorf("matrix is missing frame %s", r.Name)
		}
	}
}
