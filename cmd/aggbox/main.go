// Command aggbox runs a standalone NetAgg aggregation middlebox: it listens
// for partial-result streams from shim layers (or upstream boxes), executes
// the configured aggregation functions on its cooperative task scheduler,
// and forwards aggregated results along the routes the streams carry
// (§3.2.1). The built-in aggregation functions cover the paper's workloads:
//
//	wordcount    key/value sum combiner (Hadoop-style)
//	kvmax,kvmin  key/value max/min combiners
//	topk         top-k search result merge (k=10)
//	sample       random-subset search aggregation (α=0.05)
//	categorise   CPU-intensive per-category top-k classification
//	concat       identity concatenation (no reduction)
//
// Usage:
//
//	aggbox [-addr :7100] [-id 1] [-workers 8] [-fixed-wfq] [-debug 127.0.0.1:7180]
//
// With -debug, the box serves the /debug/netagg observability endpoint
// (live metrics, per-request traces, health, pprof — see OPERATIONS.md)
// on the given address.
//
// Multiple boxes can be chained by shims that put several box addresses on
// a stream's route.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"netagg/internal/agg"
	"netagg/internal/core"
	"netagg/internal/corpus"
	"netagg/internal/obs"
)

// newRegistry builds the box's application registry (shared with the
// shutdown test).
func newRegistry() *agg.Registry {
	reg := agg.NewRegistry()
	reg.Register("wordcount", agg.KVCombiner{Op: agg.OpSum})
	reg.Register("kvmax", agg.KVCombiner{Op: agg.OpMax})
	reg.Register("kvmin", agg.KVCombiner{Op: agg.OpMin})
	reg.Register("topk", agg.TopK{K: 10})
	reg.Register("sample", agg.Sample{Ratio: 0.05})
	reg.Register("categorise", agg.Categorise{K: 10, Categories: corpus.Categories()})
	reg.Register("concat", agg.Concat{})
	return reg
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	id := flag.Uint64("id", 1, "box identifier (must be unique per deployment)")
	workers := flag.Int("workers", 8, "scheduler thread pool size")
	fixed := flag.Bool("fixed-wfq", false, "disable adaptive weighted fair queuing")
	debug := flag.String("debug", "", "serve /debug/netagg observability endpoint on this address (empty = off)")
	flag.Parse()

	reg := newRegistry()

	// The signal context is the box's lifetime: SIGINT/SIGTERM cancels
	// it, which tears the transport layer down; Close drains the rest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	box, err := core.Start(core.Config{
		ID:           *id << 32,
		Addr:         *addr,
		Workers:      *workers,
		FixedWeights: *fixed,
		Registry:     reg,
		Context:      ctx,
	})
	if err != nil {
		log.Fatalf("aggbox: %v", err)
	}
	fmt.Printf("aggbox %d listening on %s (apps: %v)\n", *id, box.Addr(), reg.Apps())

	if *debug != "" {
		health := func() map[string]interface{} {
			st := box.Stats()
			return map[string]interface{}{
				"box_id":    *id,
				"data_addr": box.Addr(),
				"requests":  st.Requests,
				"bytes_in":  st.BytesIn,
				"bytes_out": st.BytesOut,
				"combines":  st.Combines,
			}
		}
		dbgAddr, stopDbg, err := obs.Serve(ctx, *debug, obs.Handler(obs.Default, obs.DefaultTracer, health))
		if err != nil {
			log.Fatalf("aggbox: debug endpoint: %v", err)
		}
		defer stopDbg()
		fmt.Printf("aggbox %d debug endpoint on http://%s/debug/netagg/metrics\n", *id, dbgAddr)
	}

	<-ctx.Done()
	st := box.Stats()
	fmt.Printf("aggbox shutting down: %d requests, %.1f MB in, %.1f MB out, %d combines\n",
		st.Requests, float64(st.BytesIn)/1e6, float64(st.BytesOut)/1e6, st.Combines)
	box.Close()
}
