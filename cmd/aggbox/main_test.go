package main

import (
	"net"
	"testing"
	"time"

	"netagg/internal/core"
	"netagg/internal/testutil"
	"netagg/internal/wire"
)

func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }

// TestBoxShutdownLeavesNoGoroutines drives the daemon's box through a
// heartbeat and a full aggregation request, then closes it: Close must
// leave zero reader/scheduler goroutines behind (the daemon restarts
// boxes on config changes in deployment scripts, so leaks compound).
func TestBoxShutdownLeavesNoGoroutines(t *testing.T) {
	testutil.CheckLeaks(t)

	box, err := core.Start(core.Config{
		ID:       1 << 32,
		Workers:  4,
		Registry: newRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Result listener standing in for a master shim.
	resLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer resLn.Close()
	results := make(chan *wire.Msg, 1)
	go func() {
		conn, err := resLn.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := wire.NewReader(conn)
		for {
			m, err := r.Read()
			if err != nil {
				return
			}
			if m.Type == wire.TResult {
				results <- m
				return
			}
		}
	}()

	conn, err := net.Dial("tcp", box.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := wire.NewWriter(conn)
	r := wire.NewReader(conn)

	// Heartbeat echo proves the reader goroutine is live.
	if err := w.Write(&wire.Msg{Type: wire.THeartbeat, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	hb, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if hb.Type != wire.THeartbeat || hb.Seq != 42 {
		t.Fatalf("heartbeat echo = %v seq %d, want heartbeat seq 42", hb.Type, hb.Seq)
	}

	// One single-source wordcount aggregation routed to the listener.
	route := wire.EncodeStrings([]string{resLn.Addr().String()})
	frames := []*wire.Msg{
		{Type: wire.THello, App: "concat", Req: 7, Source: 1, Payload: route},
		{Type: wire.TExpect, App: "concat", Req: 7, Payload: wire.EncodeCount(1)},
		{Type: wire.TData, App: "concat", Req: 7, Source: 1, Payload: []byte("hello")},
		{Type: wire.TEnd, App: "concat", Req: 7, Source: 1},
	}
	for _, m := range frames {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-results:
		if string(res.Payload) != "hello" {
			t.Fatalf("aggregated payload = %q, want %q", res.Payload, "hello")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no TResult within 5s")
	}

	box.Close()
	// CheckLeaks (via t.Cleanup) now verifies the accept loop, the
	// connection reader, the janitor, and all scheduler workers exited.
}
