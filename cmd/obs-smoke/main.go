// Command obs-smoke is the observability smoke test wired into CI
// (`make obs-smoke`): it brings up a small in-process testbed with the
// /debug/netagg endpoint enabled, pushes one word-count job through the
// aggregation fabric, then fetches and validates every endpoint —
// malformed JSON, missing layer metrics, or an incomplete request trace
// fail the run with a non-zero exit.
//
// It exercises the same code path an operator uses (HTTP against a live
// deployment, see OPERATIONS.md), so it catches regressions the unit
// tests cannot: a handler that stops serving, an instrumented layer
// that silently goes dark, or an export that breaks JSON consumers.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"netagg/internal/agg"
	"netagg/internal/testbed"
	"netagg/internal/treeplan"
)

func main() {
	if err := run(); err != nil {
		log.Printf("obs-smoke: FAIL: %v", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: OK")
}

func run() error {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})

	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 2,
		BoxesPerSwitch: 2,
		Registry:       reg,
		// The straggler timer re-syncs workers whose requests the forced
		// migration below re-epochs before they have anything buffered.
		StragglerTimeout: 300 * time.Millisecond,
		DebugAddr:        "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	// One complete job so every layer has something to report.
	const reqID = 7
	workers := tb.WorkerHosts()
	pending, err := tb.Master.Submit("wc", reqID, workers, 1)
	if err != nil {
		return err
	}
	for i, host := range workers {
		part := agg.EncodeKVs([]agg.KV{{Key: "smoke", Val: int64(i + 1)}})
		if err := tb.Workers[host].SendPartials("wc", reqID, i, testbed.MasterHost, [][]byte{part}, 1); err != nil {
			return err
		}
	}
	select {
	case res := <-pending.C:
		if res.Err != nil {
			return fmt.Errorf("job failed: %w", res.Err)
		}
		res.Release()
	case <-time.After(10 * time.Second):
		return fmt.Errorf("job did not complete within 10s")
	}

	// A forced subtree migration so the replan.* metrics and the
	// "migrate" trace hop have something to report (DESIGN.md §16,
	// OPERATIONS.md §9): a second request is submitted, then a replanner
	// wired like Testbed.StartReplanner is ticked with fake-hot telemetry
	// one box at a time until the migration moves the pending request.
	// The workers send only afterwards — at the superseded epoch — so the
	// straggler timer must re-sync them and the request must still
	// complete exactly once.
	const migReq = 9
	pendingMig, err := tb.Master.Submit("wc", migReq, workers, 1)
	if err != nil {
		return err
	}
	tel := treeplan.StaticTelemetry{}
	migrated := 0
	rp := treeplan.NewReplanner(treeplan.ReplannerConfig{
		Policy:    treeplan.ReplanPolicy{HotLoadUs: 1, HotStreak: 1, CooldownTicks: 1 << 20},
		Boxes:     tb.Dep.PlannerBoxes,
		Telemetry: tel,
		Mark:      tb.Dep.MarkCongested,
		Migrate: func(id uint64) int {
			n := tb.Master.MigrateAway(id)
			migrated += n
			return n
		},
	})
	for _, b := range tb.Dep.Boxes() {
		tel[b.ID] = treeplan.LoadSignal{QueueDepth: 1 << 20}
		rp.Tick()
		delete(tel, b.ID)
		if migrated > 0 {
			break
		}
	}
	if migrated == 0 {
		return fmt.Errorf("forced replan never migrated the pending request")
	}
	for i, host := range workers {
		part := agg.EncodeKVs([]agg.KV{{Key: "mig", Val: int64(i + 1)}})
		if err := tb.Workers[host].SendPartials("wc", migReq, i, testbed.MasterHost, [][]byte{part}, 1); err != nil {
			return err
		}
	}
	select {
	case res := <-pendingMig.C:
		if res.Err != nil {
			return fmt.Errorf("migrated job failed: %w", res.Err)
		}
		if res.Attempts < 1 {
			return fmt.Errorf("migrated job reports %d attempts, want >= 1", res.Attempts)
		}
		res.Release()
	case <-time.After(10 * time.Second):
		return fmt.Errorf("migrated job did not complete within 10s")
	}

	base := "http://" + tb.DebugAddr() + "/debug/netagg"

	// /metrics must be valid JSON and contain at least one metric from
	// every instrumented layer.
	var metrics struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := getJSON(base+"/metrics", &metrics); err != nil {
		return err
	}
	for _, want := range []string{
		"transport.frames_out", "transport.writev_calls", "transport.batch_frames",
		"box.frames_aggregated", "box.cutthrough_merges",
		"plan.replans", "plan.dead_boxes_skipped", "plan.slow_boxes_avoided",
		"replan.ticks", "replan.migrations", "replan.migrated_requests",
		"replan.cooldown_holds", "box.requests_cancelled", "transport.replay_trimmed",
	} {
		if _, ok := metrics.Counters[want]; !ok {
			return fmt.Errorf("/metrics missing counter %q (got %d counters)", want, len(metrics.Counters))
		}
	}
	for _, want := range []string{"shim.partial_bytes", "box.flush_latency_us", "box.fanin_parts", "plan.compute_us", "transport.batch_size"} {
		if _, ok := metrics.Histograms[want]; !ok {
			return fmt.Errorf("/metrics missing histogram %q (got %d histograms)", want, len(metrics.Histograms))
		}
	}
	if metrics.Counters["box.frames_aggregated"] == 0 {
		return fmt.Errorf("box.frames_aggregated is 0 after a completed job")
	}
	// The batched write path must actually have been exercised: every
	// frame the job pushed went through a flusher's vectored write.
	if metrics.Counters["transport.writev_calls"] == 0 {
		return fmt.Errorf("transport.writev_calls is 0 after a completed job")
	}
	if metrics.Counters["transport.batch_frames"] < metrics.Counters["transport.writev_calls"] {
		return fmt.Errorf("transport.batch_frames (%d) < transport.writev_calls (%d)",
			metrics.Counters["transport.batch_frames"], metrics.Counters["transport.writev_calls"])
	}
	// The forced migration must be visible to an operator reading the
	// replan.* metrics (OPERATIONS.md §9).
	if metrics.Counters["replan.ticks"] == 0 {
		return fmt.Errorf("replan.ticks is 0 after ticking the replanner")
	}
	if metrics.Counters["replan.migrations"] == 0 {
		return fmt.Errorf("replan.migrations is 0 after a forced migration")
	}
	if metrics.Counters["replan.migrated_requests"] == 0 {
		return fmt.Errorf("replan.migrated_requests is 0 after a forced migration")
	}
	if _, ok := metrics.Gauges["replan.congested_boxes"]; !ok {
		return fmt.Errorf("/metrics missing gauge replan.congested_boxes")
	}

	// /traces must hold a completed trace for the job with all hops, and
	// the forced migration must have left a "migrate" span on some trace
	// (the superseded attempt's — it never completes, so look at active
	// and recent alike; see OPERATIONS.md §9).
	type traceInfo struct {
		App   string `json:"app"`
		Done  bool   `json:"done"`
		Spans []struct {
			Hop string `json:"hop"`
		} `json:"spans"`
	}
	var traces struct {
		Active []traceInfo `json:"active"`
		Recent []traceInfo `json:"recent"`
	}
	if err := getJSON(base+"/traces", &traces); err != nil {
		return err
	}
	found, migrateSpan := false, false
	for _, tr := range append(traces.Recent, traces.Active...) {
		if tr.App != "wc" {
			continue
		}
		hops := map[string]int{}
		for _, s := range tr.Spans {
			hops[s.Hop]++
		}
		if hops["migrate"] > 0 {
			migrateSpan = true
		}
		if tr.Done && hops["shim.send"] > 0 && hops["box"] > 0 && hops["master"] > 0 {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("/traces has no completed wc trace covering shim.send, box, and master hops")
	}
	if !migrateSpan {
		return fmt.Errorf("/traces has no wc trace with a migrate span after the forced migration")
	}

	// /health must be valid JSON reporting the deployment shape.
	var health map[string]interface{}
	if err := getJSON(base+"/health", &health); err != nil {
		return err
	}
	for _, want := range []string{"status", "boxes", "workers"} {
		if _, ok := health[want]; !ok {
			return fmt.Errorf("/health missing %q", want)
		}
	}

	// The table rendering must not panic and must mention a known metric.
	table, err := getBody(base + "/metrics?format=table")
	if err != nil {
		return err
	}
	if !strings.Contains(table, "box.frames_aggregated") {
		return fmt.Errorf("table export missing box.frames_aggregated")
	}
	return nil
}

func getBody(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

func getJSON(url string, into interface{}) error {
	body, err := getBody(url)
	if err != nil {
		return err
	}
	if err := json.Unmarshal([]byte(body), into); err != nil {
		return fmt.Errorf("GET %s: malformed JSON: %w", url, err)
	}
	return nil
}
