// Command obs-smoke is the observability smoke test wired into CI
// (`make obs-smoke`): it brings up a small in-process testbed with the
// /debug/netagg endpoint enabled, pushes one word-count job through the
// aggregation fabric, then fetches and validates every endpoint —
// malformed JSON, missing layer metrics, or an incomplete request trace
// fail the run with a non-zero exit.
//
// It exercises the same code path an operator uses (HTTP against a live
// deployment, see OPERATIONS.md), so it catches regressions the unit
// tests cannot: a handler that stops serving, an instrumented layer
// that silently goes dark, or an export that breaks JSON consumers.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"netagg/internal/agg"
	"netagg/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Printf("obs-smoke: FAIL: %v", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: OK")
}

func run() error {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})

	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 2,
		BoxesPerSwitch: 1,
		Registry:       reg,
		DebugAddr:      "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	// One complete job so every layer has something to report.
	const reqID = 7
	workers := tb.WorkerHosts()
	pending, err := tb.Master.Submit("wc", reqID, workers, 1)
	if err != nil {
		return err
	}
	for i, host := range workers {
		part := agg.EncodeKVs([]agg.KV{{Key: "smoke", Val: int64(i + 1)}})
		if err := tb.Workers[host].SendPartials("wc", reqID, i, testbed.MasterHost, [][]byte{part}, 1); err != nil {
			return err
		}
	}
	select {
	case res := <-pending.C:
		if res.Err != nil {
			return fmt.Errorf("job failed: %w", res.Err)
		}
		res.Release()
	case <-time.After(10 * time.Second):
		return fmt.Errorf("job did not complete within 10s")
	}

	base := "http://" + tb.DebugAddr() + "/debug/netagg"

	// /metrics must be valid JSON and contain at least one metric from
	// every instrumented layer.
	var metrics struct {
		Counters   map[string]int64           `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := getJSON(base+"/metrics", &metrics); err != nil {
		return err
	}
	for _, want := range []string{
		"transport.frames_out", "transport.writev_calls", "transport.batch_frames",
		"box.frames_aggregated", "box.cutthrough_merges",
		"plan.replans", "plan.dead_boxes_skipped",
	} {
		if _, ok := metrics.Counters[want]; !ok {
			return fmt.Errorf("/metrics missing counter %q (got %d counters)", want, len(metrics.Counters))
		}
	}
	for _, want := range []string{"shim.partial_bytes", "box.flush_latency_us", "box.fanin_parts", "plan.compute_us", "transport.batch_size"} {
		if _, ok := metrics.Histograms[want]; !ok {
			return fmt.Errorf("/metrics missing histogram %q (got %d histograms)", want, len(metrics.Histograms))
		}
	}
	if metrics.Counters["box.frames_aggregated"] == 0 {
		return fmt.Errorf("box.frames_aggregated is 0 after a completed job")
	}
	// The batched write path must actually have been exercised: every
	// frame the job pushed went through a flusher's vectored write.
	if metrics.Counters["transport.writev_calls"] == 0 {
		return fmt.Errorf("transport.writev_calls is 0 after a completed job")
	}
	if metrics.Counters["transport.batch_frames"] < metrics.Counters["transport.writev_calls"] {
		return fmt.Errorf("transport.batch_frames (%d) < transport.writev_calls (%d)",
			metrics.Counters["transport.batch_frames"], metrics.Counters["transport.writev_calls"])
	}

	// /traces must hold a completed trace for the job with all hops.
	var traces struct {
		Active []json.RawMessage `json:"active"`
		Recent []struct {
			App   string `json:"app"`
			Done  bool   `json:"done"`
			Spans []struct {
				Hop string `json:"hop"`
			} `json:"spans"`
		} `json:"recent"`
	}
	if err := getJSON(base+"/traces", &traces); err != nil {
		return err
	}
	found := false
	for _, tr := range traces.Recent {
		if tr.App != "wc" || !tr.Done {
			continue
		}
		hops := map[string]int{}
		for _, s := range tr.Spans {
			hops[s.Hop]++
		}
		if hops["shim.send"] > 0 && hops["box"] > 0 && hops["master"] > 0 {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("/traces has no completed wc trace covering shim.send, box, and master hops")
	}

	// /health must be valid JSON reporting the deployment shape.
	var health map[string]interface{}
	if err := getJSON(base+"/health", &health); err != nil {
		return err
	}
	for _, want := range []string{"status", "boxes", "workers"} {
		if _, ok := health[want]; !ok {
			return fmt.Errorf("/health missing %q", want)
		}
	}

	// The table rendering must not panic and must mention a known metric.
	table, err := getBody(base + "/metrics?format=table")
	if err != nil {
		return err
	}
	if !strings.Contains(table, "box.frames_aggregated") {
		return fmt.Errorf("table export missing box.frames_aggregated")
	}
	return nil
}

func getBody(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

func getJSON(url string, into interface{}) error {
	body, err := getBody(url)
	if err != nil {
		return err
	}
	if err := json.Unmarshal([]byte(body), into); err != nil {
		return fmt.Errorf("GET %s: malformed JSON: %w", url, err)
	}
	return nil
}
