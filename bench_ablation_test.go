package bench

import (
	"testing"
	"time"

	"netagg/internal/core"
	"netagg/internal/simexp"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// ablationRun executes the default medium-scale workload under NetAgg with
// the given strategy and simulator options.
func ablationRun(b *testing.B, strat strategies.Strategy, o simexp.Opts) *simexp.Result {
	b.Helper()
	topo, err := topology.BuildClos(figuresMediumClos())
	if err != nil {
		b.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	w := workload.Generate(topo, workload.Default())
	return simexp.RunWith(topo, w, strat, o)
}

func figuresMediumClos() topology.ClosConfig {
	return simOpts.Scale.Clos()
}

// BenchmarkAblationStreaming compares NetAgg's streaming (pipelined)
// aggregation against store-and-forward boxes that buffer whole inputs
// before forwarding — the design choice behind the paper's pipelined local
// aggregation trees (§3.2.1).
func BenchmarkAblationStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stream := ablationRun(b, strategies.NetAgg{}, simexp.Opts{})
		sf := ablationRun(b, strategies.NetAgg{}, simexp.Opts{StoreAndForward: true})
		if i == 0 {
			b.Logf("\njob p99 FCT: streaming %.4gms, store-and-forward %.4gms (%.2fx slower buffered)",
				stream.JobFCT.P99()*1000, sf.JobFCT.P99()*1000,
				sf.JobFCT.P99()/stream.JobFCT.P99())
		}
	}
}

// BenchmarkAblationReduceSemantics compares the paper's per-hop α reduction
// against the conservation-consistent of-original model (see the
// strategies package comment) for the headline NetAgg-vs-rack ratio.
func BenchmarkAblationReduceSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, _ := topology.BuildClos(figuresMediumClos())
		w := workload.Generate(topo, workload.Default())
		rack := simexp.Run(topo, w, strategies.Rack{}, false)
		perHop := ablationRun(b, strategies.NetAgg{Mode: strategies.ReducePerHop}, simexp.Opts{})
		original := ablationRun(b, strategies.NetAgg{Mode: strategies.ReduceOfOriginal}, simexp.Opts{})
		if i == 0 {
			b.Logf("\nnetagg/rack p99 FCT: per-hop %.3f, of-original %.3f",
				perHop.AllFCT.P99()/rack.AllFCT.P99(),
				original.AllFCT.P99()/rack.AllFCT.P99())
		}
	}
}

// BenchmarkAblationAggregationTrees varies the number of aggregation trees
// per job (§3.1 "Multiple aggregation trees per application"), reporting
// job-level completion (per-flow FCTs are not comparable across
// decompositions).
func BenchmarkAblationAggregationTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var line string
		for _, trees := range []int{1, 2, 4} {
			res := ablationRun(b, strategies.NetAgg{Trees: trees}, simexp.Opts{})
			line += " " + formatTreePoint(trees, res.JobFCT.P99())
		}
		if i == 0 {
			b.Logf("\njob p99 FCT by trees/job:%s (boxes=1/switch: trees share boxes, diversify core paths)", line)
		}
	}
}

func formatTreePoint(trees int, p99 float64) string {
	return time.Duration(p99*float64(time.Second)).Round(10*time.Microsecond).String() +
		"(x" + string(rune('0'+trees)) + ")"
}

// BenchmarkAblationMaxMinVsNaive compares the simulator's progressive
// filling max-min allocator against a naive equal-share allocator: the
// naive model under-utilises links and inflates FCTs while being cheaper
// per event.
func BenchmarkAblationMaxMinVsNaive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		exact := ablationRun(b, strategies.NetAgg{}, simexp.Opts{})
		exactDur := time.Since(t0)
		t0 = time.Now()
		naive := ablationRun(b, strategies.NetAgg{}, simexp.Opts{NaiveAllocation: true})
		naiveDur := time.Since(t0)
		if i == 0 {
			b.Logf("\nmax-min: p99=%.4gms wall=%v; naive: p99=%.4gms wall=%v (naive inflates FCT %.2fx)",
				exact.AllFCT.P99()*1000, exactDur.Round(time.Millisecond),
				naive.AllFCT.P99()*1000, naiveDur.Round(time.Millisecond),
				naive.AllFCT.P99()/exact.AllFCT.P99())
		}
	}
}

// BenchmarkAblationAdaptiveWFQ quantifies the fairness error of fixed
// versus adaptive weighted fair queuing under the Solr/Hadoop task-length
// asymmetry (Figs 25-26): the deviation of the long-task app's CPU share
// from its 50% target.
func BenchmarkAblationAdaptiveWFQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixedDev := wfqShareDeviation(false)
		adaptiveDev := wfqShareDeviation(true)
		if i == 0 {
			b.Logf("\nCPU-share deviation from 50%% target: fixed WFQ %.1f%%, adaptive WFQ %.1f%%",
				fixedDev, adaptiveDev)
		}
	}
}

// wfqShareDeviation measures |solr share − 50| with both apps backlogged.
func wfqShareDeviation(adaptive bool) float64 {
	sched := core.NewScheduler(core.SchedulerConfig{Workers: 4, Adaptive: adaptive, Seed: 1})
	defer sched.CloseNow()
	sched.Register("solr", 1)
	sched.Register("hadoop", 1)
	for i := 0; i < 3000; i++ {
		sched.Submit("solr", func() { time.Sleep(10 * time.Millisecond) })
		for j := 0; j < 4; j++ {
			sched.Submit("hadoop", func() { time.Sleep(time.Millisecond) })
		}
	}
	time.Sleep(800 * time.Millisecond)
	solr := sched.CPUTime("solr").Seconds()
	hadoop := sched.CPUTime("hadoop").Seconds()
	share := 100 * solr / (solr + hadoop)
	if share < 50 {
		return 50 - share
	}
	return share - 50
}

// BenchmarkExtensionFanout measures the §5 one-to-many extension:
// broadcast to every worker directly versus through the agg box overlay.
func BenchmarkExtensionFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tbfigExtFanout()
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}
