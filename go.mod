module netagg

go 1.22
