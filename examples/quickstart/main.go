// Quickstart: the smallest complete NetAgg deployment — four workers in two
// racks, three agg boxes (one per ToR switch, one at the aggregation
// switch), worker shims, and a master shim. The workers each hold a
// word-count partial result; NetAgg aggregates them on-path so the master
// receives a single combined result instead of four raw ones.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"netagg/internal/agg"
	"netagg/internal/testbed"
)

func main() {
	// An aggregation function registry: the boxes will run the word-count
	// combiner for the application named "wc".
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})

	// Two racks × two workers, one agg box per switch (2 ToRs + 1 agg).
	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 2,
		BoxesPerSwitch: 1,
		Registry:       reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// The master registers the request: NetAgg plans the aggregation tree
	// and tells each box how many sources to expect.
	const reqID = 1
	workers := tb.WorkerHosts()
	pending, err := tb.Master.Submit("wc", reqID, workers, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Each worker ships its partial result through its shim layer, which
	// transparently redirects it to the first agg box on the path to the
	// master.
	for i, host := range workers {
		partial := agg.EncodeKVs([]agg.KV{
			{Key: "hello", Val: int64(i + 1)},
			{Key: "from-" + host, Val: 1},
		})
		if err := tb.Workers[host].SendPartials("wc", reqID, i, testbed.MasterHost, [][]byte{partial}, 1); err != nil {
			log.Fatal(err)
		}
	}

	// The master shim delivers the aggregated result: one part, because a
	// box sits on every path and the chains converge at the master's ToR.
	res := <-pending.C
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("master received %d aggregated part(s)\n", len(res.Parts))
	for _, part := range res.Parts {
		kvs, err := agg.DecodeKVs(part)
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("  %-16s %d\n", kv.Key, kv.Val)
		}
	}
	res.Release()

	st := tb.BoxStats()
	fmt.Printf("agg boxes processed %d bytes across %d requests (%d combines)\n",
		st.BytesIn, st.Requests, st.Combines)
}
