// WordCount with on-path combiners: a MapReduce job over eight mappers,
// run plain (all intermediate data shuffles to the reducer) and with a
// NetAgg box running the combiner on-path. The outputs match; the reducer's
// inbound volume and the shuffle+reduce time do not.
//
// Run with: go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	"netagg/internal/agg"
	"netagg/internal/mapred"
	"netagg/internal/testbed"
)

func run(boxes int, inputs [][]string) (*mapred.Result, error) {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	tb, err := testbed.New(testbed.Config{
		Racks:          1,
		WorkersPerRack: len(inputs),
		BoxesPerSwitch: boxes,
		EdgeGbps:       1,
		BoxGbps:        10,
		Registry:       reg,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	return mapred.Run(tb, 1, mapred.JobConfig{
		App:            "wc",
		Op:             agg.OpSum,
		MapSideCombine: true,
	}, inputs, mapred.WordCount().Map)
}

func main() {
	wc := mapred.WordCount()
	inputs := wc.Gen(mapred.GenConfig{Seed: 3, Splits: 8, RecordsPerSplit: 6000, Keys: 5000})

	plain, err := run(0, inputs)
	if err != nil {
		log.Fatal(err)
	}
	boxed, err := run(1, inputs)
	if err != nil {
		log.Fatal(err)
	}

	if len(plain.Output) != len(boxed.Output) {
		log.Fatalf("outputs differ: %d vs %d keys", len(plain.Output), len(boxed.Output))
	}
	for i := range plain.Output {
		if plain.Output[i] != boxed.Output[i] {
			log.Fatalf("key %q differs", plain.Output[i].Key)
		}
	}

	fmt.Printf("word count over %d mappers: %d distinct words (identical outputs)\n",
		len(inputs), len(plain.Output))
	fmt.Printf("%-22s %12s %18s\n", "", "reducer MB", "shuffle+reduce")
	fmt.Printf("%-22s %12.2f %18s\n", "plain Hadoop-style", float64(plain.BytesToReducer)/1e6, plain.ShuffleReduceTime)
	fmt.Printf("%-22s %12.2f %18s\n", "with NetAgg on-path", float64(boxed.BytesToReducer)/1e6, boxed.ShuffleReduceTime)
	fmt.Printf("speedup: %.2fx, reducer volume: %.1fx less\n",
		plain.ShuffleReduceTime.Seconds()/boxed.ShuffleReduceTime.Seconds(),
		float64(plain.BytesToReducer)/float64(boxed.BytesToReducer))
}
