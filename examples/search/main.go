// Distributed search with on-path aggregation: a Solr-style deployment with
// eight backends over two racks, queried twice — once plain and once with
// NetAgg boxes running top-k aggregation on-path. The results are
// identical; the bytes arriving at the frontend are not.
//
// Run with: go run ./examples/search
package main

import (
	"fmt"
	"log"

	"netagg/internal/agg"
	"netagg/internal/corpus"
	"netagg/internal/search"
	"netagg/internal/stats"
	"netagg/internal/testbed"
)

func run(boxes int, terms []string) (*search.Response, error) {
	reg := agg.NewRegistry()
	reg.Register("search", agg.TopK{K: 5})
	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 4,
		BoxesPerSwitch: boxes,
		Registry:       reg,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	cl, err := search.Deploy(tb, search.DeployConfig{
		App:        "search",
		Corpus:     corpus.Config{Seed: 7, Docs: 1600, WordsPerDoc: 90, VocabularySize: 900, ZipfS: 1.1},
		Aggregator: agg.TopK{K: 5},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.Frontend.Query(terms, 40, false)
}

func main() {
	rn := stats.NewRand(42)
	terms := corpus.QueryWords(rn, 900, 3)
	fmt.Printf("query: %v\n\n", terms)

	plain, err := run(0, terms)
	if err != nil {
		log.Fatal(err)
	}
	boxed, err := run(1, terms)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-5 results (identical under both deployments):")
	for i, d := range boxed.Docs {
		fmt.Printf("  %d. doc %-6d score %.3f\n", i+1, d.ID, d.Score)
	}
	for i := range boxed.Docs {
		if plain.Docs[i].ID != boxed.Docs[i].ID {
			log.Fatalf("aggregation changed the results — rank %d differs", i)
		}
	}
	fmt.Printf("\nbytes reaching the frontend: plain %d, with NetAgg %d (%.1fx less)\n",
		plain.Bytes, boxed.Bytes, float64(plain.Bytes)/float64(boxed.Bytes))
}
