// Flow-level simulation: a small data centre (64 servers, 1 Gbps edges,
// 1:4 over-subscribed) runs the paper's synthetic partition/aggregation
// workload under each aggregation strategy. The table shows the 99th
// percentile flow completion time of every strategy relative to rack-level
// aggregation — the paper's headline comparison.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"netagg/internal/simexp"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

func main() {
	cfg := topology.SmallClos()
	wcfg := workload.Default()
	fmt.Printf("simulating %d servers, %d switches, α=%.0f%%, %.0f%% aggregatable flows\n\n",
		cfg.NumServers(), cfg.NumSwitches(), wcfg.OutputRatio*100, wcfg.AggregatableFraction*100)

	strats := []strategies.Strategy{
		strategies.Direct{},
		strategies.Rack{},
		strategies.DAry{D: 2},
		strategies.DAry{D: 1},
		strategies.NetAgg{},
	}

	var rackP99 float64
	fmt.Printf("%-10s %14s %14s %16s\n", "strategy", "p99 FCT (ms)", "vs rack", "job p99 (ms)")
	for _, st := range strats {
		topo, err := topology.BuildClos(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, ok := st.(strategies.NetAgg); ok {
			strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
		}
		w := workload.Generate(topo, wcfg)
		res := simexp.Run(topo, w, st, false)
		p99 := res.AllFCT.P99()
		if st.Name() == "rack" {
			rackP99 = p99
		}
		rel := "-"
		if rackP99 > 0 {
			rel = fmt.Sprintf("%.2f", p99/rackP99)
		}
		fmt.Printf("%-10s %14.3f %14s %16.3f\n", st.Name(), p99*1000, rel, res.JobFCT.P99()*1000)
	}
	fmt.Println("\nlower is better; NetAgg aggregates on-path at every switch tier (R=9.2 Gbps boxes)")
}
