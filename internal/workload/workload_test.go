package workload

import (
	"testing"
	"testing/quick"

	"netagg/internal/topology"
)

func smallTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateFlowBudget(t *testing.T) {
	topo := smallTopo(t)
	cfg := Default()
	w := Generate(topo, cfg)
	want := int(cfg.FlowsPerServer * float64(len(topo.Servers())))
	if got := w.NumFlows(); got != want {
		t.Fatalf("NumFlows = %d, want %d", got, want)
	}
	agg := 0
	for i := range w.Jobs {
		agg += len(w.Jobs[i].Workers)
	}
	wantAgg := int(cfg.AggregatableFraction * float64(want))
	if agg != wantAgg {
		t.Fatalf("aggregatable flows = %d, want %d", agg, wantAgg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo := smallTopo(t)
	cfg := Default()
	w1 := Generate(topo, cfg)
	w2 := Generate(topo, cfg)
	if len(w1.Jobs) != len(w2.Jobs) || len(w1.Background) != len(w2.Background) {
		t.Fatal("same seed must give same workload shape")
	}
	for i := range w1.Jobs {
		if w1.Jobs[i].Master != w2.Jobs[i].Master {
			t.Fatal("same seed must give same placement")
		}
		for j := range w1.Jobs[i].Bits {
			if w1.Jobs[i].Bits[j] != w2.Jobs[i].Bits[j] {
				t.Fatal("same seed must give same flow sizes")
			}
		}
	}
}

func TestGenerateSeedVariation(t *testing.T) {
	topo := smallTopo(t)
	a := Default()
	b := Default()
	b.Seed = 2
	w1, w2 := Generate(topo, a), Generate(topo, b)
	same := len(w1.Jobs) == len(w2.Jobs)
	if same {
		for i := range w1.Jobs {
			if w1.Jobs[i].Master != w2.Jobs[i].Master {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should give different workloads")
	}
}

func TestMeanFlowSizeCalibrated(t *testing.T) {
	topo, _ := topology.BuildClos(topology.ClosConfig{
		Pods: 4, RacksPerPod: 4, ServersPerRack: 16, AggPerPod: 2, Cores: 2,
		EdgeCapacity: topology.Gbps, Oversubscription: 4,
	})
	cfg := Default()
	cfg.FlowsPerServer = 40 // many samples for a tight mean estimate
	w := Generate(topo, cfg)
	var sum float64
	var n int
	for i := range w.Jobs {
		for _, b := range w.Jobs[i].Bits {
			sum += b
			n++
		}
	}
	for _, b := range w.Background {
		sum += b.Bits
		n++
	}
	mean := sum / float64(n)
	if mean < 0.7*cfg.MeanFlowBits || mean > 1.3*cfg.MeanFlowBits {
		t.Fatalf("empirical mean flow size %g, want ≈%g", mean, cfg.MeanFlowBits)
	}
}

func TestWorkerFanInPowerLaw(t *testing.T) {
	topo := smallTopo(t)
	cfg := Default()
	cfg.FlowsPerServer = 50
	w := Generate(topo, cfg)
	if len(w.Jobs) < 20 {
		t.Fatalf("too few jobs (%d) to check fan-in distribution", len(w.Jobs))
	}
	small := 0
	for i := range w.Jobs {
		if len(w.Jobs[i].Workers) < 10 {
			small++
		}
	}
	// §4.1: "80 % of requests or jobs have fewer than 10 workers".
	if frac := float64(small) / float64(len(w.Jobs)); frac < 0.6 {
		t.Fatalf("only %.2f of jobs have <10 workers; expected power-law fan-in", frac)
	}
}

func TestPlacementLocality(t *testing.T) {
	topo := smallTopo(t)
	w := Generate(topo, Default())
	cfg := Default()
	perRack := int(float64(topology.SmallClos().ServersPerRack) * cfg.RackSlotFraction)
	for i := range w.Jobs {
		job := &w.Jobs[i]
		racks := map[int]bool{}
		for _, wk := range job.Workers {
			racks[topo.Node(wk).Rack] = true
		}
		// Greedy locality under slot contention: a job with W workers and a
		// per-rack quota Q spans at most ceil(W/Q) consecutive racks (plus
		// wrap-around effects on tiny clusters).
		maxRacks := (len(job.Workers)+perRack-1)/perRack + 1
		if len(racks) > maxRacks {
			t.Fatalf("job %d spans %d racks for %d workers (max %d)",
				job.ID, len(racks), len(job.Workers), maxRacks)
		}
		if len(job.Workers) > perRack && len(racks) < 2 {
			t.Fatalf("job %d with %d workers should span racks (quota %d)",
				job.ID, len(job.Workers), perRack)
		}
	}
}

func TestStragglerDelays(t *testing.T) {
	topo := smallTopo(t)
	cfg := Default()
	cfg.StragglerFraction = 0.5
	cfg.StragglerDelayMean = 0.2
	w := Generate(topo, cfg)
	delayed, total := 0, 0
	for i := range w.Jobs {
		for _, d := range w.Jobs[i].Delay {
			total++
			if d > 0 {
				delayed++
			}
		}
	}
	frac := float64(delayed) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("straggler fraction %.2f, want ≈0.5", frac)
	}
}

func TestNoStragglersByDefault(t *testing.T) {
	topo := smallTopo(t)
	w := Generate(topo, Default())
	for i := range w.Jobs {
		for _, d := range w.Jobs[i].Delay {
			if d != 0 {
				t.Fatal("default workload must not delay flows")
			}
		}
	}
}

func TestBackgroundFlowsDistinctEndpoints(t *testing.T) {
	topo := smallTopo(t)
	w := Generate(topo, Default())
	if len(w.Background) == 0 {
		t.Fatal("expected background flows")
	}
	for _, b := range w.Background {
		if b.Src == b.Dst {
			t.Fatal("background flow with identical endpoints")
		}
		if b.Bits <= 0 {
			t.Fatal("background flow with non-positive size")
		}
	}
}

func TestTotalBits(t *testing.T) {
	j := Job{Bits: []float64{1, 2, 3}}
	if j.TotalBits() != 6 {
		t.Fatalf("TotalBits = %g, want 6", j.TotalBits())
	}
}

func TestGeneratePropertySizesPositiveAndBounded(t *testing.T) {
	topo := smallTopo(t)
	check := func(seed int64) bool {
		cfg := Default()
		cfg.Seed = seed
		w := Generate(topo, cfg)
		for i := range w.Jobs {
			for _, b := range w.Jobs[i].Bits {
				if b < minFlowBits || b > cfg.MaxFlowBits {
					return false
				}
			}
		}
		for _, b := range w.Background {
			if b.Bits < minFlowBits || b.Bits > cfg.MaxFlowBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
