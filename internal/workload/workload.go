// Package workload generates the synthetic traffic the paper evaluates on
// (§4.1): a mix of partition/aggregation jobs and non-aggregatable
// background flows modelled after published traces from a cluster running
// large data-mining jobs. Flow sizes follow a bounded Pareto distribution
// (mean 100 KB); the number of workers per job follows a power law (most
// jobs have fewer than 10 workers); 40 % of flows are aggregatable; workers
// are placed with a locality-aware greedy allocator that packs them onto
// servers as close to each other as possible; and all flows start at the
// same time, the worst case for network contention.
package workload

import (
	"fmt"

	"netagg/internal/stats"
	"netagg/internal/topology"
)

// Config parameterises the generator. Zero values are filled by Default.
type Config struct {
	Seed int64

	// FlowsPerServer scales the total number of flows; the paper chooses
	// the count so the edge load is 25 %, which at the default mean flow
	// size corresponds to a few flows per server in the simulated burst.
	FlowsPerServer float64

	// AggregatableFraction is the share of flows belonging to
	// partition/aggregation jobs (0.4 per Facebook traces).
	AggregatableFraction float64

	// OutputRatio is α, the ratio of aggregated output size to input size.
	OutputRatio float64

	// MeanFlowBits and ParetoShape define the flow size distribution; sizes
	// are bounded to [minFlowBits, MaxFlowBits].
	MeanFlowBits float64
	ParetoShape  float64
	MaxFlowBits  float64

	// MinWorkers/MaxWorkers bound the per-job fan-in; WorkerPowerLawS is the
	// power-law exponent (s = 1.8 gives ~80 % of jobs fewer than 10 workers).
	MinWorkers      int
	MaxWorkers      int
	WorkerPowerLawS float64

	// StragglerFraction is the share of worker flows that start late;
	// StragglerDelayMean is the mean of their exponential start delay in
	// seconds (Fig 14).
	StragglerFraction  float64
	StragglerDelayMean float64

	// BgSameRack and BgSamePod control background flow locality: the
	// probability that a background flow stays within the source rack, or
	// within the source pod. The remainder crosses pods. DC measurement
	// studies (Benson et al., cited by the paper) report that most cloud DC
	// traffic is rack-local.
	BgSameRack float64
	BgSamePod  float64

	// RackSlotFraction caps how much of a rack one job's workers may fill
	// before the greedy placer moves to the next rack, modelling scheduler
	// slot contention: real placements are locality-aware but cannot pack a
	// whole job into one rack on a busy cluster. 0.25 means a job takes at
	// most a quarter of each rack; 1 packs racks completely.
	RackSlotFraction float64
}

// Default returns the paper's workload parameters.
func Default() Config {
	return Config{
		Seed:                 1,
		FlowsPerServer:       3,
		AggregatableFraction: 0.4,
		OutputRatio:          0.10,
		MeanFlowBits:         100 * 8 * 1024, // 100 KB
		ParetoShape:          1.05,
		MaxFlowBits:          10 * 8 * 1024 * 1024, // 10 MB cap on the tail
		MinWorkers:           2,
		MaxWorkers:           64,
		WorkerPowerLawS:      1.8,
		BgSameRack:           0.5,
		BgSamePod:            0.25,
		RackSlotFraction:     1.0,
	}
}

// Job is one partition/aggregation request: workers each hold a partial
// result that must reach the master, aggregated or not depending on the
// strategy simulated.
type Job struct {
	ID      int
	Master  topology.NodeID
	Workers []topology.NodeID
	// Bits[i] is the partial result size of Workers[i].
	Bits []float64
	// Delay[i] is the start delay of Workers[i] (stragglers); zero normally.
	Delay []float64
}

// TotalBits returns the total intermediate data of the job.
func (j *Job) TotalBits() float64 {
	var t float64
	for _, b := range j.Bits {
		t += b
	}
	return t
}

// Background is one non-aggregatable flow (e.g. distributed file system
// traffic in a map/reduce cluster).
type Background struct {
	Src, Dst topology.NodeID
	Bits     float64
}

// Workload is a generated traffic mix.
type Workload struct {
	Config     Config
	Jobs       []Job
	Background []Background
}

// NumFlows returns the number of worker flows plus background flows.
func (w *Workload) NumFlows() int {
	n := len(w.Background)
	for i := range w.Jobs {
		n += len(w.Jobs[i].Workers)
	}
	return n
}

const minFlowBits = 8 * 1024 // 1 KB floor on flow sizes

// Generate builds a workload for the given topology.
func Generate(topo *topology.Topology, cfg Config) *Workload {
	if cfg.FlowsPerServer <= 0 || cfg.AggregatableFraction < 0 || cfg.AggregatableFraction > 1 {
		panic(fmt.Sprintf("workload: invalid config %+v", cfg))
	}
	rn := stats.NewRand(cfg.Seed)
	servers := topo.Servers()
	targetFlows := int(cfg.FlowsPerServer * float64(len(servers)))
	targetAgg := int(cfg.AggregatableFraction * float64(targetFlows))

	w := &Workload{Config: cfg}
	placer := newPlacer(topo, rn.Split(), cfg.RackSlotFraction)

	// Calibrate the truncated Pareto minimum so the bounded distribution's
	// mean hits MeanFlowBits exactly, even for heavy-tailed shapes.
	xm := stats.BoundedParetoMinForMean(cfg.MeanFlowBits, cfg.MaxFlowBits, cfg.ParetoShape)
	flowBits := func() float64 {
		v := rn.BoundedPareto(xm, cfg.MaxFlowBits, cfg.ParetoShape)
		if v < minFlowBits {
			v = minFlowBits
		}
		return v
	}

	// Jobs until the aggregatable flow budget is spent.
	aggFlows := 0
	for aggFlows < targetAgg {
		nw := rn.PowerLaw(cfg.MinWorkers, cfg.MaxWorkers, cfg.WorkerPowerLawS)
		if rem := targetAgg - aggFlows; nw > rem {
			nw = rem
			if nw < 1 {
				break
			}
		}
		master, workers := placer.place(nw)
		job := Job{
			ID:      len(w.Jobs),
			Master:  master,
			Workers: workers,
			Bits:    make([]float64, nw),
			Delay:   make([]float64, nw),
		}
		for i := range job.Bits {
			job.Bits[i] = flowBits()
			if cfg.StragglerFraction > 0 && rn.Float64() < cfg.StragglerFraction {
				job.Delay[i] = rn.Exp(cfg.StragglerDelayMean)
			}
		}
		w.Jobs = append(w.Jobs, job)
		aggFlows += nw
	}

	// Background flows with configurable locality: a destination in the
	// source's rack, the source's pod, or anywhere else.
	for i := aggFlows; i < targetFlows; i++ {
		src := servers[rn.Intn(len(servers))]
		dst := pickBackgroundDst(topo, rn, servers, src, cfg)
		w.Background = append(w.Background, Background{Src: src, Dst: dst, Bits: flowBits()})
	}
	return w
}

// pickBackgroundDst chooses a destination distinct from src respecting the
// configured locality mix. If the preferred locality class has no other
// server (e.g. one-server racks), it falls back to any other server.
func pickBackgroundDst(topo *topology.Topology, rn *stats.Rand, servers []topology.NodeID, src topology.NodeID, cfg Config) topology.NodeID {
	srcNode := topo.Node(src)
	u := rn.Float64()
	match := func(n topology.Node) bool { // cross-pod
		return n.Pod != srcNode.Pod
	}
	switch {
	case u < cfg.BgSameRack:
		match = func(n topology.Node) bool { return n.Rack == srcNode.Rack }
	case u < cfg.BgSameRack+cfg.BgSamePod:
		match = func(n topology.Node) bool { return n.Pod == srcNode.Pod && n.Rack != srcNode.Rack }
	}
	// Rejection-sample with a bounded number of tries, then fall back.
	for tries := 0; tries < 64; tries++ {
		dst := servers[rn.Intn(len(servers))]
		if dst != src && match(topo.Node(dst)) {
			return dst
		}
	}
	for {
		dst := servers[rn.Intn(len(servers))]
		if dst != src {
			return dst
		}
	}
}

// placer assigns workers to servers as close to each other as possible
// (§4.1: "a locality-aware allocation algorithm that greedily assigns
// workers to servers as close to each other as possible"), rotating the
// starting rack so jobs spread over the cluster.
type placer struct {
	topo    *topology.Topology
	rn      *stats.Rand
	byRack  [][]topology.NodeID
	nextUse []int // round-robin offset per rack so co-located jobs vary hosts
	perRack int   // max workers of one job per rack
}

func newPlacer(topo *topology.Topology, rn *stats.Rand, rackSlotFraction float64) *placer {
	racks := make(map[int][]topology.NodeID)
	maxRack := -1
	for _, s := range topo.Servers() {
		r := topo.Node(s).Rack
		racks[r] = append(racks[r], s)
		if r > maxRack {
			maxRack = r
		}
	}
	byRack := make([][]topology.NodeID, maxRack+1)
	perRack := 0
	for r, svs := range racks {
		byRack[r] = svs
		if len(svs) > perRack {
			perRack = len(svs)
		}
	}
	if rackSlotFraction > 0 && rackSlotFraction < 1 {
		perRack = int(float64(perRack) * rackSlotFraction)
	}
	if perRack < 1 {
		perRack = 1
	}
	return &placer{topo: topo, rn: rn, byRack: byRack, nextUse: make([]int, maxRack+1), perRack: perRack}
}

// place returns a master and nw workers. Workers are packed greedily from a
// random starting rack, spilling into subsequent racks only when the
// current one is exhausted (§4.1's locality-aware allocation). The master —
// the frontend or reducer — is placed independently of the workers, as
// cluster schedulers place service endpoints without co-scheduling them
// with the data-parallel tasks; this is what makes the aggregation step a
// cross-rack, often cross-pod transfer that on-path aggregation can help.
func (p *placer) place(nw int) (master topology.NodeID, workers []topology.NodeID) {
	start := p.rn.Intn(len(p.byRack))
	pickFrom := func(rack int) topology.NodeID {
		svs := p.byRack[rack]
		s := svs[p.nextUse[rack]%len(svs)]
		p.nextUse[rack]++
		return s
	}
	masterRack := p.rn.Intn(len(p.byRack))
	master = pickFrom(masterRack)
	workers = make([]topology.NodeID, 0, nw)
	for r := 0; len(workers) < nw; r++ {
		rack := (start + r) % len(p.byRack)
		quota := p.perRack
		if max := len(p.byRack[rack]); quota > max {
			quota = max
		}
		for i := 0; i < quota && len(workers) < nw; i++ {
			workers = append(workers, pickFrom(rack))
		}
	}
	return master, workers
}
