package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"netagg/internal/bufpool"
	"netagg/internal/wire"
)

// BenchmarkTransportEcho is the baseline for the comms hot path: one
// 1 KiB frame to a Server whose handler echoes it back through the
// ServerConn, round-tripped serially over one persistent connection.
// Two frames cross the wire per iteration, reported as frames/s.
func BenchmarkTransportEcho(b *testing.B) {
	srv, err := Listen(context.Background(), "127.0.0.1:0", func(c *ServerConn, m *wire.Msg) {
		_ = c.Reply(m)
		m.Release()
	}, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	replies := make(chan *wire.Msg, 1)
	c := NewConn(context.Background(), srv.Addr(), Options{
		OnFrame: func(m *wire.Msg) { m.Release(); replies <- m },
	})
	defer c.Close()

	msg := &wire.Msg{Type: wire.TData, App: "bench", Payload: make([]byte, 1024)}
	// Warm up one round trip before the timer: the dial and both
	// endpoints' reader/writer buffers are one-time setup, and counting
	// them in the timed region inflated B/op at small -benchtime (the
	// 1488 B/op regression logged against this bench was exactly that).
	if err := c.Send(msg); err != nil {
		b.Fatal(err)
	}
	<-replies
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Seq = uint64(i)
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
		<-replies
	}
	b.StopTimer()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkTransportEchoParallel is the contended hot path: 8 concurrent
// senders share one connection while echoes stream back. The flusher
// coalesces the concurrent sends into vectored writes, so frames/writev
// is the realised batch size under contention.
func BenchmarkTransportEchoParallel(b *testing.B) {
	const senders = 8
	srv, err := Listen(context.Background(), "127.0.0.1:0", func(c *ServerConn, m *wire.Msg) {
		_ = c.Reply(m)
		m.Release()
	}, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	replies := make(chan struct{}, 4*defaultSendQueue)
	c := NewConn(context.Background(), srv.Addr(), Options{
		OnFrame: func(m *wire.Msg) { m.Release(); replies <- struct{}{} },
	})
	defer c.Close()

	warm := &wire.Msg{Type: wire.TData, App: "bench", Payload: make([]byte, 1024)}
	if err := c.Send(warm); err != nil {
		b.Fatal(err)
	}
	<-replies
	base := c.Stats()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		n := b.N / senders
		if s < b.N%senders {
			n++
		}
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			m := &wire.Msg{Type: wire.TData, App: "bench", Payload: make([]byte, 1024)}
			for i := 0; i < n; i++ {
				m.Seq = uint64(id)<<32 | uint64(i)
				if err := c.Send(m); err != nil {
					b.Error(err)
					return
				}
			}
		}(s, n)
	}
	for i := 0; i < b.N; i++ {
		<-replies
	}
	wg.Wait()
	b.StopTimer()
	st := c.Stats()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "frames/s")
	if calls := st.WritevCalls - base.WritevCalls; calls > 0 {
		b.ReportMetric(float64(st.FramesOut-base.FramesOut)/float64(calls), "frames/writev")
	}
}

// BenchmarkTransportGoodput streams large pooled payloads one way and
// reports application-level MB/s: the zero-copy path from the buffer
// pool through net.Buffers to the socket, with no echo on the return
// leg.
func BenchmarkTransportGoodput(b *testing.B) {
	const frameSize = 64 << 10
	srv, err := Listen(context.Background(), "127.0.0.1:0", func(_ *ServerConn, m *wire.Msg) {
		m.Release()
	}, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	c := NewConn(context.Background(), srv.Addr(), Options{})
	defer c.Close()

	buf := bufpool.Get(frameSize)
	defer buf.Release()
	msg := &wire.Msg{Type: wire.TData, App: "bench", Payload: buf.Bytes(), Buf: buf}
	if err := c.Send(msg); err != nil {
		b.Fatal(err)
	}
	for srv.Stats().FramesIn < 1 {
		time.Sleep(time.Millisecond)
	}

	b.SetBytes(frameSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Seq = uint64(i)
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
	want := int64(b.N) + 1
	for srv.Stats().FramesIn < want {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*frameSize/1e6/b.Elapsed().Seconds(), "MB/s")
}
