package transport

import (
	"context"
	"testing"

	"netagg/internal/wire"
)

// BenchmarkTransportEcho is the baseline for the comms hot path: one
// 1 KiB frame to a Server whose handler echoes it back through the
// ServerConn, round-tripped serially over one persistent connection.
// Two frames cross the wire per iteration, reported as frames/s.
func BenchmarkTransportEcho(b *testing.B) {
	srv, err := Listen(context.Background(), "127.0.0.1:0", func(c *ServerConn, m *wire.Msg) {
		_ = c.Reply(m)
		m.Release()
	}, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	replies := make(chan *wire.Msg, 1)
	c := NewConn(context.Background(), srv.Addr(), Options{
		OnFrame: func(m *wire.Msg) { m.Release(); replies <- m },
	})
	defer c.Close()

	msg := &wire.Msg{Type: wire.TData, App: "bench", Payload: make([]byte, 1024)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Seq = uint64(i)
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
		<-replies
	}
	b.StopTimer()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "frames/s")
}
