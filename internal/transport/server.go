package transport

import (
	"context"
	"net"
	"sync"

	"netagg/internal/netem"
	"netagg/internal/wire"
)

// Handler processes one inbound frame. It runs on the connection's
// reader goroutine: blocking in it back-pressures that sender only (the
// box relies on this for §3.2.2 flow control). Replies go through the
// ServerConn, which serialises concurrent writers itself. The handler
// owns the frame's pooled payload reference (Msg.Buf): Release it when
// the payload is consumed, or Retain it to keep the bytes longer. A
// forgotten Release degrades to GC reclamation, never a use-after-free.
type Handler func(c *ServerConn, m *wire.Msg)

// ServerOptions configure a Server.
type ServerOptions struct {
	// NIC, when set, paces every accepted connection through the host's
	// emulated access link.
	NIC *netem.NIC
}

// Server is the inbound side of the data plane: a listener whose accept
// loop hands each connection to a reader goroutine feeding the handler.
// Every goroutine is tracked in one WaitGroup and cancelled through the
// constructor's context; Close cancels and drains.
type Server struct {
	ln      net.Listener
	handler Handler
	ctx     context.Context
	cancel  context.CancelFunc

	stats counters

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts a server on addr (":0" picks a free port). Cancelling
// ctx is equivalent to Close (Close still waits for the drain).
func Listen(ctx context.Context, addr string, handler Handler, opts ServerOptions) (*Server, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.NIC != nil {
		ln = netem.NewListener(ln, opts.NIC)
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		ln:      ln,
		handler: handler,
		ctx:     sctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(2)
	go s.watch()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats { return s.stats.snapshot() }

// Close cancels the server's context and waits for the accept loop and
// every per-connection reader to exit. Idempotent.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// watch turns context cancellation into the actual teardown: mark
// closed, kill open connections (unblocking their readers), close the
// listener (unblocking the accept loop).
func (s *Server) watch() {
	defer s.wg.Done()
	<-s.ctx.Done()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.accepted.Add(1)
		s.stats.active.Add(1)
		obsAccepted.Inc()
		obsActiveConns.Add(1)
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve reads frames off one accepted connection into the handler.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	sc := &ServerConn{conn: conn, srv: s, done: make(chan struct{}), wake: make(chan struct{}, 1)}
	sc.notFull = sync.NewCond(&sc.mu)
	defer func() {
		close(sc.done) // stop the reply flusher (if one started)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.stats.active.Add(-1)
		obsActiveConns.Add(-1)
	}()
	r := wire.NewReader(conn)
	for {
		m, err := r.Read()
		if err != nil {
			return
		}
		s.stats.framesIn.Add(1)
		s.stats.bytesIn.Add(int64(len(m.Payload)))
		obsFramesIn.Inc()
		obsBytesIn.Add(int64(len(m.Payload)))
		s.handler(sc, m)
	}
}

// replyQueueCap bounds queued replies per inbound connection before
// Reply blocks on admission.
const replyQueueCap = defaultSendQueue

// ServerConn is the server's handle on one accepted connection, used by
// handlers to reply on the same connection (heartbeat echoes, acks).
// Like the outbound Conn, replies are drained by a per-connection
// flusher goroutine that coalesces concurrent replies into vectored
// writes; Reply blocks only on queue admission.
type ServerConn struct {
	conn net.Conn
	srv  *Server
	done chan struct{} // closed when the reader goroutine exits

	mu      sync.Mutex
	notFull *sync.Cond
	queue   []wire.Msg
	started bool
	err     error // latched write error: the peer is gone

	wake chan struct{}
}

// Reply queues one frame to go back on the connection. Safe for
// concurrent use. Replies are written asynchronously by the connection's
// flusher; an error (this call or a previous flush failing) means the
// peer is gone and the connection should be abandoned.
func (sc *ServerConn) Reply(m *wire.Msg) error {
	sc.mu.Lock()
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return err
	}
	if !sc.started {
		sc.started = true
		sc.srv.wg.Add(1)
		go sc.flusher()
	}
	for len(sc.queue) >= replyQueueCap && sc.err == nil {
		sc.srv.stats.queueWaits.Add(1)
		obsQueueWaits.Inc()
		//lint:ignore lockdiscipline admission back-pressure: sc.mu guards only the reply queue (no network I/O under it) and the flusher broadcasts on both drain and failure, so the wait always terminates
		sc.notFull.Wait()
	}
	if sc.err != nil {
		err := sc.err
		sc.mu.Unlock()
		return err
	}
	cp := *m
	cp.Buf = m.Buf.Retain() //netagg:owns cp — the reply queue's reference, released by the flusher
	sc.queue = append(sc.queue, cp)
	sc.mu.Unlock()
	select {
	case sc.wake <- struct{}{}:
	default:
	}
	return nil
}

// flusher drains queued replies into coalesced vectored writes until the
// connection dies or the write path fails.
func (sc *ServerConn) flusher() {
	defer sc.srv.wg.Done()
	vw := wire.NewVectorWriter(sc.conn)
	var pending []wire.Msg
	var batch []*wire.Msg
	for {
		sc.mu.Lock()
		pending = append(pending[:0], sc.queue...)
		for i := range sc.queue {
			sc.queue[i] = wire.Msg{}
		}
		sc.queue = sc.queue[:0]
		sc.notFull.Broadcast()
		sc.mu.Unlock()
		if len(pending) == 0 {
			select {
			case <-sc.wake:
				continue
			case <-sc.done:
				sc.fail(ErrClosed)
				return
			case <-sc.srv.ctx.Done():
				sc.fail(ErrClosed)
				return
			}
		}
		for off := 0; off < len(pending); {
			n := replyBatchBound(pending[off:])
			batch = batch[:0]
			for i := 0; i < n; i++ {
				batch = append(batch, &pending[off+i])
			}
			written, err := vw.WriteBatch(batch)
			if err != nil {
				// Release everything still queued or staged and latch the
				// error: the peer is gone.
				for i := off; i < len(pending); i++ {
					pending[i].Buf.Release()
				}
				sc.fail(err)
				return
			}
			k := int64(n)
			var payload int64
			for i := 0; i < n; i++ {
				payload += int64(len(pending[off+i].Payload))
				pending[off+i].Buf.Release()
				pending[off+i] = wire.Msg{}
			}
			sc.srv.stats.writevCalls.Add(1)
			sc.srv.stats.framesOut.Add(k)
			sc.srv.stats.bytesOut.Add(payload)
			obsWritevCalls.Inc()
			obsBatchSize.Observe(k)
			obsBatchFrames.Add(k)
			obsBatchBytes.Add(written)
			obsFramesOut.Add(k)
			obsBytesOut.Add(payload)
			if k > 1 {
				sc.srv.stats.batchedFrames.Add(k)
				obsFlushCoalesce.Add(k - 1)
			}
			off += n
		}
	}
}

// replyBatchBound mirrors Conn.batchBound for the reply queue, using the
// package default caps.
func replyBatchBound(pending []wire.Msg) int {
	n := len(pending)
	if n > defaultMaxBatchFrames {
		n = defaultMaxBatchFrames
	}
	bytes := 0
	for i := 0; i < n; i++ {
		bytes += len(pending[i].Payload)
		if bytes > defaultMaxBatchBytes && i > 0 {
			return i
		}
	}
	return n
}

// fail latches err, releases every queued reply, and wakes blocked
// repliers so they observe the error.
func (sc *ServerConn) fail(err error) {
	sc.mu.Lock()
	if sc.err == nil {
		sc.err = err
	}
	for i := range sc.queue {
		sc.queue[i].Buf.Release()
		sc.queue[i] = wire.Msg{}
	}
	sc.queue = sc.queue[:0]
	sc.notFull.Broadcast()
	sc.mu.Unlock()
}

// RemoteAddr identifies the peer.
func (sc *ServerConn) RemoteAddr() net.Addr { return sc.conn.RemoteAddr() }

// Close tears this one connection down; its reader goroutine exits and
// is reaped by the server's WaitGroup.
func (sc *ServerConn) Close() error { return sc.conn.Close() }
