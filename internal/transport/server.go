package transport

import (
	"context"
	"net"
	"sync"

	"netagg/internal/netem"
	"netagg/internal/wire"
)

// Handler processes one inbound frame. It runs on the connection's
// reader goroutine: blocking in it back-pressures that sender only (the
// box relies on this for §3.2.2 flow control). Replies go through the
// ServerConn, which serialises concurrent writers itself. The handler
// owns the frame's pooled payload reference (Msg.Buf): Release it when
// the payload is consumed, or Retain it to keep the bytes longer. A
// forgotten Release degrades to GC reclamation, never a use-after-free.
type Handler func(c *ServerConn, m *wire.Msg)

// ServerOptions configure a Server.
type ServerOptions struct {
	// NIC, when set, paces every accepted connection through the host's
	// emulated access link.
	NIC *netem.NIC
}

// Server is the inbound side of the data plane: a listener whose accept
// loop hands each connection to a reader goroutine feeding the handler.
// Every goroutine is tracked in one WaitGroup and cancelled through the
// constructor's context; Close cancels and drains.
type Server struct {
	ln      net.Listener
	handler Handler
	ctx     context.Context
	cancel  context.CancelFunc

	stats counters

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts a server on addr (":0" picks a free port). Cancelling
// ctx is equivalent to Close (Close still waits for the drain).
func Listen(ctx context.Context, addr string, handler Handler, opts ServerOptions) (*Server, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.NIC != nil {
		ln = netem.NewListener(ln, opts.NIC)
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{
		ln:      ln,
		handler: handler,
		ctx:     sctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(2)
	go s.watch()
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats { return s.stats.snapshot() }

// Close cancels the server's context and waits for the accept loop and
// every per-connection reader to exit. Idempotent.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// watch turns context cancellation into the actual teardown: mark
// closed, kill open connections (unblocking their readers), close the
// listener (unblocking the accept loop).
func (s *Server) watch() {
	defer s.wg.Done()
	<-s.ctx.Done()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.accepted.Add(1)
		s.stats.active.Add(1)
		obsAccepted.Inc()
		obsActiveConns.Add(1)
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve reads frames off one accepted connection into the handler.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.stats.active.Add(-1)
		obsActiveConns.Add(-1)
	}()
	sc := &ServerConn{conn: conn, w: wire.NewWriter(conn), srv: s}
	r := wire.NewReader(conn)
	for {
		m, err := r.Read()
		if err != nil {
			return
		}
		s.stats.framesIn.Add(1)
		s.stats.bytesIn.Add(int64(len(m.Payload)))
		obsFramesIn.Inc()
		obsBytesIn.Add(int64(len(m.Payload)))
		s.handler(sc, m)
	}
}

// ServerConn is the server's handle on one accepted connection, used by
// handlers to reply on the same connection (heartbeat echoes, acks).
type ServerConn struct {
	conn net.Conn
	srv  *Server

	mu sync.Mutex
	w  *wire.Writer
}

// Reply writes one frame back on the connection. Safe for concurrent
// use; a failure means the peer is gone.
func (sc *ServerConn) Reply(m *wire.Msg) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	//lint:ignore lockdiscipline sc.mu exists to serialise replies on this connection; holding it across the write is the invariant
	if err := sc.w.Write(m); err != nil {
		return err
	}
	//lint:ignore lockdiscipline sc.mu serialises the flush with the write above
	if err := sc.w.Flush(); err != nil {
		return err
	}
	sc.srv.stats.framesOut.Add(1)
	sc.srv.stats.bytesOut.Add(int64(len(m.Payload)))
	obsFramesOut.Inc()
	obsBytesOut.Add(int64(len(m.Payload)))
	return nil
}

// RemoteAddr identifies the peer.
func (sc *ServerConn) RemoteAddr() net.Addr { return sc.conn.RemoteAddr() }

// Close tears this one connection down; its reader goroutine exits and
// is reaped by the server's WaitGroup.
func (sc *ServerConn) Close() error { return sc.conn.Close() }
