// Package transport is the single connection layer of the NetAgg data
// plane. The paper's §3.2.1 design rests on persistent TCP connections —
// shims and boxes "maintain persistent TCP connections" carrying framed
// partial results — and before this package the repo hand-rolled that
// machinery five times (core.Box, shim.Master, shim.Worker,
// cluster.Monitor, and the search/testbed servers), each with its own
// goroutine lifecycle and none with dial timeouts or reconnect backoff.
//
// transport unifies both sides:
//
//   - Server: listener + accept loop + one reader goroutine per accepted
//     connection, all tracked in a WaitGroup and cancelled through a
//     context.Context, delivering frames to a handler callback.
//   - Conn: persistent outbound connection with bounded dials, jittered
//     exponential reconnect backoff, bounded write retry, an optional
//     replay window for §3.1 recovery resends, and optional netem.NIC
//     pacing injected once instead of per call site.
//   - Pool: one Conn per destination address, sharing a context.
//
// Every endpoint keeps per-connection counters (frames/bytes in and out,
// dials, dial failures, reconnects) exposed as a Stats snapshot — the
// seam for observability work. Close is everywhere equivalent to
// cancelling the endpoint's context and draining its WaitGroup, so the
// §3.3 restart-under-churn story rests on one audited lifecycle.
package transport

import (
	"context"
	"net"
	"sync/atomic"
	"time"

	"netagg/internal/netem"
	"netagg/internal/wire"
)

const (
	// defaultDialTimeout bounds connection establishment. The legacy
	// wire.Client dialled with no bound while holding its send mutex, so
	// one hung dial stalled every sender sharing the client.
	defaultDialTimeout = 5 * time.Second
	// defaultSendAttempts is the original try plus one retry after a
	// reconnect, matching the legacy client's behaviour.
	defaultSendAttempts = 2
	// defaultSendQueue bounds frames admitted to a connection's send
	// queue before senders block (back-pressure toward the application).
	defaultSendQueue = 256
	// defaultMaxBatchFrames caps frames coalesced into one vectored
	// write.
	defaultMaxBatchFrames = 64
	// defaultMaxBatchBytes caps payload bytes coalesced into one
	// vectored write, so a run of large frames does not pin the flusher
	// (and every queued sender behind it) in a single enormous writev.
	defaultMaxBatchBytes = 1 << 20
)

// Options configure an outbound Conn (and every Conn a Pool creates).
// The zero value is usable: plain TCP, 5s dial timeout, one retry, the
// default backoff, no reader, no replay.
type Options struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Backoff paces re-dials after a dial failure: sends inside the
	// backoff window return ErrBackingOff without touching the network,
	// so a dead peer costs one dial per window, not one per send.
	Backoff Backoff
	// MaxSendAttempts bounds how many times one Send is tried across
	// reconnects before the error is surfaced (default 2).
	MaxSendAttempts int
	// NIC, when set, paces every connection through the host's emulated
	// access link. Injected here once instead of wrapped at each dial
	// call site.
	NIC *netem.NIC
	// Dial overrides connection establishment (tests, alternative
	// transports). The NIC wrap still applies to its result. ctx carries
	// the dial timeout.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// OnFrame, when set, starts one reader goroutine per established
	// connection and delivers every inbound frame to it (heartbeat
	// replies, acks). Nil keeps the connection write-only. The handler
	// owns each frame's pooled payload reference (Msg.Buf) and should
	// Release it when done; forgetting one costs pool recycling, not
	// correctness.
	OnFrame func(m *wire.Msg)
	// ReplayWindow > 0 retains the last N frames written and rewrites
	// them after a reconnect. Frames buffered in a dead peer's socket are
	// thereby delivered at-least-once; receivers dedup by the attempt id
	// carried in the wire request (§3.1 recovery). The window holds its
	// own reference on each frame's pooled payload, so senders must not
	// recycle or mutate a sent Msg's payload buffer out from under it.
	ReplayWindow int
	// SendQueue bounds the frames buffered between senders and the
	// connection's flusher goroutine (default 256). Once an established
	// connection exists, Send blocks only on admission to this queue;
	// the flusher drains it into coalesced vectored writes.
	SendQueue int
	// MaxBatchFrames caps how many queued frames one vectored write may
	// coalesce (default 64). The flush policy is adaptive below the cap:
	// an empty queue flushes a lone frame immediately, a backlog is
	// drained in cap-sized writev calls.
	MaxBatchFrames int
	// MaxBatchBytes caps the payload bytes one vectored write may
	// coalesce (default 1 MiB); a single frame larger than the cap still
	// goes out alone.
	MaxBatchBytes int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.MaxSendAttempts <= 0 {
		o.MaxSendAttempts = defaultSendAttempts
	}
	if o.SendQueue <= 0 {
		o.SendQueue = defaultSendQueue
	}
	if o.MaxBatchFrames <= 0 {
		o.MaxBatchFrames = defaultMaxBatchFrames
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = defaultMaxBatchBytes
	}
	o.Backoff = o.Backoff.withDefaults()
	return o
}

// Stats is a point-in-time snapshot of an endpoint's counters. Conn and
// Server fill the fields that apply to them; Pool sums across its
// connections.
type Stats struct {
	// FramesIn / BytesIn count inbound frames and their payload bytes.
	FramesIn, BytesIn int64
	// FramesOut / BytesOut count outbound frames and their payload bytes
	// (replayed frames are counted again — they cross the wire again).
	FramesOut, BytesOut int64
	// Dials counts successful connection establishments.
	Dials int64
	// DialFailures counts failed connection attempts.
	DialFailures int64
	// Reconnects counts successful dials that replaced a previously
	// established connection.
	Reconnects int64
	// BackoffSkips counts sends refused inside a backoff window without
	// a dial being attempted.
	BackoffSkips int64
	// Replayed counts frames rewritten from the replay window after a
	// reconnect.
	Replayed int64
	// ReplayTrimmed counts frames released from the replay window by
	// DropReplay (subtree migration invalidated their epoch) without
	// crossing the wire again.
	ReplayTrimmed int64
	// Accepted counts inbound connections accepted (Server only).
	Accepted int64
	// Active is the number of currently open inbound connections
	// (Server only).
	Active int64
	// WritevCalls counts vectored writes issued by the endpoint's
	// flusher; FramesOut / WritevCalls is the mean coalesced batch size.
	WritevCalls int64
	// BatchedFrames counts frames that shared a vectored write with at
	// least one other frame (the coalescing win over one-flush-per-frame).
	BatchedFrames int64
	// QueueWaits counts sends that blocked on send-queue admission
	// (back-pressure events, not failures).
	QueueWaits int64
	// Dropped counts queued frames released undelivered at Close/teardown.
	Dropped int64
}

// merge adds o into s (Pool aggregation).
func (s Stats) merge(o Stats) Stats {
	s.FramesIn += o.FramesIn
	s.BytesIn += o.BytesIn
	s.FramesOut += o.FramesOut
	s.BytesOut += o.BytesOut
	s.Dials += o.Dials
	s.DialFailures += o.DialFailures
	s.Reconnects += o.Reconnects
	s.BackoffSkips += o.BackoffSkips
	s.Replayed += o.Replayed
	s.ReplayTrimmed += o.ReplayTrimmed
	s.Accepted += o.Accepted
	s.Active += o.Active
	s.WritevCalls += o.WritevCalls
	s.BatchedFrames += o.BatchedFrames
	s.QueueWaits += o.QueueWaits
	s.Dropped += o.Dropped
	return s
}

// counters is the lock-free mutable backing of Stats.
type counters struct {
	framesIn, bytesIn   atomic.Int64
	framesOut, bytesOut atomic.Int64
	dials, dialFailures atomic.Int64
	reconnects          atomic.Int64
	backoffSkips        atomic.Int64
	replayed            atomic.Int64
	replayTrimmed       atomic.Int64
	accepted, active    atomic.Int64
	writevCalls         atomic.Int64
	batchedFrames       atomic.Int64
	queueWaits          atomic.Int64
	dropped             atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		FramesIn:      c.framesIn.Load(),
		BytesIn:       c.bytesIn.Load(),
		FramesOut:     c.framesOut.Load(),
		BytesOut:      c.bytesOut.Load(),
		Dials:         c.dials.Load(),
		DialFailures:  c.dialFailures.Load(),
		Reconnects:    c.reconnects.Load(),
		BackoffSkips:  c.backoffSkips.Load(),
		Replayed:      c.replayed.Load(),
		ReplayTrimmed: c.replayTrimmed.Load(),
		Accepted:      c.accepted.Load(),
		Active:        c.active.Load(),
		WritevCalls:   c.writevCalls.Load(),
		BatchedFrames: c.batchedFrames.Load(),
		QueueWaits:    c.queueWaits.Load(),
		Dropped:       c.dropped.Load(),
	}
}
