package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netagg/internal/bufpool"
	"netagg/internal/netem"
	"netagg/internal/wire"
)

// gateConn is a stub net.Conn whose Write can be gated shut, modelling a
// peer that stops draining its receive window. Read blocks until Close.
type gateConn struct {
	mu      sync.Mutex
	gate    chan struct{} // non-nil while writes are blocked; closed to release
	closed  chan struct{}
	once    sync.Once
	written atomic.Int64
}

func newGateConn() *gateConn {
	return &gateConn{closed: make(chan struct{})}
}

// blockWrites gates subsequent writes until releaseWrites.
func (g *gateConn) blockWrites() {
	g.mu.Lock()
	g.gate = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateConn) releaseWrites() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *gateConn) Write(p []byte) (int, error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-g.closed:
			return 0, io.ErrClosedPipe
		}
	}
	select {
	case <-g.closed:
		return 0, io.ErrClosedPipe
	default:
	}
	g.written.Add(int64(len(p)))
	return len(p), nil
}

func (g *gateConn) Read(p []byte) (int, error) {
	<-g.closed
	return 0, io.EOF
}

func (g *gateConn) Close() error {
	g.once.Do(func() { close(g.closed) })
	return nil
}

func (g *gateConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (g *gateConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (g *gateConn) SetDeadline(t time.Time) error      { return nil }
func (g *gateConn) SetReadDeadline(t time.Time) error  { return nil }
func (g *gateConn) SetWriteDeadline(t time.Time) error { return nil }

// TestSendNoHeadOfLineBlocking is the regression test for the old
// mutex-per-Send design, where one peer that stopped reading stalled
// every sender sharing the connection. With the flusher queue, senders
// on an established connection block only on queue admission: they must
// return promptly while the socket is wedged, and the wedged frames must
// coalesce into a handful of vectored writes once it opens.
func TestSendNoHeadOfLineBlocking(t *testing.T) {
	g := newGateConn()
	c := NewConn(context.Background(), "stub:0", Options{
		Dial: func(ctx context.Context, addr string) (net.Conn, error) { return g, nil },
	})
	defer c.Close()

	// Establish: the first send is synchronous and flows through a dial
	// plus an open gate.
	if err := c.Send(&wire.Msg{Type: wire.TData, App: "t", Seq: 0, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}

	g.blockWrites()
	const frames = 32
	start := time.Now()
	for seq := uint64(1); seq <= frames; seq++ {
		if err := c.Send(&wire.Msg{Type: wire.TData, App: "t", Seq: seq, Payload: []byte("x")}); err != nil {
			t.Fatalf("send %d on wedged socket: %v", seq, err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("sends on a wedged socket took %v; head-of-line blocking is back", elapsed)
	}
	g.releaseWrites()

	waitFor(t, "wedged frames flushed", func() bool { return c.Stats().FramesOut == frames+1 })
	st := c.Stats()
	if st.WritevCalls >= frames {
		t.Fatalf("WritevCalls = %d for %d frames; wedged frames did not coalesce", st.WritevCalls, frames+1)
	}
	if st.BatchedFrames == 0 {
		t.Fatal("BatchedFrames = 0, want coalesced batches while the socket was wedged")
	}
	t.Logf("%d frames in %d writev calls (%d batched)", st.FramesOut, st.WritevCalls, st.BatchedFrames)
}

// TestCloseReleasesQueuedFrames wedges the socket with pooled payloads in
// the send queue and closes the connection: every queued frame's payload
// reference must be released (refcount back to the caller's own), and the
// undelivered fire-and-forget frames must be counted as Dropped. Run with
// -tags netaggdebug to turn any double-release into a panic.
func TestCloseReleasesQueuedFrames(t *testing.T) {
	g := newGateConn()
	c := NewConn(context.Background(), "stub:0", Options{
		Dial: func(ctx context.Context, addr string) (net.Conn, error) { return g, nil },
	})

	if err := c.Send(&wire.Msg{Type: wire.TData, App: "t", Seq: 0, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	g.blockWrites()

	const frames = 16
	bufs := make([]*bufpool.Buf, 0, frames)
	for seq := uint64(1); seq <= frames; seq++ {
		buf := bufpool.Get(512)
		bufs = append(bufs, buf)
		m := &wire.Msg{Type: wire.TData, App: "t", Seq: seq, Payload: buf.Bytes(), Buf: buf}
		if err := c.Send(m); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	c.Close()

	for i, buf := range bufs {
		if got := buf.Refs(); got != 1 {
			t.Fatalf("frame %d payload refs = %d after Close, want 1 (the test's own)", i+1, got)
		}
		buf.Release()
	}
	st := c.Stats()
	if st.Dropped == 0 {
		t.Fatalf("stats = %+v, want Dropped > 0 for undelivered queued frames", st)
	}
	if st.Dropped+st.FramesOut < frames {
		t.Fatalf("dropped %d + delivered %d frames, want every one of %d accounted",
			st.Dropped, st.FramesOut, frames)
	}
}

// TestQueuedFramesReplayedOnceAfterReconnect drives the §3.1 recovery
// story through the batched write path on an emulated slow link: frames
// are still queued (or buffered in the dead peer's socket) when the
// server dies mid-stream, and after the restart the replay window plus
// the persisting queue must deliver every frame — applied exactly once
// through the receiver's dedup — with payload refcounts balanced.
func TestQueuedFramesReplayedOnceAfterReconnect(t *testing.T) {
	sink := newDedupSink()
	srv, err := Listen(context.Background(), "127.0.0.1:0", sink.handle, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// ~2 MB/s leaves 4 KiB frames in flight long enough for the kill to
	// land between queue admission and the wire.
	nic := netem.NewNIC("slow", 2e6, 2e6)
	c := NewConn(context.Background(), addr, Options{
		ReplayWindow: 64,
		NIC:          nic,
		Backoff:      Backoff{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond},
	})

	const frames = 10
	bufs := make([]*bufpool.Buf, 0, frames)
	send := func(seq uint64) {
		t.Helper()
		buf := bufpool.Get(4096)
		bufs = append(bufs, buf)
		var err error
		for try := 0; try < 400; try++ {
			m := &wire.Msg{Type: wire.TData, App: "t", Seq: seq, Payload: buf.Bytes(), Buf: buf}
			if err = c.Send(m); err == nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("send %d never succeeded: %v", seq, err)
	}

	for seq := uint64(1); seq <= frames/2; seq++ {
		send(seq)
	}
	// Kill the server while the tail of the first half may still be
	// queued behind the slow link, then restart on the same address.
	srv.Close()
	srv2, err := Listen(context.Background(), addr, sink.handle, ServerOptions{})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	for seq := uint64(frames/2 + 1); seq <= frames; seq++ {
		send(seq)
	}

	waitFor(t, "all frames applied exactly once", func() bool { return sink.appliedCount() == frames })
	sink.mu.Lock()
	raw, applied := sink.raw, len(sink.applied)
	sink.mu.Unlock()
	if raw < applied {
		t.Fatalf("raw deliveries %d < applied %d", raw, applied)
	}

	c.Close()
	for i, buf := range bufs {
		if got := buf.Refs(); got != 1 {
			t.Fatalf("frame %d payload refs = %d after Close, want 1 (the test's own)", i+1, got)
		}
		buf.Release()
	}
	t.Logf("raw %d, applied %d, replayed %d", raw, applied, c.Stats().Replayed)
}

// TestSyncSendFailsAtomically checks that a synchronous SendAll group on
// a disconnected endpoint either delivers or fails as a unit: when the
// dial fails, the caller gets the error and no frame of the group stays
// queued holding a payload reference.
func TestSyncSendFailsAtomically(t *testing.T) {
	c := NewConn(context.Background(), "nowhere:0", Options{
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, errors.New("destination down")
		},
	})
	defer c.Close()

	bufs := []*bufpool.Buf{bufpool.Get(64), bufpool.Get(64)}
	msgs := []*wire.Msg{
		{Type: wire.TData, Seq: 1, Payload: bufs[0].Bytes(), Buf: bufs[0]},
		{Type: wire.TData, Seq: 2, Payload: bufs[1].Bytes(), Buf: bufs[1]},
	}
	if err := c.SendAll(msgs); err == nil {
		t.Fatal("expected a dial error")
	}
	for i, buf := range bufs {
		if got := buf.Refs(); got != 1 {
			t.Fatalf("group frame %d refs = %d after failed SendAll, want 1", i+1, got)
		}
		buf.Release()
	}
}
