package transport

import "netagg/internal/obs"

// Registry handles for the transport layer. Resolved once at package
// init so the per-frame path pays only atomic increments; they mirror
// the per-endpoint Stats counters into the process-wide registry
// (DESIGN.md §11), which is what the /debug/netagg/metrics endpoint
// serves.
var (
	obsFramesIn      = obs.C("transport.frames_in")
	obsBytesIn       = obs.C("transport.bytes_in")
	obsFramesOut     = obs.C("transport.frames_out")
	obsBytesOut      = obs.C("transport.bytes_out")
	obsDials         = obs.C("transport.dials")
	obsDialFailures  = obs.C("transport.dial_failures")
	obsReconnects    = obs.C("transport.reconnects")
	obsBackoffSkips  = obs.C("transport.backoff_skips")
	obsReplayed      = obs.C("transport.replayed")
	obsReplayTrimmed = obs.C("transport.replay_trimmed")
	obsAccepted      = obs.C("transport.accepted")
	obsActiveConns   = obs.G("transport.active_conns")

	// Batched write path (DESIGN.md §15): one writev per flush, frames
	// and payload bytes it coalesced, and the admission/teardown events
	// around the send queue. mean(transport.batch_size) collapsing to 1
	// means flushes stopped coalescing — see OPERATIONS.md §8.
	obsWritevCalls   = obs.C("transport.writev_calls")
	obsBatchFrames   = obs.C("transport.batch_frames")
	obsBatchBytes    = obs.C("transport.batch_bytes")
	obsFlushCoalesce = obs.C("transport.flush_coalesced")
	obsBatchSize     = obs.H("transport.batch_size")
	obsQueueWaits    = obs.C("transport.sendq_waits")
	obsQueueDrops    = obs.C("transport.sendq_dropped")
)
