package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netagg/internal/wire"
)

// waitFor polls cond until it holds or the test deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dedupSink models a §3.1 receiver: it applies each frame once, keyed by
// the sequence number that carries the attempt identity, and counts raw
// deliveries separately so tests can see replay duplicates arriving.
type dedupSink struct {
	mu      sync.Mutex
	applied map[uint64]bool
	raw     int
}

func newDedupSink() *dedupSink {
	return &dedupSink{applied: make(map[uint64]bool)}
}

func (s *dedupSink) handle(_ *ServerConn, m *wire.Msg) {
	s.mu.Lock()
	s.raw++
	s.applied[m.Seq] = true
	s.mu.Unlock()
}

func (s *dedupSink) appliedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.applied)
}

// TestServerRestartReplayDedup kills a server mid-stream, restarts it on
// the same address, and checks that the client's buffered replay
// redelivers everything the dead server may not have processed — applied
// exactly once after dedup — while Stats counts exactly one reconnect.
func TestServerRestartReplayDedup(t *testing.T) {
	sink := newDedupSink()
	srv, err := Listen(context.Background(), "127.0.0.1:0", sink.handle, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	c := NewConn(context.Background(), addr, Options{
		ReplayWindow: 32,
		DialTimeout:  2 * time.Second,
		Backoff:      Backoff{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	defer c.Close()

	for seq := uint64(1); seq <= 5; seq++ {
		if err := c.Send(&wire.Msg{Type: wire.TData, App: "t", Seq: seq, Payload: []byte("x")}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	waitFor(t, "first batch", func() bool { return sink.appliedCount() == 5 })

	// Kill the server mid-stream and restart it on the same address.
	srv.Close()
	srv2, err := Listen(context.Background(), addr, sink.handle, ServerOptions{})
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	// The client discovers the death on write: the first send after the
	// kill may land in the dead socket's buffer or fail outright, so keep
	// sending until the transport has reconnected and accepted the frame.
	for seq := uint64(6); seq <= 10; seq++ {
		var err error
		for try := 0; try < 400; try++ {
			if err = c.Send(&wire.Msg{Type: wire.TData, App: "t", Seq: seq, Payload: []byte("x")}); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("send %d never succeeded: %v", seq, err)
		}
	}

	waitFor(t, "all 10 frames applied", func() bool { return sink.appliedCount() == 10 })

	st := c.Stats()
	if st.Reconnects != 1 {
		t.Fatalf("Stats.Reconnects = %d, want exactly 1 (dials=%d, failures=%d)",
			st.Reconnects, st.Dials, st.DialFailures)
	}
	if st.Replayed == 0 {
		t.Fatalf("expected the replay window to rewrite frames after the reconnect, Stats.Replayed = 0")
	}
	sink.mu.Lock()
	raw, applied := sink.raw, len(sink.applied)
	sink.mu.Unlock()
	if raw < applied {
		t.Fatalf("raw deliveries %d < applied %d", raw, applied)
	}
	t.Logf("raw deliveries %d, applied after dedup %d, replayed %d", raw, applied, st.Replayed)
}

// TestDialBackoffWindow checks that a dead destination costs one dial
// per backoff window: sends inside the window are refused without
// touching the dialer.
func TestDialBackoffWindow(t *testing.T) {
	var dials atomic.Int32
	c := NewConn(context.Background(), "nowhere:0", Options{
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			dials.Add(1)
			return nil, errors.New("destination down")
		},
		Backoff: Backoff{Min: 300 * time.Millisecond, Max: time.Second, Jitter: 0.01},
	})
	defer c.Close()

	msg := &wire.Msg{Type: wire.TData}
	if err := c.Send(msg); err == nil {
		t.Fatal("expected a dial error")
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials after first send = %d, want 1", got)
	}
	if err := c.Send(msg); !errors.Is(err, ErrBackingOff) {
		t.Fatalf("send inside backoff window: err = %v, want ErrBackingOff", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dialled inside the backoff window: %d dials", got)
	}
	st := c.Stats()
	if st.DialFailures != 1 || st.BackoffSkips == 0 {
		t.Fatalf("stats = %+v, want DialFailures=1 and BackoffSkips>0", st)
	}
	// Min 300ms with 1% jitter caps the window at ~303ms.
	time.Sleep(350 * time.Millisecond)
	if err := c.Send(msg); err == nil || errors.Is(err, ErrBackingOff) {
		t.Fatalf("send after backoff window: err = %v, want a fresh dial error", err)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials after window elapsed = %d, want 2", got)
	}
}

// TestReplyAndOnFrame round-trips a heartbeat: handler replies through
// the ServerConn, the client's reader delivers the echo to OnFrame, and
// both endpoints count the frames.
func TestReplyAndOnFrame(t *testing.T) {
	srv, err := Listen(context.Background(), "127.0.0.1:0", func(c *ServerConn, m *wire.Msg) {
		if m.Type == wire.THeartbeat {
			_ = c.Reply(&wire.Msg{Type: wire.THeartbeat, Seq: m.Seq})
		}
	}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	replies := make(chan uint64, 4)
	c := NewConn(context.Background(), srv.Addr(), Options{
		OnFrame: func(m *wire.Msg) { replies <- m.Seq },
	})
	defer c.Close()

	if err := c.Send(&wire.Msg{Type: wire.THeartbeat, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-replies:
		if got != 7 {
			t.Fatalf("echoed seq = %d, want 7", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat echo")
	}
	if st := srv.Stats(); st.FramesIn != 1 || st.FramesOut != 1 || st.Accepted != 1 {
		t.Fatalf("server stats = %+v, want 1 in / 1 out / 1 accepted", st)
	}
	if st := c.Stats(); st.FramesIn != 1 || st.FramesOut != 1 || st.Dials != 1 {
		t.Fatalf("conn stats = %+v, want 1 in / 1 out / 1 dial", st)
	}
}

// TestContextCancellation checks that cancelling the constructor context
// is equivalent to Close on both endpoints.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sink := newDedupSink()
	srv, err := Listen(ctx, "127.0.0.1:0", sink.handle, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(ctx, srv.Addr(), Options{})
	if err := c.Send(&wire.Msg{Type: wire.TData, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frame delivery", func() bool { return sink.appliedCount() == 1 })

	cancel()
	srv.Close() // waits for the drain the cancellation started

	// The context hook closes the Conn asynchronously; once it lands,
	// sends fail permanently.
	waitFor(t, "conn to observe cancellation", func() bool {
		return c.Send(&wire.Msg{Type: wire.TData, Seq: 2}) != nil
	})
	if err := c.Send(&wire.Msg{Type: wire.TData, Seq: 3}); err == nil {
		t.Fatal("send succeeded on a cancelled connection")
	}
	c.Close()

	// A fresh dial to the cancelled server must fail: its listener is gone.
	c2 := NewConn(context.Background(), srv.Addr(), Options{DialTimeout: 500 * time.Millisecond})
	defer c2.Close()
	if err := c2.Send(&wire.Msg{Type: wire.TData}); err == nil {
		t.Fatal("dial to a closed server succeeded")
	}
}

// TestPoolSharesConnections checks the pool caches one Conn per address
// and aggregates stats across them.
func TestPoolSharesConnections(t *testing.T) {
	sink := newDedupSink()
	srv, err := Listen(context.Background(), "127.0.0.1:0", sink.handle, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewPool(context.Background(), Options{})
	defer p.Close()
	if p.Get(srv.Addr()) != p.Get(srv.Addr()) {
		t.Fatal("pool returned distinct conns for one address")
	}
	if err := p.Send(srv.Addr(), &wire.Msg{Type: wire.TData, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SendAll(srv.Addr(), []*wire.Msg{
		{Type: wire.TData, Seq: 2}, {Type: wire.TData, Seq: 3},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "three frames", func() bool { return sink.appliedCount() == 3 })
	if st := p.Stats(); st.FramesOut != 3 || st.Dials != 1 {
		t.Fatalf("pool stats = %+v, want FramesOut=3 Dials=1", st)
	}
}
