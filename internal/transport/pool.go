package transport

import (
	"context"
	"sync"

	"netagg/internal/wire"
)

// Pool caches one Conn per destination address — the successor of
// wire.Pool. All connections share the pool's context and Options, so a
// NIC or backoff policy is configured once per host.
type Pool struct {
	ctx  context.Context
	opts Options

	mu    sync.Mutex
	conns map[string]*Conn
}

// NewPool returns a pool whose connections live under ctx: cancelling it
// closes them all.
func NewPool(ctx context.Context, opts Options) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Pool{ctx: ctx, opts: opts, conns: make(map[string]*Conn)}
}

// Get returns the pooled connection for addr, creating it on first use.
func (p *Pool) Get(addr string) *Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.conns[addr]
	if !ok {
		c = NewConn(p.ctx, addr, p.opts)
		p.conns[addr] = c
	}
	return c
}

// Send routes one frame through the pooled connection for addr.
func (p *Pool) Send(addr string, m *wire.Msg) error {
	return p.Get(addr).Send(m)
}

// SendAll routes several frames, flushed once, through the pooled
// connection for addr.
func (p *Pool) SendAll(addr string, msgs []*wire.Msg) error {
	return p.Get(addr).SendAll(msgs)
}

// DropReplay discards the replay window of the pooled connection for
// addr, if one exists — it never creates a connection, because a box
// this endpoint has not talked to cannot hold stale frames. Worker shims
// call it for boxes a migration removed from their route (see
// Conn.DropReplay for the epoch argument).
func (p *Pool) DropReplay(addr string) {
	p.mu.Lock()
	c := p.conns[addr]
	p.mu.Unlock()
	if c != nil {
		c.DropReplay()
	}
}

// Stats sums the counters of every pooled connection.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	conns := make([]*Conn, 0, len(p.conns))
	for _, c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	var s Stats
	for _, c := range conns {
		s = s.merge(c.Stats())
	}
	return s
}

// Close closes every pooled connection and forgets them. The drain
// (reader goroutines) happens outside the pool lock.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := make([]*Conn, 0, len(p.conns))
	for _, c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[string]*Conn)
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
