package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netagg/internal/netem"
	"netagg/internal/wire"
)

// ErrBackingOff reports a send refused because the last dial failed and
// the backoff window has not elapsed; no network activity happened.
var ErrBackingOff = errors.New("transport: backing off after failed dial")

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a persistent outbound frame connection — the client side of
// the data plane, subsuming the legacy wire.Client. It dials lazily with
// a bounded timeout, serialises writes, drops the connection on a write
// failure so the next send re-dials, paces re-dials to a dead peer with
// jittered exponential backoff, and optionally replays recent frames
// after a reconnect. Cancelling the constructor's context closes it.
type Conn struct {
	addr string
	opts Options
	ctx  context.Context
	stop func() bool // detaches the context→Close hook

	stats counters

	mu         sync.Mutex
	conn       net.Conn
	w          *wire.Writer
	closed     bool
	everUp     bool        // a connection has been established before
	needReplay bool        // the previous connection died with frames possibly unread
	replay     []*wire.Msg // last ReplayWindow frames written
	dialFails  int         // consecutive dial failures
	nextDial   time.Time   // start of the next allowed dial (backoff)

	wg sync.WaitGroup // reader goroutines
}

// NewConn returns a connection to addr. Nothing is dialled until the
// first Send. Cancelling ctx is equivalent to Close. If opts.OnFrame is
// set it must not block indefinitely, or Close will hang draining the
// reader goroutine.
func NewConn(ctx context.Context, addr string, opts Options) *Conn {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Conn{addr: addr, opts: opts.withDefaults(), ctx: ctx}
	c.stop = context.AfterFunc(ctx, c.Close)
	return c
}

// Addr returns the destination address.
func (c *Conn) Addr() string { return c.addr }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats.snapshot() }

// Send writes one frame, dialling (bounded, backoff-paced) on demand and
// retrying across reconnects up to MaxSendAttempts.
func (c *Conn) Send(m *wire.Msg) error {
	one := [1]*wire.Msg{m}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sendLocked(one[:])
}

// SendAll writes several frames with a single flush, with the same
// dial/retry behaviour as Send.
func (c *Conn) SendAll(msgs []*wire.Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sendLocked(msgs)
}

// sendLocked runs the dial/write/retry loop. c.mu exists to serialise
// all traffic on the connection, so holding it across these bounded
// operations (dial timeout, kernel send buffer) is the invariant.
func (c *Conn) sendLocked(msgs []*wire.Msg) error {
	var err error
	for attempt := 0; attempt < c.opts.MaxSendAttempts; attempt++ {
		if err = c.ensureLocked(); err != nil {
			// Dial failed or we are inside a backoff window: the window
			// paces the next try, retrying here would just busy-dial.
			return err
		}
		if err = c.writeLocked(msgs); err == nil {
			c.retainLocked(msgs)
			return nil
		}
		c.dropLocked()
	}
	return err
}

// writeLocked writes msgs followed by one flush and counts them.
//
//netagg:hotpath
func (c *Conn) writeLocked(msgs []*wire.Msg) error {
	for _, m := range msgs {
		if err := c.w.Write(m); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for _, m := range msgs {
		c.stats.framesOut.Add(1)
		c.stats.bytesOut.Add(int64(len(m.Payload)))
		obsFramesOut.Inc()
		obsBytesOut.Add(int64(len(m.Payload)))
	}
	return nil
}

// retainLocked appends msgs to the replay window, trimming to the
// configured size. The window takes its own reference on each pooled
// payload so senders may release theirs as soon as Send returns; trimmed
// frames give their reference back.
func (c *Conn) retainLocked(msgs []*wire.Msg) {
	n := c.opts.ReplayWindow
	if n <= 0 {
		return
	}
	for _, m := range msgs {
		_ = m.Buf.Retain() //netagg:owns m — the window's reference, released on trim/Close
	}
	c.replay = append(c.replay, msgs...)
	if len(c.replay) > n {
		drop := c.replay[:len(c.replay)-n]
		for _, m := range drop {
			m.Buf.Release()
		}
		c.replay = append([]*wire.Msg(nil), c.replay[len(c.replay)-n:]...)
	}
}

// releaseReplayLocked drops the window's payload references; called once
// on Close, when no further replay can happen.
func (c *Conn) releaseReplayLocked() {
	for _, m := range c.replay {
		m.Buf.Release()
	}
	c.replay = nil
}

// ensureLocked establishes the connection if needed, honouring the
// backoff window, and replays retained frames after a reconnect.
func (c *Conn) ensureLocked() error {
	if c.closed {
		return ErrClosed
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	if c.conn != nil {
		return nil
	}
	if !c.nextDial.IsZero() && time.Now().Before(c.nextDial) {
		c.stats.backoffSkips.Add(1)
		obsBackoffSkips.Inc()
		return fmt.Errorf("%w (next dial in %v)", ErrBackingOff,
			time.Until(c.nextDial).Round(time.Millisecond))
	}
	dial := c.opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	dctx, cancel := context.WithTimeout(c.ctx, c.opts.DialTimeout)
	nc, err := dial(dctx, c.addr)
	cancel()
	if err != nil {
		c.dialFails++
		c.stats.dialFailures.Add(1)
		obsDialFailures.Inc()
		c.nextDial = time.Now().Add(c.opts.Backoff.Delay(c.dialFails))
		return err
	}
	if c.opts.NIC != nil {
		nc = netem.Wrap(nc, c.opts.NIC)
	}
	c.conn = nc
	c.w = wire.NewWriter(nc)
	c.dialFails = 0
	c.nextDial = time.Time{}
	c.stats.dials.Add(1)
	obsDials.Inc()
	if c.everUp {
		c.stats.reconnects.Add(1)
		obsReconnects.Inc()
	}
	c.everUp = true
	if c.opts.OnFrame != nil {
		c.wg.Add(1)
		go c.readLoop(nc)
	}
	if c.needReplay && len(c.replay) > 0 {
		c.stats.replayed.Add(int64(len(c.replay)))
		obsReplayed.Add(int64(len(c.replay)))
		if err := c.writeLocked(c.replay); err != nil {
			c.dropLocked()
			return err
		}
	}
	c.needReplay = false
	return nil
}

// dropLocked tears down the current connection so the next send
// re-dials. With a replay window configured, the frames retained are
// marked for rewrite on the next connection: a write that "succeeded"
// into a dead peer's socket buffer is indistinguishable from a delivered
// one, so recovery must resend (receivers dedup, §3.1).
func (c *Conn) dropLocked() {
	if c.conn == nil {
		return
	}
	c.conn.Close()
	c.conn = nil
	c.w = nil
	if c.opts.ReplayWindow > 0 {
		c.needReplay = true
	}
}

// readLoop delivers inbound frames to OnFrame until the connection dies.
// Each frame's pooled payload reference transfers to OnFrame (see
// Options.OnFrame): the handler releases it, and a handler that forgets
// merely falls back to the GC.
func (c *Conn) readLoop(nc net.Conn) {
	defer c.wg.Done()
	r := wire.NewReader(nc)
	for {
		m, err := r.Read()
		if err != nil {
			// Ensure the writer side notices promptly even if it is the
			// peer that went away.
			nc.Close()
			return
		}
		c.stats.framesIn.Add(1)
		c.stats.bytesIn.Add(int64(len(m.Payload)))
		obsFramesIn.Inc()
		obsBytesIn.Add(int64(len(m.Payload)))
		c.opts.OnFrame(m)
	}
}

// Reset drops the current connection (if any) so the next Send re-dials.
// The failure monitor uses it when a peer stops replying without the
// connection erroring.
func (c *Conn) Reset() {
	c.mu.Lock()
	c.dropLocked()
	c.mu.Unlock()
}

// Close tears the connection down and drains its reader goroutine. It is
// idempotent and is also invoked by cancellation of the constructor's
// context.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.dropLocked()
	c.releaseReplayLocked()
	c.mu.Unlock()
	if c.stop != nil {
		c.stop()
	}
	c.wg.Wait()
}
