package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netagg/internal/netem"
	"netagg/internal/wire"
)

// ErrBackingOff reports a send refused because the last dial failed and
// the backoff window has not elapsed; no network activity happened.
var ErrBackingOff = errors.New("transport: backing off after failed dial")

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// sendReq is one frame staged in the send queue. m is a value copy of
// the sender's Msg, taken at admission so the sender may reuse its Msg
// struct the moment Send returns; m.Buf carries the queue's own payload
// reference (retained at admission, released or moved to the replay
// window by the flusher). done, when non-nil, is where a synchronous
// sender waits for the outcome of its frame's flush.
type sendReq struct {
	m    wire.Msg
	done chan error
	// sync marks a frame whose sender is waiting synchronously (the
	// group's waiter rides the last frame; earlier frames carry sync
	// alone). On a failed attempt sync frames are dropped with the error
	// reported, where fire-and-forget frames persist for the retry.
	sync bool
}

// connHandle wraps the established net.Conn so Close and Reset can
// reach the live socket (to unblock an in-flight vectored write) without
// sharing the flusher's connection state.
type connHandle struct {
	nc net.Conn
}

// Conn is a persistent outbound frame connection — the client side of
// the data plane. Senders enqueue frames into a bounded send queue; a
// dedicated flusher goroutine drains the queue and coalesces everything
// available into a single vectored write (headers in one scratch buffer,
// pooled payloads as their own iovec elements — no copy between the
// buffer pool and the socket). The flush policy is adaptive: a lone
// frame on an idle connection flushes immediately, concurrent senders
// are amortised into batched writev calls bounded by MaxBatchFrames and
// MaxBatchBytes.
//
// The flusher also owns the connection lifecycle: it dials lazily with a
// bounded timeout, paces re-dials to a dead peer with jittered
// exponential backoff, and optionally replays recent frames after a
// reconnect. While a healthy connection is established, Send blocks only
// on queue admission; while disconnected, Send degrades to synchronous
// so dial errors and backoff refusals surface to the caller exactly as
// they did before the queue existed. Cancelling the constructor's
// context closes the connection.
type Conn struct {
	addr string
	opts Options
	ctx  context.Context
	stop func() bool // detaches the context→Close hook

	stats counters

	// Sender-side queue state. qmu guards only the queue and the
	// closed/started flags — never a network operation, which is what
	// fixes the old head-of-line blocking where one slow peer's write
	// stalled every sender sharing the connection's mutex.
	qmu     sync.Mutex
	notFull *sync.Cond
	queue   []sendReq
	closed  bool
	started bool // flusher goroutine launched

	wake      chan struct{}              // flusher doorbell, 1-buffered
	connected atomic.Bool                // an established connection is believed healthy
	resetReq  atomic.Bool                // Reset asked the flusher to drop the connection
	trimReq   atomic.Bool                // DropReplay asked the flusher to discard the replay window
	live      atomic.Pointer[connHandle] // the established socket, for Close/Reset teardown
	dead      atomic.Pointer[connHandle] // reader's death notice for one specific connection

	// Flusher-owned connection state: accessed only from the flusher
	// goroutine, so none of it needs a lock.
	conn       net.Conn
	vw         *wire.VectorWriter
	everUp     bool        // a connection has been established before
	needReplay bool        // the previous connection died with frames possibly unread
	replay     []wire.Msg  // last ReplayWindow frames written; owns one payload ref each
	dialFails  int         // consecutive dial failures
	nextDial   time.Time   // start of the next allowed dial (backoff)
	writeFails int         // consecutive vectored-write failures
	pending    []sendReq   // frames taken off the queue, not yet written
	batch      []*wire.Msg // reused per-writev staging

	wg sync.WaitGroup // flusher + reader goroutines
}

// NewConn returns a connection to addr. Nothing is dialled until the
// first Send. Cancelling ctx is equivalent to Close. If opts.OnFrame is
// set it must not block indefinitely, or Close will hang draining the
// reader goroutine.
func NewConn(ctx context.Context, addr string, opts Options) *Conn {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Conn{
		addr: addr,
		opts: opts.withDefaults(),
		ctx:  ctx,
		wake: make(chan struct{}, 1),
	}
	c.notFull = sync.NewCond(&c.qmu)
	c.stop = context.AfterFunc(ctx, c.Close)
	return c
}

// Addr returns the destination address.
func (c *Conn) Addr() string { return c.addr }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats.snapshot() }

// Send queues one frame for the flusher. With a healthy connection
// established it blocks only on send-queue admission (back-pressure) and
// returns before the frame reaches the wire; delivery failures are
// recovered through the replay window and the receiver's dedup (§3.1).
// While disconnected it waits for the flusher's verdict so dial errors
// and ErrBackingOff surface synchronously.
func (c *Conn) Send(m *wire.Msg) error {
	one := [1]*wire.Msg{m}
	return c.enqueue(one[:])
}

// SendAll queues several frames as one group: they are admitted
// atomically, so the flusher coalesces them into the minimum number of
// vectored writes (one, when the group fits the batch bounds).
func (c *Conn) SendAll(msgs []*wire.Msg) error {
	return c.enqueue(msgs)
}

// enqueue admits msgs to the send queue and, when the connection is not
// yet established, waits for the flusher to report the group's outcome.
func (c *Conn) enqueue(msgs []*wire.Msg) error {
	if len(msgs) == 0 {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	sync := !c.connected.Load()
	var done chan error
	if sync {
		done = make(chan error, 1)
	}
	c.qmu.Lock()
	if !c.started && !c.closed {
		c.started = true
		c.wg.Add(1)
		go c.flusher()
	}
	// Admission: wait until the whole group fits the bounded queue. An
	// empty queue always admits, so a group larger than the bound cannot
	// deadlock — it just has the queue to itself.
	for len(c.queue) > 0 && len(c.queue)+len(msgs) > c.opts.SendQueue && !c.closed {
		c.stats.queueWaits.Add(1)
		obsQueueWaits.Inc()
		//lint:ignore lockdiscipline admission back-pressure: qmu guards only the queue (no network I/O ever runs under it) and Close broadcasts after setting closed, so the wait always terminates
		c.notFull.Wait()
	}
	if c.closed {
		c.qmu.Unlock()
		return ErrClosed
	}
	for i, m := range msgs {
		cp := *m
		cp.Buf = m.Buf.Retain() //netagg:owns cp — the queue's reference, released or moved to the replay window by the flusher
		var d chan error
		if sync && i == len(msgs)-1 {
			d = done // the group's waiter rides its last frame
		}
		c.queue = append(c.queue, sendReq{m: cp, done: d, sync: sync})
	}
	c.qmu.Unlock()
	c.doorbell()
	if !sync {
		return nil
	}
	select {
	case err := <-done:
		return err
	case <-c.ctx.Done():
		// The flusher's verdict (if any) lands in the buffered channel and
		// is dropped with it; the frames themselves are completed by the
		// flusher's shutdown path.
		return c.ctx.Err()
	}
}

// doorbell nudges the flusher; a full buffer means a wake-up is already
// pending.
func (c *Conn) doorbell() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// flusher is the connection's single writer goroutine: it drains the
// send queue, establishes the connection as needed, and turns every
// drained run of frames into coalesced vectored writes.
func (c *Conn) flusher() {
	defer c.wg.Done()
	for {
		closed := c.moveQueued()
		if c.resetReq.Swap(false) {
			c.dropConn()
		}
		if c.trimReq.Swap(false) {
			c.trimReplay()
		}
		// A death notice names one specific connection; honour it only if
		// that connection is still current, so a stale reader cannot kill
		// its successor.
		if d := c.dead.Swap(nil); d != nil && c.conn != nil && d.nc == c.conn {
			c.dropConn()
		}
		if closed {
			c.shutdown()
			return
		}
		if len(c.pending) == 0 {
			if c.needReplay && len(c.replay) > 0 {
				// Eager §3.1 recovery: the window may hold frames the dead
				// peer never processed, and no future send is guaranteed to
				// arrive and trigger the rewrite lazily. Reconnect now
				// (ensure replays before reporting success), pacing retries
				// with the dial backoff.
				if err := c.ensure(); err != nil {
					if c.ctx.Err() != nil {
						c.qmu.Lock()
						c.closed = true
						c.notFull.Broadcast()
						c.qmu.Unlock()
						continue
					}
					c.waitRetry()
				}
				continue
			}
			select {
			case <-c.wake:
			case <-c.ctx.Done():
				// Mark closed ourselves: the context's AfterFunc runs
				// Close concurrently, but observing the cancellation here
				// must terminate the loop even if that hook is delayed.
				c.qmu.Lock()
				c.closed = true
				c.notFull.Broadcast()
				c.qmu.Unlock()
			}
			continue
		}
		if err := c.ensure(); err != nil {
			c.failWaiters(err)
			if len(c.pending) > 0 {
				// Fire-and-forget frames persist across the outage; wait
				// for the backoff window (or new work) and try again.
				c.waitRetry()
			}
			continue
		}
		c.writePending()
	}
}

// moveQueued claims everything senders have queued, reopening admission
// space, and reports whether the connection has been closed.
func (c *Conn) moveQueued() bool {
	c.qmu.Lock()
	if len(c.queue) > 0 {
		c.pending = append(c.pending, c.queue...)
		for i := range c.queue {
			c.queue[i] = sendReq{}
		}
		c.queue = c.queue[:0]
		c.notFull.Broadcast()
	}
	closed := c.closed
	c.qmu.Unlock()
	return closed
}

// waitRetry sleeps until the next allowed dial, new work, or shutdown.
func (c *Conn) waitRetry() {
	d := time.Until(c.nextDial)
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.wake:
		c.doorbell() // preserve the nudge for the main loop's next block
	case <-t.C:
	case <-c.ctx.Done():
	}
}

// writePending drains the pending frames into batch-bounded vectored
// writes. On a write error the connection is dropped and pending frames
// are kept for the post-reconnect rewrite; repeated failures surface the
// error to synchronous waiters.
func (c *Conn) writePending() {
	for len(c.pending) > 0 {
		n := c.batchBound()
		c.batch = c.batch[:0]
		for i := 0; i < n; i++ {
			c.batch = append(c.batch, &c.pending[i].m)
		}
		if err := c.writeVec(); err != nil {
			c.dropConn()
			c.writeFails++
			if c.writeFails >= c.opts.MaxSendAttempts {
				c.failWaiters(err)
				c.writeFails = 0
			}
			return
		}
		c.writeFails = 0
		c.finishBatch(n)
	}
}

// batchBound returns how many pending frames the next vectored write may
// coalesce under the frame-count and payload-byte caps (always at least
// one).
//
//netagg:hotpath
func (c *Conn) batchBound() int {
	n := len(c.pending)
	if n > c.opts.MaxBatchFrames {
		n = c.opts.MaxBatchFrames
	}
	bytes := 0
	for i := 0; i < n; i++ {
		bytes += len(c.pending[i].m.Payload)
		if bytes > c.opts.MaxBatchBytes && i > 0 {
			return i
		}
	}
	return n
}

// writeVec issues one vectored write for the frames staged in c.batch
// and records the per-batch counters.
//
//netagg:hotpath
func (c *Conn) writeVec() error {
	written, err := c.vw.WriteBatch(c.batch)
	if err != nil {
		return err
	}
	k := int64(len(c.batch))
	var payload int64
	for _, m := range c.batch {
		payload += int64(len(m.Payload))
	}
	c.stats.writevCalls.Add(1)
	c.stats.framesOut.Add(k)
	c.stats.bytesOut.Add(payload)
	obsWritevCalls.Inc()
	obsBatchSize.Observe(k)
	obsBatchFrames.Add(k)
	obsBatchBytes.Add(written)
	obsFramesOut.Add(k)
	obsBytesOut.Add(payload)
	if k > 1 {
		c.stats.batchedFrames.Add(k)
		obsFlushCoalesce.Add(k - 1)
	}
	return nil
}

// finishBatch completes the first n pending frames after a successful
// write: the queue's payload reference moves to the replay window (or is
// released), and synchronous waiters are woken with success.
func (c *Conn) finishBatch(n int) {
	for i := 0; i < n; i++ {
		req := &c.pending[i]
		if c.opts.ReplayWindow > 0 {
			c.retainReplay(req.m)
		} else {
			req.m.Buf.Release()
		}
		if req.done != nil {
			select {
			case req.done <- nil:
			default: // cap-1 channel, single verdict per group: never full
			}
		}
	}
	m := copy(c.pending, c.pending[n:])
	for i := m; i < len(c.pending); i++ {
		c.pending[i] = sendReq{}
	}
	c.pending = c.pending[:m]
}

// failWaiters reports err to every synchronous sender in pending and
// releases the frames of their groups; fire-and-forget frames stay
// pending for the next attempt, preserving their order.
func (c *Conn) failWaiters(err error) {
	kept := c.pending[:0]
	for i := range c.pending {
		req := c.pending[i]
		if req.sync {
			req.m.Buf.Release()
			if req.done != nil {
				select {
				case req.done <- err:
				default: // cap-1 channel, single verdict per group: never full
				}
			}
		} else {
			kept = append(kept, req)
		}
	}
	for i := len(kept); i < len(c.pending); i++ {
		c.pending[i] = sendReq{}
	}
	c.pending = kept
}

// retainReplay moves the queue's payload reference on m into the replay
// window, trimming the oldest frames beyond the configured size.
func (c *Conn) retainReplay(m wire.Msg) {
	c.replay = append(c.replay, m) //netagg:owns m — the window's reference, released on trim/Close
	if n := c.opts.ReplayWindow; len(c.replay) > n {
		drop := c.replay[:len(c.replay)-n]
		for i := range drop {
			drop[i].Buf.Release()
		}
		c.replay = append(c.replay[:0], c.replay[len(c.replay)-n:]...)
	}
}

// releaseReplay drops the window's payload references; called once on
// shutdown, when no further replay can happen.
func (c *Conn) releaseReplay() {
	for i := range c.replay {
		c.replay[i].Buf.Release()
	}
	c.replay = nil
}

// trimReplay is the flusher-side half of DropReplay: it releases the
// window's payload references and clears the pending-replay mark so a
// reconnect starts clean instead of resending frames of a superseded
// epoch.
func (c *Conn) trimReplay() {
	if n := len(c.replay); n > 0 {
		c.stats.replayTrimmed.Add(int64(n))
		obsReplayTrimmed.Add(int64(n))
	}
	c.releaseReplay()
	c.needReplay = false
}

// DropReplay asks the flusher to discard the replay window, releasing
// the buffer references it retains. A subtree migration calls it on
// connections to boxes removed from a route: everything the window
// holds belongs to a superseded (tree, attempt) epoch that the new
// attempt resends in full, so replaying it after a reconnect would only
// deliver frames the receivers drop as stale (§3.1 dedup). The trim is
// asynchronous — frames already admitted or in flight are unaffected,
// which is safe for exactly the same epoch reason.
func (c *Conn) DropReplay() {
	c.trimReq.Store(true)
	c.doorbell()
}

// ensure establishes the connection if needed, honouring the backoff
// window, and rewrites retained frames after a reconnect.
func (c *Conn) ensure() error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	if c.conn != nil {
		return nil
	}
	if !c.nextDial.IsZero() && time.Now().Before(c.nextDial) {
		c.stats.backoffSkips.Add(1)
		obsBackoffSkips.Inc()
		return fmt.Errorf("%w (next dial in %v)", ErrBackingOff,
			time.Until(c.nextDial).Round(time.Millisecond))
	}
	dial := c.opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	dctx, cancel := context.WithTimeout(c.ctx, c.opts.DialTimeout)
	nc, err := dial(dctx, c.addr)
	cancel()
	if err != nil {
		c.dialFails++
		c.stats.dialFailures.Add(1)
		obsDialFailures.Inc()
		c.nextDial = time.Now().Add(c.opts.Backoff.Delay(c.dialFails))
		return err
	}
	if c.opts.NIC != nil {
		nc = netem.Wrap(nc, c.opts.NIC)
	}
	c.conn = nc
	c.vw = wire.NewVectorWriter(nc)
	h := &connHandle{nc: nc}
	c.live.Store(h)
	c.dialFails = 0
	c.nextDial = time.Time{}
	c.stats.dials.Add(1)
	obsDials.Inc()
	if c.everUp {
		c.stats.reconnects.Add(1)
		obsReconnects.Inc()
	}
	c.everUp = true
	// The reader runs even without OnFrame: a write-only flusher with an
	// empty queue would otherwise never notice a dead peer (the last batch
	// "succeeds" into the dead socket's buffer), and the §3.1 replay would
	// wait forever for a failure that cannot surface.
	c.wg.Add(1)
	go c.readLoop(nc, h)
	if c.needReplay && len(c.replay) > 0 {
		c.stats.replayed.Add(int64(len(c.replay)))
		obsReplayed.Add(int64(len(c.replay)))
		if err := c.writeReplay(); err != nil {
			c.dropConn()
			return err
		}
	}
	c.needReplay = false
	c.connected.Store(true)
	return nil
}

// writeReplay rewrites the replay window onto a fresh connection, in
// batch-bounded vectored writes. A write that "succeeded" into a dead
// peer's socket buffer is indistinguishable from a delivered one, so
// recovery must resend; receivers dedup (§3.1).
func (c *Conn) writeReplay() error {
	for off := 0; off < len(c.replay); {
		n := len(c.replay) - off
		if n > c.opts.MaxBatchFrames {
			n = c.opts.MaxBatchFrames
		}
		c.batch = c.batch[:0]
		for i := 0; i < n; i++ {
			c.batch = append(c.batch, &c.replay[off+i])
		}
		if err := c.writeVec(); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// dropConn tears down the current connection so the next attempt
// re-dials. With a replay window configured, retained frames are marked
// for rewrite on the next connection.
func (c *Conn) dropConn() {
	c.connected.Store(false)
	if c.conn == nil {
		return
	}
	c.conn.Close()
	c.conn = nil
	c.vw = nil
	c.live.Store(nil)
	if c.opts.ReplayWindow > 0 {
		c.needReplay = true
	}
}

// shutdown is the flusher's exit path: every queued and pending frame is
// completed (waiters get ErrClosed, fire-and-forget frames are counted
// dropped), all queue and replay references are released, and the socket
// is closed.
func (c *Conn) shutdown() {
	for i := range c.pending {
		req := c.pending[i]
		req.m.Buf.Release()
		if req.done != nil {
			select {
			case req.done <- ErrClosed:
			default: // cap-1 channel, single verdict per group: never full
			}
		}
		if !req.sync {
			c.stats.dropped.Add(1)
			obsQueueDrops.Inc()
		}
		c.pending[i] = sendReq{}
	}
	c.pending = nil
	c.releaseReplay()
	c.dropConn()
}

// readLoop delivers inbound frames to OnFrame (discarding them when none
// is set — it still runs as the connection's death watcher) until the
// connection dies, then posts a death notice naming its connection so the
// flusher drops it and the next send re-dials and replays. Each frame's
// pooled payload reference transfers to OnFrame (see Options.OnFrame):
// the handler releases it, and a handler that forgets merely falls back
// to the GC.
func (c *Conn) readLoop(nc net.Conn, h *connHandle) {
	defer c.wg.Done()
	r := wire.NewReader(nc)
	for {
		m, err := r.Read()
		if err != nil {
			// Ensure the writer side notices promptly even if it is the
			// peer that went away, then tell the flusher which connection
			// died.
			nc.Close()
			if c.live.Load() == h {
				c.connected.Store(false)
			}
			c.dead.Store(h)
			c.doorbell()
			return
		}
		c.stats.framesIn.Add(1)
		c.stats.bytesIn.Add(int64(len(m.Payload)))
		obsFramesIn.Inc()
		obsBytesIn.Add(int64(len(m.Payload)))
		if c.opts.OnFrame != nil {
			c.opts.OnFrame(m)
		} else {
			m.Buf.Release()
		}
	}
}

// Reset drops the current connection (if any) so the next Send re-dials.
// The failure monitor uses it when a peer stops replying without the
// connection erroring.
func (c *Conn) Reset() {
	c.resetReq.Store(true)
	c.connected.Store(false)
	if h := c.live.Load(); h != nil {
		h.nc.Close() // unblock an in-flight write into the dead socket
	}
	c.doorbell()
}

// Close tears the connection down: the flusher completes or drops every
// queued frame, releases the replay window, and exits; reader goroutines
// drain. It is idempotent and is also invoked by cancellation of the
// constructor's context.
func (c *Conn) Close() {
	c.qmu.Lock()
	if c.closed {
		c.qmu.Unlock()
		if c.stop != nil {
			c.stop()
		}
		return
	}
	c.closed = true
	c.notFull.Broadcast()
	c.qmu.Unlock()
	c.connected.Store(false)
	c.doorbell()
	if h := c.live.Load(); h != nil {
		h.nc.Close() // unblock an in-flight write so the flusher can exit
	}
	if c.stop != nil {
		c.stop()
	}
	c.wg.Wait()
}
