package transport

import (
	"math/rand"
	"time"
)

// Backoff is a jittered exponential re-dial policy: the nth consecutive
// failure delays the next attempt by Min·Factor^(n-1), capped at Max,
// with ±Jitter randomisation so a fleet of clients reconnecting to a
// restarted box does not re-dial in lockstep. The zero value uses the
// defaults (50ms..5s, factor 2, 20% jitter).
type Backoff struct {
	// Min is the delay after the first failure (default 50ms).
	Min time.Duration
	// Max caps the delay (default 5s).
	Max time.Duration
	// Factor is the per-failure growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomised, in [0,1): the
	// delay is scaled by a uniform factor in [1-Jitter, 1+Jitter]
	// (default 0.2).
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	return b
}

// Delay returns the wait before the next dial after `failures`
// consecutive failures (failures >= 1).
func (b Backoff) Delay(failures int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Min)
	for i := 1; i < failures; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		// transport is real-network code, outside the simulator's
		// seeded-determinism scope, so the global source is fine here.
		d *= 1 - b.Jitter + 2*b.Jitter*rand.Float64()
	}
	return time.Duration(d)
}
