package transport

import (
	"testing"

	"netagg/internal/testutil"
)

// The transport package owns every data-plane goroutine (accept loops,
// connection readers), so it runs under the same leak gate as the
// packages built on it.
func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }
