// Package simnet is a discrete-event, fluid flow-level simulator of a data
// centre network. It stands in for the packet-level OMNeT++ simulator of the
// paper (§4.1): flows traverse a fixed path of resources (directed links,
// plus agg-box processing capacities), bandwidth is shared with TCP-style
// max-min fairness (progressive filling with per-flow rate caps), and
// aggregation is modelled as *streaming* dependencies — the flow leaving an
// aggregation point can send no faster than α times the aggregate arrival
// rate of its input flows, matching NetAgg's pipelined local aggregation
// trees (§3.2.1) and the cut-through behaviour of the packet simulation.
//
// All quantities use bits and seconds.
package simnet

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// ResourceID identifies a capacity-constrained resource (a directed link or
// an agg box's processing rate).
type ResourceID int

// FlowID identifies a flow.
type FlowID int

// ResourceKind distinguishes links from processing capacities, so per-link
// traffic statistics (Fig 9) exclude processing resources.
type ResourceKind int

const (
	// KindLink is a directed network link.
	KindLink ResourceKind = iota
	// KindProc is an agg box's aggregation processing capacity R (§2.4).
	KindProc
)

// resource is a capacity shared by the flows crossing it.
type resource struct {
	kind     ResourceKind
	capacity float64
	ref      int // external reference (e.g. topology.LinkID), for reporting

	active []FlowID // flows currently crossing this resource
	slots  []int32  // slots[i]: index of this resource in flows[active[i]].spec.Resources
	bits   float64  // total bits carried (links only; Fig 9)

	// scratch state for the allocator
	avail   float64
	count   int
	count0  int // member-flow count, cached for the component's cap loop
	stamp   int
	visit   int  // component-BFS stamp
	inDirty bool // queued in Sim.dirtyRes
}

type flowState int

const (
	statePending flowState = iota
	stateActive
	stateDone
)

// FlowClass labels flows for metrics: the paper separates aggregatable
// (partition/aggregation) traffic from non-aggregatable background traffic
// (§4.1, Figs 6-7).
type FlowClass int

const (
	// ClassBackground is non-aggregatable traffic.
	ClassBackground FlowClass = iota
	// ClassAggregation is traffic belonging to a partition/aggregation job.
	ClassAggregation
)

// FlowSpec describes a flow to add to the simulation.
type FlowSpec struct {
	// Resources is the ordered list of resources the flow crosses.
	Resources []ResourceID
	// Bits is the total size of the flow.
	Bits float64
	// StaticBits is the portion of Bits available at start time (a worker's
	// own partial result). The remainder, Bits-StaticBits, is produced by
	// aggregating the Inputs as they arrive.
	StaticBits float64
	// Inputs are upstream flows feeding this flow through an aggregation
	// point. Empty for ordinary flows.
	Inputs []FlowID
	// Start is the earliest start time (used for stragglers, Fig 14).
	Start float64
	// Class labels the flow for metrics.
	Class FlowClass
	// Job groups the flows of one partition/aggregation job; -1 for
	// background flows.
	Job int
	// Final marks the flow that delivers the job's fully aggregated result
	// to the master; job completion time is this flow's end time.
	Final bool
}

type flow struct {
	spec  FlowSpec
	ratio float64 // (Bits-StaticBits) / Σ input Bits; 0 if no inputs

	state     flowState
	sent      float64
	produced  float64
	rate      float64
	cap       float64
	frozen    bool
	truncated bool    // stopped early by Truncate; retires at sent
	start     float64 // actual activation time
	end       float64

	inputsDone int

	// incremental-allocator state
	resPos     []int32 // position of this flow in resources[spec.Resources[j]].active
	visit      int     // component-BFS stamp
	depth      int32   // feed-DAG depth: 0 for source flows, 1+max(inputs) otherwise
	inDirty    bool    // queued in Sim.dirtyFlows
	capLimited bool    // production-cap branch taken at the last allocation

	// cap-propagation scratch (valid only inside waterfillComponent's cap
	// update pass; estRate additionally tracks rate for non-active flows so
	// estProductionRate can sum inputs unconditionally)
	estRate    float64
	newCap     float64
	newLimited bool
}

// Sim is a flow-level simulation instance. Build it by adding resources and
// flows, then call Run once. A Sim is not safe for concurrent use.
type Sim struct {
	resources []resource
	flows     []flow
	consumers [][]FlowID // consumers[i]: flows that take input from flow i

	// StoreAndForward, when true, disables streaming: a fed flow starts only
	// after all its inputs complete. Used by the ablation benchmarks.
	StoreAndForward bool

	// NaiveAllocation, when true, replaces progressive-filling max-min
	// fairness with the naive per-resource equal share (each flow gets the
	// minimum of capacity/flow-count over its resources). Faster but
	// under-utilises links whose flows are bottlenecked elsewhere; used by
	// the simulator-accuracy ablation benchmark.
	NaiveAllocation bool

	// FullRecompute, when true, re-waterfills every coupling component on
	// every event instead of only the dirty ones. It is the debug oracle the
	// incremental allocator is validated against: both modes must produce
	// byte-identical flow timings, link counters, and event counts.
	FullRecompute bool

	now    float64
	ran    bool
	report RunStats

	// timers are pending At callbacks, sorted by firing time (FIFO within
	// a time). They drive mid-run injection: background-traffic churn and
	// the dynamic-tree replanner (§ dynamic trees, DESIGN.md §16).
	timers []simTimer

	// allocator scratch, reused across events to avoid per-event allocation
	stamp          int
	touchedScratch []ResourceID
	cappedScratch  []FlowID
	fedScratch     []FlowID
	heapScratch    []shareEntry

	// incremental-allocator state
	visitStamp  int
	dirtyFlows  []FlowID
	dirtyRes    []ResourceID
	compScratch []FlowID
}

// RunStats summarises a completed run.
type RunStats struct {
	// Duration is the simulated time at which the last flow completed.
	Duration float64
	// Events is the number of simulation events processed.
	Events int
	// Alloc counts the allocator's work. Unlike Duration and Events it
	// depends on the allocation mode: FullRecompute performs strictly more
	// component recomputations for the same simulated behaviour.
	Alloc AllocStats
}

// AllocStats counts max-min allocator work, making incremental-allocator
// savings visible in reported stats rather than only in wall clock.
type AllocStats struct {
	// Waterfills is the number of progressive-filling passes (one per
	// component per cap fixed-point iteration).
	Waterfills int
	// Components is the number of coupling components re-waterfilled.
	Components int
	// FlowsReallocated is the total number of flow-slots re-waterfilled
	// (component sizes summed over all events).
	FlowsReallocated int
	// FlowsCarried is the total number of active flow-slots whose rates
	// were carried over without recomputation.
	FlowsCarried int
	// MaxComponent is the largest coupling component seen.
	MaxComponent int
	// Unconverged is the number of component recomputations whose
	// production-cap fixed point was still moving after maxCapIters
	// iterations (the allocation is then the last iterate).
	Unconverged int
}

// New returns an empty simulation.
func New() *Sim {
	return &Sim{}
}

// AddResource adds a capacity-constrained resource and returns its ID.
func (s *Sim) AddResource(kind ResourceKind, capacity float64, ref int) ResourceID {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: resource capacity must be > 0, got %g", capacity))
	}
	id := ResourceID(len(s.resources))
	s.resources = append(s.resources, resource{kind: kind, capacity: capacity, ref: ref})
	return id
}

// AddFlow adds a flow and returns its ID. Flows must be added after the
// flows they take input from.
func (s *Sim) AddFlow(spec FlowSpec) FlowID {
	if spec.Bits < 0 || spec.StaticBits < 0 || spec.StaticBits > spec.Bits+1e-9 {
		panic(fmt.Sprintf("simnet: invalid flow sizes bits=%g static=%g", spec.Bits, spec.StaticBits))
	}
	if spec.Start < 0 {
		panic("simnet: flow start time must be >= 0")
	}
	id := FlowID(len(s.flows))
	var inputBits float64
	for _, in := range spec.Inputs {
		if int(in) >= int(id) {
			panic("simnet: flow inputs must be added before the flow itself")
		}
		inputBits += s.flows[in].spec.Bits
	}
	f := flow{spec: spec, state: statePending}
	if len(spec.Inputs) > 0 && inputBits > 0 {
		f.ratio = (spec.Bits - spec.StaticBits) / inputBits
	}
	for _, in := range spec.Inputs {
		if d := s.flows[in].depth + 1; d > f.depth {
			f.depth = d
		}
	}
	s.flows = append(s.flows, f)
	s.consumers = append(s.consumers, nil)
	for _, in := range spec.Inputs {
		s.consumers[in] = append(s.consumers[in], id)
	}
	return id
}

// simTimer is one pending At callback.
type simTimer struct {
	at float64
	fn func()
}

// At schedules fn to run at simulated time t, at an event boundary (all
// fluid state is advanced to t before fn runs). Callbacks may add flows
// with AddFlow, stop flows with Truncate, read simulation state through
// the accessors, and schedule further timers — this is how mid-run
// interventions (background-traffic churn, dynamic-tree replanning) are
// modelled. Timers at the same t fire in scheduling order. A t at or
// before the current simulated time fires at the next event boundary.
func (s *Sim) At(t float64, fn func()) {
	if t < 0 {
		panic("simnet: timer time must be >= 0")
	}
	i := sort.Search(len(s.timers), func(i int) bool { return s.timers[i].at > t })
	s.timers = slices.Insert(s.timers, i, simTimer{at: t, fn: fn})
}

// Truncate stops a flow early: it keeps whatever it has sent so far and
// completes at the current simulated time (a pending flow is cancelled
// outright and completes at zero size the moment it would have started).
// The flow's consumers see it as a finished input — they will not receive
// the bits it never sent, so a caller migrating an aggregation subtree
// must truncate the fed flows of the subtree as well and re-inject
// replacement flows (the full-resend recovery of §3.1). Valid before Run
// or from an At callback.
func (s *Sim) Truncate(id FlowID) {
	f := &s.flows[id]
	switch f.state {
	case stateDone:
		return
	case statePending:
		f.spec.Bits = 0
		f.spec.StaticBits = 0
		f.truncated = true
	case stateActive:
		f.spec.Bits = f.sent
		if f.spec.StaticBits > f.spec.Bits {
			f.spec.StaticBits = f.spec.Bits
		}
		f.truncated = true
		s.markFlowDirty(id)
	}
}

// Now returns the current simulated time (0 before Run; only meaningful
// mid-run from an At callback).
func (s *Sim) Now() float64 { return s.now }

// FlowSent returns the bits a flow has sent so far.
func (s *Sim) FlowSent(id FlowID) float64 { return s.flows[id].sent }

// FlowDone reports whether a flow has completed (or been truncated and
// retired).
func (s *Sim) FlowDone(id FlowID) bool { return s.flows[id].state == stateDone }

// FlowTruncated reports whether a flow was stopped early by Truncate.
func (s *Sim) FlowTruncated(id FlowID) bool { return s.flows[id].truncated }

// ResourceActiveFlows returns the number of flows currently crossing a
// resource — the simulator's stand-in for an agg box's scheduler queue
// depth when sampled on its processing resource.
func (s *Sim) ResourceActiveFlows(id ResourceID) int {
	return len(s.resources[id].active)
}

// NumFlows reports the number of flows added.
func (s *Sim) NumFlows() int { return len(s.flows) }

// FlowEnd returns the completion time of a flow. Valid after Run.
func (s *Sim) FlowEnd(id FlowID) float64 { return s.flows[id].end }

// FlowStart returns the activation time of a flow. Valid after Run.
func (s *Sim) FlowStart(id FlowID) float64 { return s.flows[id].start }

// FlowSpecOf returns the spec a flow was created with.
func (s *Sim) FlowSpecOf(id FlowID) FlowSpec { return s.flows[id].spec }

// FCT returns a flow's completion time measured from its spec'd start time,
// the paper's FCT metric.
func (s *Sim) FCT(id FlowID) float64 { return s.flows[id].end - s.flows[id].spec.Start }

// LinkBits returns the total traffic carried by a link resource (Fig 9).
func (s *Sim) LinkBits(id ResourceID) float64 { return s.resources[id].bits }

// ResourceKindOf returns the kind of a resource.
func (s *Sim) ResourceKindOf(id ResourceID) ResourceKind { return s.resources[id].kind }

// ResourceRef returns the external reference a resource was created with.
func (s *Sim) ResourceRef(id ResourceID) int { return s.resources[id].ref }

// NumResources reports the number of resources.
func (s *Sim) NumResources() int { return len(s.resources) }

// Stats returns the run summary. Valid after Run.
func (s *Sim) Stats() RunStats { return s.report }

const (
	eps     = 1e-9
	timeEps = 1e-12
	// dtMin floors the event step. Buffer-drain events among many mutually
	// dependent flows can otherwise degenerate into nanosecond ping-pong:
	// flooring the step lets a fed flow over-send at most rate×dtMin bits
	// past its buffer (reconciled by clamping produced up to sent), a
	// bounded modelling error that is negligible against flow sizes.
	dtMin = 1e-7
)

// Run executes the simulation to completion and returns run statistics.
// It panics if called twice or if the flow graph deadlocks (which indicates
// a builder bug, e.g. a dependency cycle).
func (s *Sim) Run() RunStats {
	if s.ran {
		panic("simnet: Run called twice")
	}
	s.ran = true

	active := make([]FlowID, 0, len(s.flows))
	pending := make([]FlowID, 0, len(s.flows))
	for i := range s.flows {
		pending = append(pending, FlowID(i))
	}

	// One backing array for every flow's resource-position index, so the
	// hot path performs no per-event (or even per-flow) allocation.
	totalRes := 0
	for i := range s.flows {
		totalRes += len(s.flows[i].spec.Resources)
	}
	resPosBacking := make([]int32, totalRes)
	for i := range s.flows {
		f := &s.flows[i]
		n := len(f.spec.Resources)
		f.resPos, resPosBacking = resPosBacking[:n:n], resPosBacking[n:]
	}

	activate := func(id FlowID) {
		f := &s.flows[id]
		// Flows injected mid-run (from an At callback) missed the backing
		// pre-allocation above; give them their own index slice lazily.
		if len(f.resPos) < len(f.spec.Resources) {
			f.resPos = make([]int32, len(f.spec.Resources))
		}
		f.state = stateActive
		f.start = s.now
		f.produced = f.spec.StaticBits
		// Warm-started cap loop: a new flow enters uncapped and the first
		// recomputation of its component tightens the cap if needed.
		f.cap = math.Inf(1)
		f.capLimited = false
		f.estRate = 0
		if s.StoreAndForward && len(f.spec.Inputs) > 0 {
			// All inputs have completed; the whole payload is buffered.
			f.produced = f.spec.Bits
		}
		active = append(active, id)
		for j, r := range f.spec.Resources {
			res := &s.resources[r]
			f.resPos[j] = int32(len(res.active))
			res.active = append(res.active, id)
			res.slots = append(res.slots, int32(j))
		}
		s.markFlowDirty(id)
	}

	// startable reports whether a pending flow may activate now. A
	// truncated pending flow is always startable: it activates at zero
	// size and retires immediately, regardless of its original gating.
	startable := func(id FlowID) bool {
		f := &s.flows[id]
		if f.truncated {
			return true
		}
		if f.spec.Start > s.now+timeEps {
			return false
		}
		if s.StoreAndForward && len(f.spec.Inputs) > 0 {
			return f.inputsDone == len(f.spec.Inputs)
		}
		return true
	}

	// retirable reports whether an active flow has delivered everything it
	// ever will: all bits sent and every input complete — or truncation,
	// which waives the inputs (they will never deliver the missing bits).
	retirable := func(id FlowID) bool {
		f := &s.flows[id]
		return f.spec.Bits-f.sent <= math.Max(eps, f.spec.Bits*1e-12) &&
			(f.producedAll() || f.truncated)
	}

	finish := func(id FlowID) {
		f := &s.flows[id]
		f.state = stateDone
		f.end = s.now
		f.sent = f.spec.Bits
		f.rate = 0
		f.estRate = 0
		for j, r := range f.spec.Resources {
			// O(1) swap-remove via the two-way position index.
			res := &s.resources[r]
			p := f.resPos[j]
			last := int32(len(res.active) - 1)
			moved, movedSlot := res.active[last], res.slots[last]
			res.active[p], res.slots[p] = moved, movedSlot
			res.active = res.active[:last]
			res.slots = res.slots[:last]
			if moved != id {
				s.flows[moved].resPos[movedSlot] = p
			}
			// Everything still crossing the resource inherits freed capacity.
			s.markResDirty(r)
		}
		for _, c := range s.consumers[id] {
			cf := &s.flows[c]
			cf.inputsDone++
			if cf.state == stateActive {
				s.markFlowDirty(c)
			}
		}
	}

	guard := 0
	for {
		// Fire due timers. Callbacks may add flows (queued as pending
		// below) and truncate existing ones (swept by the retire pass);
		// both are picked up before this event's allocation.
		for len(s.timers) > 0 && s.timers[0].at <= s.now+timeEps {
			tm := s.timers[0]
			s.timers = s.timers[1:]
			known := len(s.flows)
			tm.fn()
			for id := known; id < len(s.flows); id++ {
				pending = append(pending, FlowID(id))
			}
		}

		// Move newly startable flows from pending to active.
		next := pending[:0]
		for _, id := range pending {
			if startable(id) {
				activate(id)
			} else {
				next = append(next, id)
			}
		}
		pending = next

		// Retire flows with nothing left to send — zero-size flows, and
		// flows a timer just truncated. A retiring input can complete a
		// truncated consumer in the same sweep, so sweep to a fixpoint.
		var compact []FlowID
		for {
			finished := false
			compact = active[:0]
			for _, id := range active {
				if retirable(id) {
					finish(id)
					s.report.Events++
					finished = true
				} else {
					compact = append(compact, id)
				}
			}
			active = compact
			if !finished {
				break
			}
		}

		if len(active) == 0 {
			if len(pending) == 0 && len(s.timers) == 0 {
				break
			}
			// Jump to the earliest future start or timer. Pending flows
			// whose start has already passed are gated on something else
			// (store-and-forward inputs): they cannot unblock while no
			// flow is active, but a timer still can inject new work.
			t := math.Inf(1)
			for _, id := range pending {
				if st := s.flows[id].spec.Start; st > s.now+timeEps && st < t {
					t = st
				}
			}
			if len(s.timers) > 0 && s.timers[0].at < t {
				t = s.timers[0].at
			}
			if math.IsInf(t, 1) {
				panic("simnet: deadlock — pending flows can never start")
			}
			if t > s.now {
				s.now = t
			}
			continue
		}

		s.allocate(active)

		// Next event: a completion, a buffer drain, or a pending start.
		dt := math.Inf(1)
		for _, id := range active {
			f := &s.flows[id]
			if f.rate > eps {
				if rem := f.spec.Bits - f.sent; rem > 0 {
					if d := rem / f.rate; d < dt {
						dt = d
					}
				}
			}
			// Buffer drain: sending faster than producing. Buffers at or
			// below bufEps are already treated as empty by the allocator,
			// so only schedule a drain event down to that level — otherwise
			// floating-point residue generates endless micro-events.
			if len(f.spec.Inputs) > 0 && !f.producedAll() {
				prod := s.productionRate(f)
				if f.rate > prod+eps {
					if buf := f.produced - f.sent - bufEps; buf > 0 {
						if d := buf / (f.rate - prod); d < dt {
							dt = d
						}
					}
				}
			}
		}
		for _, id := range pending {
			if st := s.flows[id].spec.Start; st > s.now {
				if d := st - s.now; d < dt {
					dt = d
				}
			}
		}
		// A timer is an event boundary too: never advance past one.
		if len(s.timers) > 0 {
			if d := s.timers[0].at - s.now; d < dt {
				dt = d
			}
		}
		if dt < dtMin {
			dt = dtMin
		}
		if math.IsInf(dt, 1) {
			panic("simnet: stalled (no flow can make progress) — " + s.stuckReport(active, pending, dt))
		}
		if dt < timeEps {
			dt = timeEps
		}

		// Advance fluid state by dt. Production is updated after all sends
		// using pre-step rates; both evolve linearly so this is exact.
		for _, id := range active {
			f := &s.flows[id]
			if f.rate <= 0 {
				continue
			}
			d := f.rate * dt
			f.sent += d
			if f.sent > f.spec.Bits {
				f.sent = f.spec.Bits
			}
			for _, r := range f.spec.Resources {
				res := &s.resources[r]
				if res.kind == KindLink {
					res.bits += d
				}
			}
		}
		for _, id := range active {
			f := &s.flows[id]
			if len(f.spec.Inputs) == 0 {
				continue
			}
			f.produced = f.spec.StaticBits
			for _, in := range f.spec.Inputs {
				f.produced += f.ratio * s.flows[in].sent
			}
			if f.produced > f.spec.Bits {
				f.produced = f.spec.Bits
			}
			if f.produced < f.sent {
				f.produced = f.sent
			}
			// A buffer crossing bufEps flips the flow between backlog- and
			// production-limited: its coupling component must re-allocate.
			if limited := !f.producedAll() && f.produced-f.sent <= bufEps; limited != f.capLimited {
				s.markFlowDirty(id)
			}
		}
		s.now += dt
		s.report.Events++

		// Retire completed flows. A fed flow only completes once its inputs
		// are done, and an input may finish in the same sweep, so sweep to a
		// fixpoint.
		for {
			finished := false
			compact = active[:0]
			for _, id := range active {
				if retirable(id) {
					finish(id)
					finished = true
				} else {
					compact = append(compact, id)
				}
			}
			active = compact
			if !finished {
				break
			}
		}

		guard++
		// Recomputed each event: timers may have grown the flow population.
		maxEvents := 100*len(s.flows) + 1000
		if guard > maxEvents {
			panic(fmt.Sprintf("simnet: event budget exceeded (%d events > 100×%d flows + 1000; likely a dependency livelock) — %s",
				guard, len(s.flows), s.stuckReport(active, pending, dt)))
		}
	}
	s.report.Duration = s.now
	return s.report
}

// producedAll reports whether all bits of the flow are (or will trivially
// be) available to send, i.e. every input has completed.
func (f *flow) producedAll() bool {
	return len(f.spec.Inputs) == 0 || f.inputsDone == len(f.spec.Inputs)
}

// productionRate returns the rate at which upstream inputs are currently
// making bits available to a fed flow.
func (s *Sim) productionRate(f *flow) float64 {
	rate := 0.0
	for _, in := range f.spec.Inputs {
		rate += s.flows[in].rate
	}
	return rate * f.ratio
}

// stuckReport renders the simulation state for the stall and event-budget
// panics: sim time, event and population counts, and the flow closest to
// completion (the "smallest stuck flow" — if the sim is deadlocked or
// livelocked, this is the flow whose non-progress explains it), plus a few
// further active flows for context.
func (s *Sim) stuckReport(active, pending []FlowID, dt float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%g dt=%g events=%d active=%d pending=%d",
		s.now, dt, s.report.Events, len(active), len(pending))

	describe := func(id FlowID) string {
		f := &s.flows[id]
		return fmt.Sprintf("[flow %d bits=%g sent=%.6g produced=%.6g rate=%g cap=%g prod_rate=%g inputs=%d/%d start=%g]",
			id, f.spec.Bits, f.sent, f.produced, f.rate, f.cap,
			s.productionRate(f), f.inputsDone, len(f.spec.Inputs), f.spec.Start)
	}

	// Smallest remaining payload among active flows: the next flow that
	// *should* finish. A zero rate plus a finite production rate here points
	// at the dependency edge that is wedged.
	smallest := FlowID(-1)
	rem := math.Inf(1)
	for _, id := range active {
		f := &s.flows[id]
		if r := f.spec.Bits - f.sent; r < rem {
			rem, smallest = r, id
		}
	}
	if smallest >= 0 {
		fmt.Fprintf(&sb, "\n  smallest stuck flow (%.6g bits left): %s", rem, describe(smallest))
	}
	shown := 0
	for _, id := range active {
		if id == smallest {
			continue
		}
		if shown >= 4 {
			fmt.Fprintf(&sb, "\n  … %d more active flows", len(active)-1-shown)
			break
		}
		fmt.Fprintf(&sb, "\n  active: %s", describe(id))
		shown++
	}
	if len(pending) > 0 {
		earliest := pending[0]
		for _, id := range pending {
			if s.flows[id].spec.Start < s.flows[earliest].spec.Start {
				earliest = id
			}
		}
		fmt.Fprintf(&sb, "\n  earliest pending: %s", describe(earliest))
	}
	return sb.String()
}
