package simnet

import (
	"testing"
)

// TestAtTimerInjectsFlow injects a flow mid-run: a timer at t=5 adds a
// second flow onto an otherwise private link; the first flow's tail and
// the injected flow then share it.
func TestAtTimerInjectsFlow(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	a := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	var b FlowID
	s.At(5, func() {
		b = s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 500, Start: s.Now()})
	})
	s.Run()
	// a: 500 bits alone by t=5, then 500 left at share 50 → t=15.
	approx(t, s.FlowEnd(a), 15, 1e-6, "pre-existing flow slowed by injection")
	// b: 250 bits at share 50 by t=10 (a still running), then... a has
	// 250 left at t=10? No: both have 250 left at t=10, both finish t=15.
	approx(t, s.FlowEnd(b), 15, 1e-6, "injected flow")
	approx(t, s.LinkBits(l), 1500, 1e-6, "link carried both flows")
}

// TestTruncateActiveFlow stops a flow mid-transfer: it completes at the
// truncation time having sent exactly what the fluid model gave it, and
// the remaining flow inherits the freed capacity.
func TestTruncateActiveFlow(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	a := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	b := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	s.At(4, func() { s.Truncate(a) })
	s.Run()
	approx(t, s.FlowEnd(a), 4, 1e-6, "truncated flow ends at the timer")
	approx(t, s.FlowSent(a), 200, 1e-6, "truncated flow kept its fair-share bits")
	if !s.FlowTruncated(a) || !s.FlowDone(a) {
		t.Fatalf("truncated flow must be done and flagged")
	}
	// b: 200 bits by t=4 at share 50, then full link: 800/100 = 8s more.
	approx(t, s.FlowEnd(b), 12, 1e-6, "survivor inherits freed capacity")
}

// TestTruncatePendingFlow cancels a flow before it starts: it completes
// at zero size and never contends.
func TestTruncatePendingFlow(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	a := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	late := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000, Start: 100})
	s.At(2, func() { s.Truncate(late) })
	s.Run()
	approx(t, s.FlowEnd(a), 10, 1e-6, "survivor never contends")
	approx(t, s.FlowSent(late), 0, 1e-9, "cancelled flow sent nothing")
	if !s.FlowDone(late) {
		t.Fatalf("cancelled pending flow must be done")
	}
}

// TestTruncateSubtreeAndResend models a subtree migration: a streaming
// aggregation pair (worker→box, box→master) is truncated mid-job and a
// replacement pair is injected through a different box — the full-resend
// recovery of §3.1. The sim must complete with the replacement's timing.
func TestTruncateSubtreeAndResend(t *testing.T) {
	s := New()
	edge := s.AddResource(KindLink, 1000, 0)
	slowBox := s.AddResource(KindProc, 1000, 1)
	fastBox := s.AddResource(KindProc, 1000, 2)
	down := s.AddResource(KindLink, 1000, 3)

	in := s.AddFlow(FlowSpec{Resources: []ResourceID{edge, slowBox}, Bits: 8000})
	out := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 4000, Inputs: []FlowID{in}})

	var in2, out2 FlowID
	s.At(2, func() {
		// Migrate: stop the old subtree, resend in full through fastBox.
		s.Truncate(in)
		s.Truncate(out)
		in2 = s.AddFlow(FlowSpec{Resources: []ResourceID{edge, fastBox}, Bits: 8000, Start: s.Now()})
		out2 = s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 4000, Inputs: []FlowID{in2}, Start: s.Now()})
	})
	st := s.Run()
	approx(t, s.FlowEnd(in), 2, 1e-6, "old input stops at migration")
	approx(t, s.FlowEnd(out), 2, 1e-6, "old output stops at migration")
	// The resend is a fresh 8000-bit pipelined pair starting at t=2.
	approx(t, s.FlowEnd(in2), 10, 1e-6, "resent input")
	approx(t, s.FlowEnd(out2), 10, 1e-6, "resent output pipelines with it")
	if st.Duration < 10-1e-6 {
		t.Fatalf("run ended early: %g", st.Duration)
	}
}

// TestResourceActiveFlows samples mid-run load through a timer — the
// telemetry the dynamic-tree strategy feeds its congestion tracker.
func TestResourceActiveFlows(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 100})
	samples := make(map[float64]int)
	for _, at := range []float64{1, 10, 25} {
		at := at
		s.At(at, func() { samples[at] = s.ResourceActiveFlows(l) })
	}
	s.Run()
	// t=1: all three active. The 100-bit flow (share 33.3) ends at t=3;
	// the big ones end at t=(2100-100·3/100... ) — by t=10 two remain, by
	// t=25 none (total 2100 bits / 100 ≥ 21s).
	if samples[1] != 3 || samples[10] != 2 || samples[25] != 0 {
		t.Fatalf("active-flow samples = %v, want {1:3 10:2 25:0}", samples)
	}
}

// TestTimerOnlyTail keeps the run alive past the last flow: a timer
// after all flows complete still fires (and may inject more work).
func TestTimerOnlyTail(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 100})
	var fired bool
	var late FlowID
	s.At(50, func() {
		fired = true
		late = s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 100, Start: s.Now()})
	})
	s.Run()
	if !fired {
		t.Fatal("tail timer never fired")
	}
	approx(t, s.FlowEnd(late), 51, 1e-6, "flow injected by tail timer")
}

// TestDynamicOracleEquivalence runs a mid-run-injection + truncation
// scenario in incremental and FullRecompute modes: flow timings, link
// counters, and event counts must agree exactly, extending the
// incremental-allocator equivalence argument to dynamic interventions.
func TestDynamicOracleEquivalence(t *testing.T) {
	build := func(full bool) (*Sim, RunStats) {
		s := New()
		s.FullRecompute = full
		edge := s.AddResource(KindLink, 1000, 0)
		box := s.AddResource(KindProc, 800, 1)
		box2 := s.AddResource(KindProc, 800, 2)
		down := s.AddResource(KindLink, 500, 3)
		var flows []FlowID
		for w := 0; w < 4; w++ {
			flows = append(flows, s.AddFlow(FlowSpec{
				Resources: []ResourceID{edge, box}, Bits: 4000,
			}))
		}
		fed := s.AddFlow(FlowSpec{
			Resources: []ResourceID{down}, Bits: 4000, Inputs: flows,
		})
		// Background churn: burners arrive on the box at t=1, leave at t=3.
		var burners []FlowID
		s.At(1, func() {
			for k := 0; k < 3; k++ {
				burners = append(burners, s.AddFlow(FlowSpec{
					Resources: []ResourceID{box}, Bits: 1e9, Start: s.Now(),
				}))
			}
		})
		s.At(3, func() {
			for _, b := range burners {
				s.Truncate(b)
			}
		})
		// Migration at t=4: move worker 0's stream (and the fed flow) to
		// box2 with a full resend.
		s.At(4, func() {
			for _, f := range flows {
				s.Truncate(f)
			}
			s.Truncate(fed)
			var nf []FlowID
			for w := 0; w < 4; w++ {
				nf = append(nf, s.AddFlow(FlowSpec{
					Resources: []ResourceID{edge, box2}, Bits: 4000, Start: s.Now(),
				}))
			}
			s.AddFlow(FlowSpec{
				Resources: []ResourceID{down}, Bits: 4000, Inputs: nf, Start: s.Now(),
			})
		})
		st := s.Run()
		return s, st
	}
	inc, incStats := build(false)
	full, fullStats := build(true)
	if inc.NumFlows() != full.NumFlows() {
		t.Fatalf("flow counts diverge: %d vs %d", inc.NumFlows(), full.NumFlows())
	}
	for i := 0; i < inc.NumFlows(); i++ {
		id := FlowID(i)
		if inc.FlowEnd(id) != full.FlowEnd(id) {
			t.Errorf("flow %d end: incremental %g, oracle %g", i, inc.FlowEnd(id), full.FlowEnd(id))
		}
		if inc.FlowSent(id) != full.FlowSent(id) {
			t.Errorf("flow %d sent: incremental %g, oracle %g", i, inc.FlowSent(id), full.FlowSent(id))
		}
	}
	if incStats.Events != fullStats.Events {
		t.Errorf("event counts diverge: %d vs %d", incStats.Events, fullStats.Events)
	}
	if incStats.Duration != fullStats.Duration {
		t.Errorf("durations diverge: %g vs %g", incStats.Duration, fullStats.Duration)
	}
}
