package simnet

import (
	"math"
	"sort"
)

// localRate is the transfer rate assigned to flows that cross no network
// resource (source and destination on the same server); it stands in for
// loopback/memory bandwidth and just needs to dwarf any link rate.
const localRate = 1e12

// bufEps is the buffer level (bits) below which a fed flow is considered
// production-limited rather than backlog-limited.
const bufEps = 1e-3

// maxCapIters bounds the fixed-point iteration between the max-min
// allocation and the production-rate caps of fed flows. The dependency
// graph is a tree of bounded depth (worker → ToR box → aggregation box →
// core box → master), so a handful of iterations reaches the fixed point.
const maxCapIters = 8

// allocate computes the max-min fair rate for every active flow, iterating
// to a fixed point with the streaming caps: a fed flow whose buffer is empty
// can send no faster than its inputs produce (§3.2.1 back-pressure).
func (s *Sim) allocate(active []FlowID) {
	for _, id := range active {
		s.flows[id].cap = math.Inf(1)
	}
	fill := s.waterfill
	if s.NaiveAllocation {
		fill = s.naiveFill
	}
	for iter := 0; iter < maxCapIters; iter++ {
		fill(active)
		s.report.Allocations++
		changed := false
		for _, id := range active {
			f := &s.flows[id]
			c := math.Inf(1)
			if len(f.spec.Inputs) > 0 && !f.producedAll() && f.produced-f.sent <= bufEps {
				c = s.productionRate(f)
			}
			if !capsEqual(c, f.cap) {
				changed = true
			}
			f.cap = c
		}
		if !changed {
			break
		}
	}
}

func capsEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= eps || diff <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// shareEntry is a lazy min-heap entry: the fair share of a resource at the
// time it was pushed. Shares only grow as flows freeze (a flow freezes at a
// rate no higher than every share, so removing it cannot lower any share),
// which makes stale entries safe: on pop, the entry is re-validated against
// the current share and re-pushed if it grew.
type shareEntry struct {
	share float64
	res   ResourceID
}

type shareHeap []shareEntry

func (h *shareHeap) push(e shareEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].share <= (*h)[i].share {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *shareHeap) pop() shareEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && old[l].share < old[smallest].share {
			smallest = l
		}
		if r < n && old[r].share < old[smallest].share {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}

// naiveFill assigns every active flow the minimum equal share over its
// resources, capped by the flow's own cap. Unlike max-min fairness it never
// redistributes capacity left behind by flows bottlenecked elsewhere.
func (s *Sim) naiveFill(active []FlowID) {
	s.stamp++
	for _, id := range active {
		f := &s.flows[id]
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if res.stamp != s.stamp {
				res.stamp = s.stamp
				res.count = 0
			}
			res.count++
		}
	}
	for _, id := range active {
		f := &s.flows[id]
		rate := math.Min(f.cap, localRate)
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if share := res.capacity / float64(res.count); share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 0
		}
		f.rate = rate
	}
}

// waterfill runs progressive filling: the rate of every unfrozen flow rises
// uniformly until either a resource saturates (its unfrozen flows freeze at
// the fair share) or a flow reaches its cap (it freezes at the cap). This is
// the standard max-min fair allocation with per-flow caps that models TCP's
// steady-state sharing (§4.1: "implements TCP max-min flow fairness").
func (s *Sim) waterfill(active []FlowID) {
	// Collect the resources touched by active flows.
	s.stamp++
	touched := s.touchedScratch[:0]
	for _, id := range active {
		f := &s.flows[id]
		f.frozen = false
		f.rate = 0
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if res.stamp != s.stamp {
				res.stamp = s.stamp
				res.avail = res.capacity
				res.count = 0
				touched = append(touched, r)
			}
			res.count++
		}
	}
	s.touchedScratch = touched

	unfrozen := len(active)

	freeze := func(id FlowID, rate float64) {
		f := &s.flows[id]
		f.frozen = true
		f.rate = rate
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			res.avail -= rate
			if res.avail < 0 {
				res.avail = 0
			}
			res.count--
		}
		unfrozen--
	}

	// Flows with no network resources are only production/cap limited.
	// Flows with zero cap cannot send this round.
	capped := s.cappedScratch[:0]
	for _, id := range active {
		f := &s.flows[id]
		if f.cap <= eps {
			freeze(id, 0)
			continue
		}
		if len(f.spec.Resources) == 0 {
			freeze(id, math.Min(f.cap, localRate))
			continue
		}
		if !math.IsInf(f.cap, 1) {
			capped = append(capped, id)
		}
	}
	s.cappedScratch = capped
	sort.Slice(capped, func(i, j int) bool {
		return s.flows[capped[i]].cap < s.flows[capped[j]].cap
	})
	nextCap := 0

	// Seed the share heap with every touched resource's initial fair share.
	h := s.heapScratch[:0]
	heap := (*shareHeap)(&h)
	for _, r := range touched {
		res := &s.resources[r]
		if res.count > 0 {
			heap.push(shareEntry{share: res.avail / float64(res.count), res: r})
		}
	}

	for unfrozen > 0 {
		// Pop until a heap entry reflects the current share of its resource.
		smin := math.Inf(1)
		var rmin ResourceID = -1
		for len(*heap) > 0 {
			e := (*heap)[0]
			res := &s.resources[e.res]
			if res.count <= 0 {
				heap.pop()
				continue
			}
			cur := res.avail / float64(res.count)
			if cur > e.share*(1+1e-12)+eps {
				// Stale (share grew since push): refresh.
				heap.pop()
				heap.push(shareEntry{share: cur, res: e.res})
				continue
			}
			smin = cur
			rmin = e.res
			break
		}

		// Next binding flow cap.
		for nextCap < len(capped) && s.flows[capped[nextCap]].frozen {
			nextCap++
		}
		capmin := math.Inf(1)
		if nextCap < len(capped) {
			capmin = s.flows[capped[nextCap]].cap
		}

		switch {
		case capmin <= smin:
			// Caps bind first: freeze every unfrozen flow whose cap has been
			// reached at that cap.
			for nextCap < len(capped) && s.flows[capped[nextCap]].cap <= smin+eps {
				id := capped[nextCap]
				if !s.flows[id].frozen {
					freeze(id, s.flows[id].cap)
				}
				nextCap++
			}
		case rmin >= 0:
			// A resource saturates: freeze its unfrozen flows at the share.
			heap.pop()
			res := &s.resources[rmin]
			for _, id := range res.active {
				if !s.flows[id].frozen {
					freeze(id, smin)
				}
			}
		default:
			// No binding resource and no finite cap: remaining flows are
			// unconstrained (should not happen — every network flow crosses
			// at least one resource). Freeze at local rate to make progress.
			for _, id := range active {
				if !s.flows[id].frozen {
					freeze(id, localRate)
				}
			}
		}
	}
	s.heapScratch = h[:0]
}
