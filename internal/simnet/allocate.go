package simnet

import (
	"math"
	"slices"
)

// localRate is the transfer rate assigned to flows that cross no network
// resource (source and destination on the same server); it stands in for
// loopback/memory bandwidth and just needs to dwarf any link rate.
const localRate = 1e12

// bufEps is the buffer level (bits) below which a fed flow is considered
// production-limited rather than backlog-limited.
const bufEps = 1e-3

// maxCapIters bounds the fixed-point iteration between the max-min
// allocation and the production-rate caps of fed flows. The dependency
// graph is a tree of bounded depth (worker → ToR box → aggregation box →
// core box → master), so a handful of iterations reaches the fixed point.
const maxCapIters = 8

// allocate recomputes max-min fair rates after an event. Only the connected
// components of the flow-coupling graph — flows joined by a shared resource
// or by a streaming-dependency (input/consumer) edge — that contain a dirty
// flow or resource are re-waterfilled; rates everywhere else are carried
// over verbatim. Carrying is exact, not approximate: a clean component's
// allocation inputs (membership, capacities, ratios, and the
// production-limited flags, whose flips mark flows dirty) are unchanged
// since its last recomputation, and the per-component waterfill is a
// deterministic function of those inputs, so recomputing it would
// reproduce the carried rates bit for bit. FullRecompute mode does exactly
// that recomputation for every component on every event and is the
// equivalence oracle for this argument.
func (s *Sim) allocate(active []FlowID) {
	if s.NaiveAllocation {
		s.naiveAllocate(active)
		s.clearDirty()
		return
	}
	s.visitStamp++
	stamp := s.visitStamp
	reallocated := 0
	for _, id := range s.dirtyFlows {
		f := &s.flows[id]
		if f.state == stateActive && f.visit != stamp {
			reallocated += s.reallocComponent(id, stamp, true)
		}
	}
	for _, r := range s.dirtyRes {
		res := &s.resources[r]
		if res.visit == stamp {
			continue
		}
		for _, id := range res.active {
			if s.flows[id].visit != stamp {
				reallocated += s.reallocComponent(id, stamp, true)
			}
		}
	}
	if s.FullRecompute {
		// Oracle mode: rebuild the clean components too. They get a single
		// waterfill (no cap iteration): the exit invariant of
		// waterfillComponent guarantees the stored rates are exactly
		// waterfill(stored caps), so this rebuild is a bitwise no-op —
		// unless a dirty-marking rule is missing and the component's
		// allocation inputs changed without a mark, in which case the
		// rebuild produces different rates and the equivalence suite fails.
		// Dirty components must run through the identical warm-started cap
		// iteration in both modes: giving clean components the full
		// iteration here would advance unconverged fixed points further
		// than the incremental mode's carry and break equivalence for the
		// wrong reason.
		for _, id := range active {
			if s.flows[id].visit != stamp {
				reallocated += s.reallocComponent(id, stamp, false)
			}
		}
	}
	s.report.Alloc.FlowsReallocated += reallocated
	s.report.Alloc.FlowsCarried += len(active) - reallocated
	s.clearDirty()
}

// markFlowDirty queues an active flow for reallocation at the next event.
func (s *Sim) markFlowDirty(id FlowID) {
	f := &s.flows[id]
	if f.inDirty {
		return
	}
	f.inDirty = true
	s.dirtyFlows = append(s.dirtyFlows, id)
}

// markResDirty queues a resource: every flow still crossing it must be
// reallocated (used when a flow leaves the resource).
func (s *Sim) markResDirty(r ResourceID) {
	res := &s.resources[r]
	if res.inDirty {
		return
	}
	res.inDirty = true
	s.dirtyRes = append(s.dirtyRes, r)
}

func (s *Sim) clearDirty() {
	for _, id := range s.dirtyFlows {
		s.flows[id].inDirty = false
	}
	s.dirtyFlows = s.dirtyFlows[:0]
	for _, r := range s.dirtyRes {
		s.resources[r].inDirty = false
	}
	s.dirtyRes = s.dirtyRes[:0]
}

// reallocComponent collects the connected component of active flows
// containing seed (breadth-first over shared resources and streaming
// dependency edges, both directions), re-waterfills it, and returns its
// size. Members are sorted by FlowID before allocation so the arithmetic
// order — and therefore every float64 — is independent of how the
// component was discovered. dirty selects the full cap fixed-point
// iteration; a clean rebuild (FullRecompute oracle mode only) runs a
// single waterfill against the stored caps.
func (s *Sim) reallocComponent(seed FlowID, stamp int, dirty bool) int {
	comp := s.compScratch[:0]
	s.flows[seed].visit = stamp
	comp = append(comp, seed)
	for head := 0; head < len(comp); head++ {
		id := comp[head]
		f := &s.flows[id]
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if res.visit == stamp {
				continue
			}
			res.visit = stamp
			for _, a := range res.active {
				af := &s.flows[a]
				if af.visit != stamp {
					af.visit = stamp
					comp = append(comp, a)
				}
			}
		}
		for _, in := range f.spec.Inputs {
			inf := &s.flows[in]
			if inf.state == stateActive && inf.visit != stamp {
				inf.visit = stamp
				comp = append(comp, in)
			}
		}
		for _, c := range s.consumers[id] {
			cf := &s.flows[c]
			if cf.state == stateActive && cf.visit != stamp {
				cf.visit = stamp
				comp = append(comp, c)
			}
		}
	}
	slices.Sort(comp)
	if dirty {
		s.waterfillComponent(comp)
	} else {
		s.waterfill(comp)
		s.report.Alloc.Waterfills++
	}
	n := len(comp)
	s.report.Alloc.Components++
	if n > s.report.Alloc.MaxComponent {
		s.report.Alloc.MaxComponent = n
	}
	s.compScratch = comp[:0]
	return n
}

// waterfillComponent computes the max-min fair rates of one coupling
// component, iterating to a fixed point with the streaming caps: a fed flow
// whose buffer is empty can send no faster than its inputs produce (§3.2.1
// back-pressure). Caps depend only on rates inside the component (every
// active input and consumer of a member is a member), so the fixed point is
// component-local.
//
// The loop warm-starts from the caps left by the component's previous
// recomputation (activation initialises a flow's cap to +Inf): between
// events the fixed point moves only as far as the event perturbed it, so a
// handful of iterations re-converges where a cold start from +Inf replays
// the whole transient every time.
//
// Exit invariant (load-bearing for the FullRecompute equivalence oracle):
// on every exit path the stored rates are exactly waterfill(stored caps) —
// when fresh caps agree with the stored ones within capsEqual tolerance the
// loop breaks WITHOUT storing them, and when the iteration budget runs out
// it breaks without the final cap update. Recomputing an untouched
// component is therefore a bitwise no-op: the first waterfill reproduces
// the stored rates, the fresh caps land inside the tolerance band again,
// and the loop exits with every float unchanged. That is why carrying a
// clean component's rates verbatim is exact, not approximate.
func (s *Sim) waterfillComponent(comp []FlowID) {
	touched := s.collectTouched(comp)

	// Fed members in feed-DAG depth order (FlowID-stable within a depth, so
	// the order is input-deterministic): the cap update pass walks them
	// shallow-to-deep, feeding each flow's estimated post-update rate into
	// the caps of its consumers. Without this a cap change crawls one tree
	// level per waterfill — the update pass only sees rates the last
	// waterfill produced — and a d-level aggregation tree needs d full
	// waterfills to re-converge after every event.
	fed := s.fedScratch[:0]
	for _, id := range comp {
		if len(s.flows[id].spec.Inputs) > 0 {
			fed = append(fed, id)
		}
	}
	slices.SortStableFunc(fed, func(a, b FlowID) int {
		return int(s.flows[a].depth - s.flows[b].depth)
	})
	s.fedScratch = fed

	for iter := 0; ; iter++ {
		s.waterfillTouched(comp, touched)
		s.report.Alloc.Waterfills++
		if iter == maxCapIters-1 {
			s.report.Alloc.Unconverged++
			return
		}
		for _, id := range comp {
			f := &s.flows[id]
			f.estRate = f.rate
		}
		changed := false
		for _, id := range fed {
			f := &s.flows[id]
			c := math.Inf(1)
			limited := false
			if !f.producedAll() && f.produced-f.sent <= bufEps {
				c = s.estProductionRate(f)
				limited = true
			}
			f.newCap, f.newLimited = c, limited
			if !capsEqual(c, f.cap) {
				changed = true
			}
			// Estimate this flow's rate under the new cap for its consumers
			// deeper in the DAG. A lowered cap binds immediately; a flow that
			// was riding its old cap is assumed to follow the cap upward (the
			// next waterfill corrects it if a network bottleneck binds first).
			// Estimates only steer the fixed-point trajectory: the exit check
			// and the stored caps go through the same waterfill-and-compare
			// cycle either way.
			est := f.rate
			if c < est {
				est = c
			} else if !math.IsInf(c, 1) && capsEqual(f.rate, f.cap) {
				est = c
			}
			f.estRate = est
		}
		if !changed {
			return
		}
		for _, id := range fed {
			f := &s.flows[id]
			f.cap = f.newCap
			f.capLimited = f.newLimited
		}
	}
}

// estProductionRate is productionRate over the cap-propagation rate
// estimates. Active inputs are always members of the component being
// recomputed (the coupling BFS follows input edges), so their estRate was
// initialised this pass; inactive flows keep estRate == rate (zero).
func (s *Sim) estProductionRate(f *flow) float64 {
	rate := 0.0
	for _, in := range f.spec.Inputs {
		rate += s.flows[in].estRate
	}
	return rate * f.ratio
}

// naiveAllocate is the seed ablation mode: a global naive equal-share fill
// with the cap fixed point over the whole active set, recomputed from
// scratch on every event.
func (s *Sim) naiveAllocate(active []FlowID) {
	for _, id := range active {
		s.flows[id].cap = math.Inf(1)
	}
	for iter := 0; iter < maxCapIters; iter++ {
		s.naiveFill(active)
		s.report.Alloc.Waterfills++
		changed := false
		for _, id := range active {
			f := &s.flows[id]
			c := math.Inf(1)
			if len(f.spec.Inputs) > 0 && !f.producedAll() && f.produced-f.sent <= bufEps {
				c = s.productionRate(f)
			}
			if !capsEqual(c, f.cap) {
				changed = true
			}
			f.cap = c
		}
		if !changed {
			break
		}
	}
}

func capsEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= eps || diff <= 1e-6*math.Max(math.Abs(a), math.Abs(b))
}

// shareEntry is a share-heap slot: a resource and a stale-but-lower-bound
// snapshot of its fair share avail/count. Progressive filling only ever
// raises a resource's share (a flow freezes at a rate no higher than every
// current share, so removing it cannot lower any share), so freezes skip
// the heap entirely and a stale key is repaired lazily — one in-place
// sift-down when its resource surfaces at the root. Each resource appears
// exactly once (inserted at build, never pushed again) and every operation
// happens at the root, so no position index is needed and the keys stay in
// one contiguous array the sift comparisons never leave.
type shareEntry struct {
	share float64
	res   ResourceID
}

// siftDown restores min-heap order below the root of h.
func siftDown(h []shareEntry) {
	n := len(h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].share < h[smallest].share {
			smallest = l
		}
		if r < n && h[r].share < h[smallest].share {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// heapify establishes min-heap order over h in O(len(h)).
func heapify(h []shareEntry) {
	n := len(h)
	for root := n/2 - 1; root >= 0; root-- {
		i := root
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < n && h[l].share < h[smallest].share {
				smallest = l
			}
			if r < n && h[r].share < h[smallest].share {
				smallest = r
			}
			if smallest == i {
				break
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
	}
}

// naiveFill assigns every active flow the minimum equal share over its
// resources, capped by the flow's own cap. Unlike max-min fairness it never
// redistributes capacity left behind by flows bottlenecked elsewhere.
func (s *Sim) naiveFill(active []FlowID) {
	s.stamp++
	for _, id := range active {
		f := &s.flows[id]
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if res.stamp != s.stamp {
				res.stamp = s.stamp
				res.count = 0
			}
			res.count++
		}
	}
	for _, id := range active {
		f := &s.flows[id]
		rate := math.Min(f.cap, localRate)
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if share := res.capacity / float64(res.count); share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 0
		}
		f.rate = rate
	}
}

// collectTouched gathers the distinct resources crossed by flows and caches
// each one's member-flow count in count0, so the cap fixed-point loop pays
// the flow-path walk once per component instead of once per iteration.
func (s *Sim) collectTouched(flows []FlowID) []ResourceID {
	s.stamp++
	touched := s.touchedScratch[:0]
	for _, id := range flows {
		f := &s.flows[id]
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			if res.stamp != s.stamp {
				res.stamp = s.stamp
				res.count0 = 0
				touched = append(touched, r)
			}
			res.count0++
		}
	}
	s.touchedScratch = touched
	return touched
}

// waterfill runs one progressive-filling pass over a standalone flow set.
//
//netagg:hotpath
func (s *Sim) waterfill(flows []FlowID) {
	s.waterfillTouched(flows, s.collectTouched(flows))
}

// waterfillTouched runs progressive filling over one set of flows: the rate
// of every unfrozen flow rises uniformly until either a resource saturates
// (its unfrozen flows freeze at the fair share) or a flow reaches its cap
// (it freezes at the cap). This is the standard max-min fair allocation
// with per-flow caps that models TCP's steady-state sharing (§4.1:
// "implements TCP max-min flow fairness"). The caller guarantees that
// every active flow sharing a resource with a member is itself a member and
// that touched is collectTouched(flows).
//
//netagg:hotpath
func (s *Sim) waterfillTouched(flows []FlowID, touched []ResourceID) {
	for _, r := range touched {
		res := &s.resources[r]
		res.avail = res.capacity
		res.count = res.count0
	}
	for _, id := range flows {
		f := &s.flows[id]
		f.frozen = false
		f.rate = 0
	}

	unfrozen := len(flows)

	deadInHeap := 0

	freeze := func(id FlowID, rate float64) {
			f := &s.flows[id]
		f.frozen = true
		f.rate = rate
		for _, r := range f.spec.Resources {
			res := &s.resources[r]
			res.avail -= rate
			if res.avail < 0 {
				res.avail = 0
			}
			res.count--
			if res.count == 0 {
				deadInHeap++
			}
		}
		unfrozen--
	}

	// Flows with no network resources are only production/cap limited.
	// Flows with zero cap cannot send this round.
	capped := s.cappedScratch[:0]
	for _, id := range flows {
		f := &s.flows[id]
		if f.cap <= eps {
			freeze(id, 0)
			continue
		}
		if len(f.spec.Resources) == 0 {
			freeze(id, math.Min(f.cap, localRate))
			continue
		}
		if !math.IsInf(f.cap, 1) {
			capped = append(capped, id)
		}
	}
	s.cappedScratch = capped
	slices.SortFunc(capped, func(a, b FlowID) int {
		ca, cb := s.flows[a].cap, s.flows[b].cap
		switch {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		default:
			// Equal caps: order by FlowID so the freeze order — and with it
			// every downstream float — is input-deterministic.
			return int(a - b)
		}
	})
	nextCap := 0

	// Seed the share heap with every touched resource that still has
	// unfrozen flows (the zero-cap and resource-free freezes above already
	// updated counts, but nothing is heaped yet, so shares are fresh here).
	h := s.heapScratch[:0]
	for _, r := range touched {
		res := &s.resources[r]
		if res.count > 0 {
			h = append(h, shareEntry{share: res.avail / float64(res.count), res: r})
		}
	}
	heapify(h)
	// Freezes before the seed above happened outside the heap; only deaths
	// from here on refer to heaped entries.
	deadInHeap = 0

	for unfrozen > 0 {
		// Most resources eventually saturate, and sifting each corpse out of
		// the root individually costs a full-depth sift. Once a quarter of
		// the heap is dead, compact it wholesale and re-heapify: O(1)
		// amortised per dead entry.
		if deadInHeap*4 >= len(h) && len(h) >= 16 {
			kept := h[:0]
			for _, e := range h {
				if s.resources[e.res].count > 0 {
					kept = append(kept, e)
				}
			}
			h = kept
			heapify(h)
			deadInHeap = 0
		}

		// Surface the resource with the smallest current share: every stored
		// key is a lower bound, so the root is the true minimum once its own
		// key is fresh.
		smin := math.Inf(1)
		var rmin ResourceID = -1
		for len(h) > 0 {
			e := h[0]
			res := &s.resources[e.res]
			if res.count <= 0 {
				// Saturated earlier: drop the dead entry.
				n := len(h) - 1
				h[0] = h[n]
				h = h[:n]
				siftDown(h)
				continue
			}
			cur := res.avail / float64(res.count)
			if cur > e.share*(1+1e-12)+eps {
				// Stale (share grew since last repair): refresh in place.
				h[0].share = cur
				siftDown(h)
				continue
			}
			smin = cur
			rmin = e.res
			break
		}

		// Next binding flow cap.
		for nextCap < len(capped) && s.flows[capped[nextCap]].frozen {
			nextCap++
		}
		capmin := math.Inf(1)
		if nextCap < len(capped) {
			capmin = s.flows[capped[nextCap]].cap
		}

		switch {
		case capmin <= smin:
			// Caps bind first: freeze every unfrozen flow whose cap has been
			// reached at that cap.
			for nextCap < len(capped) && s.flows[capped[nextCap]].cap <= smin+eps {
				id := capped[nextCap]
				if !s.flows[id].frozen {
					freeze(id, s.flows[id].cap)
				}
				nextCap++
			}
		case rmin >= 0:
			// A resource saturates: freeze its unfrozen flows at the share.
			// The last freeze drops its count to zero and unheaps it.
			res := &s.resources[rmin]
			for _, id := range res.active {
				if !s.flows[id].frozen {
					freeze(id, smin)
				}
			}
		default:
			// No binding resource and no finite cap: remaining flows are
			// unconstrained (should not happen — every network flow crosses
			// at least one resource). Freeze at local rate to make progress.
			for _, id := range flows {
				if !s.flows[id].frozen {
					freeze(id, localRate)
				}
			}
		}
	}
	s.heapScratch = h[:0]
}
