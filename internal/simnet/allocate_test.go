package simnet

import (
	"math"
	"testing"
)

// activateAll puts every flow in the active state the way Run does, so the
// allocator can be exercised directly.
func activateAll(s *Sim) []FlowID {
	active := make([]FlowID, 0, len(s.flows))
	for i := range s.flows {
		f := &s.flows[i]
		f.state = stateActive
		f.produced = f.spec.StaticBits
		f.cap = math.Inf(1)
		active = append(active, FlowID(i))
		f.resPos = make([]int32, len(f.spec.Resources))
		for j, r := range f.spec.Resources {
			res := &s.resources[r]
			f.resPos[j] = int32(len(res.active))
			res.active = append(res.active, FlowID(i))
			res.slots = append(res.slots, int32(j))
		}
		s.markFlowDirty(FlowID(i))
	}
	return active
}

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s: got %g, want %g", msg, got, want)
	}
}

func TestWaterfillSingleFlow(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	f := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	active := activateAll(s)
	s.allocate(active)
	approx(t, s.flows[f].rate, 100, 1e-9, "single flow rate")
}

func TestWaterfillEqualShare(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 90, 0)
	var ids []FlowID
	for i := 0; i < 3; i++ {
		ids = append(ids, s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000}))
	}
	active := activateAll(s)
	s.allocate(active)
	for _, id := range ids {
		approx(t, s.flows[id].rate, 30, 1e-9, "equal share")
	}
}

// Classic max-min example: A on link1, B on link1+link2, C on link2,
// capacities 1 and 2. Max-min: A=B=0.5 (link1 bottleneck), C=1.5.
func TestWaterfillMaxMinClassic(t *testing.T) {
	s := New()
	l1 := s.AddResource(KindLink, 1, 0)
	l2 := s.AddResource(KindLink, 2, 1)
	a := s.AddFlow(FlowSpec{Resources: []ResourceID{l1}, Bits: 1})
	b := s.AddFlow(FlowSpec{Resources: []ResourceID{l1, l2}, Bits: 1})
	c := s.AddFlow(FlowSpec{Resources: []ResourceID{l2}, Bits: 1})
	active := activateAll(s)
	s.allocate(active)
	approx(t, s.flows[a].rate, 0.5, 1e-9, "flow A")
	approx(t, s.flows[b].rate, 0.5, 1e-9, "flow B")
	approx(t, s.flows[c].rate, 1.5, 1e-9, "flow C")
}

// A production-limited downstream flow must be capped at α times its inputs'
// aggregate rate, and the freed bandwidth must go to competitors.
func TestWaterfillProductionCap(t *testing.T) {
	s := New()
	up := s.AddResource(KindLink, 10, 0)
	down := s.AddResource(KindLink, 10, 1)
	in := s.AddFlow(FlowSpec{Resources: []ResourceID{up}, Bits: 100})
	// Fed flow: α = 0.2, so cap = 0.2 × 10 = 2 on the downstream link.
	fed := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 20, Inputs: []FlowID{in}})
	other := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 100})
	active := activateAll(s)
	s.allocate(active)
	approx(t, s.flows[in].rate, 10, 1e-9, "input rate")
	approx(t, s.flows[fed].rate, 2, 1e-6, "fed flow capped at production")
	approx(t, s.flows[other].rate, 8, 1e-6, "competitor takes the remainder")
}

// A fed flow with buffered backlog is not production-limited.
func TestWaterfillBackloggedFedFlow(t *testing.T) {
	s := New()
	up := s.AddResource(KindLink, 1, 0)
	down := s.AddResource(KindLink, 10, 1)
	in := s.AddFlow(FlowSpec{Resources: []ResourceID{up}, Bits: 100})
	fed := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 20, Inputs: []FlowID{in}})
	active := activateAll(s)
	s.flows[fed].produced = 15 // backlog built up earlier
	s.allocate(active)
	approx(t, s.flows[fed].rate, 10, 1e-9, "backlogged fed flow uses full link")
}

func TestWaterfillZeroCapFrozen(t *testing.T) {
	s := New()
	up := s.AddResource(KindLink, 10, 0)
	down := s.AddResource(KindLink, 10, 1)
	// Input that has not started producing: starts later.
	in := s.AddFlow(FlowSpec{Resources: []ResourceID{up}, Bits: 100, Start: 5})
	fed := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 20, Inputs: []FlowID{in}})
	other := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 100})

	// Activate only fed and other (input still pending).
	for _, id := range []FlowID{fed, other} {
		f := &s.flows[id]
		f.state = stateActive
		f.cap = math.Inf(1)
		f.resPos = make([]int32, len(f.spec.Resources))
		for j, r := range f.spec.Resources {
			res := &s.resources[r]
			f.resPos[j] = int32(len(res.active))
			res.active = append(res.active, id)
			res.slots = append(res.slots, int32(j))
		}
		s.markFlowDirty(id)
	}
	s.allocate([]FlowID{fed, other})
	approx(t, s.flows[fed].rate, 0, 1e-9, "fed flow with idle input")
	approx(t, s.flows[other].rate, 10, 1e-9, "competitor gets everything")
}

func TestWaterfillLocalFlow(t *testing.T) {
	s := New()
	f := s.AddFlow(FlowSpec{Bits: 1000}) // no resources: same-server transfer
	active := activateAll(s)
	s.allocate(active)
	if s.flows[f].rate != localRate {
		t.Fatalf("local flow rate = %g, want %g", s.flows[f].rate, localRate)
	}
}
