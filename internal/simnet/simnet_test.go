package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"netagg/internal/stats"
)

func TestRunSingleFlow(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	f := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	s.Run()
	approx(t, s.FlowEnd(f), 10, 1e-9, "FCT = size/capacity")
	approx(t, s.LinkBits(l), 1000, 1e-9, "link carried all bits")
}

func TestRunTwoFlowsSerialise(t *testing.T) {
	// Two equal flows share a link: both finish at 2×(size/cap).
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	a := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	b := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	s.Run()
	approx(t, s.FlowEnd(a), 20, 1e-9, "flow A")
	approx(t, s.FlowEnd(b), 20, 1e-9, "flow B")
}

func TestRunUnequalFlows(t *testing.T) {
	// Sizes 100 and 300 on a 100-capacity link. Fair share 50 each: small
	// flow finishes at t=2 (sent 100). Then the big one gets the full link:
	// it has 300-100=200 left, finishing at 2+2=4.
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	small := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 100})
	big := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 300})
	s.Run()
	approx(t, s.FlowEnd(small), 2, 1e-9, "small flow")
	approx(t, s.FlowEnd(big), 4, 1e-9, "big flow")
}

func TestRunDelayedStart(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	f := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000, Start: 5})
	s.Run()
	approx(t, s.FlowStart(f), 5, 1e-9, "start honoured")
	approx(t, s.FlowEnd(f), 15, 1e-9, "end = start + size/cap")
	approx(t, s.FCT(f), 10, 1e-9, "FCT measured from start")
}

func TestRunZeroSizeFlow(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 100, 0)
	f := s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 0, Start: 3})
	s.Run()
	approx(t, s.FlowEnd(f), 3, 1e-9, "zero-size flow completes at start")
}

// Streaming aggregation: a worker sends 8000 bits over a 1000 bit/s edge
// link; the agg output (α = 0.5 → 4000 bits) streams concurrently at
// 0.5×1000 = 500 bit/s over an uncontended downstream link. Both finish at
// t=8: the pipeline hides the downstream transfer entirely.
func TestRunStreamingPipeline(t *testing.T) {
	s := New()
	up := s.AddResource(KindLink, 1000, 0)
	down := s.AddResource(KindLink, 1000, 1)
	in := s.AddFlow(FlowSpec{Resources: []ResourceID{up}, Bits: 8000})
	out := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 4000, Inputs: []FlowID{in}})
	s.Run()
	approx(t, s.FlowEnd(in), 8, 1e-6, "input flow")
	approx(t, s.FlowEnd(out), 8, 1e-6, "output flow finishes with input (pipelined)")
}

// The same scenario store-and-forward: the output only starts at t=8 and
// takes 4000/1000 = 4s more.
func TestRunStoreAndForward(t *testing.T) {
	s := New()
	s.StoreAndForward = true
	up := s.AddResource(KindLink, 1000, 0)
	down := s.AddResource(KindLink, 1000, 1)
	in := s.AddFlow(FlowSpec{Resources: []ResourceID{up}, Bits: 8000})
	out := s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: 4000, Inputs: []FlowID{in}})
	s.Run()
	approx(t, s.FlowEnd(in), 8, 1e-6, "input flow")
	approx(t, s.FlowEnd(out), 12, 1e-6, "output flow starts after input completes")
}

// Two workers feed one aggregation output through a shared box. The output
// size is α(s1+s2); its arrival rate is α times the sum of input rates.
func TestRunFanInAggregation(t *testing.T) {
	s := New()
	e1 := s.AddResource(KindLink, 1000, 0)
	e2 := s.AddResource(KindLink, 1000, 1)
	down := s.AddResource(KindLink, 1000, 2)
	in1 := s.AddFlow(FlowSpec{Resources: []ResourceID{e1}, Bits: 4000})
	in2 := s.AddFlow(FlowSpec{Resources: []ResourceID{e2}, Bits: 4000})
	out := s.AddFlow(FlowSpec{
		Resources: []ResourceID{down},
		Bits:      800, // α = 0.1
		Inputs:    []FlowID{in1, in2},
	})
	s.Run()
	approx(t, s.FlowEnd(in1), 4, 1e-6, "input 1")
	approx(t, s.FlowEnd(in2), 4, 1e-6, "input 2")
	// Production rate 0.1×2000 = 200 ≥ needed 800/4: finishes with inputs.
	approx(t, s.FlowEnd(out), 4, 1e-6, "aggregated output pipelined")
}

// An agg box processing-rate resource throttles the inputs crossing it.
func TestRunProcResourceThrottles(t *testing.T) {
	s := New()
	edge := s.AddResource(KindLink, 1000, 0)
	proc := s.AddResource(KindProc, 250, 1)
	f := s.AddFlow(FlowSpec{Resources: []ResourceID{edge, proc}, Bits: 1000})
	s.Run()
	approx(t, s.FlowEnd(f), 4, 1e-9, "processing rate is the bottleneck")
	// Proc resources do not count as link traffic.
	approx(t, s.LinkBits(proc), 0, 1e-9, "proc resource carries no link bits")
}

// StaticBits: a tree-internal worker sends its own partial result before any
// child input arrives.
func TestRunStaticPlusAggregated(t *testing.T) {
	s := New()
	childLink := s.AddResource(KindLink, 100, 0)
	outLink := s.AddResource(KindLink, 1000, 1)
	child := s.AddFlow(FlowSpec{Resources: []ResourceID{childLink}, Bits: 1000})
	// Own data 500 bits plus α=0.5 of the child's 1000 = 500: total 1000.
	out := s.AddFlow(FlowSpec{
		Resources:  []ResourceID{outLink},
		Bits:       1000,
		StaticBits: 500,
		Inputs:     []FlowID{child},
	})
	s.Run()
	approx(t, s.FlowEnd(child), 10, 1e-6, "child")
	// Static 500 drains quickly; then production-limited at 0.5×100 = 50.
	// The flow cannot finish before the child (needs its last bits), and the
	// production keeps pace, so it finishes with the child.
	approx(t, s.FlowEnd(out), 10, 1e-4, "parent finishes with child")
}

func TestRunChainOfBoxes(t *testing.T) {
	// worker → box1 → box2 → master, each hop its own link; α compounds via
	// explicit sizes (builder semantics: sizes given, ratios derived).
	s := New()
	l1 := s.AddResource(KindLink, 100, 0)
	l2 := s.AddResource(KindLink, 100, 1)
	l3 := s.AddResource(KindLink, 100, 2)
	w := s.AddFlow(FlowSpec{Resources: []ResourceID{l1}, Bits: 1000})
	h1 := s.AddFlow(FlowSpec{Resources: []ResourceID{l2}, Bits: 500, Inputs: []FlowID{w}})
	h2 := s.AddFlow(FlowSpec{Resources: []ResourceID{l3}, Bits: 500, Inputs: []FlowID{h1}})
	s.Run()
	approx(t, s.FlowEnd(w), 10, 1e-6, "worker")
	approx(t, s.FlowEnd(h1), 10, 1e-4, "hop 1 pipelined")
	approx(t, s.FlowEnd(h2), 10, 1e-3, "hop 2 pipelined")
}

func TestRunPanicsOnSecondRun(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 1, 0)
	s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	s.Run()
}

func TestAddFlowValidation(t *testing.T) {
	s := New()
	l := s.AddResource(KindLink, 1, 0)
	for _, spec := range []FlowSpec{
		{Resources: []ResourceID{l}, Bits: -1},
		{Resources: []ResourceID{l}, Bits: 1, StaticBits: 2},
		{Resources: []ResourceID{l}, Bits: 1, Start: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for spec %+v", spec)
				}
			}()
			s.AddFlow(spec)
		}()
	}
}

// Property: for random flow sets on a shared pair of links, every flow
// completes, no link carries more traffic than its capacity times the run
// duration, and each link carries exactly the bytes of the flows crossing it.
func TestRunPropertyConservation(t *testing.T) {
	check := func(seed int64) bool {
		rn := stats.NewRand(seed)
		s := New()
		nLinks := 2 + rn.Intn(4)
		links := make([]ResourceID, nLinks)
		caps := make([]float64, nLinks)
		for i := range links {
			caps[i] = 100 + float64(rn.Intn(900))
			links[i] = s.AddResource(KindLink, caps[i], i)
		}
		nFlows := 1 + rn.Intn(20)
		type finfo struct {
			id   FlowID
			bits float64
			path []int
		}
		var flows []finfo
		for i := 0; i < nFlows; i++ {
			// Random subset path of 1-3 links (bounded by link count).
			maxLen := 3
			if nLinks < maxLen {
				maxLen = nLinks
			}
			n := 1 + rn.Intn(maxLen)
			perm := rn.Perm(nLinks)[:n]
			res := make([]ResourceID, n)
			for j, p := range perm {
				res[j] = links[p]
			}
			bits := float64(1 + rn.Intn(100000))
			start := rn.Float64() * 5
			id := s.AddFlow(FlowSpec{Resources: res, Bits: bits, Start: start})
			flows = append(flows, finfo{id, bits, perm})
		}
		st := s.Run()

		perLink := make([]float64, nLinks)
		for _, f := range flows {
			if s.FlowEnd(f.id) < s.FlowStart(f.id) {
				return false
			}
			if s.FCT(f.id) < f.bits/minCap(caps, f.path)-1e-6 {
				return false // finished faster than the narrowest link allows
			}
			for _, p := range f.path {
				perLink[p] += f.bits
			}
		}
		for i := range perLink {
			if math.Abs(perLink[i]-s.LinkBits(links[i])) > 1e-3*math.Max(1, perLink[i]) {
				return false // conservation violated
			}
			if s.LinkBits(links[i]) > caps[i]*st.Duration*(1+1e-6)+1e-3 {
				return false // capacity violated
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func minCap(caps []float64, path []int) float64 {
	m := math.Inf(1)
	for _, p := range path {
		if caps[p] < m {
			m = caps[p]
		}
	}
	return m
}

// Property: random aggregation trees complete, and the pipelined finish time
// is never later than store-and-forward.
func TestRunPropertyPipelineBeatsStoreAndForward(t *testing.T) {
	check := func(seed int64) bool {
		build := func(s *Sim) FlowID {
			rn := stats.NewRand(seed)
			nWorkers := 2 + rn.Intn(6)
			alpha := 0.1 + 0.8*rn.Float64()
			var inputs []FlowID
			var total float64
			for i := 0; i < nWorkers; i++ {
				l := s.AddResource(KindLink, 1000, i)
				bits := float64(1000 + rn.Intn(20000))
				total += bits
				inputs = append(inputs, s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: bits}))
			}
			down := s.AddResource(KindLink, 1000, 99)
			return s.AddFlow(FlowSpec{Resources: []ResourceID{down}, Bits: alpha * total, Inputs: inputs})
		}
		pipelined := New()
		out1 := build(pipelined)
		pipelined.Run()
		sf := New()
		sf.StoreAndForward = true
		out2 := build(sf)
		sf.Run()
		return pipelined.FlowEnd(out1) <= sf.FlowEnd(out2)+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveAllocationRuns(t *testing.T) {
	s := New()
	s.NaiveAllocation = true
	l1 := s.AddResource(KindLink, 1, 0)
	l2 := s.AddResource(KindLink, 2, 1)
	a := s.AddFlow(FlowSpec{Resources: []ResourceID{l1}, Bits: 1})
	b := s.AddFlow(FlowSpec{Resources: []ResourceID{l1, l2}, Bits: 1})
	c := s.AddFlow(FlowSpec{Resources: []ResourceID{l2}, Bits: 1})
	s.Run()
	// Naive shares: a = b = 0.5 on l1; c gets min(2/2)=1 on l2 — unlike
	// max-min, l2's leftover capacity is not redistributed to c.
	approx(t, s.FCT(a), 2, 1e-6, "flow a under naive shares")
	approxAtLeast(t, s.FCT(c), 1, "flow c should not exceed the naive share")
	if s.FCT(b) < s.FCT(a)-1e-9 {
		t.Fatal("two-link flow cannot beat its bottleneck share")
	}
}

func approxAtLeast(t *testing.T, got, min float64, msg string) {
	t.Helper()
	if got < min-1e-9 {
		t.Fatalf("%s: got %g, want >= %g", msg, got, min)
	}
}

// Naive allocation must never give any flow more than max-min would allow
// aggregate-wise: total link bytes still respect capacities.
func TestNaiveAllocationRespectsCapacity(t *testing.T) {
	s := New()
	s.NaiveAllocation = true
	l := s.AddResource(KindLink, 100, 0)
	for i := 0; i < 5; i++ {
		s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1000})
	}
	st := s.Run()
	if s.LinkBits(l) > 100*st.Duration*(1+1e-6) {
		t.Fatalf("capacity violated: %g bits in %gs", s.LinkBits(l), st.Duration)
	}
}
