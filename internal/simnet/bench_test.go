package simnet

import (
	"math"
	"testing"
)

// benchSparse builds nComp disjoint components of flowsPer flows sharing one
// link each: the coupling graph is many small islands, the regime where
// per-component overhead (BFS, sort, scratch reset) dominates.
func benchSparse(nComp, flowsPer int) (*Sim, []FlowID) {
	s := New()
	for c := 0; c < nComp; c++ {
		l := s.AddResource(KindLink, 100, c)
		for i := 0; i < flowsPer; i++ {
			s.AddFlow(FlowSpec{Resources: []ResourceID{l}, Bits: 1e6})
		}
	}
	return s, activateAll(s)
}

// benchDense builds one fully coupled component: every flow crosses its own
// edge link plus a shared core link, so any dirty flow drags the whole set
// through the waterfill — the regime where the share heap and freeze loop
// dominate.
func benchDense(nFlows int) (*Sim, []FlowID) {
	s := New()
	core := s.AddResource(KindLink, 1000, 0)
	for i := 0; i < nFlows; i++ {
		edge := s.AddResource(KindLink, 10, 1+i)
		s.AddFlow(FlowSpec{Resources: []ResourceID{edge, core}, Bits: 1e6})
	}
	return s, activateAll(s)
}

// markAllDirty re-queues every flow, forcing allocate to rebuild every
// component (the event pattern of a global perturbation).
func markAllDirty(s *Sim, active []FlowID) {
	for _, id := range active {
		s.markFlowDirty(id)
	}
}

// BenchmarkAllocateSparse recomputes 256 independent 4-flow components per
// op, all dirty. Steady-state iterations must not allocate: scratch slices
// are reused and freezes are in-place.
func BenchmarkAllocateSparse(b *testing.B) {
	s, active := benchSparse(256, 4)
	s.allocate(active)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		markAllDirty(s, active)
		s.allocate(active)
	}
}

// BenchmarkAllocateDense re-waterfills one 512-flow fully coupled component
// per op (a single dirty flow drags in everything via the shared core).
func BenchmarkAllocateDense(b *testing.B) {
	s, active := benchDense(512)
	s.allocate(active)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.markFlowDirty(active[i%len(active)])
		s.allocate(active)
	}
}

// BenchmarkAllocateIncremental dirties a single flow among 256 disjoint
// components per op: one component is recomputed, 255 are carried. The gap
// to BenchmarkAllocateSparse is the dirty-set win.
func BenchmarkAllocateIncremental(b *testing.B) {
	s, active := benchSparse(256, 4)
	s.allocate(active)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.markFlowDirty(active[i%len(active)])
		s.allocate(active)
	}
	b.StopTimer()
	if carried := s.report.Alloc.FlowsCarried; carried == 0 {
		b.Fatal("incremental benchmark carried no flows; dirty tracking is off")
	}
	for _, id := range active {
		if math.IsNaN(s.flows[id].rate) {
			b.Fatalf("flow %d has NaN rate", id)
		}
	}
}
