package simnet

import (
	"fmt"

	"netagg/internal/topology"
)

// Network binds a topology to a simulation: every directed link becomes a
// link resource and every agg box a processing resource, so flows built from
// topology paths contend both for bandwidth and for agg-box processing rate.
type Network struct {
	Topo *Topo
	Sim  *Sim
}

// Topo wraps the topology with the resource mappings.
type Topo struct {
	T       *topology.Topology
	linkRes []ResourceID // indexed by topology.LinkID
	procRes map[topology.NodeID]ResourceID
}

// NewNetwork creates a simulation wired to the given topology.
func NewNetwork(t *topology.Topology) *Network {
	sim := New()
	tp := &Topo{
		T:       t,
		linkRes: make([]ResourceID, t.NumLinks()),
		procRes: make(map[topology.NodeID]ResourceID),
	}
	for i := 0; i < t.NumLinks(); i++ {
		l := t.Link(topology.LinkID(i))
		tp.linkRes[i] = sim.AddResource(KindLink, l.Capacity, int(l.ID))
	}
	for _, box := range t.AggBoxes() {
		n := t.Node(box)
		if n.ProcRate <= 0 {
			panic(fmt.Sprintf("simnet: agg box %s has no processing rate", n.Name))
		}
		tp.procRes[box] = sim.AddResource(KindProc, n.ProcRate, int(box))
	}
	return &Network{Topo: tp, Sim: sim}
}

// LinkResource returns the simulation resource for a topology link.
func (tp *Topo) LinkResource(l topology.LinkID) ResourceID { return tp.linkRes[int(l)] }

// ProcResource returns the processing resource of an agg box.
func (tp *Topo) ProcResource(box topology.NodeID) ResourceID {
	r, ok := tp.procRes[box]
	if !ok {
		panic(fmt.Sprintf("simnet: node %d is not an agg box", box))
	}
	return r
}

// PathResources converts an ECMP path between two endpoints into simulation
// resources. If the destination is an agg box, the box's processing resource
// is appended, modelling that all traffic entering a box must be processed
// at up to rate R (§2.4).
func (n *Network) PathResources(src, dst topology.NodeID, hash uint64) []ResourceID {
	nodes := n.Topo.T.PathNodes(src, dst, hash)
	links := n.Topo.T.PathLinks(nodes)
	out := make([]ResourceID, 0, len(links)+1)
	for _, l := range links {
		out = append(out, n.Topo.LinkResource(l))
	}
	if n.Topo.T.Node(dst).Kind == topology.KindAggBox {
		out = append(out, n.Topo.ProcResource(dst))
	}
	return out
}

// AddFlowOnPath adds a flow along the ECMP path from src to dst.
func (n *Network) AddFlowOnPath(src, dst topology.NodeID, hash uint64, spec FlowSpec) FlowID {
	spec.Resources = n.PathResources(src, dst, hash)
	return n.Sim.AddFlow(spec)
}

// LinkTraffic returns the total bits carried by every topology link after a
// run, indexed by topology.LinkID (Fig 9).
func (n *Network) LinkTraffic() []float64 {
	out := make([]float64, len(n.Topo.linkRes))
	for i, r := range n.Topo.linkRes {
		out[i] = n.Sim.LinkBits(r)
	}
	return out
}
