package simexp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"netagg/internal/metrics"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// fingerprint renders every behavioural metric of a run to an exact byte
// string: float64 values are emitted as raw bit patterns, so even one ULP
// of drift (a changed summation order, a different flow creation order)
// changes the fingerprint. Allocator work counters (Stats.Alloc) are
// deliberately excluded: they measure how much work the allocator did, not
// what the network did, and differ between the incremental and
// FullRecompute modes that oracle_test.go compares.
func fingerprint(res *Result) string {
	var sb strings.Builder
	dump := func(name string, s *metrics.Sample) {
		fmt.Fprintf(&sb, "%s[%d]:", name, s.Len())
		for _, v := range s.Values() {
			fmt.Fprintf(&sb, " %016x", math.Float64bits(v))
		}
		sb.WriteByte('\n')
	}
	dump("all", res.AllFCT)
	dump("bg", res.BackgroundFCT)
	dump("agg", res.AggFCT)
	dump("job", res.JobFCT)
	dump("link", res.LinkMB)
	fmt.Fprintf(&sb, "duration: %016x\n", math.Float64bits(res.Duration))
	fmt.Fprintf(&sb, "events: %d\n", res.Stats.Events)
	return sb.String()
}

// seededRun builds topology, workload, and deployment from scratch and
// simulates one NetAgg sweep — the full path the paper's FCT figures
// take (workload → strategies → simnet → metrics).
func seededRun(t *testing.T, seed int64) string {
	t.Helper()
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		t.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	cfg := workload.Default()
	cfg.Seed = seed
	w := workload.Generate(topo, cfg)
	return fingerprint(Run(topo, w, strategies.NetAgg{}, false))
}

// TestSimulationDeterminism is the regression gate behind the
// determinism analyzer: the paper's figures (§5, Figs 8-14) are
// FCT-percentile sweeps, and reproducing them bit-for-bit requires the
// whole simulation path to be free of wall-clock reads, global
// randomness, and map-iteration-order dependence. Two runs with the same
// seed must produce byte-identical metrics; a different seed must not.
func TestSimulationDeterminism(t *testing.T) {
	first := seededRun(t, 1)
	second := seededRun(t, 1)
	if first != second {
		a, b := diffHead(first, second)
		t.Fatalf("same seed produced different metrics:\nrun1: %s\nrun2: %s", a, b)
	}

	other := seededRun(t, 2)
	if other == first {
		t.Fatal("different seed produced identical metrics; the seed is not reaching the workload")
	}
}

// diffHead returns the first differing lines of two fingerprints, to
// keep failure output readable.
func diffHead(a, b string) (string, string) {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return truncate(la[i]), truncate(lb[i])
		}
	}
	return truncate(a), truncate(b)
}

func truncate(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
