package simexp

import (
	"testing"

	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// Regression test: fully aggregatable workloads once degenerated into
// nanosecond buffer-drain ping-pong between mutually dependent flows,
// exhausting the event budget. The dtMin event-step floor bounds events to
// a small multiple of the flow count.
func TestNoEventLivelockOnFullyAggregatableWorkload(t *testing.T) {
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		t.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	cfg := workload.Default()
	cfg.AggregatableFraction = 1.0
	w := workload.Generate(topo, cfg)
	res := Run(topo, w, strategies.NetAgg{}, false)
	if res.Stats.Events > 20*w.NumFlows() {
		t.Fatalf("event explosion: %d events for %d flows", res.Stats.Events, w.NumFlows())
	}
}
