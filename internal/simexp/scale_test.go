package simexp

import (
	"testing"

	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// TestFullScaleRun exercises the paper's full 1,024-server topology once as
// a correctness and performance canary. Skipped with -short.
func TestFullScaleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation skipped in short mode")
	}
	topo, err := topology.BuildClos(topology.DefaultClos())
	if err != nil {
		t.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	w := workload.Generate(topo, workload.Default())
	if w.NumFlows() < 3000 {
		t.Fatalf("expected thousands of flows at full scale, got %d", w.NumFlows())
	}
	res := Run(topo, w, strategies.NetAgg{}, false)
	if res.AllFCT.Len() == 0 || res.Duration <= 0 {
		t.Fatal("full-scale run produced no measurements")
	}
	t.Logf("flows=%d jobs=%d events=%d allocations=%d p99=%.4gs",
		w.NumFlows(), len(w.Jobs), res.Stats.Events, res.Stats.Allocations, res.AllFCT.P99())
}
