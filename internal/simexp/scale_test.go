package simexp

import (
	"testing"

	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// TestFullScaleRun exercises the paper's full 1,024-server topology once as
// a correctness and performance canary. Skipped with -short.
func TestFullScaleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation skipped in short mode")
	}
	topo, err := topology.BuildClos(topology.DefaultClos())
	if err != nil {
		t.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	w := workload.Generate(topo, workload.Default())
	if w.NumFlows() < 3000 {
		t.Fatalf("expected thousands of flows at full scale, got %d", w.NumFlows())
	}
	res := Run(topo, w, strategies.NetAgg{}, false)
	if res.AllFCT.Len() == 0 || res.Duration <= 0 {
		t.Fatal("full-scale run produced no measurements")
	}
	t.Logf("flows=%d jobs=%d events=%d waterfills=%d components=%d maxcomp=%d realloc=%d carried=%d unconverged=%d p99=%.4gs",
		w.NumFlows(), len(w.Jobs), res.Stats.Events, res.Stats.Alloc.Waterfills,
		res.Stats.Alloc.Components, res.Stats.Alloc.MaxComponent,
		res.Stats.Alloc.FlowsReallocated, res.Stats.Alloc.FlowsCarried,
		res.Stats.Alloc.Unconverged, res.AllFCT.P99())
}
