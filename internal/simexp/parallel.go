package simexp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across min(workers, n)
// goroutines; workers <= 0 selects GOMAXPROCS. Indices are claimed from an
// atomic counter, so which worker runs which index is scheduling-dependent,
// but the index set is not: callers that write results only into their own
// index slot get output that is byte-identical regardless of the worker
// count or interleaving. Each simulation builds its own topology, workload,
// and Sim, so runs share no mutable state.
//
// All goroutines are joined before ForEach returns (they terminate by
// return when the counter passes n), so the caller cannot leak workers.
func ForEach(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
