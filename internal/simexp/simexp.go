// Package simexp runs complete simulation experiments: it wires a workload
// and an aggregation strategy into the flow simulator, runs it, and collects
// the measurements the paper's figures report — flow completion time
// distributions for all/background/aggregation traffic, job completion
// times, and per-link traffic.
package simexp

import (
	"netagg/internal/metrics"
	"netagg/internal/simnet"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// Result holds the measurements of one simulation run.
type Result struct {
	// AllFCT is the flow completion time of every flow in the run
	// (background flows plus all constituent flows of aggregation jobs) —
	// the paper's headline metric (Figs 2, 6, 8, 10-14).
	AllFCT *metrics.Sample
	// BackgroundFCT covers only the non-aggregatable flows (Fig 7).
	BackgroundFCT *metrics.Sample
	// AggFCT covers only flows belonging to aggregation jobs.
	AggFCT *metrics.Sample
	// JobFCT is the per-job completion time: from job start until the last
	// result flow reaches the master.
	JobFCT *metrics.Sample
	// LinkMB is the traffic carried by each network link, in megabytes
	// (Fig 9).
	LinkMB *metrics.Sample
	// Duration is the simulated time until the last flow completed.
	Duration float64
	// Stats carries simulator internals (event/allocation counts).
	Stats simnet.RunStats
}

// Opts selects simulator ablation modes.
type Opts struct {
	// StoreAndForward disables streaming aggregation.
	StoreAndForward bool
	// NaiveAllocation replaces max-min fairness with naive equal shares.
	NaiveAllocation bool
	// FullRecompute disables incremental reallocation: every coupling
	// component is re-waterfilled on every event. Debug/oracle mode — the
	// simulated behaviour must be byte-identical to the incremental default.
	FullRecompute bool
	// Prelude, when non-nil, runs after the workload's background flows
	// are installed and before any job is added — a hook for experiments
	// that inject load the workload generator does not model (e.g. the
	// planner figure's skewed per-box traffic). Flows it adds count
	// toward link traffic and Duration but not the FCT samples.
	Prelude func(*simnet.Network)
}

// Run simulates the workload on the topology under the given strategy.
// storeAndForward disables streaming aggregation (ablation).
func Run(topo *topology.Topology, w *workload.Workload, strat strategies.Strategy, storeAndForward bool) *Result {
	return RunWith(topo, w, strat, Opts{StoreAndForward: storeAndForward})
}

// RunWith simulates with explicit ablation options.
func RunWith(topo *topology.Topology, w *workload.Workload, strat strategies.Strategy, o Opts) *Result {
	net := simnet.NewNetwork(topo)
	net.Sim.StoreAndForward = o.StoreAndForward
	net.Sim.NaiveAllocation = o.NaiveAllocation
	net.Sim.FullRecompute = o.FullRecompute

	var bg []simnet.FlowID
	for i := range w.Background {
		b := &w.Background[i]
		h := topology.FlowHash(0xB6, uint64(i)+1)
		bg = append(bg, net.AddFlowOnPath(b.Src, b.Dst, h, simnet.FlowSpec{
			Bits:  b.Bits,
			Class: simnet.ClassBackground,
			Job:   -1,
		}))
	}

	if o.Prelude != nil {
		o.Prelude(net)
	}

	jobs := make([]strategies.JobFlows, len(w.Jobs))
	for i := range w.Jobs {
		jobs[i] = strat.AddJob(net, &w.Jobs[i], w.Config.OutputRatio)
	}

	stats := net.Sim.Run()

	res := &Result{
		AllFCT:        metrics.NewSample(net.Sim.NumFlows()),
		BackgroundFCT: metrics.NewSample(len(bg)),
		AggFCT:        metrics.NewSample(net.Sim.NumFlows() - len(bg)),
		JobFCT:        metrics.NewSample(len(jobs)),
		LinkMB:        metrics.NewSample(0),
		Duration:      stats.Duration,
		Stats:         stats,
	}
	for _, id := range bg {
		if net.Sim.FlowTruncated(id) {
			continue // churn flow cut short mid-run; its FCT is not real
		}
		fct := net.Sim.FCT(id)
		res.AllFCT.Add(fct)
		res.BackgroundFCT.Add(fct)
	}
	for _, jf := range jobs {
		// Dynamic strategies add migration resend flows after the build
		// phase; fold them in. Truncated flows (superseded attempts) are
		// excluded from the FCT samples — their early ends are artifacts
		// of migration, not completions.
		all, finals := jf.All, jf.Finals
		if jf.Extra != nil {
			all = append(append([]simnet.FlowID(nil), all...), jf.Extra.All...)
			finals = append(append([]simnet.FlowID(nil), finals...), jf.Extra.Finals...)
		}
		for _, id := range all {
			if net.Sim.FlowTruncated(id) {
				continue
			}
			fct := net.Sim.FCT(id)
			res.AllFCT.Add(fct)
			res.AggFCT.Add(fct)
		}
		end := 0.0
		for _, id := range finals {
			if net.Sim.FlowTruncated(id) {
				continue // superseded by a resend's result flow
			}
			if e := net.Sim.FlowEnd(id); e > end {
				end = e
			}
		}
		res.JobFCT.Add(end) // jobs start at t=0
	}
	for _, bits := range net.LinkTraffic() {
		res.LinkMB.Add(bits / 8 / 1e6)
	}
	return res
}
