package simexp

import (
	"testing"

	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// oracleScenario is one (topology, strategy, ablation, seed) point of the
// equivalence suite.
type oracleScenario struct {
	name  string
	clos  topology.ClosConfig
	strat strategies.Strategy
	sf    bool
	seed  int64
}

// mediumClos mirrors figures.ScaleMedium (256 servers) without importing
// figures (which would create an import cycle with this package).
func mediumClos() topology.ClosConfig {
	return topology.ClosConfig{
		Pods:             4,
		RacksPerPod:      4,
		ServersPerRack:   16,
		AggPerPod:        2,
		Cores:            4,
		EdgeCapacity:     topology.Gbps,
		Oversubscription: 4,
	}
}

func oracleScenarios(short bool) []oracleScenario {
	small := topology.SmallClos()
	scs := []oracleScenario{
		{"small/netagg", small, strategies.NetAgg{}, false, 1},
		{"small/netagg/sf", small, strategies.NetAgg{}, true, 1},
		{"small/rack", small, strategies.Rack{}, false, 1},
		{"small/dary2", small, strategies.DAry{D: 2}, false, 1},
		{"small/netagg/seed7", small, strategies.NetAgg{}, false, 7},
	}
	if !short {
		scs = append(scs,
			oracleScenario{"medium/netagg", mediumClos(), strategies.NetAgg{}, false, 1},
			oracleScenario{"medium/dary1", mediumClos(), strategies.DAry{D: 1}, false, 3},
		)
	}
	return scs
}

// oracleRun executes one scenario in either allocation mode and returns the
// behavioural fingerprint plus the stats for the carried/reallocated sanity
// checks.
func oracleRun(t *testing.T, sc oracleScenario, full bool) (string, *Result) {
	t.Helper()
	topo, err := topology.BuildClos(sc.clos)
	if err != nil {
		t.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	cfg := workload.Default()
	cfg.Seed = sc.seed
	w := workload.Generate(topo, cfg)
	res := RunWith(topo, w, sc.strat, Opts{StoreAndForward: sc.sf, FullRecompute: full})
	return fingerprint(res), res
}

// TestIncrementalMatchesFullRecompute is the equivalence oracle for the
// incremental allocator: carrying a clean coupling component's rates
// verbatim must be indistinguishable — to the last bit of every float64 —
// from re-waterfilling every component on every event. Any divergence means
// a dirty-marking rule is missing (an event changed a component's
// allocation inputs without marking it) or the per-component procedure is
// not idempotent on converged state.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for _, sc := range oracleScenarios(testing.Short()) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			inc, incRes := oracleRun(t, sc, false)
			full, fullRes := oracleRun(t, sc, true)
			if inc != full {
				a, b := diffHead(inc, full)
				t.Fatalf("incremental and full-recompute runs diverged:\nincremental: %s\nfull:        %s", a, b)
			}
			// The oracle must actually exercise both code paths: full
			// recompute reallocates at least as many flow-slots as the
			// incremental run, which must have carried some.
			if fullRes.Stats.Alloc.FlowsReallocated < incRes.Stats.Alloc.FlowsReallocated {
				t.Errorf("full recompute reallocated fewer flow-slots (%d) than incremental (%d)",
					fullRes.Stats.Alloc.FlowsReallocated, incRes.Stats.Alloc.FlowsReallocated)
			}
			if incRes.Stats.Alloc.FlowsCarried == 0 && incRes.Stats.Events > 10 {
				t.Errorf("incremental run carried no flow rates over %d events; dirty tracking is not pruning anything",
					incRes.Stats.Events)
			}
		})
	}
}
