package simexp

import (
	"testing"

	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

func run(t *testing.T, strat strategies.Strategy, mutate func(*workload.Config), deploy bool) *Result {
	t.Helper()
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		t.Fatal(err)
	}
	if deploy {
		strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	}
	cfg := workload.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	w := workload.Generate(topo, cfg)
	return Run(topo, w, strat, false)
}

func TestRunCompletes(t *testing.T) {
	res := run(t, strategies.Rack{}, nil, false)
	if res.AllFCT.Len() == 0 || res.JobFCT.Len() == 0 {
		t.Fatal("no measurements collected")
	}
	if res.Duration <= 0 {
		t.Fatal("non-positive duration")
	}
	if res.AllFCT.Len() != res.BackgroundFCT.Len()+res.AggFCT.Len() {
		t.Fatalf("sample sizes inconsistent: all=%d bg=%d agg=%d",
			res.AllFCT.Len(), res.BackgroundFCT.Len(), res.AggFCT.Len())
	}
}

// The paper's headline result (Figs 2, 6): with high data reduction,
// on-path aggregation beats rack-level aggregation on tail FCT.
func TestNetAggBeatsRackAtLowAlpha(t *testing.T) {
	rack := run(t, strategies.Rack{}, nil, false)
	netagg := run(t, strategies.NetAgg{}, nil, true)
	if na, rk := netagg.AllFCT.P99(), rack.AllFCT.P99(); na >= rk {
		t.Fatalf("netagg p99 FCT %g should beat rack %g at alpha=0.1", na, rk)
	}
	if na, rk := netagg.JobFCT.P99(), rack.JobFCT.P99(); na >= rk {
		t.Fatalf("netagg p99 job FCT %g should beat rack %g", na, rk)
	}
}

// Fig 7: non-aggregatable background traffic benefits too, because
// aggregation frees bandwidth.
func TestNetAggHelpsBackgroundTraffic(t *testing.T) {
	rack := run(t, strategies.Rack{}, nil, false)
	netagg := run(t, strategies.NetAgg{}, nil, true)
	if na, rk := netagg.BackgroundFCT.P99(), rack.BackgroundFCT.P99(); na > rk*1.05 {
		t.Fatalf("netagg background p99 %g should not exceed rack %g", na, rk)
	}
}

// Fig 8: at alpha = 1 (no reduction possible) NetAgg loses its advantage.
// The effect shows at job level (time to deliver a request's full result):
// at α = 1 both strategies are bound by the master's inbound link, while at
// low α NetAgg delivers a fraction of the data.
func TestNetAggAdvantageVanishesAtAlphaOne(t *testing.T) {
	noAgg := func(c *workload.Config) { c.OutputRatio = 1.0 }
	rack := run(t, strategies.Rack{}, noAgg, false)
	netagg := run(t, strategies.NetAgg{}, noAgg, true)
	lo := run(t, strategies.NetAgg{}, nil, true)
	loRack := run(t, strategies.Rack{}, nil, false)
	gainAt1 := rack.JobFCT.P99() / netagg.JobFCT.P99()
	gainAtLow := loRack.JobFCT.P99() / lo.JobFCT.P99()
	if gainAtLow <= gainAt1 {
		t.Fatalf("netagg job-level gain should shrink as alpha → 1: gain(0.1)=%.2f gain(1.0)=%.2f",
			gainAtLow, gainAt1)
	}
	if gainAt1 > 1.5 {
		t.Fatalf("at alpha=1 netagg should be roughly at parity with rack, gain=%.2f", gainAt1)
	}
}

// All strategies must deliver the same final result volume; the simulation
// only changes where reduction happens.
func TestStrategiesAgreeOnJobCount(t *testing.T) {
	var counts []int
	for _, s := range []strategies.Strategy{
		strategies.Direct{}, strategies.Rack{}, strategies.DAry{D: 2},
		strategies.DAry{D: 1},
	} {
		res := run(t, s, nil, false)
		counts = append(counts, res.JobFCT.Len())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("job counts differ across strategies: %v", counts)
		}
	}
}

func TestStoreAndForwardSlower(t *testing.T) {
	topo, _ := topology.BuildClos(topology.SmallClos())
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	w := workload.Generate(topo, workload.Default())
	stream := Run(topo, w, strategies.NetAgg{}, false)
	topo2, _ := topology.BuildClos(topology.SmallClos())
	strategies.DeployTiers(topo2, strategies.TierAll, strategies.DefaultBoxSpec())
	sf := Run(topo2, w, strategies.NetAgg{}, true)
	if stream.JobFCT.P99() > sf.JobFCT.P99()*1.001 {
		t.Fatalf("streaming p99 job FCT %g should not exceed store-and-forward %g",
			stream.JobFCT.P99(), sf.JobFCT.P99())
	}
}
