package simexp

import (
	"testing"

	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// BenchmarkRunFullScale simulates one NetAgg sweep at the paper's
// 1,024-server scale per op — the end-to-end number the incremental
// allocator is judged on (topology/workload construction is outside the
// timer). Run with -benchtime 1x for a single wall-clock sample;
// EXPERIMENTS.md records the trajectory.
func BenchmarkRunFullScale(b *testing.B) {
	topo, err := topology.BuildClos(topology.DefaultClos())
	if err != nil {
		b.Fatal(err)
	}
	strategies.DeployTiers(topo, strategies.TierAll, strategies.DefaultBoxSpec())
	w := workload.Generate(topo, workload.Default())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(topo, w, strategies.NetAgg{}, false)
		if res.Stats.Events == 0 {
			b.Fatal("full-scale run produced no events")
		}
	}
}
