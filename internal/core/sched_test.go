package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerRunsTasks(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4, Seed: 1})
	defer s.Close()
	s.Register("app", 1)
	var n int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := s.Submit("app", func() {
			atomic.AddInt64(&n, 1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n != 100 {
		t.Fatalf("ran %d tasks, want 100", n)
	}
	started, done := s.TaskCounts("app")
	if started != 100 || done != 100 {
		t.Fatalf("counts = (%d, %d), want (100, 100)", started, done)
	}
}

func TestSchedulerRejectsUnknownApp(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Seed: 1})
	defer s.Close()
	if err := s.Submit("ghost", func() {}); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestSchedulerRejectsAfterClose(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Seed: 1})
	s.Register("app", 1)
	s.Close()
	if err := s.Submit("app", func() {}); err == nil {
		t.Fatal("expected error after Close")
	}
}

func TestSchedulerDuplicateRegisterPanics(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Seed: 1})
	defer s.Close()
	s.Register("app", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Register("app", 1)
}

func TestSchedulerCloseDrainsQueue(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, Seed: 1})
	s.Register("app", 1)
	var n int64
	for i := 0; i < 50; i++ {
		s.Submit("app", func() { atomic.AddInt64(&n, 1) })
	}
	s.Close()
	if got := atomic.LoadInt64(&n); got != 50 {
		t.Fatalf("Close ran %d of 50 queued tasks", got)
	}
}

// submitBacklog queues a large open-loop backlog for both apps so the WFQ
// pick genuinely chooses between non-empty queues: heavy tasks for app
// "slow" and light ones for "fast" — the paper's Solr vs Hadoop asymmetry
// (§4.2.3: "a Solr task takes, on average, 30 ms to run on the CPU, while a
// Hadoop task runs only for a few ms"). Task cost is emulated with sleeps
// because the test host has a single CPU (see DESIGN.md).
func submitBacklog(s *Scheduler, n int, slowDur, fastDur time.Duration) {
	for i := 0; i < n; i++ {
		s.Submit("slow", func() { time.Sleep(slowDur) })
		s.Submit("fast", func() { time.Sleep(fastDur) })
	}
}

// Fixed weights starve the app with short tasks: the heavy app wins CPU
// roughly in proportion to its task length (Fig 25).
func TestFixedWFQSkewsCPUTime(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4, Adaptive: false, Seed: 1})
	s.Register("slow", 1)
	s.Register("fast", 1)
	submitBacklog(s, 2000, 10*time.Millisecond, time.Millisecond)
	time.Sleep(400 * time.Millisecond)
	slow, fast := s.CPUTime("slow"), s.CPUTime("fast")
	s.CloseNow()
	if fast == 0 {
		t.Fatal("fast app got no CPU at all")
	}
	if ratio := slow.Seconds() / fast.Seconds(); ratio < 3 {
		t.Fatalf("fixed WFQ should skew CPU to the heavy app: ratio %.2f", ratio)
	}
}

// The adaptive policy equalises CPU time despite the task-length asymmetry
// (Fig 26).
func TestAdaptiveWFQEqualisesCPUTime(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4, Adaptive: true, Seed: 1})
	s.Register("slow", 1)
	s.Register("fast", 1)
	submitBacklog(s, 2000, 10*time.Millisecond, time.Millisecond)
	time.Sleep(400 * time.Millisecond)
	slow, fast := s.CPUTime("slow"), s.CPUTime("fast")
	s.CloseNow()
	if fast == 0 || slow == 0 {
		t.Fatal("an app got no CPU")
	}
	ratio := slow.Seconds() / fast.Seconds()
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("adaptive WFQ should roughly equalise CPU time: ratio %.2f", ratio)
	}
}

func TestSchedulerSharesBias(t *testing.T) {
	// With equal task costs, a 3:1 share should yield roughly 3:1 CPU.
	s := NewScheduler(SchedulerConfig{Workers: 4, Adaptive: true, Seed: 1})
	s.Register("big", 3)
	s.Register("small", 1)
	for i := 0; i < 2000; i++ {
		s.Submit("big", func() { time.Sleep(2 * time.Millisecond) })
		s.Submit("small", func() { time.Sleep(2 * time.Millisecond) })
	}
	time.Sleep(400 * time.Millisecond)
	ratio := s.CPUTime("big").Seconds() / s.CPUTime("small").Seconds()
	s.CloseNow()
	if ratio < 1.8 || ratio > 5 {
		t.Fatalf("3:1 shares should bias CPU accordingly, got ratio %.2f", ratio)
	}
}

func TestCloseNowDropsQueue(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Seed: 1})
	s.Register("app", 1)
	var ran int64
	for i := 0; i < 1000; i++ {
		s.Submit("app", func() {
			atomic.AddInt64(&ran, 1)
			time.Sleep(time.Millisecond)
		})
	}
	s.CloseNow()
	if got := atomic.LoadInt64(&ran); got >= 1000 {
		t.Fatalf("CloseNow should drop queued tasks, ran %d", got)
	}
}
