package core

import (
	"net"
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/wire"
)

// testRegistry registers the word-count combiner under "wc".
func testRegistry() *agg.Registry {
	r := agg.NewRegistry()
	r.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	return r
}

// resultSink is a minimal master-side result listener.
type resultSink struct {
	ln      net.Listener
	results chan *wire.Msg
}

func newResultSink(t *testing.T) *resultSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &resultSink{ln: ln, results: make(chan *wire.Msg, 64)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				r := wire.NewReader(conn)
				for {
					m, err := r.Read()
					if err != nil {
						conn.Close()
						return
					}
					s.results <- m
				}
			}()
		}
	}()
	return s
}

func (s *resultSink) addr() string { return s.ln.Addr().String() }

func (s *resultSink) wait(t *testing.T) *wire.Msg {
	t.Helper()
	select {
	case m := <-s.results:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("no result received")
		return nil
	}
}

func (s *resultSink) close() { s.ln.Close() }

// sendStream writes a worker's partial-result stream to addr. It reports
// failures with t.Error so it is safe to run on its own goroutine.
func sendStream(t *testing.T, addr string, app string, req, source uint64, route []string, parts [][]byte) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer conn.Close()
	w := wire.NewWriter(conn)
	msgs := []*wire.Msg{{Type: wire.THello, App: app, Req: req, Source: source, Payload: wire.EncodeStrings(route)}}
	for i, p := range parts {
		msgs = append(msgs, &wire.Msg{Type: wire.TData, App: app, Req: req, Source: source, Seq: uint64(i), Payload: p})
	}
	msgs = append(msgs, &wire.Msg{Type: wire.TEnd, App: app, Req: req, Source: source})
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Error(err)
			return
		}
	}
	if err := w.Flush(); err != nil {
		t.Error(err)
	}
}

func sendExpect(t *testing.T, addr, app string, req uint64, count int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := wire.NewWriter(conn)
	if err := w.Write(&wire.Msg{Type: wire.TExpect, App: app, Req: req, Payload: wire.EncodeCount(count)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBoxAggregatesAndDelivers(t *testing.T) {
	box, err := Start(Config{ID: 1 << 32, Registry: testRegistry(), Workers: 2, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()
	sink := newResultSink(t)
	defer sink.close()

	route := []string{sink.addr()}
	sendExpect(t, box.Addr(), "wc", 7, 3)
	for w := 0; w < 3; w++ {
		go sendStream(t, box.Addr(), "wc", 7, uint64(w), route, [][]byte{
			agg.EncodeKVs([]agg.KV{{Key: "a", Val: 1}}),
			agg.EncodeKVs([]agg.KV{{Key: "b", Val: 2}}),
		})
	}
	m := sink.wait(t)
	if m.Type != wire.TResult || m.App != "wc" || m.Req != 7 {
		t.Fatalf("unexpected result frame %+v", m)
	}
	kvs, err := agg.DecodeKVs(m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Val != 3 || kvs[1].Val != 6 {
		t.Fatalf("bad aggregation: %v", kvs)
	}
	st := box.Stats()
	if st.Requests != 1 || st.BytesIn == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBoxChainsToNextBox(t *testing.T) {
	reg := testRegistry()
	box2, err := Start(Config{ID: 2 << 32, Registry: reg, Workers: 2, SchedSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer box2.Close()
	box1, err := Start(Config{ID: 1 << 32, Registry: reg, Workers: 2, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box1.Close()
	sink := newResultSink(t)
	defer sink.close()

	// Two workers feed box1; box1 forwards to box2; a third worker feeds
	// box2 directly; box2 delivers to the master.
	sendExpect(t, box1.Addr(), "wc", 9, 2)
	sendExpect(t, box2.Addr(), "wc", 9, 2) // box1 + the direct worker
	routeViaBox2 := []string{box2.Addr(), sink.addr()}
	for w := 0; w < 2; w++ {
		go sendStream(t, box1.Addr(), "wc", 9, uint64(w), routeViaBox2, [][]byte{
			agg.EncodeKVs([]agg.KV{{Key: "k", Val: 10}}),
		})
	}
	go sendStream(t, box2.Addr(), "wc", 9, 5, []string{sink.addr()}, [][]byte{
		agg.EncodeKVs([]agg.KV{{Key: "k", Val: 100}}),
	})

	m := sink.wait(t)
	if m.Type != wire.TResult {
		t.Fatalf("unexpected frame %s", m.Type)
	}
	kvs, err := agg.DecodeKVs(m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Val != 120 {
		t.Fatalf("bad chained aggregation: %v", kvs)
	}
}

func TestBoxReportsCombineError(t *testing.T) {
	box, err := Start(Config{ID: 1 << 32, Registry: testRegistry(), Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()
	sink := newResultSink(t)
	defer sink.close()

	sendExpect(t, box.Addr(), "wc", 11, 1)
	sendStream(t, box.Addr(), "wc", 11, 0, []string{sink.addr()}, [][]byte{
		{0xde, 0xad}, {0xbe, 0xef}, // undecodable pair forces a combine error
	})
	m := sink.wait(t)
	if m.Type != wire.TError {
		t.Fatalf("expected TError, got %s", m.Type)
	}
}

func TestBoxHeartbeatEcho(t *testing.T) {
	box, err := Start(Config{ID: 1 << 32, Registry: testRegistry(), Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()
	conn, err := net.Dial("tcp", box.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w, r := wire.NewWriter(conn), wire.NewReader(conn)
	if err := w.Write(&wire.Msg{Type: wire.THeartbeat, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != wire.THeartbeat || m.Seq != 42 {
		t.Fatalf("bad heartbeat echo %+v", m)
	}
}

func TestBoxEmptyRequest(t *testing.T) {
	// A request whose only input sends End with no Data yields an empty
	// result (the master shim emulates empty partials, §3.2.2).
	box, err := Start(Config{ID: 1 << 32, Registry: testRegistry(), Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()
	sink := newResultSink(t)
	defer sink.close()
	sendExpect(t, box.Addr(), "wc", 13, 1)
	sendStream(t, box.Addr(), "wc", 13, 0, []string{sink.addr()}, nil)
	m := sink.wait(t)
	if m.Type != wire.TResult || len(m.Payload) != 0 {
		t.Fatalf("expected empty result, got %+v", m)
	}
}

func TestBoxIgnoresLateData(t *testing.T) {
	box, err := Start(Config{ID: 1 << 32, Registry: testRegistry(), Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()
	sink := newResultSink(t)
	defer sink.close()
	sendExpect(t, box.Addr(), "wc", 17, 1)
	sendStream(t, box.Addr(), "wc", 17, 0, []string{sink.addr()}, [][]byte{
		agg.EncodeKVs([]agg.KV{{Key: "x", Val: 1}}),
	})
	sink.wait(t)
	// Late duplicate data (recovery scenario) must not produce a second
	// result or crash the box.
	conn, err := net.Dial("tcp", box.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter(conn)
	w.Write(&wire.Msg{Type: wire.TData, App: "wc", Req: 17, Source: 0, Payload: agg.EncodeKVs(nil)})
	w.Flush()
	conn.Close()
	select {
	case m := <-sink.results:
		t.Fatalf("unexpected second result %+v", m)
	case <-time.After(200 * time.Millisecond):
	}
}
