package core

import (
	"errors"
	"sync"

	"netagg/internal/agg"
	"netagg/internal/bufpool"
)

// errDiscarded marks a tree torn down by the janitor or box shutdown;
// it never reaches a master because Discard detaches onDone first.
var errDiscarded = errors.New("core: aggregation tree discarded")

// LocalTree is the in-box aggregation structure for one request (§3.2.1
// "Local aggregation trees"): partial results stream in from the network
// layer, pairs are combined by aggregation tasks running in parallel on the
// scheduler, and intermediate results propagate until a single final result
// remains. Because the aggregation function is associative and commutative,
// greedily combining any two available parts executes the same computation
// as a static binary tree with maximal pipelining. A bounded pending-part
// buffer provides back-pressure: Add blocks when the tree cannot keep up,
// which in turn stops the network reader and lets TCP throttle the sender
// ("a back-pressure mechanism ensures that the workers reduce the rate at
// which they produce partial results").
type LocalTree struct {
	app        string
	aggregator agg.Aggregator
	sched      *Scheduler
	maxPending int

	mu       sync.Mutex
	cond     *sync.Cond
	parts    []*bufpool.Buf
	inflight int
	closed   bool
	finished bool
	err      error
	result   *bufpool.Buf
	onDone   func(*bufpool.Buf, error)

	// BytesIn counts external payload bytes, for throughput measurements.
	bytesIn int64
	// combines counts pairwise merges executed (always n-1 for n parts).
	combines int64
	// cutThrough counts merges that ran cut-through: the combine task
	// pulled the next waiting part directly instead of re-queueing its
	// result on the scheduler.
	cutThrough int64
}

// NewLocalTree creates a tree executing app's aggregation function on
// sched. onDone is called exactly once, with the final aggregated result
// (nil if no parts were added) or the first combine error; it must not
// block. The callback owns the result's buffer reference and must
// Release it. maxPending bounds buffered parts; values < 4 are raised to
// 4 so a combine can always be scheduled.
func NewLocalTree(sched *Scheduler, app string, aggregator agg.Aggregator, maxPending int, onDone func(*bufpool.Buf, error)) *LocalTree {
	if maxPending < 4 {
		maxPending = 4
	}
	t := &LocalTree{
		app:        app,
		aggregator: aggregator,
		sched:      sched,
		maxPending: maxPending,
		onDone:     onDone,
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Add feeds one partial result. The tree takes ownership of part's
// buffer reference in every outcome — including rejection — so callers
// hand their reference over and walk away. It blocks while the tree's
// buffer is full (back-pressure) and returns false if the tree already
// failed or was closed.
//
//netagg:owns part
func (t *LocalTree) Add(part *bufpool.Buf) bool {
	t.mu.Lock()
	// The budget counts buffered parts and the two inputs of every combine
	// still queued or running, so a slow aggregator applies back-pressure
	// instead of letting the scheduler queue grow without bound.
	for len(t.parts)+2*t.inflight >= t.maxPending && t.err == nil && !t.closed {
		t.cond.Wait()
	}
	if t.err != nil || t.closed {
		t.mu.Unlock()
		part.Release()
		return false
	}
	t.parts = append(t.parts, part) //netagg:owns part
	t.bytesIn += int64(part.Len())
	t.scheduleLocked()
	t.mu.Unlock()
	return true
}

// CloseInputs declares that no further parts will be added; once inflight
// combines drain and a single part remains, onDone fires.
func (t *LocalTree) CloseInputs() {
	t.mu.Lock()
	t.closed = true
	t.maybeFinishLocked()
	t.mu.Unlock()
}

// Discard tears the tree down without notifying onDone: buffered parts
// are released, waiters are unblocked, and in-flight combines release
// their inputs as they drain. The janitor and box shutdown use it to
// reclaim pool buffers held by abandoned requests, which previously
// pinned them until process exit.
func (t *LocalTree) Discard() {
	t.mu.Lock()
	t.onDone = nil
	t.closed = true
	t.failLocked(errDiscarded)
	t.mu.Unlock()
}

// scheduleLocked starts combine tasks while at least two parts are buffered.
func (t *LocalTree) scheduleLocked() {
	for len(t.parts) >= 2 && t.err == nil {
		a := t.parts[len(t.parts)-1]
		b := t.parts[len(t.parts)-2]
		t.parts = t.parts[:len(t.parts)-2]
		t.inflight++
		if err := t.sched.Submit(t.app, func() { t.combine(a, b) }); err != nil {
			t.inflight--
			t.failLocked(err)
			return
		}
	}
	t.cond.Broadcast()
}

// combine is the body of one aggregation task. Both inputs are released
// once the aggregator returns: Combine implementations decode their
// inputs and encode a fresh output (the contract documented on
// agg.Aggregator), so the output never aliases a or b.
//
// The task runs cut-through (§3.2.1 pipelined aggregation): when further
// parts are already waiting, the freshly produced intermediate result is
// merged with the next one in the same task instead of being re-queued
// through the scheduler, so partials stream through one hot combine loop
// as they arrive. Associativity and commutativity make the greedy order
// equivalent to a binary tree; the result count stays n-1 merges.
//
//netagg:owns a
//netagg:owns b
func (t *LocalTree) combine(a, b *bufpool.Buf) {
	for {
		out, err := t.aggregator.Combine(a.Bytes(), b.Bytes())
		a.Release()
		b.Release()
		t.mu.Lock()
		t.combines++
		if err != nil {
			t.inflight--
			t.failLocked(err)
			t.mu.Unlock()
			return
		}
		if t.err != nil {
			// The tree already failed; the intermediate result is dead
			// weight for the GC, matching the pre-cut-through behaviour.
			t.inflight--
			t.maybeFinishLocked()
			t.mu.Unlock()
			return
		}
		if len(t.parts) > 0 {
			// Cut-through: claim the next waiting part and keep merging in
			// this task. inflight stays 1 for this task's two inputs;
			// popping a part frees budget, so wake blocked Adds.
			next := t.parts[len(t.parts)-1]
			t.parts = t.parts[:len(t.parts)-1]
			t.cutThrough++
			obsCutThrough.Inc()
			t.cond.Broadcast()
			t.mu.Unlock()
			a, b = bufpool.Adopt(out), next //netagg:owns out
			continue
		}
		t.inflight--
		t.parts = append(t.parts, bufpool.Adopt(out)) //netagg:owns out
		t.scheduleLocked()
		t.maybeFinishLocked()
		t.mu.Unlock()
		return
	}
	//lint:ignore bufown a and b are re-bound each cut-through iteration; the loop releases every pair right after Combine, so no path exits holding them
}

// failLocked records the first error and releases waiters.
func (t *LocalTree) failLocked(err error) {
	if t.err == nil {
		t.err = err
	}
	t.cond.Broadcast()
	t.maybeFinishLocked()
}

// maybeFinishLocked fires onDone when the tree has fully drained. On the
// failure path every buffered part is released — before buffers were
// refcounted, an aggregation error silently pinned all pending partial
// results until the tree itself was collected.
func (t *LocalTree) maybeFinishLocked() {
	if t.finished || t.inflight > 0 {
		return
	}
	if t.err == nil && (!t.closed || len(t.parts) > 1) {
		return
	}
	t.finished = true
	if t.err == nil && len(t.parts) == 1 {
		t.result = t.parts[0]
		t.parts = t.parts[:0]
	}
	for _, p := range t.parts {
		p.Release()
	}
	t.parts = nil
	if t.onDone != nil {
		// Fire on a fresh goroutine so the callback can safely use the
		// scheduler or take locks without risking re-entrancy. The result
		// reference travels with the callback.
		res, err := t.result, t.err
		cb := t.onDone
		t.onDone = nil
		go cb(res, err)
	} else {
		// Discarded tree: nobody is coming for the result.
		t.result.Release()
		t.result = nil
	}
	t.cond.Broadcast()
}

// BytesIn reports external bytes added so far.
func (t *LocalTree) BytesIn() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesIn
}

// Combines reports the number of pairwise merges executed.
func (t *LocalTree) Combines() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.combines
}

// CutThrough reports how many merges ran cut-through (without a
// scheduler round-trip between them).
func (t *LocalTree) CutThrough() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cutThrough
}
