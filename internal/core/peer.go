package core

import (
	"net"

	"netagg/internal/netem"
	"netagg/internal/wire"
)

// newPool builds the box's outbound connection pool, pacing through the
// box's NIC when one is configured.
func newPool(nic *netem.NIC) *wire.Pool {
	if nic == nil {
		return &wire.Pool{}
	}
	return &wire.Pool{Dial: func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return netem.Wrap(conn, nic), nil
	}}
}

// send routes a frame through the box's pooled connection for addr.
func (b *Box) send(addr string, m *wire.Msg) {
	if err := b.pool.Send(addr, m); err != nil {
		b.logf("box %d: send %s to %s: %v", b.cfg.ID, m.Type, addr, err)
	}
}
