package core

import "netagg/internal/wire"

// send routes a frame through the box's pooled outbound connection for
// addr. transport handles dialling (bounded, NIC-paced) and reconnect
// backoff; forwarding is best-effort, so failures are logged and the
// master's straggler recovery replans around them (§3.1).
func (b *Box) send(addr string, m *wire.Msg) {
	if err := b.pool.Send(addr, m); err != nil {
		b.logf("box %d: send %s to %s: %v", b.cfg.ID, m.Type, addr, err)
	}
}
