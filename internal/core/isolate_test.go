package core

import (
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/wire"
)

// panicAggregator panics on every combine.
type panicAggregator struct{}

func (panicAggregator) Name() string { return "boom" }

func (panicAggregator) Combine(a, b []byte) ([]byte, error) {
	panic("malicious aggregation function")
}

func TestGuardedAggregatorConvertsPanicToError(t *testing.T) {
	g := guardedAggregator{app: "x", inner: panicAggregator{}, guard: newFaultGuard(3)}
	if _, err := g.Combine(nil, nil); err == nil {
		t.Fatal("expected error from panicking combine")
	}
}

func TestFaultGuardQuarantineThreshold(t *testing.T) {
	g := newFaultGuard(2)
	if g.recordCrash("app") {
		t.Fatal("first crash should not quarantine")
	}
	if !g.recordCrash("app") {
		t.Fatal("second crash should quarantine")
	}
	if !g.Quarantined("app") {
		t.Fatal("app should be quarantined")
	}
	if g.recordCrash("app") {
		t.Fatal("already-quarantined app should not re-trigger")
	}
	if g.Quarantined("other") {
		t.Fatal("other apps are unaffected")
	}
}

// A box hosting a crashing aggregation function must report errors upstream,
// quarantine the function, and keep serving healthy applications.
func TestBoxQuarantinesCrashingApp(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("boom", panicAggregator{})
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	box, err := Start(Config{ID: 1 << 32, Registry: reg, Workers: 2, SchedSeed: 1, MaxCrashes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()
	sink := newResultSink(t)
	defer sink.close()

	parts := [][]byte{
		agg.EncodeKVs([]agg.KV{{Key: "a", Val: 1}}),
		agg.EncodeKVs([]agg.KV{{Key: "a", Val: 1}}),
	}
	// Crash the boom app until quarantined.
	for req := uint64(1); req <= 3; req++ {
		sendExpect(t, box.Addr(), "boom", req, 1)
		sendStream(t, box.Addr(), "boom", req, 0, []string{sink.addr()}, parts)
		if box.Quarantined("boom") {
			break
		}
		m := sink.wait(t)
		if m.Type != wire.TError {
			t.Fatalf("expected TError from crashing app, got %s", m.Type)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for !box.Quarantined("boom") {
		if time.Now().After(deadline) {
			t.Fatal("app not quarantined after repeated crashes")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The healthy application still works on the same box.
	sendExpect(t, box.Addr(), "wc", 99, 1)
	sendStream(t, box.Addr(), "wc", 99, 0, []string{sink.addr()}, parts)
	for {
		m := sink.wait(t)
		if m.Type == wire.TError {
			continue // late errors from the crashing app
		}
		if m.Type != wire.TResult || m.App != "wc" {
			t.Fatalf("unexpected frame %+v", m)
		}
		kvs, err := agg.DecodeKVs(m.Payload)
		if err != nil || len(kvs) != 1 || kvs[0].Val != 2 {
			t.Fatalf("healthy app broken after quarantine: %v %v", kvs, err)
		}
		return
	}
}
