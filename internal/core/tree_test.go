package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/bufpool"
)

// waitResult collects the onDone callback. It honours the ownership
// contract: the callback releases the result buffer after copying the
// bytes out for assertions.
type waitResult struct {
	ch chan struct {
		result []byte
		err    error
	}
}

func newWaitResult() *waitResult {
	return &waitResult{ch: make(chan struct {
		result []byte
		err    error
	}, 1)}
}

func (w *waitResult) done(result *bufpool.Buf, err error) {
	var p []byte
	if result != nil {
		p = append([]byte(nil), result.Bytes()...)
		result.Release()
	}
	w.ch <- struct {
		result []byte
		err    error
	}{p, err}
}

func (w *waitResult) wait(t *testing.T) ([]byte, error) {
	t.Helper()
	select {
	case r := <-w.ch:
		return r.result, r.err
	case <-time.After(5 * time.Second):
		t.Fatal("local tree did not complete")
		return nil, nil
	}
}

func TestLocalTreeAggregatesKVs(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4, Seed: 1})
	defer s.Close()
	s.Register("wc", 1)
	wr := newWaitResult()
	tree := NewLocalTree(s, "wc", agg.KVCombiner{Op: agg.OpSum}, 16, wr.done)
	for i := 0; i < 50; i++ {
		if !tree.Add(bufpool.Adopt(agg.EncodeKVs([]agg.KV{{Key: "k", Val: 1}, {Key: "x", Val: 2}}))) {
			t.Fatal("Add refused")
		}
	}
	tree.CloseInputs()
	result, err := wr.wait(t)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := agg.DecodeKVs(result)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Val != 50 || kvs[1].Val != 100 {
		t.Fatalf("unexpected result %v", kvs)
	}
	if tree.Combines() != 49 {
		t.Fatalf("combines = %d, want 49 (n-1 merges)", tree.Combines())
	}
}

// Cut-through: with parts already waiting when a combine finishes, the
// task merges in place instead of re-queueing its intermediate result
// through the scheduler. The merge count must stay exactly n-1 and the
// result must be unchanged.
func TestLocalTreeCutThrough(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Seed: 1})
	defer s.Close()
	s.Register("wc", 1)
	wr := newWaitResult()
	tree := NewLocalTree(s, "wc", agg.KVCombiner{Op: agg.OpSum}, 128, wr.done)
	const n = 40
	for i := 0; i < n; i++ {
		if !tree.Add(bufpool.Adopt(agg.EncodeKVs([]agg.KV{{Key: "k", Val: 1}}))) {
			t.Fatal("Add refused")
		}
	}
	tree.CloseInputs()
	result, err := wr.wait(t)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := agg.DecodeKVs(result)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Val != n {
		t.Fatalf("unexpected result %v", kvs)
	}
	if got := tree.Combines(); got != n-1 {
		t.Fatalf("combines = %d, want %d (n-1 merges)", got, n-1)
	}
	// One scheduler worker serialises the tasks, so every task after the
	// first finds the previous intermediate result waiting: cut-through
	// must have fired.
	if tree.CutThrough() == 0 {
		t.Fatal("expected cut-through merges with a single worker and a backlog")
	}
}

func TestLocalTreeSinglePartPassesThrough(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, Seed: 1})
	defer s.Close()
	s.Register("wc", 1)
	wr := newWaitResult()
	tree := NewLocalTree(s, "wc", agg.KVCombiner{Op: agg.OpSum}, 8, wr.done)
	payload := agg.EncodeKVs([]agg.KV{{Key: "solo", Val: 7}})
	// Adopt transfers ownership of payload's bytes to the tree, which
	// releases them after delivery (netaggdebug poisons them then), so
	// the expectation needs its own copy.
	want := append([]byte(nil), payload...)
	tree.Add(bufpool.Adopt(payload))
	tree.CloseInputs()
	result, err := wr.wait(t)
	if err != nil {
		t.Fatal(err)
	}
	if string(result) != string(want) {
		t.Fatal("single part must pass through unchanged")
	}
	if tree.Combines() != 0 {
		t.Fatal("no combine should run for a single part")
	}
}

func TestLocalTreeEmptyInputs(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, Seed: 1})
	defer s.Close()
	s.Register("wc", 1)
	wr := newWaitResult()
	tree := NewLocalTree(s, "wc", agg.KVCombiner{Op: agg.OpSum}, 8, wr.done)
	tree.CloseInputs()
	result, err := wr.wait(t)
	if err != nil || result != nil {
		t.Fatalf("empty tree should yield nil result, got %v / %v", result, err)
	}
}

func TestLocalTreeReportsCombineError(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, Seed: 1})
	defer s.Close()
	s.Register("wc", 1)
	wr := newWaitResult()
	tree := NewLocalTree(s, "wc", agg.KVCombiner{Op: agg.OpSum}, 8, wr.done)
	tree.Add(bufpool.Adopt([]byte{0xff, 0xff})) // garbage
	tree.Add(bufpool.Adopt([]byte{0xff}))
	tree.CloseInputs()
	_, err := wr.wait(t)
	if err == nil {
		t.Fatal("expected combine error")
	}
	// Further adds must be refused.
	if tree.Add(bufpool.Adopt(agg.EncodeKVs(nil))) {
		t.Fatal("Add should refuse after failure")
	}
}

func TestLocalTreeConcurrentFeeders(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 8, Seed: 1})
	defer s.Close()
	s.Register("wc", 1)
	wr := newWaitResult()
	tree := NewLocalTree(s, "wc", agg.KVCombiner{Op: agg.OpSum}, 8, wr.done)
	const feeders, perFeeder = 16, 100
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				tree.Add(bufpool.Adopt(agg.EncodeKVs([]agg.KV{{Key: "n", Val: 1}})))
			}
		}()
	}
	wg.Wait()
	tree.CloseInputs()
	result, err := wr.wait(t)
	if err != nil {
		t.Fatal(err)
	}
	kvs, _ := agg.DecodeKVs(result)
	if len(kvs) != 1 || kvs[0].Val != feeders*perFeeder {
		t.Fatalf("lost updates: %v", kvs)
	}
	if tree.BytesIn() == 0 {
		t.Fatal("BytesIn not counted")
	}
}

// Back-pressure: with a tiny pending budget and a slow aggregator, Add must
// block rather than buffer unboundedly.
func TestLocalTreeBackpressure(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Seed: 1})
	defer s.Close()
	s.Register("slow", 1)
	slow := slowAggregator{delay: 20 * time.Millisecond}
	wr := newWaitResult()
	tree := NewLocalTree(s, "slow", slow, 4, wr.done)

	start := time.Now()
	for i := 0; i < 12; i++ {
		tree.Add(bufpool.Adopt(agg.EncodeKVs([]agg.KV{{Key: "k", Val: 1}})))
	}
	// 12 adds with a budget of 4 and ~20ms per combine must take at least a
	// few combine rounds of wall time.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("adds returned too quickly (%v); back-pressure not applied", elapsed)
	}
	tree.CloseInputs()
	if _, err := wr.wait(t); err != nil {
		t.Fatal(err)
	}
}

type slowAggregator struct {
	delay time.Duration
}

func (slowAggregator) Name() string { return "slow" }

func (sa slowAggregator) Combine(a, b []byte) ([]byte, error) {
	time.Sleep(sa.delay)
	return agg.KVCombiner{Op: agg.OpSum}.Combine(a, b)
}

var _ = errors.New
