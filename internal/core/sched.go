// Package core implements the NetAgg agg box (§3.2.1): aggregation tasks
// executed by a cooperatively scheduled fixed thread pool with weighted
// fair queuing across applications (including the adaptive weight
// correction evaluated in Figs 25-26), a streaming local aggregation tree
// with back-pressure, and the network layer that receives partial results
// and forwards aggregated data towards the master.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"netagg/internal/stats"
)

// Task is one unit of aggregation computation, scheduled to run to
// completion on a pool thread (§3.2.1 "Task scheduler").
type Task func()

// Policy names the scheduler's weighting policy (§3.2.1). The constant
// set is exhaustiveness-checked by netagg-lint: every switch over Policy
// must cover each member or fail loudly.
type Policy uint8

const (
	// PolicyFixed uses the statically configured shares: w_i = s_i.
	PolicyFixed Policy = iota
	// PolicyAdaptive corrects weights by measured mean task time,
	// w_i = s_i/t̄_i, so CPU time rather than task count is shared
	// proportionally (Figs 25-26).
	PolicyAdaptive
)

// String names the policy for logs and metrics.
func (p Policy) String() string {
	switch p {
	case PolicyFixed:
		return "fixed"
	case PolicyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// SchedulerConfig configures the task scheduler.
type SchedulerConfig struct {
	// Workers is the fixed thread pool size; 0 defaults to 4.
	Workers int
	// Adaptive enables the adaptive weight correction: application weights
	// become w_i = s_i/t̄_i (share over measured mean task time) instead of
	// the fixed w_i = s_i, so CPU time rather than task count is shared
	// proportionally (§3.2.1, Figs 25-26).
	Adaptive bool
	// Seed makes the weighted random pick deterministic for tests.
	Seed int64
	// EWMAAlpha smooths the per-application task time moving average;
	// 0 defaults to 0.05.
	EWMAAlpha float64
}

type appState struct {
	name    string
	share   float64
	avg     *stats.EWMA
	queue   []Task
	head    int
	cpu     time.Duration
	started int64
	done    int64
}

func (a *appState) pending() int { return len(a.queue) - a.head }

func (a *appState) push(t Task) { a.queue = append(a.queue, t) }

func (a *appState) pop() Task {
	t := a.queue[a.head]
	a.queue[a.head] = nil
	a.head++
	if a.head > 64 && a.head*2 >= len(a.queue) {
		a.queue = append(a.queue[:0], a.queue[a.head:]...)
		a.head = 0
	}
	return t
}

// Scheduler runs aggregation tasks on a fixed pool with weighted fair
// queuing over per-application queues.
type Scheduler struct {
	cfg SchedulerConfig

	mu     sync.Mutex
	cond   *sync.Cond
	apps   map[string]*appState
	order  []*appState // registration order: keeps the seeded pick deterministic
	rng    *rand.Rand
	closed bool
	queued int

	wg sync.WaitGroup
}

// NewScheduler starts the pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.EWMAAlpha <= 0 {
		cfg.EWMAAlpha = 0.05
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Scheduler{
		cfg:  cfg,
		apps: make(map[string]*appState),
		rng:  rand.New(rand.NewSource(seed)),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Register adds an application with a target resource share s_i. Shares
// are relative; they need not sum to one.
func (s *Scheduler) Register(app string, share float64) {
	if share <= 0 {
		panic(fmt.Sprintf("core: share for %q must be > 0", app))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.apps[app]; dup {
		panic(fmt.Sprintf("core: application %q already registered", app))
	}
	st := &appState{name: app, share: share, avg: stats.NewEWMA(s.cfg.EWMAAlpha)}
	s.apps[app] = st
	s.order = append(s.order, st)
}

// Submit queues a task for an application. It returns an error if the
// application is unknown or the scheduler is closed.
func (s *Scheduler) Submit(app string, t Task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: scheduler closed")
	}
	st, ok := s.apps[app]
	if !ok {
		return fmt.Errorf("core: unknown application %q", app)
	}
	st.push(t)
	s.queued++
	obsSchedQueue.Add(1)
	s.cond.Signal()
	return nil
}

// worker pops tasks according to the weighted fair policy and runs them to
// completion.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queued == 0 {
			s.cond.Wait()
		}
		if s.closed && s.queued == 0 {
			s.mu.Unlock()
			return
		}
		st := s.pickLocked()
		task := st.pop()
		s.queued--
		obsSchedQueue.Add(-1)
		st.started++
		s.mu.Unlock()

		t0 := time.Now()
		task()
		dt := time.Since(t0)

		s.mu.Lock()
		st.avg.Observe(dt.Seconds())
		st.cpu += dt
		st.done++
		s.mu.Unlock()
	}
}

// pickLocked chooses among applications with pending tasks, with
// probability proportional to the (possibly adapted) weights (§3.2.1:
// "the scheduler offers that thread to a task of application i with
// probability w_i/Σw").
func (s *Scheduler) pickLocked() *appState {
	// Iterate s.order, not the apps map: with a seeded rng the weighted
	// pick is only reproducible if the candidate order (and the float
	// summation order of the weights) is fixed across runs.
	fallback := s.fallbackAvgLocked()
	var total float64
	for _, st := range s.order {
		if st.pending() > 0 {
			total += s.weightLocked(st, fallback)
		}
	}
	r := s.rng.Float64() * total
	var last *appState
	for _, st := range s.order {
		if st.pending() == 0 {
			continue
		}
		last = st
		r -= s.weightLocked(st, fallback)
		if r < 0 {
			return st
		}
	}
	return last // floating point remainder: the last non-empty queue
}

// fallbackAvgLocked estimates a task time for applications that have not
// completed any task yet: the mean of the measured averages, or 1 if
// nothing has been measured. Without this bootstrap, a fresh application's
// raw share would compete against time-normalised weights that are orders
// of magnitude larger and it would starve until its first task ran.
func (s *Scheduler) fallbackAvgLocked() float64 {
	if !s.cfg.Adaptive {
		return 1
	}
	sum, n := 0.0, 0
	for _, st := range s.order {
		if st.avg.Initialized() && st.avg.Value() > 0 {
			sum += st.avg.Value()
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// weightLocked returns the application's current weight: its share under
// fixed WFQ, or share divided by the measured mean task time under the
// adaptive policy (w_i ∝ s_i/t̄_i, §3.2.1).
func (s *Scheduler) weightLocked(st *appState, fallbackAvg float64) float64 {
	if !s.cfg.Adaptive {
		return st.share
	}
	avg := fallbackAvg
	if st.avg.Initialized() && st.avg.Value() > 0 {
		avg = st.avg.Value()
	}
	return st.share / avg
}

// Policy reports the weighting policy in effect.
func (s *Scheduler) Policy() Policy {
	if s.cfg.Adaptive {
		return PolicyAdaptive
	}
	return PolicyFixed
}

// CPUTime returns the accumulated task execution time of an application,
// the measurement behind Figs 25-26.
func (s *Scheduler) CPUTime(app string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.apps[app]; ok {
		return st.cpu
	}
	return 0
}

// TaskCounts returns (started, completed) task counts for an application.
func (s *Scheduler) TaskCounts(app string) (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.apps[app]; ok {
		return st.started, st.done
	}
	return 0, 0
}

// Pending reports the number of queued (not yet started) tasks.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Close drains remaining tasks and stops the pool. No Submit may follow.
func (s *Scheduler) Close() {
	s.closeWith(false)
}

// CloseNow stops the pool after the currently running tasks, dropping any
// queued tasks. Used by measurement harnesses that submit open-loop
// backlogs.
func (s *Scheduler) CloseNow() {
	s.closeWith(true)
}

func (s *Scheduler) closeWith(drop bool) {
	s.mu.Lock()
	s.closed = true
	if drop {
		for _, st := range s.order {
			st.queue = nil
			st.head = 0
		}
		obsSchedQueue.Add(int64(-s.queued))
		s.queued = 0
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
