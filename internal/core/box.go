package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"netagg/internal/agg"
	"netagg/internal/bufpool"
	"netagg/internal/netem"
	"netagg/internal/obs"
	"netagg/internal/transport"
	"netagg/internal/wire"
)

// Config configures an agg box.
type Config struct {
	// ID identifies the box cluster-wide (used as the wire Source of its
	// forwarded results). Box IDs live above 1<<32 to stay disjoint from
	// worker indices.
	ID uint64
	// Addr is the listen address (":0" picks a free port).
	Addr string
	// Workers is the scheduler thread pool size.
	Workers int
	// FixedWeights disables the adaptive WFQ correction (Fig 25's
	// baseline); the default (false) is the paper's adaptive scheduler.
	FixedWeights bool
	// Registry supplies each application's aggregation function.
	Registry *agg.Registry
	// Shares are per-application target resource shares s_i; missing
	// applications default to 1.
	Shares map[string]float64
	// NIC optionally emulates the box's access link (10 Gbps in the paper).
	NIC *netem.NIC
	// MaxPending bounds buffered parts per request (back-pressure).
	MaxPending int
	// IdleTimeout garbage-collects requests with no traffic (default 30s).
	IdleTimeout time.Duration
	// SchedSeed seeds the WFQ random pick (0 = time-based).
	SchedSeed int64
	// MaxCrashes quarantines an application after this many aggregation
	// panics (default 3); the paper leaves fault isolation to future work,
	// this is the straightforward realisation.
	MaxCrashes int
	// Context optionally bounds the box's lifetime: cancelling it is
	// equivalent to Close (nil = Background).
	Context context.Context
}

// Box is a running agg box.
type Box struct {
	cfg     Config
	srv     *transport.Server
	sched   *Scheduler
	obsNode string // trace span node label ("box:<id>")

	guard *faultGuard

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	requests map[reqKey]*boxRequest
	pool     *transport.Pool
	closed   bool

	stats BoxStats

	// flushUs is the EWMA of recent request flush latencies (first
	// partial seen → result emitted) in microseconds, exported through
	// FlushLatencyUs as a load signal for planners.
	flushUs atomic.Int64

	wg sync.WaitGroup
}

// BoxStats aggregates counters across the box's lifetime.
type BoxStats struct {
	// BytesIn counts partial-result payload bytes received.
	BytesIn int64
	// BytesOut counts forwarded payload bytes.
	BytesOut int64
	// Requests counts requests completed.
	Requests int64
	// Combines counts aggregation tasks executed.
	Combines int64
	// FanoutCopies counts per-next-hop copies made for one-to-many
	// distribution (the §5 extension).
	FanoutCopies int64
}

type reqKey struct {
	app string
	req uint64
}

// boxRequest is the per-request aggregation state.
type boxRequest struct {
	key      reqKey
	tree     *LocalTree
	route    []string // remaining hops; last entry is the master
	expected int      // direct sources; -1 until TExpect arrives
	ends     map[uint64]bool
	// nextSeq is the next expected TData sequence number per source.
	// Frames arrive in order per source over one TCP stream, so a frame
	// below the mark is a transport-replay duplicate (§3.1 at-least-once
	// delivery after a reconnect) and must be dropped, not combined
	// twice.
	nextSeq  map[uint64]uint64
	lastSeen time.Time
	closed   bool

	// firstSeen / frames / bytesIn feed the request's box-hop trace
	// span and the fan-in / flush-latency histograms (DESIGN.md §11).
	firstSeen time.Time
	frames    int
	bytesIn   int64
}

// Start launches a box.
func Start(cfg Config) (*Box, error) {
	if cfg.Registry == nil {
		return nil, errors.New("core: box requires an aggregator registry")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 64
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	b := &Box{
		cfg:     cfg,
		obsNode: fmt.Sprintf("box:%d", cfg.ID),
		ctx:     ctx,
		cancel:  cancel,
		sched: NewScheduler(SchedulerConfig{
			Workers:  cfg.Workers,
			Adaptive: !cfg.FixedWeights,
			Seed:     cfg.SchedSeed,
		}),
		guard:    newFaultGuard(cfg.MaxCrashes),
		requests: make(map[reqKey]*boxRequest),
		pool:     transport.NewPool(ctx, transport.Options{NIC: cfg.NIC}),
	}
	for _, app := range cfg.Registry.Apps() {
		share := cfg.Shares[app]
		if share <= 0 {
			share = 1
		}
		b.sched.Register(app, share)
	}
	// The box must be fully initialised before the listener goes live:
	// frames can arrive the moment Listen returns.
	srv, err := transport.Listen(ctx, cfg.Addr, b.serveFrame, transport.ServerOptions{NIC: cfg.NIC})
	if err != nil {
		cancel()
		b.pool.Close()
		b.sched.Close()
		return nil, err
	}
	b.srv = srv
	b.wg.Add(1)
	go b.janitor()
	return b, nil
}

// Addr returns the box's listen address.
func (b *Box) Addr() string { return b.srv.Addr() }

// Scheduler exposes the task scheduler for resource-share measurements
// (Figs 25-26).
func (b *Box) Scheduler() *Scheduler { return b.sched }

// QueueDepth reports the scheduler's current pending task count — the
// box's primary load signal for load-aware tree planning
// (treeplan.LoadSignal.QueueDepth).
func (b *Box) QueueDepth() int { return b.sched.Pending() }

// FlushLatencyUs reports the EWMA of recent request flush latencies in
// microseconds (0 until the first request completes) — the box's
// service-time load signal for load-aware tree planning.
func (b *Box) FlushLatencyUs() int64 { return b.flushUs.Load() }

// Stats returns a snapshot of the box counters.
func (b *Box) Stats() BoxStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close shuts the box down: cancel the context shared by the listener,
// the inbound connections, the outbound pool, and the janitor, then
// drain every goroutine.
func (b *Box) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.cancel()
	b.srv.Close()
	b.pool.Close()
	b.sched.Close()
	b.wg.Wait()
	// All readers and the scheduler are drained: discard whatever
	// requests remain so their trees give buffered parts back.
	b.mu.Lock()
	remaining := make([]*boxRequest, 0, len(b.requests))
	for _, req := range b.requests {
		remaining = append(remaining, req)
	}
	b.mu.Unlock()
	for _, req := range remaining {
		req.tree.Discard()
	}
}

// serveFrame handles one frame from an inbound persistent connection
// (shim or upstream box). It runs on the transport server's reader
// goroutine for that connection, so blocking here back-pressures that
// sender only.
//
//netagg:proto-handler box
func (b *Box) serveFrame(conn *transport.ServerConn, m *wire.Msg) {
	wire.CheckReceive(wire.RoleBox, m)
	switch m.Type {
	case wire.THeartbeat:
		// The echo goes back on the same connection carrying the box's
		// load signal, so every liveness probe doubles as a telemetry
		// sample for load-aware planning and the replanner; a reply
		// failure means the prober is gone, so drop the connection.
		if err := conn.Reply(&wire.Msg{
			Type: wire.THeartbeat, Source: b.cfg.ID, Seq: m.Seq,
			Payload: wire.EncodeLoad(b.QueueDepth(), b.FlushLatencyUs()),
		}); err != nil {
			b.logf("box %d: heartbeat reply: %v", b.cfg.ID, err)
			_ = conn.Close()
		}
	case wire.THello, wire.TData, wire.TEnd, wire.TExpect:
		if err := b.handle(m); err != nil {
			b.logf("box %d: %s: %v", b.cfg.ID, m.Type, err)
		}
	case wire.TFanout:
		if err := b.handleFanout(m); err != nil {
			b.logf("box %d: fanout: %v", b.cfg.ID, err)
		}
	case wire.TCancel:
		b.handleCancel(m)
	default:
		b.logf("box %d: unexpected frame %s", b.cfg.ID, m.Type)
	}
	// Every path above has consumed the payload (TData hands the buffer
	// to the tree via TakeBuf, leaving this a no-op).
	m.Release()
}

// handle processes one aggregation frame. It may block on back-pressure.
func (b *Box) handle(m *wire.Msg) error {
	key := reqKey{app: m.App, req: m.Req}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("box closed")
	}
	req, ok := b.requests[key]
	if !ok {
		if m.Type != wire.THello && m.Type != wire.TExpect {
			// Data for an unknown request: the request may have been
			// garbage collected after completion (duplicate delivery during
			// recovery); drop it.
			b.mu.Unlock()
			return nil
		}
		aggregator, found := b.cfg.Registry.Lookup(m.App)
		if !found {
			b.mu.Unlock()
			return fmt.Errorf("unknown application %q", m.App)
		}
		if b.guard.Quarantined(m.App) {
			b.mu.Unlock()
			return fmt.Errorf("application %q is quarantined", m.App)
		}
		req = &boxRequest{
			key:       key,
			expected:  -1,
			ends:      make(map[uint64]bool),
			nextSeq:   make(map[uint64]uint64),
			lastSeen:  time.Now(),
			firstSeen: time.Now(),
		}
		guarded := guardedAggregator{app: m.App, inner: aggregator, guard: b.guard}
		req.tree = NewLocalTree(b.sched, m.App, guarded, b.cfg.MaxPending, func(result *bufpool.Buf, err error) {
			b.finishRequest(req, result, err)
		})
		b.requests[key] = req
	}

	// The liveness refresh happens per arm, after each frame's replay
	// guard: a transport-replay duplicate must not keep a request alive
	// (or double-count anything) just by arriving.
	switch m.Type {
	case wire.THello:
		req.lastSeen = time.Now()
		route, err := wire.DecodeStrings(m.Payload)
		if err != nil {
			b.mu.Unlock()
			return err
		}
		if len(route) == 0 {
			b.mu.Unlock()
			return errors.New("empty route")
		}
		if req.route == nil {
			req.route = route
		} else if !equalRoute(req.route, route) {
			b.mu.Unlock()
			return fmt.Errorf("conflicting routes for request %d", m.Req)
		}
		b.mu.Unlock()
		return nil

	case wire.TExpect:
		req.lastSeen = time.Now()
		count, err := wire.DecodeCount(m.Payload)
		if err != nil {
			b.mu.Unlock()
			return err
		}
		req.expected = count
		b.maybeCloseInputsLocked(req)
		b.mu.Unlock()
		return nil

	case wire.TEnd:
		req.lastSeen = time.Now()
		req.ends[m.Source] = true
		b.maybeCloseInputsLocked(req)
		b.mu.Unlock()
		return nil

	case wire.TData:
		if m.Seq < req.nextSeq[m.Source] {
			// A transport-replay duplicate: the sender's replay window
			// rewrote frames the box already consumed. Dropping here is
			// what turns the replay path's at-least-once into the tree's
			// exactly-once.
			b.mu.Unlock()
			obsDupFrames.Inc()
			return nil
		}
		req.lastSeen = time.Now()
		req.nextSeq[m.Source] = m.Seq + 1
		b.stats.BytesIn += int64(len(m.Payload))
		req.frames++
		req.bytesIn += int64(len(m.Payload))
		obsFramesAgg.Inc()
		obsBoxBytesIn.Add(int64(len(m.Payload)))
		tree := req.tree
		b.mu.Unlock()
		// Add may block (back-pressure); it must run without b.mu held.
		// The frame's buffer reference moves to the tree, which releases
		// it after the part is combined (or on rejection).
		tree.Add(m.TakeBuf())
		return nil

	default:
		b.mu.Unlock()
		return fmt.Errorf("unexpected frame %s", m.Type)
	}
}

// handleCancel tears down a request whose epoch a subtree migration
// superseded: the master's new attempt carries a different wire request
// id, so this box's partial state can never contribute again. Discarding
// promptly releases the buffered partials' pool buffers instead of
// pinning them until the janitor's idle timeout. Unknown requests are a
// no-op — the cancel may race the request's own completion, which is
// fine because the master drops stale-attempt results anyway.
func (b *Box) handleCancel(m *wire.Msg) {
	key := reqKey{app: m.App, req: m.Req}
	b.mu.Lock()
	req, ok := b.requests[key]
	if ok {
		delete(b.requests, key)
	}
	b.mu.Unlock()
	if !ok {
		return
	}
	obsBoxCancelled.Inc()
	// Discard outside b.mu: it takes the tree lock and releases the
	// buffered parts (same discipline as the janitor).
	req.tree.Discard()
}

// maybeCloseInputsLocked closes the local tree when every expected source
// has delivered its end-of-stream.
func (b *Box) maybeCloseInputsLocked(req *boxRequest) {
	if req.closed || req.expected < 0 || len(req.ends) < req.expected {
		return
	}
	req.closed = true
	go req.tree.CloseInputs()
}

// finishRequest forwards the aggregated result down the route. It owns
// resultBuf's reference (handed over by the tree's onDone) and releases
// it after the sends complete on every path; the transport replay
// window takes its own references through the outbound Msg.Buf fields.
//
//netagg:owns resultBuf
func (b *Box) finishRequest(req *boxRequest, resultBuf *bufpool.Buf, err error) {
	defer resultBuf.Release()
	result := resultBuf.Bytes()
	aggDone := time.Now()
	b.mu.Lock()
	route := req.route
	delete(b.requests, req.key)
	b.stats.Requests++
	b.stats.Combines += req.tree.Combines()
	if err == nil {
		b.stats.BytesOut += int64(len(result))
	}
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return
	}
	obsBoxRequests.Inc()
	obsBoxCombines.Add(req.tree.Combines())
	obsFanIn.Observe(int64(req.frames))
	flushUs := aggDone.Sub(req.firstSeen).Microseconds()
	obsFlushLatency.Observe(flushUs)
	// Approximate EWMA (⅞ old + ⅛ new): concurrent finishes may lose an
	// update between Load and Store, which only costs one sample of
	// smoothing — fine for a load signal.
	if old := b.flushUs.Load(); old == 0 {
		b.flushUs.Store(flushUs)
	} else {
		b.flushUs.Store((old*7 + flushUs) / 8)
	}
	if err == nil {
		obsBoxBytesOut.Add(int64(len(result)))
	}
	// The box hop's trace span is recorded after the result has been
	// forwarded, so End covers the emit (see defer below).
	defer func() {
		out := int64(len(result))
		if err != nil {
			out = 0
		}
		obs.DefaultTracer.Record(req.key.req, req.key.app, obs.Span{
			Hop: "box", Node: b.obsNode,
			Start: req.firstSeen.UnixNano(), Agg: aggDone.UnixNano(), End: time.Now().UnixNano(),
			Parts: req.frames, BytesIn: req.bytesIn, BytesOut: out,
		})
	}()
	if route == nil {
		b.logf("box %d: request %d completed without a route", b.cfg.ID, req.key.req)
		return
	}
	if err != nil {
		b.sendError(req.key, route, err)
		return
	}
	if len(route) == 1 {
		// Next hop is the master: deliver the final result.
		b.send(route[0], &wire.Msg{
			Type: wire.TResult, App: req.key.app, Req: req.key.req,
			Source: b.cfg.ID, Payload: result, Buf: resultBuf,
		})
		return
	}
	// Forward to the next box, chunked under the frame limit.
	next := route[0]
	b.send(next, &wire.Msg{
		Type: wire.THello, App: req.key.app, Req: req.key.req,
		Source: b.cfg.ID, Payload: wire.EncodeStrings(route[1:]),
	})
	const chunk = 1 << 20
	for off, seq := 0, uint64(0); off < len(result) || seq == 0; seq++ {
		end := off + chunk
		if end > len(result) {
			end = len(result)
		}
		b.send(next, &wire.Msg{
			Type: wire.TData, App: req.key.app, Req: req.key.req,
			Source: b.cfg.ID, Seq: seq, Payload: result[off:end], Buf: resultBuf,
		})
		off = end
		if off >= len(result) {
			break
		}
	}
	b.send(next, &wire.Msg{
		Type: wire.TEnd, App: req.key.app, Req: req.key.req, Source: b.cfg.ID,
	})
}

// sendError reports a fatal aggregation error to the master.
func (b *Box) sendError(key reqKey, route []string, err error) {
	b.send(route[len(route)-1], &wire.Msg{
		Type: wire.TError, App: key.app, Req: key.req,
		Source: b.cfg.ID, Payload: []byte(err.Error()),
	})
}

// janitor garbage-collects idle requests (lost senders, duplicate state
// left behind by recovery).
func (b *Box) janitor() {
	defer b.wg.Done()
	tick := time.NewTicker(b.cfg.IdleTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-b.ctx.Done():
			return
		case <-tick.C:
			now := time.Now()
			var stale []*boxRequest
			b.mu.Lock()
			for key, req := range b.requests {
				if now.Sub(req.lastSeen) > b.cfg.IdleTimeout {
					delete(b.requests, key)
					stale = append(stale, req)
				}
			}
			b.mu.Unlock()
			// Discard outside b.mu: it takes the tree lock, and releasing
			// the buffered parts here is what lets an abandoned request's
			// pool buffers recycle instead of sitting pinned in its tree.
			for _, req := range stale {
				req.tree.Discard()
			}
		}
	}
}

func (b *Box) logf(format string, args ...interface{}) {
	log.Printf(format, args...)
}

func equalRoute(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
