package core

import (
	"fmt"
	"sync"
)

// The paper leaves "mechanisms for isolating faulty or malicious
// aggregation tasks to future work" (§3.2.1). This file implements the
// straightforward part: aggregation functions run inside a panic guard, and
// an application whose function keeps crashing is quarantined — the box
// stops accepting its requests and reports errors upstream instead of
// taking the whole middlebox down with it.

// faultGuard tracks per-application crash counts.
type faultGuard struct {
	mu          sync.Mutex
	maxCrashes  int
	crashes     map[string]int
	quarantined map[string]bool
}

func newFaultGuard(maxCrashes int) *faultGuard {
	if maxCrashes <= 0 {
		maxCrashes = 3
	}
	return &faultGuard{
		maxCrashes:  maxCrashes,
		crashes:     make(map[string]int),
		quarantined: make(map[string]bool),
	}
}

// Quarantined reports whether an application has been disabled.
func (g *faultGuard) Quarantined(app string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quarantined[app]
}

// recordCrash counts one crash and returns true if the application just
// crossed the quarantine threshold.
func (g *faultGuard) recordCrash(app string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.quarantined[app] {
		return false
	}
	g.crashes[app]++
	if g.crashes[app] >= g.maxCrashes {
		g.quarantined[app] = true
		return true
	}
	return false
}

// guardedAggregator wraps an application's aggregation function with panic
// isolation: a panicking Combine becomes an error on the request instead of
// crashing the box, and repeated panics quarantine the application.
type guardedAggregator struct {
	app   string
	inner interface {
		Name() string
		Combine(a, b []byte) ([]byte, error)
	}
	guard *faultGuard
}

// Name implements agg.Aggregator.
func (g guardedAggregator) Name() string { return g.inner.Name() }

// Combine implements agg.Aggregator with panic isolation.
func (g guardedAggregator) Combine(a, b []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if g.guard.recordCrash(g.app) {
				err = fmt.Errorf("core: application %q quarantined after repeated crashes (last: %v)", g.app, r)
			} else {
				err = fmt.Errorf("core: aggregation function %q panicked: %v", g.app, r)
			}
		}
	}()
	return g.inner.Combine(a, b)
}

// Quarantined reports whether the box has disabled an application's
// aggregation function after repeated crashes.
func (b *Box) Quarantined(app string) bool {
	return b.guard.Quarantined(app)
}
