package core

import (
	"errors"

	"netagg/internal/wire"
)

// handleFanout implements the box side of the one-to-many extension (§5):
// the box forwards exactly one copy of the payload towards each distinct
// next hop. Targets whose route ends here-next (a single remaining address)
// receive the inner payload as a TData frame on their own listener; longer
// routes are re-bundled into one TFanout per next-hop box.
func (b *Box) handleFanout(m *wire.Msg) error {
	f, err := wire.DecodeFanout(m.Payload)
	if err != nil {
		return err
	}
	byNext := make(map[string][][]string)
	for _, route := range f.Routes {
		if len(route) == 0 {
			return errors.New("fanout route is empty")
		}
		byNext[route[0]] = append(byNext[route[0]], route[1:])
	}
	for next, rests := range byNext {
		// A target is a route that ends at this hop.
		var onward [][]string
		deliver := false
		for _, rest := range rests {
			if len(rest) == 0 {
				deliver = true
			} else {
				onward = append(onward, rest)
			}
		}
		if deliver {
			// f.Inner borrows from m.Payload (DecodeFanout is zero-copy),
			// so the frame's buffer rides along for the replay window; the
			// caller (serveFrame) keeps the frame alive until we return.
			b.send(next, &wire.Msg{
				Type: wire.TData, App: m.App, Req: m.Req,
				Source: b.cfg.ID, Payload: f.Inner, Buf: m.Buf,
			})
		}
		if len(onward) > 0 {
			sub := wire.FanoutPayload{Inner: f.Inner, Routes: onward}
			b.send(next, &wire.Msg{
				Type: wire.TFanout, App: m.App, Req: m.Req,
				Source: b.cfg.ID, Payload: sub.Encode(),
			})
		}
	}
	b.mu.Lock()
	b.stats.FanoutCopies += int64(len(byNext))
	b.mu.Unlock()
	return nil
}
