package core

import "netagg/internal/obs"

// Registry handles for the agg-box layer (DESIGN.md §11). Resolved once
// at package init; when several boxes share a process (the in-process
// testbed) the metrics aggregate over all of them, matching the
// whole-deployment granularity of Figs 15-20.
var (
	// obsFramesAgg counts TData frames consumed by local aggregation
	// trees — the box-side view of the paper's partial-result streams.
	obsFramesAgg = obs.C("box.frames_aggregated")
	// obsBoxBytesIn / obsBoxBytesOut measure per-box traffic reduction:
	// out/in is the observed aggregation ratio α at the box tier (§4.1).
	obsBoxBytesIn  = obs.C("box.bytes_in")
	obsBoxBytesOut = obs.C("box.bytes_out")
	// obsBoxRequests counts requests completed (result emitted or error).
	obsBoxRequests = obs.C("box.requests")
	// obsBoxCombines counts aggregation tasks executed (§3.2.1).
	obsBoxCombines = obs.C("box.combines")
	// obsCutThrough counts merges executed cut-through: a combine task
	// pulled the next waiting part directly instead of re-queueing its
	// intermediate result on the scheduler (pipelined aggregation).
	obsCutThrough = obs.C("box.cutthrough_merges")
	// obsFanIn is the per-request fan-in batch size: how many partial
	// result frames one local tree consumed before emitting.
	obsFanIn = obs.H("box.fanin_parts")
	// obsFlushLatency is first-frame-to-emit latency per request in
	// microseconds — the box-tier component of job completion time
	// (Figs 15, 19).
	obsFlushLatency = obs.H("box.flush_latency_us")
	// obsSchedQueue is the scheduler backlog (queued, not yet started
	// tasks) across every scheduler in the process — the §3.2.1 WFQ
	// queue depth.
	obsSchedQueue = obs.G("box.sched_queue_depth")
	// obsBoxCancelled counts requests torn down by TCancel (subtree
	// migration superseded their epoch before they completed).
	obsBoxCancelled = obs.C("box.requests_cancelled")
	// obsDupFrames counts transport-replay duplicate TData frames dropped
	// by the per-source sequence check (at-least-once delivery made
	// exactly-once at the tree).
	obsDupFrames = obs.C("box.dup_frames_dropped")
)
