package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoundedParetoMeanMatchesEmpirical(t *testing.T) {
	rn := NewRand(11)
	for _, c := range []struct{ l, h, a float64 }{
		{10, 1000, 1.05},
		{50, 5000, 2.0},
		{1, 100, 1.0}, // the a→1 special case
	} {
		want := BoundedParetoMean(c.l, c.h, c.a)
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			sum += rn.BoundedPareto(c.l, c.h, c.a)
		}
		got := sum / n
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("l=%g h=%g a=%g: empirical mean %g vs analytical %g", c.l, c.h, c.a, got, want)
		}
	}
}

func TestBoundedParetoMinForMeanInverts(t *testing.T) {
	check := func(seed int64) bool {
		rn := NewRand(seed)
		h := 1000 + rn.Float64()*1e6
		a := 0.8 + rn.Float64()*2
		mean := h * (0.01 + 0.5*rn.Float64())
		l := BoundedParetoMinForMean(mean, h, a)
		if l <= 0 || l >= h {
			return false
		}
		back := BoundedParetoMean(l, h, a)
		return math.Abs(back-mean)/mean < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedParetoMeanPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { BoundedParetoMean(0, 1, 1) },
		func() { BoundedParetoMean(2, 1, 1) },
		func() { BoundedParetoMean(1, 2, 0) },
		func() { BoundedParetoMinForMean(0, 1, 1) },
		func() { BoundedParetoMinForMean(2, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPowerLawSEqualsOne(t *testing.T) {
	// The logarithmic special case (s == 1) must stay in range and favour
	// small values.
	rn := NewRand(12)
	small := 0
	for i := 0; i < 5000; i++ {
		k := rn.PowerLaw(1, 1000, 1)
		if k < 1 || k > 1000 {
			t.Fatalf("s=1 variate %d out of range", k)
		}
		if k <= 31 { // log-uniform: P(k ≤ 31) = log(32)/log(1001) ≈ 0.5
			small++
		}
	}
	if frac := float64(small) / 5000; frac < 0.35 || frac > 0.65 {
		t.Fatalf("s=1 distribution not log-uniform: P(k≤31) = %.2f", frac)
	}
}

func TestPowerLawDegenerate(t *testing.T) {
	rn := NewRand(13)
	if got := rn.PowerLaw(5, 5, 2); got != 5 {
		t.Fatalf("min==max should return it, got %d", got)
	}
}
