package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReservoirKeepsAllWhenUnderCapacity(t *testing.T) {
	r := NewReservoir(10, NewRand(1))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if len(r.Values()) != 5 || r.Seen() != 5 {
		t.Fatalf("got %d values, seen %d", len(r.Values()), r.Seen())
	}
}

func TestReservoirBoundsSize(t *testing.T) {
	r := NewReservoir(16, NewRand(2))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if len(r.Values()) != 16 {
		t.Fatalf("reservoir size %d, want 16", len(r.Values()))
	}
	if r.Seen() != 10000 {
		t.Fatalf("seen %d, want 10000", r.Seen())
	}
}

func TestReservoirApproximatelyUniform(t *testing.T) {
	// Sample 1000 of 10000 sequential values; mean of kept values should be
	// near the stream mean.
	r := NewReservoir(1000, NewRand(3))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	sum := 0.0
	for _, v := range r.Values() {
		sum += v
	}
	mean := sum / 1000
	if math.Abs(mean-4999.5) > 300 {
		t.Fatalf("sample mean %g too far from 4999.5", mean)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Observe(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("EWMA of constant stream = %g, want 7", e.Value())
	}
}

func TestEWMAFirstObservationSeeds(t *testing.T) {
	e := NewEWMA(0.1)
	if e.Initialized() {
		t.Fatal("fresh EWMA must not be initialized")
	}
	e.Observe(42)
	if e.Value() != 42 || !e.Initialized() {
		t.Fatalf("first observation must seed the average, got %g", e.Value())
	}
}

func TestEWMAPropertyBounded(t *testing.T) {
	// The EWMA always stays within the min/max of the observed values.
	check := func(seed int64) bool {
		rn := NewRand(seed)
		e := NewEWMA(0.01 + 0.98*rn.Float64())
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 100; i++ {
			v := rn.Float64() * 1000
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			e.Observe(v)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %g: expected panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}
