package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("split children of identical parents must match")
		}
	}
}

func TestParetoMeanAndBound(t *testing.T) {
	rn := NewRand(1)
	const alpha = 2.5
	xm := ParetoMinForMean(100, alpha)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := rn.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto variate %g below minimum %g", v, xm)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-100) > 3 {
		t.Fatalf("empirical mean %g, want ≈100", mean)
	}
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	rn := NewRand(2)
	for i := 0; i < 10000; i++ {
		v := rn.BoundedPareto(10, 1000, 1.05)
		if v < 10 || v > 1000 {
			t.Fatalf("bounded Pareto variate %g outside [10, 1000]", v)
		}
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	// A heavy-tailed shape close to 1 should put most mass near the minimum.
	rn := NewRand(3)
	below := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if rn.BoundedPareto(10, 10000, 1.05) < 100 {
			below++
		}
	}
	if frac := float64(below) / n; frac < 0.7 {
		t.Fatalf("only %.2f of variates below 10× minimum; expected heavy skew", frac)
	}
}

func TestPowerLawRangeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rn := NewRand(seed)
		min := 1 + rn.Intn(5)
		max := min + rn.Intn(100)
		s := 0.5 + 2*rn.Float64()
		for i := 0; i < 200; i++ {
			k := rn.PowerLaw(min, max, s)
			if k < min || k > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawSkew(t *testing.T) {
	// The paper's fan-in distribution: most jobs have few workers. With
	// s = 2 on [1, 1000], the bulk of samples must be small.
	rn := NewRand(4)
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if rn.PowerLaw(1, 1000, 2) <= 10 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.8 {
		t.Fatalf("only %.2f of fan-ins ≤ 10; expected power-law skew", frac)
	}
}

func TestZipfRange(t *testing.T) {
	rn := NewRand(5)
	for i := 0; i < 1000; i++ {
		k := rn.Zipf(50, 1.1)
		if k < 0 || k >= 50 {
			t.Fatalf("Zipf variate %d outside [0, 50)", k)
		}
	}
}

func TestExpMean(t *testing.T) {
	rn := NewRand(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += rn.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.2 {
		t.Fatalf("empirical mean %g, want ≈5", mean)
	}
}

func TestPanicsOnInvalidArgs(t *testing.T) {
	rn := NewRand(1)
	cases := []func(){
		func() { rn.Pareto(0, 1) },
		func() { rn.Pareto(1, 0) },
		func() { rn.BoundedPareto(1, 1, 1) },
		func() { rn.PowerLaw(0, 5, 1) },
		func() { rn.PowerLaw(5, 4, 1) },
		func() { rn.Exp(0) },
		func() { ParetoMinForMean(100, 1) },
		func() { ParetoMinForMean(-1, 2) },
		func() { rn.Zipf(0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
