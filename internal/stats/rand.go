// Package stats provides deterministic random number generation and the
// statistical distributions used by the NetAgg workload model: Pareto and
// bounded-Pareto flow sizes, power-law (Zipf-like) worker fan-in, and
// exponential inter-arrival times. All generators are seeded explicitly so
// simulations and benchmarks are reproducible run to run.
package stats

import (
	"math"
	"math/rand"
)

// Rand is a deterministic source of random variates. It wraps math/rand.Rand
// with the distributions the workload generator needs. It is not safe for
// concurrent use; create one Rand per goroutine (see Split).
type Rand struct {
	r *rand.Rand
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent Rand from this one. The derived generator's
// stream is a deterministic function of the parent state, so splitting at the
// same point in two runs yields identical children.
func (rn *Rand) Split() *Rand {
	return NewRand(rn.r.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (rn *Rand) Float64() float64 { return rn.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (rn *Rand) Intn(n int) int { return rn.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (rn *Rand) Int63() int64 { return rn.r.Int63() }

// Uint64 returns a uniform 64-bit integer.
func (rn *Rand) Uint64() uint64 { return rn.r.Uint64() }

// Perm returns a random permutation of [0, n).
func (rn *Rand) Perm(n int) []int { return rn.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (rn *Rand) Shuffle(n int, swap func(i, j int)) { rn.r.Shuffle(n, swap) }

// Exp returns an exponential variate with the given mean. It panics if
// mean <= 0.
func (rn *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp requires mean > 0")
	}
	return rn.r.ExpFloat64() * mean
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// The mean is xm*alpha/(alpha-1) for alpha > 1. It panics if xm <= 0 or
// alpha <= 0.
func (rn *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto requires xm > 0 and alpha > 0")
	}
	u := rn.r.Float64()
	// Inverse CDF: xm / (1-u)^(1/alpha). Guard u == 1 cannot happen since
	// Float64 is in [0,1), but 1-u can underflow for u extremely close to 1.
	return xm / math.Pow(1-u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) variate truncated to [xm, max]
// by inverse-CDF sampling of the truncated distribution (not rejection, so
// it always terminates). It panics unless 0 < xm < max and alpha > 0.
func (rn *Rand) BoundedPareto(xm, max, alpha float64) float64 {
	if xm <= 0 || max <= xm || alpha <= 0 {
		panic("stats: BoundedPareto requires 0 < xm < max and alpha > 0")
	}
	u := rn.r.Float64()
	la := math.Pow(xm, alpha)
	ha := math.Pow(max, alpha)
	// Inverse CDF of the truncated Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < xm {
		x = xm
	}
	if x > max {
		x = max
	}
	return x
}

// ParetoMinForMean returns the xm parameter that gives an (untruncated)
// Pareto distribution with shape alpha the requested mean. For alpha <= 1
// the mean diverges; this helper panics in that case.
func ParetoMinForMean(mean, alpha float64) float64 {
	if alpha <= 1 {
		panic("stats: Pareto mean diverges for alpha <= 1")
	}
	if mean <= 0 {
		panic("stats: mean must be > 0")
	}
	return mean * (alpha - 1) / alpha
}

// PowerLaw returns an integer in [min, max] drawn from a discrete power law
// with exponent s (probability of k proportional to k^-s). Used for the
// number of workers per job: most jobs are small, a few fan in very wide.
// It panics unless 1 <= min <= max and s > 0.
func (rn *Rand) PowerLaw(min, max int, s float64) int {
	if min < 1 || max < min || s <= 0 {
		panic("stats: PowerLaw requires 1 <= min <= max and s > 0")
	}
	if min == max {
		return min
	}
	// Continuous power-law inverse CDF on [min, max+1), floored. For s == 1
	// the integral is logarithmic, handled separately.
	u := rn.r.Float64()
	lo, hi := float64(min), float64(max+1)
	var x float64
	if math.Abs(s-1) < 1e-9 {
		x = lo * math.Pow(hi/lo, u)
	} else {
		p := 1 - s
		x = math.Pow(u*(math.Pow(hi, p)-math.Pow(lo, p))+math.Pow(lo, p), 1/p)
	}
	k := int(x)
	if k < min {
		k = min
	}
	if k > max {
		k = max
	}
	return k
}

// Zipf returns an integer in [0, n) with probability proportional to
// 1/(k+1)^s. Used by the synthetic corpus for vocabulary selection.
func (rn *Rand) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("stats: Zipf requires n > 0")
	}
	return rn.PowerLaw(1, n, s) - 1
}
