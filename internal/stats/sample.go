package stats

// Reservoir keeps a uniform random sample of at most k values from a stream
// of unknown length (Vitter's algorithm R). It is used by the simulator to
// bound memory when recording per-flow statistics for very large runs.
type Reservoir struct {
	k      int
	n      int64
	values []float64
	rn     *Rand
}

// NewReservoir returns a reservoir of capacity k drawing randomness from rn.
func NewReservoir(k int, rn *Rand) *Reservoir {
	if k <= 0 {
		panic("stats: reservoir capacity must be > 0")
	}
	return &Reservoir{k: k, values: make([]float64, 0, k), rn: rn}
}

// Add offers v to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.values) < r.k {
		r.values = append(r.values, v)
		return
	}
	j := r.rn.Int63() % r.n
	if j < int64(r.k) {
		r.values[j] = v
	}
}

// Values returns the sampled values. The returned slice is owned by the
// reservoir; callers must not modify it.
func (r *Reservoir) Values() []float64 { return r.values }

// Seen reports how many values have been offered.
func (r *Reservoir) Seen() int64 { return r.n }

// EWMA is an exponentially weighted moving average. The agg box scheduler
// uses one per application to track task execution time (§3.2.1: "Our
// implementation uses a moving average to represent the measured task
// execution time").
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weighs recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds v into the average.
func (e *EWMA) Observe(v float64) {
	if !e.init {
		e.value = v
		e.init = true
		return
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 if nothing has been observed.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one value has been observed.
func (e *EWMA) Initialized() bool { return e.init }
