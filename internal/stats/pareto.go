package stats

import "math"

// BoundedParetoMean returns the analytical mean of a Pareto(l, alpha)
// distribution truncated to [l, h].
func BoundedParetoMean(l, h, alpha float64) float64 {
	if l <= 0 || h <= l || alpha <= 0 {
		panic("stats: BoundedParetoMean requires 0 < l < h and alpha > 0")
	}
	if math.Abs(alpha-1) < 1e-9 {
		// lim a→1 of the general formula.
		return math.Log(h/l) * l * h / (h - l)
	}
	la := math.Pow(l, alpha)
	ratio := 1 - math.Pow(l/h, alpha)
	return la / ratio * alpha / (alpha - 1) *
		(1/math.Pow(l, alpha-1) - 1/math.Pow(h, alpha-1))
}

// BoundedParetoMinForMean returns the minimum l such that a Pareto(l, alpha)
// truncated to [l, h] has the requested mean. It panics if no such l exists
// (mean must lie strictly between 0 and h). The workload generator uses this
// to hit the paper's 100 KB mean flow size exactly even for heavy-tailed
// shapes (alpha ≤ 1) whose untruncated mean diverges.
func BoundedParetoMinForMean(mean, h, alpha float64) float64 {
	if mean <= 0 || mean >= h {
		panic("stats: BoundedParetoMinForMean requires 0 < mean < h")
	}
	// The truncated mean is monotone increasing in l, with mean → l·c > l as
	// l → 0 and mean → h as l → h: bisect.
	lo, hi := mean*1e-9, mean
	if BoundedParetoMean(hi, h, alpha) > mean {
		// mean lies below the value at l = mean (always true since the
		// truncated mean exceeds its minimum l), so the root is in (lo, hi].
		for i := 0; i < 200 && (hi-lo)/hi > 1e-12; i++ {
			mid := (lo + hi) / 2
			if BoundedParetoMean(mid, h, alpha) < mean {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	return (lo + hi) / 2
}
