package wire

import (
	"strings"
	"testing"
)

// allTypes maps every defined frame type constant to its Go spelling;
// the protocol table must cover each one under exactly that name, since
// protocheck matches dispatch-switch case identifiers against Rule.Name.
var allTypes = map[Type]string{
	THello:     "THello",
	TData:      "TData",
	TEnd:       "TEnd",
	TExpect:    "TExpect",
	TResult:    "TResult",
	THeartbeat: "THeartbeat",
	TRedirect:  "TRedirect",
	TAck:       "TAck",
	TError:     "TError",
	TCancel:    "TCancel",
	TFanout:    "TFanout",
}

func TestProtocolCoversAllFrameTypes(t *testing.T) {
	rules := Protocol()
	byType := make(map[Type]Rule, len(rules))
	for _, r := range rules {
		if _, dup := byType[r.Type]; dup {
			t.Errorf("duplicate rule for frame type %s", r.Type)
		}
		byType[r.Type] = r
	}
	for ft, name := range allTypes {
		r, ok := byType[ft]
		if !ok {
			t.Errorf("no protocol rule for frame type %s", ft)
			continue
		}
		if r.Name != name {
			t.Errorf("rule for %s has Name %q; want the constant name %q", ft, r.Name, name)
		}
	}
	if len(rules) != len(allTypes) {
		t.Errorf("protocol table has %d rules; want %d (one per frame type)", len(rules), len(allTypes))
	}
}

func TestProtocolRuleInvariants(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range Protocol() {
		if r.Name == "" {
			t.Errorf("rule for %s has empty Name", r.Type)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true

		// Guarded and Owner only make sense for roles that can receive
		// the frame in the first place.
		for _, g := range r.Guarded {
			if !r.MayReceive(g) {
				t.Errorf("%s: guarded role %s is not a receiver", r.Name, g)
			}
		}
		for role := range r.Owner {
			if !r.MayReceive(role) {
				t.Errorf("%s: ownership declared for non-receiver role %s", r.Name, role)
			}
		}
		// A frame someone receives must have at least one sender, and
		// vice versa (TAck is reserved: both empty).
		if (len(r.Senders) == 0) != (len(r.Receivers) == 0) {
			t.Errorf("%s: senders=%v receivers=%v; both must be empty (reserved) or both populated",
				r.Name, r.Senders, r.Receivers)
		}
	}
}

func TestParseRoleRoundTrip(t *testing.T) {
	for _, role := range []Role{RoleWorker, RoleBox, RoleMaster, RoleMonitor} {
		got, ok := ParseRole(role.String())
		if !ok || got != role {
			t.Errorf("ParseRole(%q) = %v, %v; want %v, true", role.String(), got, ok, role)
		}
	}
	if _, ok := ParseRole("gateway"); ok {
		t.Error("ParseRole accepted unknown role name")
	}
	if s := Role(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown role String() = %q; want it to surface the raw value", s)
	}
	if s := Ownership(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown ownership String() = %q; want it to surface the raw value", s)
	}
}

func TestMaySendMayReceive(t *testing.T) {
	cases := []struct {
		role    Role
		t       Type
		send    bool
		receive bool
	}{
		{RoleWorker, TData, true, false},
		{RoleBox, TData, true, true},
		{RoleMaster, TResult, false, true},
		{RoleBox, TResult, true, false},
		{RoleWorker, TRedirect, false, true},
		{RoleMaster, TRedirect, true, false},
		{RoleMonitor, THeartbeat, true, true},
		{RoleWorker, TAck, false, false},
		{RoleMaster, Type(200), false, false}, // unknown frame type
	}
	for _, c := range cases {
		if got := MaySend(c.role, c.t); got != c.send {
			t.Errorf("MaySend(%s, %s) = %v; want %v", c.role, c.t, got, c.send)
		}
		if got := MayReceive(c.role, c.t); got != c.receive {
			t.Errorf("MayReceive(%s, %s) = %v; want %v", c.role, c.t, got, c.receive)
		}
	}
}

func TestProtocolMatrixDeterministicAndComplete(t *testing.T) {
	m1 := ProtocolMatrix()
	m2 := ProtocolMatrix()
	if m1 != m2 {
		t.Fatal("ProtocolMatrix is not deterministic across calls")
	}
	for _, r := range Protocol() {
		if !strings.Contains(m1, "`"+r.Name+"`") {
			t.Errorf("matrix is missing rule %s", r.Name)
		}
	}
	lines := strings.Split(strings.TrimRight(m1, "\n"), "\n")
	if want := 2 + len(Protocol()); len(lines) != want {
		t.Errorf("matrix has %d lines; want %d (header + separator + one per rule)", len(lines), want)
	}
	if strings.Contains(m1, "ownership(") || strings.Contains(m1, "role(") {
		t.Error("matrix contains an unnamed role or ownership value")
	}
}

func TestReceiverNames(t *testing.T) {
	if got := receiverNames(TAck); got != "(none)" {
		t.Errorf("receiverNames(TAck) = %q; want \"(none)\"", got)
	}
	if got := receiverNames(TData); got != "box, master" {
		t.Errorf("receiverNames(TData) = %q; want \"box, master\"", got)
	}
	if got := receiverNames(Type(200)); got != "(none)" {
		t.Errorf("receiverNames(unknown) = %q; want \"(none)\"", got)
	}
}
