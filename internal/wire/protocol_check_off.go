//go:build !netaggdebug

package wire

// CheckReceive is the release-build no-op half of the netaggdebug
// protocol assertion (see protocol_check_debug.go): the empty body is
// inlined and erased, so the per-frame call in every dispatch loop
// costs nothing outside debug runs.
func CheckReceive(Role, *Msg) {}
