//go:build netaggdebug

package wire

import "fmt"

// CheckReceive is the runtime half of the protocol table (the static
// half is the protocheck analyzer): under the netaggdebug build tag
// every annotated dispatch loop asserts, per live frame, that its role
// is listed in the table's receiver column. A violation panics with the
// rule, so protocol skew between sender and receiver fails a debug run
// loudly instead of being logged and limped past. Release builds get
// the empty version in protocol_check_off.go, which the compiler
// erases.
func CheckReceive(role Role, m *Msg) {
	if m == nil {
		return
	}
	if !MayReceive(role, m.Type) {
		panic(fmt.Sprintf("wire: protocol violation: role %s received a %s frame (allowed receivers: %s)",
			role, m.Type, receiverNames(m.Type)))
	}
}
