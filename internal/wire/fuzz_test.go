package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// encodeStream serialises msgs back-to-back into one stream, the way the
// batched transport write path flushes them.
func encodeStream(f *testing.F, msgs ...*Msg) []byte {
	f.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame drives Reader.Read with arbitrary stream bytes. The
// decoder sits directly on the network, so it must reject any corrupt
// frame with an error — never a panic, never an over-allocation (the
// frameLen bound check) — and keep the stream position consistent
// enough to fail deterministically on the next read.
func FuzzDecodeFrame(f *testing.F) {
	// A valid single-frame stream, a truncation, and corruptions of each
	// header region seed the interesting decode paths.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(&Msg{Type: TData, App: "search", Req: 7, Source: 3, Seq: 1, Payload: []byte("part")}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 2, 9, 0})
	// The recovery/migration control frames (TExpect, TRedirect, TCancel)
	// and a fanout frame carrying nested routes.
	f.Add(encodeStream(f, &Msg{Type: TExpect, App: "search", Req: 7, Payload: EncodeCount(3)}))
	f.Add(encodeStream(f, &Msg{Type: TRedirect, App: "search", Req: 7, Payload: EncodeCount(2)}))
	f.Add(encodeStream(f, &Msg{Type: TCancel, App: "search", Req: 7}))
	fanout := &FanoutPayload{Inner: []byte("part"), Routes: [][]string{{"127.0.0.1:1", "127.0.0.1:2"}, {"127.0.0.1:3"}}}
	f.Add(encodeStream(f, &Msg{Type: TFanout, App: "search", Req: 7, Payload: fanout.Encode()}))
	// A batched stream the shape SendAll's vectored write path produces:
	// several frames of one request back-to-back in a single flush.
	f.Add(encodeStream(f,
		&Msg{Type: THello, App: "search", Req: 7, Source: 3, Payload: EncodeStrings([]string{"127.0.0.1:9"})},
		&Msg{Type: TData, App: "search", Req: 7, Source: 3, Seq: 0, Payload: []byte("p0")},
		&Msg{Type: TData, App: "search", Req: 7, Source: 3, Seq: 1, Payload: []byte("p1")},
		&Msg{Type: TEnd, App: "search", Req: 7, Source: 3, Seq: 2},
		&Msg{Type: TCancel, App: "search", Req: 7},
	))

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := NewReader(bytes.NewReader(stream))
		for {
			m, err := r.Read()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(m.App) > maxAppLen {
				t.Fatalf("decoded app name longer than maxAppLen: %d", len(m.App))
			}
			if len(m.Payload) > MaxPayload {
				t.Fatalf("decoded payload exceeds MaxPayload: %d", len(m.Payload))
			}
		}
	})
}

// FuzzEncodeDecode round-trips arbitrary messages through Writer and
// Reader: everything the writer accepts must decode back bit-identical,
// and everything outside the protocol limits must be rejected at encode
// time.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(byte(TData), "search", uint64(7), uint64(3), uint64(1), []byte("part"))
	f.Add(byte(THello), "", uint64(0), uint64(0), uint64(0), []byte{})
	f.Add(byte(TError), "mapred", uint64(1<<63), uint64(42), uint64(9), []byte("boom"))
	f.Add(byte(0), "a\x00b", uint64(1), uint64(2), uint64(3), []byte{0xff, 0x00})
	// Control and fanout frames with their real payload encodings.
	f.Add(byte(TExpect), "search", uint64(7), uint64(0), uint64(0), EncodeCount(3))
	f.Add(byte(TRedirect), "search", uint64(7), uint64(0), uint64(0), EncodeCount(2))
	f.Add(byte(TCancel), "mapred", uint64(7), uint64(0), uint64(0), []byte{})
	fanout := &FanoutPayload{Inner: []byte("part"), Routes: [][]string{{"127.0.0.1:1"}, {"127.0.0.1:2", "127.0.0.1:3"}}}
	f.Add(byte(TFanout), "search", uint64(7), uint64(0), uint64(0), fanout.Encode())

	f.Fuzz(func(t *testing.T, typ byte, app string, req, source, seq uint64, payload []byte) {
		in := &Msg{Type: Type(typ), App: app, Req: req, Source: source, Seq: seq, Payload: payload}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		err := w.Write(in)
		if len(app) > maxAppLen {
			if err == nil {
				t.Fatalf("writer accepted %d-byte app name", len(app))
			}
			return
		}
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		out, err := NewReader(bytes.NewReader(buf.Bytes())).Read()
		if err != nil {
			t.Fatalf("decode of a written frame failed: %v", err)
		}
		if out.Type != in.Type || out.App != in.App || out.Req != in.Req ||
			out.Source != in.Source || out.Seq != in.Seq || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	})
}
