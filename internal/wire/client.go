package wire

import (
	"net"
	"sync"
	"time"
)

// defaultDialTimeout bounds the default dialer. Send holds c.mu while
// dialling, so an unbounded dial to a dead peer would stall every sender
// sharing the client until the kernel gave up.
const defaultDialTimeout = 5 * time.Second

// Client is a persistent outbound frame connection. Writes are serialised;
// a failed write drops the connection so the next send re-dials. It is the
// building block of the persistent TCP connections shims and boxes maintain
// (§3.2.1 "The shim layers also maintain persistent TCP connections").
//
// The data plane proper now rides on transport.Conn, which adds reconnect
// backoff, replay, and counters on top of this behaviour; Client remains
// as the thin seam for tests and tooling that talk wire frames directly.
type Client struct {
	addr string
	dial func(addr string) (net.Conn, error)

	mu   sync.Mutex
	conn net.Conn
	w    *Writer
}

// NewClient returns a client for addr using dial (nil = plain TCP with a
// bounded dial timeout).
func NewClient(addr string, dial func(string) (net.Conn, error)) *Client {
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, defaultDialTimeout) }
	}
	return &Client{addr: addr, dial: dial}
}

// Send writes one frame, dialling on demand and retrying once after a
// reconnect.
func (c *Client) Send(m *Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			conn, err := c.dial(c.addr)
			if err != nil {
				return err
			}
			c.conn = conn
			c.w = NewWriter(conn)
		}
		//lint:ignore lockdiscipline c.mu exists to serialise this connection's writes; holding it across the write is the invariant
		err := c.w.Write(m)
		if err == nil {
			//lint:ignore lockdiscipline c.mu serialises the flush with the write above
			err = c.w.Flush()
		}
		if err == nil {
			return nil
		}
		c.conn.Close()
		c.conn = nil
		c.w = nil
		if attempt > 0 {
			return err
		}
	}
}

// SendAll writes several frames with a single flush.
func (c *Client) SendAll(msgs []*Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			conn, err := c.dial(c.addr)
			if err != nil {
				return err
			}
			c.conn = conn
			c.w = NewWriter(conn)
		}
		var err error
		for _, m := range msgs {
			//lint:ignore lockdiscipline c.mu exists to serialise this connection's writes; holding it across the batch is the invariant
			if err = c.w.Write(m); err != nil {
				break
			}
		}
		if err == nil {
			//lint:ignore lockdiscipline c.mu serialises the flush with the writes above
			err = c.w.Flush()
		}
		if err == nil {
			return nil
		}
		c.conn.Close()
		c.conn = nil
		c.w = nil
		if attempt > 0 {
			return err
		}
	}
}

// Close tears the connection down.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.w = nil
	}
}

// Pool caches one Client per destination address.
type Pool struct {
	// Dial customises connection establishment (e.g. netem pacing); nil
	// means plain TCP.
	Dial func(addr string) (net.Conn, error)

	mu      sync.Mutex
	clients map[string]*Client
}

// Get returns the pooled client for addr.
func (p *Pool) Get(addr string) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.clients == nil {
		p.clients = make(map[string]*Client)
	}
	c, ok := p.clients[addr]
	if !ok {
		c = NewClient(addr, p.Dial)
		p.clients[addr] = c
	}
	return c
}

// Send routes one frame through the pooled client for addr.
func (p *Pool) Send(addr string, m *Msg) error {
	return p.Get(addr).Send(m)
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = nil
}
