package wire

import (
	"encoding/binary"
	"io"
	"net"
)

// VectorWriter serialises batches of frames with a single vectored write
// (net.Buffers → writev on a *net.TCPConn): the headers of the whole
// batch are encoded back-to-back into one reused scratch buffer and each
// payload is appended as its own iovec element, so payload bytes flow
// from their pool buffer to the socket without passing through an
// intermediate copy. It is the batched counterpart of Writer — same
// frame format, no bufio stage — and like Writer it is not safe for
// concurrent use: the transport serialises access through one flusher
// goroutine per connection.
type VectorWriter struct {
	w io.Writer
	// hdr is the header scratch for the whole batch: every frame's
	// 4-byte length prefix plus header, back to back. Reused across
	// batches; grows to the high-water mark once.
	hdr []byte
	// ends records each frame's header end offset in hdr, so iovec
	// assembly can slice hdr after all appends are done (appending while
	// slicing would alias a stale backing array after growth).
	ends []int
	// bufs is the reused iovec assembly. WriteTo consumes the slice
	// header, so each batch re-derives it from arr.
	bufs net.Buffers
	// arr is the persistent backing array bufs is re-sliced from.
	arr [][]byte
}

// NewVectorWriter returns a VectorWriter on w. When w is a *net.TCPConn
// the batch goes out as one writev; other writers (netem-shaped
// connections, pipes) degrade to one Write per iovec element with
// identical bytes on the wire.
func NewVectorWriter(w io.Writer) *VectorWriter {
	return &VectorWriter{w: w}
}

// appendFrame validates m and encodes its length prefix and header onto
// the batch scratch.
//
//netagg:hotpath
func (v *VectorWriter) appendFrame(m *Msg) error {
	if len(m.Payload) > MaxPayload {
		return ErrTooLarge
	}
	if len(m.App) > maxAppLen {
		return errAppTooLong(m.App)
	}
	start := len(v.hdr)
	v.hdr = append(v.hdr, 0, 0, 0, 0) // length prefix, patched below
	h := len(v.hdr)
	v.hdr = append(v.hdr, byte(m.Type), byte(len(m.App)))
	v.hdr = append(v.hdr, m.App...)
	v.hdr = binary.AppendUvarint(v.hdr, m.Req)
	v.hdr = binary.AppendUvarint(v.hdr, m.Source)
	v.hdr = binary.AppendUvarint(v.hdr, m.Seq)
	v.hdr = binary.AppendUvarint(v.hdr, uint64(len(m.Payload)))
	binary.BigEndian.PutUint32(v.hdr[start:], uint32(len(v.hdr)-h+len(m.Payload)))
	v.ends = append(v.ends, len(v.hdr))
	return nil
}

// grow is the iovec array's cold capacity-miss path, kept out of the hot
// batch loop: it runs once per batch-size high-water mark, after which
// WriteBatch stays allocation-free.
//
//go:noinline
func (v *VectorWriter) grow(need int) {
	v.arr = make([][]byte, need)
}

// WriteBatch writes msgs as one vectored write and reports the bytes
// written. Headers of frames with empty payloads coalesce into their
// neighbours' header iovec, so a batch of k frames costs at most 2k
// iovec elements and usually far fewer. A short write or error leaves
// the stream corrupt mid-frame; callers must drop the connection (the
// transport re-dials and rewrites, §3.1 recovery).
//
//netagg:hotpath
func (v *VectorWriter) WriteBatch(msgs []*Msg) (int64, error) {
	v.hdr = v.hdr[:0]
	v.ends = v.ends[:0]
	for _, m := range msgs {
		if err := v.appendFrame(m); err != nil {
			return 0, err
		}
	}
	// Assemble iovecs: consecutive header segments share one element
	// until a non-empty payload forces a break.
	need := 2 * len(msgs)
	if cap(v.arr) < need {
		v.grow(need)
	}
	arr := v.arr[:cap(v.arr)]
	k := 0
	runStart := 0 // hdr offset where the current merged header run began
	for i, m := range msgs {
		if len(m.Payload) == 0 {
			continue
		}
		arr[k] = v.hdr[runStart:v.ends[i]]
		arr[k+1] = m.Payload
		k += 2
		runStart = v.ends[i]
	}
	if runStart < len(v.hdr) {
		arr[k] = v.hdr[runStart:]
		k++
	}
	v.bufs = net.Buffers(arr[:k])
	n, err := v.bufs.WriteTo(v.w)
	// Drop payload references so recycled pool buffers are not pinned by
	// the reused iovec array.
	for i := 0; i < k; i++ {
		arr[i] = nil
	}
	return n, err
}
