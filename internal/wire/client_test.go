package wire

import (
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer counts received frames and can be killed and restarted on the
// same address to exercise reconnects.
type echoServer struct {
	mu    sync.Mutex
	addr  string
	srv   *Server
	seen  []*Msg
	count int
}

func startEcho(t *testing.T, addr string) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	e := &echoServer{addr: ln.Addr().String()}
	e.srv = Serve(ln, func(_ net.Conn, m *Msg) {
		e.mu.Lock()
		e.count++
		e.seen = append(e.seen, m)
		e.mu.Unlock()
	})
	return e
}

func (e *echoServer) received() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClientSendAndReuse(t *testing.T) {
	e := startEcho(t, "127.0.0.1:0")
	defer e.srv.Close()
	c := NewClient(e.addr, nil)
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Send(&Msg{Type: TData, App: "a", Req: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return e.received() == 10 })
}

func TestClientSendAll(t *testing.T) {
	e := startEcho(t, "127.0.0.1:0")
	defer e.srv.Close()
	c := NewClient(e.addr, nil)
	defer c.Close()
	msgs := []*Msg{
		{Type: THello, App: "a", Payload: EncodeStrings([]string{"x"})},
		{Type: TData, App: "a", Payload: []byte("p")},
		{Type: TEnd, App: "a"},
	}
	if err := c.SendAll(msgs); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return e.received() == 3 })
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seen[0].Type != THello || e.seen[2].Type != TEnd {
		t.Fatalf("frame order broken: %v %v %v", e.seen[0].Type, e.seen[1].Type, e.seen[2].Type)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	e := startEcho(t, "127.0.0.1:0")
	c := NewClient(e.addr, nil)
	defer c.Close()
	if err := c.Send(&Msg{Type: TData, App: "a"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return e.received() == 1 })
	e.srv.Close()

	// Restart on the same address. Sends into the dying connection may
	// succeed locally (buffered by the kernel) or fail and trigger a
	// re-dial; keep sending until a frame actually lands on the new server.
	e2 := startEcho(t, e.addr)
	defer e2.srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for e2.received() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		c.Send(&Msg{Type: TData, App: "a"}) // errors expected while stale
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientDialFailure(t *testing.T) {
	c := NewClient("127.0.0.1:1", nil) // nothing listens on port 1
	defer c.Close()
	if err := c.Send(&Msg{Type: TData}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestPoolCachesClients(t *testing.T) {
	e := startEcho(t, "127.0.0.1:0")
	defer e.srv.Close()
	p := &Pool{}
	defer p.Close()
	if p.Get(e.addr) != p.Get(e.addr) {
		t.Fatal("pool should return the same client per address")
	}
	if err := p.Send(e.addr, &Msg{Type: TData}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return e.received() == 1 })
	p.Close()
	// A closed pool can be reused: Get re-creates clients.
	if err := p.Send(e.addr, &Msg{Type: TData}); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksConnections(t *testing.T) {
	e := startEcho(t, "127.0.0.1:0")
	c := NewClient(e.addr, nil)
	defer c.Close()
	if err := c.Send(&Msg{Type: TData}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return e.received() == 1 })
	done := make(chan struct{})
	go func() {
		e.srv.Close() // must not hang on the open client connection
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server close hung")
	}
	// Idempotent close.
	e.srv.Close()
}

func TestServerAddr(t *testing.T) {
	e := startEcho(t, "127.0.0.1:0")
	defer e.srv.Close()
	if e.srv.Addr() != e.addr {
		t.Fatalf("Addr = %s, want %s", e.srv.Addr(), e.addr)
	}
}
