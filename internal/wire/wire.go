// Package wire implements NetAgg's binary network protocol (§3.2.1
// "Network layer"): compact length-prefixed frames with varint-encoded
// headers, the Go analogue of the paper's KryoNet-based transport. Shim
// layers and agg boxes exchange Msg frames over persistent TCP connections.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Type identifies the kind of a frame.
type Type uint8

const (
	// THello opens a stream: it announces the sender's identity and role.
	THello Type = iota + 1
	// TData carries a chunk of a partial result for a request.
	TData
	// TEnd marks the end of one source's partial results for a request.
	TEnd
	// TExpect tells a box how many direct sources will feed it for a
	// request (sent by the master shim, §3.2.2 "Partial result collection").
	TExpect
	// TResult carries a fully aggregated result to the master shim.
	TResult
	// THeartbeat is the failure detector's liveness probe (§3.1).
	THeartbeat
	// TRedirect instructs a node to resend a request's results elsewhere
	// (failure/straggler recovery, §3.1).
	TRedirect
	// TAck acknowledges delivery of a result (used for dedup on failover).
	TAck
	// TError reports a fatal per-request error upstream.
	TError
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TData:
		return "data"
	case TEnd:
		return "end"
	case TExpect:
		return "expect"
	case TResult:
		return "result"
	case THeartbeat:
		return "heartbeat"
	case TRedirect:
		return "redirect"
	case TAck:
		return "ack"
	case TError:
		return "error"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Msg is one protocol frame.
type Msg struct {
	Type Type
	// App names the application whose aggregation function applies.
	App string
	// Req identifies the request (or map/reduce partition) being aggregated.
	Req uint64
	// Source identifies the sending node (worker index, box id); used for
	// counting expected sources and deduplication.
	Source uint64
	// Seq orders a source's frames within a request, for dedup on failover.
	Seq uint64
	// Payload is the serialised application data (TData/TResult), the
	// expected source count (TExpect, varint), or empty.
	Payload []byte
}

// MaxPayload is the largest accepted frame payload (16 MiB). Larger partial
// results must be chunked into multiple TData frames.
const MaxPayload = 16 << 20

// maxAppLen bounds the application name.
const maxAppLen = 255

var (
	// ErrTooLarge reports a frame exceeding MaxPayload.
	ErrTooLarge = errors.New("wire: frame payload exceeds limit")
	// ErrCorrupt reports a malformed frame.
	ErrCorrupt = errors.New("wire: corrupt frame")
)

// Writer serialises frames onto a buffered stream. Not safe for concurrent
// use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	// lenb is the length-prefix scratch. Keeping it in the struct rather
	// than on Write's stack matters: taking lenb[:] inside Write made the
	// compiler move a stack array to the heap, one allocation per frame.
	lenb [4]byte
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64*1024)}
}

// errAppTooLong is kept out of Write (and out of inlining range) so the
// fmt.Errorf boxing of the name only allocates on the error path, not in
// the hot encode path.
//
//go:noinline
func errAppTooLong(app string) error {
	return fmt.Errorf("wire: app name %q too long", app)
}

// Write serialises one frame. The caller must eventually call Flush.
//
//netagg:hotpath
func (w *Writer) Write(m *Msg) error {
	if len(m.Payload) > MaxPayload {
		return ErrTooLarge
	}
	if len(m.App) > maxAppLen {
		return errAppTooLong(m.App)
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, byte(m.Type))
	w.buf = append(w.buf, byte(len(m.App)))
	w.buf = append(w.buf, m.App...)
	w.buf = binary.AppendUvarint(w.buf, m.Req)
	w.buf = binary.AppendUvarint(w.buf, m.Source)
	w.buf = binary.AppendUvarint(w.buf, m.Seq)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(m.Payload)))

	binary.BigEndian.PutUint32(w.lenb[:], uint32(len(w.buf)+len(m.Payload)))
	if _, err := w.w.Write(w.lenb[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	_, err := w.w.Write(m.Payload)
	return err
}

// Flush drains buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader deserialises frames from a buffered stream. Not safe for
// concurrent use.
type Reader struct {
	r *bufio.Reader
	// lenb is the length-prefix scratch (see Writer.lenb: a stack array
	// sliced into io.ReadFull was moved to the heap on every frame).
	lenb [4]byte
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64*1024)}
}

// Read returns the next frame. The returned Msg owns its payload.
func (r *Reader) Read() (*Msg, error) {
	if _, err := io.ReadFull(r.r, r.lenb[:]); err != nil {
		return nil, err
	}
	frameLen := binary.BigEndian.Uint32(r.lenb[:])
	// The header is at most 2 bytes of fixed fields, maxAppLen name bytes,
	// and four varints.
	const maxHeader = 2 + maxAppLen + 4*binary.MaxVarintLen64
	if frameLen < 2 || frameLen > MaxPayload+maxHeader {
		return nil, ErrCorrupt
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return nil, err
	}

	m := &Msg{Type: Type(frame[0])}
	appLen := int(frame[1])
	rest := frame[2:]
	if appLen > len(rest) {
		return nil, ErrCorrupt
	}
	m.App = string(rest[:appLen])
	rest = rest[appLen:]

	var n int
	if m.Req, n = binary.Uvarint(rest); n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	if m.Source, n = binary.Uvarint(rest); n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	if m.Seq, n = binary.Uvarint(rest); n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	payloadLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	rest = rest[n:]
	if uint64(len(rest)) != payloadLen {
		return nil, ErrCorrupt
	}
	if payloadLen > 0 {
		m.Payload = rest
	}
	return m, nil
}

// EncodeCount encodes a source count for a TExpect payload.
func EncodeCount(n int) []byte {
	return binary.AppendUvarint(nil, uint64(n))
}

// DecodeCount decodes a TExpect payload.
func DecodeCount(p []byte) (int, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	return int(v), nil
}
