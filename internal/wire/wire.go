// Package wire implements NetAgg's binary network protocol (§3.2.1
// "Network layer"): compact length-prefixed frames with varint-encoded
// headers, the Go analogue of the paper's KryoNet-based transport. Shim
// layers and agg boxes exchange Msg frames over persistent TCP connections.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"netagg/internal/bufpool"
)

// Type identifies the kind of a frame.
type Type uint8

const (
	// THello opens a stream: it announces the sender's identity and role.
	THello Type = iota + 1
	// TData carries a chunk of a partial result for a request.
	TData
	// TEnd marks the end of one source's partial results for a request.
	TEnd
	// TExpect tells a box how many direct sources will feed it for a
	// request (sent by the master shim, §3.2.2 "Partial result collection").
	TExpect
	// TResult carries a fully aggregated result to the master shim.
	TResult
	// THeartbeat is the failure detector's liveness probe (§3.1).
	THeartbeat
	// TRedirect instructs a node to resend a request's results elsewhere
	// (failure/straggler recovery, §3.1).
	TRedirect
	// TAck acknowledges delivery of a result (used for dedup on failover).
	TAck
	// TError reports a fatal per-request error upstream.
	TError
	// TCancel tells a box to discard its local aggregation state for a
	// superseded request epoch (subtree migration, §3.1 recovery): the
	// box drains and releases buffered partials instead of waiting for
	// the janitor, and the master ignores any result the stale epoch
	// still produces via its attempt check.
	TCancel
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TData:
		return "data"
	case TEnd:
		return "end"
	case TExpect:
		return "expect"
	case TResult:
		return "result"
	case THeartbeat:
		return "heartbeat"
	case TRedirect:
		return "redirect"
	case TAck:
		return "ack"
	case TError:
		return "error"
	case TCancel:
		return "cancel"
	case TFanout:
		return "fanout"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Msg is one protocol frame.
type Msg struct {
	Type Type
	// App names the application whose aggregation function applies.
	App string
	// Req identifies the request (or map/reduce partition) being aggregated.
	Req uint64
	// Source identifies the sending node (worker index, box id); used for
	// counting expected sources and deduplication.
	Source uint64
	// Seq orders a source's frames within a request, for dedup on failover.
	Seq uint64
	// Payload is the serialised application data (TData/TResult), the
	// expected source count (TExpect, varint), or empty.
	Payload []byte
	// Buf, when non-nil, is the reference-counted pool buffer backing
	// Payload. On an inbound frame (filled by Reader) the frame owns one
	// reference: the receiver must Release it when done with Payload, or
	// Retain it to keep the bytes longer (a forgotten Release is
	// reclaimed by the GC — it costs recycling, never correctness). On
	// an outbound frame Buf is a non-owning pointer that lets the
	// transport's replay window take references of its own; senders keep
	// their reference until Send returns and must not call Release
	// through the Msg.
	Buf *bufpool.Buf
}

// Release drops an inbound frame's payload reference and detaches the
// buffer so a reused Msg cannot alias recycled bytes. Safe on frames
// with no pooled payload.
//
//netagg:hotpath
func (m *Msg) Release() {
	b := m.Buf
	if b == nil {
		return
	}
	m.Buf = nil
	m.Payload = nil
	b.Release()
}

// TakeBuf detaches the frame's payload reference and hands it to the
// caller, who becomes responsible for releasing it. A frame whose
// payload was never pooled (or a reply built by hand) yields an
// unpooled adopted wrapper so the caller's release discipline is
// uniform. Payload stays readable either way.
func (m *Msg) TakeBuf() *bufpool.Buf {
	b := m.Buf
	if b == nil {
		return bufpool.Adopt(m.Payload)
	}
	m.Buf = nil
	return b
}

// attachPayload hands b's reference to the frame: Payload aliases the
// buffer and Buf carries the obligation to Release it.
//
//netagg:owns b
func (m *Msg) attachPayload(b *bufpool.Buf) {
	m.Buf = b //netagg:owns b
	m.Payload = b.Bytes()
}

// MaxPayload is the largest accepted frame payload (16 MiB). Larger partial
// results must be chunked into multiple TData frames.
const MaxPayload = 16 << 20

// maxAppLen bounds the application name.
const maxAppLen = 255

var (
	// ErrTooLarge reports a frame exceeding MaxPayload.
	ErrTooLarge = errors.New("wire: frame payload exceeds limit")
	// ErrCorrupt reports a malformed frame.
	ErrCorrupt = errors.New("wire: corrupt frame")
)

// Writer serialises frames onto a buffered stream. Not safe for concurrent
// use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	// lenb is the length-prefix scratch. Keeping it in the struct rather
	// than on Write's stack matters: taking lenb[:] inside Write made the
	// compiler move a stack array to the heap, one allocation per frame.
	lenb [4]byte
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64*1024)}
}

// errAppTooLong is kept out of Write (and out of inlining range) so the
// fmt.Errorf boxing of the name only allocates on the error path, not in
// the hot encode path.
//
//go:noinline
func errAppTooLong(app string) error {
	return fmt.Errorf("wire: app name %q too long", app)
}

// Write serialises one frame. The caller must eventually call Flush.
//
//netagg:hotpath
func (w *Writer) Write(m *Msg) error {
	if len(m.Payload) > MaxPayload {
		return ErrTooLarge
	}
	if len(m.App) > maxAppLen {
		return errAppTooLong(m.App)
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, byte(m.Type))
	w.buf = append(w.buf, byte(len(m.App)))
	w.buf = append(w.buf, m.App...)
	w.buf = binary.AppendUvarint(w.buf, m.Req)
	w.buf = binary.AppendUvarint(w.buf, m.Source)
	w.buf = binary.AppendUvarint(w.buf, m.Seq)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(m.Payload)))

	binary.BigEndian.PutUint32(w.lenb[:], uint32(len(w.buf)+len(m.Payload)))
	if _, err := w.w.Write(w.lenb[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	_, err := w.w.Write(m.Payload)
	return err
}

// Flush drains buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader deserialises frames from a buffered stream. Not safe for
// concurrent use.
type Reader struct {
	r *bufio.Reader
	// lenb is the length-prefix scratch (see Writer.lenb: a stack array
	// sliced into io.ReadFull was moved to the heap on every frame).
	lenb [4]byte
	// apps interns application names. A connection carries frames for a
	// small fixed set of apps, so after the first frame per app the
	// map[string(bytes)] lookup hits the compiler's zero-alloc fast path
	// instead of converting the name out of the header on every frame.
	apps map[string]string
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64*1024)}
}

// maxHeader is the largest possible frame header: 2 bytes of fixed
// fields, maxAppLen name bytes, and four varints. It is comfortably
// below the bufio buffer size, so a full header can always be peeked.
const maxHeader = 2 + maxAppLen + 4*binary.MaxVarintLen64

// maxInternedApps bounds the interning map so a peer cycling through
// adversarial names cannot grow it without bound.
const maxInternedApps = 64

// internApp returns the canonical string for an app name without
// allocating on the repeat-name path.
func (r *Reader) internApp(name []byte) string {
	if len(name) == 0 {
		return ""
	}
	if s, ok := r.apps[string(name)]; ok {
		return s
	}
	return r.internAppSlow(name)
}

// internAppSlow is the interning miss path: it allocates the canonical
// string (and, once, the map). Kept out of line so its allocations stay
// outside ReadInto's //netagg:hotpath escape-gate range — after the
// first frame per app name, only the zero-alloc lookup above runs.
//
//go:noinline
func (r *Reader) internAppSlow(name []byte) string {
	s := string(name)
	if len(r.apps) < maxInternedApps {
		if r.apps == nil {
			r.apps = make(map[string]string, 8)
		}
		r.apps[s] = s
	}
	return s
}

// Read returns the next frame. The returned Msg owns its payload: see
// Msg.Buf for the release contract.
func (r *Reader) Read() (*Msg, error) {
	m := &Msg{}
	if err := r.ReadInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadInto decodes the next frame into m, overwriting every field. The
// payload lands in a pool buffer whose reference m owns (Msg.Buf); any
// buffer previously attached to m is NOT released — callers reusing a
// Msg release it first. The header is parsed in place inside the bufio
// window, so a steady-state frame costs one pool fetch and no heap
// allocations.
//
//netagg:hotpath
func (r *Reader) ReadInto(m *Msg) error {
	if _, err := io.ReadFull(r.r, r.lenb[:]); err != nil {
		return err
	}
	frameLen := int(binary.BigEndian.Uint32(r.lenb[:]))
	if frameLen < 2 || frameLen > MaxPayload+maxHeader {
		return ErrCorrupt
	}
	// Peek the header region without consuming it: the frame prefix up
	// to maxHeader bytes is guaranteed to contain the whole header.
	peek := frameLen
	if peek > maxHeader {
		peek = maxHeader
	}
	hdr, err := r.r.Peek(peek)
	if err != nil {
		// The length prefix arrived, so a clean EOF here means the peer
		// died mid-frame.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}

	m.Type = Type(hdr[0])
	appLen := int(hdr[1])
	rest := hdr[2:]
	if appLen > len(rest) {
		return ErrCorrupt
	}
	m.App = r.internApp(rest[:appLen])
	rest = rest[appLen:]

	var n int
	if m.Req, n = binary.Uvarint(rest); n <= 0 {
		return ErrCorrupt
	}
	rest = rest[n:]
	if m.Source, n = binary.Uvarint(rest); n <= 0 {
		return ErrCorrupt
	}
	rest = rest[n:]
	if m.Seq, n = binary.Uvarint(rest); n <= 0 {
		return ErrCorrupt
	}
	rest = rest[n:]
	payloadLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return ErrCorrupt
	}
	rest = rest[n:]
	headerLen := peek - len(rest)
	if payloadLen > MaxPayload || payloadLen != uint64(frameLen-headerLen) {
		return ErrCorrupt
	}
	if _, err := r.r.Discard(headerLen); err != nil {
		return err
	}
	m.Buf = nil
	m.Payload = nil
	if payloadLen > 0 {
		b := bufpool.Get(int(payloadLen))
		if _, err := io.ReadFull(r.r, b.Bytes()); err != nil {
			b.Release()
			// The header was consumed, so even a clean EOF is a truncated
			// frame, not a graceful close.
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		m.attachPayload(b)
	}
	return nil
}

// EncodeCount encodes a source count for a TExpect payload.
func EncodeCount(n int) []byte {
	return binary.AppendUvarint(nil, uint64(n))
}

// DecodeCount decodes a TExpect payload.
func DecodeCount(p []byte) (int, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

// EncodeLoad encodes a box's load signal — scheduler queue depth and
// flush-latency EWMA in microseconds — as a THeartbeat reply payload, so
// every liveness probe doubles as a telemetry sample for the replanner.
func EncodeLoad(queueDepth int, flushUs int64) []byte {
	p := binary.AppendUvarint(nil, uint64(queueDepth))
	return binary.AppendUvarint(p, uint64(flushUs))
}

// DecodeLoad decodes a heartbeat-reply load payload. An empty payload
// decodes as zero load: boxes predating the telemetry extension reply
// without one, and their heartbeats must keep working.
func DecodeLoad(p []byte) (queueDepth int, flushUs int64, err error) {
	if len(p) == 0 {
		return 0, 0, nil
	}
	q, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	f, n2 := binary.Uvarint(p[n:])
	if n2 <= 0 {
		return 0, 0, ErrCorrupt
	}
	return int(q), int64(f), nil
}
