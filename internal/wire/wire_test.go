package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msgs []*Msg) []*Msg {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	out := make([]*Msg, 0, len(msgs))
	for range msgs {
		m, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF after all frames, got %v", err)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	in := []*Msg{
		{Type: THello, App: "wc", Req: 1, Source: 2, Payload: EncodeStrings([]string{"a:1", "b:2"})},
		{Type: TData, App: "wc", Req: 1, Source: 2, Seq: 5, Payload: []byte("hello")},
		{Type: TEnd, App: "wc", Req: 1, Source: 2},
		{Type: TExpect, App: "wc", Req: 1, Payload: EncodeCount(7)},
		{Type: THeartbeat, Seq: 99},
	}
	out := roundTrip(t, in)
	for i := range in {
		if out[i].Type != in[i].Type || out[i].App != in[i].App ||
			out[i].Req != in[i].Req || out[i].Source != in[i].Source ||
			out[i].Seq != in[i].Seq || !bytes.Equal(out[i].Payload, in[i].Payload) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, in[i], out[i])
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	out := roundTrip(t, []*Msg{{Type: TResult, App: "x", Req: 3}})
	if len(out[0].Payload) != 0 {
		t.Fatal("payload should be empty")
	}
}

func TestRejectsOversizedPayload(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(&Msg{Type: TData, Payload: make([]byte, MaxPayload+1)}); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestRejectsLongAppName(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(&Msg{Type: TData, App: strings.Repeat("x", 300)}); err == nil {
		t.Fatal("expected error for long app name")
	}
}

func TestReaderRejectsCorruptFrames(t *testing.T) {
	cases := [][]byte{
		{0, 0, 0, 0},                   // zero-length frame
		{0xff, 0xff, 0xff, 0xff},       // absurd length
		{0, 0, 0, 3, byte(TData), 200}, // app length beyond frame
	}
	for i, c := range cases {
		r := NewReader(bytes.NewReader(c))
		if _, err := r.Read(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestReaderEOFMidFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(&Msg{Type: TData, App: "a", Payload: []byte("0123456789")})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Read(); err == nil {
		t.Fatal("expected error on truncated frame")
	}
}

func TestCountCodec(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 1 << 20} {
		got, err := DecodeCount(EncodeCount(n))
		if err != nil || got != n {
			t.Fatalf("count %d round trip: got %d err %v", n, got, err)
		}
	}
	if _, err := DecodeCount(nil); err == nil {
		t.Fatal("expected error for empty count")
	}
}

func TestStringsCodec(t *testing.T) {
	cases := [][]string{nil, {}, {"one"}, {"a", "", "c:9000"}}
	for _, c := range cases {
		got, err := DecodeStrings(EncodeStrings(c))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c) {
			t.Fatalf("length mismatch %v vs %v", got, c)
		}
		for i := range c {
			if got[i] != c[i] {
				t.Fatalf("mismatch %v vs %v", got, c)
			}
		}
	}
	if _, err := DecodeStrings([]byte{0xff}); err == nil {
		t.Fatal("expected error for corrupt strings payload")
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(app string, req, source, seq uint64, payload []byte) bool {
		if len(app) > maxAppLen {
			app = app[:maxAppLen]
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		in := &Msg{Type: TData, App: app, Req: req, Source: source, Seq: seq, Payload: payload}
		if err := w.Write(in); err != nil {
			return false
		}
		w.Flush()
		out, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return out.App == app && out.Req == req && out.Source == source &&
			out.Seq == seq && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A maximum-size payload with a long application name must round-trip: the
// reader's frame bound has to leave room for the full header.
func TestMaxPayloadWithLongAppName(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	app := strings.Repeat("a", maxAppLen)
	in := &Msg{Type: TData, App: app, Payload: make([]byte, MaxPayload)}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	out, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if out.App != app || len(out.Payload) != MaxPayload {
		t.Fatal("max frame round trip failed")
	}
}
