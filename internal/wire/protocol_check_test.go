//go:build netaggdebug

package wire

import (
	"strings"
	"testing"
)

// Under the netaggdebug tag CheckReceive must panic on a frame arriving
// at a role the protocol table does not list as a receiver, and stay
// silent on a legal delivery.
func TestCheckReceivePanicsOnViolation(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CheckReceive did not panic on a worker receiving TData")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "protocol violation") || !strings.Contains(msg, "worker") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	CheckReceive(RoleWorker, &Msg{Type: TData})
}

func TestCheckReceiveAllowsLegalFrames(t *testing.T) {
	CheckReceive(RoleBox, &Msg{Type: TData})
	CheckReceive(RoleMaster, &Msg{Type: TResult})
	CheckReceive(RoleWorker, &Msg{Type: TRedirect})
	CheckReceive(RoleMonitor, &Msg{Type: THeartbeat})
	CheckReceive(RoleBox, nil)
}
