package wire

import "encoding/binary"

// EncodeStrings serialises a string list (route payloads for THello).
func EncodeStrings(ss []string) []byte {
	size := binary.MaxVarintLen64
	for _, s := range ss {
		size += binary.MaxVarintLen64 + len(s)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// DecodeStrings parses a payload produced by EncodeStrings.
func DecodeStrings(p []byte) ([]string, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	p = p[n:]
	if count > uint64(len(p))+1 {
		return nil, ErrCorrupt
	}
	out := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		slen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p[n:])) < slen {
			return nil, ErrCorrupt
		}
		p = p[n:]
		out = append(out, string(p[:slen]))
		p = p[slen:]
	}
	if len(p) != 0 {
		return nil, ErrCorrupt
	}
	return out, nil
}
