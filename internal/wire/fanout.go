package wire

import "encoding/binary"

// TFanout frames implement the paper's proposed one-to-many extension (§5:
// "application-specific middleboxes can implement efficient versions of
// multicast or broadcast protocols"): a master sends a single copy of a
// payload plus per-target remaining routes; each box forwards one copy per
// distinct next hop, so a broadcast crosses every link once instead of once
// per target.
const TFanout Type = 100

// FanoutPayload is the body of a TFanout frame.
type FanoutPayload struct {
	// Inner is the application payload to deliver to every target.
	Inner []byte
	// Routes holds, per target, the remaining addresses: intermediate boxes
	// first, the target's own listener last.
	Routes [][]string
}

// Encode serialises the payload.
func (f *FanoutPayload) Encode() []byte {
	size := binary.MaxVarintLen64*2 + len(f.Inner)
	for _, r := range f.Routes {
		size += binary.MaxVarintLen64
		for _, a := range r {
			size += binary.MaxVarintLen64 + len(a)
		}
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(f.Inner)))
	buf = append(buf, f.Inner...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Routes)))
	for _, r := range f.Routes {
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		for _, a := range r {
			buf = binary.AppendUvarint(buf, uint64(len(a)))
			buf = append(buf, a...)
		}
	}
	return buf
}

// DecodeFanout parses a TFanout payload. Inner borrows from p — no
// copy is made — so the caller must keep p's backing buffer alive
// (Retain the frame's Buf) for as long as Inner is in use.
//
//netagg:borrows p
func DecodeFanout(p []byte) (*FanoutPayload, error) {
	innerLen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p[n:])) < innerLen {
		return nil, ErrCorrupt
	}
	p = p[n:]
	out := &FanoutPayload{Inner: p[:innerLen:innerLen]}
	p = p[innerLen:]
	routeCount, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	p = p[n:]
	if routeCount > uint64(len(p))+1 {
		return nil, ErrCorrupt
	}
	for i := uint64(0); i < routeCount; i++ {
		hopCount, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		p = p[n:]
		route := make([]string, 0, hopCount)
		for h := uint64(0); h < hopCount; h++ {
			alen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p[n:])) < alen {
				return nil, ErrCorrupt
			}
			p = p[n:]
			route = append(route, string(p[:alen]))
			p = p[alen:]
		}
		out.Routes = append(out.Routes, route)
	}
	if len(p) != 0 {
		return nil, ErrCorrupt
	}
	return out, nil
}
