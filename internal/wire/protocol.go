package wire

import (
	"fmt"
	"strings"
)

// This file is the declarative wire-protocol specification: one table
// (Protocol) mapping every frame type to the roles that may send and
// receive it, whether the receiving handler must pass an epoch/replay
// guard before mutating request state, and how payload-buffer ownership
// transfers at the receiver. Three consumers keep the table honest:
//
//   - the protocheck analyzer (internal/lint) statically checks every
//     //netagg:proto-handler dispatch switch against it,
//   - CheckReceive (protocol_check_debug.go) enforces the receiver
//     column on live frames under the netaggdebug build tag, and
//   - cmd/protogen renders ProtocolMatrix into DESIGN.md and fails CI
//     when the committed matrix drifts from this table.
//
// Adding a frame type therefore means adding a rule here first; the
// drift gate and the analyzer turn a forgotten handler or an undeclared
// sender into a build failure instead of a protocol-skew log line.

// Role identifies a protocol participant: which kind of node a frame
// handler runs on.
type Role uint8

const (
	// RoleWorker is the worker-side shim (shim.Worker): it streams
	// partial results towards boxes or the master and listens for
	// recovery control frames.
	RoleWorker Role = iota
	// RoleBox is the agg-box data plane (core.Box): it combines partial
	// results and forwards them down the aggregation tree.
	RoleBox
	// RoleMaster is the master-side shim's result listener
	// (shim.Master): it collects aggregated results and drives
	// straggler/failure recovery.
	RoleMaster
	// RoleMonitor is the failure detector's prober (cluster.Monitor):
	// it exchanges heartbeats with boxes.
	RoleMonitor
)

// String names the role as used in //netagg:proto-handler annotations.
func (r Role) String() string {
	switch r {
	case RoleWorker:
		return "worker"
	case RoleBox:
		return "box"
	case RoleMaster:
		return "master"
	case RoleMonitor:
		return "monitor"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// ParseRole resolves a //netagg:proto-handler role name to its Role.
func ParseRole(s string) (Role, bool) {
	switch s {
	case "worker":
		return RoleWorker, true
	case "box":
		return RoleBox, true
	case "master":
		return RoleMaster, true
	case "monitor":
		return RoleMonitor, true
	}
	return 0, false
}

// Ownership describes what a receiving handler does with a frame's
// payload buffer (the Msg.Buf reference contract).
type Ownership uint8

const (
	// OwnNone: the frame carries no payload the receiver keeps; the
	// dispatch loop's Release is the only discharge.
	OwnNone Ownership = iota
	// OwnBorrows: the receiver reads the payload only for the duration
	// of the handler call (decode-and-copy); taking the buffer
	// reference would leak it past the borrow window.
	OwnBorrows
	// OwnTakes: the receiver takes the frame's buffer reference
	// (Msg.TakeBuf or a //netagg:owns hand-off) and becomes responsible
	// for releasing it.
	OwnTakes
)

// String names the ownership mode as rendered in the protocol matrix.
func (o Ownership) String() string {
	switch o {
	case OwnNone:
		return "none"
	case OwnBorrows:
		return "borrows"
	case OwnTakes:
		return "takes"
	default:
		return fmt.Sprintf("ownership(%d)", uint8(o))
	}
}

// Rule is one frame type's protocol contract.
type Rule struct {
	// Type is the frame type the rule governs.
	Type Type
	// Name is the Go constant name ("TData"), the spelling dispatch
	// switches use and the analyzer matches case arms against.
	Name string
	// Senders lists the roles that may emit the frame.
	Senders []Role
	// Receivers lists the roles whose dispatch switches must handle the
	// frame; a frame arriving anywhere else is a protocol violation.
	Receivers []Role
	// Guarded lists the receivers that must pass an epoch/replay guard
	// (attempt check or per-source sequence check) before mutating
	// request state on this frame: at-least-once transport replay and
	// recovery resends make unguarded mutation a double-count.
	Guarded []Role
	// Owner maps each receiver to its payload-buffer ownership mode;
	// receivers absent from the map default to OwnNone.
	Owner map[Role]Ownership
	// Note is the one-line rationale rendered in the protocol matrix.
	Note string
}

// MaySend reports whether the role may emit this frame type.
func (r Rule) MaySend(role Role) bool { return containsRole(r.Senders, role) }

// MayReceive reports whether the role's dispatch switch may (and must)
// handle this frame type.
func (r Rule) MayReceive(role Role) bool { return containsRole(r.Receivers, role) }

// GuardedAt reports whether the role must epoch/replay-guard its state
// mutations for this frame type.
func (r Rule) GuardedAt(role Role) bool { return containsRole(r.Guarded, role) }

// OwnershipAt returns the role's payload ownership mode for this frame
// type (OwnNone when unlisted).
func (r Rule) OwnershipAt(role Role) Ownership { return r.Owner[role] }

func containsRole(roles []Role, role Role) bool {
	for _, r := range roles {
		if r == role {
			return true
		}
	}
	return false
}

// Protocol returns the full protocol table in frame-type order. The
// slice and its rules are freshly built on each call; callers may keep
// or reorder them freely.
func Protocol() []Rule {
	return []Rule{
		{
			Type: THello, Name: "THello",
			Senders:   []Role{RoleWorker, RoleBox},
			Receivers: []Role{RoleBox},
			Owner:     map[Role]Ownership{RoleBox: OwnBorrows},
			Note:      "opens a stream; the payload is the remaining route, decoded and copied on arrival",
		},
		{
			Type: TData, Name: "TData",
			Senders:   []Role{RoleWorker, RoleBox, RoleMaster},
			Receivers: []Role{RoleBox, RoleMaster},
			Guarded:   []Role{RoleBox, RoleMaster},
			Owner:     map[Role]Ownership{RoleBox: OwnTakes, RoleMaster: OwnTakes},
			Note:      "partial-result chunk; per-source Seq dedups transport replay (the master also sends TData for §5 fanout distribution, received by the extension's own listener)",
		},
		{
			Type: TEnd, Name: "TEnd",
			Senders:   []Role{RoleWorker, RoleBox},
			Receivers: []Role{RoleBox, RoleMaster},
			Guarded:   []Role{RoleMaster},
			Note:      "end of one source's stream; carries Seq so the master's replay guard covers it (the box's ends-set is idempotent by construction)",
		},
		{
			Type: TExpect, Name: "TExpect",
			Senders:   []Role{RoleMaster},
			Receivers: []Role{RoleBox},
			Owner:     map[Role]Ownership{RoleBox: OwnBorrows},
			Note:      "announces the direct-source count for a request (varint payload); idempotent",
		},
		{
			Type: TResult, Name: "TResult",
			Senders:   []Role{RoleBox},
			Receivers: []Role{RoleMaster},
			Guarded:   []Role{RoleMaster},
			Owner:     map[Role]Ownership{RoleMaster: OwnTakes},
			Note:      "fully aggregated result from a chain root; the master's attempt+Seq checks drop stale and replayed deliveries",
		},
		{
			Type: THeartbeat, Name: "THeartbeat",
			Senders:   []Role{RoleMonitor, RoleBox},
			Receivers: []Role{RoleBox, RoleMonitor},
			Owner:     map[Role]Ownership{RoleMonitor: OwnBorrows},
			Note:      "liveness probe (monitor→box) and its echo (box→monitor); the echo payload carries the box's load signal",
		},
		{
			Type: TRedirect, Name: "TRedirect",
			Senders:   []Role{RoleMaster},
			Receivers: []Role{RoleWorker},
			Guarded:   []Role{RoleWorker},
			Owner:     map[Role]Ownership{RoleWorker: OwnBorrows},
			Note:      "recovery resend order (varint attempt payload); the worker's lastAttempt check dedups the straggler-timer/monitor race",
		},
		{
			Type: TAck, Name: "TAck",
			Note: "reserved for result-delivery acknowledgement on failover; no sender or receiver implements it yet",
		},
		{
			Type: TError, Name: "TError",
			Senders:   []Role{RoleBox},
			Receivers: []Role{RoleMaster},
			Guarded:   []Role{RoleMaster},
			Owner:     map[Role]Ownership{RoleMaster: OwnBorrows},
			Note:      "fatal per-request aggregation error; the message is copied into the delivered Result",
		},
		{
			Type: TCancel, Name: "TCancel",
			Senders:   []Role{RoleMaster},
			Receivers: []Role{RoleBox},
			Note:      "discard a superseded epoch's partial state; idempotent (unknown requests are a no-op)",
		},
		{
			Type: TFanout, Name: "TFanout",
			Senders:   []Role{RoleMaster, RoleBox},
			Receivers: []Role{RoleBox},
			Owner:     map[Role]Ownership{RoleBox: OwnBorrows},
			Note:      "one-to-many distribution envelope (§5 extension); the box re-encodes or forwards per next hop within the call",
		},
	}
}

// RuleFor returns the protocol rule for a frame type.
func RuleFor(t Type) (Rule, bool) {
	for _, r := range Protocol() {
		if r.Type == t {
			return r, true
		}
	}
	return Rule{}, false
}

// MayReceive reports whether the role may receive the frame type. An
// unknown frame type may not be received by anyone.
func MayReceive(role Role, t Type) bool {
	r, ok := RuleFor(t)
	return ok && r.MayReceive(role)
}

// MaySend reports whether the role may emit the frame type.
func MaySend(role Role, t Type) bool {
	r, ok := RuleFor(t)
	return ok && r.MaySend(role)
}

// receiverNames renders a rule's receiver list for diagnostics
// ("(none)" for reserved frames).
func receiverNames(t Type) string {
	r, ok := RuleFor(t)
	if !ok || len(r.Receivers) == 0 {
		return "(none)"
	}
	names := make([]string, len(r.Receivers))
	for i, role := range r.Receivers {
		names[i] = role.String()
	}
	return strings.Join(names, ", ")
}

// ProtocolMatrix renders the protocol table as a GitHub-flavoured
// markdown table. cmd/protogen embeds it in DESIGN.md between the
// protogen markers and CI fails when the committed copy drifts.
func ProtocolMatrix() string {
	var b strings.Builder
	b.WriteString("| frame | sent by | received by | epoch/replay guard | payload ownership | notes |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range Protocol() {
		fmt.Fprintf(&b, "| `%s` (%s) | %s | %s | %s | %s | %s |\n",
			r.Name, r.Type,
			roleList(r.Senders), roleList(r.Receivers), roleList(r.Guarded),
			ownerList(r), r.Note)
	}
	return b.String()
}

// roleList renders a role slice for the matrix ("—" when empty).
func roleList(roles []Role) string {
	if len(roles) == 0 {
		return "—"
	}
	names := make([]string, len(roles))
	for i, r := range roles {
		names[i] = r.String()
	}
	return strings.Join(names, ", ")
}

// ownerList renders a rule's per-receiver ownership column in receiver
// order, so the matrix is deterministic.
func ownerList(r Rule) string {
	if len(r.Receivers) == 0 {
		return "—"
	}
	parts := make([]string, len(r.Receivers))
	for i, role := range r.Receivers {
		parts[i] = role.String() + " " + r.OwnershipAt(role).String()
	}
	return strings.Join(parts, ", ")
}
