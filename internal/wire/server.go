package wire

import (
	"net"
	"sync"
)

// Server accepts frame connections and dispatches each received Msg to a
// handler. It tracks accepted connections so Close reliably unblocks the
// per-connection readers — every NetAgg component (boxes, shims, app
// servers) needs exactly this shape.
type Server struct {
	ln      net.Listener
	handler func(net.Conn, *Msg)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts dispatching frames from ln to handler. The handler runs on
// the connection's reader goroutine; if it blocks, that connection's reads
// stop (back-pressure). The handler may write responses on the conn, but
// must serialise its own writes.
func Serve(ln net.Listener, handler func(net.Conn, *Msg)) *Server {
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every open connection, and waits for the
// reader goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := NewReader(conn)
	for {
		m, err := r.Read()
		if err != nil {
			return
		}
		s.handler(conn, m)
	}
}
