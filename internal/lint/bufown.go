package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Bufown is the payload-buffer ownership analyzer. internal/bufpool
// hands out reference-counted buffers, and every reference acquired
// from the pool carries an obligation: it must be released exactly
// once, or explicitly handed to another owner. A forgotten Release
// degrades to garbage collection (the pool never recycles the buffer),
// a double Release recycles a buffer that is still in use. Both are
// invisible to the race detector because they are pure protocol bugs,
// so the protocol is checked statically here.
//
// The analyzer tracks local variables bound to reference-acquiring
// expressions through a path-sensitive walk of each function body:
//
//   - bufpool.Get(...) and bufpool.Adopt(...) calls,
//   - x.Retain() method calls (any receiver), and
//   - calls to same-package functions returning *bufpool.Buf
//
// each bind an OWNED reference. On every path out of the function an
// owned reference must have been discharged:
//
//   - v.Release() releases it,
//   - returning v transfers it to the caller,
//   - passing v to a same-package function whose parameter is
//     annotated //netagg:owns <param> transfers it to the callee,
//   - a store, channel send, or goroutine hand-off on a line carrying
//     a //netagg:owns <var> marker transfers it to the new home.
//
// A path on which an owned reference is neither released nor handed
// off is reported at the return (or scope end) that leaks it; a path
// that releases twice is reported at the second Release.
//
// Annotation grammar (doc comments on the owning function):
//
//	//netagg:owns <param>     the function takes over <param>'s reference
//	//netagg:borrows <param>  the function may read <param> only for the
//	                          duration of the call: storing it into a
//	                          field, sending it on a channel, or handing
//	                          it to a goroutine is reported
//
// and, trailing a statement (or standalone on the line above it):
//
//	//netagg:owns <var>            sanctions a store/send/go hand-off
//	//netagg:bufown-allow <reason> suppresses bufown findings on the line
//
// Scope: non-test files that import netagg/internal/bufpool or
// netagg/internal/wire (the wire layer re-exports pool references as
// Msg.Buf), excluding the bufpool package itself, whose internals
// manipulate refcounts directly.
//
// Known false negatives, by design (documented in DESIGN.md §13):
// cross-package calls are opaque (msg.TakeBuf() from another package is
// not an acquire), references stored into local containers or acquired
// inline as call arguments are assumed transferred, closures other than
// `defer func() { v.Release() }()` are analyzed as separate scopes and
// do not discharge captured variables, and loop bodies are analyzed for
// one iteration in isolation. The analyzer errs towards silence: it
// reports only what it can prove on the syntax it understands.
type Bufown struct{}

// Name implements Analyzer.
func (Bufown) Name() string { return "bufown" }

// Doc implements Analyzer.
func (Bufown) Doc() string {
	return "pool buffer references must be released exactly once or explicitly handed off"
}

// Check implements Analyzer; Bufown is package-scoped, so the per-file
// hook is a no-op.
func (Bufown) Check(f *File, report func(pos token.Pos, msg string)) {}

const (
	bufpoolPath = "netagg/internal/bufpool"
	wirePath    = "netagg/internal/wire"
)

// CheckPackage implements PackageAnalyzer.
func (Bufown) CheckPackage(files []*File, report func(pos token.Pos, msg string)) {
	var src []*File
	for _, f := range files {
		if f.Test || f.PkgDir == "bufpool" {
			continue
		}
		src = append(src, f)
	}
	if len(src) == 0 {
		return
	}
	inScope := false
	for _, f := range src {
		if importName(f.AST, bufpoolPath) != "" || importName(f.AST, wirePath) != "" {
			inScope = true
		}
	}
	if !inScope {
		return
	}

	p := buildPackage(src)
	bo := &bufownPkg{
		pkg:        p,
		paramAnns:  make(map[string]map[string]string),
		returnsBuf: make(map[string]bool),
		lines:      make(map[*File]bufownLines),
	}
	for key, fs := range p.funcs {
		bo.paramAnns[key] = bufownParamAnns(fs.decl)
		bo.returnsBuf[key] = returnsBufPtr(fs)
	}

	keys := make([]string, 0, len(p.funcs))
	for key := range p.funcs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fs := p.funcs[key]
		f := fs.file
		if importName(f.AST, bufpoolPath) == "" && importName(f.AST, wirePath) == "" {
			continue
		}
		if fs.decl.Body == nil {
			continue
		}
		w := &bufownWalk{
			bo:          bo,
			fs:          fs,
			f:           f,
			bufpoolName: importName(f.AST, bufpoolPath),
			lines:       bo.lineDirectives(f),
			report:      report,
		}
		w.checkFunc()
	}

	// A //netagg:bufown-allow that suppressed nothing is stale: it claims
	// an audited violation that no longer exists, so its recorded reason
	// misdocuments the line. Only files the walk actually analyzed are
	// scanned (bo.lines is populated per analyzed file).
	checked := make([]*File, 0, len(bo.lines))
	for f := range bo.lines {
		checked = append(checked, f)
	}
	sort.Slice(checked, func(i, j int) bool { return checked[i].Path < checked[j].Path })
	for _, f := range checked {
		allow := bo.lines[f].allow
		lines := make([]int, 0, len(allow))
		for line := range allow {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		seen := make(map[*bufownAllow]bool)
		for _, line := range lines {
			a := allow[line]
			if seen[a] || a.used {
				continue
			}
			seen[a] = true
			report(a.pos, "//netagg:bufown-allow suppresses nothing: the finding it audited is gone, so the directive (and its reason) should go too")
		}
	}
}

// bufownPkg is the per-package analysis context.
type bufownPkg struct {
	pkg *pkgSummary
	// paramAnns maps a function key to its parameters' doc-comment
	// annotations: "owns" or "borrows".
	paramAnns map[string]map[string]string
	// returnsBuf marks functions whose results include *bufpool.Buf:
	// calling them acquires a reference.
	returnsBuf map[string]bool
	lines      map[*File]bufownLines
}

// bufownLines indexes the statement-level directives of one file.
type bufownLines struct {
	// owns marks lines whose stores/sends/discards are declared
	// ownership hand-offs.
	owns map[int]bool
	// allow maps lines whose bufown findings are suppressed with a
	// recorded reason to the suppressing directive (shared between the
	// comment's own line and the next for standalone comments, so usage
	// marks land on the one directive).
	allow map[int]*bufownAllow
}

// bufownAllow is one //netagg:bufown-allow comment, tracked so
// suppressions that no longer suppress anything are reported as stale.
type bufownAllow struct {
	pos  token.Pos
	used bool
}

// lineDirectives scans (once per file) for trailing //netagg:owns and
// //netagg:bufown-allow comments. A standalone comment applies to the
// next code line, a trailing comment to its own line — the same
// convention as //lint:ignore.
func (bo *bufownPkg) lineDirectives(f *File) bufownLines {
	if l, ok := bo.lines[f]; ok {
		return l
	}
	l := bufownLines{owns: make(map[int]bool), allow: make(map[int]*bufownAllow)}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			pos := f.Fset.Position(c.Pos())
			switch {
			case strings.HasPrefix(text, "netagg:owns"):
				l.owns[pos.Line] = true
				if f.standalone(pos) {
					l.owns[pos.Line+1] = true
				}
			case strings.HasPrefix(text, "netagg:bufown-allow"):
				if len(strings.Fields(text)) < 2 {
					continue // a suppression without a reason is ignored
				}
				a := &bufownAllow{pos: c.Pos()}
				l.allow[pos.Line] = a
				if f.standalone(pos) {
					l.allow[pos.Line+1] = a
				}
			}
		}
	}
	bo.lines[f] = l
	return l
}

// bufownParamAnns parses //netagg:owns and //netagg:borrows parameter
// annotations from a function's doc comment.
func bufownParamAnns(decl *ast.FuncDecl) map[string]string {
	anns := make(map[string]string)
	if decl.Doc == nil {
		return anns
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for _, kind := range []string{"owns", "borrows"} {
			prefix := "netagg:" + kind + " "
			if strings.HasPrefix(text, prefix) {
				fields := strings.Fields(strings.TrimPrefix(text, prefix))
				if len(fields) > 0 {
					anns[fields[0]] = kind
				}
			}
		}
	}
	return anns
}

// returnsBufPtr reports whether the function's results include a
// *bufpool.Buf (resolved against its own file's import name).
func returnsBufPtr(fs *funcSummary) bool {
	results := fs.decl.Type.Results
	if results == nil {
		return false
	}
	name := importName(fs.file.AST, bufpoolPath)
	if name == "" {
		return false
	}
	for _, field := range results.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		if sel, ok := star.X.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == name && sel.Sel.Name == "Buf" {
				return true
			}
		}
	}
	return false
}

// paramNames returns the function's parameter names in declaration
// order, expanding grouped parameters.
func paramNames(decl *ast.FuncDecl) []string {
	var names []string
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			names = append(names, "_")
			continue
		}
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// Ownership states for one tracked variable.
type ownState int

const (
	// stOwned: holds a live reference that this function must discharge.
	stOwned ownState = iota
	// stMaybe: owned on some control-flow paths into this point, already
	// discharged on others. A later Release is legal (it settles the
	// owned paths); reaching a function exit is a partial leak.
	stMaybe
	// stDone: released, or ownership transferred elsewhere.
	stDone
	// stBorrowed: a //netagg:borrows parameter — never this function's
	// to release, store, or hand off.
	stBorrowed
)

// ownVar is the abstract state of one tracked variable.
type ownVar struct {
	state ownState
	pos   token.Pos // acquisition site
	what  string    // acquiring expression, for diagnostics
}

// ownEnv maps variable names to their ownership state on the current
// path. Branches walk clones and merge.
type ownEnv map[string]*ownVar

func (e ownEnv) clone() ownEnv {
	c := make(ownEnv, len(e))
	for k, v := range e {
		cp := *v
		c[k] = &cp
	}
	return c
}

// mergeInto folds the surviving branch environments into env. Vars
// present in only some survivors (bound inside a branch and leaked past
// our block tracking) are dropped.
func mergeInto(env ownEnv, survivors []ownEnv) {
	for k := range env {
		delete(env, k)
	}
	if len(survivors) == 0 {
		return
	}
	for name, v := range survivors[0] {
		cp := *v
		env[name] = &cp
	}
	for _, s := range survivors[1:] {
		for name, v := range env {
			o, ok := s[name]
			if !ok {
				delete(env, name)
				continue
			}
			v.state = mergeState(v.state, o.state)
		}
	}
}

func mergeState(a, b ownState) ownState {
	if a == b {
		return a
	}
	if a == stBorrowed || b == stBorrowed {
		return stBorrowed
	}
	// Any disagreement between owned and done is "owned on some paths".
	return stMaybe
}

// bufownWalk checks one function body.
type bufownWalk struct {
	bo          *bufownPkg
	fs          *funcSummary
	f           *File
	bufpoolName string // this file's import name for bufpool ("" if none)
	lines       bufownLines
	report      func(pos token.Pos, msg string)
}

func (w *bufownWalk) line(p token.Pos) int { return w.f.Fset.Position(p).Line }

// emit reports unless the line carries a //netagg:bufown-allow.
func (w *bufownWalk) emit(pos token.Pos, msg string) {
	if a := w.lines.allow[w.line(pos)]; a != nil {
		a.used = true
		return
	}
	w.report(pos, msg)
}

// ownsLine reports whether the statement's line sanctions hand-offs.
func (w *bufownWalk) ownsLine(pos token.Pos) bool { return w.lines.owns[w.line(pos)] }

func (w *bufownWalk) checkFunc() {
	env := make(ownEnv)
	anns := w.bo.paramAnns[w.fs.key]
	for _, name := range paramNames(w.fs.decl) {
		switch anns[name] {
		case "owns":
			env[name] = &ownVar{state: stOwned, pos: w.fs.decl.Pos(), what: "//netagg:owns parameter"}
		case "borrows":
			env[name] = &ownVar{state: stBorrowed, pos: w.fs.decl.Pos(), what: "//netagg:borrows parameter"}
		}
	}
	if !w.walkStmts(w.fs.decl.Body.List, env) {
		w.checkExit(env, w.fs.decl.Body.Rbrace)
	}
}

// checkExit reports every still-owned reference on a path leaving the
// function at pos.
func (w *bufownWalk) checkExit(env ownEnv, pos token.Pos) {
	names := make([]string, 0, len(env))
	for name := range env {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := env[name]
		switch v.state {
		case stOwned:
			w.emit(pos, fmt.Sprintf("reference %q (%s, line %d) leaks on this path: Release it, return it, or hand it off with //netagg:owns", name, v.what, w.line(v.pos)))
		case stMaybe:
			w.emit(pos, fmt.Sprintf("reference %q (%s, line %d) is released on some paths but not this one", name, v.what, w.line(v.pos)))
		case stDone, stBorrowed:
			// Discharged, or never ours to release.
		}
	}
}

// walkStmts runs the statements in order; a true result means the path
// terminated (return, panic, branch) and the rest is unreachable.
func (w *bufownWalk) walkStmts(stmts []ast.Stmt, env ownEnv) bool {
	for _, s := range stmts {
		if w.walkStmt(s, env) {
			return true
		}
	}
	return false
}

// walkBlock walks a nested scope: variables first bound inside it that
// still carry an obligation when it ends have leaked.
func (w *bufownWalk) walkBlock(b *ast.BlockStmt, env ownEnv) bool {
	before := make(map[string]bool, len(env))
	for k := range env {
		before[k] = true
	}
	term := w.walkStmts(b.List, env)
	for name, v := range env {
		if before[name] {
			continue
		}
		if !term && (v.state == stOwned || v.state == stMaybe) {
			w.emit(b.Rbrace, fmt.Sprintf("reference %q (%s, line %d) goes out of scope without Release", name, v.what, w.line(v.pos)))
		}
		delete(env, name)
	}
	return term
}

func (w *bufownWalk) walkStmt(stmt ast.Stmt, env ownEnv) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		w.assign(s, env)
	case *ast.DeclStmt:
		w.declStmt(s, env)
	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			return true
		}
		w.exprStmt(s.X, env)
	case *ast.SendStmt:
		w.handOff(s.Pos(), s.Value, env, "sent on a channel")
	case *ast.GoStmt:
		w.handOff(s.Pos(), s.Call, env, "captured by a goroutine")
	case *ast.DeferStmt:
		w.deferStmt(s, env)
	case *ast.ReturnStmt:
		w.returnStmt(s, env)
		return true
	case *ast.IfStmt:
		return w.ifStmt(s, env)
	case *ast.ForStmt:
		body := env.clone()
		if s.Init != nil {
			w.walkStmt(s.Init, body)
		}
		w.walkBlock(s.Body, body)
	case *ast.RangeStmt:
		w.walkBlock(s.Body, env.clone())
	case *ast.SwitchStmt:
		return w.clauses(s.Init, s.Body, env, true)
	case *ast.TypeSwitchStmt:
		return w.clauses(s.Init, s.Body, env, true)
	case *ast.SelectStmt:
		return w.clauses(nil, s.Body, env, false)
	case *ast.BlockStmt:
		return w.walkBlock(s, env)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, env)
	case *ast.BranchStmt:
		// break/continue/goto/fallthrough abandon this path; the target
		// is analyzed via its own fall-through edge.
		return true
	}
	return false
}

// declStmt handles `var v = <acquire>` like a short assignment.
func (w *bufownWalk) declStmt(s *ast.DeclStmt, env ownEnv) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
			continue
		}
		w.bind(vs.Names[0], vs.Values[0], env)
	}
}

func (w *bufownWalk) assign(s *ast.AssignStmt, env ownEnv) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			w.bind(id, s.Rhs[0], env)
			return
		}
	}
	// Complex or multi-value assignment: rebinding a name over a live
	// reference loses it, and a store into a field/element is a hand-off
	// that needs a marker.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v := env[id.Name]; v != nil && v.state == stOwned {
				w.emit(s.Pos(), fmt.Sprintf("%q is reassigned while still owning its reference (%s, line %d)", id.Name, v.what, w.line(v.pos)))
			}
			delete(env, id.Name)
		}
	}
	for _, rhs := range s.Rhs {
		w.storeCheck(s.Pos(), rhs, env, "stored")
	}
}

// bind handles `name := rhs` / `name = rhs`.
func (w *bufownWalk) bind(id *ast.Ident, rhs ast.Expr, env ownEnv) {
	name := id.Name
	if desc, ok := w.acquireDesc(rhs); ok {
		if name == "_" {
			if !w.ownsLine(id.Pos()) {
				w.emit(id.Pos(), fmt.Sprintf("result of %s is discarded: the reference can never be released (mark the hand-off with //netagg:owns if intended)", desc))
			}
			return
		}
		if v := env[name]; v != nil && v.state == stOwned {
			w.emit(id.Pos(), fmt.Sprintf("%q is rebound while still owning its reference (%s, line %d)", name, v.what, w.line(v.pos)))
		}
		env[name] = &ownVar{state: stOwned, pos: id.Pos(), what: desc}
		return
	}
	if src, ok := rhs.(*ast.Ident); ok {
		if v := env[src.Name]; v != nil {
			if name == "_" || name == src.Name {
				return
			}
			cp := *v
			env[name] = &cp
			if v.state == stOwned || v.state == stMaybe {
				// Linear transfer: the obligation moves with the alias.
				v.state = stDone
			}
			return
		}
	}
	// Arbitrary RHS: rebinding over a live reference loses it; tracked
	// vars sunk into a locally-bound container transfer silently (the
	// container's fate is out of reach, see the false-negative notes).
	if v := env[name]; v != nil && v.state == stOwned {
		w.emit(id.Pos(), fmt.Sprintf("%q is reassigned while still owning its reference (%s, line %d)", name, v.what, w.line(v.pos)))
		delete(env, name)
	}
	for _, tracked := range w.storedVars(rhs, env) {
		v := env[tracked]
		if v.state == stOwned || v.state == stMaybe {
			v.state = stDone
		}
	}
	w.callEffects(rhs, env)
}

// storeCheck flags tracked variables sunk into a non-local destination
// (field, element) without an ownership marker; borrowed references are
// flagged unconditionally.
func (w *bufownWalk) storeCheck(pos token.Pos, rhs ast.Expr, env ownEnv, how string) {
	for _, name := range w.storedVars(rhs, env) {
		v := env[name]
		switch v.state {
		case stBorrowed:
			w.emit(pos, fmt.Sprintf("borrowed %q escapes (%s): the caller owns its backing buffer only for this call", name, how))
		case stOwned, stMaybe:
			if !w.ownsLine(pos) {
				w.emit(pos, fmt.Sprintf("owned reference %q is %s without an ownership marker: annotate the line with //netagg:owns %s", name, how, name))
			}
			v.state = stDone
		case stDone:
			// Already discharged; storing a dead handle is harmless here.
		}
	}
	w.callEffects(rhs, env)
}

// handOff checks channel sends and goroutine launches: both move the
// reference beyond this function's control flow.
func (w *bufownWalk) handOff(pos token.Pos, e ast.Expr, env ownEnv, how string) {
	names := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && env[id.Name] != nil {
			names[id.Name] = true
		}
		return true
	})
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		v := env[name]
		switch v.state {
		case stBorrowed:
			w.emit(pos, fmt.Sprintf("borrowed %q is %s: the caller owns its backing buffer only for this call", name, how))
		case stOwned, stMaybe:
			if !w.ownsLine(pos) {
				w.emit(pos, fmt.Sprintf("owned reference %q is %s without an ownership marker: annotate the line with //netagg:owns %s", name, how, name))
			}
			v.state = stDone
		case stDone:
			// Already discharged; the hand-off carries a dead handle.
		}
	}
}

func (w *bufownWalk) exprStmt(e ast.Expr, env ownEnv) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	if name, ok := releaseReceiver(call); ok {
		v := env[name]
		if v == nil {
			return
		}
		switch v.state {
		case stOwned, stMaybe:
			v.state = stDone
		case stDone:
			w.emit(call.Pos(), fmt.Sprintf("double Release of %q: its reference (%s, line %d) was already released or handed off", name, v.what, w.line(v.pos)))
		case stBorrowed:
			w.emit(call.Pos(), fmt.Sprintf("Release of borrowed %q: the caller owns this reference", name))
		}
		return
	}
	if desc, ok := w.acquireDesc(e); ok {
		if !w.ownsLine(e.Pos()) {
			w.emit(e.Pos(), fmt.Sprintf("result of %s is discarded: the reference can never be released (mark the hand-off with //netagg:owns if intended)", desc))
		}
		return
	}
	w.callEffects(e, env)
}

// callEffects applies the argument-passing rules of every call inside
// e: a bare tracked argument moves to a callee parameter annotated
// //netagg:owns, is sanctioned by a line marker, and otherwise stays
// with the caller (callees borrow by default). Function literals are
// walked as separate scopes so acquisitions inside them are checked.
func (w *bufownWalk) callEffects(e ast.Expr, env ownEnv) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			w.callArgs(v, env)
		case *ast.FuncLit:
			w.walkStmts(v.Body.List, make(ownEnv))
			return false
		}
		return true
	})
}

func (w *bufownWalk) callArgs(call *ast.CallExpr, env ownEnv) {
	key := w.bo.pkg.resolveCallee(w.fs.typeEnv, call)
	var calleeParams []string
	if key != "" {
		if fs := w.bo.pkg.funcs[key]; fs != nil {
			calleeParams = paramNames(fs.decl)
		}
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		v := env[id.Name]
		if v == nil || (v.state != stOwned && v.state != stMaybe) {
			continue
		}
		if w.ownsLine(call.Pos()) {
			v.state = stDone
			continue
		}
		if key != "" && i < len(calleeParams) {
			if w.bo.paramAnns[key][calleeParams[i]] == "owns" {
				v.state = stDone
			}
		}
	}
}

func (w *bufownWalk) deferStmt(s *ast.DeferStmt, env ownEnv) {
	if name, ok := releaseReceiver(s.Call); ok {
		v := env[name]
		if v == nil {
			return
		}
		switch v.state {
		case stOwned, stMaybe:
			// The deferred Release covers every exit from here on.
			v.state = stDone
		case stDone:
			w.emit(s.Pos(), fmt.Sprintf("deferred double Release of %q: its reference (%s, line %d) was already released or handed off", name, v.what, w.line(v.pos)))
		case stBorrowed:
			w.emit(s.Pos(), fmt.Sprintf("deferred Release of borrowed %q: the caller owns this reference", name))
		}
		return
	}
	// defer func() { ... v.Release() ... }(): the one closure-capture
	// discharge the analyzer understands.
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := releaseReceiver(call); ok {
				if v := env[name]; v != nil && (v.state == stOwned || v.state == stMaybe) {
					v.state = stDone
				}
			}
			return true
		})
		return
	}
	w.callEffects(s.Call, env)
}

func (w *bufownWalk) returnStmt(s *ast.ReturnStmt, env ownEnv) {
	for _, res := range s.Results {
		// Any tracked reference reachable from a result value travels to
		// the caller (bare return, or inside a returned container).
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := env[id.Name]; v != nil && (v.state == stOwned || v.state == stMaybe) {
					v.state = stDone
				}
			}
			return true
		})
		w.callEffects(res, env)
	}
	w.checkExit(env, s.Pos())
}

func (w *bufownWalk) ifStmt(s *ast.IfStmt, env ownEnv) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, env)
	}
	w.callEffects(s.Cond, env)
	thenEnv := env.clone()
	thenTerm := w.walkBlock(s.Body, thenEnv)
	elseEnv := env.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(s.Else, elseEnv)
	}
	var survivors []ownEnv
	if !thenTerm {
		survivors = append(survivors, thenEnv)
	}
	if !elseTerm {
		survivors = append(survivors, elseEnv)
	}
	mergeInto(env, survivors)
	return len(survivors) == 0
}

// clauses walks a switch/type-switch/select body: each clause starts
// from the entry state, survivors merge. implicitFallthrough adds the
// entry state itself as a survivor when no default clause exists (the
// switch may match nothing).
func (w *bufownWalk) clauses(init ast.Stmt, body *ast.BlockStmt, env ownEnv, implicitFallthrough bool) bool {
	if init != nil {
		w.walkStmt(init, env)
	}
	var survivors []ownEnv
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		isDefault := false
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts, isDefault = c.Body, c.List == nil
		case *ast.CommClause:
			isDefault = c.Comm == nil
			if c.Comm != nil {
				stmts = append([]ast.Stmt{c.Comm}, c.Body...)
			} else {
				stmts = c.Body
			}
		default:
			continue
		}
		if isDefault {
			hasDefault = true
		}
		ce := env.clone()
		if !w.walkStmts(stmts, ce) {
			survivors = append(survivors, ce)
		}
	}
	if implicitFallthrough && !hasDefault {
		survivors = append(survivors, env.clone())
	}
	mergeInto(env, survivors)
	return len(survivors) == 0
}

// acquireDesc reports whether e creates a new pool reference and
// describes how.
func (w *bufownWalk) acquireDesc(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		pkgIdent, isIdent := sel.X.(*ast.Ident)
		if isIdent && w.bufpoolName != "" && pkgIdent.Name == w.bufpoolName {
			if sel.Sel.Name == "Get" || sel.Sel.Name == "Adopt" {
				return w.bufpoolName + "." + sel.Sel.Name, true
			}
		} else if sel.Sel.Name == "Retain" && len(call.Args) == 0 {
			return exprString(sel.X) + ".Retain()", true
		}
	}
	if key := w.bo.pkg.resolveCallee(w.fs.typeEnv, call); key != "" && w.bo.returnsBuf[key] {
		return key, true
	}
	return "", false
}

// releaseReceiver matches `<ident>.Release()` and returns the receiver
// name.
func releaseReceiver(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// storedVars returns the tracked variables that rhs sinks into a
// container: bare idents, composite-literal elements, append arguments,
// and &-of those. A method call on a tracked variable (v.Bytes()) is a
// read, not a store.
func (w *bufownWalk) storedVars(rhs ast.Expr, env ownEnv) []string {
	var out []string
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		switch v := e.(type) {
		case *ast.Ident:
			if env[v.Name] != nil {
				out = append(out, v.Name)
			}
		case *ast.UnaryExpr:
			visit(v.X)
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					visit(kv.Value)
					continue
				}
				visit(elt)
			}
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range v.Args {
					visit(arg)
				}
			}
		case *ast.SliceExpr:
			visit(v.X)
		}
	}
	visit(rhs)
	return out
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
