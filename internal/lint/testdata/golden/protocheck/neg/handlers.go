// Negative fixtures: the correct counterpart of every positive case.
// Each role's handler dispatches on the message type with a logged
// default, covers exactly the frames the protocol table lets it
// receive, guards epoch-sensitive mutations, and honours the declared
// payload ownership. The analyzer must stay silent on all of them.
package fixture

import (
	"log"

	"netagg/internal/wire"
)

type pending struct {
	attempt int
	count   int
	bufs    [][]byte
	parts   map[uint64][][]byte
}

// handleMaster guards on the attempt epoch before the dispatch switch,
// so every arm mutates post-guard.
//
//netagg:proto-handler master
func (p *pending) handleMaster(m *wire.Msg, attempt int) {
	if attempt != p.attempt {
		return
	}
	switch m.Type {
	case wire.TResult:
		p.bufs = append(p.bufs, m.TakeBuf())
		p.count++
	case wire.TData:
		p.bufs = append(p.bufs, m.TakeBuf())
	case wire.TEnd:
		delete(p.parts, m.Source)
		p.count++
	case wire.TError:
		p.count++
	default:
		log.Printf("master: unexpected frame %v", m.Type)
	}
}

type boxState struct {
	frames  int
	nextSeq map[uint64]uint64
	route   []byte
	expect  int
	bufs    [][]byte
}

// handleBox covers all seven box-receivable frames and guards the TData
// mutations behind the per-source sequence check.
//
//netagg:proto-handler box
func (s *boxState) handleBox(m *wire.Msg) {
	switch m.Type {
	case wire.THello:
		s.route = append(s.route[:0], m.Payload...)
	case wire.TData:
		if m.Seq < s.nextSeq[m.Source] {
			return
		}
		s.nextSeq[m.Source] = m.Seq + 1
		s.bufs = append(s.bufs, m.TakeBuf())
	case wire.TEnd:
		s.frames++
	case wire.TExpect:
		s.expect++
	case wire.THeartbeat:
	case wire.TCancel:
		s.frames = 0
	case wire.TFanout:
		s.route = append(s.route[:0], m.Payload...)
	default:
		log.Printf("box: unexpected frame %v", m.Type)
	}
}

type sender struct {
	lastAttempt uint64
}

// control applies a redirect only when its attempt is newer than the
// last one applied (the straggler-timer/monitor race dedup).
//
//netagg:proto-handler worker
func (s *sender) control(m *wire.Msg) {
	switch m.Type {
	case wire.TRedirect:
		attempt, _ := wire.DecodeCount(m.Payload)
		if attempt <= s.lastAttempt {
			return
		}
		s.lastAttempt = attempt
	default:
		log.Printf("worker: unexpected frame %v", m.Type)
	}
}

type monitor struct {
	loads map[string]float64
}

// handleEcho decodes the echoed load signal; heartbeats carry no epoch
// state, so no guard is required.
//
//netagg:proto-handler monitor
func (mo *monitor) handleEcho(addr string, m *wire.Msg) {
	switch m.Type {
	case wire.THeartbeat:
		mo.loads[addr] = float64(m.Seq)
	default:
		log.Printf("monitor: unexpected frame %v", m.Type)
	}
}

// notAHandler carries no annotation: protocheck ignores it even though
// its switch handles a frame no role could justify here.
func notAHandler(m *wire.Msg) {
	switch m.Type {
	case wire.TAck:
	}
}
