// Positive fixtures: every handler here violates the protocol table in
// at least one way. One deliberate violation per diagnostic class:
// unknown role, missing *wire.Msg parameter, missing dispatch switch,
// handling a frame the role may not receive, silently dropping a
// receivable frame, mutating state before the epoch guard (directly and
// through a callee), declaring "takes" ownership without taking, and
// taking a buffer the role only borrows.
package fixture

import (
	"log"

	"netagg/internal/wire"
)

type monState struct {
	loads int
}

// handleMonitor also handles TData, which the table does not let a
// monitor receive.
//
//netagg:proto-handler monitor
func (s *monState) handleMonitor(m *wire.Msg) {
	switch m.Type {
	case wire.THeartbeat:
		s.loads++
	case wire.TData:
		s.loads++
	default:
		log.Printf("monitor: unexpected frame %v", m.Type)
	}
}

type pending struct {
	attempt int
	count   int
	bufs    [][]byte
}

// handleMaster mutates before the attempt check on TResult, never takes
// the TData payload it is declared to own, and has no TError case.
//
//netagg:proto-handler master
func (p *pending) handleMaster(m *wire.Msg, attempt int) {
	switch m.Type {
	case wire.TResult:
		p.count++
		if attempt != p.attempt {
			return
		}
		p.bufs = append(p.bufs, m.TakeBuf())
	case wire.TData:
		if attempt != p.attempt {
			return
		}
		p.bufs = append(p.bufs, m.Payload)
	case wire.TEnd:
		if attempt != p.attempt {
			return
		}
		p.count++
	default:
		log.Printf("master: unexpected frame %v", m.Type)
	}
}

type boxState struct {
	frames  int
	nextSeq map[uint64]uint64
	route   []byte
}

// ingest counts the frame before checking the per-source sequence
// number, so a replayed frame double-counts.
func (s *boxState) ingest(m *wire.Msg) {
	s.frames++
	if m.Seq < s.nextSeq[m.Source] {
		return
	}
	s.nextSeq[m.Source] = m.Seq + 1
	sink(m.TakeBuf())
}

func sink(b []byte) {}

// handleBox reaches ingest's unguarded mutation on TData and takes the
// TExpect payload it only borrows.
//
//netagg:proto-handler box
func (s *boxState) handleBox(m *wire.Msg) {
	switch m.Type {
	case wire.THello:
		s.route = append(s.route[:0], m.Payload...)
	case wire.TData:
		s.ingest(m)
	case wire.TEnd:
		s.frames++
	case wire.TExpect:
		s.route = m.TakeBuf()
	case wire.THeartbeat:
	case wire.TCancel:
	case wire.TFanout:
	default:
		log.Printf("box: unexpected frame %v", m.Type)
	}
}

// handleGateway names a role the protocol table does not know.
//
//netagg:proto-handler gateway
func handleGateway(m *wire.Msg) {
	switch m.Type {
	case wire.THello:
	}
}

// handleNoMsg has nothing to dispatch on.
//
//netagg:proto-handler worker
func handleNoMsg(attempt int) {
	_ = attempt
}

// handleNoSwitch filters instead of dispatching: every frame that is
// not a redirect is silently treated as handled.
//
//netagg:proto-handler worker
func handleNoSwitch(m *wire.Msg, last uint64) {
	if m.Type != wire.TRedirect {
		return
	}
	applyRedirect(m.Payload, last)
}

func applyRedirect(p []byte, last uint64) {}
