package core

import "netagg/internal/bufpool"

// doubleRelease recycles a buffer twice: the second call hands the
// pool a buffer some other Get may already own.
func doubleRelease(n int) {
	b := bufpool.Get(n)
	b.Release()
	b.Release()
}

// deferredDoubleRelease is the same bug split across a defer.
func deferredDoubleRelease(n int) {
	b := bufpool.Get(n)
	defer b.Release()
	b.Release()
}

// discardedRetain bumps the refcount and throws the new reference
// away: the buffer can never be recycled.
func discardedRetain(b *bufpool.Buf) {
	b.Retain()
}

// rebindOverOwned overwrites the only handle to a live reference.
func rebindOverOwned(n int) {
	b := bufpool.Get(n)
	b = bufpool.Get(2 * n)
	b.Release()
}
