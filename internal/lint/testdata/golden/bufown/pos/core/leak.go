// Positive fixtures: every function here leaks a pool reference on at
// least one path and must be reported.
package core

import "netagg/internal/bufpool"

// leakOnErrorPath is the canonical bug the analyzer exists for: the
// early error return skips the Release.
func leakOnErrorPath(n int, err error) error {
	b := bufpool.Get(n)
	if err != nil {
		return err
	}
	b.Release()
	return nil
}

// leakAtEnd never releases at all.
func leakAtEnd(n int) {
	b := bufpool.Get(n)
	_ = b.Len()
}

// leakInScope acquires inside a block and lets the reference fall out
// of scope.
func leakInScope(n int, ok bool) {
	if ok {
		b := bufpool.Get(n)
		_ = b.Len()
	}
}

// leakOwnsParam takes ownership by annotation but drops it on the
// early return.
//
//netagg:owns part
func leakOwnsParam(part *bufpool.Buf, bad bool) {
	if bad {
		return
	}
	part.Release()
}

// partialRelease releases on only one branch.
func partialRelease(n int, sometimes bool) {
	b := bufpool.Get(n)
	if sometimes {
		b.Release()
	}
}
