package core

import "netagg/internal/bufpool"

// sendQueue models the transport's send-queue admission: callers hand a
// frame in, the queue takes its own retained reference, and a flusher
// releases it after the write.
type sendQueue struct {
	pending []*bufpool.Buf
}

// admitWithoutMarker parks the queue's retain in the pending slice
// without declaring the hand-off: the stored reference has no visible
// owner, which is exactly how a queue teardown path comes to forget it.
func (q *sendQueue) admitWithoutMarker(b *bufpool.Buf) {
	c := b.Retain()
	q.pending = append(q.pending, c)
}
