package core

import "netagg/internal/bufpool"

type keeper struct {
	bufs []*bufpool.Buf
}

// storeWithoutMarker moves a reference into a long-lived container
// without declaring the hand-off.
func (k *keeper) storeWithoutMarker(n int) {
	b := bufpool.Get(n)
	k.bufs = append(k.bufs, b)
}

// sendWithoutMarker moves a reference to another goroutine without
// declaring the hand-off.
func sendWithoutMarker(ch chan *bufpool.Buf, n int) {
	b := bufpool.Get(n)
	ch <- b
}

// goWithoutMarker lets a goroutine take the reference silently.
func goWithoutMarker(n int) {
	b := bufpool.Get(n)
	go func() { b.Release() }()
}
