package core

import "netagg/internal/bufpool"

type stash struct {
	p    []byte
	bufs []*bufpool.Buf
	ch   chan []byte
}

// storeBorrowed aliases a borrowed payload into a field that outlives
// the call: the caller will recycle the backing buffer under it.
//
//netagg:borrows p
func (s *stash) storeBorrowed(p []byte) {
	s.p = p
}

// sendBorrowed ships a borrowed payload to another goroutine.
//
//netagg:borrows p
func (s *stash) sendBorrowed(p []byte) {
	s.ch <- p
}

// releaseBorrowed releases a reference it never owned.
//
//netagg:borrows b
func releaseBorrowed(b *bufpool.Buf) {
	b.Release()
}
