package core

import "netagg/internal/bufpool"

// sendQueue models the transport's send-queue admission with the
// hand-off declared: the queue owns one retained reference per entry,
// released by the flusher after the write (DESIGN.md §15).
type sendQueue struct {
	pending []*bufpool.Buf
}

// admit parks the queue's own reference with the transfer marked.
func (q *sendQueue) admit(b *bufpool.Buf) {
	c := b.Retain()
	q.pending = append(q.pending, c) //netagg:owns c — the queue's reference, released by flushOne
}

// flushOne drains one entry and releases the queue's reference.
func (q *sendQueue) flushOne() {
	if len(q.pending) == 0 {
		return
	}
	b := q.pending[len(q.pending)-1]
	q.pending = q.pending[:len(q.pending)-1]
	b.Release()
}
