// Negative fixtures: the correct counterpart of every positive case.
// The analyzer must stay silent on all of them.
package core

import "netagg/internal/bufpool"

// releaseOnEveryPath mirrors leakOnErrorPath with the error path fixed.
func releaseOnEveryPath(n int, err error) error {
	b := bufpool.Get(n)
	if err != nil {
		b.Release()
		return err
	}
	b.Release()
	return nil
}

// deferRelease covers every exit with one statement.
func deferRelease(n int, err error) error {
	b := bufpool.Get(n)
	defer b.Release()
	if err != nil {
		return err
	}
	return nil
}

// deferClosureRelease is the closure form the analyzer understands.
func deferClosureRelease(n int) {
	b := bufpool.Get(n)
	defer func() {
		b.Release()
	}()
}

// returnTransfers hands the reference to the caller.
func returnTransfers(n int) *bufpool.Buf {
	b := bufpool.Get(n)
	return b
}

// boundRetain keeps the new reference and releases it.
func boundRetain(b *bufpool.Buf) {
	c := b.Retain()
	c.Release()
}

// sink takes ownership by contract; callers transfer without markers.
//
//netagg:owns part
func sink(part *bufpool.Buf) {
	part.Release()
}

// transferToSink relies on the callee's //netagg:owns annotation.
func transferToSink(n int) {
	b := bufpool.Get(n)
	sink(b)
}

type keeper struct {
	bufs []*bufpool.Buf
	ch   chan *bufpool.Buf
}

// markedHandOffs declares each store/send/goroutine transfer.
func (k *keeper) markedHandOffs(n int) {
	a := bufpool.Get(n)
	k.bufs = append(k.bufs, a) //netagg:owns a
	b := bufpool.Get(n)
	k.ch <- b //netagg:owns b
	c := bufpool.Get(n)
	go func() { c.Release() }() //netagg:owns c
}

// borrowLocally slices a borrowed payload into a locally built value
// and returns it: the borrow propagates to the caller, which still
// holds the frame alive. This is the wire.DecodeFanout pattern.
//
//netagg:borrows p
func borrowLocally(p []byte) []byte {
	p = p[1:]
	return p[:4:4]
}

// switchReleasesEverywhere merges clean across all clauses.
func switchReleasesEverywhere(n, mode int) {
	b := bufpool.Get(n)
	switch mode {
	case 0:
		b.Release()
	default:
		b.Release()
	}
}

// aliasTransfer moves the obligation with the alias.
func aliasTransfer(n int) {
	b := bufpool.Get(n)
	c := b
	c.Release()
}

// allowedDouble documents a deliberate protocol violation for a test
// rig; the suppression carries its reason.
func allowedDouble(n int) {
	b := bufpool.Get(n)
	b.Release()
	b.Release() //netagg:bufown-allow recycling fixture exercises the pool's double-free panic
}
