// Positive ctxflow fixture: a severed cancellation chain
// (context.Background outside package main), a dropped context
// parameter, and blocking channel operations that ignore an available
// context.
package transport

import "context"

type Conn struct {
	ctx context.Context
	in  chan []byte
}

func dial() context.Context {
	return context.Background()
}

func deliver(ctx context.Context, out chan []byte, b []byte) {
	out <- b
}

func (c *Conn) next() []byte {
	return <-c.in
}

func pump(a, b chan int) {
	select {
	case <-a:
	case <-b:
	}
}
