// Negative ctxflow fixture: the nil-parameter fallback idiom, selects
// with a ctx.Done or timer escape hatch, and a consulted context.
package transport

import (
	"context"
	"time"
)

type Conn struct {
	ctx context.Context
	in  chan []byte
}

func dial(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

func deliver(ctx context.Context, out chan []byte, b []byte) {
	select {
	case out <- b:
	case <-ctx.Done():
	}
}

func (c *Conn) next() []byte {
	select {
	case b := <-c.in:
		return b
	case <-c.ctx.Done():
		return nil
	case <-time.After(time.Second):
		return nil
	}
}
