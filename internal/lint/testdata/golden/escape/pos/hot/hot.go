// Positive escape fixture: the annotated function returns a pointer to
// a local, which the compiler must move to the heap — exactly the
// regression the //netagg:hotpath gate exists to catch.
package hot

// Leak is annotated hot but allocates.
//
//netagg:hotpath
func Leak(n int) *int {
	x := n
	return &x
}
