// Negative escape fixture: the annotated function is allocation-free,
// so the gate passes.
package hot

var sink int64

// Add is annotated hot and clean.
//
//netagg:hotpath
func Add(n int64) {
	sink += n
}
