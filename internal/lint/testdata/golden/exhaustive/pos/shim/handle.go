// Positive exhaustive fixture, switch half: matches the wire.Kind enum
// declared in the sibling wire fixture but lists only two of its four
// members, with no default.
package shim

import "netagg/internal/wire"

func handle(k wire.Kind) int {
	switch k {
	case wire.KHello:
		return 0
	case wire.KData:
		return 1
	}
	return 2
}
