// Positive exhaustive fixture, constants half: a typed frame-kind enum
// plus a switch whose default silently swallows the members it does not
// list. The cross-package switch lives in the shim half.
package wire

// Kind identifies a frame in this fixture's miniature protocol.
type Kind uint8

const (
	KHello Kind = iota + 1
	KData
	KEnd
	KError
)

func route(k Kind) int {
	switch k {
	case KHello:
		return 0
	case KData:
		return 1
	default:
	}
	return 2
}
