// Negative exhaustive fixture: full member coverage, a loud default,
// and a bitmask block (excluded from enum collection by the 1<<iota
// rule — switching on a combination is legitimate).
package wire

import "fmt"

// Kind identifies a frame in this fixture's miniature protocol.
type Kind uint8

const (
	KHello Kind = iota + 1
	KData
)

// Flag is a capability bitmask, not an enum.
type Flag uint8

const (
	FCompress Flag = 1 << iota
	FEncrypt
)

func name(k Kind) string {
	switch k {
	case KHello:
		return "hello"
	case KData:
		return "data"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

func route(k Kind) int {
	switch k {
	case KHello:
		return 0
	case KData:
		return 1
	}
	return 2
}

func compressed(f Flag) bool {
	switch f {
	case FCompress:
		return true
	}
	return false
}
