// Positive lockorder fixture: Pool.mu and Tree.mu are taken in both
// orders — drain() holds Pool.mu while reaching into Tree.mu, flush()
// holds Tree.mu while calling back into a Pool method that locks
// Pool.mu. Two goroutines running drain and flush concurrently can
// deadlock; the analyzer must report both edges of the cycle.
package core

import "sync"

type Pool struct {
	mu   sync.Mutex
	tree *Tree
}

type Tree struct {
	mu   sync.Mutex
	pool *Pool
}

func (p *Pool) drain() {
	p.mu.Lock()
	p.tree.mu.Lock()
	p.tree.mu.Unlock()
	p.mu.Unlock()
}

func (t *Tree) flush() {
	t.mu.Lock()
	t.pool.wake()
	t.mu.Unlock()
}

func (p *Pool) wake() {
	p.mu.Lock()
	p.mu.Unlock()
}
