// Negative lockorder fixture: both paths that hold the two locks
// together take them in the same canonical order (Pool.mu before
// Tree.mu), so the ordering graph is acyclic and nothing is reported.
package core

import "sync"

type Pool struct {
	mu   sync.Mutex
	tree *Tree
}

type Tree struct {
	mu sync.Mutex
}

func (p *Pool) drain() {
	p.mu.Lock()
	p.tree.mu.Lock()
	p.tree.mu.Unlock()
	p.mu.Unlock()
}

func (p *Pool) rebalance() {
	p.mu.Lock()
	p.tree.grow()
	p.mu.Unlock()
}

func (t *Tree) grow() {
	t.mu.Lock()
	t.mu.Unlock()
}
