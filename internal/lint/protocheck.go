package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"netagg/internal/wire"
)

// Protocheck is the wire-protocol conformance analyzer. The protocol
// contract lives in one declarative table (internal/wire/protocol.go):
// per frame type, which roles may send and receive it, whether the
// receiving handler must pass an epoch/replay guard before mutating
// request state, and how payload-buffer ownership transfers. This
// analyzer checks every annotated frame-dispatch switch against that
// table — the lint package imports the table directly, so the spec and
// the checker cannot drift apart.
//
// A handler opts in with a doc-comment directive naming its role:
//
//	//netagg:proto-handler <worker|box|master|monitor>
//
// on the function that owns the dispatch switch on `<msg>.Type`, where
// <msg> is the function's *wire.Msg parameter. For each annotated
// handler the analyzer reports:
//
//   - structural defects: an unknown role name, a missing *wire.Msg
//     parameter, or no dispatch switch at all (an `if m.Type != X`
//     filter silently conflates every other frame with the expected
//     one);
//   - frames handled but not receivable: a case arm for a frame type
//     whose rule does not list this role as a receiver;
//   - receivable frames left unhandled: a rule listing this role as a
//     receiver with no matching case arm (a default arm does not
//     count — unexpected-frame logging must not swallow protocol
//     frames);
//   - unguarded state mutation: for frames the table marks epoch-
//     guarded at this role, a mutation of non-local state (field or
//     element assignment, ++/--, delete) reachable before an
//     attempt/sequence guard — the at-least-once transport replays
//     frames on reconnect, so such a mutation double-counts;
//   - ownership contradictions: a handler that never takes the payload
//     buffer of a frame the table says it owns (Msg.TakeBuf or a bare
//     hand-off to a //netagg:owns callee parameter), or that takes the
//     buffer of a frame it only borrows.
//
// The mutation and ownership checks trace the whole handler body for
// one frame type at a time: conditions and switches on `<msg>.Type`
// are evaluated definitively against the traced frame (pruning arms
// the frame cannot reach), an `if` whose condition mentions an
// attempt/seq/epoch name and whose body terminates marks the path
// guarded, and calls passing the message to a resolvable same-package
// callee are followed (depth-first, cycle-safe). Function literals and
// `go` statements are not traced. Like the rest of the suite the
// analyzer errs towards silence: what it cannot resolve it does not
// report.
//
// Suppression: //lint:ignore protocheck <reason> on the flagged line,
// or the shared allowlist.
type Protocheck struct{}

// Name implements Analyzer.
func (Protocheck) Name() string { return "protocheck" }

// Doc implements Analyzer.
func (Protocheck) Doc() string {
	return "frame-dispatch switches must conform to the wire protocol table (internal/wire/protocol.go)"
}

// Check implements Analyzer; Protocheck is package-scoped, so the
// per-file hook is a no-op.
func (Protocheck) Check(f *File, report func(pos token.Pos, msg string)) {}

const protoHandlerDirective = "netagg:proto-handler"

// CheckPackage implements PackageAnalyzer.
func (Protocheck) CheckPackage(files []*File, report func(pos token.Pos, msg string)) {
	var src []*File
	hasDirective := false
	for _, f := range files {
		if f.Test {
			continue
		}
		src = append(src, f)
		if strings.Contains(string(f.Src), "//"+protoHandlerDirective) {
			hasDirective = true
		}
	}
	if !hasDirective {
		return
	}

	p := buildPackage(src)
	pc := &protoPkg{
		pkg:       p,
		rules:     make(map[string]wire.Rule),
		paramAnns: make(map[string]map[string]string),
	}
	for _, r := range wire.Protocol() {
		pc.rules[r.Name] = r
	}
	for key, fs := range p.funcs {
		pc.paramAnns[key] = bufownParamAnns(fs.decl)
	}

	keys := make([]string, 0, len(p.funcs))
	for key := range p.funcs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fs := p.funcs[key]
		roleName, ok := protoHandlerRole(fs.decl)
		if !ok {
			continue
		}
		pc.checkHandler(fs, roleName, report)
	}
}

// protoPkg is the per-package analysis context.
type protoPkg struct {
	pkg *pkgSummary
	// rules indexes the protocol table by frame constant name ("TData").
	rules map[string]wire.Rule
	// paramAnns maps function keys to //netagg:owns///netagg:borrows
	// parameter annotations (shared grammar with bufown).
	paramAnns map[string]map[string]string
}

// protoHandlerRole extracts the //netagg:proto-handler role name from a
// function's doc comment.
func protoHandlerRole(decl *ast.FuncDecl) (string, bool) {
	if decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text != protoHandlerDirective && !strings.HasPrefix(text, protoHandlerDirective+" ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, protoHandlerDirective))
		if len(fields) == 0 {
			return "", true
		}
		return fields[0], true
	}
	return "", false
}

// msgParamName finds the name of the function's *wire.Msg parameter
// under the file's import name for the wire package.
func msgParamName(decl *ast.FuncDecl, wireName string) string {
	if decl.Type.Params == nil || wireName == "" {
		return ""
	}
	for _, field := range decl.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != wireName || sel.Sel.Name != "Msg" {
			continue
		}
		if len(field.Names) > 0 && field.Names[0].Name != "_" {
			return field.Names[0].Name
		}
	}
	return ""
}

// isMsgTypeSel matches the `<msg>.Type` selector.
func isMsgTypeSel(e ast.Expr, msgName string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == msgName && sel.Sel.Name == "Type"
}

// findDispatchSwitch locates the switch on `<msg>.Type` in the handler
// body (function literals excluded).
func findDispatchSwitch(body *ast.BlockStmt, msgName string) *ast.SwitchStmt {
	var found *ast.SwitchStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sw, ok := n.(*ast.SwitchStmt); ok && sw.Tag != nil && isMsgTypeSel(sw.Tag, msgName) {
			found = sw
			return false
		}
		return true
	})
	return found
}

// frameConst resolves `<wire>.<TName>` to the protocol rule name it
// denotes ("" if it is not a known frame constant).
func (pc *protoPkg) frameConst(e ast.Expr, wireName string) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || wireName == "" {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != wireName {
		return ""
	}
	if _, known := pc.rules[sel.Sel.Name]; known {
		return sel.Sel.Name
	}
	return ""
}

// checkHandler runs every protocol check on one annotated handler.
func (pc *protoPkg) checkHandler(fs *funcSummary, roleName string, report func(pos token.Pos, msg string)) {
	decl := fs.decl
	role, ok := wire.ParseRole(roleName)
	if !ok {
		report(decl.Pos(), fmt.Sprintf("//netagg:proto-handler names unknown role %q (want worker, box, master, or monitor)", roleName))
		return
	}
	wireName := importName(fs.file.AST, wirePath)
	msgName := msgParamName(decl, wireName)
	if msgName == "" {
		report(decl.Pos(), fmt.Sprintf("proto-handler %s (role %s) has no *wire.Msg parameter to dispatch on", decl.Name.Name, role))
		return
	}
	sw := findDispatchSwitch(decl.Body, msgName)
	if sw == nil {
		report(decl.Pos(), fmt.Sprintf("proto-handler %s (role %s) has no frame-dispatch switch on %s.Type: an if-filter silently conflates unexpected frames with the expected one", decl.Name.Name, role, msgName))
		return
	}

	// Handled frames, and frames handled without the right to receive.
	handled := make(map[string]token.Pos)
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			name := pc.frameConst(e, wireName)
			if name == "" {
				continue
			}
			if _, dup := handled[name]; !dup {
				handled[name] = e.Pos()
			}
			rule := pc.rules[name]
			if !rule.MayReceive(role) {
				report(e.Pos(), fmt.Sprintf("role %s handles %s but the protocol does not list it as a receiver (receivers: %s)", role, name, roleNames(rule.Receivers)))
			}
		}
	}

	// Receivable frames with no case arm, as one deterministic finding
	// in table order (a default arm is for unexpected frames and does
	// not satisfy the table).
	var missing []string
	for _, r := range wire.Protocol() {
		if !r.MayReceive(role) {
			continue
		}
		if _, ok := handled[r.Name]; !ok {
			missing = append(missing, r.Name)
		}
	}
	if len(missing) > 0 {
		report(sw.Pos(), fmt.Sprintf("role %s must receive %s but the dispatch switch has no case for it", role, strings.Join(missing, ", ")))
	}

	// Per handled frame: epoch-guard and ownership conformance.
	for _, r := range wire.Protocol() {
		pos, ok := handled[r.Name]
		if !ok || !r.MayReceive(role) {
			continue
		}
		tr := pc.trace(fs, msgName, r)
		if r.GuardedAt(role) {
			for _, m := range tr.mutations {
				report(m.pos, fmt.Sprintf("state mutation of %s on epoch-guarded frame %s is reachable before the attempt/seq guard: transport replay double-counts it", m.desc, r.Name))
			}
		}
		switch own := r.OwnershipAt(role); own {
		case wire.OwnTakes:
			if len(tr.takes) == 0 {
				report(pos, fmt.Sprintf("protocol declares %s payload ownership %q for role %s but the handler never takes the buffer (Msg.TakeBuf or a //netagg:owns hand-off)", r.Name, own.String(), role))
			}
		case wire.OwnBorrows, wire.OwnNone:
			for _, tp := range tr.takes {
				report(tp, fmt.Sprintf("handler takes the %s payload buffer but the protocol declares ownership %q for role %s", r.Name, own.String(), role))
			}
		}
	}
}

// roleNames renders a role list for diagnostics.
func roleNames(roles []wire.Role) string {
	if len(roles) == 0 {
		return "(none)"
	}
	names := make([]string, len(roles))
	for i, r := range roles {
		names[i] = r.String()
	}
	return strings.Join(names, ", ")
}

// --- frame-scoped trace ------------------------------------------------

// traceSite is one recorded mutation site.
type traceSite struct {
	pos  token.Pos
	desc string
}

// protoTrace walks a handler (and resolvable callees receiving the
// message) for ONE frame type, recording unguarded state mutations and
// buffer-take sites reachable by that frame.
type protoTrace struct {
	pc   *protoPkg
	rule wire.Rule

	mutations []traceSite
	takes     []token.Pos
	seenMut   map[token.Pos]bool
	seenTake  map[token.Pos]bool
	visited   map[string]bool
}

// traceFrame is the per-function context of the trace: which local name
// the message travels under and the file's wire import name.
type traceFrame struct {
	fs       *funcSummary
	msgName  string
	wireName string
}

// traceState is the per-path abstract state.
type traceState struct {
	guarded    bool
	terminated bool
}

// trace runs a fresh frame-scoped walk over the handler.
func (pc *protoPkg) trace(fs *funcSummary, msgName string, rule wire.Rule) *protoTrace {
	t := &protoTrace{
		pc:       pc,
		rule:     rule,
		seenMut:  make(map[token.Pos]bool),
		seenTake: make(map[token.Pos]bool),
		visited:  make(map[string]bool),
	}
	t.visited[fs.key] = true
	fr := &traceFrame{fs: fs, msgName: msgName, wireName: importName(fs.file.AST, wirePath)}
	t.walkStmts(fr, fs.decl.Body.List, traceState{})
	return t
}

func (t *protoTrace) mutation(pos token.Pos, desc string) {
	if t.seenMut[pos] {
		return
	}
	t.seenMut[pos] = true
	t.mutations = append(t.mutations, traceSite{pos: pos, desc: desc})
}

func (t *protoTrace) take(pos token.Pos) {
	if t.seenTake[pos] {
		return
	}
	t.seenTake[pos] = true
	t.takes = append(t.takes, pos)
}

func (t *protoTrace) walkStmts(fr *traceFrame, stmts []ast.Stmt, st traceState) traceState {
	for _, s := range stmts {
		st = t.stmt(fr, s, st)
		if st.terminated {
			break
		}
	}
	return st
}

func (t *protoTrace) stmt(fr *traceFrame, stmt ast.Stmt, st traceState) traceState {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			st.terminated = true
			return st
		}
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) > 0 {
				if !st.guarded {
					if target := mutTarget(call.Args[0]); target != "" {
						t.mutation(s.Pos(), "delete from "+target)
					}
				}
			}
		}
		t.scanExpr(fr, s.X, st)

	case *ast.AssignStmt:
		if !st.guarded {
			for _, lhs := range s.Lhs {
				if target := mutTarget(lhs); target != "" {
					t.mutation(s.Pos(), target)
				}
			}
		}
		for _, rhs := range s.Rhs {
			t.scanExpr(fr, rhs, st)
		}

	case *ast.IncDecStmt:
		if !st.guarded {
			if target := mutTarget(s.X); target != "" {
				t.mutation(s.Pos(), target)
			}
		}

	case *ast.IfStmt:
		return t.ifStmt(fr, s, st)

	case *ast.SwitchStmt:
		return t.switchStmt(fr, s, st)

	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				t.walkStmts(fr, cc.Body, st)
			}
		}

	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				t.stmt(fr, cc.Comm, st)
			}
			t.walkStmts(fr, cc.Body, st)
		}

	case *ast.ForStmt:
		inner := st
		if s.Init != nil {
			inner = t.stmt(fr, s.Init, inner)
		}
		if s.Cond != nil {
			t.scanExpr(fr, s.Cond, inner)
		}
		t.walkStmts(fr, s.Body.List, inner)

	case *ast.RangeStmt:
		t.scanExpr(fr, s.X, st)
		t.walkStmts(fr, s.Body.List, st)

	case *ast.BlockStmt:
		return t.walkStmts(fr, s.List, st)

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			t.scanExpr(fr, res, st)
		}
		st.terminated = true

	case *ast.BranchStmt:
		// break/continue/goto leave this path; the frame's remaining
		// statements are analyzed via other edges.
		st.terminated = true

	case *ast.SendStmt:
		t.scanExpr(fr, s.Chan, st)
		t.scanExpr(fr, s.Value, st)

	case *ast.DeferStmt:
		t.scanExpr(fr, s.Call, st)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						t.scanExpr(fr, v, st)
					}
				}
			}
		}

	case *ast.LabeledStmt:
		return t.stmt(fr, s.Stmt, st)

	case *ast.GoStmt:
		// Goroutines detach from the handler's guard discipline; not
		// traced (bufown covers the buffer hand-off).
	}
	return st
}

// ifStmt evaluates the condition against the traced frame: a definite
// type test prunes the untaken branch, an epoch-guard pattern (condition
// mentioning attempt/seq/epoch with a terminating body) marks the path
// guarded, and anything else walks both branches conservatively.
func (t *protoTrace) ifStmt(fr *traceFrame, s *ast.IfStmt, st traceState) traceState {
	if s.Init != nil {
		st = t.stmt(fr, s.Init, st)
	}
	t.scanExpr(fr, s.Cond, st)
	switch t.typeTest(fr, s.Cond) {
	case vTrue:
		return t.walkStmts(fr, s.Body.List, st)
	case vFalse:
		if s.Else != nil {
			return t.stmt(fr, s.Else, st)
		}
		return st
	}
	if s.Else == nil && isEpochGuard(s.Cond) && bodyTerminates(s.Body) {
		// The canonical replay guard: mutations inside its (terminating)
		// body are the unlock-and-bail epilogue, not state changes.
		st.guarded = true
		return st
	}
	bodySt := t.walkStmts(fr, s.Body.List, st)
	elseSt := st
	if s.Else != nil {
		elseSt = t.stmt(fr, s.Else, st)
	}
	out := st
	if bodySt.terminated && s.Else != nil && elseSt.terminated {
		out.terminated = true
	}
	if s.Else != nil && !bodySt.terminated && !elseSt.terminated && bodySt.guarded && elseSt.guarded {
		out.guarded = true
	}
	return out
}

// switchStmt prunes a dispatch switch on `<msg>.Type` to the arm the
// traced frame reaches; other switches walk every arm conservatively.
func (t *protoTrace) switchStmt(fr *traceFrame, s *ast.SwitchStmt, st traceState) traceState {
	if s.Init != nil {
		st = t.stmt(fr, s.Init, st)
	}
	if s.Tag == nil || !isMsgTypeSel(s.Tag, fr.msgName) {
		if s.Tag != nil {
			t.scanExpr(fr, s.Tag, st)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				t.walkStmts(fr, cc.Body, st)
			}
		}
		return st
	}
	var covering, deflt *ast.CaseClause
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			if t.pc.frameConst(e, fr.wireName) == t.rule.Name {
				covering = cc
			}
		}
	}
	if covering == nil {
		covering = deflt
	}
	if covering == nil {
		// The frame matches no arm: execution falls straight through.
		return st
	}
	return t.walkStmts(fr, covering.Body, st)
}

// scanExpr records buffer takes and follows resolvable calls that
// receive the message; function literals are separate scopes.
func (t *protoTrace) scanExpr(fr *traceFrame, e ast.Expr, st traceState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "TakeBuf" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == fr.msgName {
					t.take(v.Pos())
				}
			}
			t.followCall(fr, v, st)
		}
		return true
	})
}

// followCall recurses into a same-package callee that receives the
// message as a bare argument, translating the message name into the
// callee's parameter space. A hand-off to a //netagg:owns parameter is
// itself a take.
func (t *protoTrace) followCall(fr *traceFrame, call *ast.CallExpr, st traceState) {
	key := t.pc.pkg.resolveCallee(fr.fs.typeEnv, call)
	if key == "" {
		return
	}
	callee := t.pc.pkg.funcs[key]
	if callee == nil || callee.decl.Body == nil {
		return
	}
	params := paramNames(callee.decl)
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != fr.msgName || i >= len(params) {
			continue
		}
		if t.pc.paramAnns[key][params[i]] == "owns" {
			t.take(call.Pos())
		}
		if t.visited[key] {
			continue
		}
		t.visited[key] = true
		sub := &traceFrame{
			fs:       callee,
			msgName:  params[i],
			wireName: importName(callee.file.AST, wirePath),
		}
		t.walkStmts(sub, callee.decl.Body.List, traceState{guarded: st.guarded})
	}
}

// Tri-state verdicts for type tests against the traced frame.
const (
	vFalse   = -1
	vUnknown = 0
	vTrue    = 1
)

// typeTest evaluates a condition's verdict for the traced frame type:
// comparisons of `<msg>.Type` against frame constants, combined with
// &&, ||, and !. Anything else is unknown.
func (t *protoTrace) typeTest(fr *traceFrame, e ast.Expr) int {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return t.typeTest(fr, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			return -t.typeTest(fr, v.X)
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			a, b := t.typeTest(fr, v.X), t.typeTest(fr, v.Y)
			if a == vFalse || b == vFalse {
				return vFalse
			}
			if a == vTrue && b == vTrue {
				return vTrue
			}
		case token.LOR:
			a, b := t.typeTest(fr, v.X), t.typeTest(fr, v.Y)
			if a == vTrue || b == vTrue {
				return vTrue
			}
			if a == vFalse && b == vFalse {
				return vFalse
			}
		case token.EQL, token.NEQ:
			var name string
			if isMsgTypeSel(v.X, fr.msgName) {
				name = t.pc.frameConst(v.Y, fr.wireName)
			} else if isMsgTypeSel(v.Y, fr.msgName) {
				name = t.pc.frameConst(v.X, fr.wireName)
			}
			if name != "" {
				eq := name == t.rule.Name
				if v.Op == token.NEQ {
					eq = !eq
				}
				if eq {
					return vTrue
				}
				return vFalse
			}
		}
	}
	return vUnknown
}

// isEpochGuard reports whether the condition mentions an attempt,
// sequence, or epoch name — the vocabulary of the replay guards.
func isEpochGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			lower := strings.ToLower(id.Name)
			if strings.Contains(lower, "attempt") || strings.Contains(lower, "seq") || strings.Contains(lower, "epoch") {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyTerminates reports whether the block's last statement leaves the
// enclosing path (return, panic, or a branch).
func bodyTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(last.X)
	}
	return false
}

// mutTarget renders an assignment target that reaches beyond function
// locals (field, element, or pointer dereference); a plain identifier
// returns "".
func mutTarget(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return exprString(e)
	}
	return ""
}
