package lint

import (
	"go/token"
	"strings"
	"testing"
)

// runOn parses one fixture at displayPath and returns the findings of the
// named analyzer (all analyzers when name == "").
func runOn(t *testing.T, displayPath, src, name string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := ParseSource(fset, displayPath, []byte(src))
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	var analyzers []Analyzer
	for _, a := range All() {
		if name == "" || a.Name() == name {
			analyzers = append(analyzers, a)
		}
	}
	return Run([]*File{f}, analyzers)
}

// expectMessages asserts findings count and that each expected substring
// appears in the corresponding finding message.
func expectMessages(t *testing.T, got []Finding, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(got), len(want), got)
	}
	for i, w := range want {
		if !strings.Contains(got[i].Message, w) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i].Message, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "wall clock flagged in sim package",
			path: "internal/simnet/x.go",
			src: `package simnet
import "time"
func now() time.Time { return time.Now() }
func since(t0 time.Time) time.Duration { return time.Since(t0) }
`,
			want: []string{"time.Now", "time.Since"},
		},
		{
			name: "wall clock flagged in package-level initializer",
			path: "internal/simnet/x.go",
			src: `package simnet
import "time"
var started = time.Now()
var stamp = func() int64 { return time.Now().UnixNano() }
`,
			want: []string{"time.Now", "time.Now"},
		},
		{
			name: "global rand flagged, seeded Rand allowed",
			path: "internal/strategies/x.go",
			src: `package strategies
import "math/rand"
func pick(n int) int { return rand.Intn(n) }
func seeded(n int) int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(n)
}
`,
			want: []string{"rand.Intn"},
		},
		{
			name: "renamed math/rand import still flagged",
			path: "internal/stats/x.go",
			src: `package stats
import mrand "math/rand"
func pick(n int) int { return mrand.Intn(n) }
`,
			want: []string{"rand.Intn"},
		},
		{
			name: "non-sim package not in scope",
			path: "internal/core/x.go",
			src: `package core
import "time"
func now() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "test files not in scope",
			path: "internal/simnet/x_test.go",
			src: `package simnet
import "time"
func now() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "map range with order-dependent append flagged",
			path: "internal/figures/x.go",
			src: `package figures
func rows(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: []string{`iteration over map "m"`},
		},
		{
			name: "collect-then-sort idiom allowed",
			path: "internal/figures/x.go",
			src: `package figures
import "sort"
func keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
`,
			want: nil,
		},
		{
			name: "map range without observable output allowed",
			path: "internal/simexp/x.go",
			src: `package simexp
func total(m map[string]float64) float64 {
	// Summation order affects float rounding, but the analyzer only
	// flags order-observable emission; totals are the caller's business.
	var sum float64
	max := 0.0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	_ = sum
	return max
}
`,
			want: nil,
		},
		{
			name: "locally made map flagged",
			path: "internal/workload/x.go",
			src: `package workload
import "fmt"
func dump(n int) {
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		seen[i] = true
	}
	for k := range seen {
		fmt.Println(k)
	}
}
`,
			want: []string{`iteration over map "seen"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectMessages(t, runOn(t, tc.path, tc.src, "determinism"), tc.want...)
		})
	}
}

func TestLockDiscipline(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "write while holding mutex flagged",
			path: "internal/core/x.go",
			src: `package core
import "sync"
type conn struct{ mu sync.Mutex; w writer }
type writer struct{}
// Write implements io.Writer.
func (writer) Write(p []byte) (int, error) { return len(p), nil }
func (c *conn) send(p []byte) {
	c.mu.Lock()
	c.w.Write(p)
	c.mu.Unlock()
}
`,
			want: []string{"c.w.Write is dropped", "c.w.Write while holding c.mu"},
		},
		{
			name: "write after unlock allowed",
			path: "internal/core/x.go",
			src: `package core
import "sync"
func send(mu *sync.Mutex, w interface{ Flush() error }) error {
	mu.Lock()
	mu.Unlock()
	return w.Flush()
}
`,
			want: nil,
		},
		{
			name: "defer unlock holds to function end",
			path: "internal/shim/x.go",
			src: `package shim
import "sync"
func send(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
}
`,
			want: []string{"channel send while holding mu"},
		},
		{
			name: "early-exit unlock in branch does not leak into fallthrough",
			path: "internal/wire/x.go",
			src: `package wire
import "sync"
func send(mu *sync.Mutex, closed bool, ch chan int) {
	mu.Lock()
	if closed {
		mu.Unlock()
		return
	}
	mu.Unlock()
	ch <- 1
}
`,
			want: nil,
		},
		{
			name: "cond wait exempt",
			path: "internal/core/x.go",
			src: `package core
import "sync"
type q struct{ mu sync.Mutex; cond *sync.Cond; n int }
func (q *q) take() {
	q.mu.Lock()
	for q.n == 0 {
		q.cond.Wait()
	}
	q.n--
	q.mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "time.Sleep under lock flagged",
			path: "internal/cluster/x.go",
			src: `package cluster
import (
	"sync"
	"time"
)
func nap(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Second)
	mu.Unlock()
}
`,
			want: []string{"time.Sleep while holding mu"},
		},
		{
			name: "select with default is non-blocking",
			path: "internal/core/x.go",
			src: `package core
import "sync"
func poll(mu *sync.Mutex, ch chan int) (v int) {
	mu.Lock()
	select {
	case v = <-ch:
	default:
	}
	mu.Unlock()
	return v
}
`,
			want: nil,
		},
		{
			name: "goroutine body starts with fresh lock set",
			path: "internal/shim/x.go",
			src: `package shim
import "sync"
func spawn(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() {
		for range ch {
		}
	}()
	mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "out-of-scope package ignored",
			path: "internal/simnet/x.go",
			src: `package simnet
import "sync"
func send(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "transport package in scope: dial under lock flagged",
			path: "internal/transport/x.go",
			src: `package transport
import (
	"net"
	"sync"
)
func connect(mu *sync.Mutex, addr string) (net.Conn, error) {
	mu.Lock()
	defer mu.Unlock()
	return net.Dial("tcp", addr)
}
`,
			want: []string{"net.Dial while holding mu"},
		},
		{
			name: "transport blocking select under lock flagged",
			path: "internal/transport/x.go",
			src: `package transport
import "sync"
func waitReply(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	}
}
`,
			// ctxflow (v2) also fires here: the select has no escape hatch.
			want: []string{"select can block forever", "blocking select while holding mu"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectMessages(t, runOn(t, tc.path, tc.src, ""), tc.want...)
		})
	}
}

func TestErrcheckWire(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "dropped send and flush flagged",
			path: "internal/shim/x.go",
			src: `package shim
type client struct{}
func (client) Send(v int) error  { return nil }
func (client) Flush() error      { return nil }
func fire(c client) {
	c.Send(1)
	c.Flush()
}
`,
			want: []string{"c.Send is dropped", "c.Flush is dropped"},
		},
		{
			name: "handled and blank-assigned errors allowed",
			path: "internal/core/x.go",
			src: `package core
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) error {
	if err := c.Send(1); err != nil {
		return err
	}
	_ = c.Send(2) // audited discard
	return nil
}
`,
			want: nil,
		},
		{
			name: "deadline setter flagged",
			path: "internal/cluster/x.go",
			src: `package cluster
import (
	"net"
	"time"
)
func probe(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
}
`,
			want: []string{"conn.SetReadDeadline is dropped"},
		},
		{
			name: "in-memory buffer writes allowed",
			path: "internal/wire/x.go",
			src: `package wire
import "bytes"
func build(buf *bytes.Buffer) {
	buf.Write([]byte("x"))
}
`,
			want: nil,
		},
		{
			name: "transport package in scope: dropped reply flagged",
			path: "internal/transport/x.go",
			src: `package transport
type serverConn struct{}
func (serverConn) Send(v int) error { return nil }
func (serverConn) Flush() error     { return nil }
func echo(sc serverConn) {
	sc.Send(1)
	_ = sc.Flush() // audited discard stays allowed
}
`,
			want: []string{"sc.Send is dropped"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectMessages(t, runOn(t, tc.path, tc.src, "errcheck-wire"), tc.want...)
		})
	}
}

func TestGoroutineHygiene(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "range variable captured",
			path: "internal/core/x.go",
			src: `package core
func fanout(items []int, f func(int)) {
	for _, it := range items {
		go func() {
			f(it)
		}()
	}
}
`,
			want: []string{`captures loop variable "it"`},
		},
		{
			name: "variable passed as argument allowed",
			path: "internal/core/x.go",
			src: `package core
func fanout(items []int, f func(int)) {
	for _, it := range items {
		go func(it int) {
			f(it)
		}(it)
	}
}
`,
			want: nil,
		},
		{
			name: "classic for loop variable captured",
			path: "internal/shim/x.go",
			src: `package shim
func fanout(n int, f func(int)) {
	for i := 0; i < n; i++ {
		go func() {
			f(i)
		}()
	}
}
`,
			want: []string{`captures loop variable "i"`},
		},
		{
			name: "unstoppable infinite loop flagged",
			path: "internal/netem/x.go",
			src: `package netem
func spin(f func()) {
	go func() {
		for {
			f()
		}
	}()
}
`,
			want: []string{"no shutdown path"},
		},
		{
			name: "loop with stop channel allowed",
			path: "internal/netem/x.go",
			src: `package netem
func run(stop chan struct{}, f func()) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			f()
		}
	}()
}
`,
			want: nil,
		},
		{
			name: "loop with error return allowed",
			path: "internal/wire/x.go",
			src: `package wire
func reader(next func() error) {
	go func() {
		for {
			if err := next(); err != nil {
				return
			}
		}
	}()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectMessages(t, runOn(t, tc.path, tc.src, "goroutine-hygiene"), tc.want...)
		})
	}
}

func TestIgnoreSuppression(t *testing.T) {
	src := `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) {
	//lint:ignore errcheck-wire best-effort notification, audited 2026-08
	c.Send(1)
	c.Send(2) //lint:ignore errcheck-wire same-line suppression, audited 2026-08
	c.Send(3)
}
`
	got := runOn(t, "internal/shim/x.go", src, "errcheck-wire")
	expectMessages(t, got, "c.Send is dropped")
	if got[0].Line != 8 {
		t.Errorf("surviving finding at line %d, want 8 (only the unsuppressed call)", got[0].Line)
	}

	// An ignore without a reason does not suppress.
	src = `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) {
	//lint:ignore errcheck-wire
	c.Send(1)
}
`
	expectMessages(t, runOn(t, "internal/shim/x.go", src, "errcheck-wire"), "c.Send is dropped")

	// "all" suppresses any analyzer.
	src = `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) {
	//lint:ignore all fixture
	c.Send(1)
}
`
	expectMessages(t, runOn(t, "internal/shim/x.go", src, "errcheck-wire"))
}

func TestAllowlist(t *testing.T) {
	src := `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) {
	c.Send(1)
}
`
	got := runOn(t, "internal/shim/x.go", src, "errcheck-wire")
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1", len(got))
	}

	al := &Allowlist{keys: map[string]bool{got[0].Key(): true}}
	if rest := al.Filter(got); len(rest) != 0 {
		t.Errorf("allowlisted finding survived: %v", rest)
	}

	// The key is position-independent: a finding with a different line
	// but same file/analyzer/message still matches.
	moved := got[0]
	moved.Line += 10
	if !al.Allowed(moved) {
		t.Error("allowlist key should not depend on line numbers")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "determinism", File: "internal/simnet/x.go", Line: 3, Col: 7, Message: "m"}
	want := "internal/simnet/x.go:3:7: determinism: m"
	if f.String() != want {
		t.Errorf("String() = %q, want %q", f.String(), want)
	}
}

func TestDocRule(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "undocumented exported decls flagged in scoped package",
			path: "internal/transport/x.go",
			src: `package transport
type Conn struct{}
func Dial() {}
func (c *Conn) Send() {}
var MaxFrame = 1 << 20
const Version = 3
`,
			want: []string{
				"type Conn", "function Dial", "method Send",
				"var MaxFrame", "const Version",
			},
		},
		{
			name: "documented decls and group docs pass",
			path: "internal/core/x.go",
			src: `package core
// Box is an agg box.
type Box struct{}
// Start boots the box.
func Start() {}
// Wire limits.
var (
	MaxFrame = 1 << 20
	MaxRoute = 16
)
`,
			want: nil,
		},
		{
			name: "exported struct fields and interface methods need docs",
			path: "internal/obs/x.go",
			src: `package obs
// Span is a hop record.
type Span struct {
	// Hop names the layer.
	Hop string
	Node string
	internal int
}
// Sink receives spans.
type Sink interface {
	// Push stores a span.
	Push(Span)
	Drain() []Span
}
`,
			want: []string{"field Span.Node", "interface method Sink.Drain"},
		},
		{
			name: "trailing field comments count as docs",
			path: "internal/cluster/x.go",
			src: `package cluster
// Host is a server.
type Host struct {
	Name string // Name is the host name.
}
`,
			want: nil,
		},
		{
			name: "unscoped packages and unexported names are ignored",
			path: "internal/simnet/x.go",
			src: `package simnet
type Flow struct{}
func Run() {}
`,
			want: nil,
		},
		{
			name: "test files are exempt",
			path: "internal/transport/x_test.go",
			src: `package transport
func HelperExported() {}
`,
			want: nil,
		},
		{
			name: "lint ignore suppresses",
			path: "internal/transport/x.go",
			src: `package transport
//lint:ignore docrule generated shim
func Generated() {}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectMessages(t, runOn(t, tc.path, tc.src, "docrule"), tc.want...)
		})
	}
}
