package lint

import (
	"strings"
	"testing"
)

// runBufown runs the bufown analyzer over one non-test fixture file.
func runBufown(t *testing.T, src string) []Finding {
	t.Helper()
	return runMulti(t, map[string]string{"internal/core/x.go": src}, "bufown")
}

const bufownHeader = `package core
import "netagg/internal/bufpool"
`

func wantBufown(t *testing.T, got []Finding, wants ...string) {
	t.Helper()
	if len(got) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(got), len(wants), got)
	}
	for i, want := range wants {
		if !strings.Contains(got[i].Message, want) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i].Message, want)
		}
	}
}

func TestBufownLeakOnErrorPath(t *testing.T) {
	got := runBufown(t, bufownHeader+`
func f(n int, err error) error {
	b := bufpool.Get(n)
	if err != nil {
		return err
	}
	b.Release()
	return nil
}
`)
	wantBufown(t, got, `reference "b"`)
	if got[0].Line != 7 {
		t.Errorf("leak reported at line %d, want 7 (the leaking return)", got[0].Line)
	}
}

func TestBufownReleaseOnAllPathsIsSilent(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int, err error) error {
	b := bufpool.Get(n)
	if err != nil {
		b.Release()
		return err
	}
	b.Release()
	return nil
}
`))
}

func TestBufownDeferReleaseIsSilent(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int, err error) error {
	b := bufpool.Get(n)
	defer b.Release()
	if err != nil {
		return err
	}
	return nil
}
`))
}

func TestBufownDeferClosureReleaseIsSilent(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	defer func() {
		b.Release()
	}()
}
`))
}

func TestBufownDoubleRelease(t *testing.T) {
	got := runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	b.Release()
	b.Release()
}
`)
	wantBufown(t, got, `double Release of "b"`)
}

func TestBufownLeakAtFunctionEnd(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	_ = b
}
`), `reference "b"`)
}

func TestBufownReturnTransfersOwnership(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) *bufpool.Buf {
	b := bufpool.Get(n)
	return b
}
`))
}

func TestBufownCalleeReturningBufIsAcquire(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func fresh(n int) *bufpool.Buf {
	return bufpool.Get(n)
}
func g() {
	b := fresh(8)
	_ = b
}
`), `reference "b"`)
}

func TestBufownRetainIsAcquire(t *testing.T) {
	got := runBufown(t, bufownHeader+`
func f(b *bufpool.Buf) {
	c := b.Retain()
	_ = c
}
`)
	wantBufown(t, got, `reference "c"`)
}

func TestBufownDiscardedRetain(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(b *bufpool.Buf) {
	b.Retain()
}
`), "result of b.Retain() is discarded")
}

func TestBufownDiscardedRetainWithMarkerIsSilent(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(b *bufpool.Buf) {
	_ = b.Retain() //netagg:owns b
}
`))
}

func TestBufownOwnsParamMustBeDischarged(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
//netagg:owns part
func f(part *bufpool.Buf, bad bool) {
	if bad {
		return
	}
	part.Release()
}
`), `reference "part"`)
}

func TestBufownTransferToOwnsAnnotatedCallee(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
//netagg:owns part
func sink(part *bufpool.Buf) {
	part.Release()
}
func g(n int) {
	b := bufpool.Get(n)
	sink(b)
}
`))
}

func TestBufownCallWithoutOwnsKeepsObligation(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func peek(b *bufpool.Buf) {}
func g(n int) {
	b := bufpool.Get(n)
	peek(b)
}
`), `reference "b"`)
}

func TestBufownStoreNeedsMarker(t *testing.T) {
	got := runBufown(t, bufownHeader+`
type holder struct{ bufs []*bufpool.Buf }
func (h *holder) keepBad(n int) {
	b := bufpool.Get(n)
	h.bufs = append(h.bufs, b)
}
func (h *holder) keepGood(n int) {
	b := bufpool.Get(n)
	h.bufs = append(h.bufs, b) //netagg:owns b
}
`)
	wantBufown(t, got, `owned reference "b" is stored`)
}

func TestBufownChannelSendNeedsMarker(t *testing.T) {
	got := runBufown(t, bufownHeader+`
func bad(ch chan *bufpool.Buf, n int) {
	b := bufpool.Get(n)
	ch <- b
}
func good(ch chan *bufpool.Buf, n int) {
	b := bufpool.Get(n)
	ch <- b //netagg:owns b
}
`)
	wantBufown(t, got, `owned reference "b" is sent on a channel`)
}

func TestBufownGoroutineCaptureNeedsMarker(t *testing.T) {
	got := runBufown(t, bufownHeader+`
func bad(n int) {
	b := bufpool.Get(n)
	go func() { b.Release() }()
}
func good(n int) {
	b := bufpool.Get(n)
	go func() { b.Release() }() //netagg:owns b
}
`)
	wantBufown(t, got, `owned reference "b" is captured by a goroutine`)
}

func TestBufownBorrowedMustNotEscape(t *testing.T) {
	got := runBufown(t, bufownHeader+`
type holder struct{ p []byte }
//netagg:borrows p
func (h *holder) bad(p []byte) {
	h.p = p
}
//netagg:borrows p
func (h *holder) worse(ch chan []byte, p []byte) {
	ch <- p
}
`)
	wantBufown(t, got, `borrowed "p" escapes`, `borrowed "p" is sent on a channel`)
}

func TestBufownBorrowedLocalUseIsSilent(t *testing.T) {
	// The DecodeFanout pattern: slicing a borrowed param into a locally
	// built value and returning it propagates the borrow to the caller.
	wantBufown(t, runBufown(t, bufownHeader+`
type payload struct{ inner []byte }
//netagg:borrows p
func decode(p []byte) *payload {
	p = p[1:]
	return &payload{inner: p[:4:4]}
}
`))
}

func TestBufownBorrowedReleaseIsFlagged(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
//netagg:borrows b
func f(b *bufpool.Buf) {
	b.Release()
}
`), `Release of borrowed "b"`)
}

func TestBufownPartialReleaseReportsMaybe(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int, sometimes bool) {
	b := bufpool.Get(n)
	if sometimes {
		b.Release()
	}
}
`), "released on some paths but not this one")
}

func TestBufownScopedLeakInsideBlock(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int, ok bool) {
	if ok {
		b := bufpool.Get(n)
		_ = b
	}
}
`), "goes out of scope without Release")
}

func TestBufownRebindLosesReference(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	b = bufpool.Get(2 * n)
	b.Release()
}
`), `"b" is rebound while still owning`)
}

func TestBufownAliasTransfers(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	c := b
	c.Release()
}
`))
}

func TestBufownSwitchMergesPaths(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n, mode int) {
	b := bufpool.Get(n)
	switch mode {
	case 0:
		b.Release()
	default:
		b.Release()
	}
}
`))
}

func TestBufownSwitchWithoutDefaultLeaks(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n, mode int) {
	b := bufpool.Get(n)
	switch mode {
	case 0:
		b.Release()
	}
}
`), "released on some paths but not this one")
}

func TestBufownAllowSuppression(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	b.Release()
	b.Release() //netagg:bufown-allow intentional fixture for recycling tests
}
`))
}

func TestBufownAllowWithoutReasonIsIgnored(t *testing.T) {
	wantBufown(t, runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	b.Release()
	b.Release() //netagg:bufown-allow
}
`), `double Release of "b"`)
}

func TestBufownTestFilesExempt(t *testing.T) {
	got := runMulti(t, map[string]string{"internal/core/x_test.go": bufownHeader + `
func f(n int) {
	b := bufpool.Get(n)
	_ = b
}
`}, "bufown")
	wantBufown(t, got)
}

func TestBufownBufpoolPackageExempt(t *testing.T) {
	got := runMulti(t, map[string]string{"internal/bufpool/extra.go": `package bufpool
func (b *Buf) leakySelfTest() *Buf {
	c := b.Retain()
	_ = c
	return b
}
`}, "bufown")
	wantBufown(t, got)
}
