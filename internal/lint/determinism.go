package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// simPackages are the packages that must reproduce the paper's figures
// bit-for-bit: all time comes from the event clock and all randomness
// from seeded stats.Rand sources.
var simPackages = []string{"simnet", "strategies", "simexp", "stats", "figures", "workload"}

// wallClockFuncs are the time package functions that read or depend on
// the wall clock. Constructors like time.Duration arithmetic are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are math/rand top-level convenience functions backed by
// the process-global, non-reproducible source. Calls on an explicit
// *rand.Rand (rand.New(rand.NewSource(seed))) are allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true,
}

// Determinism flags wall-clock reads, global math/rand use, and
// map-iteration-order-dependent output in the simulation packages.
//
// Map iteration is detected with a local, conservative heuristic: an
// identifier ranged over is considered a map if, within the same
// function, it is a parameter declared with a map type, assigned
// make(map[...]...) or a map composite literal, or declared var with a
// map type. The range is only flagged when its body makes the iteration
// order observable — it appends to a slice, prints, or sends on a
// channel — and the appended slice is not subsequently passed to a
// sort.* / slices.Sort* call in the same function (the collect-then-sort
// idiom is the sanctioned way to iterate a map deterministically).
type Determinism struct{}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (Determinism) Doc() string {
	return "simulation packages must derive all time and randomness from the event clock and seeded sources"
}

// Check implements Analyzer.
func (Determinism) Check(f *File, report func(pos token.Pos, msg string)) {
	if f.Test || !inScope(f, simPackages...) {
		return
	}
	timeName := importName(f.AST, "time")
	randName := importName(f.AST, "math/rand")
	randV2Name := importName(f.AST, "math/rand/v2")

	for _, decl := range f.AST.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				checkDeterminismFunc(d, timeName, randName, randV2Name, report)
			}
		case *ast.GenDecl:
			// Package-level var initializers (including func literals
			// inside them) run before main and can read the wall clock
			// just as easily as function bodies.
			if d.Tok != token.IMPORT {
				checkNondeterministicCalls(d, timeName, randName, randV2Name, report)
			}
		}
	}
}

// checkNondeterministicCalls flags wall-clock and global-rand calls
// anywhere under node.
func checkNondeterministicCalls(node ast.Node, timeName, randName, randV2Name string, report func(token.Pos, string)) {
	ast.Inspect(node, func(n ast.Node) bool {
		v, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil { // Obj != nil: a local variable, not a package
			return true
		}
		switch {
		case timeName != "" && pkg.Name == timeName && wallClockFuncs[sel.Sel.Name]:
			report(v.Pos(), fmt.Sprintf("wall-clock call time.%s in simulation package; derive time from the event clock", sel.Sel.Name))
		case randName != "" && pkg.Name == randName && globalRandFuncs[sel.Sel.Name]:
			report(v.Pos(), fmt.Sprintf("global math/rand call rand.%s in simulation package; use a seeded stats.Rand", sel.Sel.Name))
		case randV2Name != "" && pkg.Name == randV2Name && globalRandFuncs[sel.Sel.Name]:
			report(v.Pos(), fmt.Sprintf("global math/rand/v2 call rand.%s in simulation package; use a seeded stats.Rand", sel.Sel.Name))
		}
		return true
	})
}

func checkDeterminismFunc(fn *ast.FuncDecl, timeName, randName, randV2Name string, report func(token.Pos, string)) {
	maps := collectMapIdents(fn)
	sorted := collectSortedIdents(fn)

	checkNondeterministicCalls(fn.Body, timeName, randName, randV2Name, report)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			id, ok := v.X.(*ast.Ident)
			if !ok || !maps[id.Name] {
				return true
			}
			if target, observable := orderObservable(v.Body); observable && !sorted[target] {
				report(v.Pos(), fmt.Sprintf("iteration over map %q produces order-dependent output; collect keys and sort, or use an ordered slice", id.Name))
			}
		}
		return true
	})
}

// collectMapIdents finds identifiers known (syntactically) to be maps in
// the function: map-typed parameters, var declarations, and make/composite
// literal assignments.
func collectMapIdents(fn *ast.FuncDecl) map[string]bool {
	maps := make(map[string]bool)
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); ok {
				for _, name := range field.Names {
					maps[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(v.Rhs) {
					continue
				}
				if isMapExpr(v.Rhs[i]) {
					maps[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := v.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, isMap := vs.Type.(*ast.MapType); isMap {
					for _, name := range vs.Names {
						maps[name.Name] = true
					}
				}
			}
		}
		return true
	})
	return maps
}

// isMapExpr recognises make(map[...]...) and map composite literals.
func isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, isMap := v.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := v.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// orderObservable reports whether the loop body makes iteration order
// visible, and if the mechanism is an append, the name of the target
// slice (so the caller can exempt collect-then-sort).
func orderObservable(body *ast.BlockStmt) (appendTarget string, observable bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			observable = true
		case *ast.CallExpr:
			switch fun := v.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					observable = true
					if len(v.Args) > 0 {
						if id, ok := v.Args[0].(*ast.Ident); ok {
							appendTarget = id.Name
						}
					}
				}
			case *ast.SelectorExpr:
				if pkg, ok := fun.X.(*ast.Ident); ok && pkg.Name == "fmt" {
					observable = true
				}
			}
		}
		return true
	})
	return appendTarget, observable
}

// collectSortedIdents finds identifiers passed to sort.* or slices.Sort*
// anywhere in the function.
func collectSortedIdents(fn *ast.FuncDecl) map[string]bool {
	sorted := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				sorted[id.Name] = true
			}
		}
		return true
	})
	return sorted
}
