package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseFixture parses one in-memory fixture for direct Run/UnusedIgnores
// use (runOn hides the *File, which unused tracking needs back).
func parseFixture(t *testing.T, displayPath, src string) *File {
	t.Helper()
	f, err := ParseSource(token.NewFileSet(), displayPath, []byte(src))
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return f
}

// TestIgnoreSuppressesExactlyOneAndUnusedFires proves the //lint:ignore
// life cycle: a directive over a real finding suppresses exactly that
// one diagnostic and is not reported as unused; the same directive over
// a clean line suppresses nothing and is.
func TestIgnoreSuppressesExactlyOneAndUnusedFires(t *testing.T) {
	used := parseFixture(t, "internal/shim/x.go", `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) {
	//lint:ignore errcheck-wire best-effort, audited 2026-08
	c.Send(1)
	c.Send(2)
}
`)
	findings := Run([]*File{used}, All())
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "c.Send is dropped") {
		t.Fatalf("findings = %v, want exactly the unsuppressed c.Send(2)", findings)
	}
	if unused := UnusedIgnores([]*File{used}, All()); len(unused) != 0 {
		t.Fatalf("used directive reported as unused: %v", unused)
	}

	stale := parseFixture(t, "internal/shim/x.go", `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c client) {
	//lint:ignore errcheck-wire this call cannot fail (stale claim)
	_ = c.Send(1)
}
`)
	if findings := Run([]*File{stale}, All()); len(findings) != 0 {
		t.Fatalf("clean fixture produced findings: %v", findings)
	}
	unused := UnusedIgnores([]*File{stale}, All())
	if len(unused) != 1 {
		t.Fatalf("unused = %v, want exactly one stale-directive report", unused)
	}
	if unused[0].Analyzer != "unusedignore" || unused[0].Line != 5 {
		t.Errorf("unused report = %+v, want unusedignore at line 5", unused[0])
	}
	if !strings.Contains(unused[0].Message, "errcheck-wire") {
		t.Errorf("message %q does not name the ignored analyzer", unused[0].Message)
	}

	// A directive naming an analyzer outside the run's suite is not
	// reported: it may be load-bearing in a fuller run.
	scoped := parseFixture(t, "internal/shim/x.go", `package shim
func f() {
	//lint:ignore bufown audited hand-off
	_ = 1
}
`)
	var subset []Analyzer
	for _, a := range All() {
		if a.Name() == "errcheck-wire" {
			subset = append(subset, a)
		}
	}
	Run([]*File{scoped}, subset)
	if unused := UnusedIgnores([]*File{scoped}, subset); len(unused) != 0 {
		t.Fatalf("out-of-suite directive reported: %v", unused)
	}
}

// TestAllowlistSuppressesExactlyOneAndUnusedFires proves the allowlist
// life cycle: an entry matching a real finding filters exactly that one
// and is not unused; a stale entry for a linted file is reported; an
// entry for a file outside the run's scope is left alone.
func TestAllowlistSuppressesExactlyOneAndUnusedFires(t *testing.T) {
	// Two findings with distinct messages: allowlist keys exclude line
	// numbers, so same-message findings would share one entry.
	f := parseFixture(t, "internal/shim/x.go", `package shim
type client struct{}
func (client) Send(v int) error { return nil }
func fire(c, d client) {
	c.Send(1)
	d.Send(2)
}
`)
	findings := Run([]*File{f}, All())
	if len(findings) != 2 {
		t.Fatalf("fixture produced %d findings, want 2", len(findings))
	}
	allowedKey := findings[0].Key() // Filter reuses the slice's backing array
	body := "# audited\n" + allowedKey + "\n" +
		"internal/shim/x.go\terrcheck-wire\tstale message that matches nothing\n" +
		"internal/core/unparsed.go\terrcheck-wire\tout-of-scope entry\n"
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	left := allow.Filter(findings)
	if len(left) != 1 || left[0].Key() == allowedKey {
		t.Fatalf("filter left %v, want only the unallowed finding", left)
	}
	unused := allow.UnusedKeys(map[string]bool{"internal/shim/x.go": true})
	if len(unused) != 1 || !strings.Contains(unused[0], "stale message") {
		t.Fatalf("unused keys = %v, want only the stale in-scope entry", unused)
	}
}

// TestBufownAllowSuppressesExactlyOneAndUnusedFires proves the
// //netagg:bufown-allow life cycle: an allow over a real leak suppresses
// exactly that diagnostic; an allow over clean code is reported stale.
func TestBufownAllowSuppressesExactlyOneAndUnusedFires(t *testing.T) {
	got := runBufown(t, bufownHeader+`
func f(n int, err error) error {
	b := bufpool.Get(n)
	if err != nil {
		//netagg:bufown-allow the caller parks the ref, audited 2026-08
		return err
	}
	return nil
}
`)
	if len(got) != 1 || got[0].Line != 10 {
		t.Fatalf("got %v, want exactly the unallowed leak at the final return (line 10)", got)
	}

	got = runBufown(t, bufownHeader+`
func f(n int) {
	b := bufpool.Get(n)
	//netagg:bufown-allow nothing leaks here any more
	b.Release()
}
`)
	if len(got) != 1 {
		t.Fatalf("got %v, want exactly one stale-allow report", got)
	}
	if !strings.Contains(got[0].Message, "bufown-allow suppresses nothing") {
		t.Errorf("message = %q, want stale bufown-allow report", got[0].Message)
	}
	if got[0].Line != 6 {
		t.Errorf("stale allow reported at line %d, want 6 (the comment)", got[0].Line)
	}
}
