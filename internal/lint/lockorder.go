package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock analyzer. For each data-plane
// package it builds the call-graph approximation from pkggraph.go and a
// lock-ordering graph: an edge L -> M means some execution path acquires
// mutex M (directly, or transitively through a resolvable same-package
// call) while already holding L. A cycle in that graph is a potential
// deadlock — two goroutines can interleave the two orders and wait on
// each other forever — and every edge participating in a cycle is
// reported at its acquisition site.
//
// Locks are named by their owning struct type ("Box.mu", "Pending.mu"),
// so the same field reached through different receivers is one node.
//
// False-negative limits: calls that cannot be resolved syntactically
// (interface methods, cross-package calls, function values) contribute
// no edges, and lock acquisitions hidden behind them are invisible.
// Cycles spanning packages are likewise invisible because the graph is
// per-package.
//
// An intentional ordering exception is declared with
//
//	//netagg:lockorder-allow L M <reason>
//
// anywhere in the package, which removes the L -> M edge. The reason is
// mandatory; a directive without one is ignored.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "mutex acquisition order must be acyclic across each data-plane package's call graph"
}

// Check implements Analyzer; LockOrder is package-scoped, so the
// per-file hook is a no-op.
func (LockOrder) Check(f *File, report func(pos token.Pos, msg string)) {}

// lockEdge is one "to acquired while holding from" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// CheckPackage implements PackageAnalyzer.
func (LockOrder) CheckPackage(files []*File, report func(pos token.Pos, msg string)) {
	var src []*File
	for _, f := range files {
		if !f.Test && inScope(f, "core", "wire", "shim", "cluster", "transport") {
			src = append(src, f)
		}
	}
	if len(src) == 0 {
		return
	}
	p := buildPackage(src)
	acq := p.transitiveAcquires()

	// Allowed edges, declared as "//netagg:lockorder-allow L M reason".
	allowed := make(map[string]bool)
	for _, d := range p.directives("lockorder-allow") {
		fields := strings.Fields(d)
		if len(fields) >= 3 {
			allowed[fields[0]+"\t"+fields[1]] = true
		}
	}

	// Collect edges deterministically: functions in sorted key order, so
	// the position recorded for a repeated edge is stable.
	keys := make([]string, 0, len(p.funcs))
	for key := range p.funcs {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	edges := make(map[string]map[string]token.Pos)
	addEdge := func(from, to string, pos token.Pos) {
		if from == to || allowed[from+"\t"+to] {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[string]token.Pos)
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = pos
		}
	}
	for _, key := range keys {
		fs := p.funcs[key]
		for _, a := range fs.acquires {
			for _, h := range a.held {
				addEdge(h, a.lock, a.pos)
			}
		}
		for _, c := range fs.calls {
			if len(c.held) == 0 {
				continue
			}
			callee := make([]string, 0, len(acq[c.callee]))
			for lock := range acq[c.callee] {
				callee = append(callee, lock)
			}
			sort.Strings(callee)
			for _, to := range callee {
				for _, h := range c.held {
					addEdge(h, to, c.pos)
				}
			}
		}
	}

	// Every edge whose reverse direction is reachable is part of a cycle.
	froms := make([]string, 0, len(edges))
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(edges[from]))
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !reachable(edges, to, from) {
				continue
			}
			report(edges[from][to], fmt.Sprintf(
				"lock order cycle: %s acquired while holding %s, but elsewhere %s is acquired while holding %s (potential deadlock); pick one canonical order or declare //netagg:lockorder-allow %s %s <reason>",
				to, from, from, to, from, to))
		}
	}
}

// reachable reports whether dst is reachable from src over the edges.
func reachable(edges map[string]map[string]token.Pos, src, dst string) bool {
	seen := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			return true
		}
		for next := range edges[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}
