package lint

import (
	"flag"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// update rewrites the golden expected.txt files instead of comparing:
//
//	go test ./internal/lint -run Golden -update
var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// TestGolden runs each AST analyzer over its positive and negative
// fixture corpus under testdata/golden/<analyzer>/{pos,neg} and
// compares the rendered findings byte-for-byte with expected.txt. The
// escape analyzer has its own golden test (TestEscapeGateGolden) since
// it drives the real compiler rather than lint.Run.
func TestGolden(t *testing.T) {
	root := filepath.Join("testdata", "golden")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || name == "escape" {
			continue
		}
		var analyzer Analyzer
		for _, a := range All() {
			if a.Name() == name {
				analyzer = a
			}
		}
		if analyzer == nil {
			t.Errorf("golden dir %q names no registered analyzer", name)
			continue
		}
		for _, variant := range []string{"pos", "neg"} {
			dir := filepath.Join(root, name, variant)
			if _, err := os.Stat(dir); err != nil {
				t.Errorf("%s: missing %s fixture dir", name, variant)
				continue
			}
			t.Run(name+"/"+variant, func(t *testing.T) {
				got := runGoldenDir(t, dir, analyzer)
				checkGolden(t, filepath.Join(dir, "expected.txt"), got)
				if variant == "pos" && got == "" {
					t.Errorf("positive fixture produced no findings: the analyzer does not fire")
				}
				if variant == "neg" && got != "" {
					t.Errorf("negative fixture produced findings:\n%s", got)
				}
			})
		}
	}
}

// runGoldenDir parses every .go file under dir as one corpus and
// renders the analyzer's findings, one per line.
func runGoldenDir(t *testing.T, dir string, analyzer Analyzer) string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatalf("no fixture files under %s", dir)
	}
	fset := token.NewFileSet()
	var files []*File
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ParseSource(fset, filepath.ToSlash(p), src)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		files = append(files, f)
	}
	findings := Run(files, []Analyzer{analyzer})
	var lines []string
	for _, f := range findings {
		lines = append(lines, f.String())
	}
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// checkGolden compares got with the expected file, rewriting it under
// -update.
func checkGolden(t *testing.T, expPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(expPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(expPath)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", expPath, err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s:\n--- got ---\n%s--- want ---\n%s", expPath, got, want)
	}
}
