package lint

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestEscapeGateGolden proves the -escape gate end to end against the
// real compiler: the positive fixture (a //netagg:hotpath function that
// returns &local) must fail the gate with the exact expected
// diagnostic, and the negative fixture must pass clean. Each fixture is
// copied into a throwaway module so `go build -gcflags=-m` reports
// paths relative to the module root ("hot/hot.go:N:M"), which keeps the
// golden output machine-independent.
func TestEscapeGateGolden(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	for _, variant := range []string{"pos", "neg"} {
		t.Run(variant, func(t *testing.T) {
			fixture := filepath.Join("testdata", "golden", "escape", variant, "hot", "hot.go")
			src, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatal(err)
			}

			// Stage a minimal module with the fixture at hot/hot.go.
			mod := t.TempDir()
			if err := os.Mkdir(filepath.Join(mod, "hot"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module escapegolden\n\ngo 1.22\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(mod, "hot", "hot.go"), src, 0o644); err != nil {
				t.Fatal(err)
			}

			fset := token.NewFileSet()
			f, err := ParseSource(fset, "hot/hot.go", src)
			if err != nil {
				t.Fatal(err)
			}
			hot := HotFuncs([]*File{f})
			if len(hot) == 0 {
				t.Fatal("fixture has no //netagg:hotpath annotation")
			}

			cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
			cmd.Dir = mod
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go build failed: %v\n%s", err, out)
			}

			findings := EscapeFindings(hot, ParseEscapeOutput(string(out)))
			var lines []string
			for _, fd := range findings {
				lines = append(lines, fd.String())
			}
			got := ""
			if len(lines) > 0 {
				got = strings.Join(lines, "\n") + "\n"
			}

			checkGolden(t, filepath.Join("testdata", "golden", "escape", variant, "expected.txt"), got)
			if variant == "pos" && got == "" {
				t.Error("deliberate fixture allocation did not fail the gate")
			}
			if variant == "neg" && got != "" {
				t.Errorf("allocation-free fixture failed the gate:\n%s", got)
			}
		})
	}
}
