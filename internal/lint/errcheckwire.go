package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// droppedErrorMethods are send/encode/deadline methods on the hot data
// path whose error return must not be silently discarded: a lost wire
// write is a lost partial result, which under recovery semantics means a
// stalled or double-counted request. Explicitly assigning to _ is
// accepted as an audited discard.
var droppedErrorMethods = map[string]bool{
	"Write": true, "Flush": true, "Send": true, "SendAll": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// ErrcheckWire flags statements in core/wire/shim/cluster/transport that
// call a wire-protocol send/encode function or an io.Writer write and
// drop the error result (the call is used as a bare statement).
//
// Purely syntactic: a call x.M(...) used as a statement is flagged when M
// is in droppedErrorMethods, except for in-memory writers recognised by
// receiver convention (buf, b.buf, sb, w.buf — bytes.Buffer /
// strings.Builder style receivers whose Write cannot fail).
type ErrcheckWire struct{}

// Name implements Analyzer.
func (ErrcheckWire) Name() string { return "errcheck-wire" }

// Doc implements Analyzer.
func (ErrcheckWire) Doc() string {
	return "error returns of wire sends, writer writes, and connection deadline setters must be handled"
}

// Check implements Analyzer.
func (ErrcheckWire) Check(f *File, report func(pos token.Pos, msg string)) {
	if f.Test || !inScope(f, dataPlanePackages...) {
		return
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !droppedErrorMethods[name] {
			return true
		}
		recv := exprString(sel.X)
		if isInMemoryWriter(recv) {
			return true
		}
		report(stmt.Pos(), fmt.Sprintf("result of %s.%s is dropped; handle the error or assign it to _ with a justification", recv, name))
		return true
	})
}

// isInMemoryWriter recognises receiver names that by repo convention are
// bytes.Buffer/strings.Builder values whose Write never fails.
func isInMemoryWriter(recv string) bool {
	last := recv
	if i := strings.LastIndex(recv, "."); i >= 0 {
		last = recv[i+1:]
	}
	switch last {
	case "buf", "sb", "builder", "out":
		return true
	}
	return false
}
