package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// DocRule enforces godoc coverage on the repository's API surface: in
// the packages that other layers program against (transport, cluster,
// core, obs) every exported top-level identifier, exported struct
// field, and exported interface method must carry a doc comment. The
// packages implement the paper's mechanisms, so their doc comments are
// where §-references live (e.g. "§3.2.1 Task scheduler") — an
// undocumented exported name is a broken link in that mapping.
//
// Accepted forms: a doc comment on the declaration itself, or — for
// grouped var/const declarations — on the enclosing group (the group
// doc then covers every name in the group). Trailing line comments on
// fields count too.
type DocRule struct{}

// docScope is the set of package directories DocRule applies to.
var docScope = []string{"transport", "cluster", "core", "obs", "treeplan"}

// Name implements Analyzer.
func (DocRule) Name() string { return "docrule" }

// Doc implements Analyzer.
func (DocRule) Doc() string {
	return "exported identifiers in transport, cluster, core, obs, treeplan must have doc comments"
}

// Check implements Analyzer.
func (DocRule) Check(f *File, report func(pos token.Pos, msg string)) {
	if f.Test || !inScope(f, docScope...) {
		return
	}
	for _, decl := range f.AST.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Name.Pos(), fmt.Sprintf("exported %s %s has no doc comment", funcKind(d), d.Name.Name))
			}
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
}

// funcKind distinguishes methods from functions in messages.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl handles type/var/const declarations, accepting a group
// doc comment as covering every spec in the group.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Name.Pos(), fmt.Sprintf("exported type %s has no doc comment", s.Name.Name))
			}
			if s.Name.IsExported() {
				checkTypeBody(s.Name.Name, s.Type, report)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), fmt.Sprintf("exported %s %s has no doc comment", kindWord(d.Tok), name.Name))
				}
			}
		}
	}
}

// kindWord maps the declaration token to the word used in messages.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkTypeBody reports undocumented exported struct fields and
// interface methods of an exported type.
func checkTypeBody(typeName string, expr ast.Expr, report func(token.Pos, string)) {
	switch t := expr.(type) {
	case *ast.StructType:
		if t.Fields == nil {
			return
		}
		for _, field := range t.Fields.List {
			if field.Doc != nil || field.Comment != nil {
				continue
			}
			for _, name := range field.Names {
				if name.IsExported() {
					report(name.Pos(), fmt.Sprintf("exported field %s.%s has no doc comment", typeName, name.Name))
				}
			}
		}
	case *ast.InterfaceType:
		if t.Methods == nil {
			return
		}
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), fmt.Sprintf("exported interface method %s.%s has no doc comment", typeName, name.Name))
				}
			}
		}
	}
}
