package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file is the shared interprocedural substrate of the lockorder and
// ctxflow analyzers: a syntactic per-package model of functions, struct
// field types, a call-graph approximation, and per-function summaries of
// lock acquisitions and blocking operations.
//
// Resolution is deliberately conservative. A call is an edge only when
// the callee is identifiable without type checking: a package-level
// function `foo(...)`, or a method `x.m(...)` / `x.f.m(...)` whose chain
// of identifiers resolves through the local type environment (receiver,
// parameters, `x := T{...}` / `x := &T{...}` locals, ranges over typed
// fields) and declared struct field types. Unresolved calls are simply
// absent from the graph — the analyzers err towards false negatives,
// never towards noise.

// pkgSummary is the per-package model.
type pkgSummary struct {
	files []*File
	// funcs maps "Type.Method" (or "Func" for package-level functions)
	// to its summary.
	funcs map[string]*funcSummary
	// fieldTypes maps a struct type name to its fields' resolved type
	// names: fieldTypes["Box"]["pool"] == "Pool". Map- and slice-typed
	// fields resolve to their element type (what a range yields).
	fieldTypes map[string]map[string]string
	// ctxFields is the set of struct types carrying a context.Context
	// field — their methods are considered cancellation-aware.
	ctxFields map[string]bool
}

// funcSummary is one function's interprocedural summary.
type funcSummary struct {
	file *File
	decl *ast.FuncDecl
	key  string // "Type.Method" or "Func"

	recvName string // receiver identifier ("" for functions)
	recvType string // receiver type name ("" for functions)

	ctxParam string // name of the context.Context parameter ("" if none)
	usesCtx  bool   // body references the context parameter

	acquires []lockAcq  // direct lock acquisitions
	calls    []callRef  // resolvable same-package calls
	blocks   []blockOp  // direct blocking operations
	typeEnv  typeEnv    // identifier -> type name, for the analyzers
}

// lockAcq is one x.Lock()/x.RLock() site.
type lockAcq struct {
	lock string   // normalized name, e.g. "Box.mu"
	held []string // locks already held at this acquisition
	pos  token.Pos
}

// callRef is one resolvable intra-package call site.
type callRef struct {
	callee string   // key into pkgSummary.funcs
	held   []string // locks held at the call
	pos    token.Pos
}

// blockKind classifies a blocking operation for ctxflow.
type blockKind int

const (
	blockSend    blockKind = iota // naked channel send
	blockRecv                     // naked channel receive
	blockSelect                   // select with no default and no ctx.Done case
	blockSleep                    // time.Sleep
)

// blockOp is one potentially unbounded blocking site.
type blockOp struct {
	kind blockKind
	pos  token.Pos
	desc string // expression rendering for the message
}

// typeEnv maps local identifiers to (package-local) type names.
type typeEnv map[string]string

// buildPackage summarises one package's files.
func buildPackage(files []*File) *pkgSummary {
	p := &pkgSummary{
		files:      files,
		funcs:      make(map[string]*funcSummary),
		fieldTypes: make(map[string]map[string]string),
		ctxFields:  make(map[string]bool),
	}
	for _, f := range files {
		p.collectTypes(f)
	}
	// Two phases: register every function key first, then scan bodies, so
	// calls to functions declared later (or in another file) resolve.
	var all []*funcSummary
	for _, f := range files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fs := p.newSummary(f, fn)
			p.funcs[fs.key] = fs
			all = append(all, fs)
		}
	}
	for _, fs := range all {
		p.scanBody(fs)
	}
	return p
}

// collectTypes records struct field types and context-carrying structs.
func (p *pkgSummary) collectTypes(f *File) {
	for _, decl := range f.AST.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			fields := make(map[string]string)
			for _, fld := range st.Fields.List {
				tn := typeName(fld.Type)
				if isCtxType(fld.Type) {
					p.ctxFields[ts.Name.Name] = true
				}
				if tn == "" {
					continue
				}
				for _, name := range fld.Names {
					fields[name.Name] = tn
				}
			}
			p.fieldTypes[ts.Name.Name] = fields
		}
	}
}

// typeName resolves an in-package type expression to a bare name:
// `T`, `*T`, `[]T`, `[]*T`, `map[K]T`, `map[K]*T`. Map and slice types
// resolve to the element type (the interesting name when ranging).
// Qualified (other-package) and more exotic types yield "".
func typeName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return typeName(v.X)
	case *ast.ArrayType:
		return typeName(v.Elt)
	case *ast.MapType:
		return typeName(v.Value)
	}
	return ""
}

// isCtxType reports whether the type expression is context.Context.
func isCtxType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// newSummary builds one function's signature-level summary (key,
// receiver, parameter type bindings); the body is scanned in scanBody
// once every key is registered.
func (p *pkgSummary) newSummary(f *File, fn *ast.FuncDecl) *funcSummary {
	fs := &funcSummary{file: f, decl: fn, typeEnv: make(typeEnv)}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		fs.recvType = typeName(fn.Recv.List[0].Type)
		if len(fn.Recv.List[0].Names) == 1 {
			fs.recvName = fn.Recv.List[0].Names[0].Name
			if fs.recvType != "" {
				fs.typeEnv[fs.recvName] = fs.recvType
			}
		}
	}
	fs.key = fn.Name.Name
	if fs.recvType != "" {
		fs.key = fs.recvType + "." + fn.Name.Name
	}
	if fn.Type.Params != nil {
		for _, par := range fn.Type.Params.List {
			tn := typeName(par.Type)
			for _, name := range par.Names {
				if isCtxType(par.Type) && fs.ctxParam == "" && name.Name != "_" {
					fs.ctxParam = name.Name
				}
				if tn != "" {
					fs.typeEnv[name.Name] = tn
				}
			}
		}
	}
	return fs
}

// scanBody records the function's lock events, calls, and blocking
// operations (second phase of buildPackage).
func (p *pkgSummary) scanBody(fs *funcSummary) {
	sc := &summaryScan{pkg: p, fs: fs}
	sc.block(fs.decl.Body.List, nil)
	if fs.ctxParam != "" {
		ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == fs.ctxParam {
				fs.usesCtx = true
			}
			return true
		})
	}
}

// resolveType resolves an identifier-rooted selector chain to a type
// name: `p` -> env; `m.pending` -> fieldTypes[env(m)]["pending"].
func (p *pkgSummary) resolveType(env typeEnv, e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return env[v.Name]
	case *ast.ParenExpr:
		return p.resolveType(env, v.X)
	case *ast.StarExpr:
		return p.resolveType(env, v.X)
	case *ast.SelectorExpr:
		base := p.resolveType(env, v.X)
		if base == "" {
			return ""
		}
		return p.fieldTypes[base][v.Sel.Name]
	case *ast.IndexExpr:
		return p.resolveType(env, v.X)
	}
	return ""
}

// lockName normalizes a mutex receiver expression: the base identifier
// is replaced by its resolved type, so `b.mu` inside a Box method and
// `box.mu` elsewhere both become "Box.mu". Unresolvable bases keep
// their textual form.
func (p *pkgSummary) lockName(env typeEnv, e ast.Expr) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if base := p.resolveType(env, sel.X); base != "" {
			return base + "." + sel.Sel.Name
		}
	}
	return exprString(e)
}

// resolveCallee maps a call expression to a same-package function key,
// or "" when the callee cannot be identified syntactically.
func (p *pkgSummary) resolveCallee(env typeEnv, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := p.funcs[fun.Name]; ok {
			return fun.Name
		}
	case *ast.SelectorExpr:
		base := p.resolveType(env, fun.X)
		if base == "" {
			return ""
		}
		key := base + "." + fun.Sel.Name
		if _, ok := p.funcs[key]; ok {
			return key
		}
	}
	return ""
}

// summaryScan walks a function body tracking held locks and the local
// type environment, recording acquisitions, resolvable calls, and
// blocking operations into the summary.
type summaryScan struct {
	pkg *pkgSummary
	fs  *funcSummary
}

// block scans statements sequentially, threading held through
// straight-line code and copying it into branches (same discipline as
// lockdiscipline's scanner).
func (s *summaryScan) block(stmts []ast.Stmt, held []string) []string {
	for _, stmt := range stmts {
		held = s.stmt(stmt, held)
	}
	return held
}

func cloneHeld(held []string) []string {
	return append([]string(nil), held...)
}

func (s *summaryScan) stmt(stmt ast.Stmt, held []string) []string {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if name, kind := s.lockCallName(v.X); kind != 0 {
			if kind > 0 {
				s.fs.acquires = append(s.fs.acquires, lockAcq{lock: name, held: cloneHeld(held), pos: v.Pos()})
				return append(held, name)
			}
			return releaseHeld(held, name)
		}
		s.expr(v.X, held)

	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock to function end: do not release.
		if _, kind := s.lockCallName(v.Call); kind != 0 {
			return held
		}

	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			s.expr(rhs, held)
		}
		// Local type bindings: x := T{...} / x := &T{...}.
		if len(v.Lhs) == len(v.Rhs) {
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if tn := litTypeName(v.Rhs[i]); tn != "" {
					s.fs.typeEnv[id.Name] = tn
				}
			}
		}

	case *ast.DeclStmt:
		// var x T bindings.
		if gd, ok := v.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				if tn := typeName(vs.Type); tn != "" {
					for _, name := range vs.Names {
						s.fs.typeEnv[name.Name] = tn
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, r := range v.Results {
			s.expr(r, held)
		}

	case *ast.SendStmt:
		s.expr(v.Value, held)
		s.fs.blocks = append(s.fs.blocks, blockOp{kind: blockSend, pos: v.Pos(), desc: exprString(v.Chan)})

	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init, held)
		}
		s.expr(v.Cond, held)
		s.block(v.Body.List, cloneHeld(held))
		if v.Else != nil {
			s.stmt(v.Else, cloneHeld(held))
		}

	case *ast.BlockStmt:
		s.block(v.List, cloneHeld(held))

	case *ast.ForStmt:
		inner := cloneHeld(held)
		if v.Init != nil {
			inner = s.stmt(v.Init, inner)
		}
		if v.Cond != nil {
			s.expr(v.Cond, inner)
		}
		s.block(v.Body.List, inner)

	case *ast.RangeStmt:
		s.expr(v.X, held)
		// Range value variables inherit the ranged expression's element
		// type: `for _, p := range m.pending` binds p.
		if v.Tok == token.DEFINE && v.Value != nil {
			if id, ok := v.Value.(*ast.Ident); ok {
				if tn := s.pkg.resolveType(s.fs.typeEnv, v.X); tn != "" {
					s.fs.typeEnv[id.Name] = tn
				}
			}
		}
		s.block(v.Body.List, cloneHeld(held))

	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init, held)
		}
		if v.Tag != nil {
			s.expr(v.Tag, held)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, cloneHeld(held))
			}
		}

	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, cloneHeld(held))
			}
		}

	case *ast.SelectStmt:
		hasDefault := false
		hasDone := false
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			} else if commIsCtxDone(cc.Comm) || commIsTimeout(cc.Comm) {
				hasDone = true
			}
		}
		if !hasDefault && !hasDone {
			s.fs.blocks = append(s.fs.blocks, blockOp{kind: blockSelect, pos: v.Pos(), desc: "select"})
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.block(cc.Body, cloneHeld(held))
			}
		}

	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks; its body is
		// scanned with a fresh held set so its own blocking ops and
		// acquisitions still enter the summary.
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			s.block(fl.Body.List, nil)
		}

	case *ast.LabeledStmt:
		return s.stmt(v.Stmt, held)
	}
	return held
}

// expr records blocking receives, calls, and nested function literals
// inside an expression.
func (s *summaryScan) expr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			s.block(v.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				s.fs.blocks = append(s.fs.blocks, blockOp{kind: blockRecv, pos: v.Pos(), desc: exprString(v.X)})
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if recv, ok := sel.X.(*ast.Ident); ok && recv.Name == "time" && sel.Sel.Name == "Sleep" {
					if importName(s.fs.file.AST, "time") == "time" {
						s.fs.blocks = append(s.fs.blocks, blockOp{kind: blockSleep, pos: v.Pos(), desc: "time.Sleep"})
					}
				}
			}
			if callee := s.pkg.resolveCallee(s.fs.typeEnv, v); callee != "" {
				s.fs.calls = append(s.fs.calls, callRef{callee: callee, held: cloneHeld(held), pos: v.Pos()})
			}
		}
		return true
	})
}

// lockCallName recognises x.Lock()/x.RLock() (+1) and x.Unlock()/
// x.RUnlock() (-1), returning the normalized lock name.
func (s *summaryScan) lockCallName(e ast.Expr) (string, int) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return s.pkg.lockName(s.fs.typeEnv, sel.X), 1
	case "Unlock", "RUnlock":
		return s.pkg.lockName(s.fs.typeEnv, sel.X), -1
	}
	return "", 0
}

// releaseHeld removes the most recent acquisition of name.
func releaseHeld(held []string, name string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == name {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// commRecvExpr extracts the channel expression a select comm statement
// receives from (nil for sends or non-receive comms).
func commRecvExpr(comm ast.Stmt) ast.Expr {
	var recv ast.Expr
	switch v := comm.(type) {
	case *ast.ExprStmt:
		recv = v.X
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			recv = v.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return nil
	}
	return ue.X
}

// commIsCtxDone reports whether a select comm statement receives from a
// Done() channel (`<-ctx.Done()`, `case <-c.ctx.Done():`).
func commIsCtxDone(comm ast.Stmt) bool {
	call, ok := commRecvExpr(comm).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// commIsTimeout reports whether a select comm statement receives from a
// timer: `<-time.After(...)`, `<-ticker.C`, `<-timer.C`. A timer case
// bounds the select just as ctx.Done does.
func commIsTimeout(comm ast.Stmt) bool {
	switch ch := commRecvExpr(comm).(type) {
	case *ast.CallExpr:
		if sel, ok := ch.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "After" || sel.Sel.Name == "Tick"
		}
	case *ast.SelectorExpr:
		return ch.Sel.Name == "C"
	}
	return false
}

// litTypeName resolves `T{...}` / `&T{...}` composite literals to T.
func litTypeName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return litTypeName(v.X)
		}
	case *ast.CompositeLit:
		if id, ok := v.Type.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// transitiveAcquires computes, for every function, the set of locks it
// may acquire directly or through resolvable calls (fixed point over the
// call graph; cycles converge because sets only grow).
func (p *pkgSummary) transitiveAcquires() map[string]map[string]bool {
	acq := make(map[string]map[string]bool, len(p.funcs))
	for key, fs := range p.funcs {
		set := make(map[string]bool)
		for _, a := range fs.acquires {
			set[a.lock] = true
		}
		acq[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key, fs := range p.funcs {
			set := acq[key]
			for _, c := range fs.calls {
				for lock := range acq[c.callee] {
					if !set[lock] {
						set[lock] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// transitiveBlocking computes the set of functions that may block
// (directly or through resolvable calls) without consulting a context:
// naked sends/receives, done-less selects, sleeps.
func (p *pkgSummary) transitiveBlocking() map[string]bool {
	blocking := make(map[string]bool, len(p.funcs))
	for key, fs := range p.funcs {
		if len(fs.blocks) > 0 {
			blocking[key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for key, fs := range p.funcs {
			if blocking[key] {
				continue
			}
			for _, c := range fs.calls {
				if blocking[c.callee] {
					blocking[key] = true
					changed = true
					break
				}
			}
		}
	}
	return blocking
}

// directive scans the package's comments for `//netagg:<name> <rest>`
// lines and returns each rest string.
func (p *pkgSummary) directives(name string) []string {
	var out []string
	prefix := "netagg:" + name
	for _, f := range p.files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if strings.HasPrefix(text, prefix) {
					out = append(out, strings.TrimSpace(strings.TrimPrefix(text, prefix)))
				}
			}
		}
	}
	return out
}
