package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// GoroutineHygiene flags `go func` literals that (a) capture the loop
// variable of an enclosing for/range statement instead of receiving it
// as an argument, or (b) contain an unconditional `for {}` loop with no
// exit path — no return, break, select, channel receive, or reference to
// a shutdown identifier (ctx/done/stop/quit/closed) — making the
// goroutine unstoppable and a guaranteed leak on shutdown.
//
// Loop-variable capture is per-iteration-safe since Go 1.22, but passing
// the variable explicitly keeps the dependency visible and survives
// copy-paste into older modules; the check is cheap to satisfy and the
// paper-reproduction fleet (boxes, shims, probers) spawns goroutines in
// accept loops where aliasing bugs are costly.
type GoroutineHygiene struct{}

// Name implements Analyzer.
func (GoroutineHygiene) Name() string { return "goroutine-hygiene" }

// Doc implements Analyzer.
func (GoroutineHygiene) Doc() string {
	return "go func literals must not capture loop variables and must have a shutdown path"
}

// Check implements Analyzer.
func (GoroutineHygiene) Check(f *File, report func(pos token.Pos, msg string)) {
	if f.Test {
		return
	}
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		checkGoroutines(fn.Body, nil, report)
	}
}

// checkGoroutines walks statements tracking enclosing loop variables.
func checkGoroutines(n ast.Node, loopVars []string, report func(token.Pos, string)) {
	switch v := n.(type) {
	case *ast.ForStmt:
		vars := loopVars
		if v.Init != nil {
			if as, ok := v.Init.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						vars = append(vars, id.Name)
					}
				}
			}
		}
		checkGoroutines(v.Body, vars, report)
		return
	case *ast.RangeStmt:
		vars := loopVars
		for _, e := range []ast.Expr{v.Key, v.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				vars = append(vars, id.Name)
			}
		}
		checkGoroutines(v.Body, vars, report)
		return
	case *ast.GoStmt:
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			checkGoLiteral(v, fl, loopVars, report)
			// Continue into the body for nested go statements; the body's
			// own loops reset capture tracking.
			checkGoroutines(fl.Body, nil, report)
			return
		}
	}
	// Generic descent.
	children(n, func(c ast.Node) {
		checkGoroutines(c, loopVars, report)
	})
}

// children invokes fn on each direct child node.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		fn(c)
		return false
	})
}

// checkGoLiteral applies both hygiene checks to one go func literal.
func checkGoLiteral(g *ast.GoStmt, fl *ast.FuncLit, loopVars []string, report func(token.Pos, string)) {
	// Parameters of the literal shadow loop variables; so do call args
	// that rebind them (go func(i int){...}(i) is the sanctioned form).
	shadowed := make(map[string]bool)
	if fl.Type.Params != nil {
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				shadowed[name.Name] = true
			}
		}
	}
	for _, lv := range loopVars {
		if shadowed[lv] {
			continue
		}
		if referencesIdent(fl.Body, lv) {
			report(g.Pos(), fmt.Sprintf("go func literal captures loop variable %q; pass it as an argument", lv))
		}
	}

	// Unstoppable loop check.
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != fl {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if hasExitPath(loop.Body) {
			return true
		}
		report(loop.Pos(), "infinite loop in goroutine has no shutdown path (no return/break/select/receive or ctx/done/stop reference)")
		return true
	})
}

// referencesIdent reports whether body mentions name as an identifier.
func referencesIdent(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// shutdownNames are identifier substrings that signal a shutdown path.
var shutdownNames = []string{"ctx", "done", "stop", "quit", "closed", "cancel"}

// hasExitPath reports whether the loop body can terminate the goroutine:
// a return, a top-level break, a select or channel receive (assumed to
// observe closure), or any reference to a shutdown-flavoured identifier.
func hasExitPath(body *ast.BlockStmt) bool {
	exit := false
	ast.Inspect(body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // separate goroutine/closure scope
		case *ast.ReturnStmt, *ast.SelectStmt:
			exit = true
		case *ast.BranchStmt:
			if v.Tok == token.BREAK || v.Tok == token.GOTO {
				exit = true
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				exit = true // receive: closing the channel unblocks it
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				// Method calls that can fail and lead to return are
				// handled by the ReturnStmt case; panics count too.
				_ = sel
			}
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "panic" {
				exit = true
			}
		case *ast.Ident:
			lower := strings.ToLower(v.Name)
			for _, s := range shutdownNames {
				if strings.Contains(lower, s) {
					exit = true
					break
				}
			}
		}
		return !exit
	})
	return exit
}
