package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file implements the //netagg:hotpath escape gate. The repo's
// performance claims (0 allocs/op allocator waterfill, 6.4ns obs
// counters, allocation-free transport writes) are benchmark results —
// easy to regress silently, because benchmarks only fail when someone
// runs them and reads the numbers. The gate turns the property into a
// machine-checked invariant: a function whose doc comment carries
//
//	//netagg:hotpath
//
// must produce no heap allocations according to the compiler's own
// escape analysis. `netagg-lint -escape ./...` runs
// `go build -gcflags=-m`, parses the "escapes to heap" / "moved to
// heap" diagnostics, and fails if any land inside an annotated
// function's line range. Go 1.21+ replays cached compile diagnostics,
// so the gate is warm-cache cheap.
//
// Inlining caveat: diagnostics are attributed to the line of the source
// that allocates, so an allocation introduced by a callee only charges
// the hot function if the compiler inlines it there. Allocations hidden
// behind non-inlined calls are a false-negative limit, documented in
// DESIGN.md §12.

// HotFunc is one //netagg:hotpath-annotated function and its source
// line range.
type HotFunc struct {
	File  string // path as parsed (repo-relative in the driver)
	Name  string // "Type.Method" or "Func"
	Start int    // first line of the declaration
	End   int    // last line of the body
}

// HotFuncs collects annotated functions from the parsed files, sorted
// by file then start line.
func HotFuncs(files []*File) []HotFunc {
	var out []HotFunc
	for _, f := range files {
		if f.Test {
			// Test files are not compiled by `go build`, so an annotation
			// there could never be checked.
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathDirective(fn.Doc) {
				continue
			}
			name := fn.Name.Name
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				if tn := typeName(fn.Recv.List[0].Type); tn != "" {
					name = tn + "." + name
				}
			}
			out = append(out, HotFunc{
				File:  filepath.Clean(f.Path),
				Name:  name,
				Start: f.Fset.Position(fn.Pos()).Line,
				End:   f.Fset.Position(fn.Body.End()).Line,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// hasHotpathDirective reports whether a doc comment contains the
// //netagg:hotpath marker line.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "netagg:hotpath" || strings.HasPrefix(text, "netagg:hotpath ") {
			return true
		}
	}
	return false
}

// EscapeDiag is one parsed heap-allocation diagnostic.
type EscapeDiag struct {
	File string
	Line int
	Col  int
	Msg  string
}

// ParseEscapeOutput extracts heap-allocation diagnostics from
// `go build -gcflags=-m` output. Only lines reporting an actual
// allocation count: "escapes to heap" and "moved to heap". Inlining
// notes, "does not escape", and "leaking param" (which describes the
// callee's contract, not an allocation at this site) are skipped.
func ParseEscapeOutput(out string) []EscapeDiag {
	var diags []EscapeDiag
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		msgIsAlloc := (strings.Contains(line, "escapes to heap") && !strings.Contains(line, "does not escape")) ||
			strings.Contains(line, "moved to heap")
		if !msgIsAlloc {
			continue
		}
		// Format: path/file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 {
			continue
		}
		lineNo, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		col, _ := strconv.Atoi(parts[2])
		diags = append(diags, EscapeDiag{
			File: filepath.Clean(parts[0]),
			Line: lineNo,
			Col:  col,
			Msg:  strings.TrimSpace(parts[3]),
		})
	}
	return diags
}

// EscapeFindings matches diagnostics against the annotated functions'
// line ranges and renders gate failures. Findings are ordered by file,
// line.
func EscapeFindings(hot []HotFunc, diags []EscapeDiag) []Finding {
	var out []Finding
	for _, d := range diags {
		for _, h := range hot {
			if d.File != h.File || d.Line < h.Start || d.Line > h.End {
				continue
			}
			out = append(out, Finding{
				Analyzer: "escape",
				File:     d.File,
				Line:     d.Line,
				Col:      d.Col,
				Message:  fmt.Sprintf("hotpath function %s allocates: %s", h.Name, d.Msg),
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
