// Package lint is netagg's repo-specific static analyzer framework. It
// enforces the two invariants the reproduction's correctness claims rest
// on: the agg-box data plane (core, wire, shim, cluster) must stay
// race-free and leak-free under churn, and the flow-level simulator
// (simnet, strategies, simexp, stats, figures, workload) must stay
// deterministic so the paper's FCT-percentile figures reproduce
// bit-for-bit across runs.
//
// The framework is pure go/ast + go/parser + go/token — no go/types, no
// golang.org/x/tools — so it parses and checks the whole tree in
// milliseconds and has no dependency on build state. Analyzers are
// syntactic and package-scoped; where type information would be needed
// (e.g. "is this expression a map?") they use conservative local
// heuristics documented on each analyzer.
//
// Findings can be suppressed at the site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it, or globally via an allowlist
// file (see Allowlist) that records audited pre-existing findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// File is the path as given to Parse (repo-relative in the driver).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String formats a finding like a compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Key is the finding's stable identity used by allowlist matching. It
// deliberately excludes line/column so audited findings survive unrelated
// edits to the file.
func (f Finding) Key() string {
	return f.File + "\t" + f.Analyzer + "\t" + f.Message
}

// File is one parsed source file presented to analyzers.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// Path is the file path, as reported in findings.
	Path string
	// PkgDir is the last element of the directory holding the file
	// ("simnet", "core", ...). Analyzers scope themselves by it.
	PkgDir string
	// Test reports whether this is a _test.go file.
	Test bool
	// Src is the raw source, used to classify comments as standalone or
	// trailing.
	Src []byte

	// ignores maps line number -> analyzer names suppressed on that line.
	ignores map[int][]string
}

// Analyzer checks one file and reports findings via report.
type Analyzer interface {
	// Name is the analyzer identifier used in findings, suppression
	// comments and the allowlist.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check inspects the file. Implementations call report for each
	// violation; scoping (which packages the analyzer applies to) is the
	// analyzer's own responsibility.
	Check(f *File, report func(pos token.Pos, msg string))
}

// PackageAnalyzer is the interprocedural extension of Analyzer: Run
// hands it every file of one package (grouped by directory) in a single
// call, so it can build call graphs and propagate facts across function
// boundaries. Check is never called on a PackageAnalyzer; implementers
// satisfy it with a no-op.
type PackageAnalyzer interface {
	Analyzer
	// CheckPackage inspects one package's files together. report may be
	// called with positions from any of the files.
	CheckPackage(files []*File, report func(pos token.Pos, msg string))
}

// CorpusAnalyzer sees the whole parsed tree at once, for analyses that
// need cross-package facts (e.g. the wire frame-type constant set while
// checking a switch in shim). Check is never called on a CorpusAnalyzer;
// implementers satisfy it with a no-op.
type CorpusAnalyzer interface {
	Analyzer
	// CheckCorpus inspects every parsed file together. report may be
	// called with positions from any of the files.
	CheckCorpus(files []*File, report func(pos token.Pos, msg string))
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		Determinism{},
		DocRule{},
		LockDiscipline{},
		ErrcheckWire{},
		GoroutineHygiene{},
		LockOrder{},
		CtxFlow{},
		Exhaustive{},
		Bufown{},
	}
}

// Parse reads and parses one file for analysis. displayPath is the path
// recorded in findings (usually repo-relative).
func Parse(fset *token.FileSet, osPath, displayPath string) (*File, error) {
	src, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	return ParseSource(fset, displayPath, src)
}

// ParseSource parses in-memory source (used by tests with fixtures).
func ParseSource(fset *token.FileSet, displayPath string, src []byte) (*File, error) {
	astf, err := parser.ParseFile(fset, displayPath, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{
		Fset:   fset,
		AST:    astf,
		Path:   displayPath,
		PkgDir: filepath.Base(filepath.Dir(displayPath)),
		Test:   strings.HasSuffix(displayPath, "_test.go"),
		Src:    src,
	}
	f.collectIgnores()
	return f, nil
}

// collectIgnores indexes //lint:ignore comments by line.
func (f *File) collectIgnores() {
	f.ignores = make(map[int][]string)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				// An ignore without a reason is itself ignored: the reason
				// is the audit trail.
				continue
			}
			pos := f.Fset.Position(c.Pos())
			// A standalone comment (only whitespace before it on the
			// line) suppresses the next code line; a trailing comment
			// suppresses its own line.
			lines := []int{pos.Line}
			if f.standalone(pos) {
				lines = append(lines, pos.Line+1)
			}
			for _, line := range lines {
				f.ignores[line] = append(f.ignores[line], fields[0])
			}
		}
	}
}

// standalone reports whether only whitespace precedes the position on its
// line.
func (f *File) standalone(pos token.Position) bool {
	if f.Src == nil {
		return true
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(f.Src) {
		return true
	}
	return strings.TrimSpace(string(f.Src[start:pos.Offset])) == ""
}

// suppressed reports whether analyzer findings on the given line are
// ignored.
func (f *File) suppressed(analyzer string, line int) bool {
	for _, name := range f.ignores[line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the files and returns surviving findings
// sorted by file, line, column, analyzer. File-scoped analyzers see one
// file at a time, PackageAnalyzers see each directory's files together,
// and CorpusAnalyzers see everything at once. //lint:ignore suppressions
// are applied here; allowlist filtering is the caller's concern.
func Run(files []*File, analyzers []Analyzer) []Finding {
	var out []Finding

	// byPath resolves a reported position back to the file it lives in,
	// so package/corpus analyzers get correct paths and suppression.
	byPath := make(map[string]*File, len(files))
	for _, f := range files {
		byPath[f.Path] = f
	}
	reporter := func(fset *token.FileSet, name string) func(pos token.Pos, msg string) {
		return func(pos token.Pos, msg string) {
			p := fset.Position(pos)
			f := byPath[p.Filename]
			if f != nil && f.suppressed(name, p.Line) {
				return
			}
			out = append(out, Finding{
				Analyzer: name,
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Message:  msg,
			})
		}
	}

	// Package groups, keyed by directory, in first-seen order.
	var dirs []string
	groups := make(map[string][]*File)
	for _, f := range files {
		dir := filepath.Dir(f.Path)
		if _, ok := groups[dir]; !ok {
			dirs = append(dirs, dir)
		}
		groups[dir] = append(groups[dir], f)
	}

	for _, a := range analyzers {
		switch an := a.(type) {
		case CorpusAnalyzer:
			if len(files) > 0 {
				an.CheckCorpus(files, reporter(files[0].Fset, a.Name()))
			}
		case PackageAnalyzer:
			for _, dir := range dirs {
				pkg := groups[dir]
				an.CheckPackage(pkg, reporter(pkg[0].Fset, a.Name()))
			}
		default:
			for _, file := range files {
				f := file // pin for the closure
				a.Check(f, reporter(f.Fset, a.Name()))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Allowlist is the set of audited pre-existing findings tolerated by the
// gate. The file format is one Finding.Key per line — tab-separated
// path, analyzer, message — with '#' comments and blank lines skipped.
type Allowlist struct {
	keys map[string]bool
}

// LoadAllowlist reads an allowlist file. A missing file yields an empty
// (non-nil) allowlist.
func LoadAllowlist(path string) (*Allowlist, error) {
	al := &Allowlist{keys: make(map[string]bool)}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return al, nil
		}
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		al.keys[line] = true
	}
	return al, nil
}

// Allowed reports whether the finding is on the allowlist.
func (al *Allowlist) Allowed(f Finding) bool {
	if al == nil {
		return false
	}
	return al.keys[f.Key()]
}

// Filter drops allowlisted findings.
func (al *Allowlist) Filter(fs []Finding) []Finding {
	if al == nil || len(al.keys) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if !al.Allowed(f) {
			out = append(out, f)
		}
	}
	return out
}

// importName returns the local name under which the file imports the
// given path ("" if not imported). A dot or blank import returns "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// exprString renders a (small) expression for messages and lock naming.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	default:
		return "expr"
	}
}

// inScope reports whether the file's package directory is in the set.
func inScope(f *File, dirs ...string) bool {
	for _, d := range dirs {
		if f.PkgDir == d {
			return true
		}
	}
	return false
}
