// Package lint is netagg's repo-specific static analyzer framework. It
// enforces the two invariants the reproduction's correctness claims rest
// on: the agg-box data plane (core, wire, shim, cluster) must stay
// race-free and leak-free under churn, and the flow-level simulator
// (simnet, strategies, simexp, stats, figures, workload) must stay
// deterministic so the paper's FCT-percentile figures reproduce
// bit-for-bit across runs.
//
// The framework is pure go/ast + go/parser + go/token — no go/types, no
// golang.org/x/tools — so it parses and checks the whole tree in
// milliseconds and has no dependency on build state. Analyzers are
// syntactic and package-scoped; where type information would be needed
// (e.g. "is this expression a map?") they use conservative local
// heuristics documented on each analyzer.
//
// Findings can be suppressed at the site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it, or globally via an allowlist
// file (see Allowlist) that records audited pre-existing findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// File is the path as given to Parse (repo-relative in the driver).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String formats a finding like a compiler diagnostic.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Key is the finding's stable identity used by allowlist matching. It
// deliberately excludes line/column so audited findings survive unrelated
// edits to the file.
func (f Finding) Key() string {
	return f.File + "\t" + f.Analyzer + "\t" + f.Message
}

// File is one parsed source file presented to analyzers.
type File struct {
	Fset *token.FileSet
	AST  *ast.File
	// Path is the file path, as reported in findings.
	Path string
	// PkgDir is the last element of the directory holding the file
	// ("simnet", "core", ...). Analyzers scope themselves by it.
	PkgDir string
	// Test reports whether this is a _test.go file.
	Test bool
	// Src is the raw source, used to classify comments as standalone or
	// trailing.
	Src []byte

	// ignores maps line number -> ignore directives covering that line. A
	// standalone directive appears under two lines (its own and the next)
	// through the same pointer, so usage marks land on the one directive.
	ignores map[int][]*ignoreDirective
}

// ignoreDirective is one //lint:ignore comment, tracked so directives
// that suppress nothing can be reported instead of rotting in place.
type ignoreDirective struct {
	analyzer string
	pos      token.Position // the comment's own position
	used     bool
}

// Analyzer checks one file and reports findings via report.
type Analyzer interface {
	// Name is the analyzer identifier used in findings, suppression
	// comments and the allowlist.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check inspects the file. Implementations call report for each
	// violation; scoping (which packages the analyzer applies to) is the
	// analyzer's own responsibility.
	Check(f *File, report func(pos token.Pos, msg string))
}

// PackageAnalyzer is the interprocedural extension of Analyzer: Run
// hands it every file of one package (grouped by directory) in a single
// call, so it can build call graphs and propagate facts across function
// boundaries. Check is never called on a PackageAnalyzer; implementers
// satisfy it with a no-op.
type PackageAnalyzer interface {
	Analyzer
	// CheckPackage inspects one package's files together. report may be
	// called with positions from any of the files.
	CheckPackage(files []*File, report func(pos token.Pos, msg string))
}

// CorpusAnalyzer sees the whole parsed tree at once, for analyses that
// need cross-package facts (e.g. the wire frame-type constant set while
// checking a switch in shim). Check is never called on a CorpusAnalyzer;
// implementers satisfy it with a no-op.
type CorpusAnalyzer interface {
	Analyzer
	// CheckCorpus inspects every parsed file together. report may be
	// called with positions from any of the files.
	CheckCorpus(files []*File, report func(pos token.Pos, msg string))
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		Determinism{},
		DocRule{},
		LockDiscipline{},
		ErrcheckWire{},
		GoroutineHygiene{},
		LockOrder{},
		CtxFlow{},
		Exhaustive{},
		Bufown{},
		Protocheck{},
	}
}

// Parse reads and parses one file for analysis. displayPath is the path
// recorded in findings (usually repo-relative).
func Parse(fset *token.FileSet, osPath, displayPath string) (*File, error) {
	src, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	return ParseSource(fset, displayPath, src)
}

// ParseSource parses in-memory source (used by tests with fixtures).
func ParseSource(fset *token.FileSet, displayPath string, src []byte) (*File, error) {
	astf, err := parser.ParseFile(fset, displayPath, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{
		Fset:   fset,
		AST:    astf,
		Path:   displayPath,
		PkgDir: filepath.Base(filepath.Dir(displayPath)),
		Test:   strings.HasSuffix(displayPath, "_test.go"),
		Src:    src,
	}
	f.collectIgnores()
	return f, nil
}

// collectIgnores indexes //lint:ignore comments by line.
func (f *File) collectIgnores() {
	f.ignores = make(map[int][]*ignoreDirective)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				// An ignore without a reason is itself ignored: the reason
				// is the audit trail.
				continue
			}
			pos := f.Fset.Position(c.Pos())
			d := &ignoreDirective{analyzer: fields[0], pos: pos}
			// A standalone comment (only whitespace before it on the
			// line) suppresses the next code line; a trailing comment
			// suppresses its own line.
			lines := []int{pos.Line}
			if f.standalone(pos) {
				lines = append(lines, pos.Line+1)
			}
			for _, line := range lines {
				f.ignores[line] = append(f.ignores[line], d)
			}
		}
	}
}

// standalone reports whether only whitespace precedes the position on its
// line.
func (f *File) standalone(pos token.Position) bool {
	if f.Src == nil {
		return true
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(f.Src) {
		return true
	}
	return strings.TrimSpace(string(f.Src[start:pos.Offset])) == ""
}

// suppressed reports whether analyzer findings on the given line are
// ignored, marking every matching directive as used (a duplicated
// directive is "used" too — it is redundant, not dead).
func (f *File) suppressed(analyzer string, line int) bool {
	hit := false
	for _, d := range f.ignores[line] {
		if d.analyzer == analyzer || d.analyzer == "all" {
			d.used = true
			hit = true
		}
	}
	return hit
}

// Run applies the analyzers to the files and returns surviving findings
// sorted by file, line, column, analyzer. File-scoped analyzers see one
// file at a time, PackageAnalyzers see each directory's files together,
// and CorpusAnalyzers see everything at once. //lint:ignore suppressions
// are applied here; allowlist filtering is the caller's concern.
func Run(files []*File, analyzers []Analyzer) []Finding {
	var out []Finding

	// byPath resolves a reported position back to the file it lives in,
	// so package/corpus analyzers get correct paths and suppression.
	byPath := make(map[string]*File, len(files))
	for _, f := range files {
		byPath[f.Path] = f
	}
	reporter := func(fset *token.FileSet, name string) func(pos token.Pos, msg string) {
		return func(pos token.Pos, msg string) {
			p := fset.Position(pos)
			f := byPath[p.Filename]
			if f != nil && f.suppressed(name, p.Line) {
				return
			}
			out = append(out, Finding{
				Analyzer: name,
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Message:  msg,
			})
		}
	}

	// Package groups, keyed by directory, in first-seen order.
	var dirs []string
	groups := make(map[string][]*File)
	for _, f := range files {
		dir := filepath.Dir(f.Path)
		if _, ok := groups[dir]; !ok {
			dirs = append(dirs, dir)
		}
		groups[dir] = append(groups[dir], f)
	}

	for _, a := range analyzers {
		switch an := a.(type) {
		case CorpusAnalyzer:
			if len(files) > 0 {
				an.CheckCorpus(files, reporter(files[0].Fset, a.Name()))
			}
		case PackageAnalyzer:
			for _, dir := range dirs {
				pkg := groups[dir]
				an.CheckPackage(pkg, reporter(pkg[0].Fset, a.Name()))
			}
		default:
			for _, file := range files {
				f := file // pin for the closure
				a.Check(f, reporter(f.Fset, a.Name()))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// UnusedIgnores reports //lint:ignore directives in the files that
// suppressed nothing during a preceding Run over the same File values
// (usage marks live on the parsed files, so the files passed here must
// be the ones Run saw). Only directives naming one of the analyzers
// that ran — or "all" — are reported: an ignore for an analyzer outside
// this run's suite may be load-bearing in a fuller run. A stale ignore
// is a defect, not a style nit: it claims an audited violation that no
// longer exists, so the recorded reason misdocuments the line.
func UnusedIgnores(files []*File, analyzers []Analyzer) []Finding {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	var out []Finding
	for _, f := range files {
		seen := make(map[*ignoreDirective]bool)
		for _, ds := range f.ignores {
			for _, d := range ds {
				if seen[d] || d.used || (d.analyzer != "all" && !ran[d.analyzer]) {
					continue
				}
				seen[d] = true
				out = append(out, Finding{
					Analyzer: "unusedignore",
					File:     f.Path,
					Line:     d.pos.Line,
					Col:      d.pos.Column,
					Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing: the finding it audited is gone, so the directive (and its reason) should go too", d.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out
}

// Allowlist is the set of audited pre-existing findings tolerated by the
// gate. The file format is one Finding.Key per line — tab-separated
// path, analyzer, message — with '#' comments and blank lines skipped.
type Allowlist struct {
	// keys maps each entry to whether it has matched a finding since load.
	keys map[string]bool
}

// LoadAllowlist reads an allowlist file. A missing file yields an empty
// (non-nil) allowlist.
func LoadAllowlist(path string) (*Allowlist, error) {
	al := &Allowlist{keys: make(map[string]bool)}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return al, nil
		}
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		al.keys[line] = false
	}
	return al, nil
}

// Allowed reports whether the finding is on the allowlist, marking the
// matching entry as used.
func (al *Allowlist) Allowed(f Finding) bool {
	if al == nil {
		return false
	}
	if _, ok := al.keys[f.Key()]; !ok {
		return false
	}
	al.keys[f.Key()] = true
	return true
}

// UnusedKeys returns allowlist entries that matched no finding in the
// preceding Filter/Allowed calls, restricted to entries whose file was
// actually linted (paths holds the display paths that were parsed): an
// entry for a file outside this run's scope may still be load-bearing.
func (al *Allowlist) UnusedKeys(paths map[string]bool) []string {
	if al == nil {
		return nil
	}
	var out []string
	for key, used := range al.keys {
		if used {
			continue
		}
		file, _, _ := strings.Cut(key, "\t")
		if !paths[file] {
			continue
		}
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// Filter drops allowlisted findings.
func (al *Allowlist) Filter(fs []Finding) []Finding {
	if al == nil || len(al.keys) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if !al.Allowed(f) {
			out = append(out, f)
		}
	}
	return out
}

// importName returns the local name under which the file imports the
// given path ("" if not imported). A dot or blank import returns "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		// Default name: last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// exprString renders a (small) expression for messages and lock naming.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	default:
		return "expr"
	}
}

// inScope reports whether the file's package directory is in the set.
func inScope(f *File, dirs ...string) bool {
	for _, d := range dirs {
		if f.PkgDir == d {
			return true
		}
	}
	return false
}
