package lint

import (
	"fmt"
	"go/token"
	"testing"
)

// runMulti parses several fixtures into one corpus and returns the named
// analyzer's findings (multi-file cases: package-scoped call graphs,
// cross-package enum switches).
func runMulti(t *testing.T, files map[string]string, name string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*File
	// Stable order: findings sort by file anyway, but parse order decides
	// package grouping order.
	for _, path := range sortedKeys(files) {
		f, err := ParseSource(fset, path, []byte(files[path]))
		if err != nil {
			t.Fatalf("parse fixture %s: %v", path, err)
		}
		parsed = append(parsed, f)
	}
	var analyzers []Analyzer
	for _, a := range All() {
		if a.Name() == name {
			analyzers = append(analyzers, a)
		}
	}
	return Run(parsed, analyzers)
}

func sortedKeys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestLockOrderDirectCycle(t *testing.T) {
	got := runOn(t, "internal/core/x.go", `package core
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
type B struct {
	mu sync.Mutex
	a  *A
}
func (a *A) one() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}
func (b *B) two() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}
`, "lockorder")
	expectMessages(t, got,
		"lock order cycle: B.mu acquired while holding A.mu",
		"lock order cycle: A.mu acquired while holding B.mu")
}

func TestLockOrderInterprocedural(t *testing.T) {
	// Neither function acquires both locks directly: the cycle only
	// exists across the call graph.
	got := runOn(t, "internal/shim/x.go", `package shim
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
type B struct {
	mu sync.Mutex
	a  *A
}
func (a *A) outer() {
	a.mu.Lock()
	a.b.poke()
	a.mu.Unlock()
}
func (b *B) poke() {
	b.mu.Lock()
	b.mu.Unlock()
}
func (b *B) rev() {
	b.mu.Lock()
	b.a.grab()
	b.mu.Unlock()
}
func (a *A) grab() {
	a.mu.Lock()
	a.mu.Unlock()
}
`, "lockorder")
	expectMessages(t, got,
		"lock order cycle: B.mu acquired while holding A.mu",
		"lock order cycle: A.mu acquired while holding B.mu")
}

func TestLockOrderAcyclicClean(t *testing.T) {
	got := runOn(t, "internal/core/x.go", `package core
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
type B struct{ mu sync.Mutex }
func (a *A) one() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}
func (a *A) alsoOne() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}
`, "lockorder")
	expectMessages(t, got)
}

func TestLockOrderAllowDirective(t *testing.T) {
	got := runOn(t, "internal/core/x.go", `package core
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
type B struct {
	mu sync.Mutex
	a  *A
}
// The B->A order only runs during shutdown, when no A->B path is live.
//netagg:lockorder-allow B.mu A.mu shutdown-only path, A->B never concurrent
func (a *A) one() {
	a.mu.Lock()
	a.b.mu.Lock()
	a.b.mu.Unlock()
	a.mu.Unlock()
}
func (b *B) two() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}
`, "lockorder")
	expectMessages(t, got)
}

func TestLockOrderOutOfScopePackage(t *testing.T) {
	got := runOn(t, "internal/simnet/x.go", `package simnet
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
type B struct {
	mu sync.Mutex
	a  *A
}
func (a *A) one() { a.mu.Lock(); a.b.mu.Lock(); a.b.mu.Unlock(); a.mu.Unlock() }
func (b *B) two() { b.mu.Lock(); b.a.mu.Lock(); b.a.mu.Unlock(); b.mu.Unlock() }
`, "lockorder")
	expectMessages(t, got)
}

func TestCtxFlowBackground(t *testing.T) {
	got := runOn(t, "internal/search/x.go", `package search
import "context"
func start() context.Context { return context.Background() }
func todo() context.Context { return context.TODO() }
`, "ctxflow")
	expectMessages(t, got,
		"context.Background() severs the cancellation chain",
		"context.TODO() severs the cancellation chain")
}

func TestCtxFlowNilFallbackIdiom(t *testing.T) {
	got := runOn(t, "internal/search/x.go", `package search
import "context"
func start(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}
`, "ctxflow")
	expectMessages(t, got)
}

func TestCtxFlowBackgroundAllowedInMain(t *testing.T) {
	got := runOn(t, "cmd/aggbox/x.go", `package main
import "context"
func run() context.Context { return context.Background() }
`, "ctxflow")
	expectMessages(t, got)
}

func TestCtxFlowNakedSendWithCtx(t *testing.T) {
	got := runOn(t, "internal/transport/x.go", `package transport
import "context"
func push(ctx context.Context, c chan int) {
	<-ctx.Done()
	c <- 1
}
`, "ctxflow")
	expectMessages(t, got, "channel send on c cannot be cancelled")
}

func TestCtxFlowNakedSendWithoutCtxNotFlagged(t *testing.T) {
	got := runOn(t, "internal/transport/x.go", `package transport
func push(c chan int) { c <- 1 }
`, "ctxflow")
	expectMessages(t, got)
}

func TestCtxFlowRecvViaReceiverCtxField(t *testing.T) {
	got := runOn(t, "internal/transport/x.go", `package transport
import "context"
type Conn struct {
	ctx context.Context
	in  chan int
}
func (c *Conn) next() int { return <-c.in }
`, "ctxflow")
	expectMessages(t, got, "channel receive from c.in cannot be cancelled")
}

func TestCtxFlowSelectNeedsEscapeHatch(t *testing.T) {
	got := runOn(t, "internal/core/x.go", `package core
func wait(a, b chan int) {
	select {
	case <-a:
	case <-b:
	}
}
`, "ctxflow")
	expectMessages(t, got, "select can block forever")
}

func TestCtxFlowSelectWithDoneOrTimerOK(t *testing.T) {
	got := runOn(t, "internal/core/x.go", `package core
import (
	"context"
	"time"
)
func wait(ctx context.Context, a chan int) {
	select {
	case <-a:
	case <-ctx.Done():
	}
}
func waitBounded(a chan int) {
	select {
	case <-a:
	case <-time.After(time.Second):
	}
}
func poll(a chan int) {
	select {
	case <-a:
	default:
	}
}
`, "ctxflow")
	expectMessages(t, got)
}

func TestCtxFlowSleepAndBackoffExemption(t *testing.T) {
	got := runOn(t, "internal/cluster/x.go", `package cluster
import (
	"context"
	"time"
)
func probe(ctx context.Context) {
	_ = ctx
	time.Sleep(time.Second)
}
func retryBackoff(ctx context.Context) {
	_ = ctx
	time.Sleep(time.Second)
}
`, "ctxflow")
	expectMessages(t, got, "time.Sleep ignores cancellation")
}

func TestCtxFlowDroppedCtxParam(t *testing.T) {
	got := runOn(t, "internal/shim/x.go", `package shim
import "context"
func deliver(ctx context.Context, c chan int) {
	c <- 1
}
`, "ctxflow")
	// Both the unconsulted blocking send and the dropped parameter fire.
	expectMessages(t, got,
		`context parameter "ctx" is dropped`,
		"channel send on c cannot be cancelled")
}

func TestExhaustiveMissingMembers(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/wire/w.go": `package wire
type Kind uint8
const (
	K1 Kind = iota
	K2
	K3
)
`,
		"internal/shim/s.go": `package shim
import "netagg/internal/wire"
func handle(k wire.Kind) {
	switch k {
	case wire.K1:
	}
}
`,
	}, "exhaustive")
	expectMessages(t, got, "switch on wire.Kind is not exhaustive: missing K2, K3")
}

func TestExhaustiveSilentDefault(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/wire/w.go": `package wire
type Kind uint8
const (
	K1 Kind = iota
	K2
)
func handle(k Kind) {
	switch k {
	case K1:
	default:
		return
	}
}
`,
	}, "exhaustive")
	expectMessages(t, got, "silent default in switch over wire.Kind drops K2")
}

func TestExhaustiveLoudDefaultOK(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/wire/w.go": `package wire
import "fmt"
type Kind uint8
const (
	K1 Kind = iota
	K2
)
func name(k Kind) string {
	switch k {
	case K1:
		return "one"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}
func handle(k Kind) error {
	switch k {
	case K1:
	default:
		panic("unhandled kind")
	}
	return nil
}
`,
	}, "exhaustive")
	expectMessages(t, got)
}

func TestExhaustiveFullCoverageOK(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/wire/w.go": `package wire
type Kind uint8
const (
	K1 Kind = iota
	K2
)
func handle(k Kind) {
	switch k {
	case K1:
	case K2:
	}
}
`,
	}, "exhaustive")
	expectMessages(t, got)
}

func TestExhaustiveBitmaskExcluded(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/wire/w.go": `package wire
type Flag uint8
const (
	F1 Flag = 1 << iota
	F2
	F3
)
func handle(f Flag) {
	switch f {
	case F1:
	}
}
`,
	}, "exhaustive")
	expectMessages(t, got)
}

func TestExhaustiveTypeSwitchSilentDefault(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/core/c.go": `package core
func dispatch(v interface{}) {
	switch v.(type) {
	case int:
	default:
	}
}
`,
	}, "exhaustive")
	expectMessages(t, got, "silent default in type switch")
}

func TestExhaustiveSuppression(t *testing.T) {
	got := runMulti(t, map[string]string{
		"internal/wire/w.go": `package wire
type Kind uint8
const (
	K1 Kind = iota
	K2
)
func handle(k Kind) {
	//lint:ignore exhaustive K2 handled by the caller's pre-filter
	switch k {
	case K1:
	}
}
`,
	}, "exhaustive")
	expectMessages(t, got)
}

func TestHotFuncCollection(t *testing.T) {
	fset := token.NewFileSet()
	f, err := ParseSource(fset, "internal/obs/x.go", []byte(`package obs

// Add is allocation-free.
//
//netagg:hotpath
func (c *Counter) Add(n int64) {
	c.v.Add(n)
}

type Counter struct{ v fakeAtomic }
type fakeAtomic struct{}
func (fakeAtomic) Add(int64) {}

// cold has no annotation.
func cold() {}
`))
	if err != nil {
		t.Fatal(err)
	}
	hot := HotFuncs([]*File{f})
	if len(hot) != 1 {
		t.Fatalf("got %d hot funcs, want 1: %+v", len(hot), hot)
	}
	h := hot[0]
	if h.Name != "Counter.Add" || h.File != "internal/obs/x.go" || h.Start != 6 || h.End != 8 {
		t.Fatalf("unexpected hot func: %+v", h)
	}
}

func TestParseEscapeOutput(t *testing.T) {
	out := `# netagg/internal/wire
internal/wire/wire.go:127:6: moved to heap: lenb
internal/wire/wire.go:116:21: m.App escapes to heap
internal/wire/wire.go:119:14: (*Writer).Write ignoring self-assignment
internal/wire/wire.go:131:20: make([]byte, n) does not escape
internal/wire/wire.go:106:16: leaking param: w
garbage line
`
	diags := ParseEscapeOutput(out)
	if len(diags) != 2 {
		t.Fatalf("got %d diags, want 2: %+v", len(diags), diags)
	}
	if diags[0].Line != 127 || diags[0].Msg != "moved to heap: lenb" || diags[0].Col != 6 {
		t.Fatalf("diag 0: %+v", diags[0])
	}
	if diags[1].Line != 116 || diags[1].Msg != "m.App escapes to heap" {
		t.Fatalf("diag 1: %+v", diags[1])
	}
}

func TestEscapeFindingsRangeMatch(t *testing.T) {
	hot := []HotFunc{{File: "internal/wire/wire.go", Name: "Writer.Write", Start: 110, End: 140}}
	diags := []EscapeDiag{
		{File: "internal/wire/wire.go", Line: 127, Col: 6, Msg: "moved to heap: lenb"},
		{File: "internal/wire/wire.go", Line: 200, Msg: "moved to heap: elsewhere"},
		{File: "internal/wire/other.go", Line: 120, Msg: "moved to heap: otherfile"},
	}
	got := EscapeFindings(hot, diags)
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(got), got)
	}
	want := "internal/wire/wire.go:127:6: escape: hotpath function Writer.Write allocates: moved to heap: lenb"
	if got[0].String() != want {
		t.Fatalf("finding = %q, want %q", got[0].String(), want)
	}
}

func TestPackageAnalyzerGroupsByDir(t *testing.T) {
	// Two files in the same directory must be analyzed as one package:
	// the cycle spans the two files.
	got := runMulti(t, map[string]string{
		"internal/core/a.go": `package core
import "sync"
type A struct {
	mu sync.Mutex
	b  *B
}
func (a *A) one() { a.mu.Lock(); a.b.mu.Lock(); a.b.mu.Unlock(); a.mu.Unlock() }
`,
		"internal/core/b.go": `package core
import "sync"
type B struct {
	mu sync.Mutex
	a  *A
}
func (b *B) two() { b.mu.Lock(); b.a.mu.Lock(); b.a.mu.Unlock(); b.mu.Unlock() }
`,
	}, "lockorder")
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (cycle across files): %v", len(got), got)
	}
	for _, f := range got {
		if f.File != "internal/core/a.go" && f.File != "internal/core/b.go" {
			t.Fatalf("finding attributed to wrong file: %v", f)
		}
	}
}

func TestFindingKeyStability(t *testing.T) {
	f := Finding{Analyzer: "lockorder", File: "internal/core/x.go", Line: 3, Col: 2, Message: "m"}
	if f.Key() != "internal/core/x.go\tlockorder\tm" {
		t.Fatalf("key = %q", f.Key())
	}
	if f.String() != fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message) {
		t.Fatalf("string = %q", f.String())
	}
}
