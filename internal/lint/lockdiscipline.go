package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// dataPlanePackages are the lock-and-goroutine heavy agg-box packages
// where holding a mutex across a blocking operation stalls every other
// request sharing the lock (and under churn risks deadlock against
// back-pressure). transport is the shared connection layer they all ride
// on, so it is held to the same discipline.
var dataPlanePackages = []string{"core", "wire", "shim", "cluster", "transport"}

// blockingMethods are method names that perform (or can perform) network
// I/O or otherwise block indefinitely. The set is tuned to this repo's
// idioms: wire.Writer/Client/Pool and net.Conn traffic, dialing,
// accepting, and WaitGroup waits.
var blockingMethods = map[string]bool{
	"Write": true, "Flush": true, "Send": true, "SendAll": true,
	"Dial": true, "DialTimeout": true, "Accept": true, "Wait": true,
	"ReadFull": true, "ReadFrom": true, "WriteTo": true, "CopyN": true,
}

// readMethod is handled separately: Read on a reader blocks, but Read is
// also a common non-blocking name (buffers). We flag x.Read(...) only
// when the receiver is not obviously a byte-buffer: conservative enough
// for this repo where readers are wire.Reader or net.Conn.
const readMethod = "Read"

// LockDiscipline flags blocking operations performed while a
// sync.Mutex/RWMutex is held in the data-plane packages.
//
// Lock tracking is syntactic and intra-procedural: x.Lock()/x.RLock()
// starts a held region named after the receiver expression;
// x.Unlock()/x.RUnlock() ends it; defer x.Unlock() holds it to the end
// of the function. Branches are scanned with a copy of the held set, so
// the common `if cond { mu.Unlock(); return }` early-exit does not leak
// state into the fallthrough path. cond.Wait() is exempt (it releases
// the mutex by contract), as is any receiver whose path mentions "cond".
type LockDiscipline struct{}

// Name implements Analyzer.
func (LockDiscipline) Name() string { return "lockdiscipline" }

// Doc implements Analyzer.
func (LockDiscipline) Doc() string {
	return "no blocking I/O, channel operations, or sleeps while a mutex is held in core/wire/shim/cluster/transport"
}

// Check implements Analyzer.
func (LockDiscipline) Check(f *File, report func(pos token.Pos, msg string)) {
	if f.Test || !inScope(f, dataPlanePackages...) {
		return
	}
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		s := &lockScan{report: report}
		s.block(fn.Body.List, newHeldSet())
	}
}

// heldSet tracks the mutexes currently held, in acquisition order.
type heldSet struct {
	names []string
}

func newHeldSet() *heldSet { return &heldSet{} }

func (h *heldSet) clone() *heldSet {
	return &heldSet{names: append([]string(nil), h.names...)}
}

func (h *heldSet) acquire(name string) { h.names = append(h.names, name) }

func (h *heldSet) release(name string) {
	for i := len(h.names) - 1; i >= 0; i-- {
		if h.names[i] == name {
			h.names = append(h.names[:i], h.names[i+1:]...)
			return
		}
	}
}

func (h *heldSet) any() bool { return len(h.names) > 0 }

func (h *heldSet) last() string {
	if len(h.names) == 0 {
		return ""
	}
	return h.names[len(h.names)-1]
}

type lockScan struct {
	report func(token.Pos, string)
}

// block scans a statement list sequentially, threading the held set
// through straight-line code and copying it into nested branches.
func (s *lockScan) block(stmts []ast.Stmt, held *heldSet) {
	for _, stmt := range stmts {
		s.stmt(stmt, held)
	}
}

func (s *lockScan) stmt(stmt ast.Stmt, held *heldSet) {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if name, kind := lockCall(v.X); kind != 0 {
			if kind > 0 {
				held.acquire(name)
			} else {
				held.release(name)
			}
			return
		}
		s.expr(v.X, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() right after Lock is the dominant idiom; it
		// keeps the lock to function end, so blocking ops anywhere later
		// in this block are violations. We model it by simply NOT
		// releasing — the lock stays in the held set.
		if _, kind := lockCall(v.Call); kind != 0 {
			return
		}
		// Deferred calls run at return; their blocking behaviour is out
		// of scope for region tracking.

	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			s.expr(rhs, held)
		}

	case *ast.ReturnStmt:
		for _, r := range v.Results {
			s.expr(r, held)
		}

	case *ast.SendStmt:
		if held.any() {
			s.report(v.Pos(), fmt.Sprintf("channel send while holding %s; deliver after unlocking", held.last()))
		}

	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init, held)
		}
		s.expr(v.Cond, held)
		s.block(v.Body.List, held.clone())
		if v.Else != nil {
			s.stmt(v.Else, held.clone())
		}

	case *ast.BlockStmt:
		s.block(v.List, held.clone())

	case *ast.ForStmt:
		inner := held.clone()
		if v.Init != nil {
			s.stmt(v.Init, inner)
		}
		if v.Cond != nil {
			s.expr(v.Cond, inner)
		}
		s.block(v.Body.List, inner)

	case *ast.RangeStmt:
		s.expr(v.X, held)
		s.block(v.Body.List, held.clone())

	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init, held)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, held.clone())
			}
		}

	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, held.clone())
			}
		}

	case *ast.SelectStmt:
		// A select with a default case never blocks; without one it does.
		hasDefault := false
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && held.any() {
			s.report(v.Pos(), fmt.Sprintf("blocking select while holding %s", held.last()))
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.block(cc.Body, held.clone())
			}
		}

	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
		if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
			s.block(fl.Body.List, newHeldSet())
		}

	case *ast.LabeledStmt:
		s.stmt(v.Stmt, held)
	}
}

// expr flags blocking expressions evaluated while locks are held and
// descends into nested function literals with a fresh held set.
func (s *lockScan) expr(e ast.Expr, held *heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			s.block(v.Body.List, newHeldSet())
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && held.any() {
				s.report(v.Pos(), fmt.Sprintf("channel receive while holding %s", held.last()))
			}
		case *ast.CallExpr:
			if !held.any() {
				return true
			}
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := exprString(sel.X)
			name := sel.Sel.Name
			// time.Sleep under a lock.
			if recv == "time" && name == "Sleep" {
				s.report(v.Pos(), fmt.Sprintf("time.Sleep while holding %s", held.last()))
				return true
			}
			// cond.Wait releases the mutex by contract.
			if strings.Contains(strings.ToLower(recv), "cond") {
				return true
			}
			if blockingMethods[name] || name == readMethod {
				// Skip pure in-memory writers the repo uses (bytes.Buffer,
				// strings.Builder idents typically named buf/sb/b... too
				// broad); instead skip only when the receiver is the
				// "append"-style buf field convention `.buf`.
				if strings.HasSuffix(recv, ".buf") || recv == "buf" {
					return true
				}
				s.report(v.Pos(), fmt.Sprintf("potentially blocking call %s.%s while holding %s", recv, name, held.last()))
			}
		}
		return true
	})
}

// lockCall recognises x.Lock()/x.RLock() (kind=+1) and
// x.Unlock()/x.RUnlock() (kind=-1), returning the receiver path as the
// lock name. kind=0 means not a lock call.
func lockCall(e ast.Expr) (name string, kind int) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprString(sel.X), 1
	case "Unlock", "RUnlock":
		return exprString(sel.X), -1
	}
	return "", 0
}
