package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Exhaustive is the enum-coverage analyzer. The wire frame-type and
// scheduler-policy constant sets (and every other typed iota block in
// the corpus) gain members as the protocol grows; a switch that silently
// drops an unhandled constant turns a new frame type into a hang or a
// lost result instead of a diagnosable error. The analyzer is
// corpus-scoped because the constants and the switches live in
// different packages (wire.Type is matched in shim and core).
//
// Enum collection: every const block whose members share a declared
// in-package type forms an enum set, keyed "pkgdir.Type". Blocks using
// `1 << iota` are bitmasks, not enums, and are excluded — bitmask
// switches legitimately match combinations.
//
// A value switch is an enum switch when every case expression resolves
// to a member of one collected enum (unqualified idents resolve in the
// file's own package, `wire.THello` through the import table). An enum
// switch must either list every member or carry a default that fails
// loudly: panics, calls something log-like, or returns a non-nil value.
// An empty default, a bare return, or statements that just clean up and
// fall through are silent — exactly the "swallow the frame" bug class.
//
// Type switches (interface dispatch) cannot be checked for coverage
// without go/types, so only their clearly degenerate form is flagged:
// a default case with an empty body or a bare return in a data-plane
// package. That is a known false-negative limit.
type Exhaustive struct{}

// Name implements Analyzer.
func (Exhaustive) Name() string { return "exhaustive" }

// Doc implements Analyzer.
func (Exhaustive) Doc() string {
	return "switches over wire/scheduler constant sets must cover every member or fail loudly"
}

// Check implements Analyzer; Exhaustive is corpus-scoped, so the
// per-file hook is a no-op.
func (Exhaustive) Check(f *File, report func(pos token.Pos, msg string)) {}

// enumSet is one typed constant set.
type enumSet struct {
	key     string // "wire.Type"
	members []string
	member  map[string]bool
	bitmask bool
}

// CheckCorpus implements CorpusAnalyzer.
func (Exhaustive) CheckCorpus(files []*File, report func(pos token.Pos, msg string)) {
	enums := collectEnums(files)

	// byMember maps "pkgdir.Member" to the enums declaring that member.
	byMember := make(map[string][]*enumSet)
	for _, key := range sortedEnumKeys(enums) {
		e := enums[key]
		if e.bitmask {
			continue
		}
		pkg := key[:strings.Index(key, ".")]
		for _, m := range e.members {
			byMember[pkg+"."+m] = append(byMember[pkg+"."+m], e)
		}
	}

	for _, f := range files {
		if f.Test {
			continue
		}
		checkSwitches(f, byMember, report)
	}
}

// collectEnums gathers every typed const block in non-test files.
func collectEnums(files []*File) map[string]*enumSet {
	enums := make(map[string]*enumSet)
	for _, f := range files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			carried := "" // type carried by implicit-repeat specs
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				typ := ""
				switch {
				case vs.Type != nil:
					if id, ok := vs.Type.(*ast.Ident); ok {
						typ = id.Name
					}
					carried = typ
				case len(vs.Values) == 0:
					// Implicit repetition of the previous spec: inherits
					// both type and expression.
					typ = carried
				default:
					// New untyped expression: breaks the enum run.
					carried = ""
				}
				if typ == "" {
					continue
				}
				key := f.PkgDir + "." + typ
				e := enums[key]
				if e == nil {
					e = &enumSet{key: key, member: make(map[string]bool)}
					enums[key] = e
				}
				for _, v := range vs.Values {
					if usesIotaShift(v) {
						e.bitmask = true
					}
				}
				for _, name := range vs.Names {
					if name.Name == "_" || e.member[name.Name] {
						continue
					}
					e.member[name.Name] = true
					e.members = append(e.members, name.Name)
				}
			}
		}
	}
	return enums
}

// sortedEnumKeys returns the enum keys in stable order.
func sortedEnumKeys(enums map[string]*enumSet) []string {
	keys := make([]string, 0, len(enums))
	for key := range enums {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// usesIotaShift detects `1 << iota`-style bitmask expressions.
func usesIotaShift(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && (be.Op == token.SHL || be.Op == token.SHR) {
			ast.Inspect(be, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == "iota" {
					found = true
				}
				return true
			})
		}
		return !found
	})
	return found
}

// checkSwitches inspects each switch statement in the file.
func checkSwitches(f *File, byMember map[string][]*enumSet, report func(pos token.Pos, msg string)) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch sw := n.(type) {
		case *ast.SwitchStmt:
			if sw.Tag != nil {
				checkEnumSwitch(f, sw, byMember, report)
			}
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(f, sw, report)
		}
		return true
	})
}

// checkEnumSwitch matches the switch's cases against the enum table and
// reports missing members or a silent default.
func checkEnumSwitch(f *File, sw *ast.SwitchStmt, byMember map[string][]*enumSet, report func(pos token.Pos, msg string)) {
	var enum *enumSet
	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause

	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			name, pkg := caseMemberRef(f, expr)
			if name == "" {
				return // non-constant case: not an enum switch
			}
			candidates := byMember[pkg+"."+name]
			if len(candidates) != 1 {
				return // unknown or ambiguous member
			}
			if enum == nil {
				enum = candidates[0]
			} else if enum != candidates[0] {
				return // cases from two different sets: skip
			}
			covered[name] = true
		}
	}
	if enum == nil {
		return
	}

	var missing []string
	for _, m := range enum.members {
		if !covered[m] {
			missing = append(missing, m)
		}
	}
	if defaultClause == nil {
		if len(missing) > 0 {
			report(sw.Pos(), fmt.Sprintf(
				"switch on %s is not exhaustive: missing %s (add the cases or a default that fails loudly)",
				enum.key, strings.Join(missing, ", ")))
		}
		return
	}
	if len(missing) > 0 && !loudBody(defaultClause.Body) {
		report(defaultClause.Pos(), fmt.Sprintf(
			"silent default in switch over %s drops %s: log, return an error, or panic",
			enum.key, strings.Join(missing, ", ")))
	}
}

// caseMemberRef resolves a case expression to (member, pkgdir):
// `THello` in package wire -> ("THello", "wire"); `wire.THello`
// elsewhere -> ("THello", "wire"). Returns "" for anything else.
func caseMemberRef(f *File, expr ast.Expr) (string, string) {
	switch v := expr.(type) {
	case *ast.Ident:
		if v.Name == "nil" || v.Name == "true" || v.Name == "false" {
			return "", ""
		}
		return v.Name, f.PkgDir
	case *ast.SelectorExpr:
		pkg, ok := v.X.(*ast.Ident)
		if !ok {
			return "", ""
		}
		if dir := importedDir(f.AST, pkg.Name); dir != "" {
			return v.Sel.Name, dir
		}
	}
	return "", ""
}

// importedDir maps a qualifier identifier to the last element of the
// import path it names ("" when no import matches).
func importedDir(f *ast.File, qual string) string {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		last := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			last = path[i+1:]
		}
		name := last
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == qual {
			return last
		}
	}
	return ""
}

// checkTypeSwitch flags a degenerate silent default (empty body or bare
// return) in data-plane packages.
func checkTypeSwitch(f *File, sw *ast.TypeSwitchStmt, report func(pos token.Pos, msg string)) {
	if !inScope(f, "core", "wire", "shim", "cluster", "transport") {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok || cc.List != nil {
			continue
		}
		if emptyOrBareReturn(cc.Body) {
			report(cc.Pos(), "silent default in type switch swallows unhandled types: log, return an error, or panic")
		}
	}
}

// emptyOrBareReturn reports whether the body does nothing at all.
func emptyOrBareReturn(body []ast.Stmt) bool {
	if len(body) == 0 {
		return true
	}
	if len(body) == 1 {
		if ret, ok := body[0].(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
			return true
		}
	}
	return false
}

// loudBody reports whether a default clause fails loudly: it panics,
// calls something log-like, or returns a non-nil value.
func loudBody(body []ast.Stmt) bool {
	loud := false
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				switch fun := v.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "panic" || logLike(fun.Name) {
						loud = true
					}
				case *ast.SelectorExpr:
					if logLike(fun.Sel.Name) {
						loud = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
						continue
					}
					loud = true
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}

// logLike matches names that visibly record the unhandled value.
func logLike(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"log", "fatal", "panic", "error", "warn", "print"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}
