package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// CtxFlow is the context-propagation analyzer. Cancellation is the data
// plane's only defence against wedged peers, so every potentially
// unbounded blocking operation must be reachable by a cancel signal.
// Three rules, all on non-test code:
//
//  1. context.Background() / context.TODO() outside package main is a
//     severed cancellation chain: callers can never cancel what runs
//     under it. The one exempt idiom is the nil-parameter fallback
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
//     which only fires when the caller explicitly opted out.
//
//  2. In data-plane packages, a function that HAS a context available —
//     a context.Context parameter, or a receiver struct carrying a
//     context field — must use it at its blocking points: naked channel
//     sends/receives, selects with no ctx.Done/default/timer case, and
//     time.Sleep are flagged. Functions with no context in reach are not
//     flagged (that is rule 2's false-negative limit: the analyzer
//     cannot demand a parameter be added, only that an available one be
//     consulted).
//
//  3. A context parameter that is never referenced in a function that
//     blocks (directly or via resolvable same-package calls) is a
//     dropped context and flagged at the declaration.
//
// Receives from ctx.Done(), timer channels (time.After, .C) and sends
// executed by test files are exempt. Functions whose name mentions
// backoff are exempt from the Sleep rule — a backoff helper's whole job
// is to sleep, and its callers own cancellation.
type CtxFlow struct{}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "blocking operations must be cancellable: no severed, dropped, or ignored contexts"
}

// Check implements Analyzer; CtxFlow is package-scoped, so the per-file
// hook is a no-op.
func (CtxFlow) Check(f *File, report func(pos token.Pos, msg string)) {}

// CheckPackage implements PackageAnalyzer.
func (CtxFlow) CheckPackage(files []*File, report func(pos token.Pos, msg string)) {
	// Rule 1 applies to every non-test, non-main package.
	for _, f := range files {
		if f.Test || f.AST.Name.Name == "main" {
			continue
		}
		checkBackground(f, report)
	}

	// Rules 2 and 3 are scoped to the data plane, where blocking against
	// a dead peer is the failure mode the paper's fault model cares about.
	var src []*File
	for _, f := range files {
		if !f.Test && inScope(f, "core", "shim", "cluster", "transport", "treeplan") {
			src = append(src, f)
		}
	}
	if len(src) == 0 {
		return
	}
	p := buildPackage(src)
	blocking := p.transitiveBlocking()

	keys := make([]string, 0, len(p.funcs))
	for key := range p.funcs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fs := p.funcs[key]
		ctxAvail := fs.ctxParam != "" || p.ctxFields[fs.recvType]
		for _, b := range fs.blocks {
			switch b.kind {
			case blockSelect:
				report(b.pos, "select can block forever: add a ctx.Done(), timer, or default case")
			case blockSend:
				if ctxAvail {
					report(b.pos, fmt.Sprintf("channel send on %s cannot be cancelled: select on it together with ctx.Done()", b.desc))
				}
			case blockRecv:
				if ctxAvail && !cancellableRecv(b.desc) {
					report(b.pos, fmt.Sprintf("channel receive from %s cannot be cancelled: select on it together with ctx.Done()", b.desc))
				}
			case blockSleep:
				if ctxAvail && !strings.Contains(strings.ToLower(key), "backoff") {
					report(b.pos, "time.Sleep ignores cancellation: use a timer in a select with ctx.Done()")
				}
			}
		}
		if fs.ctxParam != "" && !fs.usesCtx && (len(fs.blocks) > 0 || callsBlocking(fs, blocking)) {
			report(fs.decl.Pos(), fmt.Sprintf("context parameter %q is dropped: the function blocks but never consults it", fs.ctxParam))
		}
	}
}

// cancellableRecv reports whether a naked receive is inherently bounded:
// ctx.Done() receives are cancellation itself, timer channels fire.
func cancellableRecv(desc string) bool {
	return strings.Contains(desc, ".Done(") || strings.HasPrefix(desc, "time.After") ||
		strings.HasSuffix(desc, ".C")
}

// callsBlocking reports whether the function calls (resolvably) into any
// transitively blocking function.
func callsBlocking(fs *funcSummary, blocking map[string]bool) bool {
	for _, c := range fs.calls {
		if blocking[c.callee] {
			return true
		}
	}
	return false
}

// checkBackground flags context.Background() / context.TODO() calls
// outside the nil-fallback idiom.
func checkBackground(f *File, report func(pos token.Pos, msg string)) {
	ctxPkg := importName(f.AST, "context")
	if ctxPkg == "" {
		return
	}

	// First pass: positions excused by the nil-fallback idiom — an
	// assignment `x = context.Background()` directly inside an if whose
	// condition is `x == nil`.
	exempt := make(map[token.Pos]bool)
	ast.Inspect(f.AST, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		checked := nilCheckedExpr(ifs.Cond)
		if checked == "" {
			return true
		}
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if exprString(as.Lhs[0]) != checked {
				continue
			}
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isBackgroundCall(call, ctxPkg) {
				exempt[call.Pos()] = true
			}
		}
		return true
	})

	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBackgroundCall(call, ctxPkg) || exempt[call.Pos()] {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		report(call.Pos(), fmt.Sprintf(
			"context.%s() severs the cancellation chain outside package main: accept a ctx or fall back only when the caller passed nil",
			sel.Sel.Name))
		return true
	})
}

// nilCheckedExpr returns the rendering of x for conditions `x == nil`
// ("" when the condition has another shape).
func nilCheckedExpr(cond ast.Expr) string {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return ""
	}
	if id, ok := be.Y.(*ast.Ident); !ok || id.Name != "nil" {
		return ""
	}
	switch be.X.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return exprString(be.X)
	}
	return ""
}

// isBackgroundCall matches ctxPkg.Background() and ctxPkg.TODO().
func isBackgroundCall(call *ast.CallExpr, ctxPkg string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != ctxPkg {
		return false
	}
	return sel.Sel.Name == "Background" || sel.Sel.Name == "TODO"
}
