package search

import (
	"testing"

	"netagg/internal/testutil"
)

// TestMain gates the suite on goroutine quiescence: every worker pool,
// testbed endpoint, and connection reader started by these tests must
// be gone once the suite finishes (see internal/testutil).
func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }
