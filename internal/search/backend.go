package search

import (
	"context"

	"netagg/internal/agg"
	"netagg/internal/netem"
	"netagg/internal/shim"
	"netagg/internal/transport"
	"netagg/internal/wire"
)

// BackendConfig configures a backend (index) server.
type BackendConfig struct {
	// App is the NetAgg application name (selects the aggregation function
	// deployed on the boxes, e.g. "search-sample").
	App string
	// WorkerIdx is this backend's index within the frontend's backend list.
	WorkerIdx int
	// Master is the frontend's host name.
	Master string
	// Shim is this host's worker shim.
	Shim *shim.Worker
	// Index is the shard index served.
	Index *Index
	// NIC optionally paces the backend's request listener.
	NIC *netem.NIC
	// Categorise, when true, tags outgoing payloads as raw documents for
	// the Categorise aggregation function.
	Categorise bool
	// ChunkDocs splits results into parts of this many documents (0 = one
	// part), letting boxes aggregate in a streaming fashion.
	ChunkDocs int
	// Context optionally bounds the backend's lifetime: cancelling it
	// tears the request listener down (Close still drains). nil means the
	// backend lives until Close.
	Context context.Context
}

// Backend serves sub-requests from the frontend: it searches its shard and
// ships the partial results through the worker shim, which redirects them
// to the first on-path agg box (§3.3).
type Backend struct {
	cfg BackendConfig
	srv *transport.Server
}

// StartBackend launches a backend server.
func StartBackend(cfg BackendConfig) (*Backend, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Backend{cfg: cfg}
	srv, err := transport.Listen(ctx, "127.0.0.1:0",
		func(_ *transport.ServerConn, m *wire.Msg) {
			defer m.Release() // DecodeQuery copies the terms out
			if m.Type != wire.TData {
				return
			}
			q, err := DecodeQuery(m.Payload)
			if err != nil {
				return
			}
			b.answer(m.Req, q)
		}, transport.ServerOptions{NIC: cfg.NIC})
	if err != nil {
		return nil, err
	}
	b.srv = srv
	return b, nil
}

// Addr returns the backend's request address.
func (b *Backend) Addr() string { return b.srv.Addr() }

// Close stops the backend.
func (b *Backend) Close() { b.srv.Close() }

// answer executes the query and ships the partial results via the shim.
func (b *Backend) answer(req uint64, q *Query) {
	docs := b.cfg.Index.Search(q.Terms, q.Limit, q.WithText)
	var parts [][]byte
	chunk := b.cfg.ChunkDocs
	if chunk <= 0 {
		chunk = len(docs)
	}
	for off := 0; off < len(docs) || off == 0; off += chunk {
		end := off + chunk
		if end > len(docs) {
			end = len(docs)
		}
		enc := agg.EncodeDocs(docs[off:end])
		if b.cfg.Categorise {
			enc = agg.TagDocs(enc)
		}
		parts = append(parts, enc)
		if end >= len(docs) {
			break
		}
	}
	trees := q.Trees
	if trees < 1 {
		trees = 1
	}
	b.cfg.Shim.SendPartials(b.cfg.App, req, b.cfg.WorkerIdx, b.cfg.Master, parts, trees)
}
