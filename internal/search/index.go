// Package search is a small distributed full-text search engine, the
// repository's stand-in for Apache Solr (§3.3, §4.2.1): backend servers
// each index a shard of the corpus and answer queries with scored partial
// results; a frontend scatters queries and gathers the results, either
// directly (plain mode) or through NetAgg's on-path aggregation.
package search

import (
	"math"
	"sort"
	"strings"

	"netagg/internal/agg"
	"netagg/internal/corpus"
)

// Index is an in-memory inverted index over one shard.
type Index struct {
	docs     map[uint64]corpus.Document
	postings map[string][]posting
	docCount int
}

type posting struct {
	doc uint64
	tf  int
}

// NewIndex builds an index over the shard.
func NewIndex(docs []corpus.Document) *Index {
	idx := &Index{
		docs:     make(map[uint64]corpus.Document, len(docs)),
		postings: make(map[string][]posting),
		docCount: len(docs),
	}
	for _, d := range docs {
		idx.docs[d.ID] = d
		counts := make(map[string]int)
		for _, w := range strings.Fields(d.Text) {
			counts[w]++
		}
		for w, tf := range counts {
			idx.postings[w] = append(idx.postings[w], posting{doc: d.ID, tf: tf})
		}
	}
	return idx
}

// NumDocs reports the shard size.
func (idx *Index) NumDocs() int { return idx.docCount }

// Search scores the shard's documents against the query terms with TF-IDF
// and returns up to limit results, highest score first. withText attaches
// the document text (needed by the categorise aggregation function).
func (idx *Index) Search(terms []string, limit int, withText bool) []agg.Doc {
	scores := make(map[uint64]float64)
	for _, term := range terms {
		posts := idx.postings[term]
		if len(posts) == 0 {
			continue
		}
		idf := math.Log(1 + float64(idx.docCount)/float64(len(posts)))
		for _, p := range posts {
			scores[p.doc] += (1 + math.Log(float64(p.tf))) * idf
		}
	}
	out := make([]agg.Doc, 0, len(scores))
	for id, score := range scores {
		d := agg.Doc{ID: id, Score: score}
		if withText {
			d.Text = idx.docs[id].Text
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
