package search

import (
	"context"
	"fmt"

	"netagg/internal/agg"
	"netagg/internal/corpus"
	"netagg/internal/testbed"
)

// DeployConfig assembles a complete search deployment on a testbed.
type DeployConfig struct {
	// App names the NetAgg application (must be registered in the testbed's
	// aggregator registry when boxes are deployed).
	App string
	// Corpus configures the document collection sharded over the backends.
	Corpus corpus.Config
	// Aggregator is the frontend's final aggregation function (usually the
	// same one the boxes run).
	Aggregator agg.Aggregator
	// Categorise marks payloads as raw documents for agg.Categorise.
	Categorise bool
	// Trees is the number of aggregation trees per query.
	Trees int
	// ChunkDocs splits backend results into parts of this many documents.
	ChunkDocs int
	// Hosts optionally restricts backends to these testbed worker hosts
	// (default: all).
	Hosts []string
	// Context optionally bounds the deployment's lifetime; it is passed
	// to every backend and the frontend (usually the same context the
	// testbed was built with).
	Context context.Context
}

// Cluster is a running search deployment.
type Cluster struct {
	Frontend *Frontend
	Backends []*Backend
}

// Close stops the frontend's connection pool and the backends (the
// testbed owns the shims and boxes).
func (c *Cluster) Close() {
	if c.Frontend != nil {
		c.Frontend.Close()
	}
	for _, b := range c.Backends {
		b.Close()
	}
}

// Deploy builds indices, starts one backend per worker host, and wires a
// frontend on the master host.
func Deploy(tb *testbed.Testbed, cfg DeployConfig) (*Cluster, error) {
	hosts := cfg.Hosts
	if len(hosts) == 0 {
		hosts = tb.WorkerHosts()
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("search: no backend hosts")
	}
	docs := corpus.Generate(cfg.Corpus)
	shards := corpus.Shard(docs, len(hosts))

	c := &Cluster{}
	refs := make([]BackendRef, 0, len(hosts))
	for i, host := range hosts {
		ws, ok := tb.Workers[host]
		if !ok {
			c.Close()
			return nil, fmt.Errorf("search: host %q has no worker shim", host)
		}
		b, err := StartBackend(BackendConfig{
			App:        cfg.App,
			WorkerIdx:  i,
			Master:     testbed.MasterHost,
			Shim:       ws,
			Index:      NewIndex(shards[i]),
			NIC:        tb.NIC(host),
			Categorise: cfg.Categorise,
			ChunkDocs:  cfg.ChunkDocs,
			Context:    cfg.Context,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Backends = append(c.Backends, b)
		refs = append(refs, BackendRef{Host: host, Addr: b.Addr()})
	}
	c.Frontend = NewFrontend(FrontendConfig{
		App:        cfg.App,
		Master:     tb.Master,
		Backends:   refs,
		Aggregator: cfg.Aggregator,
		Trees:      cfg.Trees,
		NIC:        tb.NIC(testbed.MasterHost),
		Context:    cfg.Context,
	})
	return c, nil
}
