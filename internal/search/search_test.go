package search

import (
	"testing"

	"netagg/internal/agg"
	"netagg/internal/corpus"
	"netagg/internal/stats"
	"netagg/internal/testbed"
)

func TestIndexSearchScoresAndRanks(t *testing.T) {
	docs := []corpus.Document{
		{ID: 1, Text: "apple banana apple"},
		{ID: 2, Text: "banana cherry"},
		{ID: 3, Text: "cherry cherry cherry"},
	}
	idx := NewIndex(docs)
	if idx.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", idx.NumDocs())
	}
	res := idx.Search([]string{"apple"}, 10, false)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("apple search = %+v", res)
	}
	res = idx.Search([]string{"cherry"}, 10, false)
	if len(res) != 2 || res[0].ID != 3 {
		t.Fatalf("cherry ranking = %+v", res)
	}
	// Limit applies.
	if res := idx.Search([]string{"banana", "cherry"}, 1, false); len(res) != 1 {
		t.Fatalf("limit ignored: %+v", res)
	}
	// Unknown terms give no results.
	if res := idx.Search([]string{"zzz"}, 10, false); len(res) != 0 {
		t.Fatalf("unknown term matched: %+v", res)
	}
}

func TestIndexWithText(t *testing.T) {
	idx := NewIndex([]corpus.Document{{ID: 1, Text: "hello world"}})
	res := idx.Search([]string{"hello"}, 0, true)
	if len(res) != 1 || res[0].Text != "hello world" {
		t.Fatalf("text missing: %+v", res)
	}
	res = idx.Search([]string{"hello"}, 0, false)
	if res[0].Text != "" {
		t.Fatal("text should be omitted")
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	q := &Query{Terms: []string{"a", "bb"}, Limit: 7, WithText: true, Trees: 2}
	out, err := DecodeQuery(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Terms) != 2 || out.Terms[1] != "bb" || out.Limit != 7 || !out.WithText || out.Trees != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if _, err := DecodeQuery([]byte{0xff}); err == nil {
		t.Fatal("expected error for corrupt query")
	}
}

// newSearchRig deploys a search cluster over a testbed with topk
// aggregation; boxes=0 gives the plain deployment.
func newSearchRig(t *testing.T, boxes int) (*testbed.Testbed, *Cluster) {
	t.Helper()
	reg := agg.NewRegistry()
	reg.Register("search", agg.TopK{K: 10})
	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 3,
		BoxesPerSwitch: boxes,
		Registry:       reg,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	cl, err := Deploy(tb, DeployConfig{
		App:        "search",
		Corpus:     corpus.Config{Seed: 1, Docs: 600, WordsPerDoc: 60, VocabularySize: 500, ZipfS: 1.1},
		Aggregator: agg.TopK{K: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return tb, cl
}

func TestDistributedSearchPlain(t *testing.T) {
	_, cl := newSearchRig(t, 0)
	rn := stats.NewRand(2)
	resp, err := cl.Frontend.Query(corpus.QueryWords(rn, 500, 3), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) == 0 {
		t.Fatal("no results")
	}
	if len(resp.Docs) > 10 {
		t.Fatalf("top-k overflow: %d", len(resp.Docs))
	}
	for i := 1; i < len(resp.Docs); i++ {
		if resp.Docs[i].Score > resp.Docs[i-1].Score {
			t.Fatal("results not ranked")
		}
	}
}

// The aggregated deployment must return exactly the same top-k as the plain
// one: on-path aggregation is transparent to the application (§3).
func TestDistributedSearchNetAggMatchesPlain(t *testing.T) {
	_, plain := newSearchRig(t, 0)
	_, netagg := newSearchRig(t, 1)
	rn := stats.NewRand(3)
	for q := 0; q < 5; q++ {
		terms := corpus.QueryWords(rn, 500, 3)
		a, err := plain.Frontend.Query(terms, 10, false)
		if err != nil {
			t.Fatal(err)
		}
		b, err := netagg.Frontend.Query(terms, 10, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Docs) != len(b.Docs) {
			t.Fatalf("query %v: %d vs %d results", terms, len(a.Docs), len(b.Docs))
		}
		for i := range a.Docs {
			if a.Docs[i].ID != b.Docs[i].ID {
				t.Fatalf("query %v: rank %d differs: %d vs %d", terms, i, a.Docs[i].ID, b.Docs[i].ID)
			}
		}
	}
}

func TestDistributedSearchNetAggReducesMasterBytes(t *testing.T) {
	_, plain := newSearchRig(t, 0)
	_, netagg := newSearchRig(t, 1)
	rn := stats.NewRand(4)
	terms := corpus.QueryWords(rn, 500, 3)
	a, err := plain.Frontend.Query(terms, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := netagg.Frontend.Query(terms, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bytes >= a.Bytes {
		t.Fatalf("netagg master bytes %d should be below plain %d", b.Bytes, a.Bytes)
	}
}

func TestSearchCategorise(t *testing.T) {
	cat := agg.Categorise{K: 5, Categories: corpus.Categories()}
	reg := agg.NewRegistry()
	reg.Register("search-cat", cat)
	tb, err := testbed.New(testbed.Config{
		Racks:          1,
		WorkersPerRack: 4,
		BoxesPerSwitch: 1,
		Registry:       reg,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	cl, err := Deploy(tb, DeployConfig{
		App:        "search-cat",
		Corpus:     corpus.Config{Seed: 1, Docs: 400, WordsPerDoc: 80, VocabularySize: 400, ZipfS: 1.1},
		Aggregator: cat,
		Categorise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	rn := stats.NewRand(5)
	resp, err := cl.Frontend.Query(corpus.QueryWords(rn, 400, 3), 50, true)
	if err != nil {
		t.Fatal(err)
	}
	per, err := cat.TopPerCategory(resp.Raw)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, docs := range per {
		if len(docs) > 5 {
			t.Fatalf("category exceeded K: %d", len(docs))
		}
		total += len(docs)
	}
	if total == 0 {
		t.Fatal("categorise returned nothing")
	}
}

func TestMultipleTreesSearch(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("search", agg.TopK{K: 10})
	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 2,
		BoxesPerSwitch: 2, // scale-out so trees use disjoint boxes
		Registry:       reg,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	cl, err := Deploy(tb, DeployConfig{
		App:        "search",
		Corpus:     corpus.Config{Seed: 1, Docs: 400, WordsPerDoc: 60, VocabularySize: 300, ZipfS: 1.1},
		Aggregator: agg.TopK{K: 10},
		Trees:      2,
		ChunkDocs:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	rn := stats.NewRand(6)
	resp, err := cl.Frontend.Query(corpus.QueryWords(rn, 300, 3), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) == 0 {
		t.Fatal("no results over multiple trees")
	}
}
