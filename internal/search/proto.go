package search

import (
	"encoding/binary"
	"errors"
)

// Query is a sub-request sent by the frontend to every backend.
type Query struct {
	// Terms are the search words.
	Terms []string
	// Limit caps the per-backend result count (0 = no cap).
	Limit int
	// WithText attaches document text to results (for categorise).
	WithText bool
	// Trees is the number of aggregation trees to use for the response.
	Trees int
}

var errBadQuery = errors.New("search: malformed query")

// Encode serialises the query.
func (q *Query) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(q.Limit))
	flags := uint64(0)
	if q.WithText {
		flags = 1
	}
	buf = binary.AppendUvarint(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(q.Trees))
	buf = binary.AppendUvarint(buf, uint64(len(q.Terms)))
	for _, t := range q.Terms {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
	}
	return buf
}

// DecodeQuery parses an encoded query.
func DecodeQuery(p []byte) (*Query, error) {
	q := &Query{}
	limit, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errBadQuery
	}
	p = p[n:]
	q.Limit = int(limit)
	flags, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errBadQuery
	}
	p = p[n:]
	q.WithText = flags&1 != 0
	trees, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errBadQuery
	}
	p = p[n:]
	q.Trees = int(trees)
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errBadQuery
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		tlen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p[n:])) < tlen {
			return nil, errBadQuery
		}
		p = p[n:]
		q.Terms = append(q.Terms, string(p[:tlen]))
		p = p[tlen:]
	}
	if len(p) != 0 {
		return nil, errBadQuery
	}
	return q, nil
}
