package search

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"netagg/internal/agg"
	"netagg/internal/netem"
	"netagg/internal/shim"
	"netagg/internal/transport"
	"netagg/internal/wire"
)

// FrontendConfig configures the search frontend (the master node).
type FrontendConfig struct {
	// App is the NetAgg application name.
	App string
	// Master is the frontend's master-side shim.
	Master *shim.Master
	// Backends lists each backend's host name and request address, in
	// worker-index order.
	Backends []BackendRef
	// Aggregator performs the frontend's final aggregation step over the
	// parts the master shim collected (§3.1: with multiple trees "the
	// master node must perform a final aggregation step").
	Aggregator agg.Aggregator
	// Trees is the number of aggregation trees per query.
	Trees int
	// NIC optionally paces the frontend's outgoing sub-requests.
	NIC *netem.NIC
	// Timeout bounds one query (default 30s).
	Timeout time.Duration
	// Context optionally bounds the frontend's lifetime: cancelling it
	// tears the backend connection pool down. nil means the frontend
	// lives until Close.
	Context context.Context
}

// BackendRef names one backend.
type BackendRef struct {
	Host string
	Addr string
}

// Frontend scatters queries to the backends and returns the aggregated
// result.
type Frontend struct {
	cfg   FrontendConfig
	pool  *transport.Pool
	reqID atomic.Uint64
}

// NewFrontend returns a frontend.
func NewFrontend(cfg FrontendConfig) *Frontend {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Trees < 1 {
		cfg.Trees = 1
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	f := &Frontend{cfg: cfg}
	f.pool = transport.NewPool(ctx, transport.Options{NIC: cfg.NIC})
	return f
}

// Close tears down the frontend's backend connection pool (each pooled
// connection owns a flusher goroutine). Equivalent to cancelling the
// configured Context; idempotent.
func (f *Frontend) Close() { f.pool.Close() }

// Response is one completed query.
type Response struct {
	// Docs is the final merged result.
	Docs []agg.Doc
	// Raw is the merged payload before decoding (used by categorise, whose
	// result is per-category).
	Raw []byte
	// Latency is the query round-trip time at the frontend.
	Latency time.Duration
	// Bytes is the total result payload received by the master shim.
	Bytes int64
}

// Query runs one search across all backends.
func (f *Frontend) Query(terms []string, limit int, withText bool) (*Response, error) {
	req := f.reqID.Add(1)
	workers := make([]string, len(f.cfg.Backends))
	for i, b := range f.cfg.Backends {
		workers[i] = b.Host
	}
	start := time.Now()
	pending, err := f.cfg.Master.Submit(f.cfg.App, req, workers, f.cfg.Trees)
	if err != nil {
		return nil, err
	}
	q := &Query{Terms: terms, Limit: limit, WithText: withText, Trees: f.cfg.Trees}
	payload := q.Encode()
	for _, b := range f.cfg.Backends {
		err := f.pool.Send(b.Addr, &wire.Msg{Type: wire.TData, App: f.cfg.App, Req: req, Payload: payload})
		if err != nil {
			return nil, fmt.Errorf("search: sub-request to %s: %w", b.Host, err)
		}
	}
	select {
	case res := <-pending.C:
		if res.Err != nil {
			return nil, res.Err
		}
		// merge decodes the parts into fresh documents, so the pooled
		// buffers can go back as soon as it returns.
		defer res.Release()
		return f.merge(res.Parts, start)
	case <-time.After(f.cfg.Timeout):
		return nil, fmt.Errorf("search: query %d timed out", req)
	}
}

// merge performs the final aggregation step over the collected parts and
// decodes the result.
func (f *Frontend) merge(parts [][]byte, start time.Time) (*Response, error) {
	var bytes int64
	for _, p := range parts {
		bytes += int64(len(p))
	}
	var merged []byte
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if merged == nil {
			merged = p
			continue
		}
		var err error
		merged, err = f.cfg.Aggregator.Combine(merged, p)
		if err != nil {
			return nil, fmt.Errorf("search: final aggregation: %w", err)
		}
	}
	resp := &Response{Raw: merged, Latency: time.Since(start), Bytes: bytes}
	if merged != nil {
		if docs, err := agg.DecodeDocs(merged); err == nil {
			resp.Docs = docs
		}
	}
	return resp, nil
}
