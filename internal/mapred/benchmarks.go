package mapred

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"netagg/internal/agg"
	"netagg/internal/stats"
)

// Benchmark is one of the paper's five Hadoop workloads (§4.2.2): it
// generates its own synthetic input and supplies the map function and
// reduction operator. The generated input size and key cardinality control
// the aggregation output ratio α.
type Benchmark struct {
	// Name is the paper's short code: WC, AP, PR, UV, TS.
	Name string
	// Map is the benchmark's map function.
	Map MapFunc
	// Op is the per-key reduction.
	Op agg.KVOp
	// ReducerCost emulates a compute-heavy reduce (AdPredictor).
	ReducerCost time.Duration
	// Gen produces the input splits.
	Gen func(cfg GenConfig) [][]string
}

// GenConfig sizes a benchmark's input.
type GenConfig struct {
	// Seed makes the input reproducible.
	Seed int64
	// Splits is the number of mapper inputs to produce.
	Splits int
	// RecordsPerSplit is the number of input records per mapper.
	RecordsPerSplit int
	// Keys bounds the distinct key universe; smaller = more reduction
	// (lower α). Benchmarks with fixed key semantics may ignore it.
	Keys int
}

// WordCount counts word occurrences; the output ratio is controlled by the
// vocabulary size (word repetition), as in Fig 23.
func WordCount() Benchmark {
	return Benchmark{
		Name: "WC",
		Op:   agg.OpSum,
		Map: func(rec string, emit func(string, int64)) {
			for _, w := range strings.Fields(rec) {
				emit(w, 1)
			}
		},
		Gen: func(cfg GenConfig) [][]string {
			rn := stats.NewRand(cfg.Seed)
			return genSplits(cfg, func() string {
				var sb strings.Builder
				for i := 0; i < 10; i++ {
					if i > 0 {
						sb.WriteByte(' ')
					}
					fmt.Fprintf(&sb, "word%06d", rn.Zipf(cfg.Keys, 1.1))
				}
				return sb.String()
			})
		},
	}
}

// AdPredictor aggregates click/impression counts per ad for click-through
// rate estimation; its reduce step is compute-heavy, which caps NetAgg's
// speed-up (§4.2.2: "AP exhibits a speed-up of only 1.9 because the
// benchmark is compute-intensive").
func AdPredictor() Benchmark {
	return Benchmark{
		Name:        "AP",
		Op:          agg.OpSum,
		ReducerCost: 2 * time.Millisecond, // per KB at the reducer
		Map: func(rec string, emit func(string, int64)) {
			fields := strings.Split(rec, ",")
			if len(fields) != 2 {
				return
			}
			emit("ad:"+fields[0]+":imp", 1)
			if fields[1] == "1" {
				emit("ad:"+fields[0]+":click", 1)
			}
		},
		Gen: func(cfg GenConfig) [][]string {
			rn := stats.NewRand(cfg.Seed)
			return genSplits(cfg, func() string {
				clicked := 0
				if rn.Float64() < 0.1 {
					clicked = 1
				}
				return fmt.Sprintf("%d,%d", rn.Zipf(cfg.Keys, 1.1), clicked)
			})
		},
	}
}

// PageRank sums incoming rank contributions per vertex (one synchronous
// iteration); contributions are scaled to integers.
func PageRank() Benchmark {
	return Benchmark{
		Name: "PR",
		Op:   agg.OpSum,
		Map: func(rec string, emit func(string, int64)) {
			fields := strings.Split(rec, " ")
			if len(fields) != 3 {
				return
			}
			contrib, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return
			}
			emit("v:"+fields[1], contrib)
		},
		Gen: func(cfg GenConfig) [][]string {
			rn := stats.NewRand(cfg.Seed)
			return genSplits(cfg, func() string {
				src := rn.Intn(cfg.Keys)
				dst := rn.Zipf(cfg.Keys, 1.2)
				return fmt.Sprintf("%d %d %d", src, dst, 1000/(1+rn.Intn(9)))
			})
		},
	}
}

// UserVisits computes ad revenue per source IP from web logs.
func UserVisits() Benchmark {
	return Benchmark{
		Name: "UV",
		Op:   agg.OpSum,
		Map: func(rec string, emit func(string, int64)) {
			fields := strings.Split(rec, ",")
			if len(fields) != 2 {
				return
			}
			rev, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return
			}
			emit("ip:"+fields[0], rev)
		},
		Gen: func(cfg GenConfig) [][]string {
			rn := stats.NewRand(cfg.Seed)
			return genSplits(cfg, func() string {
				// Zipf over the shared key universe, rendered as a dotted
				// address so every mapper sees overlapping source IPs.
				k := rn.Zipf(cfg.Keys, 1.1)
				ip := fmt.Sprintf("10.%d.%d.%d", k>>16&255, k>>8&255, k&255)
				return fmt.Sprintf("%s,%d", ip, 1+rn.Intn(100))
			})
		},
	}
}

// TeraSort shuffles unique keys with an identity reduce: nothing can be
// aggregated, so NetAgg yields no benefit (the paper's negative control).
func TeraSort() Benchmark {
	return Benchmark{
		Name: "TS",
		Op:   agg.OpSum,
		Map: func(rec string, emit func(string, int64)) {
			emit(rec, 0)
		},
		Gen: func(cfg GenConfig) [][]string {
			rn := stats.NewRand(cfg.Seed)
			serial := 0
			return genSplits(cfg, func() string {
				serial++
				return fmt.Sprintf("%016x%08d", rn.Uint64(), serial)
			})
		},
	}
}

// All returns the paper's benchmark suite in Fig 22 order.
func All() []Benchmark {
	return []Benchmark{WordCount(), AdPredictor(), PageRank(), UserVisits(), TeraSort()}
}

func genSplits(cfg GenConfig, record func() string) [][]string {
	if cfg.Splits <= 0 || cfg.RecordsPerSplit <= 0 {
		panic(fmt.Sprintf("mapred: invalid gen config %+v", cfg))
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	splits := make([][]string, cfg.Splits)
	for i := range splits {
		recs := make([]string, cfg.RecordsPerSplit)
		for j := range recs {
			recs[j] = record()
		}
		splits[i] = recs
	}
	return splits
}
