package mapred

import (
	"strings"
	"testing"

	"netagg/internal/agg"
	"netagg/internal/testbed"
)

func newTB(t *testing.T, boxes int) *testbed.Testbed {
	t.Helper()
	reg := agg.NewRegistry()
	reg.Register("job", agg.KVCombiner{Op: agg.OpSum})
	tb, err := testbed.New(testbed.Config{
		Racks:          1,
		WorkersPerRack: 4,
		BoxesPerSwitch: boxes,
		Registry:       reg,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func wordCountInputs() [][]string {
	return [][]string{
		{"a b a", "c"},
		{"a c c"},
		{"b b"},
		{"d"},
	}
}

func wcExpected() map[string]int64 {
	return map[string]int64{"a": 3, "b": 3, "c": 3, "d": 1}
}

func checkWC(t *testing.T, res *Result) {
	t.Helper()
	got := map[string]int64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Val
	}
	for k, want := range wcExpected() {
		if got[k] != want {
			t.Fatalf("%s = %d, want %d (output %v)", k, got[k], want, res.Output)
		}
	}
	if len(got) != len(wcExpected()) {
		t.Fatalf("unexpected keys: %v", got)
	}
}

func TestWordCountPlain(t *testing.T) {
	tb := newTB(t, 0)
	res, err := Run(tb, 1, JobConfig{App: "job", Op: agg.OpSum, MapSideCombine: true},
		wordCountInputs(), WordCount().Map)
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, res)
	if res.ShuffleReduceTime <= 0 || res.MapTime <= 0 {
		t.Fatal("timings not recorded")
	}
}

func TestWordCountNetAgg(t *testing.T) {
	tb := newTB(t, 1)
	res, err := Run(tb, 2, JobConfig{App: "job", Op: agg.OpSum, MapSideCombine: true},
		wordCountInputs(), WordCount().Map)
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, res)
}

func TestWordCountRawPairsMatchCombined(t *testing.T) {
	tb := newTB(t, 1)
	res, err := Run(tb, 3, JobConfig{App: "job", Op: agg.OpSum, MapSideCombine: false},
		wordCountInputs(), WordCount().Map)
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, res)
}

// The box-side combiner must shrink what the reducer receives.
func TestNetAggReducesReducerBytes(t *testing.T) {
	gen := WordCount().Gen(GenConfig{Seed: 1, Splits: 4, RecordsPerSplit: 200, Keys: 50})
	plain := newTB(t, 0)
	resPlain, err := Run(plain, 4, JobConfig{App: "job", Op: agg.OpSum, MapSideCombine: true}, gen, WordCount().Map)
	if err != nil {
		t.Fatal(err)
	}
	boxed := newTB(t, 1)
	resBoxed, err := Run(boxed, 4, JobConfig{App: "job", Op: agg.OpSum, MapSideCombine: true}, gen, WordCount().Map)
	if err != nil {
		t.Fatal(err)
	}
	if resBoxed.BytesToReducer >= resPlain.BytesToReducer {
		t.Fatalf("boxed reducer bytes %d should be below plain %d",
			resBoxed.BytesToReducer, resPlain.BytesToReducer)
	}
	// Same answer either way.
	if len(resBoxed.Output) != len(resPlain.Output) {
		t.Fatalf("output sizes differ: %d vs %d", len(resBoxed.Output), len(resPlain.Output))
	}
	for i := range resPlain.Output {
		if resPlain.Output[i] != resBoxed.Output[i] {
			t.Fatalf("output differs at %d: %v vs %v", i, resPlain.Output[i], resBoxed.Output[i])
		}
	}
}

func TestAllBenchmarksRunAndReduceCorrectly(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			tb := newTB(t, 1)
			inputs := b.Gen(GenConfig{Seed: 7, Splits: 4, RecordsPerSplit: 100, Keys: 40})
			res, err := Run(tb, 10, JobConfig{App: "job", Op: b.Op, MapSideCombine: true}, inputs, b.Map)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) == 0 {
				t.Fatal("no output")
			}
			if b.Name == "TS" {
				// Identity reduce: every input row survives.
				want := 4 * 100
				if len(res.Output) != want {
					t.Fatalf("TS output %d rows, want %d", len(res.Output), want)
				}
			}
		})
	}
}

func TestTeraSortNoReduction(t *testing.T) {
	b := TeraSort()
	inputs := b.Gen(GenConfig{Seed: 1, Splits: 2, RecordsPerSplit: 50})
	tb := newTB(t, 1)
	res, err := Run(tb, 11, JobConfig{App: "job", Op: b.Op, MapSideCombine: true}, inputs, b.Map)
	if err != nil {
		t.Fatal(err)
	}
	// Unique keys: bytes to the reducer cannot shrink below the data.
	if res.BytesToReducer < res.IntermediateBytes/2 {
		t.Fatalf("TeraSort should not reduce: %d of %d bytes arrived",
			res.BytesToReducer, res.IntermediateBytes)
	}
	// Output is sorted.
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i].Key < res.Output[i-1].Key {
			t.Fatal("output not sorted")
		}
	}
}

func TestWordCountAlphaControl(t *testing.T) {
	// Fewer distinct keys → more reduction → smaller intermediate:final
	// ratio, the α control used by Fig 23.
	small := WordCount().Gen(GenConfig{Seed: 1, Splits: 2, RecordsPerSplit: 300, Keys: 10})
	large := WordCount().Gen(GenConfig{Seed: 1, Splits: 2, RecordsPerSplit: 300, Keys: 3000})
	countDistinct := func(splits [][]string) int {
		words := map[string]bool{}
		for _, s := range splits {
			for _, rec := range s {
				for _, w := range strings.Fields(rec) {
					words[w] = true
				}
			}
		}
		return len(words)
	}
	if countDistinct(small) >= countDistinct(large) {
		t.Fatal("key-universe control broken")
	}
}

func TestRunRejectsTooManySplits(t *testing.T) {
	tb := newTB(t, 0)
	_, err := Run(tb, 12, JobConfig{App: "job"}, make([][]string, 10), WordCount().Map)
	if err == nil {
		t.Fatal("expected error for more splits than workers")
	}
}
