// Package mapred is a small MapReduce framework, the repository's stand-in
// for Apache Hadoop (§3.3, §4.2.2): mappers transform input splits into
// key/value pairs (optionally running a map-side combiner, as Hadoop does),
// the shuffle ships each mapper's output to the reducer over TCP through
// the NetAgg worker shims — so agg boxes can run the combiner on-path — and
// the reducer performs the final per-key reduction. The paper's testbed
// deployment (10 mappers, 1 reducer, a single aggregation tree) maps to one
// mapper per testbed worker host and the reducer on the master host.
package mapred

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netagg/internal/agg"
	"netagg/internal/testbed"
)

// MapFunc transforms one input record into key/value pairs via emit.
type MapFunc func(record string, emit func(key string, val int64))

// JobConfig configures a job run.
type JobConfig struct {
	// App is the NetAgg application name whose combiner the boxes run.
	App string
	// Op is the per-key reduction (also used map-side and at the reducer).
	Op agg.KVOp
	// MapSideCombine pre-combines each mapper's output, Hadoop's default
	// behaviour; when false, raw pairs are shuffled.
	MapSideCombine bool
	// Trees is the number of aggregation trees for the shuffle.
	Trees int
	// ChunkPairs splits a mapper's output into parts of this many pairs so
	// boxes aggregate the stream chunk by chunk (0 = 4096).
	ChunkPairs int
	// ReducerCost emulates per-KB CPU cost at the reducer (AdPredictor's
	// compute-heavy reduce); zero means none.
	ReducerCost time.Duration
}

// Result is a completed job.
type Result struct {
	// Output is the final reduced key/value list, key-sorted.
	Output []agg.KV
	// MapTime covers running the mappers (and map-side combine).
	MapTime time.Duration
	// ShuffleReduceTime covers the shuffle through the network/boxes and
	// the final reduction — the paper's "shuffle and reduce time (SRT)".
	ShuffleReduceTime time.Duration
	// BytesToReducer is the payload volume the reducer's shim received.
	BytesToReducer int64
	// IntermediateBytes is the total encoded mapper output shuffled.
	IntermediateBytes int64
}

// Run executes a job on the testbed: inputs[i] is the input split of the
// mapper on worker host i (len(inputs) must not exceed the worker count).
func Run(tb *testbed.Testbed, jobID uint64, cfg JobConfig, inputs [][]string, mapper MapFunc) (*Result, error) {
	hosts := tb.WorkerHosts()
	if len(inputs) > len(hosts) {
		return nil, fmt.Errorf("mapred: %d splits but only %d worker hosts", len(inputs), len(hosts))
	}
	hosts = hosts[:len(inputs)]
	if cfg.Trees < 1 {
		cfg.Trees = 1
	}
	chunk := cfg.ChunkPairs
	if chunk <= 0 {
		chunk = 4096
	}

	// Map phase (in-process: the map computation is not on NetAgg's path).
	mapStart := time.Now()
	parts := make([][][]byte, len(inputs))
	var intermediate int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pairs := runMapper(inputs[i], mapper, cfg)
			var encoded [][]byte
			for off := 0; off < len(pairs) || off == 0; off += chunk {
				end := off + chunk
				if end > len(pairs) {
					end = len(pairs)
				}
				enc := agg.EncodeKVs(pairs[off:end])
				encoded = append(encoded, enc)
				mu.Lock()
				intermediate += int64(len(enc))
				mu.Unlock()
				if end >= len(pairs) {
					break
				}
			}
			parts[i] = encoded
		}(i)
	}
	wg.Wait()
	mapTime := time.Since(mapStart)

	// Shuffle + reduce: register the request, ship every mapper's chunks
	// through its worker shim, and reduce what arrives.
	shuffleStart := time.Now()
	pending, err := tb.Master.Submit(cfg.App, jobID, hosts, cfg.Trees)
	if err != nil {
		return nil, err
	}
	errs := make(chan error, len(hosts))
	for i, host := range hosts {
		wg.Add(1)
		go func(i int, host string) {
			defer wg.Done()
			errs <- tb.Workers[host].SendPartials(cfg.App, jobID, i, testbed.MasterHost, parts[i], cfg.Trees)
		}(i, host)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := <-pending.C
	if res.Err != nil {
		return nil, res.Err
	}
	output, received, err := reduce(res.Parts, cfg)
	// reduce decodes every part into its own KV slices; recycle the
	// pooled buffers before the error check so both paths give them back.
	res.Release()
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:            output,
		MapTime:           mapTime,
		ShuffleReduceTime: time.Since(shuffleStart),
		BytesToReducer:    received,
		IntermediateBytes: intermediate,
	}, nil
}

// runMapper maps one split and optionally combines map-side.
func runMapper(split []string, mapper MapFunc, cfg JobConfig) []agg.KV {
	if cfg.MapSideCombine {
		combined := make(map[string]int64)
		has := make(map[string]bool)
		for _, rec := range split {
			mapper(rec, func(k string, v int64) {
				if !has[k] {
					has[k] = true
					combined[k] = v
					return
				}
				combined[k] = reduceVal(cfg.Op, combined[k], v)
			})
		}
		out := make([]agg.KV, 0, len(combined))
		for k, v := range combined {
			out = append(out, agg.KV{Key: k, Val: v})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	var out []agg.KV
	for _, rec := range split {
		mapper(rec, func(k string, v int64) {
			out = append(out, agg.KV{Key: k, Val: v})
		})
	}
	// Canonical order, and merge duplicate keys within one chunk boundary
	// happens at the reducer; raw mode intentionally keeps duplicates.
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// reduce merges the shuffled parts into the final output. The reducer
// re-reads everything it receives even when a box already fully aggregated
// it, matching the paper's transparency decision ("the reducer is unaware
// that the results received from the agg box are already final and,
// regardless, reads them again").
func reduce(parts [][]byte, cfg JobConfig) ([]agg.KV, int64, error) {
	var received int64
	totals := make(map[string]int64)
	seen := make(map[string]bool)
	for _, part := range parts {
		if len(part) == 0 {
			continue
		}
		received += int64(len(part))
		if cfg.ReducerCost > 0 {
			time.Sleep(time.Duration(float64(len(part)) / 1024 * float64(cfg.ReducerCost)))
		}
		kvs, err := agg.DecodeKVs(part)
		if err != nil {
			return nil, 0, fmt.Errorf("mapred: reduce: %w", err)
		}
		for _, kv := range kvs {
			if !seen[kv.Key] {
				seen[kv.Key] = true
				totals[kv.Key] = kv.Val
				continue
			}
			totals[kv.Key] = reduceVal(cfg.Op, totals[kv.Key], kv.Val)
		}
	}
	out := make([]agg.KV, 0, len(totals))
	for k, v := range totals {
		out = append(out, agg.KV{Key: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, received, nil
}

func reduceVal(op agg.KVOp, a, b int64) int64 {
	switch op {
	case agg.OpMax:
		if a > b {
			return a
		}
		return b
	case agg.OpMin:
		if a < b {
			return a
		}
		return b
	default:
		return a + b
	}
}
