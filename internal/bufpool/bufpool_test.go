package bufpool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {512, 0}, {513, 1}, {1024, 1}, {1025, 2},
		{1 << 20, 11}, {maxPooled, numClasses - 1}, {maxPooled + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetReleaseRecycles(t *testing.T) {
	// Warm the class so the loop below runs against a populated pool.
	b := Get(4096)
	b.Release()

	before := ReadStats()
	for i := 0; i < 1000; i++ {
		b := Get(4096)
		if b.Len() != 4096 || b.Cap() != 4096 {
			t.Fatalf("len/cap = %d/%d, want 4096/4096", b.Len(), b.Cap())
		}
		b.Release()
	}
	after := ReadStats()
	if after.Gets-before.Gets != 1000 {
		t.Fatalf("gets delta = %d, want 1000", after.Gets-before.Gets)
	}
	// Strict serial reuse: the same buffer bounces in and out of the
	// pool, so no new backing arrays should be needed. sync.Pool may
	// theoretically drop entries under GC pressure; allow a little slack
	// rather than flake. Under -race the pool drops puts at random by
	// design, so the recycling assertion is meaningless there.
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race; recycling cannot be asserted")
	}
	if misses := after.News - before.News; misses > 10 {
		t.Fatalf("pool missed %d times across 1000 serial get/release cycles", misses)
	}
}

func TestClassRounding(t *testing.T) {
	b := Get(700)
	defer b.Release()
	if b.Len() != 700 {
		t.Fatalf("Len = %d, want 700", b.Len())
	}
	if b.Cap() != 1024 {
		t.Fatalf("Cap = %d, want the 1024 class", b.Cap())
	}
	if len(b.Bytes()) != 700 {
		t.Fatalf("Bytes() length = %d, want 700", len(b.Bytes()))
	}
}

func TestOversizeUnpooled(t *testing.T) {
	b := Get(maxPooled + 1)
	if b.class != -1 {
		t.Fatalf("oversize buffer got class %d, want -1 (unpooled)", b.class)
	}
	if b.Len() != maxPooled+1 || b.Cap() != maxPooled+1 {
		t.Fatalf("oversize len/cap = %d/%d", b.Len(), b.Cap())
	}
	b.Release() // must not panic or pool it
}

func TestAdopt(t *testing.T) {
	p := []byte("combine output")
	b := Adopt(p)
	if &b.Bytes()[0] != &p[0] {
		t.Fatal("Adopt copied instead of wrapping")
	}
	if b.Refs() != 1 {
		t.Fatalf("Refs = %d, want 1", b.Refs())
	}
	b.Release()
}

func TestRetainRelease(t *testing.T) {
	b := Get(100)
	if b.Retain() != b {
		t.Fatal("Retain must return its receiver")
	}
	if b.Refs() != 2 {
		t.Fatalf("Refs = %d, want 2", b.Refs())
	}
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("Refs after one release = %d, want 1", b.Refs())
	}
	b.Release()
}

func TestNilSafety(t *testing.T) {
	var b *Buf
	if b.Bytes() != nil || b.Len() != 0 || b.Cap() != 0 || b.Refs() != 0 {
		t.Fatal("nil Buf accessors must be zero-valued")
	}
	if b.Retain() != nil {
		t.Fatal("nil Retain must return nil")
	}
	b.Release() // must not panic
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Adopt([]byte("x")) // unpooled: the panic must not depend on recycling
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

func TestSetLen(t *testing.T) {
	b := Get(1000)
	defer b.Release()
	b.SetLen(10)
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetLen beyond capacity did not panic")
		}
	}()
	b.SetLen(b.Cap() + 1)
}

// TestConcurrentRetainRelease exercises the refcount under -race: many
// goroutines share one buffer, each retaining and releasing; the last
// release must recycle exactly once (no panic, refcount balanced).
func TestConcurrentRetainRelease(t *testing.T) {
	const goroutines = 32
	for iter := 0; iter < 100; iter++ {
		b := Get(2048)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			ref := b.Retain()
			go func() {
				defer wg.Done()
				_ = ref.Len()
				ref.Release()
			}()
		}
		b.Release()
		wg.Wait()
		if got := b.Refs(); got != 0 {
			t.Fatalf("iter %d: refs = %d after all releases", iter, got)
		}
	}
}
