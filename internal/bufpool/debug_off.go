//go:build !netaggdebug

package bufpool

// DebugEnabled reports whether the netaggdebug runtime checker is
// compiled in (poison-on-release plus poison verification on reuse).
const DebugEnabled = false

// debugPoison is a no-op in release builds; under netaggdebug it
// overwrites a recycled buffer with the poison pattern.
func debugPoison(*Buf) {}

// debugCheckGet is a no-op in release builds; under netaggdebug it
// verifies the poison survived the buffer's time in the pool.
func debugCheckGet(*Buf) {}
