package bufpool

import "testing"

// BenchmarkBufpoolGetRelease is the steady-state cost of the pool hot
// path: one Get and one Release per iteration at a typical partial-
// result size. The target is 0 allocs/op — the whole point of the pool
// — enforced by the escape gate on Get/Retain/Release and visible in
// the BENCH_bufpool.json artifact.
func BenchmarkBufpoolGetRelease(b *testing.B) {
	for _, size := range []int{512, 4096, 65536} {
		b.Run(sizeName(size), func(b *testing.B) {
			// Warm the class so the timed loop measures recycling.
			Get(size).Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Get(size).Release()
			}
		})
	}
}

// BenchmarkBufpoolRetainRelease measures the per-hand-off cost (one
// reference minted and dropped).
func BenchmarkBufpoolRetainRelease(b *testing.B) {
	buf := Get(4096)
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Retain().Release()
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1MiB+"
	case n >= 1024:
		return itoaTest(n/1024) + "KiB"
	default:
		return itoaTest(n) + "B"
	}
}

func itoaTest(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
