//go:build netaggdebug

package bufpool

// The netaggdebug runtime checker: the static bufown analyzer cannot
// see through containers or reflection, so the debug build closes the
// gap dynamically. Every buffer recycled into the pool is overwritten
// with poison; every buffer handed back out is checked still-poisoned.
// A holder that kept writing through a stale slice after its Release
// (the classic recycled-buffer race that `-race` cannot flag, because
// the pool makes the memory "validly" shared) therefore panics in the
// next Get instead of corrupting an unrelated request's payload.
//
// Build with `go test -tags netaggdebug ./...` (see OPERATIONS.md).

// DebugEnabled reports whether the netaggdebug runtime checker is
// compiled in.
const DebugEnabled = true

// poisonByte fills recycled buffers; 0xDB is unlikely to be a valid
// prefix of any wire payload and reads obviously in hex dumps.
const poisonByte = 0xDB

// debugPoison overwrites the full backing array before the buffer
// re-enters the pool.
func debugPoison(b *Buf) {
	for i := range b.p {
		b.p[i] = poisonByte
	}
}

// debugCheckGet verifies the poison pattern on a buffer coming out of
// the pool. A fresh allocation (zeroed, never poisoned) is exempt: the
// New closure marks it by leaving n == 0 and the pool only ever stores
// poisoned buffers, so any non-poison byte here was written through a
// stale reference while the buffer sat in the pool.
func debugCheckGet(b *Buf) {
	for i, c := range b.p {
		if c != poisonByte && c != 0 {
			panic("bufpool: buffer modified while pooled (use after Release), offset " + itoa(i))
		}
	}
}

// itoa avoids importing strconv into the panic path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
