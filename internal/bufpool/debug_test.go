//go:build netaggdebug

package bufpool

import (
	"sync"
	"testing"
)

// These tests exercise the netaggdebug runtime checker itself:
//
//	go test -tags netaggdebug -race ./internal/bufpool
//
// (the bufpool-debug make target). They are build-tagged because the
// poison machinery they assert on is compiled out of release builds.

func TestDebugEnabled(t *testing.T) {
	if !DebugEnabled {
		t.Fatal("netaggdebug build must set DebugEnabled")
	}
}

// TestPoisonOnRecycle verifies that a released buffer is poisoned
// before re-entering the pool, so stale readers see garbage rather
// than another request's payload.
func TestPoisonOnRecycle(t *testing.T) {
	b := Get(512)
	stale := b.Bytes() // a slice a buggy holder might keep past Release
	for i := range stale {
		stale[i] = 0x42
	}
	b.Release()
	for i, c := range stale {
		if c != poisonByte {
			t.Fatalf("offset %d not poisoned after Release: %#x", i, c)
		}
	}
}

// TestUseAfterReleasePanicsOnReuse verifies the pool-recycle check: a
// write through a stale slice while the buffer sits in the pool must
// panic the next Get of that class.
func TestUseAfterReleasePanicsOnReuse(t *testing.T) {
	// A dedicated class (nothing else in this suite uses 32 KiB) keeps
	// other tests' buffers out of the way.
	const n = 1 << 15
	b := Get(n)
	stale := b.Bytes()
	b.Release()
	stale[7] = 0x99 // the use-after-release bug under test

	panicked := false
	func() {
		defer func() {
			if recover() != nil {
				panicked = true
				// Repair the pooled buffer so later suites see clean poison.
				stale[7] = poisonByte
			}
		}()
		// sync.Pool gives no retrieval guarantee (and -race mode drops
		// puts at random to shake out races), so loop a while hoping the
		// corrupted buffer comes back out.
		for i := 0; i < 64; i++ {
			got := Get(n)
			same := &got.Bytes()[0] == &stale[0]
			got.Release()
			if same {
				t.Fatal("corrupted buffer came back without panicking")
			}
		}
	}()
	if !panicked {
		stale[7] = poisonByte
		t.Skip("pool never returned the corrupted buffer; retrieval is not guaranteed")
	}
}

// TestDebugStressConcurrent hammers retain/release with the checker on
// under -race: poisoning must never race with a live reference.
func TestDebugStressConcurrent(t *testing.T) {
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := Get(1024)
				for j := range b.Bytes() {
					b.Bytes()[j] = seed
				}
				ref := b.Retain()
				b.Release()
				for _, c := range ref.Bytes() {
					if c != seed {
						panic("payload corrupted while a reference was held")
					}
				}
				ref.Release()
			}
		}(byte(w + 1))
	}
	wg.Wait()
}
