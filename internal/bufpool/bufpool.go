// Package bufpool is the payload buffer substrate of the zero-copy data
// plane: a size-classed pool of reference-counted byte buffers that
// partial results travel in from the wire decoder, through the box
// combine pipeline, to the master shim — without per-hop copies and,
// on the steady-state path, without per-frame heap allocations.
//
// # Ownership contract
//
// Get and Adopt return a buffer with one reference, owned by the
// caller. Every reference must be balanced by exactly one Release;
// Retain mints a new reference for a hand-off (a send queue, a combine
// tree, a replay window). Releasing the last reference recycles the
// buffer into its size-class pool, after which its bytes must not be
// touched — the pool will hand the same backing array to an unrelated
// frame. Forgetting a Release is safe (the garbage collector reclaims
// the buffer; the pool just refills by allocating) but defeats
// recycling; releasing twice is a bug and panics.
//
// The contract is machine-checked two ways: statically by the `bufown`
// analyzer in internal/lint (//netagg:owns / //netagg:borrows
// annotations, see DESIGN.md §13), and dynamically under the
// `netaggdebug` build tag, which poisons recycled buffers and verifies
// the poison on reuse so use-after-release shows up as a panic in
// tests instead of silent cross-request corruption in production.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// minClassBits is the smallest pooled capacity (1<<9 = 512 B); classes
// double up to maxPooled. Larger requests get a plain refcounted buffer
// that is garbage-collected instead of recycled.
const (
	minClassBits = 9
	maxClassBits = 24 // 16 MiB, matching wire.MaxPayload
	numClasses   = maxClassBits - minClassBits + 1
	maxPooled    = 1 << maxClassBits
)

// Buf is one reference-counted payload buffer. The zero value is not
// usable; obtain buffers from Get or Adopt. All methods are nil-receiver
// safe so empty payloads (no backing buffer) need no special casing at
// call sites.
type Buf struct {
	p     []byte // full class-capacity backing array
	n     int    // live length: Bytes() == p[:n]
	class int32  // size-class index, -1 for unpooled (Adopt / oversize)
	refs  atomic.Int32
}

// pools holds one sync.Pool per size class. The New closures live here,
// outside any //netagg:hotpath function, so their allocations are not
// charged to the escape gate's hot line ranges.
var pools [numClasses]sync.Pool

// news counts pool misses (fresh backing-array allocations); gets,
// retains, adopts, and releases count the reference operations. Tests
// assert recycling by watching news stay flat while gets climb, and
// leak-freedom by checking gets+retains+adopts == releases once a
// deployment has drained.
var news, gets, retains, adopts, releases atomic.Int64

func init() {
	for c := range pools {
		c := c
		pools[c].New = func() any {
			news.Add(1)
			return &Buf{p: make([]byte, 1<<(minClassBits+c)), class: int32(c)}
		}
	}
}

// classFor maps a requested length to its size-class index, or -1 when
// the request exceeds the largest pooled class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > maxPooled {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Get returns a buffer of length n (capacity rounded up to the size
// class) holding one reference owned by the caller. The contents are
// unspecified — callers overwrite the full length (the wire decoder
// ReadFulls into it). Requests beyond the largest class allocate an
// exact-size unpooled buffer.
//
//netagg:hotpath
func Get(n int) *Buf {
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		return getOversize(n)
	}
	b := pools[c].Get().(*Buf)
	debugCheckGet(b)
	b.n = n
	b.refs.Store(1)
	return b
}

// getOversize is the beyond-largest-class slow path, kept out of Get so
// its allocation is not attributed to the hot function's line range.
//
//go:noinline
func getOversize(n int) *Buf {
	news.Add(1)
	b := &Buf{p: make([]byte, n), n: n, class: -1}
	b.refs.Store(1)
	return b
}

// Adopt wraps an externally allocated slice (an aggregator's combine
// output, a test fixture) in a refcounted handle so it can flow through
// owners uniformly. The buffer is unpooled: releasing the last
// reference just drops it for the garbage collector.
func Adopt(p []byte) *Buf {
	adopts.Add(1)
	b := &Buf{p: p, n: len(p), class: -1}
	b.refs.Store(1)
	return b
}

// Bytes returns the live payload slice. The slice is valid until the
// last reference is released; holders that keep it longer must Retain.
//
//netagg:hotpath
func (b *Buf) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.p[:b.n]
}

// Len returns the live payload length.
//
//netagg:hotpath
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Cap returns the backing capacity (the size class).
func (b *Buf) Cap() int {
	if b == nil {
		return 0
	}
	return len(b.p)
}

// SetLen shortens the live length (e.g. after decoding into a
// class-rounded buffer). Growing beyond the backing capacity panics.
func (b *Buf) SetLen(n int) {
	if n < 0 || n > len(b.p) {
		panic("bufpool: SetLen out of range")
	}
	b.n = n
}

// Pre-converted panic values: interface-boxing a string constant at the
// panic site is an allocation, and Retain/Release sit under the
// //netagg:hotpath escape gate.
var (
	panicRetainReleased any = "bufpool: Retain of a released buffer"
	panicDoubleRelease  any = "bufpool: double Release"
)

// Retain mints one additional reference and returns the buffer, so a
// hand-off reads as a single expression: queue.push(b.Retain()). Each
// retained reference needs its own Release.
//
//netagg:hotpath
func (b *Buf) Retain() *Buf {
	if b == nil {
		return nil
	}
	retains.Add(1)
	if b.refs.Add(1) <= 1 {
		panic(panicRetainReleased)
	}
	return b
}

// Release drops one reference. The last release recycles the buffer
// into its size-class pool (unpooled buffers are left to the garbage
// collector). Releasing more times than retained panics — a double
// release means some holder still believes it owns bytes the pool is
// about to hand to an unrelated frame.
//
//netagg:hotpath
func (b *Buf) Release() {
	if b == nil {
		return
	}
	releases.Add(1)
	switch refs := b.refs.Add(-1); {
	case refs > 0:
		return
	case refs < 0:
		panic(panicDoubleRelease)
	}
	debugPoison(b)
	if b.class >= 0 {
		b.n = 0
		pools[int(b.class)].Put(b)
	}
}

// Refs reports the current reference count (test/debug introspection;
// racy by nature under concurrent holders).
func (b *Buf) Refs() int32 {
	if b == nil {
		return 0
	}
	return b.refs.Load()
}

// Stats is a snapshot of the pool's counters.
type Stats struct {
	// Gets counts Get calls, News the subset that allocated a fresh
	// backing array (pool misses), Retains and Adopts the other two ways
	// a reference is minted, and Releases the Release calls. Once every
	// holder has drained, Gets+Retains+Adopts == Releases — the
	// leak-freedom half of the ownership contract (the netaggdebug build
	// checks the double-release half).
	Gets, News, Retains, Adopts, Releases int64
}

// Acquires returns the total references minted (Gets+Retains+Adopts) —
// the number Releases must reach for the snapshot to be balanced.
func (s Stats) Acquires() int64 { return s.Gets + s.Retains + s.Adopts }

// ReadStats snapshots the package counters.
func ReadStats() Stats {
	return Stats{
		Gets: gets.Load(), News: news.Load(),
		Retains: retains.Load(), Adopts: adopts.Load(),
		Releases: releases.Load(),
	}
}
