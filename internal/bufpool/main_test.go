package bufpool

import (
	"testing"

	"netagg/internal/testutil"
)

// The pool is shared infrastructure under every data-plane goroutine,
// so its suite (including the netaggdebug stress tests) runs under the
// same whole-package goroutine leak gate as the packages built on it.
func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }
