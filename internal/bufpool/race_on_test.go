//go:build race

package bufpool

// raceEnabled gates assertions that sync.Pool's race-mode behaviour
// (puts are dropped at random to shake out races) would make flaky.
const raceEnabled = true
