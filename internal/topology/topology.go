// Package topology models the data centre network NetAgg is evaluated on: a
// three-tier, multi-rooted Clos topology (servers, top-of-rack switches,
// aggregation switches, core switches) modelled after scalable DC
// architectures (VL2, fat-tree), with configurable link capacities and
// over-subscription at the ToR tier, ECMP multi-path routing between
// servers, and agg boxes attached to any subset of switches via
// high-bandwidth links (§2.4, §4.1 of the paper).
//
// Capacities are expressed in bits per second throughout.
package topology

import (
	"fmt"
	"hash/fnv"
)

// NodeKind distinguishes the tiers of the topology.
type NodeKind int

const (
	// KindServer is an edge server (worker, master, or client host).
	KindServer NodeKind = iota
	// KindToR is a top-of-rack switch.
	KindToR
	// KindAgg is an aggregation-tier switch.
	KindAgg
	// KindCore is a core-tier switch.
	KindCore
	// KindAggBox is a NetAgg middlebox attached to a switch.
	KindAggBox
)

// String returns a short tier name.
func (k NodeKind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindToR:
		return "tor"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	case KindAggBox:
		return "aggbox"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NodeID identifies a node in a Topology.
type NodeID int

// LinkID identifies a directed link in a Topology.
type LinkID int

// Node is a server, switch, or agg box.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Rack is the rack index for servers and ToRs, -1 otherwise.
	Rack int
	// Pod is the pod index for servers, ToRs and aggregation switches,
	// -1 for core switches and anything outside a pod.
	Pod int
	// Attached is, for agg boxes, the switch the box hangs off; -1 otherwise.
	Attached NodeID
	// ProcRate is, for agg boxes, the maximum aggregation processing rate R
	// in bits per second (§2.4); 0 otherwise.
	ProcRate float64
}

// Link is a directed link with a capacity. Every physical cable appears as
// two Links, one per direction, so inbound and outbound contention are
// tracked separately as they are in a real switched network.
type Link struct {
	ID       LinkID
	From, To NodeID
	Capacity float64 // bits per second
}

// Topology is an immutable-after-build network graph.
type Topology struct {
	nodes []Node
	links []Link

	out       map[NodeID][]LinkID
	linkIndex map[[2]NodeID]LinkID

	servers []NodeID
	tors    []NodeID
	aggs    []NodeID
	cores   []NodeID
	boxes   []NodeID

	// serverToR maps each server to its ToR.
	serverToR map[NodeID]NodeID
	// boxesAt maps a switch to the agg boxes attached to it.
	boxesAt map[NodeID][]NodeID
	// aggsByPod maps a pod index to its aggregation switches.
	aggsByPod map[int][]NodeID
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		out:       make(map[NodeID][]LinkID),
		linkIndex: make(map[[2]NodeID]LinkID),
		serverToR: make(map[NodeID]NodeID),
		boxesAt:   make(map[NodeID][]NodeID),
		aggsByPod: make(map[int][]NodeID),
	}
}

// AddNode adds a node and returns its ID.
func (t *Topology) AddNode(kind NodeKind, name string, rack, pod int) NodeID {
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Kind: kind, Name: name, Rack: rack, Pod: pod, Attached: -1})
	switch kind {
	case KindServer:
		t.servers = append(t.servers, id)
	case KindToR:
		t.tors = append(t.tors, id)
	case KindAgg:
		t.aggs = append(t.aggs, id)
		t.aggsByPod[pod] = append(t.aggsByPod[pod], id)
	case KindCore:
		t.cores = append(t.cores, id)
	case KindAggBox:
		t.boxes = append(t.boxes, id)
	}
	return id
}

// AddDuplex adds a pair of directed links (a→b and b→a) with the given
// capacity per direction.
func (t *Topology) AddDuplex(a, b NodeID, capacity float64) {
	t.addLink(a, b, capacity)
	t.addLink(b, a, capacity)
}

func (t *Topology) addLink(from, to NodeID, capacity float64) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("topology: link %d->%d requires capacity > 0", from, to))
	}
	key := [2]NodeID{from, to}
	if _, dup := t.linkIndex[key]; dup {
		panic(fmt.Sprintf("topology: duplicate link %d->%d", from, to))
	}
	id := LinkID(len(t.links))
	t.links = append(t.links, Link{ID: id, From: from, To: to, Capacity: capacity})
	t.out[from] = append(t.out[from], id)
	t.linkIndex[key] = id
	return id
}

// LinkBetween returns the directed link from a to b.
func (t *Topology) LinkBetween(a, b NodeID) (LinkID, bool) {
	id, ok := t.linkIndex[[2]NodeID{a, b}]
	return id, ok
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[int(id)] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[int(id)] }

// NumNodes reports the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks reports the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Servers returns the server node IDs in creation order.
func (t *Topology) Servers() []NodeID { return t.servers }

// ToRs returns the top-of-rack switch IDs.
func (t *Topology) ToRs() []NodeID { return t.tors }

// AggSwitches returns the aggregation-tier switch IDs.
func (t *Topology) AggSwitches() []NodeID { return t.aggs }

// CoreSwitches returns the core-tier switch IDs.
func (t *Topology) CoreSwitches() []NodeID { return t.cores }

// AggBoxes returns the agg box node IDs.
func (t *Topology) AggBoxes() []NodeID { return t.boxes }

// ToROf returns the top-of-rack switch of a server.
func (t *Topology) ToROf(server NodeID) NodeID {
	tor, ok := t.serverToR[server]
	if !ok {
		panic(fmt.Sprintf("topology: node %d is not a wired server", server))
	}
	return tor
}

// BoxesAt returns the agg boxes attached to a switch, in attachment order.
func (t *Topology) BoxesAt(sw NodeID) []NodeID { return t.boxesAt[sw] }

// wireServer records the server→ToR association; used by builders.
func (t *Topology) wireServer(server, tor NodeID, capacity float64) {
	t.AddDuplex(server, tor, capacity)
	t.serverToR[server] = tor
}

// AttachAggBox attaches a NetAgg middlebox to a switch with a duplex link of
// the given capacity and the given processing rate R. It returns the box's
// node ID. Multiple boxes may be attached to one switch (scale-out, §3.1).
func (t *Topology) AttachAggBox(sw NodeID, linkCapacity, procRate float64) NodeID {
	n := t.Node(sw)
	if n.Kind != KindToR && n.Kind != KindAgg && n.Kind != KindCore {
		panic(fmt.Sprintf("topology: agg box must attach to a switch, got %s", n.Kind))
	}
	idx := len(t.boxesAt[sw])
	id := t.AddNode(KindAggBox, fmt.Sprintf("box-%s-%d", n.Name, idx), n.Rack, n.Pod)
	t.nodes[int(id)].Attached = sw
	t.nodes[int(id)].ProcRate = procRate
	t.AddDuplex(id, sw, linkCapacity)
	t.boxesAt[sw] = append(t.boxesAt[sw], id)
	return id
}

// FlowHash deterministically hashes flow identifiers for ECMP path selection
// and aggregation-tree assignment. It matches the paper's use of hashing
// application/request identifiers (§3.1).
func FlowHash(parts ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
