package topology

import (
	"testing"
	"testing/quick"
)

func TestBuildClosCounts(t *testing.T) {
	cfg := DefaultClos()
	topo, err := BuildClos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Servers()); got != 1024 {
		t.Fatalf("servers = %d, want 1024", got)
	}
	if got := len(topo.ToRs()); got != 32 {
		t.Fatalf("ToRs = %d, want 32", got)
	}
	if got := len(topo.AggSwitches()); got != 16 {
		t.Fatalf("agg switches = %d, want 16", got)
	}
	if got := len(topo.CoreSwitches()); got != 8 {
		t.Fatalf("cores = %d, want 8", got)
	}
	// Paper: "The network consists of 320 switches" is approximated by the
	// 56 switches of this Clos; what matters is the tier structure.
	if got := cfg.NumSwitches(); got != 56 {
		t.Fatalf("switches = %d, want 56", got)
	}
}

func TestClosCapacities(t *testing.T) {
	cfg := DefaultClos()
	// 32 servers × 1 G / 4 oversub = 8 G uplink total over 2 agg links.
	if got := cfg.TorUplinkCapacity(); got != 4*Gbps {
		t.Fatalf("ToR uplink = %g, want 4 Gbps", got)
	}
	// Agg: 4 racks × 4 G = 16 G down, over 8 cores = 2 G per core link.
	if got := cfg.AggUplinkCapacity(); got != 2*Gbps {
		t.Fatalf("agg uplink = %g, want 2 Gbps", got)
	}

	full := cfg
	full.Oversubscription = 1
	if got := full.TorUplinkCapacity(); got != 16*Gbps {
		t.Fatalf("full-bisection ToR uplink = %g, want 16 Gbps", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []ClosConfig{
		{},
		{Pods: 1, RacksPerPod: 1, ServersPerRack: 1, AggPerPod: 1, Cores: 1, EdgeCapacity: 0, Oversubscription: 1},
		{Pods: 1, RacksPerPod: 1, ServersPerRack: 1, AggPerPod: 1, Cores: 1, EdgeCapacity: 1, Oversubscription: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSameRackPath(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	servers := topo.Servers()
	a, b := servers[0], servers[1] // same rack by construction order
	nodes := topo.PathNodes(a, b, 1)
	if len(nodes) != 3 {
		t.Fatalf("same-rack path has %d nodes, want 3 (server,tor,server)", len(nodes))
	}
	if topo.Node(nodes[1]).Kind != KindToR {
		t.Fatal("middle hop must be the ToR")
	}
	if topo.ToROf(a) != nodes[1] {
		t.Fatal("path must go through the shared ToR")
	}
}

func TestSamePodPath(t *testing.T) {
	cfg := SmallClos()
	topo, _ := BuildClos(cfg)
	servers := topo.Servers()
	a := servers[0]
	b := servers[cfg.ServersPerRack] // next rack, same pod
	nodes := topo.PathNodes(a, b, 99)
	if len(nodes) != 5 {
		t.Fatalf("same-pod path has %d nodes, want 5", len(nodes))
	}
	kinds := []NodeKind{KindServer, KindToR, KindAgg, KindToR, KindServer}
	for i, k := range kinds {
		if topo.Node(nodes[i]).Kind != k {
			t.Fatalf("hop %d is %s, want %s", i, topo.Node(nodes[i]).Kind, k)
		}
	}
}

func TestCrossPodPath(t *testing.T) {
	cfg := SmallClos()
	topo, _ := BuildClos(cfg)
	servers := topo.Servers()
	a := servers[0]
	b := servers[cfg.RacksPerPod*cfg.ServersPerRack] // first server of pod 1
	nodes := topo.PathNodes(a, b, 7)
	if len(nodes) != 7 {
		t.Fatalf("cross-pod path has %d nodes, want 7", len(nodes))
	}
	kinds := []NodeKind{KindServer, KindToR, KindAgg, KindCore, KindAgg, KindToR, KindServer}
	for i, k := range kinds {
		if topo.Node(nodes[i]).Kind != k {
			t.Fatalf("hop %d is %s, want %s", i, topo.Node(nodes[i]).Kind, k)
		}
	}
}

func TestPathLinksAllExist(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	servers := topo.Servers()
	// PathLinks panics on a malformed path; crossing many pairs exercises
	// every case in switchPath.
	for i := 0; i < len(servers); i += 7 {
		for j := 0; j < len(servers); j += 11 {
			if i == j {
				continue
			}
			links := topo.Path(servers[i], servers[j], uint64(i*31+j))
			if len(links) == 0 {
				t.Fatalf("no links between servers %d and %d", i, j)
			}
		}
	}
}

func TestECMPSpreadsPaths(t *testing.T) {
	cfg := SmallClos()
	topo, _ := BuildClos(cfg)
	servers := topo.Servers()
	a := servers[0]
	b := servers[cfg.RacksPerPod*cfg.ServersPerRack] // cross-pod
	distinct := map[string]bool{}
	for h := uint64(0); h < 256; h++ {
		nodes := topo.PathNodes(a, b, h)
		key := ""
		for _, n := range nodes {
			key += topo.Node(n).Name + "/"
		}
		distinct[key] = true
	}
	want := topo.EqualCostPaths(a, b) // 2 aggs × 2 cores × 2 aggs = 8
	if want != 8 {
		t.Fatalf("EqualCostPaths = %d, want 8", want)
	}
	if len(distinct) != want {
		t.Fatalf("ECMP explored %d paths, want %d", len(distinct), want)
	}
}

func TestECMPDeterministicPerHash(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	servers := topo.Servers()
	a, b := servers[0], servers[len(servers)-1]
	p1 := topo.PathNodes(a, b, 12345)
	p2 := topo.PathNodes(a, b, 12345)
	if len(p1) != len(p2) {
		t.Fatal("same hash must give same path")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same hash must give same path")
		}
	}
}

func TestAttachAggBox(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	sw := topo.ToRs()[0]
	box := topo.AttachAggBox(sw, 10*Gbps, 9.2*Gbps)
	n := topo.Node(box)
	if n.Kind != KindAggBox || n.Attached != sw || n.ProcRate != 9.2*Gbps {
		t.Fatalf("unexpected box node %+v", n)
	}
	if got := topo.BoxesAt(sw); len(got) != 1 || got[0] != box {
		t.Fatalf("BoxesAt = %v", got)
	}
	if _, ok := topo.LinkBetween(box, sw); !ok {
		t.Fatal("box must be linked to its switch")
	}
	// Second box on the same switch (scale-out).
	box2 := topo.AttachAggBox(sw, 10*Gbps, 9.2*Gbps)
	if got := topo.BoxesAt(sw); len(got) != 2 || got[1] != box2 {
		t.Fatalf("BoxesAt after scale-out = %v", got)
	}
}

func TestAggBoxRouting(t *testing.T) {
	cfg := SmallClos()
	topo, _ := BuildClos(cfg)
	torBox := topo.AttachAggBox(topo.ToRs()[0], 10*Gbps, 9.2*Gbps)
	aggBox := topo.AttachAggBox(topo.AggSwitches()[0], 10*Gbps, 9.2*Gbps)
	coreBox := topo.AttachAggBox(topo.CoreSwitches()[0], 10*Gbps, 9.2*Gbps)
	servers := topo.Servers()

	// Server to each kind of box and box-to-box paths must resolve to links.
	endpoints := []NodeID{torBox, aggBox, coreBox, servers[0], servers[len(servers)-1]}
	for _, a := range endpoints {
		for _, b := range endpoints {
			if a == b {
				continue
			}
			links := topo.Path(a, b, 42)
			if len(links) == 0 {
				t.Fatalf("no path %s -> %s", topo.Node(a).Name, topo.Node(b).Name)
			}
		}
	}
}

func TestSwitchesOn(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	servers := topo.Servers()
	a, b := servers[0], servers[len(servers)-1]
	nodes := topo.PathNodes(a, b, 3)
	sw := topo.SwitchesOn(nodes)
	if len(sw) != len(nodes)-2 {
		t.Fatalf("switches = %d, want %d", len(sw), len(nodes)-2)
	}
	for _, s := range sw {
		k := topo.Node(s).Kind
		if k != KindToR && k != KindAgg && k != KindCore {
			t.Fatalf("non-switch %s in SwitchesOn", k)
		}
	}
}

func TestAttachBoxToServerPanics(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when attaching a box to a server")
		}
	}()
	topo.AttachAggBox(topo.Servers()[0], Gbps, Gbps)
}

func TestFlowHashDeterministic(t *testing.T) {
	if FlowHash(1, 2, 3) != FlowHash(1, 2, 3) {
		t.Fatal("FlowHash must be deterministic")
	}
	if FlowHash(1, 2, 3) == FlowHash(3, 2, 1) {
		t.Fatal("FlowHash should depend on argument order")
	}
}

func TestPathPropertyEndpointsAndAdjacency(t *testing.T) {
	topo, _ := BuildClos(SmallClos())
	servers := topo.Servers()
	check := func(i, j uint16, h uint64) bool {
		a := servers[int(i)%len(servers)]
		b := servers[int(j)%len(servers)]
		nodes := topo.PathNodes(a, b, h)
		if nodes[0] != a || nodes[len(nodes)-1] != b {
			return false
		}
		for k := 0; k+1 < len(nodes); k++ {
			if _, ok := topo.LinkBetween(nodes[k], nodes[k+1]); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
