package topology

import "fmt"

// Gbps is a convenience constant: one gigabit per second in bits per second.
const Gbps = 1e9

// ClosConfig describes a three-tier multi-rooted topology (§4.1): pods of
// racks whose ToR switches connect to every aggregation switch in the pod,
// and aggregation switches that connect to every core switch. Link
// capacities above the ToR tier are derived from the edge capacity and the
// over-subscription ratio so that an Oversubscription of 1 yields a
// full-bisection network and a ratio of 4 the paper's default 1:4.
type ClosConfig struct {
	Pods           int
	RacksPerPod    int
	ServersPerRack int
	AggPerPod      int
	Cores          int
	// EdgeCapacity is the server↔ToR link rate in bits per second.
	EdgeCapacity float64
	// Oversubscription is the ratio of total ToR downlink to total ToR
	// uplink capacity. 1 means full bisection.
	Oversubscription float64
}

// DefaultClos returns the paper's simulated topology: 1,024 servers in 32
// racks (8 pods × 4 racks × 32 servers), 16 aggregation and 8 core switches,
// 1 Gbps edge links, 1:4 over-subscription at the ToR tier.
func DefaultClos() ClosConfig {
	return ClosConfig{
		Pods:             8,
		RacksPerPod:      4,
		ServersPerRack:   32,
		AggPerPod:        2,
		Cores:            8,
		EdgeCapacity:     1 * Gbps,
		Oversubscription: 4,
	}
}

// SmallClos returns a scaled-down topology (64 servers) with the same shape,
// used by tests and fast benchmarks.
func SmallClos() ClosConfig {
	return ClosConfig{
		Pods:             2,
		RacksPerPod:      2,
		ServersPerRack:   16,
		AggPerPod:        2,
		Cores:            2,
		EdgeCapacity:     1 * Gbps,
		Oversubscription: 4,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c ClosConfig) Validate() error {
	switch {
	case c.Pods < 1:
		return fmt.Errorf("topology: Pods must be >= 1, got %d", c.Pods)
	case c.RacksPerPod < 1:
		return fmt.Errorf("topology: RacksPerPod must be >= 1, got %d", c.RacksPerPod)
	case c.ServersPerRack < 1:
		return fmt.Errorf("topology: ServersPerRack must be >= 1, got %d", c.ServersPerRack)
	case c.AggPerPod < 1:
		return fmt.Errorf("topology: AggPerPod must be >= 1, got %d", c.AggPerPod)
	case c.Cores < 1:
		return fmt.Errorf("topology: Cores must be >= 1, got %d", c.Cores)
	case c.EdgeCapacity <= 0:
		return fmt.Errorf("topology: EdgeCapacity must be > 0, got %g", c.EdgeCapacity)
	case c.Oversubscription < 1:
		return fmt.Errorf("topology: Oversubscription must be >= 1, got %g", c.Oversubscription)
	}
	return nil
}

// NumServers returns the total number of servers the config describes.
func (c ClosConfig) NumServers() int { return c.Pods * c.RacksPerPod * c.ServersPerRack }

// NumRacks returns the total number of racks.
func (c ClosConfig) NumRacks() int { return c.Pods * c.RacksPerPod }

// NumSwitches returns the total switch count across all three tiers.
func (c ClosConfig) NumSwitches() int {
	return c.NumRacks() + c.Pods*c.AggPerPod + c.Cores
}

// TorUplinkCapacity returns the capacity of one ToR→aggregation link.
func (c ClosConfig) TorUplinkCapacity() float64 {
	total := float64(c.ServersPerRack) * c.EdgeCapacity / c.Oversubscription
	return total / float64(c.AggPerPod)
}

// AggUplinkCapacity returns the capacity of one aggregation→core link. The
// network is non-blocking above the ToR tier: an aggregation switch's total
// uplink capacity equals its total downlink capacity.
func (c ClosConfig) AggUplinkCapacity() float64 {
	down := float64(c.RacksPerPod) * c.TorUplinkCapacity()
	return down / float64(c.Cores)
}

// BuildClos constructs the topology. Node naming: servers "s<p>-<r>-<i>",
// ToRs "tor<p>-<r>", aggregation switches "agg<p>-<a>", cores "core<c>".
func BuildClos(c ClosConfig) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t := New()

	cores := make([]NodeID, c.Cores)
	for i := range cores {
		cores[i] = t.AddNode(KindCore, fmt.Sprintf("core%d", i), -1, -1)
	}

	torUp := c.TorUplinkCapacity()
	aggUp := c.AggUplinkCapacity()

	rack := 0
	for p := 0; p < c.Pods; p++ {
		aggs := make([]NodeID, c.AggPerPod)
		for a := range aggs {
			aggs[a] = t.AddNode(KindAgg, fmt.Sprintf("agg%d-%d", p, a), -1, p)
			for _, core := range cores {
				t.AddDuplex(aggs[a], core, aggUp)
			}
		}
		for r := 0; r < c.RacksPerPod; r++ {
			tor := t.AddNode(KindToR, fmt.Sprintf("tor%d-%d", p, r), rack, p)
			for _, agg := range aggs {
				t.AddDuplex(tor, agg, torUp)
			}
			for s := 0; s < c.ServersPerRack; s++ {
				srv := t.AddNode(KindServer, fmt.Sprintf("s%d-%d-%d", p, r, s), rack, p)
				t.wireServer(srv, tor, c.EdgeCapacity)
			}
			rack++
		}
	}
	return t, nil
}
