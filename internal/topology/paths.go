package topology

import "fmt"

// mix64 is the SplitMix64 finaliser, used to derive independent sub-hashes
// from a single flow hash so each ECMP decision along a path is made with
// fresh bits.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pick(nodes []NodeID, h uint64) NodeID {
	if len(nodes) == 0 {
		panic("topology: no candidate nodes for ECMP pick")
	}
	return nodes[h%uint64(len(nodes))]
}

// attachment returns the switch a routing endpoint hangs off: a server's
// ToR, an agg box's host switch, or the switch itself.
func (t *Topology) attachment(n NodeID) NodeID {
	node := t.Node(n)
	switch node.Kind {
	case KindServer:
		return t.ToROf(n)
	case KindAggBox:
		return node.Attached
	default:
		return n
	}
}

// PathNodes returns the node sequence (inclusive of both endpoints) of the
// ECMP path from src to dst selected by flow hash h. Endpoints may be
// servers, agg boxes, or switches. Equal-cost choices — which aggregation
// switch within a pod, which core switch — are resolved by independent
// sub-hashes of h, matching ECMP flow hashing (§4.1: "uses standard Equal
// Cost Multi Path for routing").
func (t *Topology) PathNodes(src, dst NodeID, h uint64) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	a := t.attachment(src)
	b := t.attachment(dst)

	path := make([]NodeID, 0, 7)
	if src != a {
		path = append(path, src)
	}
	path = append(path, t.switchPath(a, b, h)...)
	if dst != b {
		path = append(path, dst)
	}
	return path
}

// switchPath returns the up-down route between two switches, inclusive.
func (t *Topology) switchPath(a, b NodeID, h uint64) []NodeID {
	if a == b {
		return []NodeID{a}
	}
	na, nb := t.Node(a), t.Node(b)
	h1 := mix64(h)     // aggregation switch near the source
	h2 := mix64(h + 1) // core switch
	h3 := mix64(h + 2) // aggregation switch near the destination

	switch {
	case na.Kind == KindToR && nb.Kind == KindToR:
		if na.Pod == nb.Pod {
			// Use the destination-side sub-hash so flows of one job converge
			// on the same aggregation switch whether they originate inside or
			// outside the destination pod (needed for on-path merging).
			return []NodeID{a, pick(t.aggsByPod[na.Pod], h3), b}
		}
		return []NodeID{a, pick(t.aggsByPod[na.Pod], h1), pick(t.cores, h2), pick(t.aggsByPod[nb.Pod], h3), b}

	case na.Kind == KindToR && nb.Kind == KindAgg:
		if na.Pod == nb.Pod {
			return []NodeID{a, b}
		}
		return []NodeID{a, pick(t.aggsByPod[na.Pod], h1), pick(t.cores, h2), b}

	case na.Kind == KindToR && nb.Kind == KindCore:
		return []NodeID{a, pick(t.aggsByPod[na.Pod], h1), b}

	case na.Kind == KindAgg && nb.Kind == KindToR:
		if na.Pod == nb.Pod {
			return []NodeID{a, b}
		}
		return []NodeID{a, pick(t.cores, h2), pick(t.aggsByPod[nb.Pod], h3), b}

	case na.Kind == KindAgg && nb.Kind == KindAgg:
		return []NodeID{a, pick(t.cores, h2), b}

	case na.Kind == KindAgg && nb.Kind == KindCore:
		return []NodeID{a, b}

	case na.Kind == KindCore && nb.Kind == KindAgg:
		return []NodeID{a, b}

	case na.Kind == KindCore && nb.Kind == KindToR:
		return []NodeID{a, pick(t.aggsByPod[nb.Pod], h3), b}

	case na.Kind == KindCore && nb.Kind == KindCore:
		return []NodeID{a, pick(t.aggs, h1), b}

	default:
		panic(fmt.Sprintf("topology: cannot route between %s and %s", na.Kind, nb.Kind))
	}
}

// PathLinks converts a node sequence to the directed links it traverses. It
// panics if two consecutive nodes are not directly linked, which indicates a
// routing bug rather than a runtime condition.
func (t *Topology) PathLinks(nodes []NodeID) []LinkID {
	if len(nodes) < 2 {
		return nil
	}
	links := make([]LinkID, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		id, ok := t.LinkBetween(nodes[i], nodes[i+1])
		if !ok {
			panic(fmt.Sprintf("topology: no link %s -> %s",
				t.Node(nodes[i]).Name, t.Node(nodes[i+1]).Name))
		}
		links = append(links, id)
	}
	return links
}

// Path returns the links of the ECMP path between src and dst for hash h.
func (t *Topology) Path(src, dst NodeID, h uint64) []LinkID {
	return t.PathLinks(t.PathNodes(src, dst, h))
}

// SwitchesOn filters a node path down to its switches, in traversal order.
// The NetAgg strategy uses this to find candidate on-path agg box
// attachment points between a worker and the master (§2.3).
func (t *Topology) SwitchesOn(nodes []NodeID) []NodeID {
	var out []NodeID
	for _, n := range nodes {
		switch t.Node(n).Kind {
		case KindToR, KindAgg, KindCore:
			out = append(out, n)
		case KindServer, KindAggBox:
			// Endpoints, not switches: a box cannot attach to them.
		}
	}
	return out
}

// EqualCostPaths reports how many distinct equal-cost paths exist between
// two servers, for tests and the multi-tree planner.
func (t *Topology) EqualCostPaths(src, dst NodeID) int {
	a, b := t.attachment(src), t.attachment(dst)
	na, nb := t.Node(a), t.Node(b)
	if a == b {
		return 1
	}
	if na.Kind == KindToR && nb.Kind == KindToR {
		if na.Pod == nb.Pod {
			return len(t.aggsByPod[na.Pod])
		}
		return len(t.aggsByPod[na.Pod]) * len(t.cores) * len(t.aggsByPod[nb.Pod])
	}
	// Other endpoint combinations are only used for box-to-box hops where a
	// single deterministic choice suffices.
	return 1
}
