// Package cluster holds the NetAgg deployment state shared by shim layers
// and agg boxes: which hosts exist and where they sit in the physical
// topology, which switches have agg boxes attached, and which boxes are
// currently alive (§3.1 "Handling failures"). Planning the aggregation
// trees over that state lives in internal/treeplan; Deployment implements
// treeplan.Topology, so shims hand it straight to a Planner. It also owns
// the wire-level request encoding (WireReq) that keeps each (tree,
// attempt) an independent aggregation at the boxes.
package cluster

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"netagg/internal/treeplan"
)

// Host is a server's position in the testbed topology.
type Host struct {
	// Name is the unique host name.
	Name string
	// Rack locates the host; hosts in the same rack share a ToR switch.
	Rack int
	// Pod locates the rack; racks in a pod share an aggregation switch.
	Pod int
}

// UpPath lists the switch identifiers from the host towards the core tier.
func (h Host) UpPath() []string {
	return []string{
		fmt.Sprintf("tor:%d", h.Rack),
		fmt.Sprintf("agg:%d", h.Pod),
		"core",
	}
}

// BoxInfo describes one deployed agg box.
type BoxInfo struct {
	// ID is the cluster-unique box identifier (≥ 1<<32 by convention, so it
	// never collides with worker indices on the wire).
	ID uint64
	// Addr is the box's data listen address.
	Addr string
	// Switch is the switch the box is attached to ("tor:2", "agg:0",
	// "core").
	Switch string
	// LastSeen is when the failure monitor last received a heartbeat
	// echo from the box (zero until the first echo). Together with the
	// monitor's interval and miss threshold it bounds failure-detection
	// latency (§3.1): a box declared dead was last healthy at LastSeen,
	// and detection happens within misses×interval + interval of it.
	LastSeen time.Time
}

// Deployment is the cluster configuration: hosts, boxes and liveness.
// It is safe for concurrent use.
type Deployment struct {
	mu       sync.RWMutex
	hosts    map[string]Host
	control  map[string]string // host name → worker shim control address
	results  map[string]string // host name → master shim result address
	boxes     map[string][]BoxInfo
	byID      map[uint64]BoxInfo
	dead      map[uint64]bool
	congested map[uint64]bool
	lastSeen  map[uint64]time.Time // box id → last successful heartbeat
	rttUs     map[uint64]int64     // box id → smoothed heartbeat RTT (µs)
	queueLen  map[uint64]int64     // box id → last reported sched queue depth
	flushUs   map[uint64]int64     // box id → last reported flush-latency EWMA (µs)
}

// NewDeployment returns an empty deployment.
func NewDeployment() *Deployment {
	return &Deployment{
		hosts:     make(map[string]Host),
		control:   make(map[string]string),
		results:   make(map[string]string),
		boxes:     make(map[string][]BoxInfo),
		byID:      make(map[uint64]BoxInfo),
		dead:      make(map[uint64]bool),
		congested: make(map[uint64]bool),
		lastSeen:  make(map[uint64]time.Time),
		rttUs:     make(map[uint64]int64),
		queueLen:  make(map[uint64]int64),
		flushUs:   make(map[uint64]int64),
	}
}

// AddHost registers a server.
func (d *Deployment) AddHost(h Host) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.hosts[h.Name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %q", h.Name))
	}
	d.hosts[h.Name] = h
}

// Host looks a server up by name.
func (d *Deployment) Host(name string) (Host, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	h, ok := d.hosts[name]
	return h, ok
}

// SetControlAddr records the control address of a host's worker shim, used
// for failure/straggler redirection (§3.1).
func (d *Deployment) SetControlAddr(host, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.control[host] = addr
}

// ControlAddr returns a host's worker shim control address.
func (d *Deployment) ControlAddr(host string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.control[host]
	return a, ok
}

// SetResultAddr records where a master host's shim receives aggregated
// results; worker shims and agg boxes terminate routes there.
func (d *Deployment) SetResultAddr(host, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.results[host] = addr
}

// ResultAddr returns a master host's result address.
func (d *Deployment) ResultAddr(host string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.results[host]
	return a, ok
}

// AddBox attaches an agg box to a switch. Multiple boxes per switch scale
// the switch's aggregation capacity out (§3.1).
func (d *Deployment) AddBox(b BoxInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byID[b.ID]; dup {
		panic(fmt.Sprintf("cluster: duplicate box id %d", b.ID))
	}
	d.boxes[b.Switch] = append(d.boxes[b.Switch], b)
	d.byID[b.ID] = b
}

// Box returns a box by ID, with LastSeen filled in from the monitor's
// heartbeat record.
func (d *Deployment) Box(id uint64) (BoxInfo, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b, ok := d.byID[id]
	b.LastSeen = d.lastSeen[id]
	return b, ok
}

// Boxes lists every deployed box, ordered by ID, with LastSeen filled
// in from the monitor's heartbeat record.
func (d *Deployment) Boxes() []BoxInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]BoxInfo, 0, len(d.byID))
	for _, b := range d.byID {
		b.LastSeen = d.lastSeen[b.ID]
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MarkSeen records a successful heartbeat from a box (the failure
// monitor calls it), fixing the gap where a box could be declared dead
// without any record of when it was last healthy.
func (d *Deployment) MarkSeen(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastSeen[id] = time.Now()
}

// LastSeen returns when the box last answered a heartbeat (zero time if
// never, or if no monitor is running).
func (d *Deployment) LastSeen(id uint64) time.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastSeen[id]
}

// MarkDead removes a box from future plans (failure handling, §3.1).
func (d *Deployment) MarkDead(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead[id] = true
}

// MarkAlive restores a box.
func (d *Deployment) MarkAlive(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.dead, id)
}

// Dead reports whether a box has been marked failed.
func (d *Deployment) Dead(id uint64) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dead[id]
}

// MarkCongested flips a box's congestion flag (the replanner calls it as
// the box crosses the hysteresis thresholds). Planners see the flag as
// treeplan.Box.Slow: congested boxes are avoided when the switch has an
// alternative, but — unlike dead boxes — stay eligible as a last resort.
func (d *Deployment) MarkCongested(id uint64, congested bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if congested {
		d.congested[id] = true
	} else {
		delete(d.congested, id)
	}
}

// Congested reports whether a box is currently marked congested.
func (d *Deployment) Congested(id uint64) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.congested[id]
}

// ObserveLoad records a box's self-reported load signal — scheduler
// queue depth and flush-latency EWMA — delivered in its heartbeat echo
// (wire.DecodeLoad). The failure monitor calls it; together with the
// RTT EWMA it completes the deployment's treeplan.Telemetry view.
func (d *Deployment) ObserveLoad(id uint64, queueDepth int, flushUs int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.queueLen[id] = int64(queueDepth)
	d.flushUs[id] = flushUs
}

// BoxSignal implements treeplan.Telemetry over the monitor-fed state:
// heartbeat RTT EWMA plus the box's last self-reported queue depth and
// flush latency. ok is false until any signal has been observed.
func (d *Deployment) BoxSignal(id uint64) (treeplan.LoadSignal, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	sig := treeplan.LoadSignal{
		QueueDepth: d.queueLen[id],
		FlushUs:    d.flushUs[id],
		RTTUs:      d.rttUs[id],
	}
	if sig == (treeplan.LoadSignal{}) {
		_, seen := d.rttUs[id]
		return sig, seen
	}
	return sig, true
}

// PlannerBoxes lists every deployed box as the planner sees it (Dead and
// Slow flags filled in), ordered by ID — the replanner's per-tick
// candidate view.
func (d *Deployment) PlannerBoxes() []treeplan.Box {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]treeplan.Box, 0, len(d.byID))
	for _, b := range d.byID {
		out = append(out, treeplan.Box{
			ID: b.ID, Addr: b.Addr, Switch: b.Switch,
			Dead: d.dead[b.ID], Slow: d.congested[b.ID],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ObserveRTT folds one heartbeat round-trip sample into the box's
// smoothed RTT (EWMA, ⅞ old + ⅛ new). The failure monitor calls it; the
// smoothed value feeds load-aware planning (treeplan.LoadSignal.RTTUs).
func (d *Deployment) ObserveRTT(id uint64, rtt time.Duration) {
	us := rtt.Microseconds()
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.rttUs[id]; ok {
		us = (old*7 + us) / 8
	}
	d.rttUs[id] = us
}

// BoxRTTUs returns the box's smoothed heartbeat RTT in microseconds
// (0 until a monitor has observed one).
func (d *Deployment) BoxRTTUs(id uint64) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rttUs[id]
}

// PathSwitches returns the switches on the up-down path from a worker to
// the master: up the worker's side to the lowest tier shared with the
// master, then down the master's side.
func PathSwitches(worker, master Host) []string {
	if worker.Name == master.Name {
		return nil
	}
	wu, mu := worker.UpPath(), master.UpPath()
	// Find the first tier at which the two paths meet.
	meet := len(wu) - 1
	for i := range wu {
		if wu[i] == mu[i] {
			meet = i
			break
		}
	}
	path := append([]string(nil), wu[:meet+1]...)
	for i := meet - 1; i >= 0; i-- {
		path = append(path, mu[i])
	}
	return path
}

// The Deployment is the live fabric's treeplan.Topology: planners walk
// the deployment's single up-down path per host pair and see every
// deployed box with its current liveness. It is also the live fabric's
// treeplan.Telemetry: the monitor feeds RTT and heartbeat-carried load
// into it, and LoadAware/Replanner read the combined signal back out.
var (
	_ treeplan.Topology  = (*Deployment)(nil)
	_ treeplan.Telemetry = (*Deployment)(nil)
)

// PathSwitches implements treeplan.Topology: the switches on the up-down
// path from a worker to the master. The hash is ignored — the emulated
// testbed fabric has one path per host pair. It panics on unknown hosts,
// which indicates a deployment configuration error.
func (d *Deployment) PathSwitches(worker, master string, _ uint64) []string {
	w, ok := d.Host(worker)
	if !ok {
		panic(fmt.Sprintf("cluster: unknown worker host %q", worker))
	}
	m, ok := d.Host(master)
	if !ok {
		panic(fmt.Sprintf("cluster: unknown master host %q", master))
	}
	return PathSwitches(w, m)
}

// BoxesAt implements treeplan.Topology: the boxes attached to a switch in
// deployment order, dead ones included (flagged, so planners can skip and
// count them).
func (d *Deployment) BoxesAt(sw string) []treeplan.Box {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]treeplan.Box, 0, len(d.boxes[sw]))
	for _, b := range d.boxes[sw] {
		out = append(out, treeplan.Box{
			ID: b.ID, Addr: b.Addr, Switch: b.Switch,
			Dead: d.dead[b.ID], Slow: d.congested[b.ID],
		})
	}
	return out
}

// WireReq encodes a request identifier, aggregation tree index, and
// recovery attempt into the request id carried on the wire, so every
// (tree, attempt) is an independent aggregation at the boxes. Trees and
// attempts are limited to 16 each; out-of-range values are clamped to the
// nearest bound with a logged error, because silent truncation (the old
// behaviour) would alias a 17th attempt onto attempt 1's in-flight
// aggregation state at the boxes.
func WireReq(req uint64, tree, attempt int) uint64 {
	return req<<8 | uint64(clampWireField("tree", tree))<<4 | uint64(clampWireField("attempt", attempt))
}

// clampWireField bounds one 4-bit WireReq field, logging overflow: an
// out-of-range value is a caller bug (shim.Master caps MaxAttempts at 15
// and Submit rejects more than 16 trees) that must not pass silently.
func clampWireField(name string, v int) int {
	if v >= 0 && v <= 15 {
		return v
	}
	clamped := 0
	if v > 15 {
		clamped = 15
	}
	log.Printf("cluster: wire request %s %d outside [0,15], clamping to %d", name, v, clamped)
	return clamped
}

// DecodeWireReq splits a wire request id.
func DecodeWireReq(wr uint64) (req uint64, tree, attempt int) {
	return wr >> 8, int(wr >> 4 & 0xF), int(wr & 0xF)
}
