// Package cluster holds the NetAgg deployment state shared by shim layers
// and agg boxes: which hosts exist and where they sit in the physical
// topology, which switches have agg boxes attached, and how a request's
// aggregation tree is planned over them (§3.1). Planning is a pure function
// of the deployment and the request identifier, so worker shims, the master
// shim, and agg boxes independently compute consistent routes without any
// per-request coordination — the same trick as the paper's hashing of
// application/request identifiers.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netagg/internal/topology"
)

// Host is a server's position in the testbed topology.
type Host struct {
	// Name is the unique host name.
	Name string
	// Rack locates the host; hosts in the same rack share a ToR switch.
	Rack int
	// Pod locates the rack; racks in a pod share an aggregation switch.
	Pod int
}

// UpPath lists the switch identifiers from the host towards the core tier.
func (h Host) UpPath() []string {
	return []string{
		fmt.Sprintf("tor:%d", h.Rack),
		fmt.Sprintf("agg:%d", h.Pod),
		"core",
	}
}

// BoxInfo describes one deployed agg box.
type BoxInfo struct {
	// ID is the cluster-unique box identifier (≥ 1<<32 by convention, so it
	// never collides with worker indices on the wire).
	ID uint64
	// Addr is the box's data listen address.
	Addr string
	// Switch is the switch the box is attached to ("tor:2", "agg:0",
	// "core").
	Switch string
	// LastSeen is when the failure monitor last received a heartbeat
	// echo from the box (zero until the first echo). Together with the
	// monitor's interval and miss threshold it bounds failure-detection
	// latency (§3.1): a box declared dead was last healthy at LastSeen,
	// and detection happens within misses×interval + interval of it.
	LastSeen time.Time
}

// Deployment is the cluster configuration: hosts, boxes and liveness.
// It is safe for concurrent use.
type Deployment struct {
	mu       sync.RWMutex
	hosts    map[string]Host
	control  map[string]string // host name → worker shim control address
	results  map[string]string // host name → master shim result address
	boxes    map[string][]BoxInfo
	byID     map[uint64]BoxInfo
	dead     map[uint64]bool
	lastSeen map[uint64]time.Time // box id → last successful heartbeat
}

// NewDeployment returns an empty deployment.
func NewDeployment() *Deployment {
	return &Deployment{
		hosts:    make(map[string]Host),
		control:  make(map[string]string),
		results:  make(map[string]string),
		boxes:    make(map[string][]BoxInfo),
		byID:     make(map[uint64]BoxInfo),
		dead:     make(map[uint64]bool),
		lastSeen: make(map[uint64]time.Time),
	}
}

// AddHost registers a server.
func (d *Deployment) AddHost(h Host) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.hosts[h.Name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %q", h.Name))
	}
	d.hosts[h.Name] = h
}

// Host looks a server up by name.
func (d *Deployment) Host(name string) (Host, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	h, ok := d.hosts[name]
	return h, ok
}

// SetControlAddr records the control address of a host's worker shim, used
// for failure/straggler redirection (§3.1).
func (d *Deployment) SetControlAddr(host, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.control[host] = addr
}

// ControlAddr returns a host's worker shim control address.
func (d *Deployment) ControlAddr(host string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.control[host]
	return a, ok
}

// SetResultAddr records where a master host's shim receives aggregated
// results; worker shims and agg boxes terminate routes there.
func (d *Deployment) SetResultAddr(host, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.results[host] = addr
}

// ResultAddr returns a master host's result address.
func (d *Deployment) ResultAddr(host string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	a, ok := d.results[host]
	return a, ok
}

// AddBox attaches an agg box to a switch. Multiple boxes per switch scale
// the switch's aggregation capacity out (§3.1).
func (d *Deployment) AddBox(b BoxInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byID[b.ID]; dup {
		panic(fmt.Sprintf("cluster: duplicate box id %d", b.ID))
	}
	d.boxes[b.Switch] = append(d.boxes[b.Switch], b)
	d.byID[b.ID] = b
}

// Box returns a box by ID, with LastSeen filled in from the monitor's
// heartbeat record.
func (d *Deployment) Box(id uint64) (BoxInfo, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b, ok := d.byID[id]
	b.LastSeen = d.lastSeen[id]
	return b, ok
}

// Boxes lists every deployed box, ordered by ID, with LastSeen filled
// in from the monitor's heartbeat record.
func (d *Deployment) Boxes() []BoxInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]BoxInfo, 0, len(d.byID))
	for _, b := range d.byID {
		b.LastSeen = d.lastSeen[b.ID]
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MarkSeen records a successful heartbeat from a box (the failure
// monitor calls it), fixing the gap where a box could be declared dead
// without any record of when it was last healthy.
func (d *Deployment) MarkSeen(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastSeen[id] = time.Now()
}

// LastSeen returns when the box last answered a heartbeat (zero time if
// never, or if no monitor is running).
func (d *Deployment) LastSeen(id uint64) time.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastSeen[id]
}

// MarkDead removes a box from future plans (failure handling, §3.1).
func (d *Deployment) MarkDead(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead[id] = true
}

// MarkAlive restores a box.
func (d *Deployment) MarkAlive(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.dead, id)
}

// Dead reports whether a box has been marked failed.
func (d *Deployment) Dead(id uint64) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dead[id]
}

// aliveBoxesAt returns the live boxes on a switch (callers hold no lock).
func (d *Deployment) aliveBoxesAt(sw string) []BoxInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []BoxInfo
	for _, b := range d.boxes[sw] {
		if !d.dead[b.ID] {
			out = append(out, b)
		}
	}
	return out
}

// PathSwitches returns the switches on the up-down path from a worker to
// the master: up the worker's side to the lowest tier shared with the
// master, then down the master's side.
func PathSwitches(worker, master Host) []string {
	if worker.Name == master.Name {
		return nil
	}
	wu, mu := worker.UpPath(), master.UpPath()
	// Find the first tier at which the two paths meet.
	meet := len(wu) - 1
	for i := range wu {
		if wu[i] == mu[i] {
			meet = i
			break
		}
	}
	path := append([]string(nil), wu[:meet+1]...)
	for i := meet - 1; i >= 0; i-- {
		path = append(path, mu[i])
	}
	return path
}

// Chain returns the agg boxes a worker's partial results traverse towards
// the master for one aggregation tree: at each equipped switch on the path,
// the box selected by the request/tree hash (§3.1: "The next agg box
// on-path is determined by hashing an application/request identifier").
// Dead boxes are skipped, which is how replanning after a failure works.
func (d *Deployment) Chain(worker, master Host, req uint64, tree int) []BoxInfo {
	h := topology.FlowHash(0xC4A1, req, uint64(tree)+1)
	var chain []BoxInfo
	for _, sw := range PathSwitches(worker, master) {
		boxes := d.aliveBoxesAt(sw)
		if len(boxes) == 0 {
			continue
		}
		chain = append(chain, boxes[h%uint64(len(boxes))])
	}
	return chain
}

// TreePlan is one aggregation tree of a request. Each tree is an
// independent wire-level request (see WireReq), so trees can safely share
// agg boxes — e.g. the box in the master's rack, which every tree's chain
// ends at (§3.1).
type TreePlan struct {
	// Routes[worker] is the box chain the worker's shim uses (an empty
	// chain means: send directly to the master).
	Routes map[string][]BoxInfo
	// Expect[box ID] counts the distinct direct sources (workers and
	// upstream boxes) the box must hear an end-of-stream from.
	Expect map[uint64]int
	// Finals counts the sources that deliver results to the master shim
	// for this tree (chain roots plus workers with no on-path box).
	Finals int
}

// RequestPlan is the master-side view of a request's aggregation trees.
type RequestPlan struct {
	// Trees holds one plan per aggregation tree of the request.
	Trees []TreePlan
}

// TotalFinals counts result deliveries the master waits for across trees.
func (p *RequestPlan) TotalFinals() int {
	n := 0
	for i := range p.Trees {
		n += p.Trees[i].Finals
	}
	return n
}

// Plan computes the request's aggregation trees. It panics on unknown
// hosts, which indicates a deployment configuration error.
func (d *Deployment) Plan(req uint64, master string, workers []string, trees int) *RequestPlan {
	if trees < 1 {
		trees = 1
	}
	m, ok := d.Host(master)
	if !ok {
		panic(fmt.Sprintf("cluster: unknown master host %q", master))
	}
	plan := &RequestPlan{Trees: make([]TreePlan, trees)}
	for tr := 0; tr < trees; tr++ {
		tp := TreePlan{
			Routes: make(map[string][]BoxInfo, len(workers)),
			Expect: make(map[uint64]int),
		}
		type edge struct{ up, down uint64 }
		boxEdges := make(map[edge]bool)
		roots := make(map[uint64]bool)
		for _, wname := range workers {
			w, ok := d.Host(wname)
			if !ok {
				panic(fmt.Sprintf("cluster: unknown worker host %q", wname))
			}
			chain := d.Chain(w, m, req, tr)
			tp.Routes[wname] = chain
			if len(chain) == 0 {
				tp.Finals++
				continue
			}
			tp.Expect[chain[0].ID]++ // one direct worker stream
			for i := 0; i+1 < len(chain); i++ {
				boxEdges[edge{up: chain[i].ID, down: chain[i+1].ID}] = true
			}
			roots[chain[len(chain)-1].ID] = true
		}
		for e := range boxEdges {
			tp.Expect[e.down]++
		}
		tp.Finals += len(roots)
		plan.Trees[tr] = tp
	}
	return plan
}

// WireReq encodes a request identifier, aggregation tree index, and
// recovery attempt into the request id carried on the wire, so every
// (tree, attempt) is an independent aggregation at the boxes. Trees and
// attempts are limited to 16 each.
func WireReq(req uint64, tree, attempt int) uint64 {
	return req<<8 | uint64(tree&0xF)<<4 | uint64(attempt&0xF)
}

// DecodeWireReq splits a wire request id.
func DecodeWireReq(wr uint64) (req uint64, tree, attempt int) {
	return wr >> 8, int(wr >> 4 & 0xF), int(wr & 0xF)
}

// RouteAddrs converts a box chain plus the master result address into the
// wire route carried by THello frames.
func RouteAddrs(chain []BoxInfo, masterAddr string) []string {
	out := make([]string, 0, len(chain)+1)
	for _, b := range chain {
		out = append(out, b.Addr)
	}
	return append(out, masterAddr)
}
