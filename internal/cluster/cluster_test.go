package cluster

import (
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/core"
	"netagg/internal/treeplan"
)

// twoRackDeployment builds the paper's testbed shape: two racks in one pod,
// one box per ToR plus one at the pod aggregation switch.
func twoRackDeployment() *Deployment {
	d := NewDeployment()
	d.AddHost(Host{Name: "master", Rack: 0, Pod: 0})
	for i := 0; i < 3; i++ {
		d.AddHost(Host{Name: hostName(0, i), Rack: 0, Pod: 0})
		d.AddHost(Host{Name: hostName(1, i), Rack: 1, Pod: 0})
	}
	d.AddBox(BoxInfo{ID: 1 << 32, Addr: "127.0.0.1:9001", Switch: "tor:0"})
	d.AddBox(BoxInfo{ID: 2 << 32, Addr: "127.0.0.1:9002", Switch: "tor:1"})
	d.AddBox(BoxInfo{ID: 3 << 32, Addr: "127.0.0.1:9003", Switch: "agg:0"})
	return d
}

func hostName(rack, i int) string {
	return string(rune('a'+rack)) + string(rune('0'+i))
}

func TestPathSwitches(t *testing.T) {
	sameRack := PathSwitches(Host{Rack: 0, Pod: 0}, Host{Rack: 0, Pod: 0, Name: "x"})
	if len(sameRack) != 1 || sameRack[0] != "tor:0" {
		t.Fatalf("same rack path = %v", sameRack)
	}
	samePod := PathSwitches(Host{Rack: 0, Pod: 0}, Host{Rack: 1, Pod: 0, Name: "x"})
	want := []string{"tor:0", "agg:0", "tor:1"}
	if len(samePod) != 3 || samePod[0] != want[0] || samePod[1] != want[1] || samePod[2] != want[2] {
		t.Fatalf("same pod path = %v", samePod)
	}
	crossPod := PathSwitches(Host{Rack: 0, Pod: 0}, Host{Rack: 2, Pod: 1, Name: "x"})
	if len(crossPod) != 5 || crossPod[2] != "core" {
		t.Fatalf("cross pod path = %v", crossPod)
	}
	if PathSwitches(Host{Name: "s"}, Host{Name: "s"}) != nil {
		t.Fatal("same host has no path")
	}
}

// chainFor plans one tree through the paper's OnPath planner over the
// deployment and returns the given worker's box route.
func chainFor(d *Deployment, worker string, req uint64, tree int) []treeplan.Box {
	plan := treeplan.OnPath{}.Plan(d, treeplan.NewRequest(req, tree, 0, "master", []string{worker}))
	return plan.Routes[worker]
}

func TestChainSkipsUnequippedSwitches(t *testing.T) {
	d := twoRackDeployment()
	chain := chainFor(d, "b0", 1, 0) // b0 is in rack 1
	// Path tor:1 → agg:0 → tor:0, all equipped: 3 boxes.
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	if chain[0].Switch != "tor:1" || chain[1].Switch != "agg:0" || chain[2].Switch != "tor:0" {
		t.Fatalf("chain order wrong: %v", chain)
	}
}

func TestChainSkipsDeadBoxes(t *testing.T) {
	d := twoRackDeployment()
	d.MarkDead(3 << 32) // agg box
	chain := chainFor(d, "b0", 1, 0)
	if len(chain) != 2 {
		t.Fatalf("chain should skip the dead box: %v", chain)
	}
	d.MarkAlive(3 << 32)
	if len(chainFor(d, "b0", 1, 0)) != 3 {
		t.Fatal("revived box should reappear")
	}
}

func TestChainDeterministicPerRequest(t *testing.T) {
	d := twoRackDeployment()
	// Scale out: second box at tor:0.
	d.AddBox(BoxInfo{ID: 9 << 32, Addr: "127.0.0.1:9009", Switch: "tor:0"})
	c1 := chainFor(d, "a1", 42, 0)
	c2 := chainFor(d, "a1", 42, 0)
	if c1[0].ID != c2[0].ID {
		t.Fatal("same request must pick the same box")
	}
	// Different requests eventually pick the other box.
	saw := map[uint64]bool{}
	for req := uint64(0); req < 32; req++ {
		saw[chainFor(d, "a1", req, 0)[0].ID] = true
	}
	if len(saw) != 2 {
		t.Fatalf("scale-out should spread requests over boxes, saw %v", saw)
	}
}

func TestPlanExpectCounts(t *testing.T) {
	d := twoRackDeployment()
	tp := treeplan.OnPath{}.Plan(d, treeplan.NewRequest(5, 0, 0, "master", []string{"a0", "a1", "b0", "b1"}))
	// a0, a1 (rack 0): chain [tor:0 box]; b0, b1 (rack 1): chain
	// [tor:1, agg:0, tor:0].
	tor0, tor1, agg0 := uint64(1<<32), uint64(2<<32), uint64(3<<32)
	if tp.Expect[tor1] != 2 {
		t.Fatalf("tor:1 expects %d, want 2 workers", tp.Expect[tor1])
	}
	if tp.Expect[agg0] != 1 {
		t.Fatalf("agg:0 expects %d, want 1 upstream box", tp.Expect[agg0])
	}
	if tp.Expect[tor0] != 3 {
		t.Fatalf("tor:0 expects %d, want 2 workers + 1 upstream box", tp.Expect[tor0])
	}
	if tp.Finals != 1 {
		t.Fatalf("finals = %d, want a single fully aggregated result", tp.Finals)
	}
}

func TestPlanNoBoxesDirectDelivery(t *testing.T) {
	d := NewDeployment()
	d.AddHost(Host{Name: "m", Rack: 0})
	d.AddHost(Host{Name: "w1", Rack: 0})
	d.AddHost(Host{Name: "w2", Rack: 1})
	tp := treeplan.OnPath{}.Plan(d, treeplan.NewRequest(1, 0, 0, "m", []string{"w1", "w2"}))
	if tp.Finals != 2 {
		t.Fatalf("finals = %d, want 2 direct deliveries", tp.Finals)
	}
	if len(tp.Expect) != 0 {
		t.Fatalf("no boxes should be planned: %v", tp.Expect)
	}
}

func TestPlanMultipleTrees(t *testing.T) {
	d := twoRackDeployment()
	trees := make([]treeplan.Tree, 2)
	for tr := range trees {
		trees[tr] = treeplan.OnPath{}.Plan(d, treeplan.NewRequest(5, tr, 0, "master", []string{"a0", "b0"}))
	}
	if got := treeplan.TotalFinals(trees); got != 2 {
		t.Fatalf("total finals = %d, want one per tree", got)
	}
}

func TestWireReqCodec(t *testing.T) {
	wr := WireReq(12345, 3, 2)
	req, tree, attempt := DecodeWireReq(wr)
	if req != 12345 || tree != 3 || attempt != 2 {
		t.Fatalf("decode = (%d, %d, %d)", req, tree, attempt)
	}
}

// TestWireReqRoundTrip exercises the codec over the full 4-bit field
// domain and a request id using all remaining bits.
func TestWireReqRoundTrip(t *testing.T) {
	const bigReq = uint64(1)<<55 | 0xDEAD
	for tree := 0; tree < 16; tree++ {
		for attempt := 0; attempt < 16; attempt++ {
			gotReq, gotTree, gotAttempt := DecodeWireReq(WireReq(bigReq, tree, attempt))
			if gotReq != bigReq || gotTree != tree || gotAttempt != attempt {
				t.Fatalf("round trip (%d,%d,%d) = (%d,%d,%d)",
					bigReq, tree, attempt, gotReq, gotTree, gotAttempt)
			}
		}
	}
}

// TestWireReqClampsOutOfRange pins the overflow guard: a tree or attempt
// outside the 4-bit wire fields clamps to the nearest bound instead of
// silently truncating onto another attempt's wire identity (a 17th
// attempt must not alias attempt 1's in-flight aggregation state).
func TestWireReqClampsOutOfRange(t *testing.T) {
	if got, want := WireReq(7, 16, 0), WireReq(7, 15, 0); got != want {
		t.Fatalf("tree 16 = %#x, want clamped to 15 (%#x)", got, want)
	}
	if got, want := WireReq(7, 0, 17), WireReq(7, 0, 15); got != want {
		t.Fatalf("attempt 17 = %#x, want clamped to 15 (%#x)", got, want)
	}
	// The old truncating behaviour mapped attempt 17 onto attempt 1.
	if WireReq(7, 0, 17) == WireReq(7, 0, 1) {
		t.Fatal("attempt 17 must not alias attempt 1")
	}
	if got, want := WireReq(7, -1, -9), WireReq(7, 0, 0); got != want {
		t.Fatalf("negative fields = %#x, want clamped to 0 (%#x)", got, want)
	}
}

func TestMonitorDetectsDeadBox(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("x", agg.Concat{})
	box, err := core.Start(core.Config{ID: 1 << 32, Registry: reg, Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	d := NewDeployment()
	d.AddBox(BoxInfo{ID: 1 << 32, Addr: box.Addr(), Switch: "tor:0"})

	failed := make(chan BoxInfo, 1)
	m := NewMonitor(d, 30*time.Millisecond, 2, func(b BoxInfo) { failed <- b })
	m.Start()
	defer m.Stop()

	// Healthy at first.
	select {
	case b := <-failed:
		t.Fatalf("healthy box %d reported failed", b.ID)
	case <-time.After(200 * time.Millisecond):
	}
	box.Close()
	select {
	case b := <-failed:
		if b.ID != 1<<32 {
			t.Fatalf("wrong box failed: %d", b.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure not detected")
	}
	if !d.Dead(1 << 32) {
		t.Fatal("box should be marked dead in the deployment")
	}
}

func TestLastSeenTracking(t *testing.T) {
	d := twoRackDeployment()
	// Never heartbeated: zero time, via every accessor.
	if !d.LastSeen(1 << 32).IsZero() {
		t.Fatal("fresh box must have zero LastSeen")
	}
	if b, _ := d.Box(1 << 32); !b.LastSeen.IsZero() {
		t.Fatal("Box must report zero LastSeen before any heartbeat")
	}
	before := time.Now()
	d.MarkSeen(1 << 32)
	after := time.Now()
	got := d.LastSeen(1 << 32)
	if got.Before(before) || got.After(after) {
		t.Fatalf("LastSeen = %v, want within [%v, %v]", got, before, after)
	}
	// The getters surface the same timestamp on BoxInfo.
	if b, ok := d.Box(1 << 32); !ok || !b.LastSeen.Equal(got) {
		t.Fatalf("Box().LastSeen = %v, want %v", b.LastSeen, got)
	}
	for _, b := range d.Boxes() {
		if b.ID == 1<<32 && !b.LastSeen.Equal(got) {
			t.Fatalf("Boxes() LastSeen = %v, want %v", b.LastSeen, got)
		}
		if b.ID != 1<<32 && !b.LastSeen.IsZero() {
			t.Fatalf("box %d never heartbeated but LastSeen = %v", b.ID, b.LastSeen)
		}
	}
}

// TestMonitorDetectionLatency pins the failure-detection bound (§3.1):
// a box that dies is declared dead within misses×interval of its last
// successful heartbeat, plus one interval of probe-phase slack.
func TestMonitorDetectionLatency(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("x", agg.Concat{})
	box, err := core.Start(core.Config{ID: 1 << 32, Registry: reg, Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	d := NewDeployment()
	d.AddBox(BoxInfo{ID: 1 << 32, Addr: box.Addr(), Switch: "tor:0"})

	const interval = 100 * time.Millisecond
	const misses = 2
	failed := make(chan BoxInfo, 1)
	m := NewMonitor(d, interval, misses, func(b BoxInfo) { failed <- b })
	m.Start()
	defer m.Stop()

	// Let a few heartbeats land so LastSeen is being maintained.
	deadline := time.Now().Add(2 * time.Second)
	for d.LastSeen(1<<32).IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("monitor never recorded a successful heartbeat")
		}
		time.Sleep(5 * time.Millisecond)
	}

	box.Close()
	var b BoxInfo
	select {
	case b = <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("failure not detected")
	}
	detectedAt := time.Now()
	if b.ID != 1<<32 {
		t.Fatalf("wrong box failed: %d", b.ID)
	}
	// The BoxInfo handed to the failure callback must carry the
	// last-healthy timestamp (the LastSeen bugfix).
	info, ok := d.Box(1 << 32)
	if !ok || info.LastSeen.IsZero() {
		t.Fatal("declared-dead box must retain its LastSeen timestamp")
	}
	latency := detectedAt.Sub(info.LastSeen)
	// Worst case: the box dies right after an echo, then `misses`
	// full probe intervals must elapse, and the declaring probe itself
	// waits up to one interval for its echo.
	bound := time.Duration(misses)*interval + interval
	if latency <= 0 {
		t.Fatalf("detection latency %v not positive", latency)
	}
	if latency > bound {
		t.Fatalf("detection latency %v exceeds bound %v (misses=%d interval=%v)",
			latency, bound, misses, interval)
	}
}

func TestObserveRTTEWMA(t *testing.T) {
	d := twoRackDeployment()
	if got := d.BoxRTTUs(1 << 32); got != 0 {
		t.Fatalf("unseen box RTT = %d, want 0", got)
	}
	d.ObserveRTT(1<<32, 800*time.Microsecond)
	if got := d.BoxRTTUs(1 << 32); got != 800 {
		t.Fatalf("first RTT observation = %dus, want 800", got)
	}
	// The EWMA (⅞ old + ⅛ new) must move toward a new level without
	// jumping to it.
	d.ObserveRTT(1<<32, 8800*time.Microsecond)
	if got := d.BoxRTTUs(1 << 32); got != 1800 {
		t.Fatalf("EWMA after 800→8800 = %dus, want 1800", got)
	}
}

// TestMonitorFeedsRTTTelemetry checks the live path behind LoadAware
// planning: the failure monitor's successful heartbeats populate the
// deployment's per-box RTT estimate.
func TestMonitorFeedsRTTTelemetry(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("x", agg.Concat{})
	box, err := core.Start(core.Config{ID: 1 << 32, Registry: reg, Workers: 1, SchedSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer box.Close()

	d := NewDeployment()
	d.AddBox(BoxInfo{ID: 1 << 32, Addr: box.Addr(), Switch: "tor:0"})
	m := NewMonitor(d, 20*time.Millisecond, 3, func(BoxInfo) {})
	m.Start()
	defer m.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for d.BoxRTTUs(1<<32) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeats never produced an RTT estimate")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
