package cluster

import "netagg/internal/obs"

// Registry handles for the failure monitor (DESIGN.md §11). Resolved
// once at package init.
var (
	// obsHBRTT is the round-trip time of successful heartbeat probes in
	// microseconds (§3.1: the monitor's view of box responsiveness).
	obsHBRTT = obs.H("cluster.hb_rtt_us")
	// obsHBMisses counts heartbeat intervals that elapsed without an
	// echo. Failure is declared after `misses` consecutive ones.
	obsHBMisses = obs.C("cluster.hb_misses")
	// obsFailures counts boxes declared dead by the monitor.
	obsFailures = obs.C("cluster.failures_detected")
	// obsRevivals counts boxes marked alive again after coming back.
	obsRevivals = obs.C("cluster.revivals")
	// obsDetectMs is the failure time-to-detection in milliseconds:
	// from the box's last successful heartbeat to the moment the
	// monitor declared it dead. Bounded by misses×interval + interval.
	obsDetectMs = obs.H("cluster.detect_ms")
)
