package cluster

import (
	"net"
	"sync"
	"time"

	"netagg/internal/wire"
)

// Monitor is the lightweight failure detection service (§3.1 "Handling
// failures"): it keeps a heartbeat connection to every agg box and marks a
// box dead in the deployment — removing it from future plans — after a run
// of missed heartbeats, notifying the registered callback so in-flight
// requests can be redirected.
type Monitor struct {
	dep      *Deployment
	interval time.Duration
	misses   int
	onFail   func(BoxInfo)

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewMonitor creates a monitor probing every box each interval and
// declaring failure after `misses` consecutive missed heartbeats. onFail
// may be nil.
func NewMonitor(dep *Deployment, interval time.Duration, misses int, onFail func(BoxInfo)) *Monitor {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if misses <= 0 {
		misses = 3
	}
	return &Monitor{
		dep:      dep,
		interval: interval,
		misses:   misses,
		onFail:   onFail,
		stop:     make(chan struct{}),
	}
}

// Start launches one prober per currently deployed box.
func (m *Monitor) Start() {
	for _, b := range m.dep.Boxes() {
		m.wg.Add(1)
		go m.probe(b)
	}
}

// Stop terminates all probers.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.stopped {
		m.stopped = true
		close(m.stop)
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// probe heartbeats one box until failure or Stop.
func (m *Monitor) probe(b BoxInfo) {
	defer m.wg.Done()
	var conn net.Conn
	var w *wire.Writer
	var r *wire.Reader
	missed := 0
	seq := uint64(0)
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		ok := func() bool {
			if conn == nil {
				c, err := net.DialTimeout("tcp", b.Addr, m.interval)
				if err != nil {
					return false
				}
				conn = c
				w = wire.NewWriter(conn)
				r = wire.NewReader(conn)
			}
			seq++
			if err := w.Write(&wire.Msg{Type: wire.THeartbeat, Seq: seq}); err != nil {
				conn.Close()
				conn = nil
				return false
			}
			if err := w.Flush(); err != nil {
				conn.Close()
				conn = nil
				return false
			}
			if err := conn.SetReadDeadline(time.Now().Add(m.interval)); err != nil {
				conn.Close()
				conn = nil
				return false
			}
			msg, err := r.Read()
			if err != nil || msg.Type != wire.THeartbeat {
				conn.Close()
				conn = nil
				return false
			}
			return true
		}()
		if ok {
			missed = 0
			continue
		}
		missed++
		if missed >= m.misses {
			m.dep.MarkDead(b.ID)
			if m.onFail != nil {
				m.onFail(b)
			}
			return
		}
	}
}
