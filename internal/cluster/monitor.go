package cluster

import (
	"context"
	"log"
	"sync"
	"time"

	"netagg/internal/transport"
	"netagg/internal/wire"
)

// Monitor is the lightweight failure detection service (§3.1 "Handling
// failures"): it keeps a heartbeat connection to every agg box and marks a
// box dead in the deployment — removing it from future plans — after a run
// of missed heartbeats, notifying the registered callback so in-flight
// requests can be redirected.
//
// The heartbeat connections ride on transport.Conn, so probing a dead box
// costs one bounded dial per backoff window instead of one unbounded dial
// per interval. Probers keep watching a dead box and mark it alive again
// if it comes back, completing the restart-under-churn story (§3.3).
type Monitor struct {
	dep      *Deployment
	interval time.Duration
	misses   int
	onFail   func(BoxInfo)

	mu     sync.Mutex
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewMonitor creates a monitor probing every box each interval and
// declaring failure after `misses` consecutive missed heartbeats. onFail
// may be nil.
func NewMonitor(dep *Deployment, interval time.Duration, misses int, onFail func(BoxInfo)) *Monitor {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if misses <= 0 {
		misses = 3
	}
	return &Monitor{
		dep:      dep,
		interval: interval,
		misses:   misses,
		onFail:   onFail,
	}
}

// Start launches one prober per currently deployed box.
//
//lint:ignore ctxflow Start is the documented no-lifetime entry point: it is defined as StartContext(Background) and Stop is the cancellation path. Callers wanting a bounded monitor use StartContext.
func (m *Monitor) Start() { m.StartContext(context.Background()) }

// StartContext is Start with a lifetime bound: cancelling ctx is
// equivalent to Stop (Stop still waits for the drain).
func (m *Monitor) StartContext(ctx context.Context) {
	m.mu.Lock()
	if m.ctx != nil {
		m.mu.Unlock()
		return // already started
	}
	m.ctx, m.cancel = context.WithCancel(ctx)
	probeCtx := m.ctx
	m.mu.Unlock()
	for _, b := range m.dep.Boxes() {
		m.wg.Add(1)
		go m.probe(probeCtx, b)
	}
}

// Stop terminates all probers and waits for them to exit.
func (m *Monitor) Stop() {
	m.mu.Lock()
	cancel := m.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	m.wg.Wait()
}

// probe heartbeats one box until the monitor stops, tracking the box
// through dead and revived states.
func (m *Monitor) probe(ctx context.Context, b BoxInfo) {
	defer m.wg.Done()
	replies := make(chan uint64, 16)
	conn := transport.NewConn(ctx, b.Addr, transport.Options{
		DialTimeout: m.interval,
		// One dial per backoff window while the box is down, instead of
		// one per heartbeat interval: misses still accrue every tick (the
		// failure declaration does not slow down), only dialing does.
		Backoff:         transport.Backoff{Min: 2 * m.interval, Max: 16 * m.interval},
		MaxSendAttempts: 1,
		OnFrame: func(msg *wire.Msg) {
			m.handleEcho(b, replies, msg)
		},
	})
	defer conn.Close()
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	missed := 0
	dead := false
	var seq uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		seq++
		if rtt, ok := m.heartbeat(ctx, conn, replies, seq); ok {
			missed = 0
			m.dep.MarkSeen(b.ID)
			m.dep.ObserveRTT(b.ID, rtt)
			if dead {
				dead = false
				m.dep.MarkAlive(b.ID)
				obsRevivals.Inc()
			}
			continue
		}
		missed++
		obsHBMisses.Inc()
		// A missed heartbeat is still an RTT observation: the true
		// round-trip exceeded the probe interval. Folding the interval in
		// as a penalized sample makes a degrading box's smoothed RTT — and
		// with it its load-aware planning score — rise while the box is
		// merely slow, instead of staying frozen at its last healthy value
		// until the box is declared dead.
		m.dep.ObserveRTT(b.ID, m.interval)
		if missed >= m.misses && !dead {
			dead = true
			if last := m.dep.LastSeen(b.ID); !last.IsZero() {
				obsDetectMs.Observe(time.Since(last).Milliseconds())
			}
			m.dep.MarkDead(b.ID)
			obsFailures.Inc()
			if m.onFail != nil {
				m.onFail(b)
			}
		}
	}
}

// handleEcho processes one frame from a probed box. Heartbeats carry no
// epoch state, so no replay guard is needed: a replayed echo only
// re-observes a load sample and re-delivers a sequence number heartbeat()
// already treats as stale.
//
//netagg:proto-handler monitor
func (m *Monitor) handleEcho(b BoxInfo, replies chan<- uint64, msg *wire.Msg) {
	wire.CheckReceive(wire.RoleMonitor, msg)
	switch msg.Type {
	case wire.THeartbeat:
		// The echo payload carries the box's load signal (queue depth,
		// flush latency); decode before Release invalidates it.
		if q, f, err := wire.DecodeLoad(msg.Payload); err == nil {
			m.dep.ObserveLoad(b.ID, q, f)
		}
		msg.Release()
		select {
		case replies <- msg.Seq:
		default: // prober is behind; dropping an echo just costs a miss
		}
	default:
		msg.Release()
		log.Printf("cluster: monitor dropping unhandled frame type %v from box %d", msg.Type, b.ID)
	}
}

// heartbeat sends one probe and waits up to the probe interval for an
// echo carrying this (or a newer) sequence number, returning the observed
// round-trip time on success (the deployment folds it into the box's RTT
// EWMA for load-aware planning).
func (m *Monitor) heartbeat(ctx context.Context, conn *transport.Conn, replies <-chan uint64, seq uint64) (time.Duration, bool) {
	t0 := time.Now()
	if err := conn.Send(&wire.Msg{Type: wire.THeartbeat, Seq: seq}); err != nil {
		return 0, false
	}
	timer := time.NewTimer(m.interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return 0, false
		case got := <-replies:
			if got >= seq {
				rtt := time.Since(t0)
				obsHBRTT.Observe(rtt.Microseconds())
				return rtt, true
			}
			// A stale echo from an earlier probe: keep draining.
		case <-timer.C:
			// No echo in time: the box is wedged or the write landed in a
			// dead socket's buffer. Drop the connection so the next probe
			// re-dials instead of writing into the void.
			conn.Reset()
			return 0, false
		}
	}
}
