package tbfig

import (
	"fmt"

	"netagg/internal/metrics"
)

// Fig18 regenerates Figure 18: network throughput against the sample
// output ratio α with a fixed client population. Plain Solr is
// network-bound regardless of α; NetAgg's benefit shrinks as α grows
// because the frontend link carries α of the backend volume.
func Fig18(o Options) *Report {
	ratios := []float64{0.05, 0.10, 0.25, 0.50, 0.75, 1.0}
	table := metrics.NewTable(
		"Fig 18 — network throughput (Gbps-equiv) vs output ratio α (Solr, 16 clients)",
		"alpha", "solr", "netagg",
	)
	for _, ratio := range ratios {
		row := []interface{}{ratio}
		for _, boxes := range []int{0, 1} {
			rig, err := newSearchRig(searchOpts{
				racks: 1, backends: 8, boxes: boxes, sampleRatio: ratio, scale: o.scale(),
			})
			if err != nil {
				panic(fmt.Sprintf("tbfig: %v", err))
			}
			r := runClients(rig, 16, 40, true, o.window(), o.seed())
			row = append(row, gbpsEquiv(r.bytes, r.duration, o.scale()))
			rig.close()
		}
		table.AddRow(row...)
	}
	return &Report{
		ID:    "fig18",
		Title: "Network throughput against output ratio (Solr)",
		Table: table,
		Notes: "plain Solr's column is flat (α only changes what the frontend discards)",
	}
}

// Fig19 regenerates Figure 19: aggregate throughput against the number of
// backends per rack, for one rack with one agg box versus two racks with
// one agg box each. Throughput scales with backends and doubles with the
// second rack.
func Fig19(o Options) *Report {
	backendCounts := []int{2, 4, 6, 8}
	table := metrics.NewTable(
		"Fig 19 — throughput (Gbps-equiv) vs backends per rack",
		"backends_per_rack", "1rack_1box", "2racks_2boxes",
	)
	for _, n := range backendCounts {
		row := []interface{}{n}
		for _, racks := range []int{1, 2} {
			rig, err := newSearchRig(searchOpts{
				racks: racks, backends: n, boxes: 1, sampleRatio: 0.05, scale: o.scale(),
			})
			if err != nil {
				panic(fmt.Sprintf("tbfig: %v", err))
			}
			r := runClients(rig, 16, 40, true, o.window(), o.seed())
			row = append(row, gbpsEquiv(r.bytes, r.duration, o.scale()))
			rig.close()
		}
		table.AddRow(row...)
	}
	return &Report{
		ID:    "fig19",
		Title: "Throughput against number of backend servers per rack (Solr)",
		Table: table,
		Notes: "two racks also traverse the aggregation-switch box; throughput is the sum over boxes",
	}
}

// Fig20 regenerates Figure 20: agg box scale-out for the CPU-intensive
// categorise aggregation — one versus two boxes attached to the same
// switch, with requests hash-split between them (§4.2.1 "Scale out").
func Fig20(o Options) *Report {
	clientCounts := []int{2, 4, 8, 16, 32}
	table := metrics.NewTable(
		"Fig 20 — throughput (Gbps-equiv) vs clients, categorise (box scale-out)",
		"clients", "1box", "2boxes",
	)
	rows := make(map[int][]interface{})
	for _, n := range clientCounts {
		rows[n] = []interface{}{n}
	}
	for _, boxes := range []int{1, 2} {
		rig, err := newSearchRig(searchOpts{
			racks: 1, backends: 8, boxes: boxes, categorise: true,
			boxWorkers: 2, scale: o.scale(),
		})
		if err != nil {
			panic(fmt.Sprintf("tbfig: %v", err))
		}
		for _, n := range clientCounts {
			r := runClients(rig, n, 40, true, o.window(), o.seed())
			rows[n] = append(rows[n], gbpsEquiv(r.bytes, r.duration, o.scale()))
		}
		rig.close()
	}
	for _, n := range clientCounts {
		table.AddRow(rows[n]...)
	}
	return &Report{
		ID:    "fig20",
		Title: "Agg box scale-out for CPU-intensive aggregation (Solr categorise)",
		Table: table,
		Notes: "categorise cost emulated at 500µs/KB (single-CPU host); requests hash to one of the boxes",
	}
}

// Fig21 regenerates Figure 21: throughput against the number of scheduler
// threads on a single box, for the cheap sample function (network-bound,
// flat) and the CPU-intensive categorise function (scales with the pool).
func Fig21(o Options) *Report {
	poolSizes := []int{1, 2, 4, 8, 16}
	table := metrics.NewTable(
		"Fig 21 — throughput (Gbps-equiv) vs box CPU cores (scheduler pool size)",
		"cores", "sample", "categorise",
	)
	rows := make(map[int][]interface{})
	for _, w := range poolSizes {
		rows[w] = []interface{}{w}
	}
	for _, mode := range []struct {
		name       string
		categorise bool
	}{{"sample", false}, {"categorise", true}} {
		for _, w := range poolSizes {
			rig, err := newSearchRig(searchOpts{
				racks: 1, backends: 8, boxes: 1, boxWorkers: w,
				sampleRatio: 0.05, categorise: mode.categorise, scale: o.scale(),
			})
			if err != nil {
				panic(fmt.Sprintf("tbfig: %v", err))
			}
			r := runClients(rig, 16, 40, true, o.window(), o.seed())
			rows[w] = append(rows[w], gbpsEquiv(r.bytes, r.duration, o.scale()))
			rig.close()
		}
	}
	for _, w := range poolSizes {
		table.AddRow(rows[w]...)
	}
	return &Report{
		ID:    "fig21",
		Title: "Throughput against number of CPU cores (Solr)",
		Table: table,
		Notes: "cores emulated by scheduler pool size with virtual task cost (single-CPU host, see DESIGN.md)",
	}
}
