package tbfig

import (
	"strconv"
	"testing"
	"time"
)

// quick runs every testbed figure with a short measurement window so the
// full suite stays test-sized; the benchmarks run the full windows.
var quick = Options{Window: 700 * time.Millisecond, Seed: 1}

func TestFig15Shape(t *testing.T) {
	r := Fig15(quick)
	t.Log("\n" + r.String())
	rows := r.Table.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With enough leaves, more threads must give more throughput (virtual
	// cost sleeps overlap).
	last := rows[len(rows)-1]
	lo := parseCell(t, last[1])
	hi := parseCell(t, last[len(last)-1])
	if hi < lo*1.5 {
		t.Fatalf("thread scaling too weak: %v", last)
	}
}

func TestFig16And17Shape(t *testing.T) {
	r16 := Fig16(quick)
	t.Log("\n" + r16.String())
	rows := r16.Table.Rows()
	// At saturation netagg must clearly beat plain Solr (paper: 9.3×).
	lastRow := rows[len(rows)-1]
	solr := parseCell(t, lastRow[1])
	netagg := parseCell(t, lastRow[2])
	if netagg < 3*solr {
		t.Fatalf("netagg %g should be several times solr %g", netagg, solr)
	}
}

func TestFig22Shape(t *testing.T) {
	r := Fig22(quick)
	t.Log("\n" + r.String())
	rel := map[string]float64{}
	for _, row := range r.Table.Rows() {
		rel[row[0]] = parseCell(t, row[1])
	}
	if rel["WC"] >= 1 {
		t.Fatalf("WordCount should speed up under NetAgg, rel=%g", rel["WC"])
	}
	if rel["TS"] < 0.7 {
		t.Fatalf("TeraSort should see little benefit, rel=%g", rel["TS"])
	}
	if rel["WC"] >= rel["TS"] {
		t.Fatalf("WC (%g) should gain more than TS (%g)", rel["WC"], rel["TS"])
	}
}

func TestFig25And26Shape(t *testing.T) {
	r25 := Fig25(quick)
	r26 := Fig26(quick)
	t.Log("\n" + r25.String())
	t.Log("\n" + r26.String())
	// Mean Solr share: high under fixed weights, near 50% under adaptive.
	meanShare := func(rows [][]string) float64 {
		sum, n := 0.0, 0
		for _, row := range rows[1:] { // skip the warm-up sample
			sum += parseCell(t, row[1])
			n++
		}
		return sum / float64(n)
	}
	fixed := meanShare(r25.Table.Rows())
	adaptive := meanShare(r26.Table.Rows())
	if fixed < 75 {
		t.Fatalf("fixed WFQ solr share = %.1f%%, expected starvation of hadoop", fixed)
	}
	if adaptive < 35 || adaptive > 65 {
		t.Fatalf("adaptive WFQ solr share = %.1f%%, expected ≈50%%", adaptive)
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig23And24Shape(t *testing.T) {
	r23 := Fig23(quick)
	t.Log("\n" + r23.String())
	rows := r23.Table.Rows()
	// Lower α (fewer keys) must give a bigger speedup.
	firstSpeedup := parseCell(t, rows[0][3])
	lastSpeedup := parseCell(t, rows[len(rows)-1][3])
	if firstSpeedup <= lastSpeedup {
		t.Fatalf("speedup should fall as α rises: %g vs %g", firstSpeedup, lastSpeedup)
	}

	r24 := Fig24(quick)
	t.Log("\n" + r24.String())
	rows = r24.Table.Rows()
	// Absolute times must grow with intermediate size for plain Hadoop.
	if parseCell(t, rows[len(rows)-1][1]) <= parseCell(t, rows[0][1]) {
		t.Fatalf("plain SRT should grow with data size:\n%s", r24.String())
	}
	// NetAgg must win at the largest size.
	if parseCell(t, rows[len(rows)-1][3]) <= 1 {
		t.Fatalf("netagg should win at the largest size:\n%s", r24.String())
	}
}

func TestFig18Through21Run(t *testing.T) {
	for _, fn := range []func(Options) *Report{Fig18, Fig19, Fig20, Fig21} {
		r := fn(Options{Window: 500 * time.Millisecond, Seed: 1})
		t.Log("\n" + r.String())
		if len(r.Table.Rows()) == 0 {
			t.Fatalf("figure %s has no rows", r.ID)
		}
	}
}
