package tbfig

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"netagg/internal/metrics"
)

// Tab01 regenerates Table 1: the lines of application-specific code needed
// to support each application on NetAgg. The paper counts per-application
// serialisation, aggregation wrapper and shim code; this repository's
// analogues are the per-application codec + aggregation functions and the
// deployment glue that wires the application's servers to the shim layers.
// Counts are taken from the source tree at run time.
func Tab01() *Report {
	root := repoRoot()
	rows := []struct {
		app, component string
		files          []string
	}{
		{"solr", "serialisation + agg functions", []string{"internal/agg/docs.go"}},
		{"solr", "shim/deployment glue", []string{"internal/search/deploy.go", "internal/search/proto.go"}},
		{"hadoop", "serialisation + combiner wrapper", []string{"internal/agg/kv.go"}},
		{"hadoop", "shim/deployment glue", []string{"internal/mapred/mapred.go"}},
	}
	table := metrics.NewTable(
		"Table 1 — lines of application-specific code in NetAgg",
		"application", "component", "LoC",
	)
	totals := map[string]int{}
	for _, r := range rows {
		loc := 0
		for _, f := range r.files {
			loc += countLines(filepath.Join(root, f))
		}
		totals[r.app] += loc
		table.AddRow(r.app, r.component, loc)
	}
	table.AddRow("solr", "total", totals["solr"])
	table.AddRow("hadoop", "total", totals["hadoop"])
	return &Report{
		ID:    "tab01",
		Title: "Lines of application-specific code in NetAgg",
		Table: table,
		Notes: "counts non-blank, non-comment lines; the generic platform (boxes, shims, planner) is shared",
	}
}

// repoRoot locates the module root from this source file's path.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	// file = <root>/internal/tbfig/tab01.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countLines counts non-blank, non-comment lines of a Go source file; it
// returns 0 when the file cannot be read (e.g. stripped source trees).
func countLines(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	inBlock := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
		default:
			n++
		}
	}
	return n
}
