package tbfig

import (
	"fmt"
	"time"

	"netagg/internal/agg"
	"netagg/internal/metrics"
	"netagg/internal/testbed"
	"netagg/internal/transport"
	"netagg/internal/treeplan"
	"netagg/internal/wire"
)

// ExtFanout measures the paper's proposed one-to-many extension (§5):
// broadcasting a payload from the master to every worker, either directly
// (one copy per worker over the master's 1 Gbps uplink) or through the agg
// box overlay (one copy per on-path box, replicated at each hop). This is
// future work in the paper; the experiment shows the expected shape — the
// direct broadcast serialises on the master uplink while the box-assisted
// one parallelises across the boxes' 10 Gbps links.
func ExtFanout(o Options) *Report {
	payloadSizes := []int{64 << 10, 256 << 10, 1 << 20}
	table := metrics.NewTable(
		"Extension — broadcast to 8 workers: direct vs box-assisted fanout",
		"payload_KB", "direct_s", "fanout_s", "speedup",
	)
	for _, size := range payloadSizes {
		direct := broadcastOnce(o, false, size)
		fanout := broadcastOnce(o, true, size)
		table.AddRow(size/1024, direct.Seconds(), fanout.Seconds(), direct.Seconds()/fanout.Seconds())
	}
	return &Report{
		ID:    "ext-fanout",
		Title: "One-to-many distribution through agg boxes (§5 future work)",
		Table: table,
		Notes: "2 racks × 4 workers, master on a 1G link, boxes on 10G; time until every worker holds the payload",
	}
}

// broadcastOnce deploys a testbed, broadcasts one payload to every worker,
// and returns the time until the last delivery.
func broadcastOnce(o Options, boxes bool, size int) time.Duration {
	reg := agg.NewRegistry()
	reg.Register("bcast", agg.Concat{})
	per := 0
	if boxes {
		per = 1
	}
	tb, err := testbed.New(testbed.Config{
		Racks:          2,
		WorkersPerRack: 4,
		BoxesPerSwitch: per,
		EdgeGbps:       1,
		BoxGbps:        10,
		Scale:          o.scale(),
		Registry:       reg,
		Planner:        treeplan.OnPath{},
		Seed:           1,
		Context:        o.Context,
	})
	if err != nil {
		panic(fmt.Sprintf("tbfig: %v", err))
	}
	defer tb.Close()

	delivered := make(chan struct{}, 64)
	targets := make(map[string]string)
	var servers []*transport.Server
	for _, host := range tb.WorkerHosts() {
		srv, err := transport.Listen(o.ctx(), "127.0.0.1:0",
			func(_ *transport.ServerConn, m *wire.Msg) {
				m.Release() // only the arrival matters, not the payload
				if m.Type == wire.TData {
					delivered <- struct{}{}
				}
			}, transport.ServerOptions{})
		if err != nil {
			panic(err)
		}
		servers = append(servers, srv)
		targets[host] = srv.Addr()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	payload := make([]byte, size)
	start := time.Now()
	if err := tb.Master.Fanout("bcast", 1, payload, targets); err != nil {
		panic(fmt.Sprintf("tbfig: fanout: %v", err))
	}
	for i := 0; i < len(targets); i++ {
		select {
		case <-delivered:
		case <-time.After(60 * time.Second):
			panic("tbfig: broadcast did not complete")
		}
	}
	return time.Since(start)
}
