package tbfig

import (
	"fmt"
	"time"

	"netagg/internal/agg"
	"netagg/internal/mapred"
	"netagg/internal/metrics"
	"netagg/internal/testbed"
	"netagg/internal/treeplan"
)

// newHadoopTB builds the Hadoop experiment deployment (§4.2.2): one rack of
// mapper hosts on 1 Gbps links, the reducer on the master host, one 10 Gbps
// agg box when boxes > 0.
func newHadoopTB(mappers, boxes int, scale float64, reducerCost time.Duration) (*testbed.Testbed, error) {
	reg := agg.NewRegistry()
	combiner := agg.Aggregator(agg.KVCombiner{Op: agg.OpSum})
	if reducerCost > 0 {
		// The box-side combiner merges pre-sorted encoded streams, cheaper
		// per byte than the reducer's full deserialise-reduce-write pass;
		// the box also re-touches bytes across merge levels, so quartering the
		// per-KB cost keeps the total box compute comparable to one pass.
		combiner = agg.VirtualCost{Inner: agg.KVCombiner{Op: agg.OpSum}, PerKB: reducerCost / 4}
	}
	reg.Register("hadoop", combiner)
	return testbed.New(testbed.Config{
		Racks:          1,
		WorkersPerRack: mappers,
		BoxesPerSwitch: boxes,
		EdgeGbps:       1,
		BoxGbps:        10,
		Scale:          scale,
		Registry:       reg,
		// The paper's boxes are 16-core servers; the reducer is a single
		// task. The pool size carries that asymmetry (compute emulated with
		// virtual cost on this single-CPU host).
		BoxWorkers: 16,
		Planner:    treeplan.OnPath{},
		Seed:       1,
	})
}

// runHadoop executes one benchmark job plain and on NetAgg and returns the
// two results.
func runHadoop(o Options, b mapred.Benchmark, gen mapred.GenConfig, jobID uint64) (plain, boxed *mapred.Result, err error) {
	inputs := b.Gen(gen)
	cfg := mapred.JobConfig{
		App:            "hadoop",
		Op:             b.Op,
		MapSideCombine: true,
		ReducerCost:    b.ReducerCost,
	}
	for _, boxes := range []int{0, 1} {
		tb, terr := newHadoopTB(gen.Splits, boxes, o.scale(), b.ReducerCost)
		if terr != nil {
			return nil, nil, terr
		}
		res, rerr := mapred.Run(tb, jobID, cfg, inputs, b.Map)
		tb.Close()
		if rerr != nil {
			return nil, nil, rerr
		}
		if boxes == 0 {
			plain = res
		} else {
			boxed = res
		}
	}
	return plain, boxed, nil
}

// hadoopGen sizes the benchmark inputs: 8 mappers with a few hundred KB of
// post-combine intermediate data each, large relative to the emulated
// links' burst credit so the shuffle is genuinely bandwidth-bound. Every
// mapper covers most of the key universe, giving the ~10 % output ratio the
// paper reports for typical jobs.
func hadoopGen(seed int64) mapred.GenConfig {
	return mapred.GenConfig{Seed: seed, Splits: 8, RecordsPerSplit: 20000, Keys: 20000}
}

// Fig22 regenerates Figure 22: for each Hadoop benchmark, the shuffle and
// reduce time on NetAgg relative to plain Hadoop, and the agg box
// processing rate.
func Fig22(o Options) *Report {
	table := metrics.NewTable(
		"Fig 22 — Hadoop benchmarks: shuffle+reduce time ratio and box rate",
		"benchmark", "rel_SRT(netagg/plain)", "speedup", "box_rate_gbps_equiv",
	)
	for i, b := range mapred.All() {
		gen := hadoopGen(o.seed())
		if b.Name == "TS" {
			gen.RecordsPerSplit = 8000 // unique keys: keep volumes comparable
		}
		plain, boxed, err := runHadoop(o, b, gen, uint64(100+i))
		if err != nil {
			panic(fmt.Sprintf("tbfig: %s: %v", b.Name, err))
		}
		rel := boxed.ShuffleReduceTime.Seconds() / plain.ShuffleReduceTime.Seconds()
		boxRate := gbpsEquiv(boxed.IntermediateBytes, boxed.ShuffleReduceTime, o.scale())
		table.AddRow(b.Name, rel, 1/rel, boxRate)
	}
	return &Report{
		ID:    "fig22",
		Title: "Performance of Hadoop benchmarks",
		Table: table,
		Notes: "TS (identity reduce) shows no benefit; AP's gain is capped by its compute-heavy reduce",
	}
}

// Fig23 regenerates Figure 23: WordCount shuffle+reduce time (relative to
// plain Hadoop) against the output ratio α, controlled via word repetition
// (the key-universe size).
func Fig23(o Options) *Report {
	table := metrics.NewTable(
		"Fig 23 — WordCount relative SRT vs output ratio α",
		"keys", "measured_alpha", "rel_SRT(netagg/plain)", "speedup",
	)
	b := mapred.WordCount()
	for i, keys := range []int{2000, 20000, 200000, 2000000} {
		gen := hadoopGen(o.seed())
		gen.RecordsPerSplit = 10000
		// α rises with the vocabulary: once the key universe dwarfs a
		// mapper's word count, mappers' outputs stop overlapping and
		// cross-mapper aggregation stops shrinking the data.
		gen.Keys = keys
		plain, boxed, err := runHadoop(o, b, gen, uint64(200+i))
		if err != nil {
			panic(fmt.Sprintf("tbfig: %v", err))
		}
		alpha := float64(boxed.BytesToReducer) / float64(boxed.IntermediateBytes)
		rel := boxed.ShuffleReduceTime.Seconds() / plain.ShuffleReduceTime.Seconds()
		table.AddRow(keys, alpha, rel, 1/rel)
	}
	return &Report{
		ID:    "fig23",
		Title: "Shuffle and reduce time against output ratio (Hadoop WordCount)",
		Table: table,
		Notes: "α measured as reducer bytes over intermediate bytes; more word repetition = lower α = bigger gain",
	}
}

// Fig24 regenerates Figure 24: WordCount absolute shuffle+reduce time
// against the intermediate data size.
func Fig24(o Options) *Report {
	table := metrics.NewTable(
		"Fig 24 — WordCount shuffle+reduce time (s) vs intermediate data size",
		"intermediate_MB", "hadoop_s", "netagg_s", "speedup",
	)
	b := mapred.WordCount()
	for i, records := range []int{5000, 10000, 20000, 40000} {
		gen := hadoopGen(o.seed())
		gen.RecordsPerSplit = records
		// The vocabulary scales with the input so the post-combine
		// intermediate volume grows too (real text keeps finding new words);
		// the output ratio stays roughly constant across the sweep.
		gen.Keys = records
		plain, boxed, err := runHadoop(o, b, gen, uint64(300+i))
		if err != nil {
			panic(fmt.Sprintf("tbfig: %v", err))
		}
		mb := float64(boxed.IntermediateBytes) / 1e6
		table.AddRow(mb,
			plain.ShuffleReduceTime.Seconds(),
			boxed.ShuffleReduceTime.Seconds(),
			plain.ShuffleReduceTime.Seconds()/boxed.ShuffleReduceTime.Seconds())
	}
	return &Report{
		ID:    "fig24",
		Title: "Shuffle and reduce time against intermediate data sizes (Hadoop)",
		Table: table,
		Notes: "the benefit grows with intermediate size as the shuffle dominates job time",
	}
}
