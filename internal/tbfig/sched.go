package tbfig

import (
	"fmt"
	"time"

	"netagg/internal/agg"
	"netagg/internal/bufpool"
	"netagg/internal/core"
	"netagg/internal/metrics"
)

// Fig15 regenerates Figure 15: the processing rate of an in-memory local
// aggregation tree for different numbers of leaves (concurrent feeders) and
// scheduler thread-pool sizes, using the WordCount combine workload with
// virtualised per-byte cost (single-CPU host).
func Fig15(o Options) *Report {
	leaves := []int{2, 4, 8, 16, 32}
	threads := []int{2, 4, 8, 16}
	header := []string{"leaves"}
	for _, th := range threads {
		header = append(header, fmt.Sprintf("threads=%d_gbps", th))
	}
	table := metrics.NewTable("Fig 15 — local aggregation tree processing rate (Gbps-equiv)", header...)

	aggregator := agg.VirtualCost{Inner: agg.KVCombiner{Op: agg.OpSum}, PerKB: 400 * time.Microsecond}
	part := agg.EncodeKVs(makeKVs(600))

	for _, l := range leaves {
		row := []interface{}{l}
		for _, th := range threads {
			row = append(row, localTreeRate(l, th, aggregator, part, o))
		}
		table.AddRow(row...)
	}
	return &Report{
		ID:    "fig15",
		Title: "Processing rate of an in-memory local aggregation tree",
		Table: table,
		Notes: "WordCount combine at 400µs/KB virtual cost; leaves are concurrent feeders (single-CPU host)",
	}
}

// localTreeRate feeds a local tree from `leaves` goroutines for the window
// and returns the ingest rate in Gbps-equivalent.
func localTreeRate(leaves, threads int, aggregator agg.Aggregator, part []byte, o Options) float64 {
	sched := core.NewScheduler(core.SchedulerConfig{Workers: threads, Seed: 1})
	defer sched.CloseNow()
	sched.Register("fig15", 1)
	done := make(chan struct{})
	tree := core.NewLocalTree(sched, "fig15", aggregator, 4*leaves, func(res *bufpool.Buf, _ error) {
		res.Release()
		close(done)
	})

	stop := make(chan struct{})
	for i := 0; i < leaves; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Each Add hands over its own reference; Adopt wraps the
				// shared read-only part without copying.
				if !tree.Add(bufpool.Adopt(part)) {
					return
				}
			}
		}()
	}
	start := time.Now()
	window := o.window() / 3
	if window < 300*time.Millisecond {
		window = 300 * time.Millisecond
	}
	time.Sleep(window)
	bytes := tree.BytesIn()
	dur := time.Since(start)
	close(stop)
	tree.CloseInputs()
	<-done
	return gbpsEquiv(bytes, dur, o.scale())
}

func makeKVs(n int) []agg.KV {
	kvs := make([]agg.KV, n)
	for i := range kvs {
		kvs[i] = agg.KV{Key: fmt.Sprintf("word%06d", i), Val: 1}
	}
	return kvs
}

// cpuShareSweep measures the per-application CPU share on one agg box over
// time while a Solr-like application (long tasks) and a Hadoop-like
// application (short tasks) both keep the box backlogged (§4.2.3).
func cpuShareSweep(title string, adaptive bool, o Options) *metrics.Table {
	sched := core.NewScheduler(core.SchedulerConfig{Workers: 2, Adaptive: adaptive, Seed: 1})
	defer sched.CloseNow()
	sched.Register("solr", 1)
	sched.Register("hadoop", 1)

	// Open-loop backlog: Solr tasks ~30 ms, Hadoop tasks ~1 ms (§4.2.3:
	// "a Solr task takes, on average, 30 ms ... a Hadoop task runs only
	// for" a few ms). Sleeping tasks emulate CPU cost on the 1-CPU host.
	backlog := int(o.window().Seconds()*1000) + 500
	for i := 0; i < backlog; i++ {
		sched.Submit("solr", func() { time.Sleep(30 * time.Millisecond) })
		for j := 0; j < 4; j++ {
			sched.Submit("hadoop", func() { time.Sleep(time.Millisecond) })
		}
	}

	table := metrics.NewTable(title, "time_s", "solr_share_%", "hadoop_share_%")
	interval := 200 * time.Millisecond
	steps := int(o.window() / interval)
	if steps < 5 {
		steps = 5
	}
	var prevSolr, prevHadoop time.Duration
	for i := 1; i <= steps; i++ {
		time.Sleep(interval)
		solr, hadoop := sched.CPUTime("solr"), sched.CPUTime("hadoop")
		ds, dh := solr-prevSolr, hadoop-prevHadoop
		prevSolr, prevHadoop = solr, hadoop
		total := ds + dh
		if total <= 0 {
			table.AddRow(float64(i)*interval.Seconds(), 0.0, 0.0)
			continue
		}
		table.AddRow(float64(i)*interval.Seconds(),
			100*ds.Seconds()/total.Seconds(),
			100*dh.Seconds()/total.Seconds())
	}
	return table
}

// Fig25 regenerates Figure 25: CPU sharing between Solr and Hadoop under
// the non-adaptive weighted fair scheduler — the long Solr tasks starve
// Hadoop despite equal target shares.
func Fig25(o Options) *Report {
	table := cpuShareSweep("Fig 25 — CPU share over time, fixed-weight WFQ", false, o)
	return &Report{
		ID:    "fig25",
		Title: "CPU resource fair sharing with a non-adaptive scheduler (Fig 25)",
		Table: table,
		Notes: "equal 50/50 target shares; fixed weights pick tasks equally often, so long Solr tasks dominate CPU",
	}
}

// Fig26 regenerates Figure 26: the adaptive scheduler corrects the weights
// by measured task time and splits CPU evenly.
func Fig26(o Options) *Report {
	table := cpuShareSweep("Fig 26 — CPU share over time, adaptive WFQ", true, o)
	return &Report{
		ID:    "fig26",
		Title: "CPU resource fair sharing with the adaptive scheduler (Fig 26)",
		Table: table,
		Notes: "equal 50/50 target shares; weights adapt as w_i = s_i/t̄_i and CPU time converges to 50/50",
	}
}
