// Package tbfig regenerates the paper's testbed figures (§4.2, Figs 15-26)
// on the emulated testbed: the local aggregation tree micro-benchmark, the
// Solr-analogue search experiments (throughput, latency, output ratio,
// two racks, scale-out, scale-up), the Hadoop-analogue MapReduce
// experiments (benchmark suite, output ratio, data size), and the
// multi-application CPU sharing experiments.
//
// Bandwidth is emulated at 1:100 scale (internal/netem), so throughputs are
// reported in "Gbps-equivalent": measured bytes/s × scale × 8. The paper's
// CPU-intensive aggregation is emulated with size-proportional virtual cost
// (agg.VirtualCost) because the reference host exposes a single CPU; see
// DESIGN.md.
package tbfig

import (
	"context"
	"fmt"
	"time"

	"netagg/internal/agg"
	"netagg/internal/corpus"
	"netagg/internal/metrics"
	"netagg/internal/netem"
	"netagg/internal/search"
	"netagg/internal/stats"
	"netagg/internal/testbed"
	"netagg/internal/treeplan"
)

// Report mirrors figures.Report for the testbed experiments.
type Report struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes string
}

// String renders the report.
func (r *Report) String() string {
	s := r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// Options tunes experiment durations so tests can run quick variants.
type Options struct {
	// Window is the measurement window per data point (default 3s).
	Window time.Duration
	// Seed for query generation.
	Seed int64
	// Scale is the bandwidth emulation scale (default netem.DefaultScale).
	Scale float64
	// Context optionally bounds every testbed and transport endpoint an
	// experiment deploys, so the driver can cancel a long figure run.
	Context context.Context
}

func (o Options) window() time.Duration {
	if o.Window <= 0 {
		return 3 * time.Second
	}
	return o.Window
}

// ctx is the experiment lifetime (Background when the caller set none).
func (o Options) ctx() context.Context {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return netem.DefaultScale
	}
	return o.Scale
}

// gbpsEquiv converts emulated bytes over a duration to Gbps-equivalent.
func gbpsEquiv(bytes int64, dur time.Duration, scale float64) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(bytes) * 8 * scale / dur.Seconds() / 1e9
}

// searchRig is a deployed search cluster plus its testbed.
type searchRig struct {
	tb *testbed.Testbed
	cl *search.Cluster
}

func (r *searchRig) close() {
	r.cl.Close()
	r.tb.Close()
}

// searchOpts configures a search deployment for one experiment point.
type searchOpts struct {
	racks        int
	backends     int // per rack
	boxes        int // per switch; 0 = plain
	boxWorkers   int
	sampleRatio  float64
	categorise   bool
	trees        int
	scale        float64
	registryOnly *agg.Registry // override aggregator registry
}

// newSearchRig deploys the Solr-analogue experiment set-up (§4.2.1): 1 Gbps
// hosts, 10 Gbps boxes, sample or categorise aggregation.
func newSearchRig(o searchOpts) (*searchRig, error) {
	var aggregator agg.Aggregator
	var app string
	if o.categorise {
		app = "solr-categorise"
		aggregator = agg.VirtualCost{
			Inner: agg.Categorise{K: 10, Categories: corpus.Categories()},
			PerKB: 500 * time.Microsecond,
		}
	} else {
		app = "solr-sample"
		aggregator = agg.Sample{Ratio: o.sampleRatio}
	}
	reg := o.registryOnly
	if reg == nil {
		reg = agg.NewRegistry()
		reg.Register(app, aggregator)
	}
	tb, err := testbed.New(testbed.Config{
		Racks:          o.racks,
		WorkersPerRack: o.backends,
		BoxesPerSwitch: o.boxes,
		EdgeGbps:       1,
		BoxGbps:        10,
		Scale:          o.scale,
		Registry:       reg,
		BoxWorkers:     o.boxWorkers,
		Planner:        treeplan.OnPath{},
		Seed:           1,
	})
	if err != nil {
		return nil, err
	}
	cl, err := search.Deploy(tb, search.DeployConfig{
		App: app,
		Corpus: corpus.Config{
			Seed: 1, Docs: 150 * o.racks * o.backends,
			WordsPerDoc: 110, VocabularySize: 800, ZipfS: 1.1,
		},
		Aggregator: aggregator,
		Categorise: o.categorise,
		Trees:      o.trees,
		ChunkDocs:  25,
	})
	if err != nil {
		tb.Close()
		return nil, err
	}
	return &searchRig{tb: tb, cl: cl}, nil
}

// loadResult is one measured client-load point.
type loadResult struct {
	queries  int
	bytes    int64 // backend result bytes entering the aggregation path
	p99      time.Duration
	duration time.Duration
}

// runClients drives the frontend with closed-loop clients for the window
// (§4.2.1: "each client continuously submits a query for three random
// words") and reports completed queries, backend bytes, and tail latency.
func runClients(rig *searchRig, clients int, limit int, withText bool, window time.Duration, seed int64) loadResult {
	type qres struct {
		latency time.Duration
		ok      bool
	}
	results := make(chan qres, 4096)
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func(c int) {
			rn := stats.NewRand(seed + int64(c))
			for {
				select {
				case <-stop:
					return
				default:
				}
				terms := corpus.QueryWords(rn, 800, 3)
				resp, err := rig.cl.Frontend.Query(terms, limit, withText)
				select {
				case results <- qres{latency: latencyOf(resp), ok: err == nil}:
				case <-stop:
					return
				}
			}
		}(c)
	}
	before := workerBytesOut(rig)
	start := time.Now()
	lat := metrics.NewSample(1024)
	completed := 0
	deadline := time.After(window)
collect:
	for {
		select {
		case r := <-results:
			if r.ok {
				completed++
				lat.Add(r.latency.Seconds())
			}
		case <-deadline:
			break collect
		}
	}
	close(stop)
	dur := time.Since(start)
	return loadResult{
		queries:  completed,
		bytes:    workerBytesOut(rig) - before,
		p99:      time.Duration(lat.P99() * float64(time.Second)),
		duration: dur,
	}
}

func latencyOf(resp *search.Response) time.Duration {
	if resp == nil {
		return 0
	}
	return resp.Latency
}

// workerBytesOut measures the backend data volume entering the aggregation
// path: the boxes' ingress when deployed, or the master shim's ingress in
// plain mode (where the full unreduced volume reaches the master). Using
// the steady-state byte counters rather than completed-query counts keeps
// the throughput meaningful even when queries outlast the window.
func workerBytesOut(rig *searchRig) int64 {
	if len(rig.tb.Boxes) > 0 {
		return rig.tb.BoxStats().BytesIn
	}
	return rig.tb.Master.ResultBytes()
}

// searchSweep holds both figures' data for one client sweep: the per-mode
// throughput in Gbps-equivalent and the 99th-percentile latency.
type searchSweep struct {
	clients    []int
	throughput map[string][]float64
	p99        map[string][]float64
}

// runSearchSweep runs the client sweep shared by Figs 16 and 17. The
// throughput metric is the paper's: backend result data processed per
// second (the traffic NetAgg aggregates), not the reduced volume reaching
// the frontend.
func runSearchSweep(o Options) *searchSweep {
	sw := &searchSweep{
		clients:    []int{1, 2, 4, 8, 16, 32},
		throughput: make(map[string][]float64),
		p99:        make(map[string][]float64),
	}
	for _, mode := range []struct {
		name  string
		boxes int
	}{{"solr", 0}, {"netagg", 1}} {
		rig, err := newSearchRig(searchOpts{
			racks: 1, backends: 8, boxes: mode.boxes, sampleRatio: 0.05, scale: o.scale(),
		})
		if err != nil {
			panic(fmt.Sprintf("tbfig: %v", err))
		}
		for _, n := range sw.clients {
			r := runClients(rig, n, 40, true, o.window(), o.seed())
			sw.throughput[mode.name] = append(sw.throughput[mode.name], gbpsEquiv(r.bytes, r.duration, o.scale()))
			sw.p99[mode.name] = append(sw.p99[mode.name], r.p99.Seconds())
		}
		rig.close()
	}
	return sw
}

// Fig16 regenerates Figure 16: network throughput against the number of
// clients for plain search and search on NetAgg (sample, α = 5 %).
func Fig16(o Options) *Report {
	sw := runSearchSweep(o)
	table := metrics.NewTable("Fig 16 — network throughput (Gbps-equiv) vs clients (Solr, sample α=5%)",
		"clients", "solr", "netagg")
	for i, n := range sw.clients {
		table.AddRow(n, sw.throughput["solr"][i], sw.throughput["netagg"][i])
	}
	return &Report{
		ID:    "fig16",
		Title: "Network throughput against number of clients (Solr)",
		Table: table,
		Notes: "1 rack, 8 backends on 1G links, box on 10G; Gbps-equivalent at the netem bandwidth scale",
	}
}

// Fig17 regenerates Figure 17: 99th-percentile response latency against
// the number of clients.
func Fig17(o Options) *Report {
	sw := runSearchSweep(o)
	table := metrics.NewTable("Fig 17 — 99th percentile response latency (s) vs clients (Solr)",
		"clients", "solr_s", "netagg_s")
	for i, n := range sw.clients {
		table.AddRow(n, sw.p99["solr"][i], sw.p99["netagg"][i])
	}
	return &Report{
		ID:    "fig17",
		Title: "Response latency against number of clients (Solr)",
		Table: table,
	}
}
