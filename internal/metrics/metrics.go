// Package metrics collects and summarises the measurements the NetAgg
// evaluation reports: flow completion time percentiles and CDFs, per-link
// traffic distributions, throughput and latency series, and the relative
// comparisons ("99th FCT relative to rack-level aggregation") used by most
// figures. It also renders aligned text tables so every benchmark prints the
// same rows/series as the corresponding figure in the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample is a collection of float64 observations with percentile and CDF
// queries. The zero value is ready to use.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records all observations in vs.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.values) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks. It returns NaN on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s.sort()
	if len(s.values) == 1 {
		return s.values[0]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// P99 returns the 99th percentile, the paper's primary FCT metric.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// Mean returns the arithmetic mean, or NaN on an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or NaN on an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation, or NaN on an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// CDFPoint is one point of an empirical CDF: fraction F of observations are
// <= Value.
type CDFPoint struct {
	Value float64
	F     float64
}

// CDF returns the empirical CDF downsampled to at most points entries
// (evenly spaced in rank). It returns nil on an empty sample.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.values) == 0 || points <= 0 {
		return nil
	}
	s.sort()
	n := len(s.values)
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		// Rank evenly spaced so the last point is the max (F = 1).
		rank := (i + 1) * n / points
		if rank < 1 {
			rank = 1
		}
		out = append(out, CDFPoint{Value: s.values[rank-1], F: float64(rank) / float64(n)})
	}
	return out
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Relative returns s's p-th percentile divided by base's p-th percentile.
// This is the "relative to rack-level aggregation" normalisation used
// throughout §4.1. It returns NaN if either sample is empty or the base
// percentile is zero.
func Relative(s, base *Sample, p float64) float64 {
	b := base.Percentile(p)
	if b == 0 {
		return math.NaN()
	}
	return s.Percentile(p) / b
}

// Summary formats the headline statistics of a sample.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.Len(), s.Mean(), s.Median(), s.P99(), s.Max())
}
