package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables. Every experiment harness prints its
// figure's data through a Table so output is uniform and diffable against
// EXPERIMENTS.md.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row. Cells may be any values; they are formatted with %v
// except float64, which uses %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted cell values, one slice per row. The returned
// slices are owned by the table; callers must not modify them.
func (t *Table) Rows() [][]string { return t.rows }

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], c)
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
