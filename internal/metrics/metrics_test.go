package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileKnownValues(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	s := NewSample(1)
	s.Add(5)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 5 {
			t.Errorf("P%g = %g, want 5", p, got)
		}
	}
}

func TestPercentileEmptyIsNaN(t *testing.T) {
	s := NewSample(0)
	if !math.IsNaN(s.Percentile(50)) {
		t.Fatal("percentile of empty sample must be NaN")
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("mean/min/max of empty sample must be NaN")
	}
}

func TestPercentileClampsRange(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{1, 2, 3})
	if s.Percentile(-10) != 1 || s.Percentile(200) != 3 {
		t.Fatal("out-of-range percentiles must clamp")
	}
}

func TestMeanMinMaxSum(t *testing.T) {
	s := NewSample(0)
	s.AddAll([]float64{4, 1, 7})
	if s.Mean() != 4 || s.Min() != 1 || s.Max() != 7 || s.Sum() != 12 {
		t.Fatalf("mean=%g min=%g max=%g sum=%g", s.Mean(), s.Min(), s.Max(), s.Sum())
	}
}

func TestCDFMonotoneAndComplete(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 97))
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("CDF has %d points, want 50", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].F < cdf[i-1].F || cdf[i].Value < cdf[i-1].Value {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if last := cdf[len(cdf)-1]; last.F != 1 || last.Value != s.Max() {
		t.Fatalf("CDF must end at (max, 1), got (%g, %g)", last.Value, last.F)
	}
}

func TestCDFEmptyAndSmall(t *testing.T) {
	s := NewSample(0)
	if s.CDF(10) != nil {
		t.Fatal("CDF of empty sample must be nil")
	}
	s.Add(3)
	cdf := s.CDF(10)
	if len(cdf) != 1 || cdf[0].Value != 3 || cdf[0].F != 1 {
		t.Fatalf("unexpected CDF %+v", cdf)
	}
}

func TestRelative(t *testing.T) {
	a, b := NewSample(0), NewSample(0)
	a.AddAll([]float64{2, 4, 6})
	b.AddAll([]float64{4, 8, 12})
	if got := Relative(a, b, 50); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Relative = %g, want 0.5", got)
	}
}

func TestPercentilePropertyWithinBounds(t *testing.T) {
	check := func(vs []float64) bool {
		if len(vs) == 0 {
			return true
		}
		for i := range vs {
			if math.IsNaN(vs[i]) || math.IsInf(vs[i], 0) {
				vs[i] = 0
			}
		}
		s := NewSample(0)
		s.AddAll(vs)
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		for _, p := range []float64{0, 10, 50, 90, 99, 100} {
			v := s.Percentile(p)
			if v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
		}
		// Percentiles must be monotone in p.
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "alpha", "netagg", "rack")
	tb.AddRow(0.1, 0.25, 1.0)
	tb.AddRow(0.5, 0.6, 1.0)
	out := tb.String()
	if !strings.Contains(out, "== Fig X ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "alpha") || !strings.Contains(lines[3], "0.25") {
		t.Fatalf("unexpected rendering:\n%s", out)
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("xxxxxxxxxx", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The second column must start at the same offset in header and row.
	if strings.Index(lines[0], "long-header") != strings.Index(lines[2], "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
	// No trailing whitespace on any line.
	for i, l := range lines {
		if strings.TrimRight(l, " ") != l {
			t.Fatalf("line %d has trailing spaces:\n%s", i, out)
		}
	}
}
