// Package profiling wires -cpuprofile/-memprofile flags into the CLI
// commands, mirroring the flags of `go test`: the CPU profile covers
// everything between Start and the returned stop function, and the heap
// profile is snapshotted (after a GC) when the stop function runs.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config holds the profile output paths; empty paths disable a profile.
type Config struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on fs.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.CPU, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&c.Mem, "memprofile", "", "write a heap profile to `file` on exit")
	return c
}

// Start begins CPU profiling if configured and returns the function that
// finalises both profiles; defer it from main. Profile file errors are
// fatal: a requested profile that cannot be written means the measurement
// run is void.
func (c *Config) Start() (stop func()) {
	var cpuFile *os.File
	if c.CPU != "" {
		f, err := os.Create(c.CPU)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fatal(err)
			}
		}
		if c.Mem != "" {
			f, err := os.Create(c.Mem)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // snapshot live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
	os.Exit(1)
}
