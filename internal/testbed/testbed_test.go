package testbed

import (
	"testing"

	"netagg/internal/agg"
)

func reg() *agg.Registry {
	r := agg.NewRegistry()
	r.Register("app", agg.KVCombiner{Op: agg.OpSum})
	return r
}

func TestNewPlainDeployment(t *testing.T) {
	tb, err := New(Config{Racks: 2, WorkersPerRack: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.WorkerHosts()) != 6 {
		t.Fatalf("workers = %d", len(tb.WorkerHosts()))
	}
	if len(tb.Boxes) != 0 {
		t.Fatal("plain deployment must have no boxes")
	}
	if _, ok := tb.Dep.Host(MasterHost); !ok {
		t.Fatal("master host missing")
	}
	if _, ok := tb.Dep.ResultAddr(MasterHost); !ok {
		t.Fatal("master result address not registered")
	}
}

func TestNewBoxedDeploymentShape(t *testing.T) {
	tb, err := New(Config{Racks: 2, WorkersPerRack: 2, BoxesPerSwitch: 2, Registry: reg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// 2 ToRs + 1 aggregation switch, 2 boxes each.
	if len(tb.Boxes) != 6 {
		t.Fatalf("boxes = %d, want 6", len(tb.Boxes))
	}
	if len(tb.Dep.Boxes()) != 6 {
		t.Fatalf("deployment records %d boxes", len(tb.Dep.Boxes()))
	}
}

func TestSingleRackHasNoAggSwitchBox(t *testing.T) {
	tb, err := New(Config{Racks: 1, WorkersPerRack: 2, BoxesPerSwitch: 1, Registry: reg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.Boxes) != 1 {
		t.Fatalf("one rack should deploy only the ToR box, got %d", len(tb.Boxes))
	}
}

func TestNICsSharedPerHost(t *testing.T) {
	tb, err := New(Config{Racks: 1, WorkersPerRack: 2, EdgeGbps: 1, Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	n := tb.NIC(WorkerName(0, 0))
	if n == nil {
		t.Fatal("worker NIC missing")
	}
	if tb.NIC(MasterHost) == nil {
		t.Fatal("master NIC missing")
	}
	if tb.NIC("no-such-host") != nil {
		t.Fatal("unknown host should have no NIC")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Racks: 0, WorkersPerRack: 1}); err == nil {
		t.Fatal("expected error for zero racks")
	}
	if _, err := New(Config{Racks: 1, WorkersPerRack: 1, BoxesPerSwitch: 1}); err == nil {
		t.Fatal("expected error for boxes without a registry")
	}
}

func TestBoxStatsAggregates(t *testing.T) {
	tb, err := New(Config{Racks: 2, WorkersPerRack: 1, BoxesPerSwitch: 1, Registry: reg()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if st := tb.BoxStats(); st.BytesIn != 0 || st.Requests != 0 {
		t.Fatalf("fresh deployment stats should be zero: %+v", st)
	}
}
