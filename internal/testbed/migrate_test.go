package testbed

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/bufpool"
	"netagg/internal/shim"
	"netagg/internal/treeplan"
)

// migParts is how many partial-result frames each worker streams in the
// migration tests: enough that the request is still mid-stream on the
// netem-paced boxes when the replanner fires.
const migParts = 128

// sumParts merges a result's final parts and returns per-key totals.
func sumParts(t *testing.T, res shim.Result) map[string]int64 {
	t.Helper()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	totals := map[string]int64{}
	for _, part := range res.Parts {
		if len(part) == 0 {
			continue
		}
		kvs, err := agg.DecodeKVs(part)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range kvs {
			totals[kv.Key] += kv.Val
		}
	}
	return totals
}

// TestMigrationExactlyOnceUnderCongestion is the tentpole's end-to-end
// proof on the live fabric: a request streams partials through
// netem-paced (congested) boxes; mid-stream, a replanner wired exactly
// like Testbed.StartReplanner detects the load through the deployment's
// own telemetry and migrates the request off the hot boxes. The
// attempt-epoch protocol must make the migration exactly-once — every
// buffered partial combined exactly once, none lost, none doubled — so
// every key's total must be exact, and the bufpool refcounts taken over
// the whole run must balance (run with -tags netaggdebug for the
// release-time ownership assertions on top).
func TestMigrationExactlyOnceUnderCongestion(t *testing.T) {
	before := bufpool.ReadStats()

	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	// Two boxes per switch so every hot box has a cold alternative;
	// EdgeGbps/BoxGbps/Scale pace every NIC to ~50 KB/s, so streaming
	// migParts frames per worker keeps the request in flight for tens of
	// milliseconds — plenty of loaded ticks for the replanner to score.
	tb, err := New(Config{
		Racks: 2, WorkersPerRack: 2, BoxesPerSwitch: 2, Registry: reg,
		EdgeGbps: 1, BoxGbps: 1, Scale: 500, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// The replanner is wired exactly as StartReplanner does, but ticked
	// from the test so detection is deterministic and migration stops
	// after the first congested tick (a wall-clock loop could re-trip the
	// replacement boxes and burn through the attempt budget).
	var migrated atomic.Int64
	rp := treeplan.NewReplanner(treeplan.ReplannerConfig{
		Policy:    treeplan.ReplanPolicy{HotLoadUs: 1, HotStreak: 1, CooldownTicks: 1 << 20},
		Boxes:     tb.Dep.PlannerBoxes,
		Telemetry: tb.Telemetry(),
		Mark:      tb.Dep.MarkCongested,
		Migrate: func(id uint64) int {
			n := tb.Master.MigrateAway(id)
			migrated.Add(int64(n))
			return n
		},
	})

	const reqID = 0xD11A
	workers := tb.WorkerHosts()
	pending, err := tb.Master.Submit("wc", reqID, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every worker streams migParts frames; key kNNN is contributed once
	// by each worker with value i+1, so any lost partial lowers a key's
	// total and any double-combined one raises it: the sums below are
	// exact if and only if every partial was combined exactly once. Each
	// frame also carries a ~400-byte padding key unique to (worker,
	// frame) — it pushes the stream well past the NICs' token-bucket
	// burst so pacing actually bites, and its total must come out as
	// exactly 1, pinning per-frame exactly-once delivery too.
	errs := make(chan error, len(workers))
	for i, host := range workers {
		parts := make([][]byte, migParts)
		for j := range parts {
			parts[j] = agg.EncodeKVs([]agg.KV{
				{Key: fmt.Sprintf("k%03d", j), Val: int64(i + 1)},
				{Key: fmt.Sprintf("pad-%d-%03d-%0400d", i, j, 0), Val: 1},
			})
		}
		go func(host string, i int) {
			errs <- tb.Workers[host].SendPartials("wc", reqID, i, MasterHost, parts, 1)
		}(host, i)
	}

	// Tick until the telemetry-driven hysteresis fires a migration. The
	// paced boxes report queue depth and flush latency as soon as frames
	// arrive, so with a 1-unit threshold the first loaded tick trips.
	deadline := time.Now().Add(10 * time.Second)
	var res shim.Result
	completed := false
	for migrated.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replanner never migrated the in-flight request")
		}
		select {
		case res = <-pending.C:
			completed = true
		default:
		}
		if completed {
			t.Fatal("request completed before any loaded tick; widen the pacing window")
		}
		rp.Tick()
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case res = <-pending.C:
	case <-time.After(30 * time.Second):
		t.Fatal("request did not complete after migration")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Attempts < 1 {
		t.Fatalf("result reports %d attempts; the migration must have re-armed the request", res.Attempts)
	}
	totals := sumParts(t, res)
	want := int64(0)
	for i := range workers {
		want += int64(i + 1)
	}
	if wantKeys := migParts + len(workers)*migParts; len(totals) != wantKeys {
		t.Fatalf("result has %d keys, want %d", len(totals), wantKeys)
	}
	for j := 0; j < migParts; j++ {
		key := fmt.Sprintf("k%03d", j)
		if totals[key] != want {
			t.Fatalf("key %s total = %d, want %d: a partial was lost or double-combined", key, totals[key], want)
		}
		for i := range workers {
			pad := fmt.Sprintf("pad-%d-%03d-%0400d", i, j, 0)
			if totals[pad] != 1 {
				t.Fatalf("padding key worker %d frame %d total = %d, want exactly 1", i, j, totals[pad])
			}
		}
	}
	for i := 0; i < len(workers); i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	res.Release()

	// Every pooled buffer taken during the run — including the superseded
	// attempt's partials on the cancelled boxes and the replayed frames —
	// must be released once the deployment drains.
	tb.Close()
	balDeadline := time.Now().Add(10 * time.Second)
	for {
		after := bufpool.ReadStats()
		acq := after.Acquires() - before.Acquires()
		rels := after.Releases - before.Releases
		if acq == rels {
			break
		}
		if time.Now().After(balDeadline) {
			t.Fatalf("bufpool refcounts unbalanced after migration: %d acquires vs %d releases", acq, rels)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("migrations=%d attempts=%d", migrated.Load(), res.Attempts)
}

// TestStartReplannerQuietNoMigration covers the StartReplanner glue and
// the hysteresis' quiet side on the live fabric: with a sane threshold, a
// lightly loaded deployment completes a request with zero migrations and
// the replanner stops cleanly.
func TestStartReplannerQuietNoMigration(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	tb, err := New(Config{Racks: 2, WorkersPerRack: 2, BoxesPerSwitch: 2, Registry: reg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	rp := tb.StartReplanner(t.Context(), time.Millisecond, treeplan.ReplanPolicy{})
	defer rp.Stop()

	const reqID = 0xD11B
	workers := tb.WorkerHosts()
	pending, err := tb.Master.Submit("wc", reqID, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, host := range workers {
		part := agg.EncodeKVs([]agg.KV{{Key: "q", Val: int64(i + 1)}})
		if err := tb.Workers[host].SendPartials("wc", reqID, i, MasterHost, [][]byte{part}, 1); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case res := <-pending.C:
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Attempts != 0 {
			t.Fatalf("quiet run used %d recovery attempts", res.Attempts)
		}
		if got := sumParts(t, res)["q"]; got != 10 {
			t.Fatalf("q total = %d, want 10", got)
		}
		res.Release()
	case <-time.After(10 * time.Second):
		t.Fatal("request did not complete")
	}
}
