package testbed

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/cluster"
	"netagg/internal/obs"
)

// TestTraceCompleteness runs one job through a boxed deployment and
// asserts the request's trace covers every hop exactly once: one
// shim.send span per worker, one box span per box on the aggregation
// tree, and one master span (the tentpole's acceptance criterion).
func TestTraceCompleteness(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	tb, err := New(Config{Racks: 2, WorkersPerRack: 2, BoxesPerSwitch: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// A req id no other test uses: the DefaultTracer is process-global.
	const reqID = 0xABC123
	workers := tb.WorkerHosts()
	pending, err := tb.Master.Submit("wc", reqID, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, host := range workers {
		part := agg.EncodeKVs([]agg.KV{{Key: "k", Val: int64(i + 1)}})
		if err := tb.Workers[host].SendPartials("wc", reqID, i, MasterHost, [][]byte{part}, 1); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case res := <-pending.C:
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job did not complete")
	}

	// 2 racks × 1 box/switch: tor:0, tor:1 and agg:0 all sit on some
	// worker→master path, so all three boxes aggregate.
	wireReq := cluster.WireReq(reqID, 0, 0)
	wantBoxes := len(tb.Boxes)
	wantShims := len(workers)

	// Boxes record their span after the downstream emit completes, so
	// the master can observe completion first: poll briefly.
	var tr obs.Trace
	deadline := time.Now().Add(2 * time.Second)
	for {
		var ok bool
		tr, ok = obs.DefaultTracer.Lookup(wireReq)
		if ok && spanCount(tr, "shim.send") == wantShims &&
			spanCount(tr, "box") == wantBoxes && spanCount(tr, "master") == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("incomplete trace: shim.send=%d/%d box=%d/%d master=%d/1 (spans: %+v)",
				spanCount(tr, "shim.send"), wantShims,
				spanCount(tr, "box"), wantBoxes, spanCount(tr, "master"), tr.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !tr.Done {
		t.Fatal("trace must be marked done after the master completed it")
	}

	// Exactly once per node: no hop double-reports.
	nodes := map[string]int{}
	for _, s := range tr.Spans {
		nodes[s.Hop+"/"+s.Node]++
	}
	for key, n := range nodes {
		if n != 1 {
			t.Fatalf("hop %s appears %d times, want exactly once (trace: %+v)", key, n, tr.Spans)
		}
	}
	// Every worker shim reported under its own host name.
	for _, host := range workers {
		if nodes["shim.send/"+host] != 1 {
			t.Fatalf("worker %s has no shim.send span: %v", host, nodes)
		}
	}
	// Span invariants: timestamps ordered, box fan-in positive.
	for _, s := range tr.Spans {
		if s.End < s.Start {
			t.Fatalf("span %s/%s ends before it starts: %+v", s.Hop, s.Node, s)
		}
		if s.Hop == "box" {
			if s.Parts <= 0 || s.BytesIn <= 0 {
				t.Fatalf("box span missing fan-in accounting: %+v", s)
			}
			if s.Agg < s.Start || s.Agg > s.End {
				t.Fatalf("box span Agg outside [Start, End]: %+v", s)
			}
		}
	}
}

// TestDebugEndpointServes checks the Config.DebugAddr wiring: the
// endpoint binds, reports the deployment in /health, and shuts down
// with Close.
func TestDebugEndpointServes(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	tb, err := New(Config{
		Racks: 1, WorkersPerRack: 2, BoxesPerSwitch: 1,
		Registry: reg, DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := tb.DebugAddr()
	if addr == "" {
		tb.Close()
		t.Fatal("DebugAddr must report the bound address")
	}
	resp, err := http.Get("http://" + addr + "/debug/netagg/health")
	if err != nil {
		tb.Close()
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var health map[string]interface{}
	if err := json.Unmarshal(body, &health); err != nil {
		tb.Close()
		t.Fatalf("health is not JSON: %v", err)
	}
	if health["boxes"] != float64(1) || health["workers"] != float64(2) {
		tb.Close()
		t.Fatalf("health = %v", health)
	}

	tb.Close()
	// After Close the endpoint must be down.
	client := &http.Client{Timeout: 500 * time.Millisecond}
	if _, err := client.Get(fmt.Sprintf("http://%s/debug/netagg/health", addr)); err == nil {
		t.Fatal("debug endpoint still serving after Close")
	}
}

func spanCount(tr obs.Trace, hop string) int {
	n := 0
	for _, s := range tr.Spans {
		if s.Hop == hop {
			n++
		}
	}
	return n
}
