// Package testbed assembles complete in-process NetAgg deployments for the
// testbed experiments (§4.2): emulated hosts in racks with 1 Gbps NICs, agg
// boxes on 10 Gbps links attached to ToR and aggregation switches, worker
// shims on every host and a master shim on the frontend host. It is the
// analogue of the paper's 34-server / 2-rack testbed, with link rates
// emulated by token buckets (see internal/netem) at a 1:100 scale.
package testbed

import (
	"context"
	"fmt"
	"time"

	"netagg/internal/agg"
	"netagg/internal/cluster"
	"netagg/internal/core"
	"netagg/internal/netem"
	"netagg/internal/obs"
	"netagg/internal/shim"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
)

// Config describes the deployment to build.
type Config struct {
	// Racks is the number of racks (all in one pod), ≥ 1.
	Racks int
	// WorkersPerRack is the number of worker hosts per rack; the master
	// lives on an extra host in rack 0.
	WorkersPerRack int
	// BoxesPerSwitch deploys this many agg boxes per switch; 0 = plain
	// deployment without NetAgg.
	BoxesPerSwitch int
	// EdgeGbps and BoxGbps set the emulated NIC rates (0 disables pacing).
	EdgeGbps float64
	BoxGbps  float64
	// Scale divides emulated rates (0 = netem.DefaultScale).
	Scale float64
	// Registry supplies the aggregation functions; required when boxes are
	// deployed.
	Registry *agg.Registry
	// Shares sets per-application target scheduler shares on the boxes.
	Shares map[string]float64
	// BoxWorkers is each box's scheduler pool size (0 = 4).
	BoxWorkers int
	// FixedWeights disables the adaptive WFQ correction (Fig 25).
	FixedWeights bool
	// Planner selects the tree planner every shim uses (nil = the
	// paper's treeplan.OnPath, or a live-telemetry LoadAware when
	// LoadAwarePlanner is set). Master and workers always share it.
	Planner treeplan.Planner
	// LoadAwarePlanner, when Planner is nil, wires a treeplan.LoadAware
	// planner fed by the deployment's own boxes: scheduler queue depth,
	// flush-latency EWMA, and heartbeat RTT (see Testbed.Telemetry).
	LoadAwarePlanner bool
	// StragglerTimeout enables master-side recovery.
	StragglerTimeout time.Duration
	// Seed makes box scheduling deterministic.
	Seed int64
	// Context optionally bounds the whole deployment's lifetime: it is
	// passed to every box and shim, so cancelling it tears the transport
	// layer down everywhere (Close still drains).
	Context context.Context
	// DebugAddr, when non-empty, serves the /debug/netagg observability
	// endpoint (metrics, traces, health — see internal/obs and
	// OPERATIONS.md) on that address. Use "127.0.0.1:0" to pick a free
	// port and read it back with DebugAddr().
	DebugAddr string
}

// Testbed is a running deployment.
type Testbed struct {
	Dep     *cluster.Deployment
	Boxes   []*core.Box
	Workers map[string]*shim.Worker
	Master  *shim.Master

	nics      map[string]*netem.NIC
	boxByID   map[uint64]*core.Box
	workers   []string // worker host names in order
	debugAddr string
	debugStop func()
}

// MasterHost is the frontend/master host name.
const MasterHost = "master"

// WorkerName returns the host name of worker i in rack r.
func WorkerName(rack, i int) string { return fmt.Sprintf("r%d-h%d", rack, i) }

// New builds and starts the deployment.
func New(cfg Config) (*Testbed, error) {
	if cfg.Racks < 1 || cfg.WorkersPerRack < 1 {
		return nil, fmt.Errorf("testbed: need at least one rack and one worker, got %+v", cfg)
	}
	if cfg.BoxesPerSwitch > 0 && cfg.Registry == nil {
		return nil, fmt.Errorf("testbed: boxes require an aggregator registry")
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = netem.DefaultScale
	}

	tb := &Testbed{
		Dep:     cluster.NewDeployment(),
		Workers: make(map[string]*shim.Worker),
		nics:    make(map[string]*netem.NIC),
		boxByID: make(map[uint64]*core.Box),
	}
	nic := func(name string, gbps float64) *netem.NIC {
		if gbps <= 0 {
			return nil
		}
		n := netem.NewNIC(name, netem.Gbps(gbps, scale), netem.Gbps(gbps, scale))
		tb.nics[name] = n
		return n
	}

	// Hosts: the master in rack 0 plus workers.
	masterHost := cluster.Host{Name: MasterHost, Rack: 0, Pod: 0}
	tb.Dep.AddHost(masterHost)
	for r := 0; r < cfg.Racks; r++ {
		for i := 0; i < cfg.WorkersPerRack; i++ {
			h := cluster.Host{Name: WorkerName(r, i), Rack: r, Pod: 0}
			tb.Dep.AddHost(h)
			tb.workers = append(tb.workers, h.Name)
		}
	}

	// Agg boxes: one set per ToR switch, plus the pod aggregation switch
	// when there is more than one rack.
	if cfg.BoxesPerSwitch > 0 {
		switches := make([]string, 0, cfg.Racks+1)
		for r := 0; r < cfg.Racks; r++ {
			switches = append(switches, fmt.Sprintf("tor:%d", r))
		}
		if cfg.Racks > 1 {
			switches = append(switches, "agg:0")
		}
		id := uint64(1) << 32
		for _, sw := range switches {
			for k := 0; k < cfg.BoxesPerSwitch; k++ {
				box, err := core.Start(core.Config{
					ID:           id,
					Registry:     cfg.Registry,
					Workers:      cfg.BoxWorkers,
					FixedWeights: cfg.FixedWeights,
					Shares:       cfg.Shares,
					NIC:          nic(fmt.Sprintf("box-%s-%d", sw, k), cfg.BoxGbps),
					SchedSeed:    cfg.Seed + int64(id>>32),
					Context:      cfg.Context,
				})
				if err != nil {
					tb.Close()
					return nil, err
				}
				tb.Boxes = append(tb.Boxes, box)
				tb.boxByID[id] = box
				tb.Dep.AddBox(cluster.BoxInfo{ID: id, Addr: box.Addr(), Switch: sw})
				id += 1 << 32
			}
		}
	}

	// The planner is resolved once and shared by every shim: master and
	// workers must plan identical trees (treeplan package doc).
	planner := cfg.Planner
	if planner == nil && cfg.LoadAwarePlanner {
		planner = treeplan.LoadAware{Telemetry: tb.Telemetry()}
	}

	// Shims.
	for _, name := range tb.workers {
		h, _ := tb.Dep.Host(name)
		w, err := shim.NewWorker(shim.WorkerConfig{
			Host:       h,
			Deployment: tb.Dep,
			NIC:        nic(name, cfg.EdgeGbps),
			Planner:    planner,
			Context:    cfg.Context,
		})
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.Workers[name] = w
	}
	master, err := shim.NewMaster(shim.MasterConfig{
		Host:             masterHost,
		Deployment:       tb.Dep,
		NIC:              nic(MasterHost, cfg.EdgeGbps),
		Planner:          planner,
		StragglerTimeout: cfg.StragglerTimeout,
		Context:          cfg.Context,
	})
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.Master = master

	if cfg.DebugAddr != "" {
		ctx := cfg.Context
		if ctx == nil {
			ctx = context.Background()
		}
		h := obs.Handler(obs.Default, obs.DefaultTracer, tb.health)
		addr, stop, err := obs.Serve(ctx, cfg.DebugAddr, h)
		if err != nil {
			tb.Close()
			return nil, fmt.Errorf("testbed: debug endpoint: %w", err)
		}
		tb.debugAddr = addr
		tb.debugStop = stop
	}
	return tb, nil
}

// DebugAddr returns the address the /debug/netagg endpoint listens on
// ("" when Config.DebugAddr was empty).
func (tb *Testbed) DebugAddr() string { return tb.debugAddr }

// health summarises deployment liveness for /debug/netagg/health.
func (tb *Testbed) health() map[string]interface{} {
	boxes := tb.Dep.Boxes()
	dead := 0
	infos := make([]map[string]interface{}, 0, len(boxes))
	for _, b := range boxes {
		if tb.Dep.Dead(b.ID) {
			dead++
		}
		info := map[string]interface{}{
			"id": b.ID, "switch": b.Switch, "dead": tb.Dep.Dead(b.ID),
		}
		if !b.LastSeen.IsZero() {
			info["last_seen"] = b.LastSeen.Format(time.RFC3339Nano)
		}
		infos = append(infos, info)
	}
	return map[string]interface{}{
		"boxes":      len(boxes),
		"boxes_dead": dead,
		"workers":    len(tb.workers),
		"box_detail": infos,
	}
}

// WorkerHosts lists worker host names in deployment order.
func (tb *Testbed) WorkerHosts() []string { return tb.workers }

// Telemetry returns live per-box load signals — scheduler queue depth,
// flush-latency EWMA, heartbeat RTT — for load-aware tree planning
// (Config.LoadAwarePlanner uses it; custom planners can too).
func (tb *Testbed) Telemetry() treeplan.Telemetry {
	return tbTelemetry{dep: tb.Dep, boxes: tb.boxByID}
}

// tbTelemetry adapts the in-process boxes and the deployment's heartbeat
// record to treeplan.Telemetry. Reads are lock-light (an atomic and one
// RLock), cheap enough to run on every Plan call.
type tbTelemetry struct {
	dep   *cluster.Deployment
	boxes map[uint64]*core.Box
}

// BoxSignal implements treeplan.Telemetry.
func (t tbTelemetry) BoxSignal(id uint64) (treeplan.LoadSignal, bool) {
	b, ok := t.boxes[id]
	if !ok {
		return treeplan.LoadSignal{}, false
	}
	return treeplan.LoadSignal{
		QueueDepth: int64(b.QueueDepth()),
		FlushUs:    b.FlushLatencyUs(),
		RTTUs:      t.dep.BoxRTTUs(id),
	}, true
}

// StartReplanner wires a dynamic-tree replanner (treeplan.Replanner,
// DESIGN.md §16) over this deployment and starts it: boxes are scored
// from the in-process telemetry every interval, boxes crossing the
// congestion hysteresis are marked in the deployment so new plans avoid
// them, and pending requests are migrated off them through the master
// shim. Cancel ctx or call Stop on the returned replanner to stop it.
func (tb *Testbed) StartReplanner(ctx context.Context, interval time.Duration, policy treeplan.ReplanPolicy) *treeplan.Replanner {
	r := treeplan.NewReplanner(treeplan.ReplannerConfig{
		Interval:  interval,
		Policy:    policy,
		Boxes:     tb.Dep.PlannerBoxes,
		Telemetry: tb.Telemetry(),
		Mark:      tb.Dep.MarkCongested,
		Migrate:   tb.Master.MigrateAway,
	})
	r.StartContext(ctx)
	return r
}

// NIC returns a host's emulated NIC (nil when pacing is off), so
// application servers on that host share its link.
func (tb *Testbed) NIC(host string) *netem.NIC { return tb.nics[host] }

// BoxStats sums counters over all boxes.
func (tb *Testbed) BoxStats() core.BoxStats {
	var total core.BoxStats
	for _, b := range tb.Boxes {
		st := b.Stats()
		total.BytesIn += st.BytesIn
		total.BytesOut += st.BytesOut
		total.Requests += st.Requests
		total.Combines += st.Combines
	}
	return total
}

// Close tears the deployment down.
func (tb *Testbed) Close() {
	if tb.debugStop != nil {
		tb.debugStop()
		tb.debugStop = nil
	}
	if tb.Master != nil {
		tb.Master.Close()
	}
	for _, w := range tb.Workers {
		w.Close()
	}
	for _, b := range tb.Boxes {
		b.Close()
	}
}

// Gbps re-exports the topology constant for callers sizing NICs.
const Gbps = topology.Gbps
