// Package shim implements NetAgg's shim layers (§3.2.2): the worker-side
// shim that transparently redirects partial results to the first agg box on
// the path towards the master (partitioning them across aggregation trees),
// and the master-side shim that announces expected partial-result counts to
// the boxes, collects aggregated results, emulates the missing partials
// towards the application, and drives straggler/failure recovery.
package shim

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"netagg/internal/cluster"
	"netagg/internal/netem"
	"netagg/internal/obs"
	"netagg/internal/topology"
	"netagg/internal/transport"
	"netagg/internal/treeplan"
	"netagg/internal/wire"
)

// WorkerConfig configures a worker-side shim.
type WorkerConfig struct {
	// Host is this worker's position in the cluster.
	Host cluster.Host
	// Deployment is the shared cluster state.
	Deployment *cluster.Deployment
	// NIC optionally paces this host's traffic (1 Gbps edge link).
	NIC *netem.NIC
	// Planner chooses this worker's box routes (nil = treeplan.OnPath).
	// It must match the master shim's planner — see
	// MasterConfig.Planner.
	Planner treeplan.Planner
	// Retention bounds how long sent partial results stay buffered for
	// recovery resends (default 30s).
	Retention time.Duration
	// ReplayWindow is the per-box-connection transport replay window:
	// the last N frames written are rewritten after a reconnect, so
	// partials buffered in a dying box's socket survive the reconnect
	// (§3.1 at-least-once; boxes dedup replayed frames per source
	// sequence). Default 128; negative disables replay entirely.
	ReplayWindow int
	// Context optionally bounds the shim's lifetime: cancelling it is
	// equivalent to Close (nil = Background).
	Context context.Context
}

// Worker is a worker host's shim layer.
type Worker struct {
	cfg     WorkerConfig
	planner treeplan.Planner
	// self is the one-element worker list this shim plans with: planning
	// is per-worker decomposable (treeplan package doc), so the shim only
	// ever needs its own route.
	self   []string
	pool   *transport.Pool
	ctl    *transport.Server
	cancel context.CancelFunc

	mu       sync.Mutex
	buffered map[bufKey]*bufferedSend
	closed   bool
}

type bufKey struct {
	app string
	req uint64
}

// bufferedSend remembers a sent request so a TRedirect can replay it along
// a freshly planned route (§3.1: recovery resends redirect "future partial
// results"; we keep the already produced ones since workers in the paper
// equally hold their outputs until fetched).
type bufferedSend struct {
	app       string
	req       uint64
	workerIdx int
	master    string
	parts     [][]byte
	trees     int
	sentAt    time.Time
	// lastAttempt dedups redirects: the master's straggler timer and the
	// failure monitor may both request the same attempt, and replaying it
	// twice would double-count the data at the boxes.
	lastAttempt int
}

// NewWorker starts the worker shim, including its control listener for
// redirect messages, and registers its control address in the deployment.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Deployment == nil {
		return nil, fmt.Errorf("shim: worker requires a deployment")
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 30 * time.Second
	}
	if cfg.Planner == nil {
		cfg.Planner = treeplan.OnPath{}
	}
	if cfg.ReplayWindow == 0 {
		cfg.ReplayWindow = 128
	}
	if cfg.ReplayWindow < 0 {
		cfg.ReplayWindow = 0
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	w := &Worker{
		cfg:      cfg,
		planner:  cfg.Planner,
		self:     []string{cfg.Host.Name},
		cancel:   cancel,
		pool:     transport.NewPool(ctx, transport.Options{NIC: cfg.NIC, ReplayWindow: cfg.ReplayWindow}),
		buffered: make(map[bufKey]*bufferedSend),
	}
	// The control listener carries only tiny redirect frames, so it is
	// deliberately not NIC-paced (recovery signalling should not queue
	// behind a congested emulated edge link).
	ctl, err := transport.Listen(ctx, "127.0.0.1:0", w.control, transport.ServerOptions{})
	if err != nil {
		cancel()
		w.pool.Close()
		return nil, err
	}
	w.ctl = ctl
	cfg.Deployment.SetControlAddr(cfg.Host.Name, ctl.Addr())
	return w, nil
}

// ControlAddr returns the shim's control listener address.
func (w *Worker) ControlAddr() string { return w.ctl.Addr() }

// Close stops the shim.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.cancel()
	w.ctl.Close()
	w.pool.Close()
}

// SendPartials ships one worker's partial results for a request towards the
// master: partitioned across the aggregation trees, each stream redirected
// to the first on-path agg box (or straight to the master if no box is on
// the path). workerIdx must be unique among the request's workers.
func (w *Worker) SendPartials(app string, req uint64, workerIdx int, master string, parts [][]byte, trees int) error {
	if trees < 1 {
		trees = 1
	}
	b := &bufferedSend{
		app: app, req: req, workerIdx: workerIdx,
		master: master, parts: parts, trees: trees, sentAt: time.Now(),
	}
	for _, part := range parts {
		obsPartialBytes.Observe(int64(len(part)))
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("shim: worker closed")
	}
	w.buffered[bufKey{app, req}] = b
	// Opportunistic retention cleanup.
	cutoff := time.Now().Add(-w.cfg.Retention)
	for k, old := range w.buffered {
		if old.sentAt.Before(cutoff) {
			delete(w.buffered, k)
		}
	}
	w.mu.Unlock()
	return w.send(b, 0)
}

// send transmits the buffered request at the given recovery attempt,
// planning this worker's route through the configured planner (the
// planner sees only this worker; per-worker decomposability guarantees
// the route matches the master's view of the same attempt).
func (w *Worker) send(b *bufferedSend, attempt int) error {
	dep := w.cfg.Deployment
	if _, ok := dep.Host(b.master); !ok {
		return fmt.Errorf("shim: unknown master host %q", b.master)
	}
	resultAddr, ok := dep.ResultAddr(b.master)
	if !ok {
		return fmt.Errorf("shim: master %q has no result address", b.master)
	}
	for tree := 0; tree < b.trees; tree++ {
		wireReq := cluster.WireReq(b.req, tree, attempt)
		plan := w.planner.Plan(dep, treeplan.NewRequest(b.req, tree, attempt, b.master, w.self))
		chain := plan.Routes[w.cfg.Host.Name]
		target := resultAddr
		var msgs []*wire.Msg
		if len(chain) > 0 {
			target = chain[0].Addr
			msgs = append(msgs, &wire.Msg{
				Type: wire.THello, App: b.app, Req: wireReq,
				Source:  uint64(b.workerIdx),
				Payload: wire.EncodeStrings(treeplan.RouteAddrs(chain[1:], resultAddr)),
			})
		}
		seq := uint64(0)
		var treeBytes int64
		treeParts := 0
		for pi, part := range b.parts {
			if b.trees > 1 && treeOf(b.req, pi, b.trees) != tree {
				continue
			}
			msgs = append(msgs, &wire.Msg{
				Type: wire.TData, App: b.app, Req: wireReq,
				Source: uint64(b.workerIdx), Seq: seq, Payload: part,
			})
			seq++
			treeBytes += int64(len(part))
			treeParts++
		}
		// TEnd carries the next sequence number after the data frames so
		// the master's per-source replay guard covers it: a reconnect
		// replays the whole window, and an unnumbered TEnd would
		// double-count the source.
		msgs = append(msgs, &wire.Msg{
			Type: wire.TEnd, App: b.app, Req: wireReq, Source: uint64(b.workerIdx), Seq: seq,
		})
		start := time.Now()
		if err := w.pool.Get(target).SendAll(msgs); err != nil {
			return fmt.Errorf("shim: send tree %d to %s: %w", tree, target, err)
		}
		obs.DefaultTracer.Record(wireReq, b.app, obs.Span{
			Hop: "shim.send", Node: w.cfg.Host.Name,
			Start: start.UnixNano(), End: time.Now().UnixNano(),
			Parts: treeParts, BytesOut: treeBytes,
		})
	}
	return nil
}

// treeOf partitions partial results across trees by hashing the part index
// with the request id (§3.1: "the shim layers at the worker nodes partition
// partial results across the trees ... by hashing request identifiers or
// keys in the data").
func treeOf(req uint64, partIdx, trees int) int {
	return int(topology.FlowHash(0x7EE, req, uint64(partIdx)) % uint64(trees))
}

// control processes one control frame from a master shim. It runs on
// the control server's reader goroutine for the sending master.
//
//netagg:proto-handler worker
func (w *Worker) control(_ *transport.ServerConn, m *wire.Msg) {
	wire.CheckReceive(wire.RoleWorker, m)
	defer m.Release() // DecodeCount copies the attempt out of the payload
	switch m.Type {
	case wire.TRedirect:
		w.applyRedirect(m)
	default:
		log.Printf("shim: worker %s dropping unhandled frame type %v for request %d",
			w.cfg.Host.Name, m.Type, m.Req)
	}
}

// applyRedirect replays a buffered request along a freshly planned route
// for the redirect's attempt, unless the redirect is a duplicate or
// stale (the straggler timer and the failure monitor may both request
// the same attempt, and replaying it twice would double-count the data
// at the boxes).
func (w *Worker) applyRedirect(m *wire.Msg) {
	attempt, err := wire.DecodeCount(m.Payload)
	if err != nil {
		return
	}
	w.mu.Lock()
	b, ok := w.buffered[bufKey{m.App, m.Req}]
	if !ok || attempt <= b.lastAttempt {
		w.mu.Unlock()
		return
	}
	prevAttempt := b.lastAttempt
	b.lastAttempt = attempt
	w.mu.Unlock()
	obsRedirectsApplied.Inc()
	w.trimStaleReplay(b, prevAttempt, attempt)
	// Replan happens inside send: dead boxes are excluded from chains,
	// and the new attempt id keeps the replayed streams distinct at
	// every box.
	_ = w.send(b, attempt)
}

// trimStaleReplay drops the transport replay windows of connections to
// boxes on the superseded attempt's routes but not the new one: every
// frame those windows retain carries the old (tree, attempt) epoch,
// which the new attempt resends in full, so replaying them after a
// reconnect could only deliver frames the receivers drop as stale. The
// trim is best-effort — re-planning the old attempt against today's
// deployment may differ from the plan at send time if liveness or
// congestion marks moved since, and an untrimmed window still cannot
// double-combine (the box's epoch and sequence checks hold either way);
// trimming just releases the retained buffers and avoids pointless
// replay traffic.
func (w *Worker) trimStaleReplay(b *bufferedSend, oldAttempt, newAttempt int) {
	dep := w.cfg.Deployment
	stale := make(map[string]bool)
	for tree := 0; tree < b.trees; tree++ {
		plan := w.planner.Plan(dep, treeplan.NewRequest(b.req, tree, oldAttempt, b.master, w.self))
		for _, box := range plan.Routes[w.cfg.Host.Name] {
			stale[box.Addr] = true
		}
	}
	if len(stale) == 0 {
		return
	}
	for tree := 0; tree < b.trees; tree++ {
		plan := w.planner.Plan(dep, treeplan.NewRequest(b.req, tree, newAttempt, b.master, w.self))
		for _, box := range plan.Routes[w.cfg.Host.Name] {
			delete(stale, box.Addr)
		}
	}
	for addr := range stale {
		w.pool.DropReplay(addr)
	}
}
