package shim

import (
	"net"
	"sync"
	"testing"
	"time"

	"netagg/internal/cluster"
	"netagg/internal/wire"
)

// fanoutSink is a worker-side listener collecting delivered payloads.
type fanoutSink struct {
	srv *wire.Server

	mu       sync.Mutex
	payloads [][]byte
}

func newFanoutSink(t *testing.T) *fanoutSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fanoutSink{}
	s.srv = wire.Serve(ln, func(_ net.Conn, m *wire.Msg) {
		if m.Type != wire.TData {
			return
		}
		s.mu.Lock()
		s.payloads = append(s.payloads, append([]byte(nil), m.Payload...))
		s.mu.Unlock()
	})
	t.Cleanup(s.srv.Close)
	return s
}

func (s *fanoutSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.payloads)
}

func TestFanoutDeliversOncePerTarget(t *testing.T) {
	r := newRig(t, 0)
	sinks := map[string]*fanoutSink{}
	targets := map[string]string{}
	for _, host := range []string{"w0", "w1", "w2", "w3"} {
		s := newFanoutSink(t)
		sinks[host] = s
		targets[host] = s.srv.Addr()
	}
	payload := []byte("iteration-7-model-parameters")
	if err := r.master.Fanout("wc", 42, payload, targets); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for host, s := range sinks {
		for s.count() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never received the broadcast", host)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if s.count() != 1 {
			t.Fatalf("worker %s received %d copies", host, s.count())
		}
		s.mu.Lock()
		got := string(s.payloads[0])
		s.mu.Unlock()
		if got != string(payload) {
			t.Fatalf("worker %s got %q", host, got)
		}
	}
	// The boxes replicated: each box should have made at least one copy.
	var copies int64
	for _, b := range r.boxes {
		copies += b.Stats().FanoutCopies
	}
	if copies == 0 {
		t.Fatal("no box participated in the fanout")
	}
}

func TestFanoutDirectWhenNoBoxes(t *testing.T) {
	dep := cluster.NewDeployment()
	dep.AddHost(cluster.Host{Name: "master", Rack: 0})
	dep.AddHost(cluster.Host{Name: "w0", Rack: 0})
	dep.AddHost(cluster.Host{Name: "w1", Rack: 1})
	master, err := NewMaster(MasterConfig{Host: cluster.Host{Name: "master", Rack: 0}, Deployment: dep})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	sinks := map[string]*fanoutSink{}
	targets := map[string]string{}
	for _, h := range []string{"w0", "w1"} {
		s := newFanoutSink(t)
		sinks[h] = s
		targets[h] = s.srv.Addr()
	}
	if err := master.Fanout("wc", 7, []byte("direct"), targets); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for host, s := range sinks {
		for s.count() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never received the direct copy", host)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func TestFanoutUnknownWorker(t *testing.T) {
	r := newRig(t, 0)
	err := r.master.Fanout("wc", 9, []byte("x"), map[string]string{"ghost": "127.0.0.1:1"})
	if err == nil {
		t.Fatal("expected error for unknown worker host")
	}
}

func TestFanoutCodecRoundTrip(t *testing.T) {
	in := wire.FanoutPayload{
		Inner:  []byte("payload"),
		Routes: [][]string{{"a:1", "b:2"}, {"c:3"}, {}},
	}
	out, err := wire.DecodeFanout(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Inner) != "payload" || len(out.Routes) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if len(out.Routes[0]) != 2 || out.Routes[0][1] != "b:2" || len(out.Routes[2]) != 0 {
		t.Fatalf("routes mismatch: %+v", out.Routes)
	}
	if _, err := wire.DecodeFanout([]byte{0xff}); err == nil {
		t.Fatal("expected error for corrupt fanout payload")
	}
}
