package shim

import (
	"fmt"
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/cluster"
	"netagg/internal/core"
	"netagg/internal/treeplan"
)

// TestRedirectBudgetExhausted pins the recovery exit path: when no worker
// ever delivers and every straggler timer fires, the master must fail the
// pending request cleanly after MaxAttempts redirects — an error Result
// with the attempt count, the request deregistered, and no timer left
// running (the leak checker in TestMain would catch a stray one).
func TestRedirectBudgetExhausted(t *testing.T) {
	dep := cluster.NewDeployment()
	dep.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	dep.AddHost(cluster.Host{Name: "w0", Rack: 0, Pod: 0})

	master, err := NewMaster(MasterConfig{
		Host:             cluster.Host{Name: "master", Rack: 0, Pod: 0},
		Deployment:       dep,
		StragglerTimeout: 30 * time.Millisecond,
		MaxAttempts:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	p, err := master.Submit("wc", 7, []string{"w0"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult2(t, p)
	if res.Err == nil {
		t.Fatal("request with a silent worker must fail once the attempt budget is spent")
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (MaxAttempts)", res.Attempts)
	}
	// The failed request must be fully deregistered: the same ID is
	// submittable again.
	p2, err := master.Submit("wc", 7, []string{"w0"}, 1)
	if err != nil {
		t.Fatalf("resubmit after budget failure: %v", err)
	}
	res2 := waitResult2(t, p2)
	if res2.Err == nil {
		t.Fatal("second run should fail the same way")
	}
}

// TestLoadAwarePlannerEndToEnd runs a live aggregation with master and
// worker shims sharing a LoadAware planner whose telemetry marks the first
// box hot: the request must complete through the cold box while the hot
// box sees no aggregation traffic.
func TestLoadAwarePlannerEndToEnd(t *testing.T) {
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})

	dep := cluster.NewDeployment()
	dep.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	hosts := []cluster.Host{
		{Name: "w0", Rack: 0, Pod: 0},
		{Name: "w1", Rack: 0, Pod: 0},
	}
	var boxes []*core.Box
	hotID, coldID := uint64(1)<<32, uint64(2)<<32
	for i, id := range []uint64{hotID, coldID} {
		box, err := core.Start(core.Config{ID: id, Registry: reg, Workers: 2, SchedSeed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		boxes = append(boxes, box)
		dep.AddBox(cluster.BoxInfo{ID: id, Addr: box.Addr(), Switch: "tor:0"})
	}
	defer func() {
		for _, b := range boxes {
			b.Close()
		}
	}()

	// A near-saturated hot box; every shim must hold the same telemetry
	// view, mirroring how testbed.Testbed.Telemetry is shared.
	planner := treeplan.LoadAware{Telemetry: treeplan.StaticTelemetry{
		hotID: {QueueDepth: 1 << 20, FlushUs: 500000},
	}}

	workers := make(map[string]*Worker)
	for _, h := range hosts {
		dep.AddHost(h)
		w, err := NewWorker(WorkerConfig{Host: h, Deployment: dep, Planner: planner})
		if err != nil {
			t.Fatal(err)
		}
		workers[h.Name] = w
		defer w.Close()
	}
	master, err := NewMaster(MasterConfig{
		Host:       cluster.Host{Name: "master", Rack: 0, Pod: 0},
		Deployment: dep,
		Planner:    planner,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	done := 0
	for req := uint64(1); req <= 8; req++ {
		p, err := master.Submit("wc", req, []string{"w0", "w1"}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range []string{"w0", "w1"} {
			if err := workers[name].SendPartials("wc", req, i, "master", [][]byte{
				kvPart(fmt.Sprintf("k%d", req), int64(i+1)),
			}, 1); err != nil {
				t.Fatal(err)
			}
		}
		res := waitResult2(t, p)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		totals := sumResult(t, res)
		if totals[fmt.Sprintf("k%d", req)] != 3 {
			t.Fatalf("req %d totals = %v", req, totals)
		}
		done++
	}

	hot, cold := boxes[0].Stats(), boxes[1].Stats()
	if done != 8 || cold.Requests == 0 {
		t.Fatalf("cold box handled %d requests, want all %d", cold.Requests, done)
	}
	if hot.Requests != 0 {
		t.Fatalf("hot box handled %d requests, want 0 (steered off)", hot.Requests)
	}
}
