package shim

import (
	"testing"
	"time"

	"netagg/internal/cluster"
	"netagg/internal/wire"
)

// Full failure pipeline: a cluster.Monitor detects a crashed box, marks it
// dead, and the master shim immediately redirects the affected pending
// request instead of waiting for the straggler timeout.
func TestMonitorDrivenRecovery(t *testing.T) {
	r := newRig(t, 5*time.Second) // long straggler timeout: recovery must come from the monitor
	workers := []string{"w2", "w3"}

	mon := cluster.NewMonitor(r.dep, 30*time.Millisecond, 2, func(b cluster.BoxInfo) {
		r.master.OnBoxFailure(b.ID)
	})
	mon.Start()
	defer mon.Stop()

	p, err := r.master.Submit("wc", 50, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the aggregation-switch box after submission; the workers send
	// into the now-broken chain.
	r.boxes[2].Close()
	for i, name := range workers {
		r.workers[name].SendPartials("wc", 50, i, "master", [][]byte{kvPart("m", 3)}, 1)
	}

	res := waitResult2(t, p)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Attempts == 0 {
		t.Fatal("monitor-driven recovery should have bumped the attempt")
	}
	totals := sumResult(t, res)
	if totals["m"] != 6 {
		t.Fatalf("m = %d, want 6 (no loss, no duplication)", totals["m"])
	}
	if !r.dep.Dead(3 << 32) {
		t.Fatal("monitor should have marked the box dead")
	}
}

// Duplicate redirects for the same attempt (straggler timer and failure
// monitor racing) must not make the worker replay the data twice.
func TestDuplicateRedirectIgnored(t *testing.T) {
	r := newRig(t, 0)
	if err := r.workers["w0"].SendPartials("wc", 60, 0, "master", [][]byte{kvPart("d", 1)}, 1); err != nil {
		t.Fatal(err)
	}
	p, err := r.master.Submit("wc", 61, []string{"w0", "w1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.workers["w0"].SendPartials("wc", 61, 0, "master", [][]byte{kvPart("d", 5)}, 1)
	r.workers["w1"].SendPartials("wc", 61, 1, "master", [][]byte{kvPart("d", 7)}, 1)
	res := waitResult2(t, p)
	if sumResult(t, res)["d"] != 12 {
		t.Fatalf("baseline broken: %v", res)
	}

	// Simulate two racing redirect frames for the same attempt; the worker
	// must resend at most once. (The data goes to boxes keyed by a fresh
	// attempt id, so a correct single resend is invisible to request 61.)
	ctl, ok := r.dep.ControlAddr("w0")
	if !ok {
		t.Fatal("no control address")
	}
	c := newCtl(t, ctl)
	for i := 0; i < 2; i++ {
		c(&wire.Msg{Type: wire.TRedirect, App: "wc", Req: 61, Payload: wire.EncodeCount(1)})
	}
	time.Sleep(200 * time.Millisecond) // let any (wrong) duplicate land
}

// newCtl returns a sender on a fresh control connection.
func newCtl(t *testing.T, addr string) func(*wire.Msg) {
	t.Helper()
	c := wire.NewClient(addr, nil)
	t.Cleanup(c.Close)
	return func(m *wire.Msg) {
		t.Helper()
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
}
