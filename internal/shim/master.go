package shim

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"netagg/internal/bufpool"
	"netagg/internal/cluster"
	"netagg/internal/netem"
	"netagg/internal/obs"
	"netagg/internal/transport"
	"netagg/internal/treeplan"
	"netagg/internal/wire"
)

// MasterConfig configures a master-side shim.
type MasterConfig struct {
	// Host is the master's position in the cluster.
	Host cluster.Host
	// Deployment is the shared cluster state.
	Deployment *cluster.Deployment
	// NIC optionally paces the master's traffic (the 1 Gbps frontend link
	// whose congestion NetAgg relieves).
	NIC *netem.NIC
	// Planner chooses the aggregation trees for submits and redirects
	// (nil = treeplan.OnPath, the paper's hash-on-path planner). Master
	// and worker shims of one deployment must be configured with
	// equivalent planners: they coordinate only through the hashed
	// request identifier, so divergent planners mean divergent trees
	// until the straggler timer re-syncs them.
	Planner treeplan.Planner
	// StragglerTimeout redirects a request that has not completed in time
	// (§3.1 "Handling stragglers"); 0 disables recovery.
	StragglerTimeout time.Duration
	// MaxAttempts bounds recovery attempts per request (default 3; the wire
	// encoding supports at most 16).
	MaxAttempts int
	// NoMigrateApps lists applications whose pending requests MigrateAway
	// must leave in place (OPERATIONS.md §9: per-application migration
	// opt-out). Their requests still recover through the straggler timer
	// and OnBoxFailure — opting out of migration never opts out of
	// failure recovery.
	NoMigrateApps []string
	// Context optionally bounds the shim's lifetime: cancelling it is
	// equivalent to Close (nil = Background).
	Context context.Context
}

// Result is a completed request's aggregated data.
type Result struct {
	// Parts holds the final payloads: one per aggregation tree root plus
	// one per worker that had no on-path box. The application performs the
	// final aggregation step over them (§3.1).
	Parts [][]byte
	// Err is non-nil if aggregation failed or recovery attempts ran out.
	Err error
	// Attempts is the number of recovery attempts used (0 = first try).
	Attempts int

	// bufs holds the pooled buffer references backing Parts.
	bufs []*bufpool.Buf
}

// Release gives the pooled buffers backing Parts back once the
// application has consumed (or copied out of) the result. Parts is
// nilled so stale slices cannot read recycled bytes. Optional: an
// unreleased result is reclaimed by the GC at pool-recycling cost.
func (r *Result) Release() {
	for _, b := range r.bufs {
		b.Release()
	}
	r.bufs = nil
	r.Parts = nil
}

// Pending is a request registered with the master shim.
type Pending struct {
	// C delivers the request's result exactly once.
	C <-chan Result

	c       chan Result
	req     uint64
	workers []string
	trees   int
	app     string
	// submittedAt anchors the request's master trace span.
	submittedAt time.Time

	mu          sync.Mutex
	attempt     int
	needed      int // sources that must deliver before completion
	sourcesDone int
	received    [][]byte
	partsBy     map[srcKey][][]byte
	// nextSeq is the next expected sequence number per source stream.
	// The attempt guard drops cross-epoch replays, but a transport
	// reconnect within one attempt rewrites the replay window on the
	// same epoch: without this mark a replayed TData duplicates its part
	// and a replayed TEnd/TResult double-counts sourcesDone. Same
	// discipline as boxRequest.nextSeq on the box side.
	nextSeq map[srcKey]uint64
	// bufs tracks every pooled buffer reference taken for received and
	// partsBy payloads; they move into the Result on completion and are
	// released on re-arm or failure.
	bufs  []*bufpool.Buf
	timer *time.Timer
	boxes map[uint64]bool // boxes used by the current attempt's plan
	done  bool
}

type srcKey struct {
	wireReq uint64
	source  uint64
}

// Master is a master host's shim layer.
type Master struct {
	cfg       MasterConfig
	planner   treeplan.Planner
	srv       *transport.Server
	pool      *transport.Pool
	cancel    context.CancelFunc
	noMigrate map[string]bool

	mu      sync.Mutex
	pending map[pendKey]*Pending
	closed  bool

	bytesIn atomic.Int64
}

type pendKey struct {
	app string
	req uint64
}

// NewMaster starts the master shim's result listener and registers its
// address in the deployment.
func NewMaster(cfg MasterConfig) (*Master, error) {
	if cfg.Deployment == nil {
		return nil, fmt.Errorf("shim: master requires a deployment")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxAttempts > 15 {
		cfg.MaxAttempts = 15
	}
	if cfg.Planner == nil {
		cfg.Planner = treeplan.OnPath{}
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	m := &Master{
		cfg:       cfg,
		planner:   cfg.Planner,
		cancel:    cancel,
		pool:      transport.NewPool(ctx, transport.Options{NIC: cfg.NIC}),
		pending:   make(map[pendKey]*Pending),
		noMigrate: make(map[string]bool, len(cfg.NoMigrateApps)),
	}
	for _, app := range cfg.NoMigrateApps {
		m.noMigrate[app] = true
	}
	// The result listener: every frame lands in handle on its
	// connection's reader goroutine; the transport server owns the accept
	// loop, reader lifecycle, and drain.
	srv, err := transport.Listen(ctx, "127.0.0.1:0",
		func(_ *transport.ServerConn, msg *wire.Msg) { m.handle(msg) },
		transport.ServerOptions{NIC: cfg.NIC})
	if err != nil {
		cancel()
		m.pool.Close()
		return nil, err
	}
	m.srv = srv
	cfg.Deployment.SetResultAddr(cfg.Host.Name, srv.Addr())
	return m, nil
}

// ResultAddr returns the listener address results arrive on.
func (m *Master) ResultAddr() string { return m.srv.Addr() }

// Close stops the shim. Outstanding requests fail with an error.
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pend := make([]*Pending, 0, len(m.pending))
	for _, p := range m.pending {
		pend = append(pend, p)
	}
	m.pending = map[pendKey]*Pending{}
	m.mu.Unlock()
	for _, p := range pend {
		p.fail(fmt.Errorf("shim: master closed"))
	}
	m.cancel()
	m.srv.Close()
	m.pool.Close()
}

// Submit registers a request: it plans the aggregation trees, announces the
// expected source counts to every box involved (§3.2.2 "Partial result
// collection"), and returns a Pending whose channel delivers the result.
// The workers' shims must be told to SendPartials separately (normally by
// the application's sub-requests).
func (m *Master) Submit(app string, req uint64, workers []string, trees int) (*Pending, error) {
	if trees < 1 {
		trees = 1
	}
	if trees > 16 {
		return nil, fmt.Errorf("shim: at most 16 trees, got %d", trees)
	}
	p := &Pending{
		c:           make(chan Result, 1),
		req:         req,
		app:         app,
		workers:     workers,
		trees:       trees,
		partsBy:     make(map[srcKey][][]byte),
		nextSeq:     make(map[srcKey]uint64),
		submittedAt: time.Now(),
	}
	p.C = p.c
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("shim: master closed")
	}
	key := pendKey{app, req}
	if _, dup := m.pending[key]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("shim: request %d already pending", req)
	}
	m.pending[key] = p
	m.mu.Unlock()

	if err := m.arm(p, 0); err != nil {
		// arm may have started the straggler timer before the announce
		// failed: fail the pending first (stopping the timer for good) so
		// the dead request cannot keep redirecting in the background.
		p.fail(err)
		m.remove(p)
		return nil, err
	}
	return p, nil
}

// arm plans an attempt through the configured planner, announces
// expectations to the boxes, and starts the straggler timer. A request
// that completed (or failed) while the attempt was being planned is left
// untouched: arming must never resurrect a finished request's timer.
func (m *Master) arm(p *Pending, attempt int) error {
	trees := make([]treeplan.Tree, p.trees)
	for tr := range trees {
		trees[tr] = m.planner.Plan(m.cfg.Deployment,
			treeplan.NewRequest(p.req, tr, attempt, m.cfg.Host.Name, p.workers))
	}

	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return nil
	}
	oldAttempt, oldBoxes := p.attempt, p.boxes
	p.attempt = attempt
	p.needed = treeplan.TotalFinals(trees)
	p.sourcesDone = 0
	p.received = nil
	// A re-arm abandons the previous attempt's partial deliveries: give
	// their buffers back before dropping the slices.
	for _, b := range p.bufs {
		b.Release()
	}
	p.bufs = nil
	p.partsBy = make(map[srcKey][][]byte)
	p.nextSeq = make(map[srcKey]uint64)
	p.boxes = make(map[uint64]bool)
	for _, t := range trees {
		for id := range t.Expect {
			p.boxes[id] = true
		}
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	if m.cfg.StragglerTimeout > 0 {
		p.timer = time.AfterFunc(m.cfg.StragglerTimeout, func() { m.redirect(p) })
	}
	p.mu.Unlock()

	// A re-arm supersedes the previous attempt's epoch: tell its boxes to
	// discard their partial aggregation state now, instead of letting the
	// buffered partials pin pool buffers until the janitor's idle timeout.
	// Correctness never depends on these cancels landing — the old epoch's
	// wire request id can no longer complete at this master.
	if attempt > 0 && len(oldBoxes) > 0 {
		m.cancelAttempt(p, oldBoxes, oldAttempt)
	}

	for tree := range trees {
		wireReq := cluster.WireReq(p.req, tree, attempt)
		for boxID, count := range trees[tree].Expect {
			box, ok := m.cfg.Deployment.Box(boxID)
			if !ok {
				continue
			}
			err := m.pool.Send(box.Addr, &wire.Msg{
				Type: wire.TExpect, App: p.app, Req: wireReq,
				Payload: wire.EncodeCount(count),
			})
			if err != nil {
				return fmt.Errorf("shim: expect to box %d: %w", boxID, err)
			}
		}
	}
	return nil
}

// redirect advances a pending request to the next recovery attempt: it
// replans around dead boxes and tells every worker shim to resend (§3.1).
// When the attempt budget is exhausted the pending request fails cleanly
// — the error Result is delivered, the request is deregistered, and no
// further straggler timer is armed.
func (m *Master) redirect(p *Pending) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	attempt := p.attempt + 1
	p.mu.Unlock()
	if attempt > m.cfg.MaxAttempts {
		p.fail(fmt.Errorf("shim: request %d failed after %d attempts", p.req, attempt-1))
		m.remove(p)
		return
	}
	obsRedirectsSent.Inc()
	if err := m.arm(p, attempt); err != nil {
		p.fail(err)
		m.remove(p)
		return
	}
	for _, worker := range p.workers {
		addr, ok := m.cfg.Deployment.ControlAddr(worker)
		if !ok {
			continue
		}
		// Redirects are best-effort: a worker shim we cannot reach simply
		// misses this attempt and the straggler timer fires again, but the
		// failure must not be silent.
		if err := m.pool.Send(addr, &wire.Msg{
			Type: wire.TRedirect, App: p.app, Req: p.req,
			Payload: wire.EncodeCount(attempt),
		}); err != nil {
			log.Printf("shim: redirect request %d attempt %d to %s: %v", p.req, attempt, addr, err)
		}
	}
}

// cancelAttempt sends TCancel for every (tree, box) of a superseded
// attempt, best-effort: an unreachable box keeps its stale state until
// the janitor collects it, which costs buffer residency, not
// correctness.
func (m *Master) cancelAttempt(p *Pending, boxes map[uint64]bool, attempt int) {
	for boxID := range boxes {
		box, ok := m.cfg.Deployment.Box(boxID)
		if !ok {
			continue
		}
		for tree := 0; tree < p.trees; tree++ {
			if err := m.pool.Send(box.Addr, &wire.Msg{
				Type: wire.TCancel, App: p.app, Req: cluster.WireReq(p.req, tree, attempt),
			}); err != nil {
				log.Printf("shim: cancel request %d attempt %d at box %d: %v", p.req, attempt, boxID, err)
			}
		}
	}
}

// OnBoxFailure triggers immediate recovery of every pending request whose
// current plan includes the failed box, instead of waiting for the
// straggler timeout. Wire it to a cluster.Monitor.
func (m *Master) OnBoxFailure(boxID uint64) {
	m.mu.Lock()
	var affected []*Pending
	for _, p := range m.pending {
		p.mu.Lock()
		if p.boxes[boxID] && !p.done {
			affected = append(affected, p)
		}
		p.mu.Unlock()
	}
	m.mu.Unlock()
	for _, p := range affected {
		m.redirect(p)
	}
}

// MigrateAway migrates every pending request whose current plan routes
// through the named box onto a freshly planned attempt, and returns how
// many requests it moved. The replanner calls it when a box crosses the
// congestion hysteresis (DESIGN.md §16): the box is already marked Slow
// in the deployment, so the replanned attempt routes around it; the old
// attempt's boxes receive TCancel and drain their partials; and the
// attempt epoch in every wire request id guarantees nothing is lost or
// double-combined — the new attempt is complete on its own, and stale
// frames from the old epoch are dropped by the master's attempt check.
// Applications listed in NoMigrateApps are skipped.
func (m *Master) MigrateAway(boxID uint64) int {
	m.mu.Lock()
	var affected []*Pending
	for _, p := range m.pending {
		if m.noMigrate[p.app] {
			continue
		}
		p.mu.Lock()
		if p.boxes[boxID] && !p.done {
			affected = append(affected, p)
		}
		p.mu.Unlock()
	}
	m.mu.Unlock()
	node := fmt.Sprintf("box:%d", boxID)
	for _, p := range affected {
		start := time.Now()
		m.redirect(p)
		// The migration span lands on the new attempt's trace, so an
		// operator reading /debug/netagg/traces sees which box the
		// request was moved off and when (OPERATIONS.md §9).
		p.mu.Lock()
		attempt := p.attempt
		p.mu.Unlock()
		for tree := 0; tree < p.trees; tree++ {
			obs.DefaultTracer.Record(cluster.WireReq(p.req, tree, attempt), p.app, obs.Span{
				Hop: "migrate", Node: node,
				Start: start.UnixNano(), End: time.Now().UnixNano(),
			})
		}
	}
	return len(affected)
}

func (m *Master) remove(p *Pending) {
	m.mu.Lock()
	delete(m.pending, pendKey{p.app, p.req})
	m.mu.Unlock()
}

// fail delivers an error result once, releasing any partial deliveries
// buffered for the aborted request.
func (p *Pending) fail(err error) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	if p.timer != nil {
		p.timer.Stop()
	}
	for _, b := range p.bufs {
		b.Release()
	}
	p.bufs = nil
	p.received = nil
	p.partsBy = nil
	attempts := p.attempt
	p.mu.Unlock()
	// done flipped under the lock, so exactly one goroutine reaches this
	// send; deliver outside the lock.
	p.c <- Result{Err: err, Attempts: attempts}
}

// ResultBytes reports the total payload bytes the result listener has
// received, for throughput measurements.
func (m *Master) ResultBytes() int64 { return m.bytesIn.Load() }

// handle processes one frame arriving at the result listener: TResult from
// a box, TData/TEnd streams from workers with no on-path box, or TError.
//
//netagg:proto-handler master
func (m *Master) handle(msg *wire.Msg) {
	wire.CheckReceive(wire.RoleMaster, msg)
	// Payloads that get buffered below take the frame's reference via
	// TakeBuf, making this deferred Release a no-op for them; every other
	// path (unknown request, stale attempt, TEnd/TError) recycles here.
	defer msg.Release()
	if msg.Type == wire.TResult || msg.Type == wire.TData {
		m.bytesIn.Add(int64(len(msg.Payload)))
	}
	req, _, attempt := cluster.DecodeWireReq(msg.Req)
	m.mu.Lock()
	p, ok := m.pending[pendKey{msg.App, req}]
	m.mu.Unlock()
	if !ok {
		return // completed or unknown: duplicate delivery from recovery
	}

	p.mu.Lock()
	if p.done || attempt != p.attempt {
		p.mu.Unlock()
		return
	}
	// Same-epoch replay guard: a worker's direct stream numbers its TData
	// frames 0..n-1 and its TEnd n, and a box's TResult arrives as Seq 0,
	// so any frame below the per-source mark is a transport-replay
	// duplicate the attempt check cannot see.
	k := srcKey{msg.Req, msg.Source}
	if msg.Type == wire.TResult || msg.Type == wire.TData || msg.Type == wire.TEnd {
		if msg.Seq < p.nextSeq[k] {
			p.mu.Unlock()
			obsDupAtMaster.Inc()
			return
		}
		p.nextSeq[k] = msg.Seq + 1
	}
	complete := false
	var final *Result // set when this frame finishes the request
	switch msg.Type {
	case wire.TResult:
		// A fully aggregated result from an agg box chain root.
		if len(msg.Payload) > 0 {
			p.received = append(p.received, msg.Payload)
			p.bufs = append(p.bufs, msg.TakeBuf())
		}
		p.sourcesDone++
		complete = p.sourcesDone >= p.needed
	case wire.TData:
		// A chunk from a worker with no on-path box.
		p.partsBy[k] = append(p.partsBy[k], msg.Payload)
		p.bufs = append(p.bufs, msg.TakeBuf())
	case wire.TEnd:
		p.received = append(p.received, p.partsBy[k]...)
		delete(p.partsBy, k)
		p.sourcesDone++
		complete = p.sourcesDone >= p.needed
	case wire.TError:
		final = &Result{Err: fmt.Errorf("shim: aggregation failed: %s", msg.Payload), Attempts: p.attempt}
	default:
		// A frame type this switch does not know must not vanish silently:
		// it means protocol skew between shim and box, which should be
		// diagnosable from the log.
		p.mu.Unlock()
		log.Printf("shim: master dropping unhandled frame type %v for request %d", msg.Type, msg.Req)
		return
	}
	if complete {
		// The buffer references move into the Result; the application
		// releases them (Result.Release) when done.
		final = &Result{Parts: p.received, Attempts: p.attempt, bufs: p.bufs}
		p.bufs = nil
	}
	if final != nil {
		// Flip done under the lock so exactly one frame completes the
		// request, then deliver outside it.
		p.done = true
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	p.mu.Unlock()
	if final != nil {
		m.observeComplete(p, final)
		p.c <- *final
		m.remove(p)
	}
}

// observeComplete records the request's master-side metrics and trace
// spans: result size, the completion span of each tree's trace, and —
// when the worker shims share this process (testbed) — the observed
// per-job aggregation ratio α (received bytes over shim-sent bytes).
func (m *Master) observeComplete(p *Pending, res *Result) {
	now := time.Now().UnixNano()
	var bytes int64
	for _, part := range res.Parts {
		bytes += int64(len(part))
	}
	obsResultBytes.Observe(bytes)
	var sent int64
	for tree := 0; tree < p.trees; tree++ {
		wr := cluster.WireReq(p.req, tree, res.Attempts)
		sent += obs.DefaultTracer.SumBytesOut(wr, "shim.send")
		obs.DefaultTracer.Finish(wr, p.app, obs.Span{
			Hop: "master", Node: m.cfg.Host.Name,
			Start: p.submittedAt.UnixNano(), End: now,
			Parts: len(res.Parts), BytesIn: bytes,
		})
	}
	if sent > 0 && res.Err == nil {
		obsAlphaPct.Observe(bytes * 100 / sent)
	}
}
