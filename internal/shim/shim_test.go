package shim

import (
	"fmt"
	"testing"
	"time"

	"netagg/internal/agg"
	"netagg/internal/cluster"
	"netagg/internal/core"
)

// rig is a complete in-process NetAgg deployment: two racks, one box per
// ToR plus one at the aggregation switch, worker shims on every host, and a
// master shim (the paper's testbed shape, §4.2).
type rig struct {
	dep     *cluster.Deployment
	boxes   []*core.Box
	workers map[string]*Worker
	master  *Master
}

func newRig(t *testing.T, stragglerTimeout time.Duration) *rig {
	t.Helper()
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})

	dep := cluster.NewDeployment()
	dep.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	hosts := []cluster.Host{
		{Name: "w0", Rack: 0, Pod: 0},
		{Name: "w1", Rack: 0, Pod: 0},
		{Name: "w2", Rack: 1, Pod: 0},
		{Name: "w3", Rack: 1, Pod: 0},
	}
	for _, h := range hosts {
		dep.AddHost(h)
	}

	r := &rig{dep: dep, workers: make(map[string]*Worker)}
	for i, sw := range []string{"tor:0", "tor:1", "agg:0"} {
		box, err := core.Start(core.Config{
			ID:        uint64(i+1) << 32,
			Registry:  reg,
			Workers:   2,
			SchedSeed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		r.boxes = append(r.boxes, box)
		dep.AddBox(cluster.BoxInfo{ID: uint64(i+1) << 32, Addr: box.Addr(), Switch: sw})
	}

	for _, h := range hosts {
		w, err := NewWorker(WorkerConfig{Host: h, Deployment: dep})
		if err != nil {
			t.Fatal(err)
		}
		r.workers[h.Name] = w
	}
	master, err := NewMaster(MasterConfig{
		Host:             cluster.Host{Name: "master", Rack: 0, Pod: 0},
		Deployment:       dep,
		StragglerTimeout: stragglerTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.master = master
	t.Cleanup(r.close)
	return r
}

func (r *rig) close() {
	r.master.Close()
	for _, w := range r.workers {
		w.Close()
	}
	for _, b := range r.boxes {
		b.Close()
	}
}

func kvPart(key string, val int64) []byte {
	return agg.EncodeKVs([]agg.KV{{Key: key, Val: val}})
}

// sumResult merges the final parts the master received (the application's
// final aggregation step) and returns the per-key totals.
func sumResult(t *testing.T, res Result) map[string]int64 {
	t.Helper()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	totals := map[string]int64{}
	for _, part := range res.Parts {
		if len(part) == 0 {
			continue
		}
		kvs, err := agg.DecodeKVs(part)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range kvs {
			totals[kv.Key] += kv.Val
		}
	}
	return totals
}

func waitResult2(t *testing.T, p *Pending) Result {
	t.Helper()
	select {
	case res := <-p.C:
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("request did not complete")
		return Result{}
	}
}

func TestEndToEndAggregation(t *testing.T) {
	r := newRig(t, 0)
	workers := []string{"w0", "w1", "w2", "w3"}
	p, err := r.master.Submit("wc", 1, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range workers {
		if err := r.workers[name].SendPartials("wc", 1, i, "master", [][]byte{
			kvPart("word", 10),
			kvPart(fmt.Sprintf("unique-%s", name), 1),
		}, 1); err != nil {
			t.Fatal(err)
		}
	}
	res := waitResult2(t, p)
	totals := sumResult(t, res)
	if totals["word"] != 40 {
		t.Fatalf("word total = %d, want 40", totals["word"])
	}
	if len(totals) != 5 {
		t.Fatalf("expected 5 distinct keys, got %v", totals)
	}
	// A full deployment aggregates everything into a single result.
	if len(res.Parts) != 1 {
		t.Fatalf("parts = %d, want 1 fully aggregated result", len(res.Parts))
	}
}

func TestEndToEndNoBoxes(t *testing.T) {
	// Plain mode: empty deployment of boxes → direct delivery; the master
	// receives every worker's raw parts.
	reg := agg.NewRegistry()
	reg.Register("wc", agg.KVCombiner{Op: agg.OpSum})
	dep := cluster.NewDeployment()
	dep.AddHost(cluster.Host{Name: "master", Rack: 0})
	dep.AddHost(cluster.Host{Name: "w0", Rack: 0})
	dep.AddHost(cluster.Host{Name: "w1", Rack: 1})
	w0, err := NewWorker(WorkerConfig{Host: cluster.Host{Name: "w0", Rack: 0}, Deployment: dep})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := NewWorker(WorkerConfig{Host: cluster.Host{Name: "w1", Rack: 1}, Deployment: dep})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	master, err := NewMaster(MasterConfig{Host: cluster.Host{Name: "master", Rack: 0}, Deployment: dep})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	p, err := master.Submit("wc", 2, []string{"w0", "w1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w0.SendPartials("wc", 2, 0, "master", [][]byte{kvPart("x", 1)}, 1)
	w1.SendPartials("wc", 2, 1, "master", [][]byte{kvPart("x", 2)}, 1)
	res := waitResult2(t, p)
	totals := sumResult(t, res)
	if totals["x"] != 3 {
		t.Fatalf("x total = %d, want 3", totals["x"])
	}
	if len(res.Parts) != 2 {
		t.Fatalf("parts = %d, want 2 raw parts", len(res.Parts))
	}
}

func TestEndToEndMultipleTrees(t *testing.T) {
	r := newRig(t, 0)
	workers := []string{"w0", "w2"}
	p, err := r.master.Submit("wc", 3, workers, 2)
	if err != nil {
		t.Fatal(err)
	}
	parts := [][]byte{kvPart("a", 1), kvPart("b", 2), kvPart("c", 3), kvPart("d", 4)}
	for i, name := range workers {
		if err := r.workers[name].SendPartials("wc", 3, i, "master", parts, 2); err != nil {
			t.Fatal(err)
		}
	}
	res := waitResult2(t, p)
	totals := sumResult(t, res)
	for key, want := range map[string]int64{"a": 2, "b": 4, "c": 6, "d": 8} {
		if totals[key] != want {
			t.Fatalf("%s total = %d, want %d (totals %v)", key, totals[key], want, totals)
		}
	}
}

func TestEndToEndConcurrentRequests(t *testing.T) {
	r := newRig(t, 0)
	workers := []string{"w0", "w1", "w2", "w3"}
	const n = 20
	pendings := make([]*Pending, n)
	for reqID := 0; reqID < n; reqID++ {
		p, err := r.master.Submit("wc", uint64(100+reqID), workers, 1)
		if err != nil {
			t.Fatal(err)
		}
		pendings[reqID] = p
	}
	for reqID := 0; reqID < n; reqID++ {
		for i, name := range workers {
			go r.workers[name].SendPartials("wc", uint64(100+reqID), i, "master",
				[][]byte{kvPart("k", int64(reqID))}, 1)
		}
	}
	for reqID := 0; reqID < n; reqID++ {
		totals := sumResult(t, waitResult2(t, pendings[reqID]))
		if want := int64(reqID) * 4; totals["k"] != want {
			t.Fatalf("request %d: k = %d, want %d", reqID, totals["k"], want)
		}
	}
}

// Failure recovery: kill a box mid-deployment; the straggler timer replans
// around it and the workers resend (§3.1).
func TestEndToEndBoxFailureRecovery(t *testing.T) {
	r := newRig(t, 400*time.Millisecond)
	workers := []string{"w2", "w3"} // rack 1: chain via tor:1 → agg:0 → tor:0

	// Kill the aggregation-switch box and mark it dead only after workers
	// already sent (simulating a crash between planning and aggregation).
	p, err := r.master.Submit("wc", 4, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.boxes[2].Close() // agg:0 box
	for i, name := range workers {
		r.workers[name].SendPartials("wc", 4, i, "master", [][]byte{kvPart("v", 5)}, 1)
	}
	// The first attempt stalls; the monitor would normally mark the box
	// dead — do it manually here, then let the straggler timer redirect.
	r.dep.MarkDead(3 << 32)

	res := waitResult2(t, p)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Attempts == 0 {
		t.Fatal("expected at least one recovery attempt")
	}
	totals := sumResult(t, res)
	if totals["v"] != 10 {
		t.Fatalf("v total = %d, want 10 (no loss, no duplication)", totals["v"])
	}
}

// Straggler handling: recovery must not duplicate data when the first
// attempt eventually completes too (the master ignores stale attempts).
func TestEndToEndStaleAttemptIgnored(t *testing.T) {
	r := newRig(t, 150*time.Millisecond)
	workers := []string{"w0", "w1"}
	p, err := r.master.Submit("wc", 5, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	// First worker sends immediately; the second is a straggler beyond the
	// timeout, so attempt 1 fires and both resend.
	r.workers["w0"].SendPartials("wc", 5, 0, "master", [][]byte{kvPart("s", 1)}, 1)
	time.Sleep(300 * time.Millisecond)
	r.workers["w1"].SendPartials("wc", 5, 1, "master", [][]byte{kvPart("s", 2)}, 1)

	res := waitResult2(t, p)
	totals := sumResult(t, res)
	if totals["s"] != 3 {
		t.Fatalf("s total = %d, want exactly 3 (stale attempts ignored)", totals["s"])
	}
}

func TestSubmitDuplicateRejected(t *testing.T) {
	r := newRig(t, 0)
	if _, err := r.master.Submit("wc", 6, []string{"w0"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.master.Submit("wc", 6, []string{"w0"}, 1); err == nil {
		t.Fatal("duplicate request id must be rejected")
	}
}

func TestMasterCloseFailsPending(t *testing.T) {
	r := newRig(t, 0)
	p, err := r.master.Submit("wc", 7, []string{"w0", "w1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.master.Close()
	res := waitResult2(t, p)
	if res.Err == nil {
		t.Fatal("pending request must fail on master close")
	}
}
