package shim

import (
	"testing"

	"netagg/internal/cluster"
	"netagg/internal/wire"
)

// newDirectMaster builds a master shim over a box-less deployment: both
// workers stream straight to the result listener, so handle() can be
// driven directly with constructed frames.
func newDirectMaster(t *testing.T) (*Master, *Pending) {
	t.Helper()
	dep := cluster.NewDeployment()
	dep.AddHost(cluster.Host{Name: "master", Rack: 0, Pod: 0})
	dep.AddHost(cluster.Host{Name: "w0", Rack: 0, Pod: 0})
	dep.AddHost(cluster.Host{Name: "w1", Rack: 0, Pod: 0})
	m, err := NewMaster(MasterConfig{Host: cluster.Host{Name: "master"}, Deployment: dep})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	p, err := m.Submit("app", 7, []string{"w0", "w1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func (p *Pending) snapshot() (sourcesDone int, received [][]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sourcesDone, append([][]byte(nil), p.received...)
}

// TestMasterDropsSameAttemptReplays proves the per-source sequence mark:
// the attempt guard passes a transport-replayed frame (same epoch), so
// without the mark a replayed TData would duplicate its part and a
// replayed TEnd/TResult would double-count sourcesDone.
func TestMasterDropsSameAttemptReplays(t *testing.T) {
	m, p := newDirectMaster(t)
	wireReq := cluster.WireReq(7, 0, 0)
	frame := func(typ wire.Type, source, seq uint64, payload string) *wire.Msg {
		return &wire.Msg{Type: typ, App: "app", Req: wireReq, Source: source, Seq: seq, Payload: []byte(payload)}
	}

	// A worker's direct stream, with every frame replayed once — the
	// shape a transport reconnect produces when the replay window
	// rewrites the tail of the connection.
	m.handle(frame(wire.TData, 0, 0, "a"))
	m.handle(frame(wire.TData, 0, 0, "a")) // replay: must not duplicate the part
	m.handle(frame(wire.TData, 0, 1, "b"))
	m.handle(frame(wire.TEnd, 0, 2, ""))
	m.handle(frame(wire.TEnd, 0, 2, "")) // replay: must not double-count the source

	done, recv := p.snapshot()
	if done != 1 {
		t.Fatalf("sourcesDone = %d after one finished stream (replayed TEnd double-counted), want 1", done)
	}
	if len(recv) != 2 || string(recv[0]) != "a" || string(recv[1]) != "b" {
		t.Fatalf("received = %q, want [a b]", recv)
	}

	// A box's TResult arrives as Seq 0; its replay must be dropped too,
	// and the clean completion below must deliver exactly one result.
	m.handle(frame(wire.TResult, 42, 0, "r"))
	m.handle(frame(wire.TResult, 42, 0, "r")) // replay
	res := <-p.C
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Parts) != 3 {
		t.Fatalf("result has %d parts (%q), want 3: replayed TResult double-counted", len(res.Parts), res.Parts)
	}
	select {
	case extra := <-p.C:
		t.Fatalf("second result delivered: %+v", extra)
	default:
	}
}

// TestMasterReplayMarksResetOnRearm proves a new attempt starts with
// fresh sequence marks: the epoch changes, so frame numbering restarts
// and stale marks would wrongly drop the new attempt's stream.
func TestMasterReplayMarksResetOnRearm(t *testing.T) {
	m, p := newDirectMaster(t)
	m.handle(&wire.Msg{Type: wire.TData, App: "app", Req: cluster.WireReq(7, 0, 0),
		Source: 0, Seq: 0, Payload: []byte("old")})
	if err := m.arm(p, 1); err != nil {
		t.Fatal(err)
	}
	wireReq := cluster.WireReq(7, 0, 1)
	m.handle(&wire.Msg{Type: wire.TData, App: "app", Req: wireReq,
		Source: 0, Seq: 0, Payload: []byte("new")})
	m.handle(&wire.Msg{Type: wire.TEnd, App: "app", Req: wireReq, Source: 0, Seq: 1})

	done, recv := p.snapshot()
	if done != 1 || len(recv) != 1 || string(recv[0]) != "new" {
		t.Fatalf("after re-arm: sourcesDone=%d received=%q, want 1 stream delivering [new]", done, recv)
	}
}
