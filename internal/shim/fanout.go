package shim

import (
	"fmt"
	"sort"

	"netagg/internal/cluster"
	"netagg/internal/treeplan"
	"netagg/internal/wire"
)

// Fanout distributes one payload to many workers through the agg box
// overlay — the paper's proposed one-to-many extension (§5): instead of the
// master sending a copy per worker over its own uplink, a single copy
// travels to each on-path box, which replicates it towards its subtree.
// targets maps each worker host name to the listener address the payload
// should be delivered to (as a TData frame carrying app/req). Workers with
// no on-path box receive their copy directly from the master.
func (m *Master) Fanout(app string, req uint64, inner []byte, targets map[string]string) error {
	dep := m.cfg.Deployment
	workers := make([]string, 0, len(targets))
	for worker := range targets {
		if _, ok := dep.Host(worker); !ok {
			return fmt.Errorf("shim: unknown worker host %q", worker)
		}
		workers = append(workers, worker)
	}
	sort.Strings(workers)
	// Fanout reuses the aggregation planner in reverse: the chain a
	// worker's partials would traverse towards the master, flipped, is
	// the master's replication route towards that worker.
	plan := m.planner.Plan(dep, treeplan.NewRequest(req, 0, 0, m.cfg.Host.Name, workers))
	byFirst := make(map[string][][]string)
	for _, worker := range workers {
		addr := targets[worker]
		chain := plan.Routes[worker]
		route := make([]string, 0, len(chain)+1)
		for i := len(chain) - 1; i >= 0; i-- {
			route = append(route, chain[i].Addr)
		}
		route = append(route, addr)
		byFirst[route[0]] = append(byFirst[route[0]], route[1:])
	}
	for first, rests := range byFirst {
		var direct bool
		var onward [][]string
		for _, rest := range rests {
			if len(rest) == 0 {
				direct = true
			} else {
				onward = append(onward, rest)
			}
		}
		if direct {
			// The first hop is the target itself (no boxes on the path).
			if err := m.pool.Send(first, &wire.Msg{
				Type: wire.TData, App: app, Req: cluster.WireReq(req, 0, 0), Payload: inner,
			}); err != nil {
				return err
			}
		}
		if len(onward) > 0 {
			f := wire.FanoutPayload{Inner: inner, Routes: onward}
			if err := m.pool.Send(first, &wire.Msg{
				Type: wire.TFanout, App: app, Req: cluster.WireReq(req, 0, 0), Payload: f.Encode(),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
