package shim

import "netagg/internal/obs"

// Registry handles for the shim layers (DESIGN.md §11). Resolved once
// at package init.
var (
	// obsRedirectsSent counts recovery attempts the master shim pushed
	// to worker shims (§3.1 straggler/failure handling).
	obsRedirectsSent = obs.C("shim.redirects_sent")
	// obsRedirectsApplied counts redirects worker shims actually
	// replayed (duplicates and stale attempts are dropped).
	obsRedirectsApplied = obs.C("shim.redirects_applied")
	// obsDupAtMaster counts transport-replay duplicates the master shim
	// dropped via the per-source sequence mark (same-epoch replays the
	// attempt guard cannot see).
	obsDupAtMaster = obs.C("shim.dup_frames_dropped")
	// obsPartialBytes is the size distribution of the partial results
	// workers hand to their shim (the input side of Fig 16's traffic
	// reduction).
	obsPartialBytes = obs.H("shim.partial_bytes")
	// obsResultBytes is the per-job aggregated result size arriving at
	// the master (the output side of Fig 16).
	obsResultBytes = obs.H("shim.result_bytes")
	// obsAlphaPct is the observed per-job aggregation ratio α as a
	// percentage: master bytes in over worker-shim bytes out. Only
	// observable when both shims share the process (the testbed); the
	// paper treats α as a workload constant (§4.1), this measures it.
	obsAlphaPct = obs.H("shim.alpha_pct")
)
