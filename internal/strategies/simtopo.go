package strategies

import (
	"fmt"
	"strconv"

	"netagg/internal/topology"
	"netagg/internal/treeplan"
)

// simTopo adapts the simulated network to treeplan.Topology so the same
// planners that drive the live fabric's shims plan simnet trees. Node
// names are decimal NodeIDs and a box's planner ID is its NodeID — both
// conversions are pure (no per-topology name tables), so planning a job
// allocates nothing beyond the plan itself.
type simTopo struct {
	topo *topology.Topology
	// slow marks boxes the dynamic-tree strategy currently considers
	// congested; planners see them as Box.Slow and route around them
	// where the switch has a cold alternative. Nil for static planning.
	slow map[topology.NodeID]bool
}

// simNodeName renders a simulated node as a planner host name.
func simNodeName(id topology.NodeID) string { return strconv.Itoa(int(id)) }

// simNodeID parses a planner host name back to a simulated node.
func simNodeID(name string) topology.NodeID {
	n, err := strconv.Atoi(name)
	if err != nil {
		panic(fmt.Sprintf("strategies: non-simnet node name %q reached the planner adapter", name))
	}
	return topology.NodeID(n)
}

// PathSwitches implements treeplan.Topology: the switches on the ECMP
// path the hash pins between worker and master.
func (s simTopo) PathSwitches(worker, master string, hash uint64) []string {
	path := s.topo.PathNodes(simNodeID(worker), simNodeID(master), hash)
	switches := s.topo.SwitchesOn(path)
	out := make([]string, len(switches))
	for i, sw := range switches {
		out[i] = simNodeName(sw)
	}
	return out
}

// BoxesAt implements treeplan.Topology. Simulated boxes cannot die, so
// none are flagged Dead; failure experiments run on the live fabric.
// Boxes the dynamic-tree strategy has marked congested carry Slow.
func (s simTopo) BoxesAt(sw string) []treeplan.Box {
	boxes := s.topo.BoxesAt(simNodeID(sw))
	out := make([]treeplan.Box, len(boxes))
	for i, b := range boxes {
		out[i] = treeplan.Box{ID: uint64(b), Switch: sw, Slow: s.slow[b]}
	}
	return out
}
