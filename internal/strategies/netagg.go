package strategies

import (
	"fmt"
	"math"

	"netagg/internal/simnet"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
	"netagg/internal/workload"
)

// NetAgg is the paper's on-path aggregation strategy (§2.3, §3.1): each
// worker's partial results are redirected to the first agg box on the
// network path towards the master; boxes chain along the path, each
// aggregating the data of the workers beneath it, and the box nearest the
// master delivers the fully aggregated result. All ECMP decisions of one
// job use the same hash so its flows converge on the same boxes; with
// multiple boxes per switch, the job hash also selects the box (scale-out);
// with Trees > 1, every worker partitions its partial results across
// multiple aggregation trees that take different network paths (§3.1
// "Multiple aggregation trees per application").
type NetAgg struct {
	// Trees is the number of concurrent aggregation trees per job; 0 or 1
	// means a single tree.
	Trees int
	// Mode selects the reduction semantics; the zero value is the paper's
	// per-hop model.
	Mode ReduceMode
	// Planner chooses the agg box at each equipped switch (nil =
	// treeplan.OnPath, the paper's hash selection). The same planner
	// implementations drive the live fabric's shims, so planner
	// experiments run unchanged in simulation and testbed.
	Planner treeplan.Planner
}

// Name implements Strategy.
func (n NetAgg) Name() string {
	if n.Trees > 1 {
		return fmt.Sprintf("netagg-%dtrees", n.Trees)
	}
	return "netagg"
}

// boxNode accumulates the per-job state of one agg box in one tree.
type boxNode struct {
	box       topology.NodeID
	inputs    []simnet.FlowID
	boxIns    []*boxNode      // upstream boxes feeding this one
	dataBits  float64         // original worker data arriving here directly
	next      topology.NodeID // downstream box, or the master
	nextIsBox bool
	emitted   bool
	out       simnet.FlowID
}

// AddJob implements Strategy.
func (n NetAgg) AddJob(net *simnet.Network, job *workload.Job, alpha float64) JobFlows {
	trees := n.Trees
	if trees < 1 {
		trees = 1
	}
	var jf JobFlows
	for tr := 0; tr < trees; tr++ {
		n.addTree(net, simTopo{topo: net.Topo.T}, job, alpha, tr, trees, 0, &jf)
	}
	return jf
}

// addTree plans and emits the flows of one aggregation tree. view is the
// planner's topology (a congestion-marked view during dynamic-tree
// migration; the plain topology otherwise), startAt floors every flow's
// start time (non-zero for mid-run migration resends, where the workers
// replay their buffered partials from the current simulated time), and
// the boxes the tree routed through are returned in deterministic
// creation order so a dynamic strategy knows which jobs a congested box
// affects.
func (n NetAgg) addTree(net *simnet.Network, view treeplan.Topology, job *workload.Job, alpha float64, tree, trees int, startAt float64, jf *JobFlows) []topology.NodeID {
	topo := net.Topo.T
	h := jobHash(job.ID, tree)

	// The tree's box routes come from the control plane: the planner
	// walks each worker's path and picks this job's box at every
	// equipped switch. The job hash doubles as Request.Hash so the
	// planner's box choices stay aligned with the job's ECMP decisions.
	planner := n.Planner
	if planner == nil {
		planner = treeplan.OnPath{}
	}
	workers := make([]string, len(job.Workers))
	for i, w := range job.Workers {
		workers[i] = simNodeName(w)
	}
	planned := planner.Plan(view, treeplan.Request{
		Req: uint64(job.ID), Tree: tree, Hash: h,
		Master:  simNodeName(job.Master),
		Workers: workers,
	})

	nodes := make(map[topology.NodeID]*boxNode) // keyed by box
	var order []*boxNode                        // creation order: deterministic (follows job.Workers)
	getNode := func(box topology.NodeID) *boxNode {
		if bn, ok := nodes[box]; ok {
			return bn
		}
		bn := &boxNode{box: box, next: -1}
		nodes[box] = bn
		order = append(order, bn)
		return bn
	}

	for i, w := range job.Workers {
		bits := job.Bits[i] / float64(trees)
		start := math.Max(job.Delay[i], startAt)
		route := planned.Routes[workers[i]]
		var chain []topology.NodeID // boxes on the path, in order
		for _, b := range route {
			chain = append(chain, topology.NodeID(b.ID))
		}
		// The request hash h selects which boxes form the tree; the
		// *transport* of each worker's stream to its first box uses the
		// worker's own ECMP hash, so streams converging on one box still
		// spread over the equal-cost paths below it (§3.1 requires the data
		// to traverse the same agg boxes, not the same links).
		wh := workerHash(job.ID, i)
		if job.Delay[i] > 0 {
			// Straggler bypass (§3.1 "Handling stragglers"): boxes
			// aggregate the results that are available; a late worker's
			// data is sent directly to the master instead of stalling the
			// whole aggregation tree.
			chain = nil
		}
		if len(chain) == 0 {
			// No box on the path: the shim sends directly to the master.
			id := net.AddFlowOnPath(w, job.Master, wh, simnet.FlowSpec{
				Bits:  bits,
				Start: start,
				Class: simnet.ClassAggregation,
				Job:   job.ID,
				Final: true,
			})
			jf.All = append(jf.All, id)
			jf.Finals = append(jf.Finals, id)
			continue
		}
		// Worker flow to the first on-path box.
		first := getNode(chain[0])
		id := net.AddFlowOnPath(w, chain[0], wh, simnet.FlowSpec{
			Bits:  bits,
			Start: start,
			Class: simnet.ClassAggregation,
			Job:   job.ID,
		})
		jf.All = append(jf.All, id)
		first.inputs = append(first.inputs, id)
		first.dataBits += bits
		// Record the downstream chain. Paths of one job converge, so a box's
		// successor is the same on every worker path through it.
		for k, box := range chain {
			bn := getNode(box)
			var next topology.NodeID
			nextIsBox := false
			if k+1 < len(chain) {
				next = chain[k+1]
				nextIsBox = true
			} else {
				next = job.Master
			}
			if bn.next == -1 {
				bn.next = next
				bn.nextIsBox = nextIsBox
			} else if bn.next != next {
				panic(fmt.Sprintf("strategies: job %d box %s has diverging successors %d and %d",
					job.ID, topo.Node(box).Name, bn.next, next))
			}
		}
	}

	// Wire box-to-box dependencies. Iterate in creation order, not map
	// order: boxIns order determines flow creation order and the float
	// summation order of arriving bits, both of which must reproduce
	// bit-for-bit across runs.
	for _, bn := range order {
		if bn.nextIsBox {
			down := nodes[bn.next]
			down.boxIns = append(down.boxIns, bn)
		}
	}

	// Emit box output flows bottom-up. emit returns a pair of totals via
	// closure state: the raw worker data beneath the box (for the
	// of-original semantics) and the bits actually entering the box (for the
	// per-hop semantics); the output flow is sized from whichever the mode
	// selects.
	var emit func(bn *boxNode) (raw, arriving float64)
	emit = func(bn *boxNode) (float64, float64) {
		if bn.emitted {
			panic("strategies: aggregation graph has a cycle")
		}
		bn.emitted = true
		raw := bn.dataBits
		arriving := bn.dataBits
		inputs := append([]simnet.FlowID(nil), bn.inputs...)
		for _, up := range bn.boxIns {
			upRaw, _ := emitOnce(up, emit)
			raw += upRaw
			arriving += net.Sim.FlowSpecOf(up.out).Bits
			inputs = append(inputs, up.out)
		}
		streams := len(bn.inputs) + len(bn.boxIns)
		merged := arriving
		if n.Mode == ReduceOfOriginal {
			merged = raw
		}
		bits := aggOutput(alpha, streams, merged, arriving)
		bn.out = net.AddFlowOnPath(bn.box, bn.next, h, simnet.FlowSpec{
			Bits:   bits,
			Inputs: inputs,
			Start:  startAt,
			Class:  simnet.ClassAggregation,
			Job:    job.ID,
			Final:  !bn.nextIsBox,
		})
		jf.All = append(jf.All, bn.out)
		if !bn.nextIsBox {
			jf.Finals = append(jf.Finals, bn.out)
		}
		return raw, arriving
	}
	for _, bn := range order {
		if !bn.nextIsBox && !bn.emitted {
			emit(bn)
		}
	}
	// Every box must have been reached from a master-facing root.
	for _, bn := range order {
		if !bn.emitted {
			panic("strategies: orphaned agg box in aggregation tree")
		}
	}
	boxes := make([]topology.NodeID, len(order))
	for i, bn := range order {
		boxes[i] = bn.box
	}
	return boxes
}

// emitOnce guards against double emission when two boxes share an upstream
// (cannot happen with converging paths, but cheap to enforce).
func emitOnce(bn *boxNode, emit func(*boxNode) (float64, float64)) (float64, float64) {
	if bn.emitted {
		panic("strategies: box feeds two downstream boxes")
	}
	return emit(bn)
}
