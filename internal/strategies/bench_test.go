package strategies

import (
	"testing"

	"netagg/internal/simnet"
	"netagg/internal/topology"
)

// benchDynScenario is the benchmark twin of runDynScenario: one
// 16-worker cross-rack job, a 32-burner congestion burst per hot box at
// t=2ms, run under the static or the dynamic strategy. It returns the
// job's flow count so the compiler cannot discard the run.
func benchDynScenario(b *testing.B, dynamic bool) int {
	b.Helper()
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		b.Fatal(err)
	}
	spec := DefaultBoxSpec()
	spec.PerSwitch = 2
	boxes := DeployTiers(topo, TierAll, spec)
	var hot []topology.NodeID
	for i := 0; i < len(boxes); i += spec.PerSwitch {
		hot = append(hot, boxes[i])
	}
	job := crossRackJob(topo, 4, 4, 4e7)
	net := simnet.NewNetwork(topo)
	burnBoxes(net, topo, hot, 32, spec.ProcRate, 0.002)

	var strat Strategy = NetAgg{}
	if dynamic {
		strat = &DynamicNetAgg{Interval: 0.002, Policy: dynPolicy()}
	}
	jf := strat.AddJob(net, job, 0.1)
	net.Sim.Run()
	n := len(jf.All)
	if jf.Extra != nil {
		n += len(jf.Extra.All)
	}
	return n
}

// BenchmarkReplanStatic is the baseline: the same churn scenario without
// replanning — the cost of simulating the congested run itself.
func BenchmarkReplanStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if benchDynScenario(b, false) == 0 {
			b.Fatal("static scenario planned no flows")
		}
	}
}

// BenchmarkReplanDynamic measures the dynamic-tree machinery end to end:
// tick timers, hysteresis scoring, truncation, and the migration
// re-plan/re-send, on top of the simulation the static baseline prices.
func BenchmarkReplanDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if benchDynScenario(b, true) == 0 {
			b.Fatal("dynamic scenario planned no flows")
		}
	}
}
