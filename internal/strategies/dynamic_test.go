package strategies

import (
	"testing"

	"netagg/internal/simnet"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
)

// dynTopo builds a small Clos with two boxes per switch so migration has
// a cold alternative at every hop, and returns the per-switch-first
// ("hot") boxes.
func dynTopo(t *testing.T) (*topology.Topology, []topology.NodeID, BoxSpec) {
	t.Helper()
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultBoxSpec()
	spec.PerSwitch = 2
	boxes := DeployTiers(topo, TierAll, spec)
	var hot []topology.NodeID
	for i := 0; i < len(boxes); i += spec.PerSwitch {
		hot = append(hot, boxes[i])
	}
	return topo, hot, spec
}

// burnBoxes injects burner flows onto each box's processing resource at
// time at, modelling a background-load burst the t=0 plan cannot see.
func burnBoxes(net *simnet.Network, topo *topology.Topology, boxes []topology.NodeID, count int, bits, at float64) {
	net.Sim.At(at, func() {
		for i, b := range boxes {
			sw := topo.Node(b).Attached
			for k := 0; k < count; k++ {
				h := topology.FlowHash(0xB0B0, uint64(i)+1, uint64(k)+1)
				net.AddFlowOnPath(sw, b, h, simnet.FlowSpec{
					Bits:  bits,
					Start: at,
					Class: simnet.ClassBackground,
					Job:   -1,
				})
			}
		}
	})
}

// dynPolicy is the test hysteresis: a box is hot at ≥24 concurrent flows
// on its processing resource, cold again at ≤8, after 2 ticks each way.
func dynPolicy() treeplan.ReplanPolicy {
	return treeplan.ReplanPolicy{HotLoadUs: 24000, ColdLoadUs: 8000, HotStreak: 2, CooldownTicks: 20}
}

// runDynScenario runs one job under congestion churn: burners land on
// the hot boxes shortly after the job starts. It returns the job
// completion time and the migration count (0 for the static strategy).
func runDynScenario(t *testing.T, dynamic bool) (float64, int) {
	t.Helper()
	topo, hot, spec := dynTopo(t)
	job := crossRackJob(topo, 4, 4, 4e7)
	net := simnet.NewNetwork(topo)
	// 32 burners per hot box from t=0.002, each sized to outlast the job
	// even at a full share of the box's processing rate.
	burnBoxes(net, topo, hot, 32, spec.ProcRate, 0.002)

	var strat Strategy = NetAgg{}
	var dyn *DynamicNetAgg
	if dynamic {
		dyn = &DynamicNetAgg{Interval: 0.002, Policy: dynPolicy()}
		strat = dyn
	}
	jf := strat.AddJob(net, job, 0.1)
	net.Sim.Run()

	end := 0.0
	finals := jf.Finals
	if jf.Extra != nil {
		finals = append(finals, jf.Extra.Finals...)
	}
	for _, id := range finals {
		if net.Sim.FlowTruncated(id) {
			continue
		}
		if e := net.Sim.FlowEnd(id); e > end {
			end = e
		}
	}
	migrations := 0
	if dyn != nil {
		migrations = dyn.Migrations
	}
	return end, migrations
}

// TestDynamicNetAggMigratesUnderChurn pins the tentpole behaviour: under
// a mid-job congestion burst the dynamic strategy migrates at least one
// subtree and completes the job strictly faster than static NetAgg,
// which stays pinned to the congested boxes.
func TestDynamicNetAggMigratesUnderChurn(t *testing.T) {
	staticEnd, _ := runDynScenario(t, false)
	dynEnd, migrations := runDynScenario(t, true)
	if migrations == 0 {
		t.Fatalf("dynamic strategy never migrated despite the congestion burst")
	}
	if dynEnd >= staticEnd {
		t.Fatalf("dynamic job end %g not better than static %g (migrations=%d)",
			dynEnd, staticEnd, migrations)
	}
	t.Logf("static=%gs dynamic=%gs migrations=%d", staticEnd, dynEnd, migrations)
}

// TestDynamicNetAggQuietNoMigration verifies the hysteresis holds under
// normal load: with no congestion burst, the dynamic strategy plans the
// same flows as static NetAgg, never migrates, and matches its timing
// exactly.
func TestDynamicNetAggQuietNoMigration(t *testing.T) {
	topo1, _, _ := dynTopo(t)
	job1 := crossRackJob(topo1, 4, 4, 4e7)
	net1 := simnet.NewNetwork(topo1)
	jf1 := NetAgg{}.AddJob(net1, job1, 0.1)
	net1.Sim.Run()

	topo2, _, _ := dynTopo(t)
	job2 := crossRackJob(topo2, 4, 4, 4e7)
	net2 := simnet.NewNetwork(topo2)
	dyn := &DynamicNetAgg{Interval: 0.002, Policy: dynPolicy()}
	jf2 := dyn.AddJob(net2, job2, 0.1)
	net2.Sim.Run()

	if dyn.Migrations != 0 {
		t.Fatalf("quiet run migrated %d times", dyn.Migrations)
	}
	if len(jf1.All) != len(jf2.All) {
		t.Fatalf("flow counts differ: static %d, dynamic %d", len(jf1.All), len(jf2.All))
	}
	for i := range jf1.All {
		e1, e2 := net1.Sim.FlowEnd(jf1.All[i]), net2.Sim.FlowEnd(jf2.All[i])
		if e1 != e2 {
			t.Fatalf("flow %d end differs: static %g, dynamic %g", i, e1, e2)
		}
	}
}

// TestDynamicNetAggDeterministic pins byte-identical repeatability of a
// run with migrations — timers, truncation, and re-planning must all be
// deterministic.
func TestDynamicNetAggDeterministic(t *testing.T) {
	end1, mig1 := runDynScenario(t, true)
	end2, mig2 := runDynScenario(t, true)
	if end1 != end2 || mig1 != mig2 {
		t.Fatalf("dynamic runs diverge: (%g, %d) vs (%g, %d)", end1, mig1, end2, mig2)
	}
}
