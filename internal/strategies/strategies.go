// Package strategies translates partition/aggregation jobs into simulator
// flows for each of the data aggregation strategies the paper compares
// (§2.2-2.3, §4.1): no aggregation (direct), rack-level aggregation, d-ary
// edge trees (binary d=2 and chain d=1), and NetAgg's on-path aggregation
// via agg boxes.
//
// Two aggregation size semantics are supported (ReduceMode):
//
//   - ReducePerHop (default, matching the paper): every aggregation point
//     forwards α times its input ("only a fraction of the incoming traffic
//     is forwarded at each hop", §1). Reduction compounds along multi-hop
//     aggregation trees, which models strongly reducible functions such as
//     top-k, max and count whose output size does not grow with the number
//     of inputs merged.
//
//   - ReduceOfOriginal (ablation): aggregating partial results that together
//     represent original worker data of D bits yields α·D bits regardless of
//     hop count, so the master receives the same α·ΣD under every strategy.
//     This conservation-consistent model suits key/value aggregations over
//     disjoint key ranges where merging cannot reduce below α of the raw
//     data.
package strategies

import (
	"fmt"

	"netagg/internal/simnet"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

// ReduceMode selects how the output ratio α is applied along multi-hop
// aggregation trees (see the package comment). In both modes, reduction
// only happens where at least two partial-result streams actually merge: a
// leaf sends its raw partial result (workers have already combined locally,
// like Hadoop map-side combiners), and an aggregation point with a single
// input forwards it unchanged.
type ReduceMode int

const (
	// ReducePerHop applies α to the merged input of every aggregation point.
	ReducePerHop ReduceMode = iota
	// ReduceOfOriginal applies α to the original worker data represented.
	ReduceOfOriginal
)

// aggOutput sizes the output of an aggregation point: streams is the number
// of partial-result streams merged (own data counts as one), merged the
// total size by the mode's accounting, and passthrough the size if no real
// merge happens.
func aggOutput(alpha float64, streams int, merged, passthrough float64) float64 {
	if streams >= 2 {
		return alpha * merged
	}
	return passthrough
}

// JobFlows records the simulator flows created for one job.
type JobFlows struct {
	// All lists every flow of the job.
	All []simnet.FlowID
	// Finals lists the flows that deliver results to the master; the job
	// completes when the last of them ends.
	Finals []simnet.FlowID
	// Extra, when non-nil, collects flows a dynamic strategy adds after
	// the build phase (mid-run migration resends). It is a pointer because
	// JobFlows is copied by value into the experiment driver before the
	// simulation runs: the strategy appends through the shared ExtraFlows
	// as its timers fire, and the driver folds them in afterwards.
	Extra *ExtraFlows
}

// ExtraFlows holds flows created mid-run for a job (see JobFlows.Extra).
type ExtraFlows struct {
	// All lists every mid-run flow of the job.
	All []simnet.FlowID
	// Finals lists the mid-run flows that deliver results to the master.
	Finals []simnet.FlowID
}

// Strategy adds the flows of one job to a simulation.
type Strategy interface {
	// Name identifies the strategy in experiment output ("rack", "binary",
	// "chain", "netagg", "direct").
	Name() string
	// AddJob adds the job's flows to the network with output ratio alpha.
	AddJob(net *simnet.Network, job *workload.Job, alpha float64) JobFlows
}

// jobHash derives the per-job (and per-tree) hash used for ECMP decisions
// and agg box selection, so all partial results of a request traverse the
// same boxes (§3.1).
func jobHash(jobID, tree int) uint64 {
	return topology.FlowHash(0xA66, uint64(jobID)+1, uint64(tree)+1)
}

// workerHash gives each worker flow of a non-NetAgg strategy its own ECMP
// hash, modelling independent TCP connections.
func workerHash(jobID, worker int) uint64 {
	return topology.FlowHash(0x3E7, uint64(jobID)+1, uint64(worker)+1)
}

// Direct sends every partial result straight to the master with no
// aggregation anywhere.
type Direct struct{}

// Name implements Strategy.
func (Direct) Name() string { return "direct" }

// AddJob implements Strategy.
func (Direct) AddJob(net *simnet.Network, job *workload.Job, alpha float64) JobFlows {
	var jf JobFlows
	for i, w := range job.Workers {
		id := net.AddFlowOnPath(w, job.Master, workerHash(job.ID, i), simnet.FlowSpec{
			Bits:  job.Bits[i],
			Start: job.Delay[i],
			Class: simnet.ClassAggregation,
			Job:   job.ID,
			Final: true,
		})
		jf.All = append(jf.All, id)
		jf.Finals = append(jf.Finals, id)
	}
	return jf
}

// stragglerBypass sends delayed workers' partial results directly to the
// master (§3.1: applications' straggler handling lets the aggregation
// proceed over available results while late data goes straight to the
// consumer). It returns the indices of on-time workers.
func stragglerBypass(net *simnet.Network, job *workload.Job, jf *JobFlows) []int {
	onTime := make([]int, 0, len(job.Workers))
	for i := range job.Workers {
		if job.Delay[i] <= 0 {
			onTime = append(onTime, i)
			continue
		}
		id := net.AddFlowOnPath(job.Workers[i], job.Master, workerHash(job.ID, i), simnet.FlowSpec{
			Bits:  job.Bits[i],
			Start: job.Delay[i],
			Class: simnet.ClassAggregation,
			Job:   job.ID,
			Final: true,
		})
		jf.All = append(jf.All, id)
		jf.Finals = append(jf.Finals, id)
	}
	return onTime
}

// Rack is rack-level aggregation (§2.2): one worker per rack acts as the
// aggregator, receives the partial results of its rack-mates, and sends the
// aggregated result to the master.
type Rack struct{}

// Name implements Strategy.
func (Rack) Name() string { return "rack" }

// AddJob implements Strategy.
func (Rack) AddJob(net *simnet.Network, job *workload.Job, alpha float64) JobFlows {
	var jf JobFlows
	topo := net.Topo.T
	onTime := stragglerBypass(net, job, &jf)
	groups, order := groupByRack(topo, job.Workers, onTime)
	for _, rack := range order {
		idxs := groups[rack]
		aggregator := job.Workers[idxs[0]]
		var inputs []simnet.FlowID
		var rackBits, aggOwn float64
		for _, i := range idxs {
			w := job.Workers[i]
			rackBits += job.Bits[i]
			if w == aggregator {
				// The aggregator's own partial result needs no network flow.
				aggOwn += job.Bits[i]
				continue
			}
			id := net.AddFlowOnPath(w, aggregator, workerHash(job.ID, i), simnet.FlowSpec{
				Bits:  job.Bits[i],
				Start: job.Delay[i],
				Class: simnet.ClassAggregation,
				Job:   job.ID,
			})
			inputs = append(inputs, id)
			jf.All = append(jf.All, id)
		}
		streams := len(inputs)
		if aggOwn > 0 {
			streams++
		}
		bits := aggOutput(alpha, streams, rackBits, rackBits)
		static := alpha * aggOwn
		if streams < 2 {
			static = aggOwn
		}
		out := net.AddFlowOnPath(aggregator, job.Master, workerHash(job.ID, idxs[0]), simnet.FlowSpec{
			Bits:       bits,
			StaticBits: static,
			Inputs:     inputs,
			Start:      job.Delay[idxs[0]],
			Class:      simnet.ClassAggregation,
			Job:        job.ID,
			Final:      true,
		})
		jf.All = append(jf.All, out)
		jf.Finals = append(jf.Finals, out)
	}
	return jf
}

// DAry is generalised edge-based aggregation (§2.2): workers within each
// rack form a d-ary aggregation tree; the rack roots then form a d-ary tree
// across racks, rooted at the master. D=2 is the paper's "binary" baseline
// and D=1 the "chain" baseline.
type DAry struct {
	D int
	// Mode selects the reduction semantics; the zero value is the paper's
	// per-hop model.
	Mode ReduceMode
}

// Name implements Strategy.
func (d DAry) Name() string {
	switch d.D {
	case 1:
		return "chain"
	case 2:
		return "binary"
	default:
		return fmt.Sprintf("d%d-tree", d.D)
	}
}

// AddJob implements Strategy.
func (d DAry) AddJob(net *simnet.Network, job *workload.Job, alpha float64) JobFlows {
	if d.D < 1 {
		panic("strategies: DAry requires D >= 1")
	}
	topo := net.Topo.T
	var jf JobFlows
	onTime := stragglerBypass(net, job, &jf)
	if len(onTime) == 0 {
		return jf
	}
	groups, order := groupByRack(topo, job.Workers, onTime)

	// parent[i] is the worker index each worker sends its output to, or -1
	// for the global root (which sends to the master).
	parent := make([]int, len(job.Workers))
	for i := range parent {
		parent[i] = -1
	}
	// Intra-rack d-ary trees (heap layout over each rack's worker list).
	rackRoots := make([]int, 0, len(order))
	for _, rack := range order {
		idxs := groups[rack]
		for pos := 1; pos < len(idxs); pos++ {
			parent[idxs[pos]] = idxs[(pos-1)/d.D]
		}
		rackRoots = append(rackRoots, idxs[0])
	}
	// Cross-rack d-ary tree over the rack roots.
	for pos := 1; pos < len(rackRoots); pos++ {
		parent[rackRoots[pos]] = rackRoots[(pos-1)/d.D]
	}
	root := rackRoots[0]

	// Children lists and subtree sizes.
	children := make([][]int, len(job.Workers))
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	// outBits[i] is the size of worker i's output flow. Per hop: α times the
	// node's own data plus its children's outputs; of-original: α times the
	// raw data in the node's subtree.
	outBits := make([]float64, len(job.Workers))
	var computeOut func(i int) float64
	computeOut = func(i int) float64 {
		inputs := 0.0
		for _, c := range children[i] {
			inputs += computeOut(c)
		}
		streams := len(children[i])
		if job.Bits[i] > 0 {
			streams++
		}
		merged := job.Bits[i] + inputs
		if d.Mode == ReduceOfOriginal {
			merged = rawSubtree(job, children, i)
		}
		outBits[i] = aggOutput(alpha, streams, merged, job.Bits[i]+inputs)
		return outBits[i]
	}
	computeOut(root)

	// Emit output flows bottom-up so Inputs reference existing flows.
	outFlow := make([]simnet.FlowID, len(job.Workers))
	var emit func(i int)
	emit = func(i int) {
		var inputs []simnet.FlowID
		for _, c := range children[i] {
			emit(c)
			inputs = append(inputs, outFlow[c])
		}
		dst := job.Master
		final := true
		if parent[i] >= 0 {
			dst = job.Workers[parent[i]]
			final = false
		}
		// A leaf's entire output is its own (already combined) partial
		// result, available immediately; an internal node contributes its
		// own data's reduced share up front.
		static := alpha * job.Bits[i]
		if len(children[i]) == 0 {
			static = outBits[i]
		} else if static > outBits[i] {
			static = outBits[i]
		}
		outFlow[i] = net.AddFlowOnPath(job.Workers[i], dst, workerHash(job.ID, i), simnet.FlowSpec{
			Bits:       outBits[i],
			StaticBits: static,
			Inputs:     inputs,
			Start:      job.Delay[i],
			Class:      simnet.ClassAggregation,
			Job:        job.ID,
			Final:      final,
		})
		jf.All = append(jf.All, outFlow[i])
		if final {
			jf.Finals = append(jf.Finals, outFlow[i])
		}
	}
	emit(root)
	return jf
}

// rawSubtree sums the raw partial-result bits in worker i's subtree.
func rawSubtree(job *workload.Job, children [][]int, i int) float64 {
	s := job.Bits[i]
	for _, c := range children[i] {
		s += rawSubtree(job, children, c)
	}
	return s
}

// groupByRack groups the included worker indices by rack, preserving
// first-seen rack order for determinism.
func groupByRack(topo *topology.Topology, workers []topology.NodeID, include []int) (map[int][]int, []int) {
	groups := make(map[int][]int)
	var order []int
	for _, i := range include {
		r := topo.Node(workers[i]).Rack
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	return groups, order
}
