package strategies

import (
	"netagg/internal/topology"
)

// BoxSpec describes the agg boxes to attach to switches: the paper's
// prototype uses 10 Gbps access links and sustains an aggregation
// processing rate of 9.2 Gbps (§2.4, §4.2).
type BoxSpec struct {
	LinkCapacity float64
	ProcRate     float64
	// PerSwitch is the number of boxes per equipped switch (scale-out,
	// Fig 13); 0 means 1.
	PerSwitch int
}

// DefaultBoxSpec returns the paper's agg box configuration.
func DefaultBoxSpec() BoxSpec {
	return BoxSpec{LinkCapacity: 10 * topology.Gbps, ProcRate: 9.2 * topology.Gbps, PerSwitch: 1}
}

// Tier selects switch tiers for deployment.
type Tier int

const (
	// TierToR deploys at top-of-rack switches.
	TierToR Tier = 1 << iota
	// TierAgg deploys at aggregation switches.
	TierAgg
	// TierCore deploys at core switches.
	TierCore
	// TierAll deploys at every switch (the full NetAgg deployment).
	TierAll = TierToR | TierAgg | TierCore
)

// DeployTiers attaches boxes to every switch of the selected tiers
// (Fig 12's "ToR only" / "Agg only" / "Core only" / full configurations).
func DeployTiers(topo *topology.Topology, tiers Tier, spec BoxSpec) []topology.NodeID {
	var switches []topology.NodeID
	if tiers&TierToR != 0 {
		switches = append(switches, topo.ToRs()...)
	}
	if tiers&TierAgg != 0 {
		switches = append(switches, topo.AggSwitches()...)
	}
	if tiers&TierCore != 0 {
		switches = append(switches, topo.CoreSwitches()...)
	}
	return DeployAt(topo, switches, spec)
}

// DeployAt attaches spec.PerSwitch boxes to each given switch and returns
// the box node IDs.
func DeployAt(topo *topology.Topology, switches []topology.NodeID, spec BoxSpec) []topology.NodeID {
	per := spec.PerSwitch
	if per < 1 {
		per = 1
	}
	var boxes []topology.NodeID
	for _, sw := range switches {
		for i := 0; i < per; i++ {
			boxes = append(boxes, topo.AttachAggBox(sw, spec.LinkCapacity, spec.ProcRate))
		}
	}
	return boxes
}

// DeployBudget spreads a fixed number of boxes uniformly over the switches
// of the selected tiers (Fig 12's fixed-budget comparison: N boxes at the
// core tier vs uniformly at the aggregation tier vs across both). Switches
// are equipped round-robin in tier order until the budget is spent.
func DeployBudget(topo *topology.Topology, budget int, tiers Tier, spec BoxSpec) []topology.NodeID {
	var switches []topology.NodeID
	if tiers&TierCore != 0 {
		switches = append(switches, topo.CoreSwitches()...)
	}
	if tiers&TierAgg != 0 {
		switches = append(switches, topo.AggSwitches()...)
	}
	if tiers&TierToR != 0 {
		switches = append(switches, topo.ToRs()...)
	}
	if len(switches) == 0 || budget <= 0 {
		return nil
	}
	var boxes []topology.NodeID
	for i := 0; i < budget; i++ {
		sw := switches[i%len(switches)]
		boxes = append(boxes, topo.AttachAggBox(sw, spec.LinkCapacity, spec.ProcRate))
	}
	return boxes
}
