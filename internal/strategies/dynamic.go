package strategies

import (
	"fmt"

	"netagg/internal/simnet"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
	"netagg/internal/workload"
)

// DynamicNetAgg is NetAgg with congestion-aware dynamic aggregation trees
// (DESIGN.md §16): it plans jobs exactly like NetAgg, then keeps scoring
// every agg box on a simulated-time tick through the same
// treeplan.HotTracker hysteresis that drives the live fabric's Replanner.
// When a box turns congested mid-job, every incomplete job routed through
// it migrates: the job's current flows are truncated and the trees are
// re-planned against a topology view with the congested boxes marked
// Slow, re-sending the partial results in full from the workers — the
// simulator's rendition of the attempt-epoch full resend the live shims
// perform (§3.1 recovery reused for migration).
//
// A DynamicNetAgg instance is stateful and not safe for concurrent use:
// give each simulation run its own instance (figures construct one per
// scenario cell).
type DynamicNetAgg struct {
	// Trees, Mode, and Planner mean the same as on NetAgg. The planner is
	// consulted for the initial plan and again on every migration, each
	// time through the congestion-marked topology view.
	Trees   int
	Mode    ReduceMode
	Planner treeplan.Planner
	// Interval is the replanning tick period in simulated seconds
	// (default 0.005 — the simulator analogue of the live replanner's
	// 500ms against wall-clock job times three orders larger).
	Interval float64
	// Policy is the hysteresis/cooldown policy. Load is scored as
	// treeplan.LoadUs over a queue depth equal to the number of flows
	// currently crossing the box's processing resource, so HotLoadUs
	// of N×1000 means "N concurrent flows on the box".
	Policy treeplan.ReplanPolicy

	// Migrations counts subtree migrations performed (one per affected
	// job per congestion event), summed over every run this instance saw.
	Migrations int

	state map[*simnet.Sim]*dynState
}

// dynState is the per-simulation replanning state.
type dynState struct {
	net     *simnet.Network
	tracker *treeplan.HotTracker
	slow    map[topology.NodeID]bool
	boxes   []topology.NodeID
	jobs    []*dynJob
}

// dynJob tracks one job's current flow set across migrations.
type dynJob struct {
	job    *workload.Job
	alpha  float64
	extra  *ExtraFlows
	live   []simnet.FlowID // every flow of the current attempt
	finals []simnet.FlowID // the current attempt's result flows
	boxes  map[topology.NodeID]bool
}

// done reports whether the job's current result flows have all landed.
func (dj *dynJob) done(sim *simnet.Sim) bool {
	for _, id := range dj.finals {
		if !sim.FlowDone(id) {
			return false
		}
	}
	return true
}

// Name implements Strategy.
func (n *DynamicNetAgg) Name() string {
	if n.Trees > 1 {
		return fmt.Sprintf("netagg-dynamic-%dtrees", n.Trees)
	}
	return "netagg-dynamic"
}

// base is the static strategy the dynamic one plans through.
func (n *DynamicNetAgg) base() NetAgg {
	return NetAgg{Trees: n.Trees, Mode: n.Mode, Planner: n.Planner}
}

// view is the planner's congestion-marked topology.
func (st *dynState) view() treeplan.Topology {
	return simTopo{topo: st.net.Topo.T, slow: st.slow}
}

// AddJob implements Strategy.
func (n *DynamicNetAgg) AddJob(net *simnet.Network, job *workload.Job, alpha float64) JobFlows {
	st := n.stateFor(net)
	trees := n.Trees
	if trees < 1 {
		trees = 1
	}
	dj := &dynJob{job: job, alpha: alpha, extra: &ExtraFlows{}, boxes: make(map[topology.NodeID]bool)}
	var jf JobFlows
	base := n.base()
	for tr := 0; tr < trees; tr++ {
		for _, b := range base.addTree(net, st.view(), job, alpha, tr, trees, 0, &jf) {
			dj.boxes[b] = true
		}
	}
	dj.live = jf.All
	dj.finals = jf.Finals
	jf.Extra = dj.extra
	st.jobs = append(st.jobs, dj)
	return jf
}

// stateFor returns (building on first use) the replanning state of one
// simulation and arms its first tick.
func (n *DynamicNetAgg) stateFor(net *simnet.Network) *dynState {
	if n.state == nil {
		n.state = make(map[*simnet.Sim]*dynState)
	}
	if st, ok := n.state[net.Sim]; ok {
		return st
	}
	st := &dynState{
		net:     net,
		tracker: treeplan.NewHotTracker(n.Policy),
		slow:    make(map[topology.NodeID]bool),
		boxes:   net.Topo.T.AggBoxes(),
	}
	n.state[net.Sim] = st
	interval := n.Interval
	if interval <= 0 {
		interval = 0.005
	}
	// Self-rearming tick: the chain stops once every job has delivered,
	// so the timers never keep an otherwise finished simulation alive.
	var tick func()
	tick = func() {
		if n.tick(st) {
			net.Sim.At(net.Sim.Now()+interval, tick)
		}
	}
	net.Sim.At(interval, tick)
	return st
}

// tick is one scoring pass; it reports whether any job is still running
// (the re-arm condition).
func (n *DynamicNetAgg) tick(st *dynState) bool {
	sim := st.net.Sim
	// Score every box and step the hysteresis; collect the boxes whose
	// transition to congested should trigger a migration this tick.
	var migrateFrom []topology.NodeID
	for _, b := range st.boxes {
		depth := int64(sim.ResourceActiveFlows(st.net.Topo.ProcResource(b)))
		hot, changed := st.tracker.Observe(uint64(b), treeplan.LoadUs(treeplan.LoadSignal{QueueDepth: depth}))
		if !changed {
			continue
		}
		if hot {
			st.slow[b] = true
			if !st.tracker.CoolingDown(uint64(b)) {
				migrateFrom = append(migrateFrom, b)
				st.tracker.StartCooldown(uint64(b))
			}
		} else {
			delete(st.slow, b)
		}
	}
	for _, b := range migrateFrom {
		n.migrate(st, b)
	}
	for _, dj := range st.jobs {
		if !dj.done(sim) {
			return true
		}
	}
	return false
}

// migrate moves every incomplete job off a congested box: the current
// attempt's flows are truncated and the trees re-planned and re-sent in
// full from the current time — the simulator analogue of the live
// master's MigrateAway → TRedirect → attempt-epoch full resend.
func (n *DynamicNetAgg) migrate(st *dynState, box topology.NodeID) {
	sim := st.net.Sim
	now := sim.Now()
	trees := n.Trees
	if trees < 1 {
		trees = 1
	}
	base := n.base()
	for _, dj := range st.jobs {
		if !dj.boxes[box] || dj.done(sim) {
			continue
		}
		for _, id := range dj.live {
			sim.Truncate(id)
		}
		var tmp JobFlows
		dj.boxes = make(map[topology.NodeID]bool)
		for tr := 0; tr < trees; tr++ {
			for _, b := range base.addTree(st.net, st.view(), dj.job, dj.alpha, tr, trees, now, &tmp) {
				dj.boxes[b] = true
			}
		}
		dj.live = tmp.All
		dj.finals = tmp.Finals
		dj.extra.All = append(dj.extra.All, tmp.All...)
		dj.extra.Finals = append(dj.extra.Finals, tmp.Finals...)
		n.Migrations++
	}
}
