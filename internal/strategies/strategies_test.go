package strategies

import (
	"math"
	"testing"

	"netagg/internal/simnet"
	"netagg/internal/topology"
	"netagg/internal/workload"
)

func buildTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.BuildClos(topology.SmallClos())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// crossRackJob returns a job with workers spread over several racks.
func crossRackJob(topo *topology.Topology, perRack, racks int, bits float64) *workload.Job {
	cfg := topology.SmallClos()
	servers := topo.Servers()
	job := &workload.Job{ID: 1, Master: servers[0]}
	for r := 0; r < racks; r++ {
		base := r * cfg.ServersPerRack
		for i := 0; i < perRack; i++ {
			job.Workers = append(job.Workers, servers[base+i+1])
			job.Bits = append(job.Bits, bits)
			job.Delay = append(job.Delay, 0)
		}
	}
	return job
}

func runJob(t *testing.T, topo *topology.Topology, strat Strategy, job *workload.Job, alpha float64) (*simnet.Network, JobFlows) {
	t.Helper()
	net := simnet.NewNetwork(topo)
	jf := strat.AddJob(net, job, alpha)
	net.Sim.Run()
	return net, jf
}

// masterArrivalBits sums the sizes of the flows that deliver data to the
// master.
func masterArrivalBits(net *simnet.Network, jf JobFlows) float64 {
	var sum float64
	for _, id := range jf.Finals {
		sum += net.Sim.FlowSpecOf(id).Bits
	}
	return sum
}

func TestDirectDeliversEverything(t *testing.T) {
	topo := buildTopo(t)
	job := crossRackJob(topo, 3, 2, 1000)
	net, jf := runJob(t, topo, Direct{}, job, 0.1)
	if len(jf.Finals) != len(job.Workers) {
		t.Fatalf("finals = %d, want %d", len(jf.Finals), len(job.Workers))
	}
	if got := masterArrivalBits(net, jf); got != job.TotalBits() {
		t.Fatalf("master received %g bits, want %g (no aggregation)", got, job.TotalBits())
	}
}

func TestRackAggregationSizes(t *testing.T) {
	topo := buildTopo(t)
	const alpha = 0.1
	job := crossRackJob(topo, 4, 2, 1000)
	net, jf := runJob(t, topo, Rack{}, job, alpha)
	// One final flow per rack, each α × rack data.
	if len(jf.Finals) != 2 {
		t.Fatalf("finals = %d, want 2 (one per rack)", len(jf.Finals))
	}
	want := alpha * job.TotalBits()
	if got := masterArrivalBits(net, jf); math.Abs(got-want) > 1e-9 {
		t.Fatalf("master received %g bits, want %g", got, want)
	}
}

func TestRackSingleWorkerPerRack(t *testing.T) {
	// A lone worker in a rack has nothing to merge with: it sends its raw
	// (already locally combined) partial result.
	topo := buildTopo(t)
	job := crossRackJob(topo, 1, 3, 1000)
	net, jf := runJob(t, topo, Rack{}, job, 0.5)
	if len(jf.Finals) != 3 {
		t.Fatalf("finals = %d, want 3", len(jf.Finals))
	}
	if got := masterArrivalBits(net, jf); math.Abs(got-3000) > 1e-9 {
		t.Fatalf("master received %g bits, want 3000 (raw, nothing merged)", got)
	}
}

func TestDAryNames(t *testing.T) {
	if (DAry{D: 1}).Name() != "chain" || (DAry{D: 2}).Name() != "binary" || (DAry{D: 4}).Name() != "d4-tree" {
		t.Fatal("unexpected DAry names")
	}
}

func TestDAryOfOriginalDeliversAlphaTotal(t *testing.T) {
	topo := buildTopo(t)
	const alpha = 0.25
	for _, d := range []int{1, 2, 3} {
		job := crossRackJob(topo, 4, 2, 800)
		net, jf := runJob(t, topo, DAry{D: d, Mode: ReduceOfOriginal}, job, alpha)
		if len(jf.Finals) != 1 {
			t.Fatalf("d=%d: finals = %d, want 1 (single tree root)", d, len(jf.Finals))
		}
		want := alpha * job.TotalBits()
		if got := masterArrivalBits(net, jf); math.Abs(got-want) > 1e-6 {
			t.Fatalf("d=%d: master received %g bits, want %g", d, got, want)
		}
		// One output flow per worker.
		if len(jf.All) != len(job.Workers) {
			t.Fatalf("d=%d: flows = %d, want %d", d, len(jf.All), len(job.Workers))
		}
	}
}

// Per-hop semantics: with the heap layout worker 0 is the root and worker 1
// its leaf child. The leaf sends raw s1; the root merges two streams and
// sends α(s0 + s1).
func TestDAryPerHopCompounds(t *testing.T) {
	topo := buildTopo(t)
	servers := topo.Servers()
	job := &workload.Job{
		ID:      7,
		Master:  servers[10],
		Workers: []topology.NodeID{servers[1], servers[2]},
		Bits:    []float64{1000, 600},
		Delay:   []float64{0, 0},
	}
	const alpha = 0.5
	net, jf := runJob(t, topo, DAry{D: 1}, job, alpha)
	want := alpha * (1000 + 600) // leaf raw, one merge at the root
	if got := masterArrivalBits(net, jf); math.Abs(got-want) > 1e-9 {
		t.Fatalf("master received %g bits, want %g", got, want)
	}
}

// With three chained workers the middle node's merge output is reduced
// again at the root: out = α(s0 + α(s1 + s2)).
func TestDAryPerHopThreeWorkerChain(t *testing.T) {
	topo := buildTopo(t)
	servers := topo.Servers()
	job := &workload.Job{
		ID:      8,
		Master:  servers[10],
		Workers: []topology.NodeID{servers[1], servers[2], servers[3]},
		Bits:    []float64{1000, 600, 400},
		Delay:   []float64{0, 0, 0},
	}
	const alpha = 0.5
	net, jf := runJob(t, topo, DAry{D: 1}, job, alpha)
	want := alpha * (1000 + alpha*(600+400))
	if got := masterArrivalBits(net, jf); math.Abs(got-want) > 1e-9 {
		t.Fatalf("master received %g bits, want %g", got, want)
	}
}

func TestChainUsesMoreLinkTrafficThanRack(t *testing.T) {
	// §4.1 Fig 9: chain utilises more link bandwidth than rack because
	// partial results traverse worker inbound links at every hop.
	topo1 := buildTopo(t)
	job := crossRackJob(topo1, 8, 2, 100000)
	netChain, _ := runJob(t, topo1, DAry{D: 1}, job, 0.8)
	topo2 := buildTopo(t)
	netRack, _ := runJob(t, topo2, Rack{}, job, 0.8)
	var chainBits, rackBits float64
	for _, b := range netChain.LinkTraffic() {
		chainBits += b
	}
	for _, b := range netRack.LinkTraffic() {
		rackBits += b
	}
	if chainBits <= rackBits {
		t.Fatalf("chain traffic %g should exceed rack traffic %g at high alpha", chainBits, rackBits)
	}
}

func TestNetAggFullDeployment(t *testing.T) {
	topo := buildTopo(t)
	DeployTiers(topo, TierAll, DefaultBoxSpec())
	const alpha = 0.1
	job := crossRackJob(topo, 4, 2, 1000)
	net, jf := runJob(t, topo, NetAgg{Mode: ReduceOfOriginal}, job, alpha)
	// With a box at every switch the master receives one fully aggregated
	// result of α × total from the box at its own ToR.
	if len(jf.Finals) != 1 {
		t.Fatalf("finals = %d, want 1", len(jf.Finals))
	}
	want := alpha * job.TotalBits()
	if got := masterArrivalBits(net, jf); math.Abs(got-want) > 1e-6 {
		t.Fatalf("master received %g bits, want %g", got, want)
	}
}

// Per-hop semantics compound along the box chain: rack-0 workers (the
// master's rack) aggregate once at the master ToR box; rack-1 workers
// aggregate at their ToR box, then at every further box on the path, and
// their contribution shrinks by α at each hop.
func TestNetAggPerHopCompounds(t *testing.T) {
	topo := buildTopo(t)
	DeployTiers(topo, TierAll, DefaultBoxSpec())
	const alpha = 0.5
	job := crossRackJob(topo, 4, 2, 1000)
	net, jf := runJob(t, topo, NetAgg{}, job, alpha)
	if len(jf.Finals) != 1 {
		t.Fatalf("finals = %d, want 1", len(jf.Finals))
	}
	got := masterArrivalBits(net, jf)
	// Per-hop delivery is strictly less than the single-step α × total
	// because the remote rack's data is reduced more than once.
	if ofOriginal := alpha * job.TotalBits(); got >= ofOriginal {
		t.Fatalf("per-hop delivery %g should be below single-step %g", got, ofOriginal)
	}
	// And at least the master-rack single reduction α × 4000.
	if got < alpha*4000 {
		t.Fatalf("per-hop delivery %g lost the master-rack contribution", got)
	}
}

func TestNetAggNoBoxesFallsBackToDirect(t *testing.T) {
	topo := buildTopo(t)
	job := crossRackJob(topo, 2, 2, 1000)
	net, jf := runJob(t, topo, NetAgg{}, job, 0.1)
	if len(jf.Finals) != len(job.Workers) {
		t.Fatalf("finals = %d, want %d (direct fallback)", len(jf.Finals), len(job.Workers))
	}
	if got := masterArrivalBits(net, jf); got != job.TotalBits() {
		t.Fatalf("master received %g bits, want %g", got, job.TotalBits())
	}
}

func TestNetAggPartialDeploymentCoreOnly(t *testing.T) {
	topo := buildTopo(t)
	DeployTiers(topo, TierCore, DefaultBoxSpec())
	const alpha = 0.1
	// Workers in a different pod than the master: their flows cross the
	// core, so they are aggregated; the same-pod rack flows go direct.
	cfg := topology.SmallClos()
	servers := topo.Servers()
	podSize := cfg.RacksPerPod * cfg.ServersPerRack
	job := &workload.Job{ID: 2, Master: servers[0]}
	for i := 0; i < 4; i++ {
		job.Workers = append(job.Workers, servers[podSize+i]) // pod 1
		job.Bits = append(job.Bits, 1000)
		job.Delay = append(job.Delay, 0)
	}
	net, jf := runJob(t, topo, NetAgg{}, job, alpha)
	if len(jf.Finals) != 1 {
		t.Fatalf("finals = %d, want 1 (all cross-pod flows share a core box)", len(jf.Finals))
	}
	if got := masterArrivalBits(net, jf); math.Abs(got-alpha*4000) > 1e-6 {
		t.Fatalf("master received %g bits, want %g", got, alpha*4000)
	}
}

func TestNetAggSameRackWorkers(t *testing.T) {
	topo := buildTopo(t)
	DeployTiers(topo, TierAll, DefaultBoxSpec())
	servers := topo.Servers()
	job := &workload.Job{
		ID:      3,
		Master:  servers[0],
		Workers: []topology.NodeID{servers[1], servers[2]},
		Bits:    []float64{500, 700},
		Delay:   []float64{0, 0},
	}
	net, jf := runJob(t, topo, NetAgg{}, job, 0.5)
	// Both workers share the master's ToR: one box, one final flow.
	if len(jf.Finals) != 1 {
		t.Fatalf("finals = %d, want 1", len(jf.Finals))
	}
	if got := masterArrivalBits(net, jf); math.Abs(got-600) > 1e-6 {
		t.Fatalf("master received %g bits, want 600", got)
	}
}

func TestNetAggMultipleTrees(t *testing.T) {
	topo := buildTopo(t)
	DeployTiers(topo, TierAll, BoxSpec{LinkCapacity: 10 * topology.Gbps, ProcRate: 9.2 * topology.Gbps, PerSwitch: 2})
	const alpha = 0.1
	job := crossRackJob(topo, 4, 2, 1000)
	net, jf := runJob(t, topo, NetAgg{Trees: 2, Mode: ReduceOfOriginal}, job, alpha)
	// Two trees → two final flows, together α × total.
	if len(jf.Finals) != 2 {
		t.Fatalf("finals = %d, want 2", len(jf.Finals))
	}
	want := alpha * job.TotalBits()
	if got := masterArrivalBits(net, jf); math.Abs(got-want) > 1e-6 {
		t.Fatalf("master received %g bits, want %g", got, want)
	}
}

func TestNetAggScaleOutSelectsPerJobBox(t *testing.T) {
	topo := buildTopo(t)
	boxes := DeployTiers(topo, TierAll, BoxSpec{LinkCapacity: 10 * topology.Gbps, ProcRate: 9.2 * topology.Gbps, PerSwitch: 2})
	if len(boxes) != 2*len(topo.ToRs())+2*len(topo.AggSwitches())+2*len(topo.CoreSwitches()) {
		t.Fatalf("deployed %d boxes", len(boxes))
	}
	// Different jobs should (eventually) pick different boxes at a switch.
	used := map[topology.NodeID]bool{}
	for id := 0; id < 16; id++ {
		job := crossRackJob(topo, 2, 2, 100)
		job.ID = id
		net := simnet.NewNetwork(topo)
		jf := NetAgg{}.AddJob(net, job, 0.1)
		for _, f := range jf.All {
			spec := net.Sim.FlowSpecOf(f)
			for _, r := range spec.Resources {
				if net.Sim.ResourceKindOf(r) == simnet.KindProc {
					used[topology.NodeID(net.Sim.ResourceRef(r))] = true
				}
			}
		}
	}
	if len(used) < 3 {
		t.Fatalf("only %d distinct boxes used across 16 jobs; expected load spreading", len(used))
	}
}

func TestNetAggFlowsCrossProcResources(t *testing.T) {
	topo := buildTopo(t)
	DeployTiers(topo, TierAll, DefaultBoxSpec())
	job := crossRackJob(topo, 2, 2, 1000)
	net := simnet.NewNetwork(topo)
	jf := NetAgg{}.AddJob(net, job, 0.1)
	procCrossings := 0
	for _, f := range jf.All {
		for _, r := range net.Sim.FlowSpecOf(f).Resources {
			if net.Sim.ResourceKindOf(r) == simnet.KindProc {
				procCrossings++
			}
		}
	}
	if procCrossings == 0 {
		t.Fatal("no flow crosses an agg box processing resource")
	}
}

func TestDeployBudget(t *testing.T) {
	topo := buildTopo(t)
	boxes := DeployBudget(topo, 3, TierCore, DefaultBoxSpec())
	if len(boxes) != 3 {
		t.Fatalf("deployed %d boxes, want 3", len(boxes))
	}
	// SmallClos has 2 cores: budget 3 wraps around (2 boxes on core0).
	if len(topo.BoxesAt(topo.CoreSwitches()[0])) != 2 {
		t.Fatal("budget should wrap round-robin over switches")
	}
	if got := DeployBudget(topo, 0, TierCore, DefaultBoxSpec()); got != nil {
		t.Fatal("zero budget must deploy nothing")
	}
}
