package netem

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestGbpsScaling(t *testing.T) {
	if got := Gbps(1, 100); got != 1.25e6 {
		t.Fatalf("Gbps(1, 100) = %g, want 1.25e6 B/s", got)
	}
	if got := Gbps(10, 0); got != Gbps(10, DefaultScale) {
		t.Fatalf("zero scale should default, got %g", got)
	}
}

func TestLimiterRate(t *testing.T) {
	l := NewLimiter(1e6, 64*1024) // 1 MB/s
	start := time.Now()
	total := 0
	for total < 400*1024 {
		l.Wait(32 * 1024)
		total += 32 * 1024
	}
	elapsed := time.Since(start)
	// 400 KB minus the 64 KB burst at 1 MB/s ≈ 0.33s.
	if elapsed < 200*time.Millisecond {
		t.Fatalf("limiter too permissive: %v for 400KB at 1MB/s", elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("limiter too slow: %v", elapsed)
	}
}

func TestLimiterZeroAndNegative(t *testing.T) {
	l := NewLimiter(1000, 0)
	l.Wait(0)
	l.Wait(-5) // must not panic or consume
}

func TestNewLimiterPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLimiter(0, 0)
}

// pipe returns a connected TCP pair on loopback.
func pipe(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var server net.Conn
	done := make(chan struct{})
	go func() {
		server, _ = ln.Accept()
		close(done)
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	return client, server
}

func TestConnWriteRateLimited(t *testing.T) {
	client, server := pipe(t)
	defer client.Close()
	defer server.Close()
	nic := NewNIC("h", 1e8, 1e6) // 1 MB/s out
	paced := Wrap(client, nic)

	go io.Copy(io.Discard, server)
	start := time.Now()
	buf := make([]byte, 64*1024)
	total := 0
	for total < 512*1024 {
		n, err := paced.Write(buf)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	elapsed := time.Since(start)
	if elapsed < 250*time.Millisecond {
		t.Fatalf("512KB at 1MB/s finished in %v; pacing broken", elapsed)
	}
}

// Two senders sharing one outbound NIC must together respect the NIC rate.
func TestNICSharedAcrossConns(t *testing.T) {
	nic := NewNIC("h", 1e8, 1e6)
	c1a, c1b := pipe(t)
	c2a, c2b := pipe(t)
	defer c1a.Close()
	defer c1b.Close()
	defer c2a.Close()
	defer c2b.Close()
	go io.Copy(io.Discard, c1b)
	go io.Copy(io.Discard, c2b)

	var wg sync.WaitGroup
	start := time.Now()
	send := func(c net.Conn) {
		defer wg.Done()
		paced := Wrap(c, nic)
		buf := make([]byte, 32*1024)
		for sent := 0; sent < 256*1024; sent += len(buf) {
			if _, err := paced.Write(buf); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go send(c1a)
	go send(c2a)
	wg.Wait()
	elapsed := time.Since(start)
	// 512 KB total at a shared 1 MB/s ≈ 0.45s after burst credit.
	if elapsed < 250*time.Millisecond {
		t.Fatalf("shared NIC let 512KB through in %v", elapsed)
	}
}

func TestWrapNilNIC(t *testing.T) {
	a, b := pipe(t)
	defer a.Close()
	defer b.Close()
	if got := Wrap(a, nil); got != a {
		t.Fatal("nil NIC should return the original conn")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nic := NewNIC("srv", 1e6, 1e6)
	wrapped := NewListener(ln, nic)
	defer wrapped.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	conn, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Fatal("accepted conn should be paced")
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
}
