// Package netem emulates link capacities on loopback connections so the
// testbed experiments (§4.2) reproduce the paper's bandwidth ratios: servers
// on 1 Gbps links, agg boxes on 10 Gbps links. Each emulated host has a NIC
// with an inbound and an outbound token bucket shared by all of the host's
// connections, capturing the many-to-one congestion at a master or
// aggregator NIC that drives the paper's results. Rates are scaled down
// (default 1:100) so experiments complete quickly; only rate *ratios* matter
// for the figures.
package netem

import (
	"net"
	"sync"
	"time"
)

// DefaultScale divides emulated rates so a "10 Gbps" link moves ~12.5 MB/s
// on loopback.
const DefaultScale = 100

// Gbps converts gigabits per second to emulated bytes per second at the
// given scale.
func Gbps(g float64, scale float64) float64 {
	if scale <= 0 {
		scale = DefaultScale
	}
	return g * 1e9 / 8 / scale
}

// Limiter is a token bucket: Wait(n) blocks until n tokens are available.
// It is safe for concurrent use; waiters are admitted in arrival order.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter emitting rate bytes/second with the given
// burst. A zero burst defaults to 20 ms of credit clamped to [8 KiB,
// 64 KiB], small enough that experiment transfers are dominated by the
// rate rather than the credit.
func NewLimiter(rate float64, burst float64) *Limiter {
	if rate <= 0 {
		panic("netem: limiter rate must be > 0")
	}
	if burst <= 0 {
		burst = rate / 50
		if burst > 64*1024 {
			burst = 64 * 1024
		}
		if burst < 8*1024 {
			burst = 8 * 1024
		}
	}
	return &Limiter{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// Rate returns the configured rate in bytes per second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// Wait blocks until n bytes of budget are available and consumes them.
// Requests larger than the burst are admitted in burst-sized instalments by
// letting the balance go negative, which preserves the long-run rate.
func (l *Limiter) Wait(n int) {
	if n <= 0 {
		return
	}
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens -= float64(n)
	var sleep time.Duration
	if l.tokens < 0 {
		sleep = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// NIC is an emulated network interface: all connections of one host share
// its inbound and outbound buckets.
type NIC struct {
	name string
	in   *Limiter
	out  *Limiter
}

// NewNIC returns a NIC with the given rates in bytes per second.
func NewNIC(name string, inRate, outRate float64) *NIC {
	return &NIC{name: name, in: NewLimiter(inRate, 0), out: NewLimiter(outRate, 0)}
}

// Name returns the NIC's label.
func (n *NIC) Name() string { return n.name }

// maxChunk bounds a single limiter acquisition so concurrent flows
// interleave fairly rather than serialising whole messages.
const maxChunk = 32 * 1024

// Conn wraps a net.Conn with the local NIC's outbound bucket on writes and
// inbound bucket on reads.
type Conn struct {
	net.Conn
	nic *NIC
}

// Wrap attaches a NIC to a connection.
func Wrap(c net.Conn, nic *NIC) net.Conn {
	if nic == nil {
		return c
	}
	return &Conn{Conn: c, nic: nic}
}

// Read paces inbound bytes through the NIC's inbound bucket.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) > maxChunk {
		p = p[:maxChunk]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.nic.in.Wait(n)
	}
	return n, err
}

// Write paces outbound bytes through the NIC's outbound bucket.
func (c *Conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		end := written + maxChunk
		if end > len(p) {
			end = len(p)
		}
		c.nic.out.Wait(end - written)
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps accepted connections with the host's NIC.
type Listener struct {
	net.Listener
	nic *NIC
}

// NewListener returns a listener whose accepted connections are paced by nic.
func NewListener(l net.Listener, nic *NIC) *Listener {
	return &Listener{Listener: l, nic: nic}
}

// Accept wraps the accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.nic), nil
}

// Dialer dials connections paced by a NIC.
type Dialer struct {
	NIC *NIC
}

// Dial connects to addr over TCP and wraps the connection.
func (d Dialer) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(c, d.NIC), nil
}

// DialAddr is Dial with the network fixed to TCP, matching the dial
// function signature of wire.Pool.
func (d Dialer) DialAddr(addr string) (net.Conn, error) {
	return d.Dial("tcp", addr)
}
