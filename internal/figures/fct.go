package figures

import (
	"netagg/internal/metrics"
	"netagg/internal/simexp"
	"netagg/internal/strategies"
)

// cdfPercentiles are the points at which CDF figures are tabulated.
var cdfPercentiles = []float64{5, 10, 25, 50, 75, 90, 95, 99, 100}

// runBaselines executes all four strategies on the default network in
// parallel and returns results keyed by strategy name.
func runBaselines(o Options) map[string]*simexp.Result {
	strats := baselines()
	scs := make([]scenario, len(strats))
	for i, st := range strats {
		scs[i] = scenario{clos: o.Scale.Clos(), workload: o.workload(), strategy: st}
		if _, ok := st.(strategies.NetAgg); ok {
			scs[i].deploy = deployAll(strategies.DefaultBoxSpec())
		}
	}
	results := runAll(o, scs)
	out := make(map[string]*simexp.Result, len(strats))
	for i, st := range strats {
		out[st.Name()] = results[i]
	}
	return out
}

// cdfTable tabulates a per-strategy sample at the standard percentiles.
func cdfTable(title, unit string, results map[string]*simexp.Result, pick func(*simexp.Result) *metrics.Sample) *metrics.Table {
	table := metrics.NewTable(title, "percentile",
		"rack_"+unit, "binary_"+unit, "chain_"+unit, "netagg_"+unit)
	for _, p := range cdfPercentiles {
		table.AddRow(p,
			pick(results["rack"]).Percentile(p),
			pick(results["binary"]).Percentile(p),
			pick(results["chain"]).Percentile(p),
			pick(results["netagg"]).Percentile(p),
		)
	}
	return table
}

// Fig06 regenerates Figure 6: the CDF of flow completion time of all
// traffic under rack, binary, chain and NetAgg aggregation.
func Fig06(o Options) *Report {
	results := runBaselines(o)
	return &Report{
		ID:    "fig06",
		Title: "CDF of flow completion time of all traffic",
		Table: cdfTable("Fig 6 — FCT of all traffic (seconds at CDF percentiles)", "s",
			results, func(r *simexp.Result) *metrics.Sample { return r.AllFCT }),
	}
}

// Fig07 regenerates Figure 7: the CDF of flow completion time of the
// non-aggregatable background traffic only.
func Fig07(o Options) *Report {
	results := runBaselines(o)
	return &Report{
		ID:    "fig07",
		Title: "CDF of flow completion time of non-aggregatable traffic",
		Table: cdfTable("Fig 7 — FCT of non-aggregatable traffic (seconds at CDF percentiles)", "s",
			results, func(r *simexp.Result) *metrics.Sample { return r.BackgroundFCT }),
	}
}

// Fig08 regenerates Figure 8: 99th-percentile FCT relative to rack-level
// aggregation while varying the aggregation output ratio α.
func Fig08(o Options) *Report {
	alphas := []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0}
	table := metrics.NewTable(
		"Fig 8 — relative 99th FCT vs aggregation output ratio α",
		"alpha", "rack", "binary", "chain", "netagg", "netagg_job",
	)
	points := make([]relPoint, len(alphas))
	for i, a := range alphas {
		wcfg := o.workload()
		wcfg.OutputRatio = a
		points[i] = relPoint{clos: o.Scale.Clos(), wcfg: wcfg}
	}
	for i, rel := range relP99Batch(o, points, strategies.DefaultBoxSpec()) {
		table.AddRow(alphas[i], rel["rack"], rel["binary"], rel["chain"], rel["netagg"], rel["netagg_job"])
	}
	return &Report{
		ID:    "fig08",
		Title: "Flow completion time relative to baseline with varying output ratio α",
		Table: table,
		Notes: "netagg_job is job-level completion vs rack's, the metric on which the α→1 convergence shows",
	}
}

// Fig09 regenerates Figure 9: the CDF of per-link traffic at α = 10 %,
// showing that chain and binary trees consume more link bandwidth than rack
// while NetAgg consumes the least.
func Fig09(o Options) *Report {
	results := runBaselines(o)
	return &Report{
		ID:    "fig09",
		Title: "CDF of link traffic (α = 10%)",
		Table: cdfTable("Fig 9 — per-link traffic (MB at CDF percentiles)", "MB",
			results, func(r *simexp.Result) *metrics.Sample { return r.LinkMB }),
	}
}

// Fig10 regenerates Figure 10: relative 99th FCT while varying the fraction
// of aggregatable flows.
func Fig10(o Options) *Report {
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	table := metrics.NewTable(
		"Fig 10 — relative 99th FCT vs fraction of aggregatable flows",
		"agg_fraction", "rack", "binary", "chain", "netagg",
	)
	points := make([]relPoint, len(fractions))
	for i, f := range fractions {
		wcfg := o.workload()
		wcfg.AggregatableFraction = f
		points[i] = relPoint{clos: o.Scale.Clos(), wcfg: wcfg}
	}
	for i, rel := range relP99Batch(o, points, strategies.DefaultBoxSpec()) {
		table.AddRow(fractions[i], rel["rack"], rel["binary"], rel["chain"], rel["netagg"])
	}
	return &Report{
		ID:    "fig10",
		Title: "Flow completion time relative to baseline with varying fraction of aggregatable traffic",
		Table: table,
	}
}

// Fig11 regenerates Figure 11: relative 99th FCT while varying the
// over-subscription ratio of the 1 Gbps network from 1:1 to 1:10.
func Fig11(o Options) *Report {
	oversubs := []float64{1, 2, 4, 6, 10}
	table := metrics.NewTable(
		"Fig 11 — relative 99th FCT vs over-subscription (1G edge, α = 10%)",
		"oversub_1:x", "rack", "binary", "chain", "netagg",
	)
	points := make([]relPoint, len(oversubs))
	for i, ov := range oversubs {
		clos := o.Scale.Clos()
		clos.Oversubscription = ov
		points[i] = relPoint{clos: clos, wcfg: o.workload()}
	}
	for i, rel := range relP99Batch(o, points, strategies.DefaultBoxSpec()) {
		table.AddRow(oversubs[i], rel["rack"], rel["binary"], rel["chain"], rel["netagg"])
	}
	return &Report{
		ID:    "fig11",
		Title: "Flow completion time relative to baseline with different over-subscription",
		Table: table,
	}
}
