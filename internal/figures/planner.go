package figures

import (
	"fmt"

	"netagg/internal/metrics"
	"netagg/internal/simexp"
	"netagg/internal/simnet"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
	"netagg/internal/workload"
)

// plannerFactors are the skew levels of the planner experiment: each hot
// box carries a standing background flow of factor × ProcRate bits.
var plannerFactors = []float64{0, 0.5, 1, 2}

// FigPlanner is a repository experiment beyond the paper's figure set: it
// compares the paper's hash-based on-path planner against the
// telemetry-weighted LoadAware planner under skewed per-box background
// load. Every switch carries two agg boxes (scale-out, §3.1); the first
// box of each switch is "hot" — a standing background flow of
// factor × ProcRate bits competes for its processing resource. OnPath
// keeps hashing half of each switch's jobs onto the hot box; LoadAware
// sees the hot boxes' queue depth and steers trees to the cold ones. The
// table reports the 99th-percentile job completion time of both planners
// per skew factor.
func FigPlanner(o Options) *Report {
	results := make([]*simexp.Result, 2*len(plannerFactors))
	simexp.ForEach(o.Workers, len(results), func(i int) {
		results[i] = runPlanner(o, plannerFactors[i/2], i%2 == 1)
	})

	table := metrics.NewTable(
		"Fig planner — p99 job completion time under skewed box load",
		"bg_factor", "onpath_p99", "loadaware_p99",
	)
	for fi, f := range plannerFactors {
		table.AddRow(f, results[2*fi].JobFCT.P99(), results[2*fi+1].JobFCT.P99())
	}
	return &Report{
		ID:    "planner",
		Title: "OnPath vs LoadAware planner under skewed background load",
		Table: table,
		Notes: "2 boxes/switch; the first box of each switch is hot: factor×16 standing switch-local flows share its processing rate; LoadAware telemetry reports the hot boxes' queue depth",
	}
}

// runPlanner executes one cell of the planner figure: one skew factor
// under one planner.
func runPlanner(o Options, factor float64, loadAware bool) *simexp.Result {
	topo, err := topology.BuildClos(o.Scale.Clos())
	if err != nil {
		panic(fmt.Sprintf("figures: bad Clos config: %v", err))
	}
	spec := strategies.DefaultBoxSpec()
	spec.PerSwitch = 2
	boxes := strategies.DeployTiers(topo, strategies.TierAll, spec)

	// DeployAt attaches PerSwitch boxes per switch contiguously, so the
	// first box of each switch sits at every PerSwitch-th index.
	var hot []topology.NodeID
	for i := 0; i < len(boxes); i += spec.PerSwitch {
		hot = append(hot, boxes[i])
	}

	var planner treeplan.Planner = treeplan.OnPath{}
	if loadAware {
		// The simulation has no live boxes to probe, so the telemetry is
		// static: the hot boxes report a queue depth proportional to the
		// injected load, the cold boxes report nothing (zero load).
		tel := make(treeplan.StaticTelemetry, len(hot))
		for _, b := range hot {
			tel[uint64(b)] = treeplan.LoadSignal{QueueDepth: int64(256 * factor)}
		}
		planner = treeplan.LoadAware{Telemetry: tel}
	}

	// The default workload's Pareto flow sizes put edge-link-bound
	// monsters in the tail, hiding the planner from the p99: cap the
	// size spread and job width so the job tail is shaped by box
	// contention, not flow-size luck, and raise the aggregatable share
	// so the tail is made of jobs at all.
	wcfg := o.workload()
	wcfg.AggregatableFraction = 0.8
	wcfg.MaxWorkers = 16
	wcfg.MaxFlowBits = 8 * wcfg.MeanFlowBits
	w := workload.Generate(topo, wcfg)
	// The hot load: factor×16 standing flows from each hot box's own
	// switch into the box. The switch→box hop exists on no other path,
	// so the only resources the load consumes are the hot box's access
	// link and its processing rate — fair sharing with B competitors
	// caps an agg flow through a hot box at R/(B+1) while cold boxes
	// (and every network link the jobs use) stay untouched.
	prelude := func(net *simnet.Network) {
		burners := int(factor * 16)
		if burners <= 0 {
			return
		}
		for i, b := range hot {
			sw := topo.Node(b).Attached
			for k := 0; k < burners; k++ {
				h := topology.FlowHash(0x5EED, uint64(i)+1, uint64(k)+1)
				net.AddFlowOnPath(sw, b, h, simnet.FlowSpec{
					Bits:  spec.ProcRate,
					Class: simnet.ClassBackground,
					Job:   -1,
				})
			}
		}
	}
	return simexp.RunWith(topo, w, strategies.NetAgg{Planner: planner}, simexp.Opts{Prelude: prelude})
}
