package figures

import (
	"fmt"

	"netagg/internal/cost"
	"netagg/internal/metrics"
	"netagg/internal/strategies"
	"netagg/internal/topology"
)

// Fig02 regenerates Figure 2: 99th-percentile flow completion time of
// NetAgg relative to rack-level aggregation, as a function of the agg box
// processing rate R, for a full-bisection (1:1) and a 1:4 over-subscribed
// network (§2.4 feasibility study).
func Fig02(o Options) *Report {
	rates := []float64{1, 2, 4, 6, 8, 10}
	oversubs := []float64{1, 4}

	table := metrics.NewTable(
		"Fig 2 — 99th FCT relative to rack-level aggregation vs agg box processing rate",
		"rate_gbps", "oversub_1:1", "oversub_1:4",
	)
	// One flat scenario list per over-subscription: the rack baseline
	// followed by a NetAgg run per processing rate.
	var scs []scenario
	for _, ov := range oversubs {
		clos := o.Scale.Clos()
		clos.Oversubscription = ov
		scs = append(scs, scenario{clos: clos, workload: o.workload(), strategy: strategies.Rack{}})
		for _, rate := range rates {
			spec := strategies.DefaultBoxSpec()
			spec.ProcRate = rate * topology.Gbps
			scs = append(scs, scenario{
				clos:     clos,
				deploy:   deployAll(spec),
				workload: o.workload(),
				strategy: strategies.NetAgg{},
			})
		}
	}
	results := runAll(o, scs)
	stride := 1 + len(rates)
	for ri, rate := range rates {
		row := []interface{}{rate}
		for oi := range oversubs {
			rackP99 := results[oi*stride].AllFCT.P99()
			row = append(row, results[oi*stride+1+ri].AllFCT.P99()/rackP99)
		}
		table.AddRow(row...)
	}
	return &Report{
		ID:    "fig02",
		Title: "FCT for different aggregation processing rates R",
		Table: table,
		Notes: "boxes at every switch, 10G access links; workload α=10%, 40% aggregatable",
	}
}

// Fig03 regenerates Figure 3: performance (relative 99th FCT) and upgrade
// cost of alternative DC configurations versus deploying NetAgg in the base
// network (1 Gbps edge, 1:4 over-subscribed).
func Fig03(o Options) *Report {
	base := o.Scale.Clos()
	prices := cost.DefaultPrices()
	wcfg := o.workload()
	spec := strategies.DefaultBoxSpec()

	// Network upgrades, all evaluated with rack-level aggregation.
	netUpgrades := []struct {
		name  string
		edge  float64
		overs float64
	}{
		{"FullBisec-10G", 10 * topology.Gbps, 1},
		{"Oversub-10G", 10 * topology.Gbps, base.Oversubscription},
		{"FullBisec-1G", 1 * topology.Gbps, 1},
	}

	// Scenario list: base rack run, the upgrades, then the two NetAgg
	// deployments in the unchanged base network.
	scs := []scenario{{clos: base, workload: wcfg, strategy: strategies.Rack{}}}
	upgradeCosts := make([]float64, len(netUpgrades))
	for i, up := range netUpgrades {
		clos := base
		clos.EdgeCapacity = up.edge
		clos.Oversubscription = up.overs
		scs = append(scs, scenario{clos: clos, workload: wcfg, strategy: strategies.Rack{}})
		c, err := cost.UpgradeCost(base, clos, prices)
		if err != nil {
			panic(err)
		}
		upgradeCosts[i] = c
	}
	scs = append(scs,
		scenario{clos: base, deploy: deployAll(spec), workload: wcfg, strategy: strategies.NetAgg{}},
		scenario{
			clos: base,
			deploy: func(t *topology.Topology) {
				strategies.DeployTiers(t, strategies.TierAgg, spec)
			},
			workload: wcfg,
			strategy: strategies.NetAgg{},
		})
	results := runAll(o, scs)
	baseP99 := results[0].AllFCT.P99()

	type config struct {
		name string
		rel  float64
		cost float64
	}
	var configs []config
	for i, up := range netUpgrades {
		configs = append(configs, config{up.name, results[1+i].AllFCT.P99() / baseP99, upgradeCosts[i]})
	}
	nFull := base.NumSwitches()
	configs = append(configs, config{"NetAgg", results[len(netUpgrades)+1].AllFCT.P99() / baseP99,
		cost.BoxCost(nFull, spec.LinkCapacity, prices)})
	nIncr := base.Pods * base.AggPerPod
	configs = append(configs, config{"Incremental-NetAgg", results[len(netUpgrades)+2].AllFCT.P99() / baseP99,
		cost.BoxCost(nIncr, spec.LinkCapacity, prices)})

	table := metrics.NewTable(
		"Fig 3 — performance and upgrade cost of DC configurations (vs 1G 1:4 base, rack-level agg)",
		"config", "rel_99th_FCT", "upgrade_cost_$M",
	)
	for _, c := range configs {
		table.AddRow(c.name, c.rel, c.cost/1e6)
	}
	return &Report{
		ID:    "fig03",
		Title: "Performance and cost of different DC configurations",
		Table: table,
		Notes: fmt.Sprintf("synthetic Popa-style prices (%+v); NetAgg boxes R=9.2G on 10G links", prices),
	}
}
