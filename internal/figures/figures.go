// Package figures regenerates every simulation figure of the paper's
// evaluation (§2.4 feasibility study and §4.1): each FigNN function runs the
// required simulations and returns a Report whose table prints the same
// rows/series as the corresponding figure. The functions are shared by the
// netagg-sim CLI and the benchmark harness in the repository root.
package figures

import (
	"fmt"

	"netagg/internal/metrics"
	"netagg/internal/simexp"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
	"netagg/internal/workload"
)

// Scale selects the simulated cluster size. Figures default to ScaleMedium,
// which preserves the topology shape of the paper's 1,024-server cluster at
// a quarter of the size; ScaleFull is the paper's scale.
type Scale int

const (
	// ScaleSmall is a 64-server cluster for tests.
	ScaleSmall Scale = iota
	// ScaleMedium is a 256-server cluster, the benchmark default.
	ScaleMedium
	// ScaleFull is the paper's 1,024-server cluster.
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Clos returns the Clos configuration for a scale.
func (s Scale) Clos() topology.ClosConfig {
	switch s {
	case ScaleSmall:
		return topology.SmallClos()
	case ScaleFull:
		return topology.DefaultClos()
	default:
		return topology.ClosConfig{
			Pods:             4,
			RacksPerPod:      4,
			ServersPerRack:   16,
			AggPerPod:        2,
			Cores:            4,
			EdgeCapacity:     topology.Gbps,
			Oversubscription: 4,
		}
	}
}

// Options configures a figure run.
type Options struct {
	Scale Scale
	Seed  int64
	// Workers bounds the scenario fan-out parallelism; 0 means GOMAXPROCS.
	// Every figure is byte-identical for any worker count: scenarios are
	// independent simulations whose results land in per-index slots.
	Workers int
}

// Report is the regenerated data of one figure.
type Report struct {
	// ID is the paper's figure identifier, e.g. "fig06".
	ID string
	// Title describes what the figure shows.
	Title string
	// Table holds the series the paper plots.
	Table *metrics.Table
	// Notes records deviations or parameter choices worth knowing.
	Notes string
}

// String renders the report.
func (r *Report) String() string {
	s := r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

func (o Options) workload() workload.Config {
	cfg := workload.Default()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// scenario describes one simulation run.
type scenario struct {
	clos     topology.ClosConfig
	deploy   func(*topology.Topology) // attaches agg boxes; nil for none
	workload workload.Config
	strategy strategies.Strategy
	sf       bool // store-and-forward ablation
}

// run builds and executes a scenario.
func run(sc scenario) *simexp.Result {
	topo, err := topology.BuildClos(sc.clos)
	if err != nil {
		panic(fmt.Sprintf("figures: bad Clos config: %v", err))
	}
	if sc.deploy != nil {
		sc.deploy(topo)
	}
	w := workload.Generate(topo, sc.workload)
	return simexp.Run(topo, w, sc.strategy, sc.sf)
}

// runAll executes every scenario, fanning them across o.Workers goroutines,
// and returns the results in scenario order. Each scenario builds its own
// topology, workload, and simulator, so runs are independent and the result
// slice is byte-identical for any worker count.
func runAll(o Options, scs []scenario) []*simexp.Result {
	out := make([]*simexp.Result, len(scs))
	simexp.ForEach(o.Workers, len(scs), func(i int) {
		out[i] = run(scs[i])
	})
	return out
}

// deployAll returns a deploy func attaching the default boxes to all tiers.
func deployAll(spec strategies.BoxSpec) func(*topology.Topology) {
	return func(t *topology.Topology) { strategies.DeployTiers(t, strategies.TierAll, spec) }
}

// baselines is the strategy set most figures compare: rack (the
// normalisation baseline), binary tree, chain, and NetAgg with the paper's
// on-path planner wired explicitly (Fig planner swaps it for LoadAware).
func baselines() []strategies.Strategy {
	return []strategies.Strategy{
		strategies.Rack{},
		strategies.DAry{D: 2},
		strategies.DAry{D: 1},
		strategies.NetAgg{Planner: treeplan.OnPath{}},
	}
}

// relPoint is one x-axis point of a relative-FCT figure: a network and a
// workload on which every baseline strategy runs.
type relPoint struct {
	clos topology.ClosConfig
	wcfg workload.Config
}

// relP99Batch runs every baseline strategy on every point — one flat
// (point × strategy) scenario list fanned across o.Workers — and returns,
// per point, each strategy's 99th-percentile FCT of all flows relative to
// rack's, plus NetAgg's job-level relative completion under the key
// "netagg_job" (the per-flow metric is insensitive to reductions that only
// change *how much* data the master must receive; see DESIGN.md §8).
func relP99Batch(o Options, points []relPoint, spec strategies.BoxSpec) []map[string]float64 {
	strats := baselines()
	scs := make([]scenario, 0, len(points)*len(strats))
	for _, pt := range points {
		for _, st := range strats {
			sc := scenario{clos: pt.clos, workload: pt.wcfg, strategy: st}
			if _, isNetAgg := st.(strategies.NetAgg); isNetAgg {
				sc.deploy = deployAll(spec)
			}
			scs = append(scs, sc)
		}
	}
	results := runAll(o, scs)
	out := make([]map[string]float64, len(points))
	for pi := range points {
		rel := make(map[string]float64)
		var rackP99, rackJob float64
		for si, st := range strats {
			res := results[pi*len(strats)+si]
			p99 := res.AllFCT.P99()
			switch st.Name() {
			case "rack":
				rackP99 = p99
				rackJob = res.JobFCT.P99()
			case "netagg":
				rel["netagg_job"] = res.JobFCT.P99()
			}
			rel[st.Name()] = p99
		}
		for k, v := range rel {
			if k == "netagg_job" {
				rel[k] = v / rackJob
			} else {
				rel[k] = v / rackP99
			}
		}
		out[pi] = rel
	}
	return out
}

// defaultSpec returns the paper's box spec (exported for internal tests).
func defaultSpec() strategies.BoxSpec { return strategies.DefaultBoxSpec() }
