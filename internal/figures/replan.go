package figures

import (
	"fmt"

	"netagg/internal/metrics"
	"netagg/internal/simexp"
	"netagg/internal/simnet"
	"netagg/internal/strategies"
	"netagg/internal/topology"
	"netagg/internal/treeplan"
	"netagg/internal/workload"
)

// replanFactors are the churn levels of the dynamic-tree experiment: at
// t = replanChurnStart, factor × 16 burner flows land on each hot box.
var replanFactors = []float64{0, 1, 2, 4}

// replanChurnStart is when the congestion burst arrives (simulated
// seconds). The initial plan cannot see it: every tree starts on the
// hash-selected boxes and only the dynamic strategy reacts.
const replanChurnStart = 0.002

// replanBits is the per-worker partial result size. Migration only pays
// off when the work remaining at detection time dominates the resend of
// the already-delivered prefix, so the jobs are deliberately long
// relative to the replanner's detection latency (HotStreak ticks).
const replanBits = 4e7

// FigReplan is a repository experiment beyond the paper's figure set
// (DESIGN.md §16): static on-path trees versus congestion-aware dynamic
// trees under mid-job background churn. Both strategies plan the same
// initial trees; at replanChurnStart a burst of burner flows congests the
// first box of every switch. The static strategy stays pinned to the
// congested boxes for the rest of each job; the dynamic strategy detects
// them through the HotTracker hysteresis and migrates every affected
// subtree to the cold alternative, re-sending the partials in full — the
// simulator's rendition of the live fabric's attempt-epoch migration. The
// table reports the 99th-percentile job completion time of both per churn
// factor, plus how many subtree migrations the dynamic runs performed.
func FigReplan(o Options) *Report {
	results := make([]*simexp.Result, 2*len(replanFactors))
	migrations := make([]int, len(replanFactors))
	simexp.ForEach(o.Workers, len(results), func(i int) {
		res, migs := runReplan(o, replanFactors[i/2], i%2 == 1)
		results[i] = res
		if i%2 == 1 {
			migrations[i/2] = migs
		}
	})

	table := metrics.NewTable(
		"Fig replan — p99 job completion time under mid-job churn",
		"churn_factor", "static_p99", "dynamic_p99", "migrations",
	)
	for fi, f := range replanFactors {
		table.AddRow(f, results[2*fi].JobFCT.P99(), results[2*fi+1].JobFCT.P99(), migrations[fi])
	}
	return &Report{
		ID:    "replan",
		Title: "Static vs dynamic aggregation trees under background churn",
		Table: table,
		Notes: "2 boxes/switch; factor×16 burners land on the first box of every switch at t=2ms, after the trees are planned; one 16-worker job per rack; dynamic trees tick every 2ms with a 24-flow hot threshold",
	}
}

// runReplan executes one cell of the replan figure: one churn factor under
// the static or the dynamic strategy. It returns the run's measurements
// and, for dynamic cells, the number of subtree migrations performed.
func runReplan(o Options, factor float64, dynamic bool) (*simexp.Result, int) {
	cfg := o.Scale.Clos()
	topo, err := topology.BuildClos(cfg)
	if err != nil {
		panic(fmt.Sprintf("figures: bad Clos config: %v", err))
	}
	spec := strategies.DefaultBoxSpec()
	spec.PerSwitch = 2
	boxes := strategies.DeployTiers(topo, strategies.TierAll, spec)

	// DeployAt attaches PerSwitch boxes per switch contiguously, so the
	// first box of each switch sits at every PerSwitch-th index.
	var hot []topology.NodeID
	for i := 0; i < len(boxes); i += spec.PerSwitch {
		hot = append(hot, boxes[i])
	}

	w := replanWorkload(topo, cfg)

	// The churn: factor×16 burner flows from each hot box's own switch
	// into the box, injected mid-run so the initial plan cannot avoid
	// them. As in the planner figure, the switch→box hop exists on no
	// other path, so the burners only consume the hot boxes' access links
	// and processing rates.
	prelude := func(net *simnet.Network) {
		burners := int(factor * 16)
		if burners <= 0 {
			return
		}
		net.Sim.At(replanChurnStart, func() {
			for i, b := range hot {
				sw := topo.Node(b).Attached
				for k := 0; k < burners; k++ {
					h := topology.FlowHash(0xC4B7, uint64(i)+1, uint64(k)+1)
					net.AddFlowOnPath(sw, b, h, simnet.FlowSpec{
						Bits:  spec.ProcRate,
						Start: replanChurnStart,
						Class: simnet.ClassBackground,
						Job:   -1,
					})
				}
			}
		})
	}

	var strat strategies.Strategy = strategies.NetAgg{Planner: treeplan.OnPath{}}
	var dyn *strategies.DynamicNetAgg
	if dynamic {
		// A DynamicNetAgg is stateful: each cell gets its own instance.
		// The policy reads a box as hot at ≥24 concurrent flows on its
		// processing resource for 2 consecutive 2ms ticks, cold again at
		// ≤8 — the quiet per-box job load stays under both bounds, so
		// factor 0 must behave exactly like the static strategy.
		dyn = &strategies.DynamicNetAgg{
			Interval: 0.002,
			Policy: treeplan.ReplanPolicy{
				HotLoadUs: 24000, ColdLoadUs: 8000,
				HotStreak: 2, CooldownTicks: 20,
			},
		}
		strat = dyn
	}
	res := simexp.RunWith(topo, w, strat, simexp.Opts{Prelude: prelude})
	migs := 0
	if dyn != nil {
		migs = dyn.Migrations
	}
	return res, migs
}

// replanWorkload builds the experiment's deterministic workload: one job
// per rack, each with 16 equal-sized workers spread over the two racks
// after the master's, sized so the job is long relative to the
// replanner's detection latency (workloads drawn from the generator's
// Pareto sizes are mostly over before a congestion burst can be detected,
// which measures nothing).
func replanWorkload(topo *topology.Topology, cfg topology.ClosConfig) *workload.Workload {
	servers := topo.Servers()
	racks := cfg.Pods * cfg.RacksPerPod
	spr := cfg.ServersPerRack
	w := &workload.Workload{Config: workload.Default()}
	for j := 0; j < racks; j++ {
		job := workload.Job{ID: j + 1, Master: servers[j*spr]}
		for r := 1; r <= 2; r++ {
			base := ((j + r) % racks) * spr
			for i := 0; i < 8; i++ {
				job.Workers = append(job.Workers, servers[base+1+(j+i)%(spr-1)])
				job.Bits = append(job.Bits, replanBits)
				job.Delay = append(job.Delay, 0)
			}
		}
		w.Jobs = append(w.Jobs, job)
	}
	return w
}
