package figures

import "testing"

// TestFigReplanDynamicWins checks the dynamic-tree experiment's headline:
// with no churn the dynamic strategy migrates nothing and matches static
// exactly, and at the highest churn factor it migrates at least one
// subtree and beats static job completion time.
func TestFigReplanDynamicWins(t *testing.T) {
	r := FigReplan(small)
	rows := tableRows(t, r)
	if len(rows) != len(replanFactors) {
		t.Fatalf("got %d rows, want %d", len(rows), len(replanFactors))
	}

	quiet := rows[0]
	if quiet[3] != 0 {
		t.Fatalf("factor 0 migrated %g times", quiet[3])
	}
	if quiet[2] != quiet[1] {
		t.Fatalf("factor 0: dynamic p99 %g differs from static %g without migrations", quiet[2], quiet[1])
	}

	worst := rows[len(rows)-1]
	if worst[3] == 0 {
		t.Fatalf("factor %g never migrated despite the churn burst", worst[0])
	}
	if worst[2] >= worst[1] {
		t.Fatalf("factor %g: dynamic p99 %g not better than static %g (migrations=%g)",
			worst[0], worst[2], worst[1], worst[3])
	}
	t.Logf("factor %g: static=%g dynamic=%g migrations=%g", worst[0], worst[1], worst[2], worst[3])
}
