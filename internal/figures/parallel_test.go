package figures

import "testing"

// TestWorkerCountInvariance is the regression gate for the parallel scenario
// runner: a figure regenerated serially and with a worker pool must render
// byte-identically. Scenario results land in per-index slots and all
// post-processing walks those slots in order, so the only way this can fail
// is scenarios sharing mutable state (a data race) or post-processing
// depending on completion order. The figure set covers each fan-out shape:
// keyed baselines (Fig06), the batched relative-P99 grid (Fig08), and the
// strided baseline-plus-variants lists (Fig02, Fig13).
func TestWorkerCountInvariance(t *testing.T) {
	figs := []struct {
		name string
		gen  func(Options) *Report
	}{
		{"fig02", Fig02},
		{"fig06", Fig06},
		{"fig08", Fig08},
		{"fig13", Fig13},
	}
	for _, fig := range figs {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			serial := fig.gen(Options{Scale: ScaleSmall, Workers: 1}).String()
			parallel := fig.gen(Options{Scale: ScaleSmall, Workers: 4}).String()
			if serial != parallel {
				t.Fatalf("%s differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
					fig.name, serial, parallel)
			}
		})
	}
}
