package figures

import (
	"fmt"

	"netagg/internal/metrics"
	"netagg/internal/strategies"
	"netagg/internal/topology"
)

// Fig12 regenerates Figure 12: the effect of partial NetAgg deployments.
// First, boxes at a single tier only (ToR / aggregation / core) versus the
// full deployment; second, a fixed box budget spread over the core tier
// only, the aggregation tier, or both.
func Fig12(o Options) *Report {
	clos := o.Scale.Clos()
	wcfg := o.workload()
	spec := strategies.DefaultBoxSpec()

	table := metrics.NewTable(
		"Fig 12 — relative 99th FCT of partial NetAgg deployments",
		"deployment", "rel_99th_FCT",
	)
	tierConfigs := []struct {
		name string
		tier strategies.Tier
	}{
		{"tor-only", strategies.TierToR},
		{"agg-only", strategies.TierAgg},
		{"core-only", strategies.TierCore},
		{"full", strategies.TierAll},
	}
	// Fixed budget: as many boxes as there are aggregation-tier switches.
	budget := clos.Pods * clos.AggPerPod
	budgetConfigs := []struct {
		name  string
		tiers strategies.Tier
	}{
		{"budget-core", strategies.TierCore},
		{"budget-agg", strategies.TierAgg},
		{"budget-agg+core", strategies.TierAgg | strategies.TierCore},
	}

	// Scenario list: the rack baseline, one NetAgg run per tier config, one
	// per budget config.
	scs := []scenario{{clos: clos, workload: wcfg, strategy: strategies.Rack{}}}
	netaggAt := func(deploy func(*topology.Topology)) scenario {
		return scenario{clos: clos, deploy: deploy, workload: wcfg, strategy: strategies.NetAgg{}}
	}
	for _, tc := range tierConfigs {
		tier := tc.tier
		scs = append(scs, netaggAt(func(t *topology.Topology) {
			strategies.DeployTiers(t, tier, spec)
		}))
	}
	for _, bc := range budgetConfigs {
		tiers := bc.tiers
		scs = append(scs, netaggAt(func(t *topology.Topology) {
			strategies.DeployBudget(t, budget, tiers, spec)
		}))
	}
	results := runAll(o, scs)
	rackP99 := results[0].AllFCT.P99()
	for i, tc := range tierConfigs {
		table.AddRow(tc.name, results[1+i].AllFCT.P99()/rackP99)
	}
	for i, bc := range budgetConfigs {
		table.AddRow(fmt.Sprintf("%s(n=%d)", bc.name, budget),
			results[1+len(tierConfigs)+i].AllFCT.P99()/rackP99)
	}
	return &Report{
		ID:    "fig12",
		Title: "Flow completion time relative to baseline with different partial NetAgg deployments",
		Table: table,
		Notes: "budget rows spread a fixed number of boxes uniformly over the named tiers",
	}
}

// Fig13 regenerates Figure 13: NetAgg in a 10 Gbps-edge network with
// varying over-subscription, scaling out to 2 and 4 agg boxes per switch.
func Fig13(o Options) *Report {
	oversubs := []float64{1, 2, 4, 10}
	table := metrics.NewTable(
		"Fig 13 — relative 99th FCT in a 10G network (scale-out boxes per switch)",
		"oversub_1:x", "netagg_1xbox", "netagg_2xbox", "netagg_4xbox",
	)
	scaleOut := []int{1, 2, 4}
	var scs []scenario
	for _, ov := range oversubs {
		clos := o.Scale.Clos()
		clos.EdgeCapacity = 10 * topology.Gbps
		clos.Oversubscription = ov
		scs = append(scs, scenario{clos: clos, workload: o.workload(), strategy: strategies.Rack{}})
		for _, k := range scaleOut {
			spec := strategies.DefaultBoxSpec()
			spec.PerSwitch = k
			scs = append(scs, scenario{
				clos:     clos,
				deploy:   deployAll(spec),
				workload: o.workload(),
				strategy: strategies.NetAgg{Trees: k},
			})
		}
	}
	results := runAll(o, scs)
	stride := 1 + len(scaleOut)
	for oi, ov := range oversubs {
		rackP99 := results[oi*stride].AllFCT.P99()
		row := []interface{}{ov}
		for ki := range scaleOut {
			row = append(row, results[oi*stride+1+ki].AllFCT.P99()/rackP99)
		}
		table.AddRow(row...)
	}
	return &Report{
		ID:    "fig13",
		Title: "Flow completion time relative to baseline in 10G network with varying over-subscription",
		Table: table,
		Notes: "k boxes per switch are load-balanced with k aggregation trees per job",
	}
}

// Fig14 regenerates Figure 14: relative 99th FCT with a varying fraction of
// straggling workers whose flows start late.
func Fig14(o Options) *Report {
	ratios := []float64{0, 0.1, 0.2, 0.3, 0.5}
	table := metrics.NewTable(
		"Fig 14 — relative 99th FCT vs straggler ratio",
		"straggler_ratio", "rack", "binary", "chain", "netagg",
	)
	points := make([]relPoint, len(ratios))
	for i, r := range ratios {
		wcfg := o.workload()
		wcfg.StragglerFraction = r
		wcfg.StragglerDelayMean = 0.05 // ≈5× the typical FCT in this network
		points[i] = relPoint{clos: o.Scale.Clos(), wcfg: wcfg}
	}
	for i, rel := range relP99Batch(o, points, strategies.DefaultBoxSpec()) {
		table.AddRow(ratios[i], rel["rack"], rel["binary"], rel["chain"], rel["netagg"])
	}
	return &Report{
		ID:    "fig14",
		Title: "Flow completion time relative to baseline with varying stragglers",
		Table: table,
		Notes: "stragglers start after an exponential delay (mean 50 ms); baseline rack also sees them",
	}
}
