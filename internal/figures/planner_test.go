package figures

import (
	"testing"
)

// TestFigPlannerLoadAwareWins checks the planner experiment's headline
// claim: under skewed per-box background load, the telemetry-weighted
// LoadAware planner steers trees off the hot boxes and beats the paper's
// hash-only OnPath planner on p99 job completion time.
func TestFigPlannerLoadAwareWins(t *testing.T) {
	r := FigPlanner(small)
	rows := tableRows(t, r)
	if len(rows) != len(plannerFactors) {
		t.Fatalf("expected %d rows, got %d:\n%s", len(plannerFactors), len(rows), r)
	}
	// Columns: bg_factor, onpath_p99, loadaware_p99.
	for _, row := range rows {
		factor, onpath, loadaware := row[0], row[1], row[2]
		if onpath <= 0 || loadaware <= 0 {
			t.Fatalf("degenerate p99 at factor %v:\n%s", factor, r)
		}
		if factor >= 1 && loadaware >= onpath {
			t.Errorf("factor %v: loadaware p99 %v not better than onpath %v", factor, loadaware, onpath)
		}
	}
	if t.Failed() {
		t.Logf("table:\n%s", r)
	}
}
