package figures

import (
	"strings"
	"testing"
)

var small = Options{Scale: ScaleSmall, Seed: 1}

func TestScaleClosConfigs(t *testing.T) {
	if ScaleSmall.Clos().NumServers() != 64 {
		t.Fatal("small scale should be 64 servers")
	}
	if ScaleMedium.Clos().NumServers() != 256 {
		t.Fatal("medium scale should be 256 servers")
	}
	if ScaleFull.Clos().NumServers() != 1024 {
		t.Fatal("full scale should be 1024 servers")
	}
	if ScaleMedium.String() != "medium" {
		t.Fatal("unexpected scale name")
	}
}

func TestFig02Shape(t *testing.T) {
	r := Fig02(small)
	out := r.String()
	if !strings.Contains(out, "Fig 2") {
		t.Fatalf("missing title:\n%s", out)
	}
	// The table must contain one row per rate.
	if got := strings.Count(out, "\n"); got < 8 {
		t.Fatalf("too few rows:\n%s", out)
	}
}

func TestFig03HasAllConfigs(t *testing.T) {
	r := Fig03(small)
	out := r.String()
	for _, name := range []string{"FullBisec-10G", "Oversub-10G", "FullBisec-1G", "NetAgg", "Incremental-NetAgg"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing config %s:\n%s", name, out)
		}
	}
}

func TestFig06And07Run(t *testing.T) {
	for _, fn := range []func(Options) *Report{Fig06, Fig07, Fig09} {
		r := fn(small)
		if r.Table == nil || len(r.Table.String()) == 0 {
			t.Fatalf("figure %s produced no table", r.ID)
		}
	}
}

func TestFig08NetAggGainShrinksWithAlpha(t *testing.T) {
	r := Fig08(small)
	rows := tableRows(t, r)
	first, last := rows[0], rows[len(rows)-1]
	// Column order: alpha, rack, binary, chain, netagg, netagg_job. The
	// α → 1 convergence shows on the job-level metric (see DESIGN.md §8).
	if first[5] >= last[5] {
		t.Fatalf("netagg relative job FCT should grow with α: α=%.2g → %.3g, α=%.2g → %.3g",
			first[0], first[5], last[0], last[5])
	}
	if first[4] >= 1 || first[5] >= 1 {
		t.Fatalf("netagg should beat rack at α=%.2g (flow=%.3g job=%.3g)", first[0], first[4], first[5])
	}
	if last[5] > 1.5 {
		t.Fatalf("netagg job FCT should be near rack parity at α=1, got %.3g", last[5])
	}
}

func TestFig10MoreAggregatableMoreGain(t *testing.T) {
	r := Fig10(small)
	rows := tableRows(t, r)
	// NetAgg at full aggregatability should beat NetAgg at 20%.
	if rows[len(rows)-1][4] >= rows[0][4] {
		t.Fatalf("netagg gain should grow with aggregatable fraction: %v vs %v",
			rows[0], rows[len(rows)-1])
	}
}

func TestFig11NetAggBeatsRackAtEveryOversub(t *testing.T) {
	r := Fig11(small)
	for _, row := range tableRows(t, r) {
		// Column order: oversub, rack, binary, chain, netagg. The paper's
		// robust claim: NetAgg beats rack across the over-subscription
		// sweep, including full bisection ("beneficial even for networks
		// with full-bisection bandwidth").
		if row[4] >= 1 {
			t.Fatalf("netagg (%.3g) should beat rack at over-subscription 1:%g", row[4], row[0])
		}
	}
}

func TestFig12FullBeatsSingleTier(t *testing.T) {
	r := Fig12(small)
	rel := map[string]float64{}
	for _, row := range rawRows(t, r) {
		rel[row[0]] = parseF(t, row[1])
	}
	if rel["full"] > rel["tor-only"] {
		// Full deployment aggregates everywhere a single tier does and more.
		t.Fatalf("full deployment (%.3g) should beat tor-only (%.3g)", rel["full"], rel["tor-only"])
	}
}

func TestFig13And14Run(t *testing.T) {
	if r := Fig13(small); len(tableRows(t, r)) != 4 {
		t.Fatal("fig13 should have 4 over-subscription rows")
	}
	if r := Fig14(small); len(tableRows(t, r)) != 5 {
		t.Fatal("fig14 should have 5 straggler rows")
	}
}
