package figures

import (
	"strconv"
	"testing"
)

// rawRows returns the report table's cells as strings.
func rawRows(t *testing.T, r *Report) [][]string {
	t.Helper()
	rows := r.Table.Rows()
	if len(rows) == 0 {
		t.Fatalf("figure %s has no rows", r.ID)
	}
	return rows
}

// tableRows parses every cell of the report table as float64.
func tableRows(t *testing.T, r *Report) [][]float64 {
	t.Helper()
	var out [][]float64
	for _, row := range rawRows(t, r) {
		vals := make([]float64, len(row))
		for i, c := range row {
			vals[i] = parseF(t, c)
		}
		out = append(out, vals)
	}
	return out
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}
