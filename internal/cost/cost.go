// Package cost models data centre upgrade costs for the paper's cost
// analysis (§2.4, Fig 3). Following the methodology of Popa et al. ("A Cost
// Comparison of Data Center Network Architectures", CoNEXT'10), network cost
// is dominated by switch ports and NICs and scales with provisioned
// capacity; servers (agg boxes) have a fixed unit price. Only cost *ratios*
// between configurations matter for the figure, so prices are synthetic but
// in realistic proportion.
package cost

import (
	"netagg/internal/topology"
)

// Prices holds the unit prices in dollars.
type Prices struct {
	// PortPerGbps is the cost of one switch port per Gbps of capacity.
	// A duplex link is priced as two ports (one per end).
	PortPerGbps float64
	// Server is the price of one commodity server used as an agg box
	// (the paper's testbed agg boxes are 16-core Xeon servers).
	Server float64
	// NICPerGbps is the per-Gbps price of a server NIC.
	NICPerGbps float64
}

// DefaultPrices returns the synthetic price table used for Fig 3.
func DefaultPrices() Prices {
	return Prices{PortPerGbps: 40, Server: 2500, NICPerGbps: 10}
}

// NetworkCost prices a built topology: every duplex link costs two ports at
// its capacity, and every server-edge link additionally a NIC.
func NetworkCost(t *topology.Topology, p Prices) float64 {
	var total float64
	// Links are directed; price each unordered pair once by only counting
	// the direction From < To.
	for i := 0; i < t.NumLinks(); i++ {
		l := t.Link(topology.LinkID(i))
		if l.From > l.To {
			continue
		}
		gbps := l.Capacity / topology.Gbps
		total += 2 * gbps * p.PortPerGbps
		from, to := t.Node(l.From), t.Node(l.To)
		if from.Kind == topology.KindServer || to.Kind == topology.KindServer {
			total += gbps * p.NICPerGbps
		}
	}
	return total
}

// ClosCost prices a Clos configuration without building the topology.
func ClosCost(c topology.ClosConfig, p Prices) (float64, error) {
	t, err := topology.BuildClos(c)
	if err != nil {
		return 0, err
	}
	return NetworkCost(t, p), nil
}

// UpgradeCost is the cost of moving from the base fabric to the upgraded
// one: the price difference of the network, floored at zero (decommissioned
// capacity is not refunded).
func UpgradeCost(base, upgraded topology.ClosConfig, p Prices) (float64, error) {
	cb, err := ClosCost(base, p)
	if err != nil {
		return 0, err
	}
	cu, err := ClosCost(upgraded, p)
	if err != nil {
		return 0, err
	}
	if cu < cb {
		return 0, nil
	}
	return cu - cb, nil
}

// BoxCost prices a NetAgg deployment: n agg boxes, each a server with a NIC
// and a switch port at the box link capacity.
func BoxCost(n int, linkCapacity float64, p Prices) float64 {
	gbps := linkCapacity / topology.Gbps
	perBox := p.Server + gbps*p.NICPerGbps + gbps*p.PortPerGbps
	return float64(n) * perBox
}
