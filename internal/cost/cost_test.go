package cost

import (
	"testing"

	"netagg/internal/topology"
)

func TestNetworkCostCountsEachCableOnce(t *testing.T) {
	topo := topology.New()
	a := topo.AddNode(topology.KindToR, "a", 0, 0)
	b := topo.AddNode(topology.KindAgg, "b", -1, 0)
	topo.AddDuplex(a, b, topology.Gbps)
	p := Prices{PortPerGbps: 10, Server: 0, NICPerGbps: 5}
	// One 1 Gbps cable = two ports à $10, no NIC (no server end).
	if got := NetworkCost(topo, p); got != 20 {
		t.Fatalf("cost = %g, want 20", got)
	}
}

func TestNetworkCostAddsNICForServerLinks(t *testing.T) {
	topo := topology.New()
	tor := topo.AddNode(topology.KindToR, "tor", 0, 0)
	srv := topo.AddNode(topology.KindServer, "s", 0, 0)
	topo.AddDuplex(srv, tor, topology.Gbps)
	p := Prices{PortPerGbps: 10, NICPerGbps: 5}
	if got := NetworkCost(topo, p); got != 25 {
		t.Fatalf("cost = %g, want 2 ports + 1 NIC = 25", got)
	}
}

func TestUpgradeCostOrdering(t *testing.T) {
	base := topology.DefaultClos() // the paper's 1,024-server scale
	p := DefaultPrices()

	tenG := base
	tenG.EdgeCapacity = 10 * topology.Gbps
	fullBisecTenG := tenG
	fullBisecTenG.Oversubscription = 1
	fullBisec1G := base
	fullBisec1G.Oversubscription = 1

	c10, err := UpgradeCost(base, tenG, p)
	if err != nil {
		t.Fatal(err)
	}
	cFull10, err := UpgradeCost(base, fullBisecTenG, p)
	if err != nil {
		t.Fatal(err)
	}
	cFull1, err := UpgradeCost(base, fullBisec1G, p)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 3's ordering: FullBisec-10G > Oversub-10G > FullBisec-1G > 0.
	if !(cFull10 > c10 && c10 > cFull1 && cFull1 > 0) {
		t.Fatalf("cost ordering broken: full10=%g oversub10=%g full1=%g", cFull10, c10, cFull1)
	}
	// NetAgg boxes cost a small fraction of the 10G upgrades (§2.4: "with
	// only a fraction of the cost"). The cheap FullBisec-1G upgrade can be
	// cheaper than a full box fleet but delivers far less benefit.
	boxes := BoxCost(base.NumSwitches(), 10*topology.Gbps, p)
	if boxes >= c10/2 {
		t.Fatalf("box deployment (%g) should be a fraction of Oversub-10G (%g)", boxes, c10)
	}
	if boxes >= cFull10/4 {
		t.Fatalf("box deployment (%g) should be a small fraction of FullBisec-10G (%g)", boxes, cFull10)
	}
}

func TestUpgradeCostFloorsAtZero(t *testing.T) {
	big := topology.SmallClos()
	small := big
	small.EdgeCapacity = big.EdgeCapacity / 10
	c, err := UpgradeCost(big, small, DefaultPrices())
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("downgrades are not refunded, got %g", c)
	}
}

func TestBoxCostLinear(t *testing.T) {
	p := DefaultPrices()
	one := BoxCost(1, 10*topology.Gbps, p)
	ten := BoxCost(10, 10*topology.Gbps, p)
	if ten != 10*one {
		t.Fatalf("box cost should be linear: %g vs 10×%g", ten, one)
	}
	if one <= p.Server {
		t.Fatalf("a box must cost more than its bare server: %g", one)
	}
}
