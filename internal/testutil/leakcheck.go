// Package testutil holds shared test infrastructure. Its centrepiece is
// the goroutine leak checker applied to every suite that spawns
// goroutines (core, wire, shim, cluster, transport, aggbox, simexp,
// search, mapred, testbed): NetAgg's correctness under churn depends
// on every box, shim, monitor, and connection reader shutting down
// cleanly, and a leaked reader goroutine is the earliest observable
// symptom of a broken Close path.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long the checker waits for goroutines to wind down
// before declaring a leak. Connection readers unblock asynchronously
// after Close, so a brief retry loop avoids false positives without
// hiding real leaks.
const leakGrace = 2 * time.Second

// LeakCheckMain wraps testing.M.Run with a whole-package goroutine leak
// check. Use from TestMain:
//
//	func TestMain(m *testing.M) { testutil.LeakCheckMain(m) }
//
// The package's tests run normally; afterwards, any non-baseline
// goroutine still alive past the grace period fails the suite with the
// offending stacks. This catches leaks that per-test checks miss (state
// shared across tests) and costs one snapshot per package.
func LeakCheckMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := waitForQuiescence(); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked after all tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// CheckLeaks snapshots the interesting goroutines at call time and, via
// t.Cleanup, fails the test if new goroutines outlive the grace period.
// Use it at the top of tests that start boxes/shims/monitors:
//
//	func TestBoxShutdown(t *testing.T) {
//		testutil.CheckLeaks(t)
//		...
//	}
func CheckLeaks(t testing.TB) {
	t.Helper()
	before := make(map[string]bool)
	for _, g := range interestingGoroutines() {
		before[g] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var leaked []string
		for {
			leaked = leaked[:0]
			for _, g := range interestingGoroutines() {
				if !before[g] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("testutil: %d goroutine(s) leaked by this test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// waitForQuiescence retries until no interesting goroutines remain or the
// grace period expires, returning the stragglers.
func waitForQuiescence() []string {
	deadline := time.Now().Add(leakGrace)
	for {
		leaked := interestingGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ignoredFrames mark goroutines that are part of the runtime, the testing
// framework, or this checker — never leaks of the code under test.
var ignoredFrames = []string{
	"testing.Main(",
	"testing.(*T).Run(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.tRunner(",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime.gc(",
	"os/signal.signal_recv",
	"os/signal.loop",
	"netagg/internal/testutil.interestingGoroutines",
	"netagg/internal/testutil.LeakCheckMain",
	"created by runtime.gc",
	"created by testing.RunTests",
	"created by os/signal.Notify",
}

// interestingGoroutines returns the stacks of goroutines that belong to
// the code under test, one stanza per goroutine.
func interestingGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
stanza:
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || strings.HasPrefix(g, "goroutine ") && strings.Contains(firstLine(g), "[running]") && strings.Contains(g, "runtime.Stack") {
			continue // the checker itself
		}
		for _, f := range ignoredFrames {
			if strings.Contains(g, f) {
				continue stanza
			}
		}
		out = append(out, g)
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
