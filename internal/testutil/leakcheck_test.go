package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { LeakCheckMain(m) }

func TestInterestingGoroutinesIgnoresHarness(t *testing.T) {
	// The test harness itself (testing.tRunner, the checker) must not
	// show up as a leak.
	for _, g := range interestingGoroutines() {
		if strings.Contains(g, "testing.") {
			t.Errorf("harness goroutine reported as interesting:\n%s", g)
		}
	}
}

func TestCheckLeaksSeesSpawnedGoroutine(t *testing.T) {
	// Run a throwaway sub-test that leaks a goroutine on purpose and
	// confirm the checker notices, without failing this suite.
	stop := make(chan struct{})
	leaky := func(t testing.TB) {
		before := make(map[string]bool)
		for _, g := range interestingGoroutines() {
			before[g] = true
		}
		go func() { <-stop }()
		// Mirror the Cleanup body with a zero grace period.
		var leaked []string
		deadline := time.Now().Add(200 * time.Millisecond)
		for {
			leaked = leaked[:0]
			for _, g := range interestingGoroutines() {
				if !before[g] {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) > 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if len(leaked) == 0 {
			t.Error("leak checker missed a deliberately leaked goroutine")
		}
	}
	leaky(t)
	close(stop) // clean up so the suite-level check stays green
}

func TestCheckLeaksCleanGoroutinePasses(t *testing.T) {
	CheckLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
